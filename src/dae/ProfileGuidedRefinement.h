//===- dae/ProfileGuidedRefinement.h - PG regeneration pass -----*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pm-registered pass that closes the profiling-assisted DAE loop
/// (--dae-profile-guided / DAECC_DAE_PG): run over a task function, it looks
/// up the task's accumulated AccessProfile record by content fingerprint,
/// asks the planner (dae/AccessProfile.h) whether the observed coverage /
/// overshoot / reuse-span gaps warrant regeneration, and if so re-runs
/// access-phase generation with the refined knobs. The unrefined phase is
/// renamed aside ("<task>.access.unrefined") — not erased, callers may still
/// be pricing it — and the regenerated "<task>.access" carries
/// AccessPhaseResult::ProfileRefined provenance. Regeneration goes through
/// the GenerationMemo when one is supplied, so structurally identical tasks
/// in other modules receive the refined phase by transplant, provenance
/// intact.
///
/// The pass transforms the *module* (new access function), never the task
/// function itself, so it preserves all function analyses; the renamed
/// unrefined phase's cached analyses are explicitly invalidated.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_PROFILEGUIDEDREFINEMENT_H
#define DAECC_DAE_PROFILEGUIDEDREFINEMENT_H

#include "dae/AccessProfile.h"
#include "pm/Pass.h"

#include <cstddef>
#include <map>

namespace dae {

class GenerationMemo;

namespace ir {
class Module;
} // namespace ir

/// See file comment. One instance refines one module's tasks; drivers run
/// it through a pm::PassManager over every task function, then collect the
/// refined results.
class ProfileGuidedRefinementPass : public pm::FunctionPass {
public:
  /// \p Profile holds the accumulated observations, \p BaseOpts the options
  /// the baseline generation ran with, \p Config the thresholds (and the
  /// cold-load set, whose storage must outlive the pass). \p Memo routes
  /// regeneration through the shared generation cache when non-null.
  ProfileGuidedRefinementPass(ir::Module &M, const AccessProfile &Profile,
                              DaeOptions BaseOpts, RefinementConfig Config,
                              GenerationMemo *Memo = nullptr)
      : M(M), Profile(Profile), BaseOpts(std::move(BaseOpts)),
        Config(std::move(Config)), Memo(Memo) {}

  /// Registers the baseline generation result for \p Task. Tasks without a
  /// baseline (or whose baseline produced no access phase) are skipped —
  /// there is nothing to refine.
  void noteBaseline(const ir::Function *Task,
                    const AccessPhaseResult &Baseline) {
    Baselines[Task] = Baseline;
  }

  const char *name() const override { return "dae-profile-refine"; }

  pm::PreservedAnalyses run(ir::Function &F,
                            pm::FunctionAnalysisManager &FAM) override;

  /// The refined result for \p Task; null when the pass left it alone (no
  /// profile, no applicable action, or regeneration declined).
  const AccessPhaseResult *refinedResult(const ir::Function *Task) const {
    auto It = Refined.find(Task);
    return It == Refined.end() ? nullptr : &It->second;
  }

  /// Task functions whose phases were regenerated.
  std::size_t numRefined() const { return Refined.size(); }

private:
  ir::Module &M;
  const AccessProfile &Profile;
  DaeOptions BaseOpts;
  RefinementConfig Config;
  GenerationMemo *Memo;
  std::map<const ir::Function *, AccessPhaseResult> Baselines;
  std::map<const ir::Function *, AccessPhaseResult> Refined;
};

} // namespace dae

#endif // DAECC_DAE_PROFILEGUIDEDREFINEMENT_H
