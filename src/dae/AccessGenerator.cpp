//===- dae/AccessGenerator.cpp - DAE access-phase generation ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dae/AccessGenerator.h"

#include "analysis/TaskAnalysis.h"
#include "dae/AffineGenerator.h"
#include "dae/SkeletonGenerator.h"
#include "ir/Module.h"
#include "passes/Passes.h"
#include "pm/Analyses.h"
#include "support/Rational.h"
#include "verify/AccessPhaseAudit.h"

using namespace dae;
using namespace dae::analysis;
using namespace dae::ir;

AccessPhaseResult dae::generateAccessPhase(Module &M, Function &Task,
                                           const DaeOptions &Opts,
                                           pm::FunctionAnalysisManager &FAM) {
  // One of the two advantages the paper claims for the compiler approach:
  // the access phase is derived from the *optimized* execute code (inlining
  // included), leading to leaner access phases than a programmer starting
  // from unoptimized source can write.
  if (!passes::allCallsInlinable(Task)) {
    AccessPhaseResult Result;
    Result.Strategy = TaskClass::Rejected;
    Result.Notes = "task contains a call that cannot be inlined";
    return Result;
  }
  passes::optimizeFunction(Task, FAM);
  return generateAccessPhaseForOptimizedTask(M, Task, Opts, FAM);
}

AccessPhaseResult dae::generateAccessPhase(Module &M, Function &Task,
                                           const DaeOptions &Opts) {
  pm::FunctionAnalysisManager FAM;
  return generateAccessPhase(M, Task, Opts, FAM);
}

AccessPhaseResult
dae::generateAccessPhaseForOptimizedTask(Module &M, Function &Task,
                                         const DaeOptions &Opts,
                                         pm::FunctionAnalysisManager &FAM) {
  const TaskClassification &Cls =
      FAM.getResult<pm::TaskClassificationAnalysis>(Task);
  if (Cls.Class == TaskClass::Rejected) {
    AccessPhaseResult Result;
    Result.Strategy = TaskClass::Rejected;
    Result.Notes = Cls.Reason;
    return Result;
  }

  AccessPhaseResult Result;
  if (Cls.Class == TaskClass::Affine) {
    try {
      Result = generateAffineAccess(M, Task, Opts, FAM);
      if (Result.AccessFn)
        passes::optimizeFunction(*Result.AccessFn, FAM);
    } catch (const RationalOverflow &E) {
      // Fail safe: an overflowed lattice-point count must never decide the
      // hull guard. Discard any partially emitted access function and take
      // the skeleton path instead.
      if (ir::Function *Partial = M.getFunction(Task.getName() + ".access")) {
        FAM.clear(*Partial);
        M.eraseFunction(Partial);
      }
      Result = AccessPhaseResult();
      Result.Strategy = TaskClass::Affine;
      Result.Notes = std::string("polyhedral counting overflowed: ") + E.what();
    }
  }
  if (!Result.AccessFn) {
    std::string AffineNote = Result.Notes;
    Result = generateSkeletonAccess(M, Task, Opts, FAM);
    if (!AffineNote.empty())
      Result.Notes += " (affine path declined: " + AffineNote + ")";
  }

  if (Result.AccessFn) {
    pm::verifyGenerated(*Result.AccessFn, "access-phase generation");
    verify::auditGenerated(*Result.AccessFn, "access-phase generation");
  }
  return Result;
}
