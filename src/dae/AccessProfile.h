//===- dae/AccessProfile.h - Profile store + refinement planning -*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The feedback half of profiling-assisted DAE. Static access-phase
/// generation deliberately discards work it cannot prove useful — §5.2.2
/// prunes data-dependent conditional arms (FFT's bit-reverse swap), the
/// skeleton prefetches loads that rarely miss, merged affine nests stream a
/// footprint larger than the cache levels they target. The differential
/// checker's captures measure each gap per task; this header persists those
/// measurements keyed by the GenerationMemo task fingerprint (so a profile
/// recorded against one module applies to structurally identical tasks in
/// any module) and turns them into refinement decisions:
///
///   * keep-control-flow: strict coverage below target while CFG
///     simplification rewrote conditionals -> regenerate with
///     SimplifyCfg=false, restoring the pruned arms' prefetches;
///   * prune-cold-prefetches: overshoot above budget -> regenerate with the
///     profiled cold-load set (DaeOptions::ColdLoads), dropping prefetches
///     that never cover a demand miss;
///   * split-phases: a merged affine nest whose observed execute footprint
///     spans multiple cache levels -> regenerate with MergeLoopNests=false,
///     so each class's phase prefetches a reuse window that fits.
///
/// The planner only proposes knob changes the GenerationTrace proves can
/// act (e.g. SimplifyCfg=false is pointless when no conditional was
/// rewritten), so refinement never churns phases it cannot improve.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_ACCESSPROFILE_H
#define DAECC_DAE_ACCESSPROFILE_H

#include "dae/AccessGenerator.h"
#include "runtime/CaptureObservation.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dae {

/// Accumulated observations for one task fingerprint. Counters sum over
/// task instances (and repeated runs); the footprint keeps the maximum, the
/// reuse-span signal of the largest phase instance.
struct TaskProfileData {
  std::uint64_t BaselineMisses = 0;
  std::uint64_t FootprintCoveredMisses = 0;
  std::uint64_t StrictCoveredMisses = 0;
  std::uint64_t PrefetchedLines = 0;
  std::uint64_t UnusedPrefetchedLines = 0;
  /// Largest observed execute-phase footprint, in bytes.
  std::uint64_t ExecuteFootprintBytes = 0;
  /// Task instances merged into this record.
  std::uint64_t Observations = 0;

  void merge(const runtime::TaskObservation &O) {
    BaselineMisses += O.BaselineMisses;
    FootprintCoveredMisses += O.FootprintCoveredMisses;
    StrictCoveredMisses += O.StrictCoveredMisses;
    PrefetchedLines += O.PrefetchedLines;
    UnusedPrefetchedLines += O.UnusedPrefetchedLines;
    std::uint64_t Bytes = O.ExecuteLines * O.LineBytes;
    if (Bytes > ExecuteFootprintBytes)
      ExecuteFootprintBytes = Bytes;
    ++Observations;
  }

  /// Same-task coverage of baseline misses; 1.0 with no misses to cover.
  double strictCoverage() const {
    return BaselineMisses == 0
               ? 1.0
               : static_cast<double>(StrictCoveredMisses) / BaselineMisses;
  }
  /// Fraction of prefetched lines the execute phase never used.
  double overshoot() const {
    return PrefetchedLines == 0 ? 0.0
                                : static_cast<double>(UnusedPrefetchedLines) /
                                      PrefetchedLines;
  }
};

/// Thread-safe store of TaskProfileData keyed by the GenerationMemo task
/// fingerprint (taskContentFingerprint). Drivers record the differential
/// checker's observations here, then hand the store to the refinement pass.
class AccessProfile {
public:
  /// Merges \p O into the record for \p TaskFp. No-op for observations of
  /// non-decoupled tasks (there is no access phase to refine).
  void record(const std::string &TaskFp, const runtime::TaskObservation &O) {
    if (!O.HasAccess)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    Data[TaskFp].merge(O);
  }

  /// Copies the record for \p TaskFp into \p Out; false when none exists.
  bool lookup(const std::string &TaskFp, TaskProfileData &Out) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Data.find(TaskFp);
    if (It == Data.end())
      return false;
    Out = It->second;
    return true;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Data.size();
  }

private:
  mutable std::mutex Mutex;
  std::map<std::string, TaskProfileData> Data;
};

/// Refinement thresholds and resources.
struct RefinementConfig {
  /// Regenerate for coverage when strict coverage falls below this (the CI
  /// gate's floor).
  double StrictCoverageTarget = 0.95;
  /// Regenerate for overshoot when the unused-prefetch fraction exceeds
  /// this.
  double OvershootBudget = 0.05;
  /// Split merged affine nests when the observed execute footprint exceeds
  /// this many bytes (callers set it to the private-cache capacity; a
  /// footprint beyond it means the merged phase's reuse distance spans
  /// cache levels).
  std::uint64_t PhaseSplitFootprintBytes = 64 * 1024;
  /// Profiled cold-load set for prune-cold-prefetches (see
  /// harness::profileColdLoads); null disables that rule.
  const std::set<const ir::Instruction *> *ColdLoads = nullptr;
};

/// The planner's verdict for one task: which regeneration knobs to flip.
struct RefinementAction {
  bool KeepControlFlow = false;     ///< SimplifyCfg=false.
  bool PruneColdPrefetches = false; ///< ColdLoads=Config.ColdLoads.
  bool SplitPhases = false;         ///< MergeLoopNests=false.

  bool any() const {
    return KeepControlFlow || PruneColdPrefetches || SplitPhases;
  }
  /// Stable comma-joined action list ("keep-control-flow,split-phases").
  std::string str() const;
};

/// Decides what (if anything) to regenerate for a task whose baseline
/// generation reported \p Trace and whose observations accumulated to \p P.
RefinementAction planRefinement(const TaskProfileData &P,
                                const GenerationTrace &Trace,
                                const RefinementConfig &C);

/// Applies \p A to \p Base: the DaeOptions the regeneration runs with.
DaeOptions refinedOptions(const DaeOptions &Base, const RefinementAction &A,
                          const RefinementConfig &C);

} // namespace dae

#endif // DAECC_DAE_ACCESSPROFILE_H
