//===- dae/GenerationMemo.h - Memoized access-phase generation --*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed cache in front of generateAccessPhase. The key has two
/// parts: a *task fingerprint* (the printed optimized task body plus the
/// name/size of every referenced global, so structurally identical tasks
/// from different workload instances share entries) and an *options
/// pattern*. The pattern is not a plain DaeOptions equality test: the
/// GenerationTrace reported by the generators proves which knobs the run
/// actually consulted, and knobs proven irrelevant are wildcarded. An
/// ablation sweep that flips a knob the task never exercises (raising a
/// hull-slack threshold that already accepts every class, toggling
/// SimplifyCfg on a conditional-free task, enabling a cold-load set that
/// intersects nothing, ...) therefore hits the cache instead of
/// regenerating.
///
/// Cached functions are held in a private module per entry and transplanted
/// (ir::transplantFunction) into the requesting module on a hit, so entries
/// survive the destruction of the module that first produced them — the
/// ablation drivers rebuild every workload per variant.
///
/// Thread-safe: drivers share one memo across concurrent harness jobs.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_GENERATIONMEMO_H
#define DAECC_DAE_GENERATIONMEMO_H

#include "dae/AccessGenerator.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dae {

namespace ir {
class Function;
class Module;
} // namespace ir

/// Content fingerprint of an *optimized* task: the pipeline's cached print
/// of the body plus the name/size of every referenced global. Structurally
/// identical tasks from different workload instances fingerprint equal, so
/// the value keys both GenerationMemo entries and the profile-guided
/// refinement loop's AccessProfile records (dae/AccessProfile.h) — an
/// observation recorded against one module's task applies to its twin in
/// another. \p Task must already be optimized (passes::optimizeFunction);
/// the print is taken from \p FAM's cache.
std::string taskContentFingerprint(ir::Function &Task,
                                   pm::FunctionAnalysisManager &FAM);

/// Memoizing wrapper around generateAccessPhase. See file comment.
///
/// Retention is bounded: entries are charged an estimated byte cost
/// (fingerprint + printed access phase) against a retained-bytes cap, and
/// least-recently-used entries are evicted once the cap is exceeded — the
/// same discipline as sim::TracePool's retained-bytes cap. One-shot bench
/// runs never come near the default cap; a long-lived experiment service
/// (src/service/) would otherwise grow the memo without bound as request
/// traffic sweeps the option space. Eviction only ever costs a future
/// regeneration: results are bit-identical for any cap by construction
/// (a miss regenerates exactly what the hit would have transplanted).
class GenerationMemo {
public:
  /// Default retained-bytes cap (64 MiB), overridable process-wide via
  /// DAECC_MEMO_CAP_MB (garbage values are a hard error, exit 2).
  static constexpr std::size_t DefaultMaxRetainedBytes = 64u << 20;
  static std::size_t maxRetainedBytesFromEnv();

  GenerationMemo();
  explicit GenerationMemo(std::size_t MaxRetainedBytes);
  GenerationMemo(const GenerationMemo &) = delete;
  GenerationMemo &operator=(const GenerationMemo &) = delete;
  ~GenerationMemo();

  /// Drop-in replacement for generateAccessPhase(M, Task, Opts, FAM):
  /// optimizes \p Task, then either transplants a cached access phase into
  /// \p M or generates (and caches) a fresh one. Results are identical to
  /// the unmemoized path by construction: a cached entry is only reused
  /// when every knob the original generation consulted matches. The task
  /// fingerprint reuses \p FAM's cached print of the optimized body, so
  /// memoized and unmemoized paths share one optimization + print.
  AccessPhaseResult generate(ir::Module &M, ir::Function &Task,
                             const DaeOptions &Opts,
                             pm::FunctionAnalysisManager &FAM);

  /// Convenience overload with a throwaway analysis cache.
  AccessPhaseResult generate(ir::Module &M, ir::Function &Task,
                             const DaeOptions &Opts);

  struct Stats {
    std::uint64_t Hits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t Rejections = 0; ///< Uncacheable (rejected) tasks.
    std::uint64_t Evictions = 0;  ///< Entries dropped by the LRU cap.
  };
  Stats stats() const;

  /// Estimated bytes currently retained by cached entries (diagnostics).
  std::size_t retainedBytes() const;
  /// Cached entries currently held (diagnostics).
  std::size_t entryCount() const;

private:
  /// DaeOptions matcher: concrete on the knobs the generation consulted,
  /// wildcard on the knobs the GenerationTrace proved irrelevant.
  struct OptionsPattern {
    DaeOptions Ran; ///< Values the generation ran with (ColdLoads unused).
    std::string ColdFp; ///< Normalized cold-load fingerprint at run time.
    std::string RepFp;  ///< Effective representative-argument vector.

    bool AffineEngaged = false;
    bool SkeletonEngaged = false;
    bool GuardExact = false; ///< Guards is the complete class list.
    std::vector<GenerationTrace::ClassGuard> Guards;
    bool SplitClassesWild = false;
    bool MergeWild = false;
    bool SimplifyCfgWild = false;
    bool PrefetchWritesWild = false;

    bool matches(const DaeOptions &O, const std::string &OColdFp,
                 const std::string &ORepFp) const;
  };

  struct Entry {
    OptionsPattern Pattern;
    AccessPhaseResult Cached; ///< AccessFn points into Holder.
    std::unique_ptr<ir::Module> Holder;
    std::size_t Bytes = 0;     ///< Estimated retained cost.
    std::uint64_t LastUse = 0; ///< LRU tick of the last hit or insert.
  };

  /// Drops least-recently-used entries until RetainedBytes <= cap. Caller
  /// holds Mutex.
  void evictToCapLocked();

  const std::size_t MaxRetainedBytes;
  mutable std::mutex Mutex;
  std::map<std::string, std::vector<Entry>> Entries; ///< By task fingerprint.
  Stats Counters;
  std::size_t RetainedBytes = 0;
  std::uint64_t LruTick = 0;
};

} // namespace dae

#endif // DAECC_DAE_GENERATIONMEMO_H
