//===- dae/GenerationMemo.h - Memoized access-phase generation --*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed cache in front of generateAccessPhase. The key has two
/// parts: a *task fingerprint* (the printed optimized task body plus the
/// name/size of every referenced global, so structurally identical tasks
/// from different workload instances share entries) and an *options
/// pattern*. The pattern is not a plain DaeOptions equality test: the
/// GenerationTrace reported by the generators proves which knobs the run
/// actually consulted, and knobs proven irrelevant are wildcarded. An
/// ablation sweep that flips a knob the task never exercises (raising a
/// hull-slack threshold that already accepts every class, toggling
/// SimplifyCfg on a conditional-free task, enabling a cold-load set that
/// intersects nothing, ...) therefore hits the cache instead of
/// regenerating.
///
/// Cached functions are held in a private module per entry and transplanted
/// (ir::transplantFunction) into the requesting module on a hit, so entries
/// survive the destruction of the module that first produced them — the
/// ablation drivers rebuild every workload per variant.
///
/// Thread-safe: drivers share one memo across concurrent harness jobs.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_GENERATIONMEMO_H
#define DAECC_DAE_GENERATIONMEMO_H

#include "dae/AccessGenerator.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dae {

namespace ir {
class Function;
class Module;
} // namespace ir

/// Content fingerprint of an *optimized* task: the pipeline's cached print
/// of the body plus the name/size of every referenced global. Structurally
/// identical tasks from different workload instances fingerprint equal, so
/// the value keys both GenerationMemo entries and the profile-guided
/// refinement loop's AccessProfile records (dae/AccessProfile.h) — an
/// observation recorded against one module's task applies to its twin in
/// another. \p Task must already be optimized (passes::optimizeFunction);
/// the print is taken from \p FAM's cache.
std::string taskContentFingerprint(ir::Function &Task,
                                   pm::FunctionAnalysisManager &FAM);

/// Memoizing wrapper around generateAccessPhase. See file comment.
class GenerationMemo {
public:
  GenerationMemo() = default;
  GenerationMemo(const GenerationMemo &) = delete;
  GenerationMemo &operator=(const GenerationMemo &) = delete;
  ~GenerationMemo();

  /// Drop-in replacement for generateAccessPhase(M, Task, Opts, FAM):
  /// optimizes \p Task, then either transplants a cached access phase into
  /// \p M or generates (and caches) a fresh one. Results are identical to
  /// the unmemoized path by construction: a cached entry is only reused
  /// when every knob the original generation consulted matches. The task
  /// fingerprint reuses \p FAM's cached print of the optimized body, so
  /// memoized and unmemoized paths share one optimization + print.
  AccessPhaseResult generate(ir::Module &M, ir::Function &Task,
                             const DaeOptions &Opts,
                             pm::FunctionAnalysisManager &FAM);

  /// Convenience overload with a throwaway analysis cache.
  AccessPhaseResult generate(ir::Module &M, ir::Function &Task,
                             const DaeOptions &Opts);

  struct Stats {
    std::uint64_t Hits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t Rejections = 0; ///< Uncacheable (rejected) tasks.
  };
  Stats stats() const;

private:
  /// DaeOptions matcher: concrete on the knobs the generation consulted,
  /// wildcard on the knobs the GenerationTrace proved irrelevant.
  struct OptionsPattern {
    DaeOptions Ran; ///< Values the generation ran with (ColdLoads unused).
    std::string ColdFp; ///< Normalized cold-load fingerprint at run time.
    std::string RepFp;  ///< Effective representative-argument vector.

    bool AffineEngaged = false;
    bool SkeletonEngaged = false;
    bool GuardExact = false; ///< Guards is the complete class list.
    std::vector<GenerationTrace::ClassGuard> Guards;
    bool SplitClassesWild = false;
    bool MergeWild = false;
    bool SimplifyCfgWild = false;
    bool PrefetchWritesWild = false;

    bool matches(const DaeOptions &O, const std::string &OColdFp,
                 const std::string &ORepFp) const;
  };

  struct Entry {
    OptionsPattern Pattern;
    AccessPhaseResult Cached; ///< AccessFn points into Holder.
    std::unique_ptr<ir::Module> Holder;
  };

  mutable std::mutex Mutex;
  std::map<std::string, std::vector<Entry>> Entries; ///< By task fingerprint.
  Stats Counters;
};

} // namespace dae

#endif // DAECC_DAE_GENERATIONMEMO_H
