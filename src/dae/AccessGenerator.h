//===- dae/AccessGenerator.h - DAE access-phase generation ------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: given a task (the execute phase), emit
/// a lightweight access phase that prefetches the data the task will touch.
/// Affine tasks get a freshly synthesized minimal-depth prefetch loop nest
/// from polyhedral analysis (section 5.1); non-affine tasks get an optimized
/// skeleton clone (section 5.2); unsafe tasks are refused and run coupled.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_ACCESSGENERATOR_H
#define DAECC_DAE_ACCESSGENERATOR_H

#include "analysis/TaskAnalysis.h"
#include "dae/DaeOptions.h"

#include <string>

namespace dae {

namespace ir {
class Function;
class Module;
} // namespace ir

/// Outcome of access-phase generation for one task.
struct AccessPhaseResult {
  /// The generated access function (same signature as the task), registered
  /// in the module as "<task>.access". Null when generation was refused.
  ir::Function *AccessFn = nullptr;

  /// Strategy that produced the phase (Affine / Skeleton), or Rejected.
  analysis::TaskClass Strategy = analysis::TaskClass::Rejected;

  /// Human-readable diagnostics (refusal reason, decisions taken).
  std::string Notes;

  // --- Affine-path statistics (Table-/test-facing) ---

  /// Number of lattice points touched by the original accesses (NOrig) and
  /// contained in the accepted scan shapes (NconvUn), evaluated at the
  /// representative parameters. -1 when not applicable.
  long long NOrig = -1;
  long long NConvUn = -1;
  /// True when the convex-union guard accepted the hull for every class.
  bool UsedConvexUnion = false;
  /// Prefetch loop nests emitted after merging.
  unsigned NumPrefetchNests = 0;
  /// Access classes discovered (arrays x parameter signatures).
  unsigned NumClasses = 0;

  bool succeeded() const { return AccessFn != nullptr; }
};

/// Generates the access phase for \p Task into \p M. Runs the classical
/// optimizer on the task first (inlining is required; see section 5.2.2
/// step 1) — the task body itself is the execute phase and is not otherwise
/// modified.
AccessPhaseResult generateAccessPhase(ir::Module &M, ir::Function &Task,
                                      const DaeOptions &Opts);

} // namespace dae

#endif // DAECC_DAE_ACCESSGENERATOR_H
