//===- dae/AccessGenerator.h - DAE access-phase generation ------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: given a task (the execute phase), emit
/// a lightweight access phase that prefetches the data the task will touch.
/// Affine tasks get a freshly synthesized minimal-depth prefetch loop nest
/// from polyhedral analysis (section 5.1); non-affine tasks get an optimized
/// skeleton clone (section 5.2); unsafe tasks are refused and run coupled.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_ACCESSGENERATOR_H
#define DAECC_DAE_ACCESSGENERATOR_H

#include "analysis/TaskAnalysis.h"
#include "dae/DaeOptions.h"
#include "pm/AnalysisManager.h"

#include <string>

namespace dae {

namespace ir {
class Function;
class Module;
} // namespace ir

/// What the generators actually consulted while producing a phase. The
/// generation memo (GenerationMemo.h) uses this to decide which DaeOptions
/// knobs were *relevant* to the produced function: a knob the generator
/// never acted on can be wildcarded in the cache key, which is what lets
/// ablation sweeps hit the cache for variants whose knob changes nothing.
struct GenerationTrace {
  /// The affine generator ran to completion (emitted a phase).
  bool AffineRan = false;
  /// Per access class: whether the hull scan was emittable at all, and the
  /// minimal slack that accepts it (NconvUn - NOrig). A class takes the hull
  /// iff Emittable && HullSlackThreshold >= Need, so two thresholds are
  /// interchangeable when they accept exactly the same classes.
  struct ClassGuard {
    bool Emittable = false;
    long long Need = 0;
  };
  std::vector<ClassGuard> Guards;
  /// At least two nests were actually merged (MergeLoopNests acted).
  bool MergeApplied = false;

  /// The skeleton generator ran.
  bool SkeletonRan = false;
  /// In-loop conditionals that were candidates for 5.2.2 step 6 removal, and
  /// how many were rewritten. When both runs see zero rewrites the SimplifyCfg
  /// knob is irrelevant to this task.
  unsigned CondCandidates = 0;
  unsigned CondsRewritten = 0;
};

/// Outcome of access-phase generation for one task.
struct AccessPhaseResult {
  /// The generated access function (same signature as the task), registered
  /// in the module as "<task>.access". Null when generation was refused.
  ir::Function *AccessFn = nullptr;

  /// Strategy that produced the phase (Affine / Skeleton), or Rejected.
  analysis::TaskClass Strategy = analysis::TaskClass::Rejected;

  /// Human-readable diagnostics (refusal reason, decisions taken).
  std::string Notes;

  // --- Affine-path statistics (Table-/test-facing) ---

  /// Number of lattice points touched by the original accesses (NOrig) and
  /// contained in the accepted scan shapes (NconvUn), evaluated at the
  /// representative parameters. -1 when not applicable.
  long long NOrig = -1;
  long long NConvUn = -1;
  /// True when the convex-union guard accepted the hull for every class.
  bool UsedConvexUnion = false;
  /// Prefetch loop nests emitted after merging.
  unsigned NumPrefetchNests = 0;
  /// Access classes discovered (arrays x parameter signatures).
  unsigned NumClasses = 0;

  /// Knob-relevance record for the generation memo.
  GenerationTrace Trace;

  bool succeeded() const { return AccessFn != nullptr; }
};

/// Generates the access phase for \p Task into \p M. Runs the classical
/// optimizer on the task first (inlining is required; see section 5.2.2
/// step 1) — the task body itself is the execute phase and is not otherwise
/// modified. \p FAM caches the task's analyses across classification and
/// generation; the harness shares one manager per app-preparation job.
AccessPhaseResult generateAccessPhase(ir::Module &M, ir::Function &Task,
                                      const DaeOptions &Opts,
                                      pm::FunctionAnalysisManager &FAM);

/// Convenience overload with a throwaway analysis cache (tests, examples).
AccessPhaseResult generateAccessPhase(ir::Module &M, ir::Function &Task,
                                      const DaeOptions &Opts);

/// Same as generateAccessPhase but assumes \p Task has already been checked
/// for inlinability and optimized (exactly what generateAccessPhase does
/// first). The generation memo uses this entry so the task is optimized once
/// for both the content key and any subsequent generation.
AccessPhaseResult
generateAccessPhaseForOptimizedTask(ir::Module &M, ir::Function &Task,
                                    const DaeOptions &Opts,
                                    pm::FunctionAnalysisManager &FAM);

} // namespace dae

#endif // DAECC_DAE_ACCESSGENERATOR_H
