//===- dae/GenerationMemo.cpp - Memoized access-phase generation -----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dae/GenerationMemo.h"

#include "analysis/TaskAnalysis.h"
#include "ir/Cloner.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "passes/Passes.h"
#include "pm/Analyses.h"
#include "support/Casting.h"
#include "support/EnvParse.h"
#include "verify/AccessPhaseAudit.h"

using namespace dae;
using namespace dae::ir;

namespace {

/// Task content key: printed optimized body (the pipeline's cached print)
/// plus referenced globals with their sizes (the print carries names only,
/// but generation depends on the extents through GEP shapes and the loader
/// layout).
std::string taskFingerprint(Function &Task, const std::string &Printed) {
  std::string Key = Printed;
  std::map<std::string, std::uint64_t> Globals;
  for (const auto &BB : Task)
    for (const auto &I : *BB)
      for (Value *Op : I->operands())
        if (auto *G = dyn_cast<GlobalVariable>(Op))
          Globals[G->getName()] = G->getSizeInBytes();
  for (const auto &[Name, Size] : Globals)
    Key += "@" + Name + ":" + std::to_string(Size) + "\n";
  return Key;
}

/// Normalizes DaeOptions::ColdLoads to the ordinals of this task's load
/// instructions that appear in the set. Instruction pointers differ between
/// structurally identical workload instances; ordinals do not. An empty
/// intersection is indistinguishable from a null set — correct, because the
/// skeleton generator only ever consults the intersection.
std::string coldFingerprint(const Function &Task, const DaeOptions &Opts) {
  std::string Fp;
  if (!Opts.ColdLoads)
    return Fp;
  unsigned Ordinal = 0;
  for (const auto &BB : Task)
    for (const auto &I : *BB)
      if (isa<LoadInst>(I.get())) {
        if (Opts.ColdLoads->count(I.get()))
          Fp += std::to_string(Ordinal) + ",";
        ++Ordinal;
      }
  return Fp;
}

/// Effective representative values, one per Int64 argument by position
/// (missing entries default to 8, mirroring the affine generator).
std::string repFingerprint(const Function &Task, const DaeOptions &Opts) {
  std::string Fp;
  for (unsigned I = 0; I != Task.getNumArgs(); ++I) {
    if (Task.getArg(I)->getType() != Type::Int64)
      continue;
    std::int64_t V =
        I < Opts.RepresentativeArgs.size() ? Opts.RepresentativeArgs[I] : 8;
    Fp += std::to_string(V) + ",";
  }
  return Fp;
}

unsigned countStores(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F)
    for (const auto &I : *BB)
      if (isa<StoreInst>(I.get()))
        ++N;
  return N;
}

bool isCallFree(const Function &F) {
  for (const auto &BB : F)
    for (const auto &I : *BB)
      if (isa<CallInst>(I.get()))
        return false;
  return true;
}

} // namespace

std::string dae::taskContentFingerprint(Function &Task,
                                        pm::FunctionAnalysisManager &FAM) {
  return taskFingerprint(Task, FAM.getResult<pm::FunctionPrintAnalysis>(Task));
}

std::size_t GenerationMemo::maxRetainedBytesFromEnv() {
  return support::envMiBOr("DAECC_MEMO_CAP_MB", DefaultMaxRetainedBytes);
}

GenerationMemo::GenerationMemo()
    : MaxRetainedBytes(maxRetainedBytesFromEnv()) {}

GenerationMemo::GenerationMemo(std::size_t MaxRetainedBytes)
    : MaxRetainedBytes(MaxRetainedBytes) {}

GenerationMemo::~GenerationMemo() = default;

void GenerationMemo::evictToCapLocked() {
  while (RetainedBytes > MaxRetainedBytes) {
    // Linear scan for the oldest tick: entry counts stay small (one per
    // distinct task x options pattern), so a heap would be ceremony.
    std::map<std::string, std::vector<Entry>>::iterator VictimKey =
        Entries.end();
    std::size_t VictimIdx = 0;
    std::uint64_t Oldest = ~0ull;
    for (auto It = Entries.begin(); It != Entries.end(); ++It)
      for (std::size_t I = 0; I != It->second.size(); ++I)
        if (It->second[I].LastUse < Oldest) {
          Oldest = It->second[I].LastUse;
          VictimKey = It;
          VictimIdx = I;
        }
    if (VictimKey == Entries.end())
      return; // Cap smaller than any single entry and nothing cached.
    RetainedBytes -= VictimKey->second[VictimIdx].Bytes;
    VictimKey->second.erase(VictimKey->second.begin() + VictimIdx);
    if (VictimKey->second.empty())
      Entries.erase(VictimKey);
    ++Counters.Evictions;
  }
}

bool GenerationMemo::OptionsPattern::matches(const DaeOptions &O,
                                             const std::string &OColdFp,
                                             const std::string &ORepFp) const {
  auto Accepts = [](const GenerationTrace::ClassGuard &G, std::int64_t Th) {
    return G.Emittable && Th >= G.Need;
  };
  if (AffineEngaged) {
    if (O.UseConvexUnion != Ran.UseConvexUnion)
      return false;
    // The slack threshold only gates hull acceptance in convex-union mode;
    // two thresholds are interchangeable when they accept the same classes.
    if (O.UseConvexUnion) {
      if (GuardExact) {
        for (const auto &G : Guards)
          if (Accepts(G, O.HullSlackThreshold) !=
              Accepts(G, Ran.HullSlackThreshold))
            return false;
      } else if (O.HullSlackThreshold != Ran.HullSlackThreshold) {
        return false;
      }
    }
    if (!SplitClassesWild && O.SplitClasses != Ran.SplitClasses)
      return false;
    if (!MergeWild && O.MergeLoopNests != Ran.MergeLoopNests)
      return false;
    if (ORepFp != RepFp)
      return false;
    if (O.CountLimit != Ran.CountLimit)
      return false;
    if (O.PrefetchPerCacheLine != Ran.PrefetchPerCacheLine)
      return false;
    if (Ran.PrefetchPerCacheLine && O.CacheLineBytes != Ran.CacheLineBytes)
      return false;
  }
  if ((AffineEngaged || SkeletonEngaged) && !PrefetchWritesWild &&
      O.PrefetchWrites != Ran.PrefetchWrites)
    return false;
  if (SkeletonEngaged) {
    if (!SimplifyCfgWild && O.SimplifyCfg != Ran.SimplifyCfg)
      return false;
    if (OColdFp != ColdFp)
      return false;
  }
  return true;
}

AccessPhaseResult GenerationMemo::generate(Module &M, Function &Task,
                                           const DaeOptions &Opts) {
  pm::FunctionAnalysisManager FAM;
  return generate(M, Task, Opts, FAM);
}

AccessPhaseResult GenerationMemo::generate(Module &M, Function &Task,
                                           const DaeOptions &Opts,
                                           pm::FunctionAnalysisManager &FAM) {
  if (!passes::allCallsInlinable(Task)) {
    AccessPhaseResult R;
    R.Strategy = analysis::TaskClass::Rejected;
    R.Notes = "task contains a call that cannot be inlined";
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Rejections;
    return R;
  }
  passes::optimizeFunction(Task, FAM);

  const std::string Fp = taskContentFingerprint(Task, FAM);
  const std::string ColdFp = coldFingerprint(Task, Opts);
  const std::string RepFp = repFingerprint(Task, Opts);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Fp);
    if (It != Entries.end())
      for (Entry &E : It->second)
        if (E.Pattern.matches(Opts, ColdFp, RepFp)) {
          ++Counters.Hits;
          E.LastUse = ++LruTick;
          AccessPhaseResult R = E.Cached;
          if (E.Cached.AccessFn) {
            R.AccessFn = transplantFunction(*E.Cached.AccessFn, M,
                                            Task.getName() + ".access");
            pm::verifyGenerated(*R.AccessFn, "memo transplant");
            verify::auditGenerated(*R.AccessFn, "memo transplant");
          }
          return R;
        }
  }

  AccessPhaseResult R =
      generateAccessPhaseForOptimizedTask(M, Task, Opts, FAM);
  if (R.Strategy == analysis::TaskClass::Rejected) {
    // Rejection reasons are classification facts, not knob decisions; the
    // classification is cheap, so rejected tasks are not cached.
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Rejections;
    return R;
  }

  Entry E;
  E.Pattern.Ran = Opts;
  E.Pattern.Ran.ColdLoads = nullptr; // Never dereferenced after this point.
  E.Pattern.ColdFp = ColdFp;
  E.Pattern.RepFp = RepFp;
  E.Pattern.AffineEngaged =
      FAM.getResult<pm::TaskClassificationAnalysis>(Task).Class ==
      analysis::TaskClass::Affine;
  E.Pattern.SkeletonEngaged = R.Trace.SkeletonRan;
  E.Pattern.GuardExact = R.Trace.AffineRan;
  E.Pattern.Guards = R.Trace.Guards;
  E.Pattern.SplitClassesWild =
      R.Trace.AffineRan && Opts.SplitClasses && R.NumClasses == 1;
  E.Pattern.MergeWild =
      R.Trace.AffineRan && Opts.MergeLoopNests && !R.Trace.MergeApplied;
  E.Pattern.SimplifyCfgWild =
      R.Trace.SkeletonRan &&
      (Opts.SimplifyCfg ? R.Trace.CondsRewritten == 0
                        : R.Trace.CondCandidates == 0);
  E.Pattern.PrefetchWritesWild = countStores(Task) == 0;

  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.Misses;
  if (R.AccessFn && isCallFree(*R.AccessFn)) {
    E.Holder = std::make_unique<Module>("memo");
    E.Cached = R;
    E.Cached.AccessFn =
        transplantFunction(*R.AccessFn, *E.Holder, R.AccessFn->getName());
    // Estimated retained cost: the key plus the printed access phase stand
    // in for the held module (exact IR footprints are not observable).
    E.Bytes = Fp.size() + printFunction(*E.Cached.AccessFn).size();
    E.LastUse = ++LruTick;
    RetainedBytes += E.Bytes;
    Entries[Fp].push_back(std::move(E));
    evictToCapLocked();
  }
  return R;
}

GenerationMemo::Stats GenerationMemo::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

std::size_t GenerationMemo::retainedBytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return RetainedBytes;
}

std::size_t GenerationMemo::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::size_t N = 0;
  for (const auto &[Fp, Es] : Entries)
    N += Es.size();
  return N;
}
