//===- dae/AffineGenerator.h - Polyhedral access synthesis ------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The affine path of the access generator (section 5.1): computes the exact
/// per-instruction access sets as polyhedra in the array index space,
/// partitions them into parameter-signature classes, takes the convex union
/// per class guarded by the lattice-point count test NconvUn - th <= NOrig,
/// merges class nests with matching trip counts, and synthesizes a
/// minimal-depth prefetch loop nest with symbolic (parameter-dependent)
/// bounds.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_AFFINEGENERATOR_H
#define DAECC_DAE_AFFINEGENERATOR_H

#include "dae/AccessGenerator.h"
#include "poly/Polyhedron.h"

#include <optional>
#include <vector>

namespace dae {

namespace ir {
class Value;
} // namespace ir

namespace analysis {
class ScalarEvolution;
struct AffineAccess;
} // namespace analysis

/// Generates the affine access phase for \p Task, pulling LoopInfo and
/// ScalarEvolution from \p FAM (cache-hits after classification). On
/// failure (an access or bound turns out non-affine, or counting blows the
/// limit) returns a result with AccessFn == null; the driver then falls
/// back to the skeleton path.
AccessPhaseResult generateAffineAccess(ir::Module &M, ir::Function &Task,
                                       const DaeOptions &Opts,
                                       pm::FunctionAnalysisManager &FAM);

/// Exposed for unit tests: the image of \p Acc's iteration domain in array
/// index space, over variables [0, D) = array indices and [D, D+M) = the
/// task's integer parameters. Returns nullopt when the access or a
/// surrounding loop bound is not affine.
std::optional<poly::Polyhedron>
computeAccessImage(const analysis::AffineAccess &Acc,
                   analysis::ScalarEvolution &SE,
                   const std::vector<const ir::Value *> &Params);

} // namespace dae

#endif // DAECC_DAE_AFFINEGENERATOR_H
