//===- dae/DaeOptions.h - Access generation knobs ---------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every decision the paper discusses is a switch here, so the ablation
/// benches can reproduce the design-space arguments of sections 5.1-5.2:
/// convex union vs. memory-range analysis, the NconvUn <= NOrig (+th) guard,
/// class separation, nest merging, CFG simplification, the
/// discard-the-stores finding, and the cache-line-granularity future work.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_DAEOPTIONS_H
#define DAECC_DAE_DAEOPTIONS_H

#include <cstdint>
#include <set>
#include <vector>

namespace dae {

namespace ir {
class Instruction;
} // namespace ir

/// Configuration of the access-phase generators.
struct DaeOptions {
  // --- Affine path (section 5.1) ---

  /// Use the convex union of exact per-instruction access sets (5.1.2); when
  /// false, fall back to the memory-range (bounding box) analysis (5.1.1).
  bool UseConvexUnion = true;

  /// Slack "th" in the guard NconvUn - th <= NOrig. 0 reproduces the paper's
  /// default decision rule.
  std::int64_t HullSlackThreshold = 0;

  /// Separate accesses into classes by parameter signature before hulling
  /// (5.1 item 3, Listing 3 / Figure 2).
  bool SplitClasses = true;

  /// Merge per-class prefetch loop nests when their trip counts coincide
  /// (5.1 items 2-3, Listings 2(b), 3(b)).
  bool MergeLoopNests = true;

  // --- Skeleton path (section 5.2) ---

  /// Eliminate conditionals inside loop bodies that do not feed loop control
  /// (5.2.2 step 6). When false the skeleton keeps data-dependent control
  /// flow, replicating part of the computation.
  bool SimplifyCfg = true;

  /// Prefetch addresses that are only written. The paper found this does not
  /// help and discards stores (5.2.1); kept as a switch for the ablation.
  bool PrefetchWrites = false;

  /// Profile-guided selective prefetching (the refinement the paper
  /// proposes in sections 5.2.2/6.2.3): loads of the *original* task listed
  /// here rarely miss in practice, so the skeleton generator emits no
  /// prefetch for them (they may still survive as address computation).
  /// Null disables the feature.
  const std::set<const ir::Instruction *> *ColdLoads = nullptr;

  // --- Shared ---

  /// Issue one prefetch per cache line instead of per element in generated
  /// affine nests (5.2.3 "avenue of further optimizations").
  bool PrefetchPerCacheLine = false;
  std::int64_t CacheLineBytes = 64;

  /// Representative values for the task's integer arguments, used to
  /// evaluate NOrig / NconvUn (our stand-in for parametric Ehrhart
  /// evaluation; see DESIGN.md). Indexed by argument position; entries for
  /// pointer arguments are ignored.
  std::vector<std::int64_t> RepresentativeArgs;

  /// Abort counting beyond this many lattice points (guard only; counting is
  /// compile-time work on small representative sizes).
  long long CountLimit = 4000000;
};

} // namespace dae

#endif // DAECC_DAE_DAEOPTIONS_H
