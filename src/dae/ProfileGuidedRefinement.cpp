//===- dae/ProfileGuidedRefinement.cpp - PG regeneration pass --------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dae/ProfileGuidedRefinement.h"

#include "dae/GenerationMemo.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "passes/Passes.h"

using namespace dae;

pm::PreservedAnalyses
ProfileGuidedRefinementPass::run(ir::Function &F,
                                 pm::FunctionAnalysisManager &FAM) {
  auto BIt = Baselines.find(&F);
  if (BIt == Baselines.end() || !BIt->second.AccessFn)
    return pm::PreservedAnalyses::all();
  const AccessPhaseResult &Base = BIt->second;

  // Generation fingerprints the *optimized* body; the baseline generation
  // already optimized the task, so this is a cached no-op that just
  // guarantees the print the fingerprint reads is current.
  passes::optimizeFunction(F, FAM);

  TaskProfileData P;
  if (!Profile.lookup(taskContentFingerprint(F, FAM), P))
    return pm::PreservedAnalyses::all();

  RefinementAction Action = planRefinement(P, Base.Trace, Config);
  if (!Action.any())
    return pm::PreservedAnalyses::all();

  // Move the unrefined phase out of the generators' naming slot so the
  // regeneration (fresh or memo transplant) can claim "<task>.access". It
  // stays in the module — callers may still be simulating or pricing it —
  // but its cached analyses are stale once renamed.
  ir::Function *Old = Base.AccessFn;
  const std::string OldName = Old->getName();
  FAM.clear(*Old);
  Old->setName(OldName + ".unrefined");

  DaeOptions Opts = refinedOptions(BaseOpts, Action, Config);
  AccessPhaseResult R = Memo ? Memo->generate(M, F, Opts, FAM)
                             : generateAccessPhase(M, F, Opts, FAM);
  if (!R.AccessFn) {
    // Regeneration declined (e.g. the refined knobs pushed the task off the
    // affine path and the skeleton refused it): keep the baseline phase.
    Old->setName(OldName);
    return pm::PreservedAnalyses::all();
  }

  R.ProfileRefined = true;
  R.RefinementNote = Action.str();
  Refined[&F] = std::move(R);

  // The task function itself is untouched (regeneration only reads it), so
  // every cached analysis of F survives.
  return pm::PreservedAnalyses::all();
}
