//===- dae/SkeletonGenerator.h - Skeleton access synthesis ------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-affine path (section 5.2): the access phase is an optimized clone
/// of the task that keeps only memory-address computation and loop control
/// flow. Implements the six-step marking algorithm of section 5.2.2 with the
/// refinements of 5.2.1 (prefetch accompanies loads; stores discarded;
/// per-address dedup) and the simplified-CFG optimization (5.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_DAE_SKELETONGENERATOR_H
#define DAECC_DAE_SKELETONGENERATOR_H

#include "dae/AccessGenerator.h"

namespace dae {

/// Generates the skeleton access phase for \p Task. The clone's analyses
/// (LoopInfo, dominators, post-dominators) are cached in \p FAM across the
/// CFG-simplification sweeps. Returns a null AccessFn with a reason in
/// Notes when the safety conditions fail.
AccessPhaseResult generateSkeletonAccess(ir::Module &M, ir::Function &Task,
                                         const DaeOptions &Opts,
                                         pm::FunctionAnalysisManager &FAM);

} // namespace dae

#endif // DAECC_DAE_SKELETONGENERATOR_H
