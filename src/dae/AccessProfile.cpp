//===- dae/AccessProfile.cpp - Profile store + refinement planning ---------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dae/AccessProfile.h"

using namespace dae;

std::string RefinementAction::str() const {
  std::string S;
  auto Add = [&S](const char *Name) {
    if (!S.empty())
      S += ",";
    S += Name;
  };
  if (KeepControlFlow)
    Add("keep-control-flow");
  if (PruneColdPrefetches)
    Add("prune-cold-prefetches");
  if (SplitPhases)
    Add("split-phases");
  return S;
}

RefinementAction dae::planRefinement(const TaskProfileData &P,
                                     const GenerationTrace &Trace,
                                     const RefinementConfig &C) {
  RefinementAction A;
  if (P.Observations == 0)
    return A;

  // Coverage gap from pruned control flow: only the skeleton path prunes
  // conditionals, and only when it actually rewrote some does keeping them
  // change the phase. Regenerating with SimplifyCfg=false restores the
  // pruned arms' loads (FFT's bit-reverse swap arm is the canonical case).
  if (P.strictCoverage() < C.StrictCoverageTarget && Trace.SkeletonRan &&
      Trace.CondsRewritten > 0)
    A.KeepControlFlow = true;

  // Wasted prefetch: lines the execute phase never touches. The profiled
  // cold-load set tells the skeleton generator which loads to skip; without
  // one (or on the affine path, which has no per-load pruning hook) the
  // rule cannot act.
  if (P.overshoot() > C.OvershootBudget && Trace.SkeletonRan && C.ColdLoads &&
      !C.ColdLoads->empty())
    A.PruneColdPrefetches = true;

  // Reuse span across cache levels: a merged affine nest streams every
  // class's footprint in one phase. When the observed execute footprint
  // exceeds the private-cache capacity, the early classes' lines are evicted
  // before the execute phase reaches them — splitting the nests gives each
  // class its own, cache-sized reuse window. Only meaningful when merging
  // actually applied.
  if (Trace.AffineRan && Trace.MergeApplied &&
      P.ExecuteFootprintBytes > C.PhaseSplitFootprintBytes)
    A.SplitPhases = true;

  return A;
}

DaeOptions dae::refinedOptions(const DaeOptions &Base,
                               const RefinementAction &A,
                               const RefinementConfig &C) {
  DaeOptions O = Base;
  if (A.KeepControlFlow)
    O.SimplifyCfg = false;
  if (A.PruneColdPrefetches)
    O.ColdLoads = C.ColdLoads;
  if (A.SplitPhases)
    O.MergeLoopNests = false;
  return O;
}
