//===- dae/SkeletonGenerator.cpp - Skeleton access synthesis ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dae/SkeletonGenerator.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Cloner.h"
#include "ir/Module.h"
#include "passes/Passes.h"
#include "pm/Analyses.h"
#include "support/Casting.h"

#include <set>
#include <vector>

using namespace dae;
using namespace dae::analysis;
using namespace dae::ir;

namespace {

/// Step 6 companion (section 5.2.2): rewrites every conditional branch that
/// is not a loop exit test into an unconditional branch to the conditional
/// region's join block (its immediate post-dominator), then sweeps the
/// now-unreachable arms. "By eliminating the conditionals, we ensure that
/// only data which is guaranteed to be accessed in all iterations is
/// prefetched."
/// Finds a value that can stand in for \p Phi on the new edge from \p BB:
/// a non-instruction incoming value, or an incoming instruction whose block
/// dominates \p BB. The access phase is a speculative prefetch, so an
/// arbitrary choice among the arms is permissible; only dominance must hold.
Value *pickSafeIncoming(PhiInst *Phi, BasicBlock *BB,
                        const DominatorTree &DT) {
  for (unsigned I = 0; I != Phi->getNumIncoming(); ++I) {
    Value *V = Phi->getIncomingValue(I);
    auto *Inst = dyn_cast<Instruction>(V);
    if (!Inst)
      return V;
    if (DT.dominates(Inst->getParent(), BB))
      return V;
  }
  return nullptr;
}

/// Returns the number of conditionals rewritten (for the generation memo's
/// knob-relevance trace).
unsigned simplifyControlFlow(Function &F, pm::FunctionAnalysisManager &FAM) {
  unsigned Rewritten = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Pulled once per sweep; the rewrites below work against this snapshot
    // and the cache is invalidated at the end of a changing sweep.
    const LoopInfo &LI = FAM.getResult<pm::LoopAnalysis>(F);
    const PostDominatorTree &PDT = FAM.getResult<pm::PostDominatorsAnalysis>(F);
    const DominatorTree &DT = FAM.getResult<pm::DominatorsAnalysis>(F);
    for (const auto &BB : F) {
      auto *Br = dyn_cast_if_present<BrInst>(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      Loop *L = LI.getLoopFor(BB.get());
      if (L) {
        bool TrueIn = L->contains(Br->getTrueDest());
        bool FalseIn = L->contains(Br->getFalseDest());
        if (TrueIn != FalseIn)
          continue; // Loop exit test: maintains the loop's control flow.
      } else {
        continue; // Only conditionals embedded in loop bodies (section
                  // 5.2.2); straight-line guards outside loops are kept.
      }
      BasicBlock *Join = PDT.ipdom(BB.get());
      if (!Join)
        continue; // No join (diverging region); keep the conditional.

      // When BB becomes a direct predecessor of the join, its phis need a
      // value for the new edge; bail out if no dominating choice exists.
      bool JoinWasSucc =
          Br->getTrueDest() == Join || Br->getFalseDest() == Join;
      std::vector<std::pair<PhiInst *, Value *>> NewEdges;
      if (!JoinWasSucc) {
        bool AllSafe = true;
        for (PhiInst *Phi : Join->phis()) {
          Value *V = pickSafeIncoming(Phi, BB.get(), DT);
          if (!V) {
            AllSafe = false;
            break;
          }
          NewEdges.emplace_back(Phi, V);
        }
        if (!AllSafe)
          continue;
      }

      // Unhook phi edges of the abandoned successors.
      for (unsigned S = 0; S != Br->getNumSuccessors(); ++S) {
        BasicBlock *Succ = Br->getSuccessor(S);
        if (Succ == Join)
          continue;
        for (PhiInst *Phi : Succ->phis()) {
          int Idx = Phi->getBlockIndex(BB.get());
          if (Idx >= 0)
            Phi->removeIncoming(static_cast<unsigned>(Idx));
        }
      }
      for (auto &[Phi, V] : NewEdges)
        Phi->addIncoming(V, BB.get());
      Br->makeUnconditional(Join);
      ++Rewritten;
      Changed = true;
    }
    if (Changed) {
      FAM.invalidate(F, pm::PreservedAnalyses::none());
      passes::runSimplifyCFG(F);
      passes::runDCE(F);
    }
  }
  return Rewritten;
}

/// Counts conditional branches inside loop bodies that are not loop exit
/// tests — the candidates simplifyControlFlow would consider. Zero means the
/// SimplifyCfg knob cannot affect this task.
unsigned countLoopConditionals(Function &F,
                               pm::FunctionAnalysisManager &FAM) {
  const LoopInfo &LI = FAM.getResult<pm::LoopAnalysis>(F);
  unsigned Candidates = 0;
  for (const auto &BB : F) {
    auto *Br = dyn_cast_if_present<BrInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    Loop *L = LI.getLoopFor(BB.get());
    if (!L)
      continue;
    if (L->contains(Br->getTrueDest()) != L->contains(Br->getFalseDest()))
      continue;
    ++Candidates;
  }
  return Candidates;
}

} // namespace

AccessPhaseResult dae::generateSkeletonAccess(Module &M, Function &Task,
                                              const DaeOptions &Opts,
                                              pm::FunctionAnalysisManager &FAM) {
  AccessPhaseResult Result;
  Result.Strategy = TaskClass::Skeleton;

  // Step 2: clone (privatizes all task locals).
  ValueMap CloneMap;
  std::unique_ptr<Function> CloneOwner =
      cloneFunction(Task, Task.getName() + ".access", &CloneMap);
  Function *Clone = CloneOwner.get();
  Clone->setTask(false);

  // Profile-guided selective prefetching: map the original cold loads onto
  // their clones so the insertion loop below can skip them.
  std::set<const Instruction *> ColdClones;
  if (Opts.ColdLoads)
    for (const Instruction *Orig : *Opts.ColdLoads) {
      auto It = CloneMap.find(Orig);
      if (It != CloneMap.end())
        ColdClones.insert(cast<Instruction>(It->second));
    }

  // Steps 3-4: roots. Insert a prefetch alongside each qualifying read
  // (section 5.2.1: "accompany, rather than replace, each load"), deduped
  // per address value; stores contribute prefetches only in the ablation
  // configuration and are always discarded themselves. This runs before CFG
  // simplification so reads guaranteed to execute keep their prefetch even
  // when the load itself becomes dead; prefetches in eliminated conditional
  // arms disappear with the arm (the paper's "reads not guaranteed to
  // execute are discarded").
  std::set<Value *> PrefetchedAddrs;
  std::vector<StoreInst *> Stores;
  for (const auto &BB : *Clone) {
    std::vector<Instruction *> Insts;
    for (const auto &I : *BB)
      Insts.push_back(I.get());
    for (Instruction *I : Insts) {
      if (auto *Ld = dyn_cast<LoadInst>(I)) {
        if (ColdClones.count(Ld))
          continue; // Profiled as rarely missing: no prefetch.
        Value *Ptr = Ld->getPointer();
        if (PrefetchedAddrs.insert(Ptr).second)
          BB->insertBefore(std::make_unique<PrefetchInst>(Ptr), Ld);
      } else if (auto *St = dyn_cast<StoreInst>(I)) {
        if (Opts.PrefetchWrites) {
          Value *Ptr = St->getPointer();
          if (PrefetchedAddrs.insert(Ptr).second)
            BB->insertBefore(std::make_unique<PrefetchInst>(Ptr), St);
        }
        Stores.push_back(St);
      }
    }
  }

  // Simplified CFG (section 5.2.2, "Simplified CFG"). Stores must be
  // discarded first so that store-only conditional arms do not anchor their
  // blocks, and so join-block phis feeding only stores disappear.
  for (StoreInst *St : Stores)
    St->getParent()->erase(St);
  Stores.clear();
  Result.Trace.SkeletonRan = true;
  Result.Trace.CondCandidates = countLoopConditionals(*Clone, FAM);
  if (Opts.SimplifyCfg)
    Result.Trace.CondsRewritten = simplifyControlFlow(*Clone, FAM);

  // Step 5: mark address computation and loop control flow by walking the
  // use-def chains from the prefetches and terminators.
  std::set<Instruction *> Marked;
  std::vector<Instruction *> Work;
  auto MarkOperands = [&](Instruction *I) {
    for (Value *Op : I->operands())
      if (auto *OpI = dyn_cast<Instruction>(Op))
        if (Marked.insert(OpI).second)
          Work.push_back(OpI);
  };
  for (const auto &BB : *Clone)
    for (const auto &I : *BB)
      if (I->isTerminator() || isa<PrefetchInst>(I.get())) {
        Marked.insert(I.get());
        MarkOperands(I.get());
      }
  while (!Work.empty()) {
    Instruction *I = Work.back();
    Work.pop_back();
    MarkOperands(I);
  }

  // Step 6: discard every unmarked instruction; DCE-style unwinding handles
  // use ordering (marked instructions never use unmarked ones, by closure).
  bool Removed = true;
  while (Removed) {
    Removed = false;
    for (const auto &BB : *Clone) {
      std::vector<Instruction *> Dead;
      for (const auto &I : *BB)
        if (!Marked.count(I.get()) && !I->hasUsers() && !I->hasSideEffects())
          Dead.push_back(I.get());
      for (auto It = Dead.rbegin(); It != Dead.rend(); ++It) {
        if ((*It)->hasUsers())
          continue;
        BB->erase(*It);
        Removed = true;
      }
    }
  }

  // Finally: "-O3" cleanup interleaved with dead-loop removal for loops
  // whose entire body was discarded, iterated to a declared fixpoint (one
  // pipeline instead of the historical optimize/delete-loops/optimize
  // sequence). The marking above mutated the clone behind the cache.
  FAM.invalidate(*Clone, pm::PreservedAnalyses::none());
  passes::buildAccessCleanupPipeline()->run(*Clone, FAM);

  Result.AccessFn = M.addFunction(std::move(CloneOwner));
  Result.Notes = "skeleton access phase";
  return Result;
}
