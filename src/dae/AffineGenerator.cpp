//===- dae/AffineGenerator.cpp - Polyhedral access synthesis ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dae/AffineGenerator.h"

#include "analysis/LoopInfo.h"
#include "analysis/ScalarEvolution.h"
#include "ir/IRBuilder.h"
#include "pm/Analyses.h"
#include "poly/ConvexHull.h"
#include "support/Casting.h"
#include "support/Format.h"

#include <algorithm>
#include <set>

using namespace dae;
using namespace dae::analysis;
using namespace dae::ir;
using namespace dae::poly;

namespace {

//===----------------------------------------------------------------------===//
// Parameter space
//===----------------------------------------------------------------------===//

/// Integer arguments of the task, in argument order. These are the symbolic
/// parameters of every polyhedron (dimensions the generator never scans).
std::vector<const Value *> collectParams(const Function &Task) {
  std::vector<const Value *> Params;
  for (const auto &A : Task.args())
    if (A->getType() == Type::Int64)
      Params.push_back(A.get());
  return Params;
}

int paramIndex(const std::vector<const Value *> &Params, const Value *P) {
  for (unsigned I = 0; I != Params.size(); ++I)
    if (Params[I] == P)
      return static_cast<int>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// Access classes
//===----------------------------------------------------------------------===//

/// One access class: same base array, same shape, same parameter signature
/// (the paper's classA / classD separation, section 5.1 item 3).
struct AccessClass {
  Value *Base = nullptr;
  std::vector<std::int64_t> DimSizes;
  std::int64_t ElemSize = 0;
  std::vector<int> ParamSig; ///< Sorted parameter indices.
  std::vector<Polyhedron> Images;

  unsigned dims() const { return static_cast<unsigned>(DimSizes.size()); }
};

std::vector<int> signatureOf(const AffineAccess &Acc,
                             const std::vector<const Value *> &Params) {
  std::vector<int> Sig;
  for (const Value *P : Acc.paramSignature()) {
    int Idx = paramIndex(Params, P);
    assert(Idx >= 0 && "access references unknown parameter");
    Sig.push_back(Idx);
  }
  std::sort(Sig.begin(), Sig.end());
  return Sig;
}

//===----------------------------------------------------------------------===//
// Loop-nest emission helpers
//===----------------------------------------------------------------------===//

/// Emits floor(Num / Den) for a positive constant Den, correct for negative
/// numerators: (Num - ((Num % Den + Den) % Den)) / Den.
Value *emitFloorDiv(IRBuilder &B, Value *Num, std::int64_t Den) {
  assert(Den > 0 && "floor division by non-positive constant");
  if (Den == 1)
    return Num;
  Value *D = B.getInt(Den);
  Value *Rem = B.createSRem(Num, D);
  Value *Fixed = B.createSRem(B.createAdd(Rem, D), D);
  return B.createSDiv(B.createSub(Num, Fixed), D);
}

/// Emits ceil(Num / Den) = -floor(-Num / Den) for positive constant Den.
Value *emitCeilDiv(IRBuilder &B, Value *Num, std::int64_t Den) {
  if (Den == 1)
    return Num;
  Value *NegNum = B.createSub(B.getInt(0), Num);
  Value *Floored = emitFloorDiv(B, NegNum, Den);
  return B.createSub(B.getInt(0), Floored);
}

Value *emitMax(IRBuilder &B, Value *L, Value *R) {
  Value *Cmp = B.createCmp(CmpPred::SGT, L, R);
  return B.createSelect(Cmp, L, R);
}

Value *emitMin(IRBuilder &B, Value *L, Value *R) {
  Value *Cmp = B.createCmp(CmpPred::SLT, L, R);
  return B.createSelect(Cmp, L, R);
}

/// Emission context mapping polyhedron variables to IR values.
struct ScanContext {
  unsigned Dims = 0;                       ///< Number of scanned y dims.
  std::vector<Value *> YValues;            ///< IVs of emitted loops.
  std::vector<Value *> ParamValues;        ///< Access-fn args per parameter.
};

/// Emits the IR value of (Const + sum coeffs*vars) excluding variable
/// \p Skip. Variables [0, Dims) read from Ctx.YValues, the rest from
/// Ctx.ParamValues.
Value *emitLinearRest(IRBuilder &B, const PolyConstraint &C, unsigned Skip,
                      const ScanContext &Ctx) {
  Value *Acc = B.getInt(C.Const);
  for (unsigned V = 0; V != C.Coeffs.size(); ++V) {
    if (V == Skip || C.Coeffs[V] == 0)
      continue;
    Value *Var = V < Ctx.Dims ? Ctx.YValues[V]
                              : Ctx.ParamValues[V - Ctx.Dims];
    assert(Var && "scan references a dimension with no value yet");
    Value *Term = C.Coeffs[V] == 1
                      ? Var
                      : B.createMul(Var, B.getInt(C.Coeffs[V]));
    Acc = B.createAdd(Acc, Term);
  }
  return Acc;
}

/// Computes the [lower, upperExclusive) IR bounds of dimension \p Dim of
/// \p Scan, given values for outer dims and parameters in \p Ctx.
std::pair<Value *, Value *> emitDimBounds(IRBuilder &B, const Polyhedron &Scan,
                                          unsigned Dim,
                                          const ScanContext &Ctx) {
  // Project away inner dims so bounds depend only on outer dims + params.
  Polyhedron P = Scan;
  for (unsigned Inner = Dim + 1; Inner != Ctx.Dims; ++Inner)
    P = P.eliminate(Inner);
  P = P.removeRedundant();

  Value *Lower = nullptr, *UpperExcl = nullptr;
  for (const PolyConstraint &C : P.constraints()) {
    std::int64_t A = C.Coeffs[Dim];
    if (A == 0)
      continue;
    Value *Rest = emitLinearRest(B, C, Dim, Ctx);
    if (A > 0) {
      // A*y + rest >= 0  =>  y >= ceil(-rest / A).
      Value *Neg = B.createSub(B.getInt(0), Rest);
      Value *Bound = emitCeilDiv(B, Neg, A);
      Lower = Lower ? emitMax(B, Lower, Bound) : Bound;
    } else {
      // A*y + rest >= 0, A < 0  =>  y <= floor(rest / -A).
      Value *Bound = emitFloorDiv(B, Rest, -A);
      Value *Excl = B.createAdd(Bound, B.getInt(1));
      UpperExcl = UpperExcl ? emitMin(B, UpperExcl, Excl) : Excl;
    }
  }
  assert(Lower && UpperExcl && "scan dimension is unbounded");
  return {Lower, UpperExcl};
}

/// A prefetch target inside a (possibly merged) nest.
struct PrefetchTarget {
  Value *Base = nullptr;                ///< Remapped to the access function.
  std::vector<std::int64_t> DimSizes;
  std::int64_t ElemSize = 0;
  /// Per-dimension offset constants relative to the scanned class's lower
  /// bound (zero vector for the class that owns the scan shape); see nest
  /// merging. Values are emitted as (scan IV + OffsetExpr_d).
  std::vector<Value *> OffsetExprs; ///< Null entries mean zero offset.
};

/// Recursively emits the scan loops for \p Scan and calls prefetches in the
/// innermost body. \p Step applies to the innermost dimension only.
void emitScanLoops(IRBuilder &B, const Polyhedron &Scan, unsigned Dim,
                   ScanContext &Ctx,
                   const std::vector<PrefetchTarget> &Targets,
                   std::int64_t InnerStep) {
  if (Dim == Ctx.Dims) {
    for (const PrefetchTarget &T : Targets) {
      std::vector<Value *> Indices;
      for (unsigned D = 0; D != Ctx.Dims; ++D) {
        Value *Idx = Ctx.YValues[D];
        if (D < T.OffsetExprs.size() && T.OffsetExprs[D])
          Idx = B.createAdd(Idx, T.OffsetExprs[D]);
        Indices.push_back(Idx);
      }
      Value *Ptr = B.createGep(T.Base, Indices, T.DimSizes, T.ElemSize);
      B.createPrefetch(Ptr);
    }
    return;
  }

  auto [Lower, UpperExcl] = emitDimBounds(B, Scan, Dim, Ctx);
  std::int64_t Step = Dim + 1 == Ctx.Dims ? InnerStep : 1;
  emitCountedLoop(B, Lower, UpperExcl, B.getInt(Step),
                  strfmt("pf%u", Dim),
                  [&](IRBuilder &Inner, Value *IV) {
                    Ctx.YValues[Dim] = IV;
                    emitScanLoops(Inner, Scan, Dim + 1, Ctx, Targets,
                                  InnerStep);
                  });
  Ctx.YValues[Dim] = nullptr;
}

//===----------------------------------------------------------------------===//
// Counting helpers
//===----------------------------------------------------------------------===//

/// Substitutes representative values for all parameter dims of \p P.
Polyhedron instantiateParams(const Polyhedron &P, unsigned Dims,
                             const std::vector<std::int64_t> &ParamValues) {
  Polyhedron Res = P;
  for (unsigned I = 0; I != ParamValues.size(); ++I)
    Res = Res.instantiate(Dims + I, ParamValues[I]);
  return Res;
}

/// |union of images| at the representative parameters, or nullopt over limit.
std::optional<long long>
countUnion(const std::vector<Polyhedron> &Images, unsigned Dims,
           const std::vector<std::int64_t> &ParamValues, long long Limit) {
  std::set<std::vector<std::int64_t>> Points;
  for (const Polyhedron &Img : Images) {
    Polyhedron Inst = instantiateParams(Img, Dims, ParamValues);
    auto Count = Inst.countIntegerPoints(Limit);
    if (!Count)
      return std::nullopt;
    for (auto &Pt : Inst.enumerateIntegerPoints(Limit)) {
      Pt.resize(Dims); // Drop the (instantiated) parameter coordinates.
      Points.insert(std::move(Pt));
      if (static_cast<long long>(Points.size()) > Limit)
        return std::nullopt;
    }
  }
  return static_cast<long long>(Points.size());
}

/// True when every scan dimension of \p P has at least one symbolic lower
/// and upper bound after projecting inner dimensions away. A hull of blocks
/// at unrelated parameter offsets needs min()/max() bounds, which H-form
/// cannot express — such scans are not emittable and the planner must fall
/// back (this is the quantitative argument for the paper's class
/// separation).
bool scanIsEmittable(const Polyhedron &Scan, unsigned Dims) {
  for (unsigned Dim = 0; Dim != Dims; ++Dim) {
    Polyhedron P = Scan;
    for (unsigned Inner = Dim + 1; Inner != Dims; ++Inner)
      P = P.eliminate(Inner);
    bool HasLower = false, HasUpper = false;
    for (const PolyConstraint &C : P.constraints()) {
      if (C.Coeffs[Dim] > 0)
        HasLower = true;
      else if (C.Coeffs[Dim] < 0)
        HasUpper = true;
    }
    if (!HasLower || !HasUpper)
      return false;
  }
  return true;
}

/// True when every constraint of \p P involves at most one scanned (y)
/// dimension — i.e. the scan shape is a per-dimension box (possibly with
/// parametric bounds). Merging offsets require box shapes.
bool isBoxShape(const Polyhedron &P, unsigned Dims) {
  for (const PolyConstraint &C : P.constraints()) {
    unsigned NumY = 0;
    for (unsigned V = 0; V != Dims; ++V)
      if (C.Coeffs[V] != 0)
        ++NumY;
    if (NumY > 1)
      return false;
  }
  return true;
}

/// Per-dimension extents (hi - lo + 1) at representative parameters; nullopt
/// when unbounded.
std::optional<std::vector<std::int64_t>>
dimExtents(const Polyhedron &P, unsigned Dims,
           const std::vector<std::int64_t> &ParamValues) {
  Polyhedron Inst = instantiateParams(P, Dims, ParamValues);
  std::vector<std::int64_t> Ext;
  for (unsigned D = 0; D != Dims; ++D) {
    auto B = Inst.integerBounds(D);
    if (!B.Lo || !B.Hi)
      return std::nullopt;
    Ext.push_back(*B.Hi - *B.Lo + 1);
  }
  return Ext;
}

} // namespace

//===----------------------------------------------------------------------===//
// Access image computation
//===----------------------------------------------------------------------===//

std::optional<Polyhedron>
dae::computeAccessImage(const AffineAccess &Acc, ScalarEvolution &SE,
                        const std::vector<const Value *> &Params) {
  const LoopInfo &LI = SE.getLoopInfo();
  const unsigned D = static_cast<unsigned>(Acc.Indices.size());
  const unsigned M = static_cast<unsigned>(Params.size());

  // Enclosing loops, outermost first.
  std::vector<const Loop *> Loops;
  for (Loop *L = LI.getLoopFor(Acc.MemInst->getParent()); L;
       L = L->getParent())
    Loops.push_back(L);
  std::reverse(Loops.begin(), Loops.end());
  const unsigned NIV = static_cast<unsigned>(Loops.size());

  auto ivIndex = [&](const Loop *L) -> int {
    for (unsigned I = 0; I != Loops.size(); ++I)
      if (Loops[I] == L)
        return static_cast<int>(I);
    return -1;
  };

  // Combined space: [0, D) = y, [D, D+NIV) = IVs, [D+NIV, D+NIV+M) = params.
  const unsigned Total = D + NIV + M;
  Polyhedron Combined(Total);

  auto addAffineTerm = [&](std::vector<std::int64_t> &Row,
                           const AffineExpr &E, std::int64_t Scale,
                           std::int64_t &Const) -> bool {
    Const += Scale * E.Const;
    for (const auto &[L, C] : E.IVCoeffs) {
      int Idx = ivIndex(L);
      if (Idx < 0)
        return false; // References an IV outside the enclosing nest.
      Row[D + static_cast<unsigned>(Idx)] += Scale * C;
    }
    for (const auto &[P, C] : E.ParamCoeffs) {
      int Idx = paramIndex(Params, P);
      if (Idx < 0)
        return false;
      Row[D + NIV + static_cast<unsigned>(Idx)] += Scale * C;
    }
    return true;
  };

  // y_t == f_t(iv, p).
  for (unsigned T = 0; T != D; ++T) {
    std::vector<std::int64_t> Row(Total, 0);
    std::int64_t Const = 0;
    Row[T] = 1;
    if (!addAffineTerm(Row, Acc.Indices[T], -1, Const))
      return std::nullopt;
    Combined.addEquality(std::move(Row), Const);
  }

  // Domain: Lower <= iv < Upper for each enclosing loop.
  for (unsigned I = 0; I != NIV; ++I) {
    auto Bounds = SE.getLoopBounds(Loops[I]);
    if (!Bounds)
      return std::nullopt;
    {
      std::vector<std::int64_t> Row(Total, 0);
      std::int64_t Const = 0;
      Row[D + I] = 1;
      if (!addAffineTerm(Row, Bounds->Lower, -1, Const))
        return std::nullopt;
      Combined.addInequality(std::move(Row), Const);
    }
    {
      std::vector<std::int64_t> Row(Total, 0);
      std::int64_t Const = -1; // iv <= Upper - 1.
      Row[D + I] = -1;
      if (!addAffineTerm(Row, Bounds->Upper, 1, Const))
        return std::nullopt;
      Combined.addInequality(std::move(Row), Const);
    }
  }

  // Project out the IV dims.
  for (unsigned I = 0; I != NIV; ++I)
    Combined = Combined.eliminate(D + I);
  Combined = Combined.removeRedundant();

  // Repack into [y][p] layout.
  Polyhedron Image(D + M);
  for (const PolyConstraint &C : Combined.constraints()) {
    std::vector<std::int64_t> Row(D + M, 0);
    bool UsesIV = false;
    for (unsigned V = 0; V != Total; ++V) {
      if (C.Coeffs[V] == 0)
        continue;
      if (V < D)
        Row[V] = C.Coeffs[V];
      else if (V < D + NIV)
        UsesIV = true;
      else
        Row[D + (V - D - NIV)] = C.Coeffs[V];
    }
    assert(!UsesIV && "projection left an IV term behind");
    if (UsesIV)
      return std::nullopt;
    Image.addInequality(std::move(Row), C.Const);
  }
  return Image;
}

//===----------------------------------------------------------------------===//
// Generator driver
//===----------------------------------------------------------------------===//

AccessPhaseResult dae::generateAffineAccess(Module &M, Function &Task,
                                            const DaeOptions &Opts,
                                            pm::FunctionAnalysisManager &FAM) {
  AccessPhaseResult Result;
  Result.Strategy = TaskClass::Affine;

  ScalarEvolution &SE = FAM.getResult<pm::ScalarEvolutionAnalysis>(Task);
  std::vector<const Value *> Params = collectParams(Task);

  // Representative parameter values (defaults keep counting bounded).
  std::vector<std::int64_t> RepValues;
  for (unsigned I = 0; I != Params.size(); ++I) {
    const auto *Arg = cast<Argument>(Params[I]);
    std::int64_t V = 8;
    if (Arg->getIndex() < Opts.RepresentativeArgs.size())
      V = Opts.RepresentativeArgs[Arg->getIndex()];
    RepValues.push_back(V);
  }

  // Collect and classify accesses. Reads only, unless PrefetchWrites.
  std::vector<AccessClass> Classes;
  for (const auto &BB : Task) {
    for (const auto &I : *BB) {
      bool IsLoad = isa<LoadInst>(I.get());
      bool IsStore = isa<StoreInst>(I.get());
      if (!IsLoad && !(IsStore && Opts.PrefetchWrites))
        continue;
      if (IsStore && !Opts.PrefetchWrites)
        continue;
      auto Acc = SE.getAccess(I.get());
      if (!Acc) {
        Result.Notes = "non-affine access; affine generation abandoned";
        return Result;
      }
      if (!Opts.UseConvexUnion) {
        // Memory-range mode (section 5.1.1): flatten the access to the 1-D
        // element-offset space, so the hull of the union degenerates to the
        // union-of-ranges interval — including any unaccessed memory between
        // the touched locations (Figure 1(b)).
        AffineExpr Flat;
        for (unsigned T = 0; T != Acc->Indices.size(); ++T) {
          std::int64_t StrideElems =
              Acc->Gep->getIndexStride(T) / Acc->ElemSize;
          Flat = Flat + Acc->Indices[T].scaled(StrideElems);
        }
        Acc->Indices = {Flat};
        Acc->DimSizes = {0};
      }
      auto Image = computeAccessImage(*Acc, SE, Params);
      if (!Image) {
        Result.Notes = "access image not computable";
        return Result;
      }
      std::vector<int> Sig =
          Opts.SplitClasses ? signatureOf(*Acc, Params) : std::vector<int>();
      AccessClass *Class = nullptr;
      for (AccessClass &C : Classes)
        if (C.Base == Acc->Base && C.DimSizes == Acc->DimSizes &&
            C.ElemSize == Acc->ElemSize && C.ParamSig == Sig) {
          Class = &C;
          break;
        }
      if (!Class) {
        Classes.push_back({Acc->Base, Acc->DimSizes, Acc->ElemSize, Sig, {}});
        Class = &Classes.back();
      }
      Class->Images.push_back(std::move(*Image));
    }
  }
  if (Classes.empty()) {
    Result.Notes = "task performs no prefetchable reads";
    return Result;
  }
  Result.NumClasses = static_cast<unsigned>(Classes.size());

  // Per class: pick the scan shape (convex union guarded by the count test,
  // the 5.1.1 range hull, or the per-image fallback).
  struct PlannedNest {
    const AccessClass *Class;
    Polyhedron Scan;
    PlannedNest(const AccessClass *C, Polyhedron S)
        : Class(C), Scan(std::move(S)) {}
  };
  std::vector<PlannedNest> Nests;
  long long TotalNOrig = 0, TotalNScan = 0;
  bool AllHullsAccepted = true;

  for (AccessClass &C : Classes) {
    const unsigned D = C.dims();
    auto NOrig = countUnion(C.Images, D, RepValues, Opts.CountLimit);
    if (!NOrig) {
      Result.Notes = "lattice-point counting exceeded the configured limit";
      return Result;
    }
    TotalNOrig += *NOrig;

    // In memory-range mode the accesses were flattened to 1-D, so the hull
    // of the union *is* the union-of-ranges interval of section 5.1.1.
    Polyhedron Hull = convexHullOfUnion(C.Images);
    auto NHull = instantiateParams(Hull, D, RepValues)
                     .countIntegerPoints(Opts.CountLimit);
    if (!NHull) {
      Result.Notes = "hull counting exceeded the configured limit";
      return Result;
    }

    GenerationTrace::ClassGuard Guard;
    Guard.Emittable = scanIsEmittable(Hull, D);
    Guard.Need = *NHull - *NOrig;
    Result.Trace.Guards.push_back(Guard);

    // The count guard is the refinement introduced with the convex-union
    // analysis; the 5.1.1 baseline scans its range unconditionally.
    if (Guard.Emittable &&
        (!Opts.UseConvexUnion ||
         *NHull - Opts.HullSlackThreshold <= *NOrig)) {
      TotalNScan += *NHull;
      Nests.emplace_back(&C, std::move(Hull));
    } else {
      // Hull too wide (would prefetch unaccessed memory): scan each distinct
      // image individually instead.
      AllHullsAccepted = false;
      std::vector<Polyhedron> Unique;
      for (const Polyhedron &Img : C.Images) {
        Polyhedron Canon = Img.removeRedundant();
        bool Dup = false;
        for (const Polyhedron &Seen : Unique)
          if (Seen.constraints() == Canon.constraints()) {
            Dup = true;
            break;
          }
        if (!Dup)
          Unique.push_back(std::move(Canon));
      }
      for (Polyhedron &Img : Unique) {
        if (!scanIsEmittable(Img, D)) {
          Result.Notes = "access image lacks affine symbolic bounds";
          return Result;
        }
        auto N = instantiateParams(Img, D, RepValues)
                     .countIntegerPoints(Opts.CountLimit);
        TotalNScan += N ? *N : 0;
        Nests.emplace_back(&C, std::move(Img));
      }
    }
  }
  Result.NOrig = TotalNOrig;
  Result.NConvUn = TotalNScan;
  Result.UsedConvexUnion = Opts.UseConvexUnion && AllHullsAccepted;

  // Merge nests with identical dimensionality, box shape, and trip counts
  // (sections 5.1 items 2-3).
  struct MergedNest {
    std::vector<const PlannedNest *> Members;
  };
  std::vector<MergedNest> Merged;
  std::vector<std::optional<std::vector<std::int64_t>>> Extents;
  for (const PlannedNest &N : Nests)
    Extents.push_back(
        isBoxShape(N.Scan, N.Class->dims())
            ? dimExtents(N.Scan, N.Class->dims(), RepValues)
            : std::nullopt);
  std::vector<bool> Used(Nests.size(), false);
  for (unsigned I = 0; I != Nests.size(); ++I) {
    if (Used[I])
      continue;
    MergedNest MN;
    MN.Members.push_back(&Nests[I]);
    Used[I] = true;
    if (Opts.MergeLoopNests && Extents[I]) {
      for (unsigned J = I + 1; J != Nests.size(); ++J) {
        if (Used[J] || !Extents[J])
          continue;
        if (Nests[J].Class->dims() != Nests[I].Class->dims())
          continue;
        if (*Extents[J] != *Extents[I])
          continue;
        MN.Members.push_back(&Nests[J]);
        Used[J] = true;
      }
    }
    Merged.push_back(std::move(MN));
  }
  Result.NumPrefetchNests = static_cast<unsigned>(Merged.size());
  Result.Trace.MergeApplied = Merged.size() != Nests.size();

  // Emit the access function.
  std::vector<Type> ParamTys;
  for (const auto &A : Task.args())
    ParamTys.push_back(A->getType());
  Function *AccessFn =
      M.createFunction(Task.getName() + ".access", Type::Void, ParamTys);

  auto remapBase = [&](Value *Base) -> Value * {
    if (auto *Arg = dyn_cast<Argument>(Base))
      return AccessFn->getArg(Arg->getIndex());
    return Base; // Globals are shared.
  };

  IRBuilder B(M, AccessFn->createBlock("entry"));
  ScanContext Ctx;
  Ctx.ParamValues.clear();
  for (const Value *P : Params)
    Ctx.ParamValues.push_back(
        AccessFn->getArg(cast<Argument>(P)->getIndex()));

  for (const MergedNest &MN : Merged) {
    const PlannedNest *Lead = MN.Members.front();
    const unsigned D = Lead->Class->dims();
    Ctx.Dims = D;
    Ctx.YValues.assign(D, nullptr);

    // Innermost-dim step for per-cache-line prefetching.
    std::int64_t InnerStep = 1;
    if (Opts.PrefetchPerCacheLine) {
      std::int64_t Elem = Lead->Class->ElemSize;
      bool SameElem = true;
      for (const PlannedNest *N : MN.Members)
        SameElem &= N->Class->ElemSize == Elem;
      if (SameElem && Elem > 0 && Opts.CacheLineBytes > Elem)
        InnerStep = Opts.CacheLineBytes / Elem;
    }

    // Prefetch targets: the lead scans its own shape; merged members are
    // addressed at (scan IV - lead lower + member lower) per dimension.
    std::vector<PrefetchTarget> Targets;
    for (const PlannedNest *N : MN.Members) {
      PrefetchTarget T;
      T.Base = remapBase(N->Class->Base);
      T.DimSizes = N->Class->DimSizes;
      T.ElemSize = N->Class->ElemSize;
      T.OffsetExprs.assign(D, nullptr);
      if (N != Lead) {
        for (unsigned Dim = 0; Dim != D; ++Dim) {
          // Symbolic lower bounds of both shapes along Dim: since shapes are
          // boxes, the single lower-bound row determines it.
          auto lowerExpr = [&](const Polyhedron &Scan) -> Value * {
            Polyhedron P = Scan;
            for (unsigned Other = 0; Other != D; ++Other)
              if (Other != Dim)
                P = P.eliminate(Other);
            P = P.removeRedundant();
            Value *Lower = nullptr;
            for (const PolyConstraint &C : P.constraints()) {
              if (C.Coeffs[Dim] <= 0)
                continue;
              Value *Rest = emitLinearRest(B, C, Dim, Ctx);
              Value *Neg = B.createSub(B.getInt(0), Rest);
              Value *Bound = emitCeilDiv(B, Neg, C.Coeffs[Dim]);
              Lower = Lower ? emitMax(B, Lower, Bound) : Bound;
            }
            assert(Lower && "box shape without a lower bound");
            return Lower;
          };
          Value *LeadLo = lowerExpr(Lead->Scan);
          Value *MemberLo = lowerExpr(N->Scan);
          T.OffsetExprs[Dim] = B.createSub(MemberLo, LeadLo);
        }
      }
      Targets.push_back(std::move(T));
    }

    emitScanLoops(B, Lead->Scan, 0, Ctx, Targets, InnerStep);
  }
  B.createRet();

  Result.AccessFn = AccessFn;
  Result.Trace.AffineRan = true;
  Result.Notes = strfmt(
      "affine access: %u classes, %u nests, NOrig=%lld, NScan=%lld%s",
      Result.NumClasses, Result.NumPrefetchNests, Result.NOrig,
      Result.NConvUn, AllHullsAccepted ? "" : " (hull rejected for a class)");
  return Result;
}
