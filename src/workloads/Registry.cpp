//===- workloads/Registry.cpp - Workload factory ----------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <cassert>
#include <unordered_set>

using namespace dae;
using namespace dae::workloads;

std::vector<ir::Function *> Workload::taskFunctions() const {
  if (!TaskFunctions.empty())
    return TaskFunctions;
  // Hand-built workload: derive the distinct functions from the task list,
  // resolving through the module so the result is mutable.
  std::vector<ir::Function *> Fns;
  std::unordered_set<const ir::Function *> Seen;
  for (const runtime::Task &T : Tasks)
    if (Seen.insert(T.Execute).second) {
      ir::Function *F = M->getFunction(T.Execute->getName());
      assert(F == T.Execute && "task function not registered in module");
      Fns.push_back(F);
    }
  return Fns;
}

std::vector<std::unique_ptr<Workload>> workloads::buildAll(Scale S) {
  std::vector<std::unique_ptr<Workload>> All;
  All.push_back(buildLu(S));
  All.push_back(buildCholesky(S));
  All.push_back(buildFft(S));
  All.push_back(buildLbm(S));
  All.push_back(buildLibQuantum(S));
  All.push_back(buildCigar(S));
  All.push_back(buildCg(S));
  return All;
}

std::unique_ptr<Workload> workloads::buildByName(const std::string &Name,
                                                 Scale S) {
  if (Name == "lu")
    return buildLu(S);
  if (Name == "cholesky")
    return buildCholesky(S);
  if (Name == "fft")
    return buildFft(S);
  if (Name == "lbm")
    return buildLbm(S);
  if (Name == "libq")
    return buildLibQuantum(S);
  if (Name == "cigar")
    return buildCigar(S);
  if (Name == "cg")
    return buildCg(S);
  return nullptr;
}
