//===- workloads/Workload.h - Benchmark workload interface ------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seven applications of the paper's evaluation (section 6), ported to
/// Task IR: LU, Cholesky, FFT (SPLASH2-style compute-bound kernels), LBM and
/// libquantum (SPEC-style), CIGAR (case-injected genetic algorithm), and CG
/// (NAS). Each workload provides its module, the dynamic task list, a
/// deterministic data initializer, hand-written "Manual DAE" access phases
/// reproducing the expert versions described in section 6.2, and the
/// representative parameters the affine generator counts with.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_WORKLOADS_WORKLOAD_H
#define DAECC_WORKLOADS_WORKLOAD_H

#include "dae/DaeOptions.h"
#include "ir/Module.h"
#include "runtime/Task.h"
#include "sim/Memory.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dae {
namespace workloads {

/// A benchmark instance: IR, tasks, data, and expert access phases.
struct Workload {
  std::string Name;
  std::unique_ptr<ir::Module> M;

  /// Dynamic task list (Execute set; Access filled per scheme by the
  /// harness).
  std::vector<runtime::Task> Tasks;

  /// The distinct task functions behind Tasks, in first-use order. Builders
  /// populate this so the harness can hand mutable functions to the access
  /// generator (generation optimizes the task body in place) without a
  /// const_cast; taskFunctions() derives it on demand for hand-built
  /// workloads.
  std::vector<ir::Function *> TaskFunctions;

  /// TaskFunctions, computed from Tasks (via the module, for mutability)
  /// when the builder did not fill it in.
  std::vector<ir::Function *> taskFunctions() const;

  /// Expert-written access phase per task function (section 6.2's Manual
  /// DAE), already registered in the module.
  std::map<const ir::Function *, const ir::Function *> ManualAccess;

  /// Generator options (representative argument values for counting).
  DaeOptions Opts;

  /// Fills the workload's arrays with deterministic data.
  std::function<void(sim::Memory &, const sim::Loader &)> Init;

  /// Names of output globals to compare for correctness (DAE must produce
  /// bit-identical results to CAE: the access phase is a pure prefetch).
  std::vector<std::string> OutputGlobals;
  std::vector<std::uint64_t> OutputSizes; ///< Bytes, parallel to names.
};

/// Scale of a workload build (Small for tests, Full for the paper figures).
enum class Scale { Test, Full };

std::unique_ptr<Workload> buildLu(Scale S);
std::unique_ptr<Workload> buildCholesky(Scale S);
std::unique_ptr<Workload> buildFft(Scale S);
std::unique_ptr<Workload> buildLbm(Scale S);
std::unique_ptr<Workload> buildLibQuantum(Scale S);
std::unique_ptr<Workload> buildCigar(Scale S);
std::unique_ptr<Workload> buildCg(Scale S);

/// All seven, in the paper's Table 1 order.
std::vector<std::unique_ptr<Workload>> buildAll(Scale S);

/// Factory by name ("lu", "cholesky", "fft", "lbm", "libq", "cigar", "cg").
std::unique_ptr<Workload> buildByName(const std::string &Name, Scale S);

} // namespace workloads
} // namespace dae

#endif // DAECC_WORKLOADS_WORKLOAD_H
