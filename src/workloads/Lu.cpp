//===- workloads/Lu.cpp - Blocked LU factorization (SPLASH2-style) ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocked right-looking LU without pivoting on a diagonally dominant dense
/// matrix. Four task kinds per step k: diagonal-block factorization (the
/// Listing 1(b) kernel), row and column panel updates, and trailing-matrix
/// block updates (the Listing 3 shape: three parameterized blocks of the
/// same array). All tasks are affine — LU is a 3/3 row of Table 1 — so Auto
/// DAE uses the polyhedral generator throughout. The Manual DAE access
/// phases are "selectively prefetching" expert versions: they skip the
/// destination block of updates and the upper half of the diagonal kernel,
/// running faster but leaving misses to the execute phase (section 6.2.1's
/// described trade-off).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/MathUtil.h"

using namespace dae;
using namespace dae::ir;
using namespace dae::workloads;

namespace {

struct LuConfig {
  std::int64_t N;     ///< Matrix dimension (static array extent).
  std::int64_t Block; ///< Block size.
};

LuConfig configFor(Scale S) {
  return S == Scale::Test ? LuConfig{32, 8} : LuConfig{256, 16};
}

constexpr std::int64_t Elem = 8;

/// A[r][c] for the workload's square matrix.
Value *gepA(IRBuilder &B, GlobalVariable *A, std::int64_t N, Value *R,
            Value *C) {
  return B.createGep2D(A, R, C, N, Elem);
}

} // namespace

std::unique_ptr<Workload> workloads::buildLu(Scale S) {
  LuConfig Cfg = configFor(S);
  const std::int64_t N = Cfg.N, BS = Cfg.Block;

  auto W = std::make_unique<Workload>();
  W->Name = "LU";
  W->M = std::make_unique<Module>("lu");
  Module &M = *W->M;
  auto *A = M.createGlobal("A", static_cast<std::uint64_t>(N) * N * Elem);

  // --- Task: diagonal block factorization (Listing 1(b)) -----------------
  // args: (K0) block origin; loops i, j=i+1.., m=i+1.. over the block.
  Function *Diag = M.createFunction("lu_diag", Type::Void, {Type::Int64});
  Diag->setTask(true);
  {
    IRBuilder B(M, Diag->createBlock("entry"));
    Value *K0 = Diag->getArg(0);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *IP1 = B.createAdd(I, B.getInt(1));
      Value *Kii = B.createAdd(K0, I);
      emitCountedLoop(B, IP1, B.getInt(BS), B.getInt(1), "j",
                      [&](IRBuilder &B, Value *J) {
        Value *Kj = B.createAdd(K0, J);
        Value *Pji = gepA(B, A, N, Kj, Kii);
        Value *Pii = gepA(B, A, N, Kii, Kii);
        Value *L = B.createFDiv(B.createLoad(Type::Float64, Pji),
                                B.createLoad(Type::Float64, Pii));
        B.createStore(L, Pji);
        emitCountedLoop(B, IP1, B.getInt(BS), B.getInt(1), "m",
                        [&](IRBuilder &B, Value *Mi) {
          Value *Km = B.createAdd(K0, Mi);
          Value *Pjm = gepA(B, A, N, Kj, Km);
          Value *Pim = gepA(B, A, N, Kii, Km);
          Value *Upd = B.createFSub(
              B.createLoad(Type::Float64, Pjm),
              B.createFMul(B.createLoad(Type::Float64, Pji),
                           B.createLoad(Type::Float64, Pim)));
          B.createStore(Upd, Pjm);
        });
      });
    });
    B.createRet();
  }

  // Manual access for the diagonal block: the expert prefetches only the
  // lower triangle (selective prefetching).
  Function *DiagAccess =
      M.createFunction("lu_diag.manual", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, DiagAccess->createBlock("entry"));
    Value *K0 = DiagAccess->getArg(0);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *IP1 = B.createAdd(I, B.getInt(1));
      emitCountedLoop(B, B.getInt(0), IP1, B.getInt(1), "j",
                      [&](IRBuilder &B, Value *J) {
        B.createPrefetch(gepA(B, A, N, B.createAdd(K0, I),
                              B.createAdd(K0, J)));
      });
    });
    B.createRet();
  }

  // --- Task: row panel (apply L_kk below the diagonal to A[k][j]) --------
  // args: (K0, J0).
  Function *Row =
      M.createFunction("lu_row", Type::Void, {Type::Int64, Type::Int64});
  Row->setTask(true);
  {
    IRBuilder B(M, Row->createBlock("entry"));
    Value *K0 = Row->getArg(0), *J0 = Row->getArg(1);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *IP1 = B.createAdd(I, B.getInt(1));
      emitCountedLoop(B, IP1, B.getInt(BS), B.getInt(1), "r",
                      [&](IRBuilder &B, Value *R) {
        Value *Lri = B.createLoad(
            Type::Float64,
            gepA(B, A, N, B.createAdd(K0, R), B.createAdd(K0, I)));
        emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                        [&](IRBuilder &B, Value *C) {
          Value *Dst = gepA(B, A, N, B.createAdd(K0, R), B.createAdd(J0, C));
          Value *Src = gepA(B, A, N, B.createAdd(K0, I), B.createAdd(J0, C));
          Value *Upd = B.createFSub(
              B.createLoad(Type::Float64, Dst),
              B.createFMul(Lri, B.createLoad(Type::Float64, Src)));
          B.createStore(Upd, Dst);
        });
      });
    });
    B.createRet();
  }

  // Manual access for the row panel: prefetch the target block only.
  Function *RowAccess =
      M.createFunction("lu_row.manual", Type::Void, {Type::Int64, Type::Int64});
  {
    IRBuilder B(M, RowAccess->createBlock("entry"));
    Value *J0 = RowAccess->getArg(1);
    Value *K0 = RowAccess->getArg(0);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                      [&](IRBuilder &B, Value *C) {
        B.createPrefetch(gepA(B, A, N, B.createAdd(K0, R),
                              B.createAdd(J0, C)));
      });
    });
    B.createRet();
  }

  // --- Task: column panel (divide by U diagonal, update within column) ---
  // args: (I0, K0).
  Function *Col =
      M.createFunction("lu_col", Type::Void, {Type::Int64, Type::Int64});
  Col->setTask(true);
  {
    IRBuilder B(M, Col->createBlock("entry"));
    Value *I0 = Col->getArg(0), *K0 = Col->getArg(1);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                    [&](IRBuilder &B, Value *C) {
      Value *CP1 = B.createAdd(C, B.getInt(1));
      Value *Kc = B.createAdd(K0, C);
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                      [&](IRBuilder &B, Value *R) {
        Value *Ir = B.createAdd(I0, R);
        Value *Prc = gepA(B, A, N, Ir, Kc);
        Value *Pcc = gepA(B, A, N, Kc, Kc);
        Value *L = B.createFDiv(B.createLoad(Type::Float64, Prc),
                                B.createLoad(Type::Float64, Pcc));
        B.createStore(L, Prc);
        emitCountedLoop(B, CP1, B.getInt(BS), B.getInt(1), "m",
                        [&](IRBuilder &B, Value *Mi) {
          Value *Km = B.createAdd(K0, Mi);
          Value *Prm = gepA(B, A, N, Ir, Km);
          Value *Pcm = gepA(B, A, N, Kc, Km);
          Value *Upd = B.createFSub(
              B.createLoad(Type::Float64, Prm),
              B.createFMul(L, B.createLoad(Type::Float64, Pcm)));
          B.createStore(Upd, Prm);
        });
      });
    });
    B.createRet();
  }

  // Manual access for the column panel: target block only.
  Function *ColAccess =
      M.createFunction("lu_col.manual", Type::Void, {Type::Int64, Type::Int64});
  {
    IRBuilder B(M, ColAccess->createBlock("entry"));
    Value *I0 = ColAccess->getArg(0), *K0 = ColAccess->getArg(1);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                      [&](IRBuilder &B, Value *C) {
        B.createPrefetch(gepA(B, A, N, B.createAdd(I0, R),
                              B.createAdd(K0, C)));
      });
    });
    B.createRet();
  }

  // --- Task: trailing update A_ij -= A_ik * A_kj (Listing 3 shape) -------
  // args: (I0, J0, K0).
  Function *Upd = M.createFunction(
      "lu_update", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  Upd->setTask(true);
  {
    IRBuilder B(M, Upd->createBlock("entry"));
    Value *I0 = Upd->getArg(0), *J0 = Upd->getArg(1), *K0 = Upd->getArg(2);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      Value *Ir = B.createAdd(I0, R);
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "m",
                      [&](IRBuilder &B, Value *Mi) {
        Value *Km = B.createAdd(K0, Mi);
        Value *Lrm =
            B.createLoad(Type::Float64, gepA(B, A, N, Ir, Km));
        emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                        [&](IRBuilder &B, Value *C) {
          Value *Jc = B.createAdd(J0, C);
          Value *Dst = gepA(B, A, N, Ir, Jc);
          Value *Umc = B.createLoad(Type::Float64, gepA(B, A, N, Km, Jc));
          Value *V = B.createFSub(B.createLoad(Type::Float64, Dst),
                                  B.createFMul(Lrm, Umc));
          B.createStore(V, Dst);
        });
      });
    });
    B.createRet();
  }

  // Manual access for the update: prefetch the two source blocks, skip the
  // destination (selective).
  Function *UpdAccess = M.createFunction(
      "lu_update.manual", Type::Void,
      {Type::Int64, Type::Int64, Type::Int64});
  {
    IRBuilder B(M, UpdAccess->createBlock("entry"));
    Value *I0 = UpdAccess->getArg(0), *J0 = UpdAccess->getArg(1),
          *K0 = UpdAccess->getArg(2);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                      [&](IRBuilder &B, Value *C) {
        B.createPrefetch(gepA(B, A, N, B.createAdd(I0, R),
                              B.createAdd(K0, C)));
        B.createPrefetch(gepA(B, A, N, B.createAdd(K0, R),
                              B.createAdd(J0, C)));
      });
    });
    B.createRet();
  }

  W->ManualAccess = {{Diag, DiagAccess},
                     {Row, RowAccess},
                     {Col, ColAccess},
                     {Upd, UpdAccess}};
  W->TaskFunctions = {Diag, Row, Col, Upd};

  // --- Dynamic task list (waves encode the factorization order) ----------
  const std::int64_t NB = N / BS;
  unsigned Wave = 0;
  auto I64 = [](std::int64_t V) { return sim::RuntimeValue::ofInt(V); };
  for (std::int64_t K = 0; K != NB; ++K) {
    W->Tasks.push_back({Diag, nullptr, {I64(K * BS)}, Wave++});
    if (K + 1 < NB) {
      for (std::int64_t J = K + 1; J != NB; ++J)
        W->Tasks.push_back({Row, nullptr, {I64(K * BS), I64(J * BS)}, Wave});
      for (std::int64_t I = K + 1; I != NB; ++I)
        W->Tasks.push_back({Col, nullptr, {I64(I * BS), I64(K * BS)}, Wave});
      ++Wave;
      for (std::int64_t I = K + 1; I != NB; ++I)
        for (std::int64_t J = K + 1; J != NB; ++J)
          W->Tasks.push_back(
              {Upd, nullptr, {I64(I * BS), I64(J * BS), I64(K * BS)}, Wave});
      ++Wave;
    }
  }

  // --- Data: diagonally dominant matrix -----------------------------------
  W->Init = [N](sim::Memory &Mem, const sim::Loader &L) {
    std::uint64_t Base = L.baseOf("A");
    SplitMixRng Rng(0xA11CE);
    for (std::int64_t R = 0; R != N; ++R)
      for (std::int64_t C = 0; C != N; ++C) {
        double V = Rng.nextDouble();
        if (R == C)
          V += static_cast<double>(2 * N);
        Mem.storeF64(Base + static_cast<std::uint64_t>((R * N + C) * Elem),
                     V);
      }
  };
  W->OutputGlobals = {"A"};
  W->OutputSizes = {static_cast<std::uint64_t>(N) * N * Elem};

  // Representative parameters for counting: block offsets within the array.
  W->Opts.RepresentativeArgs = {BS, 2 * BS, 3 * BS};
  return W;
}
