//===- workloads/Cholesky.cpp - Blocked LDL^T factorization -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocked Cholesky in its square-root-free LDL^T form (the Task IR has no
/// sqrt, and LDL^T keeps every kernel purely arithmetic), right-looking and
/// in-place on the lower triangle of a symmetric positive-definite matrix.
/// Like LU it is fully affine (Table 1: 3/3 loops) and compute-bound. The
/// Manual DAE access phases are the expert's selective versions: triangular
/// prefetch for the diagonal kernel, sources-only for the trailing update.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/MathUtil.h"

using namespace dae;
using namespace dae::ir;
using namespace dae::workloads;

namespace {

constexpr std::int64_t Elem = 8;

Value *gepA(IRBuilder &B, GlobalVariable *A, std::int64_t N, Value *R,
            Value *C) {
  return B.createGep2D(A, R, C, N, Elem);
}

} // namespace

std::unique_ptr<Workload> workloads::buildCholesky(Scale S) {
  const std::int64_t N = S == Scale::Test ? 32 : 256;
  const std::int64_t BS = S == Scale::Test ? 8 : 16;

  auto W = std::make_unique<Workload>();
  W->Name = "Cholesky";
  W->M = std::make_unique<Module>("cholesky");
  Module &M = *W->M;
  auto *A = M.createGlobal("A", static_cast<std::uint64_t>(N) * N * Elem);

  // --- Diagonal block: in-place LDL^T (right-looking) --------------------
  // for j: d = A[jj]; for i > j: A[ij] /= d; for i > j: for k in j+1..=i:
  //   A[ik] -= A[ij] * A[kj] * d.
  Function *Diag = M.createFunction("chol_diag", Type::Void, {Type::Int64});
  Diag->setTask(true);
  {
    IRBuilder B(M, Diag->createBlock("entry"));
    Value *K0 = Diag->getArg(0);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "j",
                    [&](IRBuilder &B, Value *J) {
      Value *JP1 = B.createAdd(J, B.getInt(1));
      Value *Kj = B.createAdd(K0, J);
      Value *D = B.createLoad(Type::Float64, gepA(B, A, N, Kj, Kj));
      emitCountedLoop(B, JP1, B.getInt(BS), B.getInt(1), "i",
                      [&](IRBuilder &B, Value *I) {
        Value *Ki = B.createAdd(K0, I);
        Value *Pij = gepA(B, A, N, Ki, Kj);
        Value *Lij = B.createFDiv(B.createLoad(Type::Float64, Pij), D);
        B.createStore(Lij, Pij);
      });
      emitCountedLoop(B, JP1, B.getInt(BS), B.getInt(1), "i2",
                      [&](IRBuilder &B, Value *I) {
        Value *Ki = B.createAdd(K0, I);
        Value *Lij = B.createLoad(Type::Float64, gepA(B, A, N, Ki, Kj));
        Value *IP1 = B.createAdd(I, B.getInt(1));
        emitCountedLoop(B, JP1, IP1, B.getInt(1), "k",
                        [&](IRBuilder &B, Value *K) {
          Value *Kk = B.createAdd(K0, K);
          Value *Lkj = B.createLoad(Type::Float64, gepA(B, A, N, Kk, Kj));
          Value *Pik = gepA(B, A, N, Ki, Kk);
          Value *Upd = B.createFSub(
              B.createLoad(Type::Float64, Pik),
              B.createFMul(B.createFMul(Lij, Lkj), D));
          B.createStore(Upd, Pik);
        });
      });
    });
    B.createRet();
  }

  Function *DiagAccess =
      M.createFunction("chol_diag.manual", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, DiagAccess->createBlock("entry"));
    Value *K0 = DiagAccess->getArg(0);
    // Expert: lower triangle only.
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *IP1 = B.createAdd(I, B.getInt(1));
      emitCountedLoop(B, B.getInt(0), IP1, B.getInt(1), "j",
                      [&](IRBuilder &B, Value *J) {
        B.createPrefetch(gepA(B, A, N, B.createAdd(K0, I),
                              B.createAdd(K0, J)));
      });
    });
    B.createRet();
  }

  // --- Panel: L_I0,K0 = A_I0,K0 * (L_kk D_kk)^-T (right-looking) ---------
  // for j: d = A[K0+j][K0+j]; for r: A[I0+r][K0+j] /= d;
  //   for k > j: A[I0+r][K0+k] -= L_rj * A[K0+k][K0+j] * d.
  Function *Panel =
      M.createFunction("chol_panel", Type::Void, {Type::Int64, Type::Int64});
  Panel->setTask(true);
  {
    IRBuilder B(M, Panel->createBlock("entry"));
    Value *I0 = Panel->getArg(0), *K0 = Panel->getArg(1);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "j",
                    [&](IRBuilder &B, Value *J) {
      Value *JP1 = B.createAdd(J, B.getInt(1));
      Value *Kj = B.createAdd(K0, J);
      Value *D = B.createLoad(Type::Float64, gepA(B, A, N, Kj, Kj));
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                      [&](IRBuilder &B, Value *R) {
        Value *Ir = B.createAdd(I0, R);
        Value *Prj = gepA(B, A, N, Ir, Kj);
        Value *Lrj = B.createFDiv(B.createLoad(Type::Float64, Prj), D);
        B.createStore(Lrj, Prj);
        emitCountedLoop(B, JP1, B.getInt(BS), B.getInt(1), "k",
                        [&](IRBuilder &B, Value *K) {
          Value *Kk = B.createAdd(K0, K);
          Value *Lkj = B.createLoad(Type::Float64, gepA(B, A, N, Kk, Kj));
          Value *Prk = gepA(B, A, N, Ir, Kk);
          Value *Upd = B.createFSub(
              B.createLoad(Type::Float64, Prk),
              B.createFMul(B.createFMul(Lrj, Lkj), D));
          B.createStore(Upd, Prk);
        });
      });
    });
    B.createRet();
  }

  Function *PanelAccess = M.createFunction("chol_panel.manual", Type::Void,
                                           {Type::Int64, Type::Int64});
  {
    IRBuilder B(M, PanelAccess->createBlock("entry"));
    Value *I0 = PanelAccess->getArg(0), *K0 = PanelAccess->getArg(1);
    // Expert: target panel only, skipping the (hot) diagonal block.
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                      [&](IRBuilder &B, Value *C) {
        B.createPrefetch(gepA(B, A, N, B.createAdd(I0, R),
                              B.createAdd(K0, C)));
      });
    });
    B.createRet();
  }

  // --- Trailing update: A_I0,J0 -= L_I0,K0 * D * L_J0,K0^T ---------------
  // for m: d = A[K0+m][K0+m]; for r: t = A[I0+r][K0+m] * d;
  //   for c: A[I0+r][J0+c] -= t * A[J0+c][K0+m].
  Function *Upd = M.createFunction(
      "chol_update", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  Upd->setTask(true);
  {
    IRBuilder B(M, Upd->createBlock("entry"));
    Value *I0 = Upd->getArg(0), *J0 = Upd->getArg(1), *K0 = Upd->getArg(2);
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "m",
                    [&](IRBuilder &B, Value *Mi) {
      Value *Km = B.createAdd(K0, Mi);
      Value *D = B.createLoad(Type::Float64, gepA(B, A, N, Km, Km));
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                      [&](IRBuilder &B, Value *R) {
        Value *Ir = B.createAdd(I0, R);
        Value *Lrm = B.createLoad(Type::Float64, gepA(B, A, N, Ir, Km));
        Value *T = B.createFMul(Lrm, D);
        emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                        [&](IRBuilder &B, Value *C) {
          Value *Jc = B.createAdd(J0, C);
          Value *Lcm = B.createLoad(Type::Float64, gepA(B, A, N, Jc, Km));
          Value *Dst = gepA(B, A, N, Ir, Jc);
          Value *V = B.createFSub(B.createLoad(Type::Float64, Dst),
                                  B.createFMul(T, Lcm));
          B.createStore(V, Dst);
        });
      });
    });
    B.createRet();
  }

  Function *UpdAccess = M.createFunction(
      "chol_update.manual", Type::Void,
      {Type::Int64, Type::Int64, Type::Int64});
  {
    IRBuilder B(M, UpdAccess->createBlock("entry"));
    Value *I0 = UpdAccess->getArg(0), *J0 = UpdAccess->getArg(1),
          *K0 = UpdAccess->getArg(2);
    // Expert: the two source panels only, skipping the destination block.
    emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      emitCountedLoop(B, B.getInt(0), B.getInt(BS), B.getInt(1), "c",
                      [&](IRBuilder &B, Value *C) {
        B.createPrefetch(gepA(B, A, N, B.createAdd(I0, R),
                              B.createAdd(K0, C)));
        B.createPrefetch(gepA(B, A, N, B.createAdd(J0, R),
                              B.createAdd(K0, C)));
      });
    });
    B.createRet();
  }

  W->ManualAccess = {
      {Diag, DiagAccess}, {Panel, PanelAccess}, {Upd, UpdAccess}};
  W->TaskFunctions = {Diag, Panel, Upd};

  // --- Task list (lower-triangular block sweep) ---------------------------
  const std::int64_t NB = N / BS;
  unsigned Wave = 0;
  auto I64 = [](std::int64_t V) { return sim::RuntimeValue::ofInt(V); };
  for (std::int64_t K = 0; K != NB; ++K) {
    W->Tasks.push_back({Diag, nullptr, {I64(K * BS)}, Wave++});
    if (K + 1 < NB) {
      for (std::int64_t I = K + 1; I != NB; ++I)
        W->Tasks.push_back(
            {Panel, nullptr, {I64(I * BS), I64(K * BS)}, Wave});
      ++Wave;
      for (std::int64_t I = K + 1; I != NB; ++I)
        for (std::int64_t J = K + 1; J <= I; ++J)
          W->Tasks.push_back(
              {Upd, nullptr, {I64(I * BS), I64(J * BS), I64(K * BS)}, Wave});
      ++Wave;
    }
  }

  // --- Data: symmetric diagonally dominant (hence positive definite) ------
  W->Init = [N](sim::Memory &Mem, const sim::Loader &L) {
    std::uint64_t Base = L.baseOf("A");
    SplitMixRng Rng(0xC0DE5);
    for (std::int64_t R = 0; R != N; ++R)
      for (std::int64_t C = 0; C <= R; ++C) {
        double V = R == C ? Rng.nextDouble() + static_cast<double>(2 * N)
                          : Rng.nextDouble();
        Mem.storeF64(Base + static_cast<std::uint64_t>((R * N + C) * Elem),
                     V);
        Mem.storeF64(Base + static_cast<std::uint64_t>((C * N + R) * Elem),
                     V);
      }
  };
  W->OutputGlobals = {"A"};
  W->OutputSizes = {static_cast<std::uint64_t>(N) * N * Elem};
  W->Opts.RepresentativeArgs = {BS, 2 * BS, 3 * BS};
  return W;
}
