//===- workloads/LibQuantum.cpp - Quantum gate simulation (SPEC 462) --------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gate-by-gate simulation of a quantum register in libquantum's sparse
/// representation: each register node carries an explicit basis-state label
/// (State[i]) plus a complex amplitude (AmpRe/AmpIm). Gates stream over the
/// nodes, *load* the state label, test control bits of the loaded value, and
/// conditionally flip target bits or rotate the amplitude — exactly the
/// structure of quantum_toffoli()/quantum_cnot() in SPEC 462.libquantum.
/// The label load is unconditional and feeds control flow, so the skeleton
/// access phase keeps it and prefetches the node stream; the amplitude
/// accesses sit under the data-dependent branch and are discarded by the
/// Simplified-CFG optimization. With the register sized beyond the LLC this
/// is the paper's archetypal memory-bound application. The Manual DAE access
/// phase applies the expert trick of section 6.2.3: one prefetch per cache
/// line instead of per node.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/MathUtil.h"

using namespace dae;
using namespace dae::ir;
using namespace dae::workloads;

namespace {
constexpr std::int64_t Elem = 8;
}

std::unique_ptr<Workload> workloads::buildLibQuantum(Scale S) {
  const std::int64_t LogQ = S == Scale::Test ? 12 : 19;
  const std::int64_t Q = std::int64_t(1) << LogQ;
  const std::int64_t Chunks = S == Scale::Test ? 4 : 256;

  auto W = std::make_unique<Workload>();
  W->Name = "LibQ";
  W->M = std::make_unique<Module>("libq");
  Module &M = *W->M;
  // libquantum's register is an array of nodes {state; amplitude} — an AoS
  // layout where the basis-state label and the complex amplitude share a
  // cache line. Node stride: 4 x i64/f64 = 32 bytes (state, ampRe, ampIm,
  // pad), two nodes per 64-byte line.
  constexpr std::int64_t NodeElems = 4;
  auto *Reg = M.createGlobal(
      "Reg", static_cast<std::uint64_t>(Q) * NodeElems * Elem);

  // --- Task: toffoli/cnot-style gate over nodes [Begin, End) --------------
  // for i: s = State[i]; if ((s & Ctrl) == Ctrl) State[i] = s ^ Tgt.
  Function *Gate = M.createFunction(
      "libq_gate", Type::Void,
      {Type::Int64, Type::Int64, Type::Int64, Type::Int64});
  Gate->setTask(true);
  {
    IRBuilder B(M, Gate->createBlock("entry"));
    Value *Begin = Gate->getArg(0), *End = Gate->getArg(1);
    Value *Ctrl = Gate->getArg(2), *Tgt = Gate->getArg(3);
    emitCountedLoop(B, Begin, End, B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Function *Fn = B.getInsertBlock()->getParent();
      Value *Ptr = B.createGep2D(Reg, I, B.getInt(0), NodeElems, Elem);
      Value *Sv = B.createLoad(Type::Int64, Ptr);
      Value *Bits = B.createAnd(Sv, Ctrl);
      Value *Hit = B.createCmp(CmpPred::EQ, Bits, Ctrl);
      BasicBlock *Flip = Fn->createBlock("flip");
      BasicBlock *Join = Fn->createBlock("join");
      B.createCondBr(Hit, Flip, Join);
      B.setInsertBlock(Flip);
      B.createStore(B.createXor(Sv, Tgt), Ptr);
      B.createBr(Join);
      B.setInsertBlock(Join);
    });
    B.createRet();
  }

  // --- Task: conditional phase rotation --------------------------------------
  // for i: s = State[i]; if (s & Mask) rotate (AmpRe[i], AmpIm[i]).
  Function *Phase = M.createFunction(
      "libq_phase", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  Phase->setTask(true);
  {
    IRBuilder B(M, Phase->createBlock("entry"));
    Value *Begin = Phase->getArg(0), *End = Phase->getArg(1);
    Value *Mask = Phase->getArg(2);
    Value *C = B.getFloat(0.92387953251128674);  // cos(pi/8)
    Value *Sn = B.getFloat(0.38268343236508978); // sin(pi/8)
    emitCountedLoop(B, Begin, End, B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Function *Fn = B.getInsertBlock()->getParent();
      Value *Sv = B.createLoad(
          Type::Int64, B.createGep2D(Reg, I, B.getInt(0), NodeElems, Elem));
      Value *Bit = B.createAnd(Sv, Mask);
      Value *Hit = B.createCmp(CmpPred::NE, Bit, B.getInt(0));
      BasicBlock *Rot = Fn->createBlock("rot");
      BasicBlock *Join = Fn->createBlock("join");
      B.createCondBr(Hit, Rot, Join);
      B.setInsertBlock(Rot);
      Value *PR = B.createGep2D(Reg, I, B.getInt(1), NodeElems, Elem);
      Value *PI = B.createGep2D(Reg, I, B.getInt(2), NodeElems, Elem);
      Value *Ar = B.createLoad(Type::Float64, PR);
      Value *Ai = B.createLoad(Type::Float64, PI);
      B.createStore(B.createFSub(B.createFMul(Ar, C), B.createFMul(Ai, Sn)),
                    PR);
      B.createStore(B.createFAdd(B.createFMul(Ar, Sn), B.createFMul(Ai, C)),
                    PI);
      B.createBr(Join);
      B.setInsertBlock(Join);
    });
    B.createRet();
  }

  // Manual access: one prefetch per cache line of the node stream — the
  // expert's redundant-prefetch elimination (the auto version prefetches
  // State[i] once per node).
  auto MakeLineAccess = [&](const std::string &Name, unsigned NumArgs) {
    std::vector<Type> Tys(NumArgs, Type::Int64);
    Function *F = M.createFunction(Name, Type::Void, Tys);
    IRBuilder B(M, F->createBlock("entry"));
    Value *Begin = F->getArg(0), *End = F->getArg(1);
    // Two 32-byte nodes per line: stride 2 covers every line once, and the
    // amplitude fields ride along for free (same line as the state label).
    emitCountedLoop(B, Begin, End, B.getInt(2), "p",
                    [&](IRBuilder &B, Value *P) {
      B.createPrefetch(B.createGep2D(Reg, P, B.getInt(0), NodeElems, Elem));
    });
    B.createRet();
    return F;
  };
  Function *GateAccess = MakeLineAccess("libq_gate.manual", 4);
  Function *PhaseAccess = MakeLineAccess("libq_phase.manual", 3);

  W->ManualAccess = {{Gate, GateAccess}, {Phase, PhaseAccess}};
  W->TaskFunctions = {Gate, Phase};

  // --- Task list: a small circuit, chunked; one wave per gate --------------
  auto I64 = [](std::int64_t V) { return sim::RuntimeValue::ofInt(V); };
  const std::int64_t Chunk = Q / Chunks;
  unsigned Wave = 0;
  struct GateSpec {
    bool IsPhase;
    std::int64_t A, B;
  };
  std::vector<GateSpec> Circuit = {
      {false, (1 << 3) | (1 << 7), 1 << (LogQ - 2)}, // toffoli-ish
      {false, 1 << 5, 1 << (LogQ - 1)},              // cnot
      {true, 1 << 2, 0},                             // conditional phase
      {false, (1 << 1) | (1 << 9), 1 << (LogQ - 3)}, // toffoli-ish
      {true, 1 << (LogQ - 4), 0},                    // conditional phase
  };
  for (const GateSpec &G : Circuit) {
    for (std::int64_t C = 0; C != Chunks; ++C) {
      std::vector<sim::RuntimeValue> Args{I64(C * Chunk),
                                          I64((C + 1) * Chunk)};
      if (G.IsPhase) {
        Args.push_back(I64(G.A));
        W->Tasks.push_back({Phase, nullptr, Args, Wave});
      } else {
        Args.push_back(I64(G.A));
        Args.push_back(I64(G.B));
        W->Tasks.push_back({Gate, nullptr, Args, Wave});
      }
    }
    ++Wave;
  }

  // --- Data: each node starts at its own basis state, random amplitudes ----
  W->Init = [Q](sim::Memory &Mem, const sim::Loader &L) {
    std::uint64_t RegB = L.baseOf("Reg");
    SplitMixRng Rng(0x9A417);
    for (std::int64_t I = 0; I != Q; ++I) {
      std::uint64_t Node = RegB + static_cast<std::uint64_t>(I * 4 * Elem);
      Mem.storeI64(Node, I);
      Mem.storeF64(Node + 8, Rng.nextDouble() - 0.5);
      Mem.storeF64(Node + 16, Rng.nextDouble() - 0.5);
      Mem.storeF64(Node + 24, 0.0);
    }
  };
  W->OutputGlobals = {"Reg"};
  W->OutputSizes = {static_cast<std::uint64_t>(Q) * 4 * Elem};
  W->Opts.RepresentativeArgs = {0, 256, 8, 64};
  return W;
}
