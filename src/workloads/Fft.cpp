//===- workloads/Fft.cpp - Iterative radix-2 FFT (SPLASH2-style) ------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-place iterative radix-2 DIT FFT over split real/imaginary arrays.
/// Butterfly index arithmetic is bit manipulation (shifts/masks), so the
/// task is non-affine — FFT is the 0/6 row of Table 1. The butterfly body
/// lives in a helper function the task calls: the paper's section 6.2.2
/// highlights exactly this ("compile time optimizations inline these
/// functions"), and the inliner must absorb it before skeletonization. The
/// Manual DAE access phase is the expert's "greatly simplified" version: it
/// prefetches the contiguous region the chunk touches and skips the twiddle
/// table, trading prefetch coverage for speed (section 6.2.2's trade-off).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/MathUtil.h"

#include <cmath>

using namespace dae;
using namespace dae::ir;
using namespace dae::workloads;

namespace {
constexpr std::int64_t Elem = 8;
}

std::unique_ptr<Workload> workloads::buildFft(Scale S) {
  const std::int64_t LogN = S == Scale::Test ? 8 : 16;
  const std::int64_t N = std::int64_t(1) << LogN;
  const std::int64_t ChunksPerStage = S == Scale::Test ? 4 : 32;

  auto W = std::make_unique<Workload>();
  W->Name = "FFT";
  W->M = std::make_unique<Module>("fft");
  Module &M = *W->M;
  auto *Re = M.createGlobal("Re", static_cast<std::uint64_t>(N) * Elem);
  auto *Im = M.createGlobal("Im", static_cast<std::uint64_t>(N) * Elem);
  auto *TwRe = M.createGlobal("TwRe", static_cast<std::uint64_t>(N / 2) * Elem);
  auto *TwIm = M.createGlobal("TwIm", static_cast<std::uint64_t>(N / 2) * Elem);
  auto *Rev = M.createGlobal("Rev", static_cast<std::uint64_t>(N) * Elem);

  // --- Helper: one butterfly (i, j, twiddle index) — inlined by the
  // compiler before access generation.
  Function *Butterfly = M.createFunction(
      "fft_butterfly", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  {
    IRBuilder B(M, Butterfly->createBlock("entry"));
    Value *I = Butterfly->getArg(0);
    Value *J = Butterfly->getArg(1);
    Value *T = Butterfly->getArg(2);
    Value *PRi = B.createGep1D(Re, I, Elem);
    Value *PIi = B.createGep1D(Im, I, Elem);
    Value *PRj = B.createGep1D(Re, J, Elem);
    Value *PIj = B.createGep1D(Im, J, Elem);
    Value *Wr = B.createLoad(Type::Float64, B.createGep1D(TwRe, T, Elem));
    Value *Wi = B.createLoad(Type::Float64, B.createGep1D(TwIm, T, Elem));
    Value *Ar = B.createLoad(Type::Float64, PRi);
    Value *Ai = B.createLoad(Type::Float64, PIi);
    Value *Br = B.createLoad(Type::Float64, PRj);
    Value *Bi = B.createLoad(Type::Float64, PIj);
    // t = w * b.
    Value *Tr = B.createFSub(B.createFMul(Wr, Br), B.createFMul(Wi, Bi));
    Value *Ti = B.createFAdd(B.createFMul(Wr, Bi), B.createFMul(Wi, Br));
    B.createStore(B.createFSub(Ar, Tr), PRj);
    B.createStore(B.createFSub(Ai, Ti), PIj);
    B.createStore(B.createFAdd(Ar, Tr), PRi);
    B.createStore(B.createFAdd(Ai, Ti), PIi);
    B.createRet();
  }

  // --- Task: one chunk of butterflies of one stage ------------------------
  // args: (Stage, Begin, End) over the flattened butterfly index b:
  //   span   = 1 << stage
  //   block  = (b >> stage) << (stage + 1)
  //   offset = b & (span - 1)
  //   i = block + offset; j = i + span; tw = offset << (LogN - 1 - stage)
  Function *Stage = M.createFunction(
      "fft_stage", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  Stage->setTask(true);
  {
    IRBuilder B(M, Stage->createBlock("entry"));
    Value *St = Stage->getArg(0);
    Value *Begin = Stage->getArg(1), *End = Stage->getArg(2);
    Value *Span = B.createShl(B.getInt(1), St);
    Value *Mask = B.createSub(Span, B.getInt(1));
    Value *TwShift = B.createSub(B.getInt(LogN - 1), St);
    emitCountedLoop(B, Begin, End, B.getInt(1), "b",
                    [&](IRBuilder &B, Value *Bi) {
      Value *Block = B.createShl(B.createAShr(Bi, St),
                                 B.createAdd(St, B.getInt(1)));
      Value *Offset = B.createAnd(Bi, Mask);
      Value *I = B.createAdd(Block, Offset);
      Value *J = B.createAdd(I, Span);
      Value *Tw = B.createShl(Offset, TwShift);
      B.createCall(Butterfly, {I, J, Tw});
    });
    B.createRet();
  }

  // Manual access (expert): the chunk's butterflies touch the contiguous
  // region [blockOf(Begin), blockOf(End)) of Re/Im; prefetch it at
  // cache-line stride and skip the twiddle table entirely.
  Function *StageAccess = M.createFunction(
      "fft_stage.manual", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  {
    IRBuilder B(M, StageAccess->createBlock("entry"));
    Value *St = StageAccess->getArg(0);
    Value *Begin = StageAccess->getArg(1), *End = StageAccess->getArg(2);
    Value *StP1 = B.createAdd(St, B.getInt(1));
    Value *Lo = B.createShl(B.createAShr(Begin, St), StP1);
    Value *Hi = B.createShl(
        B.createAShr(B.createAdd(End, B.createSub(B.createShl(B.getInt(1), St),
                                                  B.getInt(1))),
                     St),
        StP1);
    emitCountedLoop(B, Lo, Hi, B.getInt(8), "p",
                    [&](IRBuilder &B, Value *P) {
      B.createPrefetch(B.createGep1D(Re, P, Elem));
      B.createPrefetch(B.createGep1D(Im, P, Elem));
    });
    B.createRet();
  }

  // --- Task: bit-reverse permutation over a chunk --------------------------
  // for i in [Begin, End): j = Rev[i]; if (i < j) swap (Re, Im).
  Function *Reverse = M.createFunction("fft_bitrev", Type::Void,
                                       {Type::Int64, Type::Int64});
  Reverse->setTask(true);
  {
    IRBuilder B(M, Reverse->createBlock("entry"));
    Value *Begin = Reverse->getArg(0), *End = Reverse->getArg(1);
    emitCountedLoop(B, Begin, End, B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *J = B.createLoad(Type::Int64, B.createGep1D(Rev, I, Elem));
      Value *Cond = B.createCmp(CmpPred::SLT, I, J);
      Function *F = B.getInsertBlock()->getParent();
      BasicBlock *Swap = F->createBlock("swap");
      BasicBlock *Join = F->createBlock("join");
      B.createCondBr(Cond, Swap, Join);
      B.setInsertBlock(Swap);
      Value *PRi = B.createGep1D(Re, I, Elem);
      Value *PRj = B.createGep1D(Re, J, Elem);
      Value *PIi = B.createGep1D(Im, I, Elem);
      Value *PIj = B.createGep1D(Im, J, Elem);
      Value *Ar = B.createLoad(Type::Float64, PRi);
      Value *Br = B.createLoad(Type::Float64, PRj);
      B.createStore(Br, PRi);
      B.createStore(Ar, PRj);
      Value *Ai = B.createLoad(Type::Float64, PIi);
      Value *Bi = B.createLoad(Type::Float64, PIj);
      B.createStore(Bi, PIi);
      B.createStore(Ai, PIj);
      B.createBr(Join);
      B.setInsertBlock(Join);
    });
    B.createRet();
  }

  // Manual access for bit-reverse: prefetch the Rev slice plus the
  // contiguous halves of Re/Im the chunk reads.
  Function *ReverseAccess = M.createFunction(
      "fft_bitrev.manual", Type::Void, {Type::Int64, Type::Int64});
  {
    IRBuilder B(M, ReverseAccess->createBlock("entry"));
    Value *Begin = ReverseAccess->getArg(0), *End = ReverseAccess->getArg(1);
    emitCountedLoop(B, Begin, End, B.getInt(8), "p",
                    [&](IRBuilder &B, Value *P) {
      B.createPrefetch(B.createGep1D(Rev, P, Elem));
      B.createPrefetch(B.createGep1D(Re, P, Elem));
      B.createPrefetch(B.createGep1D(Im, P, Elem));
    });
    B.createRet();
  }

  W->ManualAccess = {{Stage, StageAccess}, {Reverse, ReverseAccess}};
  W->TaskFunctions = {Reverse, Stage};

  // --- Task list: bit-reverse wave, then one wave per stage ----------------
  auto I64 = [](std::int64_t V) { return sim::RuntimeValue::ofInt(V); };
  unsigned Wave = 0;
  const std::int64_t RevChunk = N / ChunksPerStage;
  for (std::int64_t C = 0; C != ChunksPerStage; ++C)
    W->Tasks.push_back(
        {Reverse, nullptr, {I64(C * RevChunk), I64((C + 1) * RevChunk)}, Wave});
  ++Wave;
  const std::int64_t Butterflies = N / 2;
  const std::int64_t Chunk = Butterflies / ChunksPerStage;
  for (std::int64_t St = 0; St != LogN; ++St) {
    for (std::int64_t C = 0; C != ChunksPerStage; ++C)
      W->Tasks.push_back({Stage,
                          nullptr,
                          {I64(St), I64(C * Chunk), I64((C + 1) * Chunk)},
                          Wave});
    ++Wave;
  }

  // --- Data: random signal, twiddles, bit-reverse table --------------------
  W->Init = [N, LogN](sim::Memory &Mem, const sim::Loader &L) {
    std::uint64_t ReB = L.baseOf("Re"), ImB = L.baseOf("Im");
    std::uint64_t TwReB = L.baseOf("TwRe"), TwImB = L.baseOf("TwIm");
    std::uint64_t RevB = L.baseOf("Rev");
    SplitMixRng Rng(0xFF7);
    for (std::int64_t I = 0; I != N; ++I) {
      Mem.storeF64(ReB + static_cast<std::uint64_t>(I * Elem),
                   Rng.nextDouble() - 0.5);
      Mem.storeF64(ImB + static_cast<std::uint64_t>(I * Elem), 0.0);
      // Bit-reverse of I over LogN bits.
      std::int64_t R = 0;
      for (std::int64_t Bit = 0; Bit != LogN; ++Bit)
        R |= ((I >> Bit) & 1) << (LogN - 1 - Bit);
      Mem.storeI64(RevB + static_cast<std::uint64_t>(I * Elem), R);
    }
    const double Pi = 3.14159265358979323846;
    for (std::int64_t I = 0; I != N / 2; ++I) {
      double Ang = -2.0 * Pi * static_cast<double>(I) /
                   static_cast<double>(N);
      Mem.storeF64(TwReB + static_cast<std::uint64_t>(I * Elem),
                   std::cos(Ang));
      Mem.storeF64(TwImB + static_cast<std::uint64_t>(I * Elem),
                   std::sin(Ang));
    }
  };
  W->OutputGlobals = {"Re", "Im"};
  W->OutputSizes = {static_cast<std::uint64_t>(N) * Elem,
                    static_cast<std::uint64_t>(N) * Elem};
  W->Opts.RepresentativeArgs = {2, 0, 64};
  return W;
}
