//===- workloads/Cg.cpp - Sparse matrix-vector kernel (NAS CG) --------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CSR sparse matrix-vector product at the heart of NAS CG: per row,
/// data-dependent trip counts (RowPtr) and a gathered read x[Cols[j]] make
/// both loops non-affine (Table 1: 0/2), while the streaming Vals/Cols reads
/// and the scattered x gather put CG between the compute- and memory-bound
/// extremes. The Manual DAE access phase prefetches the row pointers and the
/// Vals/Cols streams at line granularity but skips the x gather — the expert
/// trades coverage for a leaner phase; Auto DAE chases the gather too.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/MathUtil.h"

using namespace dae;
using namespace dae::ir;
using namespace dae::workloads;

namespace {
constexpr std::int64_t Elem = 8;
}

std::unique_ptr<Workload> workloads::buildCg(Scale S) {
  const std::int64_t Rows = S == Scale::Test ? 2048 : 65536;
  const std::int64_t NnzPerRow = 16;
  const std::int64_t Nnz = Rows * NnzPerRow;
  const std::int64_t RowsPerTask = S == Scale::Test ? 256 : 64;
  const std::int64_t Iterations = 2; ///< Matvec sweeps (CG steps).

  auto W = std::make_unique<Workload>();
  W->Name = "CG";
  W->M = std::make_unique<Module>("cg");
  Module &M = *W->M;
  auto *RowPtr = M.createGlobal(
      "RowPtr", static_cast<std::uint64_t>(Rows + 1) * Elem);
  auto *Cols = M.createGlobal("Cols", static_cast<std::uint64_t>(Nnz) * Elem);
  auto *Vals = M.createGlobal("Vals", static_cast<std::uint64_t>(Nnz) * Elem);
  auto *X = M.createGlobal("X", static_cast<std::uint64_t>(Rows) * Elem);
  auto *Y = M.createGlobal("Y", static_cast<std::uint64_t>(Rows) * Elem);

  // --- Task: y[r] = sum_j Vals[j] * x[Cols[j]] over rows [Begin, End) ------
  Function *SpMV =
      M.createFunction("cg_spmv", Type::Void, {Type::Int64, Type::Int64});
  SpMV->setTask(true);
  {
    IRBuilder B(M, SpMV->createBlock("entry"));
    Value *Begin = SpMV->getArg(0), *End = SpMV->getArg(1);
    emitCountedLoop(B, Begin, End, B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      Value *Lo = B.createLoad(Type::Int64, B.createGep1D(RowPtr, R, Elem));
      Value *Hi = B.createLoad(
          Type::Int64,
          B.createGep1D(RowPtr, B.createAdd(R, B.getInt(1)), Elem));
      Value *YPtr = B.createGep1D(Y, R, Elem);
      B.createStore(B.getFloat(0.0), YPtr);
      emitCountedLoop(B, Lo, Hi, B.getInt(1), "j",
                      [&](IRBuilder &B, Value *J) {
        Value *Col =
            B.createLoad(Type::Int64, B.createGep1D(Cols, J, Elem));
        Value *V =
            B.createLoad(Type::Float64, B.createGep1D(Vals, J, Elem));
        Value *Xv =
            B.createLoad(Type::Float64, B.createGep1D(X, Col, Elem));
        Value *Acc = B.createLoad(Type::Float64, YPtr);
        B.createStore(B.createFAdd(Acc, B.createFMul(V, Xv)), YPtr);
      });
    });
    B.createRet();
  }

  // Manual access for SpMV: row pointers, then Vals/Cols streams at line
  // stride over [RowPtr[Begin], RowPtr[End]); the x gather is skipped.
  Function *SpMVAccess = M.createFunction("cg_spmv.manual", Type::Void,
                                          {Type::Int64, Type::Int64});
  {
    IRBuilder B(M, SpMVAccess->createBlock("entry"));
    Value *Begin = SpMVAccess->getArg(0), *End = SpMVAccess->getArg(1);
    emitCountedLoop(B, Begin, End, B.getInt(8), "r",
                    [&](IRBuilder &B, Value *R) {
      B.createPrefetch(B.createGep1D(RowPtr, R, Elem));
    });
    Value *Lo =
        B.createLoad(Type::Int64, B.createGep1D(RowPtr, Begin, Elem));
    Value *Hi = B.createLoad(Type::Int64, B.createGep1D(RowPtr, End, Elem));
    emitCountedLoop(B, Lo, Hi, B.getInt(8), "j",
                    [&](IRBuilder &B, Value *J) {
      B.createPrefetch(B.createGep1D(Vals, J, Elem));
      B.createPrefetch(B.createGep1D(Cols, J, Elem));
    });
    B.createRet();
  }

  W->ManualAccess = {{SpMV, SpMVAccess}};
  W->TaskFunctions = {SpMV};

  // --- Task list: per iteration one spmv wave + one scale wave -------------
  auto I64 = [](std::int64_t V) { return sim::RuntimeValue::ofInt(V); };
  unsigned Wave = 0;
  for (std::int64_t It = 0; It != Iterations; ++It) {
    for (std::int64_t R = 0; R != Rows; R += RowsPerTask)
      W->Tasks.push_back(
          {SpMV, nullptr, {I64(R), I64(R + RowsPerTask)}, Wave});
    ++Wave;
  }

  // --- Data: banded random sparsity, random x ------------------------------
  W->Init = [Rows, NnzPerRow](sim::Memory &Mem, const sim::Loader &L) {
    std::uint64_t RpB = L.baseOf("RowPtr"), ColB = L.baseOf("Cols");
    std::uint64_t ValB = L.baseOf("Vals"), XB = L.baseOf("X");
    std::uint64_t YB = L.baseOf("Y");
    SplitMixRng Rng(0xC6);
    std::int64_t Ptr = 0;
    for (std::int64_t R = 0; R != Rows; ++R) {
      Mem.storeI64(RpB + static_cast<std::uint64_t>(R * Elem), Ptr);
      for (std::int64_t K = 0; K != NnzPerRow; ++K) {
        // Scatter within a wide band around the diagonal (wraps at edges).
        std::int64_t Span = Rows / 4;
        std::int64_t Col =
            (R + static_cast<std::int64_t>(Rng.nextBelow(
                     static_cast<std::uint64_t>(2 * Span))) -
             Span + Rows) %
            Rows;
        Mem.storeI64(ColB + static_cast<std::uint64_t>(Ptr * Elem), Col);
        Mem.storeF64(ValB + static_cast<std::uint64_t>(Ptr * Elem),
                     Rng.nextDouble() - 0.5);
        ++Ptr;
      }
    }
    Mem.storeI64(RpB + static_cast<std::uint64_t>(Rows * Elem), Ptr);
    for (std::int64_t R = 0; R != Rows; ++R) {
      Mem.storeF64(XB + static_cast<std::uint64_t>(R * Elem),
                   Rng.nextDouble());
      Mem.storeF64(YB + static_cast<std::uint64_t>(R * Elem), 0.0);
    }
  };
  W->OutputGlobals = {"Y", "X"};
  W->OutputSizes = {static_cast<std::uint64_t>(Rows) * Elem,
                    static_cast<std::uint64_t>(Rows) * Elem};
  W->Opts.RepresentativeArgs = {0, 64};
  return W;
}
