//===- workloads/Lbm.cpp - Lattice-Boltzmann (D2Q5, SPEC-470-style) ---------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A D2Q5 lattice-Boltzmann sweep with ping-pong grids and obstacle
/// bounce-back: each cell gathers five neighbor distributions from the
/// source grid, applies a BGK-style collision, and scatters five values to
/// the destination grid; obstacle cells (a data-dependent branch) reflect
/// instead. The task is non-affine (Table 1: 0/1) and — crucially for the
/// paper's Figure 3 anomaly — *write-coupled*: five stores per cell stay in
/// the execute phase, which therefore remains memory-bound even after
/// prefetching, so coupled execution at a reduced frequency achieves a
/// better EDP than DAE (section 6.1's LBM discussion).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/MathUtil.h"

using namespace dae;
using namespace dae::ir;
using namespace dae::workloads;

namespace {
constexpr std::int64_t Elem = 8;
constexpr std::int64_t Dirs = 5; ///< C, N, S, E, W.
} // namespace

std::unique_ptr<Workload> workloads::buildLbm(Scale S) {
  const std::int64_t H = S == Scale::Test ? 32 : 128;
  const std::int64_t Wd = S == Scale::Test ? 64 : 256;
  const std::int64_t BandRows = S == Scale::Test ? 8 : 4;
  const std::int64_t Sweeps = 2;

  auto W = std::make_unique<Workload>();
  W->Name = "LBM";
  W->M = std::make_unique<Module>("lbm");
  Module &M = *W->M;
  const std::uint64_t GridBytes =
      static_cast<std::uint64_t>(Dirs) * H * Wd * Elem;
  auto *F0 = M.createGlobal("F0", GridBytes); // Ping.
  auto *F1 = M.createGlobal("F1", GridBytes); // Pong.
  auto *Obst = M.createGlobal("Obst", static_cast<std::uint64_t>(H) * Wd * Elem);

  // --- Task: stream+collide a band of rows [R0, R1) ------------------------
  // args: (R0, R1, SrcIsF0) — the grids swap roles between sweeps.
  // Interior-only sweep (rows 1..H-2, cols 1..W-2 updated; borders static).
  Function *Sweep = M.createFunction(
      "lbm_sweep", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  Sweep->setTask(true);
  {
    IRBuilder B(M, Sweep->createBlock("entry"));
    Value *R0 = Sweep->getArg(0), *R1 = Sweep->getArg(1);
    Value *SrcIsF0 = Sweep->getArg(2);

    auto Gep3 = [&](GlobalVariable *G, std::int64_t Dir, Value *R,
                    Value *C) {
      return B.createGep(G, {B.getInt(Dir), R, C}, {0, H, Wd}, Elem);
    };

    emitCountedLoop(B, R0, R1, B.getInt(1), "r", [&](IRBuilder &B, Value *R) {
      emitCountedLoop(B, B.getInt(1), B.getInt(Wd - 1), B.getInt(1), "c",
                      [&](IRBuilder &B, Value *C) {
        Function *Fn = B.getInsertBlock()->getParent();
        Value *RN = B.createSub(R, B.getInt(1));
        Value *RS = B.createAdd(R, B.getInt(1));
        Value *CW = B.createSub(C, B.getInt(1));
        Value *CE = B.createAdd(C, B.getInt(1));

        // Gather the five incoming distributions (pull scheme). Source grid
        // selected by a data-independent select on the task argument.
        auto SrcGep = [&](std::int64_t Dir, Value *Rr, Value *Cc) {
          Value *P0 = Gep3(F0, Dir, Rr, Cc);
          Value *P1 = Gep3(F1, Dir, Rr, Cc);
          return B.createSelect(SrcIsF0, P0, P1);
        };
        auto DstGep = [&](std::int64_t Dir, Value *Rr, Value *Cc) {
          Value *P0 = Gep3(F0, Dir, Rr, Cc);
          Value *P1 = Gep3(F1, Dir, Rr, Cc);
          return B.createSelect(SrcIsF0, P1, P0);
        };

        Value *Fc = B.createLoad(Type::Float64, SrcGep(0, R, C));
        Value *Fn_ = B.createLoad(Type::Float64, SrcGep(1, RS, C));
        Value *Fs = B.createLoad(Type::Float64, SrcGep(2, RN, C));
        Value *Fe = B.createLoad(Type::Float64, SrcGep(3, R, CW));
        Value *Fw = B.createLoad(Type::Float64, SrcGep(4, R, CE));

        // rho = sum; BGK relaxation toward rho/5 with omega = 0.6.
        Value *Rho = B.createFAdd(
            B.createFAdd(B.createFAdd(Fc, Fn_), B.createFAdd(Fs, Fe)), Fw);
        Value *Eq = B.createFMul(Rho, B.getFloat(0.2));
        auto Relax = [&](Value *Fi) {
          return B.createFAdd(
              Fi, B.createFMul(B.getFloat(0.6), B.createFSub(Eq, Fi)));
        };
        Value *Oc = Relax(Fc), *On = Relax(Fn_), *Os = Relax(Fs),
              *Oe = Relax(Fe), *Ow = Relax(Fw);

        // Obstacle cells bounce back (swap opposing directions) instead.
        Value *ObFlag = B.createLoad(
            Type::Int64, B.createGep2D(Obst, R, C, Wd, Elem));
        Value *IsObst = B.createCmp(CmpPred::NE, ObFlag, B.getInt(0));
        BasicBlock *Bounce = Fn->createBlock("bounce");
        BasicBlock *Flow = Fn->createBlock("flow");
        BasicBlock *Join = Fn->createBlock("join");
        B.createCondBr(IsObst, Bounce, Flow);

        B.setInsertBlock(Bounce);
        B.createStore(Fc, DstGep(0, R, C));
        B.createStore(Fs, DstGep(1, R, C)); // N <- S.
        B.createStore(Fn_, DstGep(2, R, C));
        B.createStore(Fw, DstGep(3, R, C)); // E <- W.
        B.createStore(Fe, DstGep(4, R, C));
        B.createBr(Join);

        B.setInsertBlock(Flow);
        B.createStore(Oc, DstGep(0, R, C));
        B.createStore(On, DstGep(1, R, C));
        B.createStore(Os, DstGep(2, R, C));
        B.createStore(Oe, DstGep(3, R, C));
        B.createStore(Ow, DstGep(4, R, C));
        B.createBr(Join);

        B.setInsertBlock(Join);
      });
    });
    B.createRet();
  }

  // Manual access: prefetch the band's source rows (all five directions)
  // and the obstacle flags; the expert skips the write-only destination.
  Function *SweepAccess = M.createFunction(
      "lbm_sweep.manual", Type::Void, {Type::Int64, Type::Int64, Type::Int64});
  {
    IRBuilder B(M, SweepAccess->createBlock("entry"));
    Value *R0 = SweepAccess->getArg(0), *R1 = SweepAccess->getArg(1);
    Value *SrcIsF0 = SweepAccess->getArg(2);
    emitCountedLoop(B, B.createSub(R0, B.getInt(1)),
                    B.createAdd(R1, B.getInt(1)), B.getInt(1), "r",
                    [&](IRBuilder &B, Value *R) {
      emitCountedLoop(B, B.getInt(0), B.getInt(Wd), B.getInt(8), "c",
                      [&](IRBuilder &B, Value *C) {
        for (std::int64_t D = 0; D != Dirs; ++D) {
          Value *P0 = B.createGep(F0, {B.getInt(D), R, C}, {0, H, Wd}, Elem);
          Value *P1 = B.createGep(F1, {B.getInt(D), R, C}, {0, H, Wd}, Elem);
          B.createPrefetch(B.createSelect(SrcIsF0, P0, P1));
        }
        B.createPrefetch(B.createGep2D(Obst, R, C, Wd, Elem));
      });
    });
    B.createRet();
  }

  W->ManualAccess = {{Sweep, SweepAccess}};
  W->TaskFunctions = {Sweep};

  // --- Task list: bands per sweep, ping-pong between sweeps ----------------
  auto I64 = [](std::int64_t V) { return sim::RuntimeValue::ofInt(V); };
  unsigned Wave = 0;
  for (std::int64_t Sw = 0; Sw != Sweeps; ++Sw) {
    std::int64_t SrcIsF0 = Sw % 2 == 0 ? 1 : 0;
    for (std::int64_t R = 1; R < H - 1; R += BandRows) {
      std::int64_t REnd = std::min<std::int64_t>(R + BandRows, H - 1);
      W->Tasks.push_back(
          {Sweep, nullptr, {I64(R), I64(REnd), I64(SrcIsF0)}, Wave});
    }
    ++Wave;
  }

  // --- Data: uniform flow with ~10% random obstacles -----------------------
  W->Init = [H, Wd](sim::Memory &Mem, const sim::Loader &L) {
    std::uint64_t F0B = L.baseOf("F0"), F1B = L.baseOf("F1");
    std::uint64_t ObB = L.baseOf("Obst");
    SplitMixRng Rng(0x1B3);
    for (std::int64_t D = 0; D != Dirs; ++D)
      for (std::int64_t R = 0; R != H; ++R)
        for (std::int64_t C = 0; C != Wd; ++C) {
          std::uint64_t Off =
              static_cast<std::uint64_t>(((D * H + R) * Wd + C) * Elem);
          double V = 0.2 + 0.01 * Rng.nextDouble();
          Mem.storeF64(F0B + Off, V);
          Mem.storeF64(F1B + Off, V);
        }
    for (std::int64_t R = 0; R != H; ++R)
      for (std::int64_t C = 0; C != Wd; ++C)
        Mem.storeI64(ObB + static_cast<std::uint64_t>((R * Wd + C) * Elem),
                     Rng.nextDouble() < 0.1 ? 1 : 0);
  };
  W->OutputGlobals = {"F0", "F1"};
  W->OutputSizes = {GridBytes, GridBytes};
  W->Opts.RepresentativeArgs = {1, 9, 1};
  return W;
}
