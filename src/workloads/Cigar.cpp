//===- workloads/Cigar.cpp - Case-injected GA fitness sweep -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fitness-evaluation core of a case-injected genetic algorithm (CIGAR):
/// a shuffled permutation selects individuals out of a population far larger
/// than the LLC, and each individual's chromosome is compared gene-by-gene
/// against a case from the injected case library. The permutation
/// indirection makes every chromosome access data-dependent (non-affine,
/// Table 1: 0/1) and the random traversal order makes the task heavily
/// memory-bound — CIGAR and LibQ anchor the memory-bound end of Figure 3.
/// The Manual DAE access phase chases the same indirection but prefetches
/// chromosomes at cache-line granularity and skips the (LLC-resident) case
/// library.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/MathUtil.h"

using namespace dae;
using namespace dae::ir;
using namespace dae::workloads;

namespace {
constexpr std::int64_t Elem = 8;
}

std::unique_ptr<Workload> workloads::buildCigar(Scale S) {
  const std::int64_t Pop = S == Scale::Test ? 1024 : 32768; ///< Individuals.
  const std::int64_t Genes = 64;
  const std::int64_t Evals = S == Scale::Test ? 512 : 8192; ///< Per pass.
  const std::int64_t Cases = 64;
  const std::int64_t ChunkSize = S == Scale::Test ? 128 : 64;
  const std::int64_t Passes = 2;

  auto W = std::make_unique<Workload>();
  W->Name = "Cigar";
  W->M = std::make_unique<Module>("cigar");
  Module &M = *W->M;
  auto *PopG = M.createGlobal(
      "Pop", static_cast<std::uint64_t>(Pop) * Genes * Elem);
  auto *Perm = M.createGlobal("Perm",
                              static_cast<std::uint64_t>(Pop) * Elem);
  auto *CaseG = M.createGlobal(
      "Cases", static_cast<std::uint64_t>(Cases) * Genes * Elem);
  auto *Fit = M.createGlobal("Fit", static_cast<std::uint64_t>(Pop) * Elem);

  // --- Task: evaluate fitness of individuals [Begin, End) ------------------
  // for p: idx = Perm[p]; for g: Fit[idx] += (Pop[idx][g] - Cases[p%C][g])^2
  Function *Eval = M.createFunction("cigar_eval", Type::Void,
                                    {Type::Int64, Type::Int64});
  Eval->setTask(true);
  {
    IRBuilder B(M, Eval->createBlock("entry"));
    Value *Begin = Eval->getArg(0), *End = Eval->getArg(1);
    emitCountedLoop(B, Begin, End, B.getInt(1), "p",
                    [&](IRBuilder &B, Value *P) {
      Value *Idx =
          B.createLoad(Type::Int64, B.createGep1D(Perm, P, Elem));
      Value *CaseIdx = B.createSRem(P, B.getInt(Cases));
      Value *FitPtr = B.createGep1D(Fit, Idx, Elem);
      emitCountedLoop(B, B.getInt(0), B.getInt(Genes), B.getInt(1), "g",
                      [&](IRBuilder &B, Value *G) {
        Value *Gene = B.createLoad(
            Type::Float64, B.createGep2D(PopG, Idx, G, Genes, Elem));
        Value *Ref = B.createLoad(
            Type::Float64, B.createGep2D(CaseG, CaseIdx, G, Genes, Elem));
        Value *Diff = B.createFSub(Gene, Ref);
        Value *Acc = B.createLoad(Type::Float64, FitPtr);
        B.createStore(B.createFAdd(Acc, B.createFMul(Diff, Diff)), FitPtr);
      });
    });
    B.createRet();
  }

  // Manual access: follow Perm, prefetch each selected chromosome at line
  // granularity; skip the case library.
  Function *EvalAccess = M.createFunction("cigar_eval.manual", Type::Void,
                                          {Type::Int64, Type::Int64});
  {
    IRBuilder B(M, EvalAccess->createBlock("entry"));
    Value *Begin = EvalAccess->getArg(0), *End = EvalAccess->getArg(1);
    emitCountedLoop(B, Begin, End, B.getInt(1), "p",
                    [&](IRBuilder &B, Value *P) {
      Value *PermPtr = B.createGep1D(Perm, P, Elem);
      B.createPrefetch(PermPtr);
      Value *Idx = B.createLoad(Type::Int64, PermPtr);
      // Selective: every other line of the chromosome — the expert banks on
      // the hardware stream prefetcher for the rest, so the execute phase
      // still pays for the skipped lines (section 6.2.1's trade-off).
      emitCountedLoop(B, B.getInt(0), B.getInt(Genes), B.getInt(16), "g",
                      [&](IRBuilder &B, Value *G) {
        B.createPrefetch(B.createGep2D(PopG, Idx, G, Genes, Elem));
      });
    });
    B.createRet();
  }

  W->ManualAccess = {{Eval, EvalAccess}};
  W->TaskFunctions = {Eval};

  // --- Task list: two evaluation passes over shuffled slices ---------------
  auto I64 = [](std::int64_t V) { return sim::RuntimeValue::ofInt(V); };
  unsigned Wave = 0;
  for (std::int64_t Pass = 0; Pass != Passes; ++Pass) {
    for (std::int64_t Bg = Pass * Evals; Bg < (Pass + 1) * Evals;
         Bg += ChunkSize)
      W->Tasks.push_back({Eval, nullptr, {I64(Bg), I64(Bg + ChunkSize)},
                          Wave});
    ++Wave;
  }

  // --- Data: random genes/cases, shuffled permutation ----------------------
  W->Init = [Pop, Genes, Cases](sim::Memory &Mem, const sim::Loader &L) {
    std::uint64_t PopB = L.baseOf("Pop"), PermB = L.baseOf("Perm");
    std::uint64_t CaseB = L.baseOf("Cases"), FitB = L.baseOf("Fit");
    SplitMixRng Rng(0xC16A2);
    for (std::int64_t I = 0; I != Pop * Genes; ++I)
      Mem.storeF64(PopB + static_cast<std::uint64_t>(I * Elem),
                   Rng.nextDouble());
    for (std::int64_t I = 0; I != Cases * Genes; ++I)
      Mem.storeF64(CaseB + static_cast<std::uint64_t>(I * Elem),
                   Rng.nextDouble());
    for (std::int64_t I = 0; I != Pop; ++I)
      Mem.storeF64(FitB + static_cast<std::uint64_t>(I * Elem), 0.0);
    // Fisher-Yates shuffle of [0, Pop).
    std::vector<std::int64_t> P(Pop);
    for (std::int64_t I = 0; I != Pop; ++I)
      P[I] = I;
    for (std::int64_t I = Pop - 1; I > 0; --I)
      std::swap(P[I], P[Rng.nextBelow(static_cast<std::uint64_t>(I + 1))]);
    for (std::int64_t I = 0; I != Pop; ++I)
      Mem.storeI64(PermB + static_cast<std::uint64_t>(I * Elem), P[I]);
  };
  W->OutputGlobals = {"Fit"};
  W->OutputSizes = {static_cast<std::uint64_t>(Pop) * Elem};
  W->Opts.RepresentativeArgs = {0, 128};
  return W;
}
