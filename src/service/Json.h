//===- service/Json.h - Minimal JSON for the wire protocol ------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON reader/writer for the experiment service's
/// line-delimited wire protocol (service/Server.h). Covers exactly the
/// subset the protocol uses — objects, arrays, strings, finite numbers,
/// booleans, null — with strict parsing: trailing junk, unterminated
/// strings, or malformed numbers fail the parse with a positioned message
/// (which the service turns into a structured error reply, never a crash).
///
/// Doubles that must survive a round trip bit-exactly (simulated times,
/// energies, EDPs) travel as C99 hexfloat *strings* ("0x1.8p+3"), written
/// by hexDouble() and read by parseHexDouble(); %g-formatted decimal JSON
/// numbers are reserved for human-facing telemetry where a few ulps do not
/// matter. This mirrors how the native code cache keys content (exact
/// bits, not approximate values).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SERVICE_JSON_H
#define DAECC_SERVICE_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dae {
namespace service {

/// One parsed JSON value. A plain tagged struct rather than a variant:
/// the protocol's values are small and short-lived.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;

  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj; ///< Insertion order.

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, V] : Obj)
      if (Name == Key)
        return &V;
    return nullptr;
  }
};

/// Strict parse of one complete JSON document. Returns false and fills
/// \p Err (with a character position) on any syntax error, including
/// non-whitespace trailing content.
bool parseJson(const std::string &Text, JsonValue &Out, std::string &Err);

/// String escaped for embedding in a JSON string literal (quotes not
/// included). Control characters become \uXXXX.
std::string jsonEscape(const std::string &S);

/// Bit-exact double serialization: C99 hexfloat via printf %a.
std::string hexDouble(double D);

/// Parses a hexDouble()-formatted (or any strtod-accepted) string back to
/// the identical double. Returns false on malformed input.
bool parseHexDouble(const std::string &S, double &Out);

} // namespace service
} // namespace dae

#endif // DAECC_SERVICE_JSON_H
