//===- service/ResultCache.cpp - Persistent result cache --------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include "service/ResultPayload.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

using namespace dae;
using namespace dae::service;

ResultCache::ResultCache(std::string Dir, std::size_t MaxMemoryBytes)
    : Dir(std::move(Dir)), MaxMemoryBytes(MaxMemoryBytes) {
  if (this->Dir.empty())
    return;
  if (::mkdir(this->Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr,
                 "daecc-serve: cannot create cache dir '%s' (%s); running "
                 "without disk persistence\n",
                 this->Dir.c_str(), std::strerror(errno));
    this->Dir.clear();
  }
}

std::string ResultCache::filePathFor(const std::string &CanonKey) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016" PRIx64 ".res", fnv1a(CanonKey));
  return Dir + "/" + Name;
}

void ResultCache::insertMemoryLocked(const std::string &CanonKey,
                                     const std::string &Payload) {
  auto It = Memory.find(CanonKey);
  if (It != Memory.end()) {
    It->second.LastUse = ++LruTick;
    return;
  }
  Entry E;
  E.Payload = Payload;
  E.LastUse = ++LruTick;
  RetainedBytes += Payload.size();
  Memory.emplace(CanonKey, std::move(E));
  while (RetainedBytes > MaxMemoryBytes && Memory.size() > 1) {
    auto Victim = Memory.begin();
    for (auto I = Memory.begin(); I != Memory.end(); ++I)
      if (I->second.LastUse < Victim->second.LastUse)
        Victim = I;
    RetainedBytes -= Victim->second.Payload.size();
    Memory.erase(Victim);
    ++Counters.Evictions;
  }
}

ResultCache::Source ResultCache::get(const std::string &CanonKey,
                                     std::string &Payload) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Memory.find(CanonKey);
    if (It != Memory.end()) {
      It->second.LastUse = ++LruTick;
      Payload = It->second.Payload;
      ++Counters.MemoryHits;
      return Source::Memory;
    }
  }
  if (Dir.empty()) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Misses;
    return Source::Miss;
  }

  // Disk probe outside the lock: file IO must not serialize memory hits.
  std::string Path = filePathFor(CanonKey);
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Misses;
    return Source::Miss;
  }
  // Header: "daecc2 <key fnv hex> <payload fnv hex> <key bytes>
  // <payload bytes>\n" followed by exactly that many key bytes then payload
  // bytes. Anything that does not check out (including the old daecc1
  // format, which stored no key) is a corrupt entry: count it, drop the
  // file, and report a miss so the service recomputes. A checksum-clean
  // entry whose stored key differs from the requested one is a 64-bit
  // fingerprint collision: a plain miss — the entry is valid for *its*
  // request and must never be served for this one.
  bool Corrupt = true;
  bool Collision = false;
  std::uint64_t WantKeyFnv = 0, WantFnv = 0, KeyBytes = 0, WantBytes = 0;
  if (std::fscanf(F, "daecc2 %" SCNx64 " %" SCNx64 " %" SCNu64 " %" SCNu64,
                  &WantKeyFnv, &WantFnv, &KeyBytes, &WantBytes) == 4 &&
      std::fgetc(F) == '\n' && KeyBytes < (std::uint64_t(1) << 20) &&
      WantBytes < (std::uint64_t(1) << 32)) {
    std::string StoredKey(static_cast<std::size_t>(KeyBytes), '\0');
    std::string Data(static_cast<std::size_t>(WantBytes), '\0');
    if (std::fread(StoredKey.data(), 1, StoredKey.size(), F) ==
            StoredKey.size() &&
        std::fread(Data.data(), 1, Data.size(), F) == Data.size() &&
        std::fgetc(F) == EOF && fnv1a(StoredKey) == WantKeyFnv &&
        fnv1a(Data) == WantFnv) {
      Corrupt = false;
      if (StoredKey == CanonKey)
        Payload = std::move(Data);
      else
        Collision = true;
    }
  }
  std::fclose(F);
  if (Corrupt) {
    std::remove(Path.c_str());
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.CorruptEntries;
    ++Counters.Misses;
    return Source::Miss;
  }
  if (Collision) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Misses;
    return Source::Miss;
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  insertMemoryLocked(CanonKey, Payload);
  ++Counters.DiskHits;
  return Source::Disk;
}

void ResultCache::put(const std::string &CanonKey,
                      const std::string &Payload) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    insertMemoryLocked(CanonKey, Payload);
  }
  if (Dir.empty())
    return;
  std::string Path = filePathFor(CanonKey);
  char Suffix[32];
  std::snprintf(Suffix, sizeof(Suffix), ".tmp.%ld",
                static_cast<long>(::getpid()));
  std::string Tmp = Path + Suffix;
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return;
  bool Ok =
      std::fprintf(F, "daecc2 %016" PRIx64 " %016" PRIx64 " %" PRIu64
                      " %" PRIu64 "\n",
                   fnv1a(CanonKey), fnv1a(Payload),
                   static_cast<std::uint64_t>(CanonKey.size()),
                   static_cast<std::uint64_t>(Payload.size())) > 0 &&
      std::fwrite(CanonKey.data(), 1, CanonKey.size(), F) ==
          CanonKey.size() &&
      std::fwrite(Payload.data(), 1, Payload.size(), F) == Payload.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (Ok)
    std::rename(Tmp.c_str(), Path.c_str());
  else
    std::remove(Tmp.c_str());
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S = Counters;
  S.RetainedBytes = RetainedBytes;
  return S;
}
