//===- service/ResultPayload.cpp - Cacheable AppResult form -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ResultPayload.h"

#include "service/Json.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace dae;
using namespace dae::service;

std::uint64_t service::fnv1a(const void *Data, std::size_t N) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  std::uint64_t H = 1469598103934665603ull;
  for (std::size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

void appendPhase(std::string &Out, const sim::PhaseStats &S) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), " %" PRIu64 " %a %a %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64,
                S.Instructions, S.ComputeCycles, S.StallNs, S.Loads, S.Stores,
                S.Prefetches, S.L1Hits, S.L2Hits, S.LLCHits, S.MemAccesses);
  Out += Buf;
}

void appendProfile(std::string &Out, const char *Scheme,
                   const runtime::RunProfile &P) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "profile %s %u %a %zu\n", Scheme, P.NumCores,
                P.PerTaskOverheadCycles, P.Tasks.size());
  Out += Buf;
  for (const runtime::TaskProfile &T : P.Tasks) {
    std::snprintf(Buf, sizeof(Buf), "t %u %u %d", T.Core, T.Wave,
                  T.HasAccess ? 1 : 0);
    Out += Buf;
    appendPhase(Out, T.Access);
    appendPhase(Out, T.Execute);
    Out += '\n';
  }
}

void appendVerify(std::string &Out, const char *Scheme,
                  const harness::DaeVerifyResult &V) {
  char Buf[384];
  std::snprintf(Buf, sizeof(Buf),
                "verify %s %d %d %d %d %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 " %zu %zu %zu\n",
                Scheme, V.Ran ? 1 : 0, V.AuditPure ? 1 : 0,
                V.Diff.MemoryMatch ? 1 : 0, V.Diff.OutputsMatch ? 1 : 0,
                V.Diff.BaselineExecMisses, V.Diff.CoveredMisses,
                V.Diff.StrictCoveredMisses, V.Diff.PrefetchedLines,
                V.Diff.UnusedPrefetchedLines, V.Diff.DecoupledTasks,
                V.Diff.TotalTasks, V.AuditViolations.size());
  Out += Buf;
  for (const std::string &Viol : V.AuditViolations) {
    // JSON-escape folds embedded newlines, keeping the record line-oriented.
    Out += "viol " + jsonEscape(Viol) + "\n";
  }
}

void appendOutputs(std::string &Out, const char *Scheme,
                   const std::vector<std::uint8_t> &Bytes) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "outputs %s %zu %016" PRIx64 "\n", Scheme,
                Bytes.size(), fnv1a(Bytes.data(), Bytes.size()));
  Out += Buf;
}

/// Line reader over the payload; every read* helper fails sticky.
struct Reader {
  std::istringstream In;
  bool Ok = true;

  explicit Reader(const std::string &S) : In(S) {}

  bool line(std::string &Out) {
    if (!Ok || !std::getline(In, Out))
      return Ok = false;
    return true;
  }
};

bool parsePhase(const char *&P, sim::PhaseStats &S) {
  int N = 0;
  if (std::sscanf(P, " %" SCNu64 " %la %la %" SCNu64 " %" SCNu64 " %" SCNu64
                  " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64 "%n",
                  &S.Instructions, &S.ComputeCycles, &S.StallNs, &S.Loads,
                  &S.Stores, &S.Prefetches, &S.L1Hits, &S.L2Hits, &S.LLCHits,
                  &S.MemAccesses, &N) != 10)
    return false;
  P += N;
  return true;
}

bool parseProfile(Reader &R, const std::string &Header, const char *Scheme,
                  runtime::RunProfile &Out) {
  char Name[16];
  std::size_t NumTasks = 0;
  if (std::sscanf(Header.c_str(), "profile %15s %u %la %zu", Name,
                  &Out.NumCores, &Out.PerTaskOverheadCycles, &NumTasks) != 4 ||
      std::strcmp(Name, Scheme) != 0)
    return false;
  Out.Tasks.clear();
  Out.Tasks.reserve(NumTasks);
  Out.FunctionalSeconds = 0.0;
  std::string Line;
  for (std::size_t I = 0; I != NumTasks; ++I) {
    if (!R.line(Line))
      return false;
    runtime::TaskProfile T;
    int Has = 0, N = 0;
    if (std::sscanf(Line.c_str(), "t %u %u %d%n", &T.Core, &T.Wave, &Has,
                    &N) != 3)
      return false;
    T.HasAccess = Has != 0;
    const char *P = Line.c_str() + N;
    if (!parsePhase(P, T.Access) || !parsePhase(P, T.Execute))
      return false;
    Out.Tasks.push_back(T);
  }
  return true;
}

bool parseVerify(Reader &R, const std::string &Header, const char *Scheme,
                 harness::DaeVerifyResult &V) {
  char Name[16];
  int Ran = 0, Audit = 0, Mm = 0, Om = 0;
  std::size_t NumViol = 0;
  if (std::sscanf(Header.c_str(),
                  "verify %15s %d %d %d %d %" SCNu64 " %" SCNu64 " %" SCNu64
                  " %" SCNu64 " %" SCNu64 " %zu %zu %zu",
                  Name, &Ran, &Audit, &Mm, &Om, &V.Diff.BaselineExecMisses,
                  &V.Diff.CoveredMisses, &V.Diff.StrictCoveredMisses,
                  &V.Diff.PrefetchedLines, &V.Diff.UnusedPrefetchedLines,
                  &V.Diff.DecoupledTasks, &V.Diff.TotalTasks,
                  &NumViol) != 13 ||
      std::strcmp(Name, Scheme) != 0)
    return false;
  V.Ran = Ran != 0;
  V.AuditPure = Audit != 0;
  V.Diff.MemoryMatch = Mm != 0;
  V.Diff.OutputsMatch = Om != 0;
  V.AuditViolations.clear();
  std::string Line;
  for (std::size_t I = 0; I != NumViol; ++I) {
    if (!R.line(Line) || Line.compare(0, 5, "viol ") != 0)
      return false;
    V.AuditViolations.push_back(Line.substr(5));
  }
  return true;
}

bool parseOutputs(const std::string &Line, const char *Scheme,
                  OutputsFingerprint &Fp) {
  char Name[16];
  if (std::sscanf(Line.c_str(), "outputs %15s %" SCNu64 " %" SCNx64, Name,
                  &Fp.Bytes, &Fp.Fnv) != 3 ||
      std::strcmp(Name, Scheme) != 0)
    return false;
  return true;
}

} // namespace

std::string service::serializeAppResult(const harness::AppResult &R) {
  std::string Out;
  Out.reserve(256 + R.Cae.Tasks.size() * 200 * 3);
  Out += "daecc-result 1\n";
  Out += "name " + R.Name + "\n";
  Out += R.OutputsMatch ? "outputs_match 1\n" : "outputs_match 0\n";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "row %u %u %zu %a %a\n", R.Row.AffineLoops,
                R.Row.TotalLoops, R.Row.NumTasks, R.Row.AccessTimePercent,
                R.Row.AccessTimeUs);
  Out += Buf;
  appendOutputs(Out, "cae", R.CaeOutputs);
  appendOutputs(Out, "manual", R.ManualOutputs);
  appendOutputs(Out, "auto", R.AutoOutputs);
  appendVerify(Out, "manual", R.ManualVerify);
  appendVerify(Out, "auto", R.AutoVerify);
  appendProfile(Out, "cae", R.Cae);
  appendProfile(Out, "manual", R.Manual);
  appendProfile(Out, "auto", R.Auto);
  Out += "end\n";
  return Out;
}

bool service::deserializeResult(const std::string &Payload,
                                ResultRecord &Out) {
  Reader R(Payload);
  std::string Line;
  if (!R.line(Line) || Line != "daecc-result 1")
    return false;
  if (!R.line(Line) || Line.compare(0, 5, "name ") != 0)
    return false;
  Out.App.Name = Line.substr(5);
  if (!R.line(Line))
    return false;
  if (Line == "outputs_match 1")
    Out.App.OutputsMatch = true;
  else if (Line == "outputs_match 0")
    Out.App.OutputsMatch = false;
  else
    return false;
  if (!R.line(Line) ||
      std::sscanf(Line.c_str(), "row %u %u %zu %la %la",
                  &Out.App.Row.AffineLoops, &Out.App.Row.TotalLoops,
                  &Out.App.Row.NumTasks, &Out.App.Row.AccessTimePercent,
                  &Out.App.Row.AccessTimeUs) != 5)
    return false;
  Out.App.Row.Name = Out.App.Name;
  if (!R.line(Line) || !parseOutputs(Line, "cae", Out.CaeOut))
    return false;
  if (!R.line(Line) || !parseOutputs(Line, "manual", Out.ManualOut))
    return false;
  if (!R.line(Line) || !parseOutputs(Line, "auto", Out.AutoOut))
    return false;
  if (!R.line(Line) || !parseVerify(R, Line, "manual", Out.App.ManualVerify))
    return false;
  if (!R.line(Line) || !parseVerify(R, Line, "auto", Out.App.AutoVerify))
    return false;
  if (!R.line(Line) || !parseProfile(R, Line, "cae", Out.App.Cae))
    return false;
  if (!R.line(Line) || !parseProfile(R, Line, "manual", Out.App.Manual))
    return false;
  if (!R.line(Line) || !parseProfile(R, Line, "auto", Out.App.Auto))
    return false;
  if (!R.line(Line) || Line != "end")
    return false;
  return true;
}
