//===- service/Server.h - Unix-socket line server ---------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-framed Unix-domain-socket transport for the experiment daemon: one
/// JSON object per newline-terminated line in, one reply line out, requests
/// on the same connection answered in order. The server owns the accept
/// loop and one thread per connection; what a line *means* lives entirely in
/// the handler (service/ExperimentService.h), so the transport is testable
/// with a trivial echo handler and the service without any socket at all.
///
/// Lifecycle: serve() blocks until a handler sets its Shutdown flag or
/// requestStop() is called from another thread, then drains: the listening
/// socket closes first (no new connections), every open connection is shut
/// down, connection threads are joined, and the socket file is unlinked. A
/// stale socket file from a crashed daemon is unlinked before bind — two
/// live daemons on one path lose the race at bind time, not silently.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SERVICE_SERVER_H
#define DAECC_SERVICE_SERVER_H

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dae {
namespace service {

class Server {
public:
  /// Handles one request line (no newline) from connection \p ClientId and
  /// returns the reply line. Setting \p Shutdown stops the server after the
  /// reply is written.
  using Handler =
      std::function<std::string(const std::string &Line, unsigned ClientId,
                                bool &Shutdown)>;

  Server(std::string SocketPath, Handler H);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens. False (with \p Err set) on an unusable path; the
  /// daemon should exit 2 — this is a configuration error, not a request
  /// error.
  bool start(std::string &Err);

  /// Accept/dispatch loop; returns after shutdown and join. Call after a
  /// successful start().
  void serve();

  /// Asynchronous stop (signal-safe enough for a test harness: a flag plus
  /// a socket shutdown). serve() returns once in-flight replies are out.
  void requestStop();

  const std::string &socketPath() const { return SocketPath; }

  /// Connection-thread handles currently tracked (live + finished awaiting
  /// their join). Test visibility for the accept-loop reaping: an always-on
  /// daemon must hold handles for open connections, not for every
  /// connection ever accepted.
  std::size_t trackedThreads();

private:
  void connectionLoop(int Fd, unsigned ClientId);
  void closeListenFd();

  /// Moves every live and finished connection-thread handle out of the
  /// tracking containers (under ConnMutex) for the caller to join.
  std::vector<std::thread> takeAllThreads();

  std::string SocketPath;
  Handler Handle;
  int ListenFd = -1;
  std::atomic<bool> Stop{false};
  std::mutex ConnMutex;
  std::vector<int> OpenConns; ///< Fds to shut down on stop.
  /// Live connection threads by client id. A connection moves its own
  /// handle into DoneThreads when it finishes, and the accept loop joins
  /// DoneThreads on every accept — an always-on daemon holds one handle per
  /// *open* connection, not one per connection ever accepted.
  std::map<unsigned, std::thread> Threads;
  std::vector<std::thread> DoneThreads; ///< Finished, awaiting a cheap join.
  unsigned NextClientId = 0;
};

/// Blocking client for the same framing: connect once, then request() per
/// line. Used by the daecc-client tool and the service tests.
class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p SocketPath; false (with \p Err) when the daemon is not
  /// there.
  bool connect(const std::string &SocketPath, std::string &Err);

  /// Sends \p Line (newline appended) and blocks for the reply line. False
  /// on a broken connection.
  bool request(const std::string &Line, std::string &Reply);

  void close();

private:
  int Fd = -1;
  std::string Buffered; ///< Bytes past the last reply's newline.
};

} // namespace service
} // namespace dae

#endif // DAECC_SERVICE_SERVER_H
