//===- service/Json.cpp - Minimal JSON for the wire protocol ----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dae;
using namespace dae::service;

namespace {

struct Parser {
  const std::string &T;
  std::size_t P = 0;
  std::string Err;

  explicit Parser(const std::string &Text) : T(Text) {}

  bool fail(const char *Msg) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "%s at offset %zu", Msg, P);
    Err = Buf;
    return false;
  }

  void skipWs() {
    while (P < T.size() && (T[P] == ' ' || T[P] == '\t' || T[P] == '\n' ||
                            T[P] == '\r'))
      ++P;
  }

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (P >= T.size())
      return fail("unexpected end of input");
    switch (T[P]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (T.compare(P, 4, "true") == 0) {
        Out.K = JsonValue::Kind::Bool;
        Out.B = true;
        P += 4;
        return true;
      }
      return fail("invalid literal");
    case 'f':
      if (T.compare(P, 5, "false") == 0) {
        Out.K = JsonValue::Kind::Bool;
        Out.B = false;
        P += 5;
        return true;
      }
      return fail("invalid literal");
    case 'n':
      if (T.compare(P, 4, "null") == 0) {
        Out.K = JsonValue::Kind::Null;
        P += 4;
        return true;
      }
      return fail("invalid literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++P; // '{'
    skipWs();
    if (P < T.size() && T[P] == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (P >= T.size() || T[P] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (P >= T.size() || T[P] != ':')
        return fail("expected ':'");
      ++P;
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (P < T.size() && T[P] == ',') {
        ++P;
        continue;
      }
      if (P < T.size() && T[P] == '}') {
        ++P;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++P; // '['
    skipWs();
    if (P < T.size() && T[P] == ']') {
      ++P;
      return true;
    }
    for (;;) {
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (P < T.size() && T[P] == ',') {
        ++P;
        continue;
      }
      if (P < T.size() && T[P] == ']') {
        ++P;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string &Out) {
    ++P; // '"'
    Out.clear();
    while (P < T.size()) {
      char C = T[P];
      if (C == '"') {
        ++P;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        ++P;
        continue;
      }
      ++P;
      if (P >= T.size())
        return fail("unterminated escape");
      switch (T[P]) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (P + 4 >= T.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int K = 1; K <= 4; ++K) {
          char H = T[P + K];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        P += 4;
        // UTF-8 encode the code unit (surrogate pairs are not needed by the
        // protocol; a lone surrogate round-trips as its 3-byte encoding).
        if (V < 0x80) {
          Out += static_cast<char>(V);
        } else if (V < 0x800) {
          Out += static_cast<char>(0xC0 | (V >> 6));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (V >> 12));
          Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape");
      }
      ++P;
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    std::size_t Start = P;
    if (P < T.size() && T[P] == '-')
      ++P;
    while (P < T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
      ++P;
    if (P < T.size() && T[P] == '.') {
      ++P;
      while (P < T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
        ++P;
    }
    if (P < T.size() && (T[P] == 'e' || T[P] == 'E')) {
      ++P;
      if (P < T.size() && (T[P] == '+' || T[P] == '-'))
        ++P;
      while (P < T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
        ++P;
    }
    std::string Tok = T.substr(Start, P - Start);
    char *End = nullptr;
    double V = std::strtod(Tok.c_str(), &End);
    if (Tok.empty() || End != Tok.c_str() + Tok.size() || !std::isfinite(V)) {
      P = Start;
      return fail("invalid number");
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = V;
    return true;
  }
};

} // namespace

bool service::parseJson(const std::string &Text, JsonValue &Out,
                        std::string &Err) {
  Parser P(Text);
  if (!P.parseValue(Out)) {
    Err = P.Err;
    return false;
  }
  P.skipWs();
  if (P.P != Text.size()) {
    P.fail("trailing content after document");
    Err = P.Err;
    return false;
  }
  return true;
}

std::string service::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string service::hexDouble(double D) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%a", D);
  return Buf;
}

bool service::parseHexDouble(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}
