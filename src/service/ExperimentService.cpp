//===- service/ExperimentService.cpp - Long-lived experiment daemon ---------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ExperimentService.h"

#include "harness/Harness.h"
#include "runtime/Evaluator.h"
#include "service/ResultPayload.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

using namespace dae;
using namespace dae::service;

namespace {

const char *const WorkloadNames[] = {"lu",   "cholesky", "fft", "lbm",
                                     "libq", "cigar",    "cg"};

bool knownWorkload(const std::string &Name) {
  for (const char *W : WorkloadNames)
    if (Name == W)
      return true;
  return false;
}

/// Integral JSON number in [Lo, Hi]; false on non-number / fraction /
/// out-of-range.
bool asInt(const JsonValue &V, long long Lo, long long Hi, long long &Out) {
  if (!V.isNumber() || V.Num != std::floor(V.Num) ||
      V.Num < static_cast<double>(Lo) || V.Num > static_cast<double>(Hi))
    return false;
  Out = static_cast<long long>(V.Num);
  return true;
}

std::string badKey(const char *Where, const std::string &Key) {
  return std::string("unknown ") + Where + " key '" + Key + "'";
}

std::string parseOptions(const JsonValue &V, Request &Out) {
  if (!V.isObject())
    return "'options' must be an object";
  for (const auto &[Key, Val] : V.Obj) {
    long long N = 0;
    if (Key == "convex_union" || Key == "split_classes" ||
        Key == "merge_loop_nests" || Key == "simplify_cfg" ||
        Key == "prefetch_writes" || Key == "prefetch_per_line") {
      if (!Val.isBool())
        return "options." + Key + " must be a boolean";
      if (Key == "convex_union")
        Out.ConvexUnion = Val.B;
      else if (Key == "split_classes")
        Out.SplitClasses = Val.B;
      else if (Key == "merge_loop_nests")
        Out.MergeLoopNests = Val.B;
      else if (Key == "simplify_cfg")
        Out.SimplifyCfg = Val.B;
      else if (Key == "prefetch_writes")
        Out.PrefetchWrites = Val.B;
      else
        Out.PrefetchPerCacheLine = Val.B;
    } else if (Key == "hull_slack") {
      if (!asInt(Val, -1000000, 1000000, N))
        return "options.hull_slack must be an integer";
      Out.HullSlackThreshold = N;
    } else if (Key == "cache_line_bytes") {
      if (!asInt(Val, 1, 1 << 20, N))
        return "options.cache_line_bytes must be a positive integer";
      Out.CacheLineBytes = N;
    } else if (Key == "count_limit") {
      if (!asInt(Val, 1, 1LL << 60, N))
        return "options.count_limit must be a positive integer";
      Out.CountLimit = N;
    } else if (Key == "rep_args") {
      if (!Val.isArray())
        return "options.rep_args must be an array of integers";
      std::vector<std::int64_t> Args;
      for (const JsonValue &E : Val.Arr) {
        if (!asInt(E, 0, 1LL << 40, N))
          return "options.rep_args entries must be non-negative integers";
        Args.push_back(N);
      }
      Out.RepresentativeArgs = std::move(Args);
    } else {
      return badKey("options", Key);
    }
  }
  return "";
}

} // namespace

std::string service::parseRequest(const JsonValue &V, Request &Out) {
  bool HaveBig = false, HaveLittle = false;
  for (const auto &[Key, Val] : V.Obj) {
    long long N = 0;
    if (Key == "op") {
      continue; // dispatched by handleLine
    } else if (Key == "workload") {
      if (!Val.isString() || !knownWorkload(Val.Str))
        return "unknown workload '" + (Val.isString() ? Val.Str : "") +
               "' (expected lu, cholesky, fft, lbm, libq, cigar or cg)";
      Out.Workload = Val.Str;
    } else if (Key == "scale") {
      if (Val.isString() && Val.Str == "test")
        Out.Scale = workloads::Scale::Test;
      else if (Val.isString() && Val.Str == "full")
        Out.Scale = workloads::Scale::Full;
      else
        return "invalid scale (expected 'test' or 'full')";
    } else if (Key == "scheme") {
      if (!Val.isString() ||
          (Val.Str != "cae" && Val.Str != "manual" && Val.Str != "auto" &&
           Val.Str != "all"))
        return "invalid scheme (expected 'cae', 'manual', 'auto' or 'all')";
      Out.Scheme = Val.Str;
    } else if (Key == "policy") {
      if (!Val.isString() ||
          (Val.Str != "maxfreq" && Val.Str != "minmax" &&
           Val.Str != "optimal" && Val.Str != "ondemand" &&
           Val.Str != "conservative"))
        return "invalid policy (expected 'maxfreq', 'minmax', 'optimal', "
               "'ondemand' or 'conservative')";
      Out.Policy = Val.Str;
    } else if (Key == "transition_ns") {
      if (!Val.isNumber() || Val.Num < 0.0)
        return "transition_ns must be a non-negative number";
      Out.TransitionNs = Val.Num;
    } else if (Key == "cores") {
      if (!asInt(Val, 1, 1024, N))
        return "cores must be a positive integer";
      Out.Cores = static_cast<unsigned>(N);
    } else if (Key == "big_cores") {
      if (!asInt(Val, 1, 1024, N))
        return "big_cores must be a positive integer";
      Out.BigCores = static_cast<unsigned>(N);
      HaveBig = true;
    } else if (Key == "little_cores") {
      if (!asInt(Val, 1, 1024, N))
        return "little_cores must be a positive integer";
      Out.LittleCores = static_cast<unsigned>(N);
      HaveLittle = true;
    } else if (Key == "dae_verify") {
      if (!Val.isBool())
        return "dae_verify must be a boolean";
      Out.DaeVerify = Val.B;
    } else if (Key == "options") {
      std::string Err = parseOptions(Val, Out);
      if (!Err.empty())
        return Err;
    } else {
      // The CLI's exit-2 discipline: a typo'd knob silently ignored would
      // mislabel the caller's results, so reject it loudly.
      return badKey("request", Key);
    }
  }
  if (Out.Workload.empty())
    return "missing required 'workload'";
  if (HaveBig != HaveLittle)
    return "big_cores and little_cores must be given together";
  return "";
}

std::string service::canonicalKeyOf(const Request &R) {
  // Canonical text form of the compute parameters only (see header). Absent
  // overrides serialize as absent, not as their defaults, so "no override"
  // and "override to the current default" share an entry only when they are
  // the same bytes — defaults never silently leak into the key.
  std::string K = "daecc-compute 1|";
  K += R.Workload;
  K += R.Scale == workloads::Scale::Test ? "|test" : "|full";
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "|cores=%u|big=%u,%u|verify=%d", R.Cores,
                R.BigCores, R.LittleCores, R.DaeVerify ? 1 : 0);
  K += Buf;
  auto AddBool = [&K](const char *Name, const std::optional<bool> &V) {
    if (V)
      K += std::string("|") + Name + "=" + (*V ? "1" : "0");
  };
  AddBool("cu", R.ConvexUnion);
  AddBool("sc", R.SplitClasses);
  AddBool("ml", R.MergeLoopNests);
  AddBool("cfg", R.SimplifyCfg);
  AddBool("pw", R.PrefetchWrites);
  AddBool("pcl", R.PrefetchPerCacheLine);
  if (R.HullSlackThreshold)
    K += "|hs=" + std::to_string(*R.HullSlackThreshold);
  if (R.CacheLineBytes)
    K += "|clb=" + std::to_string(*R.CacheLineBytes);
  if (R.CountLimit)
    K += "|cl=" + std::to_string(*R.CountLimit);
  if (R.RepresentativeArgs) {
    K += "|rep=";
    for (std::int64_t A : *R.RepresentativeArgs)
      K += std::to_string(A) + ",";
  }
  return K;
}

ExperimentService::ExperimentService(Config Cin)
    : C(std::move(Cin)), Cache(C.CacheDir, C.MemCacheBytes),
      Pool(C.Jobs, C.SimThreads, /*AlwaysThreaded=*/true) {}

ExperimentService::~ExperimentService() = default;

namespace {

std::string errorJson(const char *Code, const std::string &Msg) {
  return std::string("{\"ok\": false, \"code\": \"") + Code +
         "\", \"error\": \"" + jsonEscape(Msg) + "\"}";
}

} // namespace

std::string ExperimentService::handleLine(const std::string &Line,
                                          unsigned ClientId, bool &Shutdown) {
  Shutdown = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++Requests;
  }
  auto Fail = [this](const char *Code, const std::string &Msg) {
    std::lock_guard<std::mutex> Lock(M);
    ++Errors;
    return errorJson(Code, Msg);
  };
  JsonValue V;
  std::string Err;
  if (!parseJson(Line, V, Err))
    return Fail("bad_request", "invalid JSON: " + Err);
  if (!V.isObject())
    return Fail("bad_request", "request must be a JSON object");
  const JsonValue *Op = V.get("op");
  std::string OpName = Op ? (Op->isString() ? Op->Str : "\x01") : "run";
  if (OpName == "run")
    return handleRun(V, ClientId);
  if (OpName == "stats")
    return "{\"ok\": true, \"service\": " + statsJson() + "}";
  if (OpName == "shutdown") {
    Shutdown = true;
    return "{\"ok\": true, \"shutting_down\": true}";
  }
  return Fail("bad_request",
              "unknown op (expected 'run', 'stats' or 'shutdown')");
}

std::string ExperimentService::handleRun(const JsonValue &V,
                                         unsigned ClientId) {
  Request Req;
  std::string Err = parseRequest(V, Req);
  if (!Err.empty()) {
    std::lock_guard<std::mutex> Lock(M);
    ++Errors;
    return errorJson("bad_request", Err);
  }
  auto T0 = std::chrono::steady_clock::now();
  std::string Payload;
  const char *Tag = "miss";
  if (!obtainPayload(Req, ClientId, Payload, Tag, Err)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Errors;
    return errorJson(std::strcmp(Tag, "busy") == 0 ? "busy" : "internal",
                     Err);
  }
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  {
    std::lock_guard<std::mutex> Lock(M);
    bool Hit =
        std::strcmp(Tag, "memory") == 0 || std::strcmp(Tag, "disk") == 0;
    (Hit ? HitLatency : MissLatency).add(Ms);
  }
  return priceReply(Req, Payload, Tag, Ms);
}

bool ExperimentService::obtainPayload(const Request &Req, unsigned ClientId,
                                      std::string &Payload,
                                      const char *&CacheTag,
                                      std::string &Error) {
  const std::string Key = canonicalKeyOf(Req);
  switch (Cache.get(Key, Payload)) {
  case ResultCache::Source::Memory:
    CacheTag = "memory";
    return true;
  case ResultCache::Source::Disk:
    CacheTag = "disk";
    return true;
  case ResultCache::Source::Miss:
    break;
  }

  std::shared_ptr<ComputeSlot> Slot;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = InFlight.find(Key);
    if (It != InFlight.end()) {
      // Batched admission: identical request already computing — attach.
      Slot = It->second;
      ++SharedComputes;
      CacheTag = "shared";
    } else if (QueuedCount >= C.MaxQueue) {
      ++RejectedBusy;
      CacheTag = "busy";
      Error = "service busy: compute queue full (" +
              std::to_string(QueuedCount) + " pending)";
      return false;
    } else {
      Slot = std::make_shared<ComputeSlot>();
      InFlight.emplace(Key, Slot);
      Pending P;
      P.Key = Key;
      P.Req = Req;
      P.Slot = Slot;
      auto QIt = ClientQueues.begin();
      for (; QIt != ClientQueues.end(); ++QIt)
        if (QIt->first == ClientId)
          break;
      if (QIt == ClientQueues.end()) {
        ClientQueues.emplace_back(ClientId, std::deque<Pending>());
        QIt = ClientQueues.end() - 1;
      }
      QIt->second.push_back(std::move(P));
      ++QueuedCount;
      CacheTag = "miss";
      if (ActiveRunners < Pool.jobs()) {
        ++ActiveRunners;
        Pool.submit([this] { runnerLoop(); });
      }
    }
  }

  std::unique_lock<std::mutex> SL(Slot->M);
  Slot->CV.wait(SL, [&] { return Slot->Done; });
  if (!Slot->Ok) {
    Error = Slot->Error;
    return false;
  }
  Payload = Slot->Payload;
  return true;
}

void ExperimentService::runnerLoop() {
  for (;;) {
    Pending P;
    {
      std::lock_guard<std::mutex> Lock(M);
      if (!popNextLocked(P)) {
        --ActiveRunners;
        return;
      }
    }
    executeCompute(P);
  }
}

bool ExperimentService::popNextLocked(Pending &Out) {
  // Round-robin across clients: one sweep starting at the cursor, taking
  // the first non-empty queue. A client emptying its queue drops out of the
  // rotation entirely, so an idle sweep costs nothing.
  const std::size_t N = ClientQueues.size();
  for (std::size_t I = 0; I != N; ++I) {
    std::size_t Idx = (RrCursor + I) % N;
    auto &Q = ClientQueues[Idx].second;
    if (Q.empty())
      continue;
    Out = std::move(Q.front());
    Q.pop_front();
    --QueuedCount;
    if (Q.empty()) {
      ClientQueues.erase(ClientQueues.begin() + Idx);
      RrCursor = ClientQueues.empty() ? 0 : Idx % ClientQueues.size();
    } else {
      RrCursor = (Idx + 1) % N;
    }
    return true;
  }
  return false;
}

void ExperimentService::executeCompute(const Pending &P) {
  std::string Payload, Error;
  bool Ok = false;
  try {
    std::unique_ptr<workloads::Workload> W =
        workloads::buildByName(P.Req.Workload, P.Req.Scale);
    if (!W)
      throw std::runtime_error("workload registry returned null");
    sim::MachineConfig Cfg;
    Cfg.SimThreads = Pool.simThreadsPerJob();
    if (P.Req.BigCores + P.Req.LittleCores > 0)
      Cfg.makeBigLittle(P.Req.BigCores, P.Req.LittleCores);
    else if (P.Req.Cores)
      Cfg.NumCores = P.Req.Cores;

    DaeOptions O = W->Opts;
    bool HasOverrides = false;
    auto Apply = [&HasOverrides](auto &Field, const auto &Override) {
      if (Override) {
        Field = *Override;
        HasOverrides = true;
      }
    };
    Apply(O.UseConvexUnion, P.Req.ConvexUnion);
    Apply(O.SplitClasses, P.Req.SplitClasses);
    Apply(O.MergeLoopNests, P.Req.MergeLoopNests);
    Apply(O.SimplifyCfg, P.Req.SimplifyCfg);
    Apply(O.PrefetchWrites, P.Req.PrefetchWrites);
    Apply(O.PrefetchPerCacheLine, P.Req.PrefetchPerCacheLine);
    Apply(O.HullSlackThreshold, P.Req.HullSlackThreshold);
    Apply(O.CacheLineBytes, P.Req.CacheLineBytes);
    Apply(O.CountLimit, P.Req.CountLimit);
    Apply(O.RepresentativeArgs, P.Req.RepresentativeArgs);

    // No overrides -> pass null, the exact signature the one-shot drivers
    // use (identical either way; null is the reference identity).
    harness::AppResult R = harness::runApp(
        *W, Cfg, HasOverrides ? &O : nullptr, &Memo, P.Req.DaeVerify);
    Payload = serializeAppResult(R);
    Cache.put(P.Key, Payload);
    Ok = true;
  } catch (const std::exception &E) {
    Error = std::string("compute failed: ") + E.what();
  } catch (...) {
    Error = "compute failed: unknown error";
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    InFlight.erase(P.Key);
  }
  {
    std::lock_guard<std::mutex> SL(P.Slot->M);
    P.Slot->Ok = Ok;
    P.Slot->Payload = std::move(Payload);
    P.Slot->Error = std::move(Error);
    P.Slot->Done = true;
  }
  P.Slot->CV.notify_all();
}

namespace {

void appendReport(std::string &Out, const char *Scheme,
                  const runtime::RunReport &R, const std::string &Policy) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "\"%s\": {\"policy\": \"%s\", \"time_sec\": \"%a\", "
      "\"energy_j\": \"%a\", \"edp_js\": \"%a\", "
      "\"access_time_sec\": \"%a\", \"execute_time_sec\": \"%a\", "
      "\"osi_time_sec\": \"%a\", \"num_tasks\": %zu, "
      "\"num_transitions\": %zu}",
      Scheme, Policy.c_str(), R.TimeSec, R.EnergyJ, R.EdpJs, R.AccessTimeSec,
      R.ExecuteTimeSec, R.OsiTimeSec, R.NumTasks, R.NumTransitions);
  Out += Buf;
}

void appendVerifyJson(std::string &Out, const char *Scheme,
                      const harness::DaeVerifyResult &V) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "\"%s\": {\"ran\": true, \"purity\": %s, \"audit_pure\": %s, "
      "\"baseline_misses\": %" PRIu64 ", \"covered_misses\": %" PRIu64
      ", \"strict_covered_misses\": %" PRIu64 ", \"prefetched_lines\": %" PRIu64
      ", \"unused_lines\": %" PRIu64 ", \"decoupled_tasks\": %zu}",
      Scheme, V.AuditPure && V.Diff.pure() ? "true" : "false",
      V.AuditPure ? "true" : "false", V.Diff.BaselineExecMisses,
      V.Diff.CoveredMisses, V.Diff.StrictCoveredMisses, V.Diff.PrefetchedLines,
      V.Diff.UnusedPrefetchedLines, V.Diff.DecoupledTasks);
  Out += Buf;
}

void appendOutputsJson(std::string &Out, const char *Scheme,
                       const OutputsFingerprint &Fp) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "\"%s\": {\"bytes\": %" PRIu64 ", \"fnv\": \"%016" PRIx64
                "\"}",
                Scheme, Fp.Bytes, Fp.Fnv);
  Out += Buf;
}

} // namespace

std::string ExperimentService::priceReply(const Request &Req,
                                          const std::string &Payload,
                                          const char *CacheTag,
                                          double LatencyMs) {
  ResultRecord Rec;
  if (!deserializeResult(Payload, Rec)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Errors;
    return errorJson("internal", "result payload failed to deserialize");
  }

  sim::MachineConfig Cfg;
  if (Req.BigCores + Req.LittleCores > 0)
    Cfg.makeBigLittle(Req.BigCores, Req.LittleCores);
  else if (Req.Cores)
    Cfg.NumCores = Req.Cores;

  runtime::EvalConfig EC;
  if (Req.Policy == "maxfreq") {
    EC.Policy = runtime::FreqPolicy::Fixed;
    EC.AccessFreqGHz = Cfg.fmax();
    EC.ExecFreqGHz = Cfg.fmax();
    EC.TransitionNs = Req.TransitionNs;
  } else if (Req.Policy == "minmax") {
    EC = harness::minMaxConfig(Cfg, Req.TransitionNs);
  } else if (Req.Policy == "optimal") {
    EC = harness::optimalEdpConfig(Req.TransitionNs);
  } else {
    EC.Policy = Req.Policy == "ondemand"
                    ? runtime::FreqPolicy::Ondemand
                    : runtime::FreqPolicy::Conservative;
    EC.TransitionNs = Req.TransitionNs;
  }

  bool WantCae = Req.Scheme == "cae" || Req.Scheme == "all";
  bool WantManual = Req.Scheme == "manual" || Req.Scheme == "all";
  bool WantAuto = Req.Scheme == "auto" || Req.Scheme == "all";

  std::string Reports;
  if (WantCae)
    appendReport(Reports, "cae", runtime::evaluate(Rec.App.Cae, Cfg, EC),
                 Req.Policy);
  if (WantManual) {
    if (!Reports.empty())
      Reports += ", ";
    appendReport(Reports, "manual", runtime::evaluate(Rec.App.Manual, Cfg, EC),
                 Req.Policy);
  }
  if (WantAuto) {
    if (!Reports.empty())
      Reports += ", ";
    appendReport(Reports, "auto", runtime::evaluate(Rec.App.Auto, Cfg, EC),
                 Req.Policy);
  }

  std::string Verify;
  if (Rec.App.ManualVerify.Ran)
    appendVerifyJson(Verify, "manual", Rec.App.ManualVerify);
  if (Rec.App.AutoVerify.Ran) {
    if (!Verify.empty())
      Verify += ", ";
    appendVerifyJson(Verify, "auto", Rec.App.AutoVerify);
  }

  std::string Outputs;
  appendOutputsJson(Outputs, "cae", Rec.CaeOut);
  Outputs += ", ";
  appendOutputsJson(Outputs, "manual", Rec.ManualOut);
  Outputs += ", ";
  appendOutputsJson(Outputs, "auto", Rec.AutoOut);

  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "{\"ok\": true, \"cache\": \"%s\", \"latency_ms\": %.3f, "
                "\"result\": {\"workload\": \"%s\", \"scale\": \"%s\", "
                "\"outputs_match\": %s, \"payload_fnv\": \"%016" PRIx64
                "\", \"row\": {\"affine_loops\": %u, \"total_loops\": %u, "
                "\"tasks\": %zu, \"ta_percent\": \"%a\", \"ta_us\": \"%a\"}",
                CacheTag, LatencyMs, Rec.App.Name.c_str(),
                Req.Scale == workloads::Scale::Test ? "test" : "full",
                Rec.App.OutputsMatch ? "true" : "false", fnv1a(Payload),
                Rec.App.Row.AffineLoops, Rec.App.Row.TotalLoops,
                Rec.App.Row.NumTasks, Rec.App.Row.AccessTimePercent,
                Rec.App.Row.AccessTimeUs);
  std::string Reply = Buf;
  Reply += ", \"outputs\": {" + Outputs + "}";
  Reply += ", \"reports\": {" + Reports + "}";
  Reply += ", \"verify\": {" + Verify + "}";
  Reply += "}}";
  return Reply;
}

std::string ExperimentService::statsJson() const {
  ResultCache::Stats CS = Cache.stats();
  GenerationMemo::Stats MS = Memo.stats();
  std::uint64_t Reqs, Errs, Shared, Busy;
  std::size_t Depth;
  LatencyAcc Hit, Miss;
  {
    std::lock_guard<std::mutex> Lock(M);
    Reqs = Requests;
    Errs = Errors;
    Shared = SharedComputes;
    Busy = RejectedBusy;
    Depth = QueuedCount;
    Hit = HitLatency;
    Miss = MissLatency;
  }
  auto Mean = [](const LatencyAcc &L) {
    return L.Count ? L.TotalMs / static_cast<double>(L.Count) : 0.0;
  };
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"requests\": %" PRIu64 ", \"errors\": %" PRIu64
      ", \"memory_hits\": %" PRIu64 ", \"disk_hits\": %" PRIu64
      ", \"misses\": %" PRIu64 ", \"corrupt_entries\": %" PRIu64
      ", \"cache_evictions\": %" PRIu64 ", \"cache_retained_bytes\": %" PRIu64
      ", \"shared_computes\": %" PRIu64 ", \"rejected_busy\": %" PRIu64
      ", \"queue_depth\": %zu, \"latency_ms\": "
      "{\"hit\": {\"count\": %" PRIu64 ", \"mean\": %.3f, \"max\": %.3f}, "
      "\"miss\": {\"count\": %" PRIu64 ", \"mean\": %.3f, \"max\": %.3f}}, "
      "\"memo\": {\"hits\": %" PRIu64 ", \"misses\": %" PRIu64
      ", \"evictions\": %" PRIu64 "}}",
      Reqs, Errs, CS.MemoryHits, CS.DiskHits, CS.Misses, CS.CorruptEntries,
      CS.Evictions, CS.RetainedBytes, Shared, Busy, Depth, Hit.Count,
      Mean(Hit), Hit.MaxMs, Miss.Count, Mean(Miss), Miss.MaxMs, MS.Hits,
      MS.Misses, MS.Evictions);
  return Buf;
}
