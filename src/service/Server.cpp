//===- service/Server.cpp - Unix-socket line server -------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dae;
using namespace dae::service;

namespace {

/// write() until done; false on a broken pipe.
bool writeAll(int Fd, const char *Data, std::size_t N) {
  while (N != 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    N -= static_cast<std::size_t>(W);
  }
  return true;
}

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string &Err) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path must be 1.." +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes: '" + Path + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

Server::Server(std::string SocketPath, Handler H)
    : SocketPath(std::move(SocketPath)), Handle(std::move(H)) {}

Server::~Server() {
  requestStop();
  for (std::thread &T : takeAllThreads())
    T.join();
  closeListenFd();
}

std::size_t Server::trackedThreads() {
  std::lock_guard<std::mutex> Lock(ConnMutex);
  return Threads.size() + DoneThreads.size();
}

std::vector<std::thread> Server::takeAllThreads() {
  std::vector<std::thread> Out;
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (auto &[Id, T] : Threads)
    Out.push_back(std::move(T));
  Threads.clear();
  for (std::thread &T : DoneThreads)
    Out.push_back(std::move(T));
  DoneThreads.clear();
  return Out;
}

bool Server::start(std::string &Err) {
  sockaddr_un Addr;
  if (!fillSockAddr(SocketPath, Addr, Err))
    return false;
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A crashed daemon leaves its socket file behind; a bind on it would fail
  // with EADDRINUSE forever. Unlink first — a *live* daemon still holds the
  // listening socket, so two daemons racing one path still collide at
  // connect time rather than corrupting each other.
  ::unlink(SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = "bind '" + SocketPath + "': " + std::strerror(errno);
    closeListenFd();
    return false;
  }
  if (::listen(ListenFd, 16) != 0) {
    Err = "listen '" + SocketPath + "': " + std::strerror(errno);
    closeListenFd();
    return false;
  }
  return true;
}

void Server::serve() {
  while (!Stop.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listening socket closed by requestStop()
    }
    // Reap connections that finished since the last accept: each moved its
    // handle into DoneThreads on exit, so these joins are instant and the
    // handle count tracks open connections, not total ever accepted.
    std::vector<std::thread> Finished;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      Finished.swap(DoneThreads);
      unsigned Id = NextClientId++;
      OpenConns.push_back(Fd);
      Threads.emplace(Id, std::thread([this, Fd, Id] {
                        connectionLoop(Fd, Id);
                      }));
    }
    for (std::thread &T : Finished)
      T.join();
  }
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : OpenConns)
      ::shutdown(Fd, SHUT_RDWR);
  }
  for (std::thread &T : takeAllThreads())
    T.join();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    OpenConns.clear();
  }
  closeListenFd();
  ::unlink(SocketPath.c_str());
}

void Server::requestStop() {
  if (Stop.exchange(true))
    return;
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR); // unblocks accept()
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (int Fd : OpenConns)
    ::shutdown(Fd, SHUT_RDWR);
}

void Server::closeListenFd() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void Server::connectionLoop(int Fd, unsigned ClientId) {
  std::string Buffer;
  char Chunk[4096];
  bool Shutdown = false;
  while (!Shutdown) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Buffer.append(Chunk, static_cast<std::size_t>(N));
    std::size_t Pos;
    while (!Shutdown && (Pos = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Pos);
      Buffer.erase(0, Pos + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      std::string Reply = Handle(Line, ClientId, Shutdown);
      Reply += '\n';
      if (!writeAll(Fd, Reply.data(), Reply.size())) {
        Shutdown = false;
        goto done; // client went away; only *it* is done, not the server
      }
    }
  }
done:
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    // Erase before close: once the fd is closed the kernel may recycle the
    // number, and a concurrent requestStop() walking OpenConns must never
    // shutdown() an unrelated descriptor that happens to reuse it.
    for (std::size_t I = 0; I != OpenConns.size(); ++I)
      if (OpenConns[I] == Fd) {
        OpenConns.erase(OpenConns.begin() + I);
        break;
      }
    // Retire this connection's own handle for the accept loop to join; the
    // shutdown drain may already have claimed it, in which case serve() is
    // the joiner and there is nothing to move.
    auto It = Threads.find(ClientId);
    if (It != Threads.end()) {
      DoneThreads.push_back(std::move(It->second));
      Threads.erase(It);
    }
  }
  ::close(Fd);
  if (Shutdown)
    requestStop();
}

Client::~Client() { close(); }

bool Client::connect(const std::string &SocketPath, std::string &Err) {
  close();
  sockaddr_un Addr;
  if (!fillSockAddr(SocketPath, Addr, Err))
    return false;
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect '" + SocketPath + "': " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::request(const std::string &Line, std::string &Reply) {
  if (Fd < 0)
    return false;
  std::string Out = Line;
  Out += '\n';
  if (!writeAll(Fd, Out.data(), Out.size()))
    return false;
  char Chunk[4096];
  for (;;) {
    std::size_t Pos = Buffered.find('\n');
    if (Pos != std::string::npos) {
      Reply = Buffered.substr(0, Pos);
      Buffered.erase(0, Pos + 1);
      return true;
    }
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Buffered.append(Chunk, static_cast<std::size_t>(N));
  }
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffered.clear();
}
