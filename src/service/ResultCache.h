//===- service/ResultCache.h - Persistent result cache ----------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two-level content-addressed cache of serialized AppResult payloads
/// (service/ResultPayload.h), keyed by the compute request's *canonical
/// string* (service/ExperimentService.h derives it; its FNV-1a fingerprint
/// — the native code cache's discipline — names the disk file):
///
///  * Memory level: payload strings under a retained-bytes LRU cap — the
///    TracePool/GenerationMemo discipline, so a long-lived daemon's hot set
///    stays resident without unbounded growth. The map is keyed by the full
///    canonical string, so two distinct requests can never alias an entry.
///  * Disk level (optional, --cache-dir / DAECC_CACHE_DIR): one file per
///    key, `<dir>/<16-hex-fingerprint>.res`, surviving daemon restarts.
///    Files are published atomically (same-directory temp file + rename,
///    the BENCH_*.json discipline) so a concurrent reader or a crash
///    mid-write never leaves a half-entry under the final name.
///
/// Disk entries are self-verifying: a one-line header carries the canonical
/// key's and payload's byte counts plus an FNV-1a over both, and the stored
/// canonical key is compared against the requested one on load. A
/// truncated, tampered, or version-skewed file is counted as corrupt and
/// treated as a miss — the service recomputes and rewrites it; corruption
/// never aborts a request. A well-formed entry whose stored key differs (a
/// 64-bit fingerprint collision between two distinct requests) is simply a
/// miss: the wrong result is never served, preserving the repo's
/// determinism guarantee even across hash collisions.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SERVICE_RESULTCACHE_H
#define DAECC_SERVICE_RESULTCACHE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dae {
namespace service {

class ResultCache {
public:
  /// Where a get() was satisfied from.
  enum class Source { Miss, Memory, Disk };

  struct Stats {
    std::uint64_t MemoryHits = 0;
    std::uint64_t DiskHits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t CorruptEntries = 0; ///< Disk entries failing verification.
    std::uint64_t Evictions = 0;      ///< Memory entries dropped by the cap.
    std::uint64_t RetainedBytes = 0;  ///< Memory level, at stats() time.
  };

  /// \p Dir empty disables the disk level (memory-only). The directory is
  /// created if missing; an uncreatable directory degrades to memory-only
  /// with a warning rather than failing the daemon.
  explicit ResultCache(std::string Dir,
                       std::size_t MaxMemoryBytes = std::size_t(256) << 20);

  /// Looks the canonical key up in memory, then on disk (promoting a disk
  /// hit into memory). Returns where the payload came from; Miss leaves
  /// \p Payload untouched.
  Source get(const std::string &CanonKey, std::string &Payload);

  /// Publishes \p Payload under \p CanonKey in memory and (when enabled) on
  /// disk. Disk write failures are non-fatal: the entry stays served from
  /// memory.
  void put(const std::string &CanonKey, const std::string &Payload);

  Stats stats() const;
  const std::string &dir() const { return Dir; }

private:
  struct Entry {
    std::string Payload;
    std::uint64_t LastUse = 0;
  };

  std::string filePathFor(const std::string &CanonKey) const;
  void insertMemoryLocked(const std::string &CanonKey,
                          const std::string &Payload);

  std::string Dir; ///< Empty => memory-only.
  const std::size_t MaxMemoryBytes;
  mutable std::mutex Mutex;
  std::map<std::string, Entry> Memory; ///< Keyed by full canonical string.
  std::size_t RetainedBytes = 0;
  std::uint64_t LruTick = 0;
  Stats Counters;
};

} // namespace service
} // namespace dae

#endif // DAECC_SERVICE_RESULTCACHE_H
