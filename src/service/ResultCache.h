//===- service/ResultCache.h - Persistent result cache ----------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two-level content-addressed cache of serialized AppResult payloads
/// (service/ResultPayload.h), keyed by the compute-request fingerprint
/// (service/ExperimentService.h derives it with the same FNV-1a discipline
/// as the native code cache):
///
///  * Memory level: payload strings under a retained-bytes LRU cap — the
///    TracePool/GenerationMemo discipline, so a long-lived daemon's hot set
///    stays resident without unbounded growth.
///  * Disk level (optional, --cache-dir / DAECC_CACHE_DIR): one file per
///    key, `<dir>/<16-hex-key>.res`, surviving daemon restarts. Files are
///    published atomically (same-directory temp file + rename, the
///    BENCH_*.json discipline) so a concurrent reader or a crash mid-write
///    never leaves a half-entry under the final name.
///
/// Disk entries are self-verifying: a one-line header carries the payload's
/// byte count and FNV-1a, checked on load. A truncated, tampered, or
/// version-skewed file is counted as corrupt and treated as a miss — the
/// service recomputes and rewrites it; corruption never aborts a request.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SERVICE_RESULTCACHE_H
#define DAECC_SERVICE_RESULTCACHE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dae {
namespace service {

class ResultCache {
public:
  /// Where a get() was satisfied from.
  enum class Source { Miss, Memory, Disk };

  struct Stats {
    std::uint64_t MemoryHits = 0;
    std::uint64_t DiskHits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t CorruptEntries = 0; ///< Disk entries failing verification.
    std::uint64_t Evictions = 0;      ///< Memory entries dropped by the cap.
    std::uint64_t RetainedBytes = 0;  ///< Memory level, at stats() time.
  };

  /// \p Dir empty disables the disk level (memory-only). The directory is
  /// created if missing; an uncreatable directory degrades to memory-only
  /// with a warning rather than failing the daemon.
  explicit ResultCache(std::string Dir,
                       std::size_t MaxMemoryBytes = std::size_t(256) << 20);

  /// Looks \p Key up in memory, then on disk (promoting a disk hit into
  /// memory). Returns where the payload came from; Miss leaves \p Payload
  /// untouched.
  Source get(std::uint64_t Key, std::string &Payload);

  /// Publishes \p Payload under \p Key in memory and (when enabled) on
  /// disk. Disk write failures are non-fatal: the entry stays served from
  /// memory.
  void put(std::uint64_t Key, const std::string &Payload);

  Stats stats() const;
  const std::string &dir() const { return Dir; }

private:
  struct Entry {
    std::string Payload;
    std::uint64_t LastUse = 0;
  };

  std::string filePathFor(std::uint64_t Key) const;
  void insertMemoryLocked(std::uint64_t Key, const std::string &Payload);

  std::string Dir; ///< Empty => memory-only.
  const std::size_t MaxMemoryBytes;
  mutable std::mutex Mutex;
  std::map<std::uint64_t, Entry> Memory;
  std::size_t RetainedBytes = 0;
  std::uint64_t LruTick = 0;
  Stats Counters;
};

} // namespace service
} // namespace dae

#endif // DAECC_SERVICE_RESULTCACHE_H
