//===- service/ExperimentService.h - Long-lived experiment daemon *- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon mode's core: accepts experiment requests (workload + machine
/// shape + generator knobs + pricing policy), executes them on a shared
/// harness::JobPool, and serves repeats from a persistent ResultCache. A
/// served result is bit-identical to the same request run one-shot through
/// harness::runApp — the determinism property the whole repo is built on is
/// exactly what makes results cacheable.
///
/// Request protocol (one JSON object per line; see service/Server.h for
/// framing):
///
///   {"op": "run", "workload": "lu", "scale": "test", "scheme": "all",
///    "policy": "minmax", "transition_ns": 500, "cores": 4,
///    "dae_verify": false, "options": {"simplify_cfg": true, ...}}
///
/// ops: "run" (default), "stats" (service counters), "shutdown".
/// Validation follows BenchOptions::parse semantics: every exit-2 class
/// error of the CLI surface (unknown workload, bad policy name, zero core
/// count, unknown request key, ...) becomes a structured
/// {"ok": false, "code": "bad_request", "error": ...} reply — the daemon
/// never exits on a bad request.
///
/// Cache key: the canonical string of the *compute* parameters only —
/// workload, scale, machine shape, generator-knob overrides, dae_verify —
/// compared in full on every lookup (its FNV-1a fingerprint only names the
/// disk file, so a fingerprint collision degrades to a miss, never a wrong
/// result).
/// Pricing parameters (scheme/policy/transition_ns) are deliberately
/// excluded: profiles are priced analytically per request (the paper's
/// one-simulation-per-scheme methodology), so a policy sweep over one
/// workload costs one simulation plus N cheap evaluations. Backend,
/// sim-threads and jobs are also excluded — simulated results are
/// bit-identical across all of them by construction.
///
/// Batched admission: requests for the same key attach to the in-flight
/// computation instead of queueing a duplicate (shared_computes counter);
/// distinct computations queue per client and are admitted round-robin
/// across clients (a flooding sweep cannot starve an interactive request),
/// with a bounded total queue — beyond it requests get an immediate
/// structured "busy" reply (rejected_busy) rather than unbounded latency.
/// Queued work shares one GenerationMemo, so admitted configs that differ
/// only in knobs a workload never exercises share generation work too.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SERVICE_EXPERIMENTSERVICE_H
#define DAECC_SERVICE_EXPERIMENTSERVICE_H

#include "dae/GenerationMemo.h"
#include "harness/JobPool.h"
#include "service/Json.h"
#include "service/ResultCache.h"
#include "workloads/Workload.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace dae {
namespace service {

/// One validated "run" request.
struct Request {
  // --- Compute parameters (cache-key relevant) ---
  std::string Workload;                        ///< Registry name.
  workloads::Scale Scale = workloads::Scale::Test;
  unsigned Cores = 0;                          ///< 0 = machine default.
  unsigned BigCores = 0, LittleCores = 0;      ///< big.LITTLE topology.
  bool DaeVerify = false;
  /// Generator-knob overrides, applied over the workload's own DaeOptions.
  /// Absent fields keep the workload default (and wildcard in the key).
  std::optional<bool> ConvexUnion, SplitClasses, MergeLoopNests, SimplifyCfg,
      PrefetchWrites, PrefetchPerCacheLine;
  std::optional<std::int64_t> HullSlackThreshold, CacheLineBytes;
  std::optional<long long> CountLimit;
  std::optional<std::vector<std::int64_t>> RepresentativeArgs;

  // --- Pricing parameters (per-request, never in the key) ---
  std::string Scheme = "all"; ///< cae | manual | auto | all.
  /// maxfreq | minmax | optimal | ondemand | conservative.
  std::string Policy = "minmax";
  double TransitionNs = -1.0; ///< <0 keeps the machine default (500 ns).
};

/// Parses and validates a "run" request object. Returns an empty string on
/// success, else the validation error message (unknown workload, bad value,
/// unknown key, ...).
std::string parseRequest(const JsonValue &V, Request &Out);

/// The canonical compute-key string of \p R (see file comment for what is
/// and is not included). This full string — not its 64-bit fingerprint —
/// identifies a cache entry and an in-flight compute, so two distinct
/// requests whose fingerprints collide still never share a result; the
/// FNV-1a fingerprint only names the disk file (ResultCache).
std::string canonicalKeyOf(const Request &R);

class ExperimentService {
public:
  struct Config {
    std::string CacheDir;     ///< Empty = no disk persistence.
    unsigned Jobs = 1;        ///< Concurrent compute jobs.
    unsigned SimThreads = 1;  ///< Per-job functional threads (pool-clamped).
    std::size_t MaxQueue = 64;           ///< Pending-compute bound.
    std::size_t MemCacheBytes = std::size_t(256) << 20;
  };

  explicit ExperimentService(Config C);
  ~ExperimentService();
  ExperimentService(const ExperimentService &) = delete;
  ExperimentService &operator=(const ExperimentService &) = delete;

  /// Handles one request line from \p ClientId and returns the reply line
  /// (no trailing newline). Sets \p Shutdown when the request asked the
  /// daemon to stop. Never throws, never exits: every failure is a
  /// structured error reply.
  std::string handleLine(const std::string &Line, unsigned ClientId,
                         bool &Shutdown);

  /// The `service` JSON block (BENCH_*.json schema): request/latency/cache/
  /// queue/memo counters.
  std::string statsJson() const;

  ResultCache &cache() { return Cache; }

private:
  struct ComputeSlot {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    bool Ok = false;
    std::string Payload;
    std::string Error;
  };
  struct Pending {
    std::string Key; ///< Canonical compute-key string.
    Request Req;
    std::shared_ptr<ComputeSlot> Slot;
  };
  struct LatencyAcc {
    std::uint64_t Count = 0;
    double TotalMs = 0.0;
    double MaxMs = 0.0;
    void add(double Ms) {
      ++Count;
      TotalMs += Ms;
      if (Ms > MaxMs)
        MaxMs = Ms;
    }
  };

  std::string handleRun(const JsonValue &V, unsigned ClientId);
  /// Computes (or attaches to) \p Req's result; returns the payload or an
  /// error via \p Error. \p CacheTag reports where it came from.
  bool obtainPayload(const Request &Req, unsigned ClientId,
                     std::string &Payload, const char *&CacheTag,
                     std::string &Error);
  void runnerLoop();
  bool popNextLocked(Pending &Out);
  void executeCompute(const Pending &P);
  std::string priceReply(const Request &Req, const std::string &Payload,
                         const char *CacheTag, double LatencyMs);

  Config C;
  GenerationMemo Memo;
  ResultCache Cache;

  mutable std::mutex M;
  /// In-flight computes by canonical key string (not fingerprint — attach
  /// must never coalesce two distinct requests across a hash collision).
  std::map<std::string, std::shared_ptr<ComputeSlot>> InFlight;
  /// Per-client admission queues, swept round-robin by the runners.
  std::vector<std::pair<unsigned, std::deque<Pending>>> ClientQueues;
  std::size_t RrCursor = 0;
  std::size_t QueuedCount = 0;
  unsigned ActiveRunners = 0;

  std::uint64_t Requests = 0;
  std::uint64_t Errors = 0;
  std::uint64_t SharedComputes = 0;
  std::uint64_t RejectedBusy = 0;
  LatencyAcc HitLatency, MissLatency;

  /// Declared last so its destructor runs first: the pool joins its workers
  /// (draining queued runner jobs) while Memo/Cache are still alive.
  harness::JobPool Pool;
};

} // namespace service
} // namespace dae

#endif // DAECC_SERVICE_EXPERIMENTSERVICE_H
