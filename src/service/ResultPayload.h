//===- service/ResultPayload.h - Cacheable AppResult form -------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialized form of one computed harness::AppResult — the unit the
/// experiment service caches (in memory and on disk) and prices per
/// request. The format is a line-oriented text record with every double in
/// C99 hexfloat, so a payload deserialized from the cache reproduces the
/// original profiles *bit for bit*: pricing a cached result under any
/// EvalConfig yields exactly the RunReport the one-shot run would have
/// produced. That is the property that lets the cache key exclude pricing
/// parameters entirely (service/ExperimentService.h).
///
/// Deliberate exclusions, both documented as telemetry/diagnostics rather
/// than results:
///  * RunProfile::FunctionalSeconds (host wall clock; excluded from
///    determinism comparisons everywhere) serializes as zero, keeping the
///    payload content-deterministic for identical requests.
///  * AppResult::Generation (per-task diagnostics holding IR pointers) is
///    not serialized; the scheme profiles and Table1Row carry everything
///    the pricing and figure paths consume.
///  * Output byte snapshots are stored as (length, FNV-1a) fingerprints —
///    enough to assert end-to-end bit-identity against an inline run
///    without persisting megabytes of array data per entry.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SERVICE_RESULTPAYLOAD_H
#define DAECC_SERVICE_RESULTPAYLOAD_H

#include "harness/Harness.h"

#include <cstdint>
#include <string>

namespace dae {
namespace service {

/// FNV-1a over a byte range; the same discipline (offset basis / prime) as
/// the native code cache's content hash.
std::uint64_t fnv1a(const void *Data, std::size_t N);
inline std::uint64_t fnv1a(const std::string &S) {
  return fnv1a(S.data(), S.size());
}

/// (length, FNV-1a) fingerprint of one scheme's output byte snapshot.
struct OutputsFingerprint {
  std::uint64_t Bytes = 0;
  std::uint64_t Fnv = 0;
};

/// A deserialized payload: the AppResult (with empty output byte vectors —
/// only their fingerprints persist) plus the per-scheme output
/// fingerprints.
struct ResultRecord {
  harness::AppResult App;
  OutputsFingerprint CaeOut, ManualOut, AutoOut;
};

/// Serialized form of one AppResult (see file comment for exclusions).
/// Deterministic: identical results produce byte-identical payloads.
std::string serializeAppResult(const harness::AppResult &R);

/// Inverse of serializeAppResult. Returns false (leaving \p Out in an
/// unspecified state) on any malformed input — the cache layer treats that
/// as a corrupt entry and recomputes.
bool deserializeResult(const std::string &Payload, ResultRecord &Out);

} // namespace service
} // namespace dae

#endif // DAECC_SERVICE_RESULTPAYLOAD_H
