//===- poly/ConvexHull.h - Hull of a union of polyhedra ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "convex union" of section 5.1.2: the closed convex hull of a union of
/// H-polyhedra, computed symbolically with Balas's lift-and-project
/// construction and Fourier-Motzkin projection:
///
///   conv(P1 u ... u Pk) = proj_x { (x, x1..xk, l1..lk) :
///       x = sum xi, sum li = 1, li >= 0, Ai xi + bi li >= 0 }
///
/// Parameters (e.g. Block, N, Ax/Ay of Listing 3) are ordinary dimensions of
/// the space that the caller simply never scans; keeping them as dimensions
/// is what makes the generated prefetch loop bounds symbolic in the task
/// parameters.
///
/// Also provides the per-dimension range hull, which is exactly the paper's
/// "memory range analysis" baseline (section 5.1.1) used by the ablation
/// bench.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_POLY_CONVEXHULL_H
#define DAECC_POLY_CONVEXHULL_H

#include "poly/Polyhedron.h"

#include <vector>

namespace dae {
namespace poly {

/// Closed convex hull of the union of \p Ps (all over the same space).
/// Empty members are ignored; asserts at least one non-empty member.
Polyhedron convexHullOfUnion(const std::vector<Polyhedron> &Ps);

/// The section-5.1.1 baseline: per-dimension projection box. For each
/// dimension in \p BoxDims, takes the projection of each member onto that
/// dimension (plus the non-boxed dimensions, i.e. the parameters) and hulls
/// the per-member boxes. Coarser than convexHullOfUnion.
Polyhedron rangeHull(const std::vector<Polyhedron> &Ps,
                     const std::vector<unsigned> &BoxDims);

} // namespace poly
} // namespace dae

#endif // DAECC_POLY_CONVEXHULL_H
