//===- poly/Polyhedron.cpp - Integer H-polyhedra ---------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/Polyhedron.h"

#include "support/Format.h"
#include "support/Rational.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace dae;
using namespace dae::poly;

bool PolyConstraint::isTautologyShape() const {
  for (std::int64_t C : Coeffs)
    if (C != 0)
      return false;
  return true;
}

std::string PolyConstraint::str() const {
  std::string S;
  for (unsigned I = 0; I != Coeffs.size(); ++I) {
    std::int64_t C = Coeffs[I];
    if (C == 0)
      continue;
    if (!S.empty())
      S += C > 0 ? " + " : " - ";
    else if (C < 0)
      S += "-";
    std::int64_t A = C < 0 ? -C : C;
    if (A != 1)
      S += std::to_string(A) + "*";
    S += "x" + std::to_string(I);
  }
  if (S.empty())
    return std::to_string(Const) + " >= 0";
  if (Const > 0)
    S += " + " + std::to_string(Const);
  else if (Const < 0)
    S += " - " + std::to_string(-Const);
  return S + " >= 0";
}

namespace {

/// Integer-tightening normalization: divide by the coefficient gcd and floor
/// the constant. Returns false for a tautological "0 + k >= 0, k >= 0" row
/// that can be dropped entirely.
bool normalizeConstraint(PolyConstraint &C) {
  std::int64_t G = 0;
  for (std::int64_t V : C.Coeffs)
    G = gcd64(G, V);
  if (G == 0)
    return C.Const < 0; // Keep only an infeasible constant row.
  if (G > 1) {
    for (std::int64_t &V : C.Coeffs)
      V /= G;
    // floor division for possibly negative constants.
    std::int64_t K = C.Const;
    C.Const = K >= 0 ? K / G : -((-K + G - 1) / G);
  }
  return true;
}

std::int64_t mulChecked(std::int64_t A, std::int64_t B) {
  __int128 R = static_cast<__int128>(A) * B;
  assert(R <= INT64_MAX && R >= INT64_MIN && "polyhedron coefficient overflow");
  return static_cast<std::int64_t>(R);
}

std::int64_t addChecked(std::int64_t A, std::int64_t B) {
  __int128 R = static_cast<__int128>(A) + B;
  assert(R <= INT64_MAX && R >= INT64_MIN && "polyhedron constant overflow");
  return static_cast<std::int64_t>(R);
}

} // namespace

void Polyhedron::addInequality(std::vector<std::int64_t> Coeffs,
                               std::int64_t Const) {
  assert(Coeffs.size() == NumVars && "coefficient count mismatch");
  PolyConstraint C{std::move(Coeffs), Const};
  if (C.isTautologyShape() && C.Const >= 0)
    return; // Trivially true.
  normalizeConstraint(C);
  Cs.push_back(std::move(C));
}

void Polyhedron::addEquality(std::vector<std::int64_t> Coeffs,
                             std::int64_t Const) {
  std::vector<std::int64_t> Neg(Coeffs.size());
  for (unsigned I = 0; I != Coeffs.size(); ++I)
    Neg[I] = -Coeffs[I];
  addInequality(Coeffs, Const);
  addInequality(std::move(Neg), -Const);
}

void Polyhedron::addLowerBound(unsigned Var, std::int64_t Lo) {
  std::vector<std::int64_t> C(NumVars, 0);
  C[Var] = 1;
  addInequality(std::move(C), -Lo);
}

void Polyhedron::addUpperBound(unsigned Var, std::int64_t Hi) {
  std::vector<std::int64_t> C(NumVars, 0);
  C[Var] = -1;
  addInequality(std::move(C), Hi);
}

void Polyhedron::simplify() {
  // Normalize (already done on add and combine), dedup, and drop rows
  // subsumed by a same-coefficients row with a smaller constant.
  std::sort(Cs.begin(), Cs.end());
  std::vector<PolyConstraint> Out;
  for (auto &C : Cs) {
    if (!Out.empty() && Out.back().Coeffs == C.Coeffs) {
      // Sorted ascending by Const: the earlier row is tighter; skip.
      continue;
    }
    Out.push_back(std::move(C));
  }
  Cs = std::move(Out);
}

Polyhedron Polyhedron::eliminate(unsigned Var) const {
  assert(Var < NumVars && "variable out of range");
  Polyhedron Res(NumVars);
  std::vector<const PolyConstraint *> Pos, Neg;
  for (const auto &C : Cs) {
    std::int64_t A = C.Coeffs[Var];
    if (A == 0)
      Res.Cs.push_back(C);
    else if (A > 0)
      Pos.push_back(&C);
    else
      Neg.push_back(&C);
  }
  for (const PolyConstraint *P : Pos) {
    for (const PolyConstraint *N : Neg) {
      std::int64_t A = P->Coeffs[Var];       // > 0
      std::int64_t B = -N->Coeffs[Var];      // > 0
      // B*P + A*N cancels Var.
      PolyConstraint C;
      C.Coeffs.resize(NumVars);
      for (unsigned I = 0; I != NumVars; ++I)
        C.Coeffs[I] = addChecked(mulChecked(B, P->Coeffs[I]),
                                 mulChecked(A, N->Coeffs[I]));
      C.Const =
          addChecked(mulChecked(B, P->Const), mulChecked(A, N->Const));
      assert(C.Coeffs[Var] == 0 && "elimination failed to cancel");
      if (C.isTautologyShape() && C.Const >= 0)
        continue;
      normalizeConstraint(C);
      Res.Cs.push_back(std::move(C));
    }
  }
  Res.simplify();
  return Res;
}

Polyhedron Polyhedron::eliminateAll(const std::vector<unsigned> &Vars) const {
  // Greedy ordering: repeatedly eliminate the variable with the smallest
  // pos*neg product (the classic Fourier-Motzkin blowup heuristic).
  Polyhedron Res = *this;
  std::vector<unsigned> Pending = Vars;
  while (!Pending.empty()) {
    unsigned BestIdx = 0;
    long long BestScore = -1;
    for (unsigned I = 0; I != Pending.size(); ++I) {
      long long Pos = 0, Neg = 0;
      for (const auto &C : Res.Cs) {
        if (C.Coeffs[Pending[I]] > 0)
          ++Pos;
        else if (C.Coeffs[Pending[I]] < 0)
          ++Neg;
      }
      long long Score = Pos * Neg - (Pos + Neg);
      if (BestScore < 0 || Score < BestScore) {
        BestScore = Score;
        BestIdx = I;
      }
    }
    Res = Res.eliminate(Pending[BestIdx]);
    Pending.erase(Pending.begin() + BestIdx);
  }
  return Res;
}

Polyhedron Polyhedron::instantiate(unsigned Var, std::int64_t Value) const {
  assert(Var < NumVars && "variable out of range");
  Polyhedron Res(NumVars);
  for (const auto &C : Cs) {
    PolyConstraint NC = C;
    NC.Const = addChecked(NC.Const, mulChecked(NC.Coeffs[Var], Value));
    NC.Coeffs[Var] = 0;
    if (NC.isTautologyShape() && NC.Const >= 0)
      continue;
    normalizeConstraint(NC);
    Res.Cs.push_back(std::move(NC));
  }
  return Res;
}

namespace {

/// Exact rational feasibility of {x : sum(a_i x) + b >= 0 for all rows} via
/// phase-1 simplex with Bland's rule (guaranteed termination). Free
/// variables are split into differences of nonnegatives. Fourier-Motzkin is
/// doubly exponential on the lifted systems the convex-hull construction
/// produces; simplex keeps emptiness checks polynomial in practice.
bool rationalFeasible(const std::vector<PolyConstraint> &Rows,
                      unsigned NumVars) {
  const unsigned M = static_cast<unsigned>(Rows.size());
  if (M == 0)
    return true;
  // Columns: [0, 2n) split variables, [2n, 2n+m) slacks, [2n+m, 2n+2m)
  // artificials. T has an extra RHS column at the end.
  const unsigned NSplit = 2 * NumVars;
  const unsigned Cols = NSplit + 2 * M;
  std::vector<std::vector<Rational>> T(M, std::vector<Rational>(Cols + 1));
  std::vector<unsigned> Basis(M);

  for (unsigned I = 0; I != M; ++I) {
    // a.x + b >= 0  <=>  a.u - a.v - s = -b.
    std::int64_t Sign = -Rows[I].Const >= 0 ? 1 : -1;
    for (unsigned J = 0; J != NumVars; ++J) {
      T[I][2 * J] = Rational(Sign * Rows[I].Coeffs[J]);
      T[I][2 * J + 1] = Rational(-Sign * Rows[I].Coeffs[J]);
    }
    T[I][NSplit + I] = Rational(-Sign);
    T[I][NSplit + M + I] = Rational(1);
    T[I][Cols] = Rational(Sign * -Rows[I].Const);
    Basis[I] = NSplit + M + I;
  }

  // Phase-1 objective: minimize sum of artificials. Work with the row
  // Z = sum of constraint rows (reduced costs of the artificial basis).
  std::vector<Rational> Z(Cols + 1);
  for (unsigned I = 0; I != M; ++I)
    for (unsigned J = 0; J <= Cols; ++J)
      Z[J] += T[I][J];

  while (true) {
    // Bland's rule: entering column = smallest index with positive reduced
    // cost among non-artificial columns.
    unsigned Enter = Cols;
    for (unsigned J = 0; J != NSplit + M; ++J)
      if (Z[J] > Rational(0)) {
        Enter = J;
        break;
      }
    if (Enter == Cols)
      break; // Optimal.

    // Ratio test; Bland ties broken by smallest basis variable index.
    unsigned Leave = M;
    Rational BestRatio(0);
    for (unsigned I = 0; I != M; ++I) {
      if (!(T[I][Enter] > Rational(0)))
        continue;
      Rational Ratio = T[I][Cols] / T[I][Enter];
      if (Leave == M || Ratio < BestRatio ||
          (Ratio == BestRatio && Basis[I] < Basis[Leave]))  {
        Leave = I;
        BestRatio = Ratio;
      }
    }
    if (Leave == M)
      break; // Unbounded objective cannot happen in phase 1; be safe.

    // Pivot.
    Rational Pivot = T[Leave][Enter];
    for (unsigned J = 0; J <= Cols; ++J)
      T[Leave][J] /= Pivot;
    for (unsigned I = 0; I != M; ++I) {
      if (I == Leave || T[I][Enter].isZero())
        continue;
      Rational F = T[I][Enter];
      for (unsigned J = 0; J <= Cols; ++J)
        T[I][J] -= F * T[Leave][J];
    }
    if (!Z[Enter].isZero()) {
      Rational F = Z[Enter];
      for (unsigned J = 0; J <= Cols; ++J)
        Z[J] -= F * T[Leave][J];
    }
    Basis[Leave] = Enter;
  }

  // Feasible iff every artificial is (effectively) zero: objective RHS == 0.
  return Z[Cols].isZero();
}

} // namespace

bool Polyhedron::isEmpty() const {
  // Cheap scan first: an explicitly infeasible constant row.
  for (const auto &C : Cs)
    if (C.isTautologyShape() && C.Const < 0)
      return true;
  return !rationalFeasible(Cs, NumVars);
}

bool Polyhedron::isRedundant(const PolyConstraint &C) const {
  // C is redundant iff (this minus C) intersected with the integer negation
  // of C (-e - 1 >= 0) is empty.
  Polyhedron Test(NumVars);
  for (const auto &Other : Cs)
    if (!(Other == C))
      Test.Cs.push_back(Other);
  PolyConstraint Neg;
  Neg.Coeffs.resize(NumVars);
  for (unsigned I = 0; I != NumVars; ++I)
    Neg.Coeffs[I] = -C.Coeffs[I];
  Neg.Const = -C.Const - 1;
  normalizeConstraint(Neg);
  Test.Cs.push_back(std::move(Neg));
  return Test.isEmpty();
}

Polyhedron Polyhedron::removeRedundant() const {
  Polyhedron Res = *this;
  Res.simplify();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I != Res.Cs.size(); ++I) {
      if (Res.isRedundant(Res.Cs[I])) {
        Res.Cs.erase(Res.Cs.begin() + I);
        Changed = true;
        break;
      }
    }
  }
  return Res;
}

Polyhedron::VarBounds Polyhedron::integerBounds(unsigned Var) const {
  Polyhedron P = *this;
  for (unsigned V = 0; V != NumVars; ++V) {
    if (V == Var)
      continue;
    bool Appears = false;
    for (const auto &C : P.Cs)
      if (C.Coeffs[V] != 0) {
        Appears = true;
        break;
      }
    if (Appears)
      P = P.eliminate(V);
  }
  VarBounds B;
  for (const auto &C : P.Cs) {
    std::int64_t A = C.Coeffs[Var];
    if (A == 0) {
      if (C.Const < 0) {
        // Infeasible: encode as empty range.
        B.Lo = 1;
        B.Hi = 0;
        return B;
      }
      continue;
    }
    if (A > 0) {
      // A*x + K >= 0  =>  x >= ceil(-K / A).
      Rational Bound(-C.Const, A);
      std::int64_t Lo = Bound.ceil();
      if (!B.Lo || *B.Lo < Lo)
        B.Lo = Lo;
    } else {
      // A*x + K >= 0, A < 0  =>  x <= floor(K / -A).
      Rational Bound(C.Const, -A);
      std::int64_t Hi = Bound.floor();
      if (!B.Hi || *B.Hi > Hi)
        B.Hi = Hi;
    }
  }
  return B;
}

bool Polyhedron::contains(const std::vector<std::int64_t> &Point) const {
  assert(Point.size() == NumVars && "point dimension mismatch");
  for (const auto &C : Cs) {
    __int128 V = C.Const;
    for (unsigned I = 0; I != NumVars; ++I)
      V += static_cast<__int128>(C.Coeffs[I]) * Point[I];
    if (V < 0)
      return false;
  }
  return true;
}

Polyhedron Polyhedron::intersect(const Polyhedron &A, const Polyhedron &B) {
  assert(A.NumVars == B.NumVars && "dimension mismatch");
  Polyhedron Res = A;
  for (const auto &C : B.Cs)
    Res.Cs.push_back(C);
  Res.simplify();
  return Res;
}

long long Polyhedron::countRecursive(
    std::vector<unsigned> RemainingVars, long long Limit,
    std::vector<std::vector<std::int64_t>> *Points,
    std::vector<std::int64_t> &Prefix) const {
  if (RemainingVars.empty()) {
    for (const auto &C : Cs)
      if (C.isTautologyShape() && C.Const < 0)
        return 0;
    if (Points)
      Points->push_back(Prefix);
    return 1;
  }
  unsigned V = RemainingVars.front();
  std::vector<unsigned> Rest(RemainingVars.begin() + 1, RemainingVars.end());

  Polyhedron ForBounds = eliminateAll(Rest);
  VarBounds B = ForBounds.integerBounds(V);
  if (!B.Lo || !B.Hi)
    return -1; // Unbounded.
  long long Total = 0;
  for (std::int64_t X = *B.Lo; X <= *B.Hi; ++X) {
    Polyhedron Sub = instantiate(V, X);
    Prefix[V] = X;
    long long N = Sub.countRecursive(Rest, Limit - Total, Points, Prefix);
    if (N < 0)
      return N;
    Total += N;
    if (Total > Limit)
      return -2; // Over limit.
  }
  return Total;
}

std::optional<long long>
Polyhedron::countIntegerPoints(long long Limit) const {
  // Count only over variables that actually appear; absent variables are
  // unconstrained and would make the set infinite, except that callers count
  // projected/instantiated polyhedra where absent variables are intentional
  // free dimensions with exactly one relevant value. We treat a variable
  // with no constraints as contributing a factor of 1 (i.e. we count the
  // projection onto the constrained variables).
  std::vector<unsigned> Vars;
  for (unsigned V = 0; V != NumVars; ++V)
    for (const auto &C : Cs)
      if (C.Coeffs[V] != 0) {
        Vars.push_back(V);
        break;
      }
  std::vector<std::int64_t> Prefix(NumVars, 0);
  long long N = countRecursive(Vars, Limit, nullptr, Prefix);
  if (N < 0)
    return std::nullopt;
  return N;
}

std::vector<std::vector<std::int64_t>>
Polyhedron::enumerateIntegerPoints(long long Limit) const {
  std::vector<unsigned> Vars;
  for (unsigned V = 0; V != NumVars; ++V)
    for (const auto &C : Cs)
      if (C.Coeffs[V] != 0) {
        Vars.push_back(V);
        break;
      }
  std::vector<std::vector<std::int64_t>> Points;
  std::vector<std::int64_t> Prefix(NumVars, 0);
  [[maybe_unused]] long long N = countRecursive(Vars, Limit, &Points, Prefix);
  assert(N >= 0 && "enumeration of unbounded or oversized polyhedron");
  return Points;
}

std::string Polyhedron::str() const {
  std::string S = strfmt("{ %u vars:\n", NumVars);
  for (const auto &C : Cs)
    S += "  " + C.str() + "\n";
  return S + "}";
}
