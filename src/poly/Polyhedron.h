//===- poly/Polyhedron.h - Integer H-polyhedra ------------------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint-represented (H-form) polyhedra over integer points, standing in
/// for PolyLib in the paper's pipeline. Supports exactly the operations the
/// access-phase generator needs:
///
///  * building iteration domains and access images from affine constraints,
///  * Fourier-Motzkin variable elimination (projection),
///  * emptiness and redundancy tests,
///  * variable substitution (parameter instantiation),
///  * per-variable integer bounds extraction (loop-nest synthesis), and
///  * exact lattice-point counting by recursive projection/enumeration
///    (NOrig/NconvUn of section 5.1.2).
///
/// Constraints are normalized for *integer* solutions: each inequality
/// sum(c_i x_i) + k >= 0 is divided by g = gcd(c_i) with k tightened to
/// floor(k/g), which is sound over Z (the only solution domain we care
/// about).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_POLY_POLYHEDRON_H
#define DAECC_POLY_POLYHEDRON_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dae {
namespace poly {

/// One linear inequality sum(Coeffs[i] * x_i) + Const >= 0.
struct PolyConstraint {
  std::vector<std::int64_t> Coeffs;
  std::int64_t Const = 0;

  bool operator==(const PolyConstraint &R) const {
    return Coeffs == R.Coeffs && Const == R.Const;
  }
  bool operator<(const PolyConstraint &R) const {
    if (Coeffs != R.Coeffs)
      return Coeffs < R.Coeffs;
    return Const < R.Const;
  }

  /// True when every variable coefficient is zero.
  bool isTautologyShape() const;
  /// Renders e.g. "2*x0 - x1 + 3 >= 0".
  std::string str() const;
};

/// A conjunction of linear inequalities over a fixed number of variables,
/// interpreted as its set of integer solutions.
class Polyhedron {
public:
  explicit Polyhedron(unsigned NumVars) : NumVars(NumVars) {}

  unsigned getNumVars() const { return NumVars; }
  const std::vector<PolyConstraint> &constraints() const { return Cs; }
  unsigned getNumConstraints() const {
    return static_cast<unsigned>(Cs.size());
  }

  /// Adds sum(Coeffs[i] * x_i) + Const >= 0.
  void addInequality(std::vector<std::int64_t> Coeffs, std::int64_t Const);
  /// Adds sum(Coeffs[i] * x_i) + Const == 0 (stored as two inequalities).
  void addEquality(std::vector<std::int64_t> Coeffs, std::int64_t Const);
  /// Convenience: Lo <= x_Var (as x_Var - Lo >= 0).
  void addLowerBound(unsigned Var, std::int64_t Lo);
  /// Convenience: x_Var <= Hi.
  void addUpperBound(unsigned Var, std::int64_t Hi);

  /// Returns a copy with variable \p Var eliminated by Fourier-Motzkin; the
  /// variable remains in the coordinate system but unconstrained.
  Polyhedron eliminate(unsigned Var) const;
  /// Eliminates every variable in \p Vars.
  Polyhedron eliminateAll(const std::vector<unsigned> &Vars) const;

  /// Returns a copy with x_Var fixed to \p Value.
  Polyhedron instantiate(unsigned Var, std::int64_t Value) const;

  /// True when no rational point satisfies the (integer-tightened)
  /// constraints. An exact emptiness test for the integer sets produced by
  /// loop bounds in practice; used for feasibility and redundancy checks.
  bool isEmpty() const;

  /// True when dropping \p C from this polyhedron does not change the
  /// solution set (checked against integer-tightened rational relaxation).
  bool isRedundant(const PolyConstraint &C) const;
  /// Returns a copy with redundant constraints removed (quadratic; intended
  /// for the small systems of loop nests).
  Polyhedron removeRedundant() const;

  /// Integer bounds of x_Var with all other variables eliminated. Each side
  /// is nullopt when unbounded.
  struct VarBounds {
    std::optional<std::int64_t> Lo;
    std::optional<std::int64_t> Hi;
  };
  VarBounds integerBounds(unsigned Var) const;

  /// Exact number of integer points, or nullopt when the count exceeds
  /// \p Limit or the set is unbounded.
  std::optional<long long> countIntegerPoints(long long Limit = 100000000) const;

  /// Enumerates all integer points (ascending lexicographic); asserts the
  /// set is bounded and within \p Limit points.
  std::vector<std::vector<std::int64_t>> enumerateIntegerPoints(
      long long Limit = 1000000) const;

  /// True when \p Point satisfies all constraints.
  bool contains(const std::vector<std::int64_t> &Point) const;

  /// Intersection of two polyhedra over the same space.
  static Polyhedron intersect(const Polyhedron &A, const Polyhedron &B);

  /// Normalizes, dedups, and drops pairwise-subsumed constraints.
  void simplify();

  std::string str() const;

private:
  long long countRecursive(std::vector<unsigned> RemainingVars,
                           long long Limit,
                           std::vector<std::vector<std::int64_t>> *Points,
                           std::vector<std::int64_t> &Prefix) const;

  unsigned NumVars;
  std::vector<PolyConstraint> Cs;
};

} // namespace poly
} // namespace dae

#endif // DAECC_POLY_POLYHEDRON_H
