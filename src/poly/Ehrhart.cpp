//===- poly/Ehrhart.cpp - Ehrhart polynomials by interpolation -------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/Ehrhart.h"

#include <cassert>

using namespace dae;
using namespace dae::poly;

Rational EhrhartPolynomial::evaluate(std::int64_t P) const {
  Rational Acc(0);
  // Horner, highest degree first.
  for (auto It = Coeffs.rbegin(); It != Coeffs.rend(); ++It)
    Acc = Acc * Rational(P) + *It;
  return Acc;
}

std::string EhrhartPolynomial::str() const {
  std::string S;
  for (unsigned D = static_cast<unsigned>(Coeffs.size()); D-- > 0;) {
    const Rational &C = Coeffs[D];
    if (C.isZero())
      continue;
    if (!S.empty())
      S += C.isNegative() ? " - " : " + ";
    else if (C.isNegative())
      S += "-";
    Rational A = C.isNegative() ? -C : C;
    bool One = A == Rational(1);
    if (D == 0 || !One)
      S += A.str();
    if (D > 0) {
      if (!One)
        S += "*";
      S += "p";
      if (D > 1)
        S += "^" + std::to_string(D);
    }
  }
  return S.empty() ? "0" : S;
}

namespace {

/// Solves the square rational system M * x = B by Gaussian elimination.
/// Returns false when the matrix is singular.
bool solveRational(std::vector<std::vector<Rational>> M,
                   std::vector<Rational> B, std::vector<Rational> &X) {
  const size_t N = M.size();
  for (size_t Col = 0; Col != N; ++Col) {
    size_t Pivot = Col;
    while (Pivot < N && M[Pivot][Col].isZero())
      ++Pivot;
    if (Pivot == N)
      return false;
    std::swap(M[Pivot], M[Col]);
    std::swap(B[Pivot], B[Col]);
    for (size_t Row = 0; Row != N; ++Row) {
      if (Row == Col || M[Row][Col].isZero())
        continue;
      Rational F = M[Row][Col] / M[Col][Col];
      for (size_t C2 = Col; C2 != N; ++C2)
        M[Row][C2] -= F * M[Col][C2];
      B[Row] -= F * B[Col];
    }
  }
  X.resize(N);
  for (size_t I = 0; I != N; ++I)
    X[I] = B[I] / M[I][I];
  return true;
}

} // namespace

std::optional<EhrhartPolynomial>
poly::fitEhrhart(const Polyhedron &P, unsigned ParamVar, std::int64_t PStart,
                 unsigned MaxDegree) {
  const unsigned Samples = MaxDegree + 1;
  const unsigned Holdout = 2;

  std::vector<std::int64_t> Xs;
  std::vector<long long> Ys;
  for (unsigned I = 0; I != Samples + Holdout; ++I) {
    std::int64_t X = PStart + static_cast<std::int64_t>(I);
    auto Count = P.instantiate(ParamVar, X).countIntegerPoints();
    if (!Count)
      return std::nullopt;
    Xs.push_back(X);
    Ys.push_back(*Count);
  }

  // Vandermonde fit on the first Samples points.
  std::vector<std::vector<Rational>> M(Samples,
                                       std::vector<Rational>(Samples));
  std::vector<Rational> B(Samples);
  for (unsigned R = 0; R != Samples; ++R) {
    Rational Pow(1);
    for (unsigned C = 0; C != Samples; ++C) {
      M[R][C] = Pow;
      Pow = Pow * Rational(Xs[R]);
    }
    B[R] = Rational(Ys[R]);
  }
  std::vector<Rational> Coeffs;
  if (!solveRational(std::move(M), std::move(B), Coeffs))
    return std::nullopt;

  // Trim trailing zero coefficients.
  while (Coeffs.size() > 1 && Coeffs.back().isZero())
    Coeffs.pop_back();

  EhrhartPolynomial Poly(std::move(Coeffs));
  for (unsigned I = Samples; I != Samples + Holdout; ++I)
    if (Poly.evaluate(Xs[I]) != Rational(Ys[I]))
      return std::nullopt; // Quasi-polynomial (or wrong degree bound).
  return Poly;
}
