//===- poly/ConvexHull.cpp - Hull of a union of polyhedra ------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/ConvexHull.h"

#include <cassert>

using namespace dae;
using namespace dae::poly;

namespace {

/// Runs exact redundancy elimination whenever the constraint system grows
/// past a threshold, to keep Fourier-Motzkin blowup in check.
Polyhedron compress(Polyhedron P, unsigned Threshold) {
  P.simplify();
  if (P.getNumConstraints() > Threshold)
    return P.removeRedundant();
  return P;
}

} // namespace

namespace {

/// Balas hull of exactly two non-empty members (see header). The public
/// entry point folds the union pairwise — conv(A u B u C) =
/// conv(conv(A u B) u C) — which keeps the lifted space small and
/// Fourier-Motzkin tame.
Polyhedron pairwiseHull(const std::vector<const Polyhedron *> &Members);

} // namespace

Polyhedron poly::convexHullOfUnion(const std::vector<Polyhedron> &Ps) {
  std::vector<const Polyhedron *> Members;
  for (const auto &P : Ps)
    if (!P.isEmpty())
      Members.push_back(&P);
  assert(!Members.empty() && "hull of an empty union");
  const unsigned N = Members.front()->getNumVars();
  for ([[maybe_unused]] const Polyhedron *P : Members)
    assert(P->getNumVars() == N && "hull members in different spaces");

  if (Members.size() == 1)
    return Members.front()->removeRedundant();

  Polyhedron Acc = Members.front()->removeRedundant();
  for (size_t I = 1; I != Members.size(); ++I)
    Acc = pairwiseHull({&Acc, Members[I]});
  return Acc;
}

namespace {

Polyhedron pairwiseHull(const std::vector<const Polyhedron *> &Members) {
  const unsigned N = Members.front()->getNumVars();
  assert(Members.size() == 2 && "pairwise hull takes exactly two members");
  // Compact Balas encoding with the equalities already substituted:
  //   x = x1 + x2, l1 + l2 = 1  with  w := x2, u := l2
  //   member 0:  A0 (x - w) + b0 (1 - u) >= 0
  //   member 1:  A1 w + b1 u >= 0
  //   0 <= u <= 1
  // Variable layout: [0, N) -> x (kept), [N, 2N) -> w, [2N] -> u.
  const unsigned Total = 2 * N + 1;
  Polyhedron Lifted(Total);

  for (const PolyConstraint &C : Members[0]->constraints()) {
    std::vector<std::int64_t> E(Total, 0);
    for (unsigned D = 0; D != N; ++D) {
      E[D] = C.Coeffs[D];
      E[N + D] = -C.Coeffs[D];
    }
    E[2 * N] = -C.Const;
    Lifted.addInequality(std::move(E), C.Const);
  }
  for (const PolyConstraint &C : Members[1]->constraints()) {
    std::vector<std::int64_t> E(Total, 0);
    for (unsigned D = 0; D != N; ++D)
      E[N + D] = C.Coeffs[D];
    E[2 * N] = C.Const;
    Lifted.addInequality(std::move(E), 0);
  }
  Lifted.addLowerBound(2 * N, 0);
  Lifted.addUpperBound(2 * N, 1);

  // Project out the lifted variables one at a time, greedily choosing the
  // variable with the smallest pos*neg fan-out and compacting after every
  // step — unconstrained growth between eliminations blows up doubly
  // exponentially otherwise.
  {
    std::vector<unsigned> Aux;
    for (unsigned V = N; V != Total; ++V)
      Aux.push_back(V);
    while (!Aux.empty()) {
      unsigned BestIdx = 0;
      long long BestScore = -1;
      for (unsigned I = 0; I != Aux.size(); ++I) {
        long long Pos = 0, Neg = 0;
        for (const PolyConstraint &C : Lifted.constraints()) {
          if (C.Coeffs[Aux[I]] > 0)
            ++Pos;
          else if (C.Coeffs[Aux[I]] < 0)
            ++Neg;
        }
        long long Score = Pos * Neg - (Pos + Neg);
        if (BestScore < 0 || Score < BestScore) {
          BestScore = Score;
          BestIdx = I;
        }
      }
      Lifted = Lifted.eliminate(Aux[BestIdx]);
      Aux.erase(Aux.begin() + BestIdx);
      Lifted = compress(std::move(Lifted), 48);
    }
  }

  // Restrict to the x coordinates.
  Polyhedron Hull(N);
  for (const PolyConstraint &C : Lifted.constraints()) {
    bool OnlyX = true;
    for (unsigned V = N; V != Total; ++V)
      if (C.Coeffs[V] != 0) {
        OnlyX = false;
        break;
      }
    if (!OnlyX)
      continue;
    std::vector<std::int64_t> E(C.Coeffs.begin(), C.Coeffs.begin() + N);
    Hull.addInequality(std::move(E), C.Const);
  }
  return Hull.removeRedundant();
}

} // namespace

Polyhedron poly::rangeHull(const std::vector<Polyhedron> &Ps,
                           const std::vector<unsigned> &BoxDims) {
  assert(!Ps.empty() && "range hull of an empty union");
  // Per dimension: project every member onto (that dimension + parameters),
  // hull the resulting 1-D-per-member ranges (a union of intervals hulls to
  // one interval), then intersect across dimensions. This is the bounding
  // box of the union — the paper's memory-range analysis.
  Polyhedron Box(Ps.front().getNumVars());
  for (unsigned D : BoxDims) {
    std::vector<unsigned> Others;
    for (unsigned O : BoxDims)
      if (O != D)
        Others.push_back(O);
    std::vector<Polyhedron> Ranges;
    for (const Polyhedron &P : Ps) {
      if (P.isEmpty())
        continue;
      Ranges.push_back(P.eliminateAll(Others));
    }
    Polyhedron DimHull = convexHullOfUnion(Ranges);
    for (const PolyConstraint &C : DimHull.constraints())
      Box.addInequality(C.Coeffs, C.Const);
  }
  Box.simplify();
  return Box.removeRedundant();
}
