//===- poly/Ehrhart.h - Ehrhart polynomials by interpolation ----*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parametric lattice-point counts, standing in for the Ehrhart machinery
/// the paper cites (Clauss; section 5.1.2). We fit the counting polynomial
/// of a one-parameter polytope family by exact rational interpolation on
/// sampled parameter values and cross-validate on held-out samples. For the
/// integral, unit-stride polytopes produced by loop bounds, the count is an
/// honest polynomial in the parameter and interpolation recovers it exactly;
/// a quasi-polynomial family fails cross-validation and is reported as such.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_POLY_EHRHART_H
#define DAECC_POLY_EHRHART_H

#include "poly/Polyhedron.h"
#include "support/Rational.h"

#include <optional>
#include <string>
#include <vector>

namespace dae {
namespace poly {

/// A univariate polynomial with exact rational coefficients,
/// c0 + c1*p + c2*p^2 + ...
class EhrhartPolynomial {
public:
  explicit EhrhartPolynomial(std::vector<Rational> Coeffs)
      : Coeffs(std::move(Coeffs)) {}

  const std::vector<Rational> &coefficients() const { return Coeffs; }
  unsigned degree() const {
    return Coeffs.empty() ? 0 : static_cast<unsigned>(Coeffs.size()) - 1;
  }

  Rational evaluate(std::int64_t P) const;

  /// e.g. "p^2 + 3/2*p + 1".
  std::string str() const;

private:
  std::vector<Rational> Coeffs;
};

/// Fits the lattice-point count of \p P as a polynomial in variable
/// \p ParamVar of degree at most \p MaxDegree, sampling parameter values
/// PStart, PStart+1, ... Counts each sample exactly. Returns nullopt when
/// any sample is unbounded/oversized or when two held-out samples disagree
/// with the fit (quasi-polynomial family).
std::optional<EhrhartPolynomial>
fitEhrhart(const Polyhedron &P, unsigned ParamVar, std::int64_t PStart,
           unsigned MaxDegree);

} // namespace poly
} // namespace dae

#endif // DAECC_POLY_EHRHART_H
