//===- ir/Type.h - Task IR types --------------------------------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Task IR is deliberately small: 64-bit integers, 64-bit floats,
/// pointers into the simulated address space, and void (for stores, branches,
/// and tasks). This is all the paper's transformation needs: address
/// arithmetic is integer, payload computation is float or integer, and
/// prefetches take a pointer.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_TYPE_H
#define DAECC_IR_TYPE_H

namespace dae {
namespace ir {

/// Scalar type of an IR value.
enum class Type {
  Void,
  Int64,
  Float64,
  Ptr,
};

/// Single-character mnemonic used by the textual printer.
inline const char *typeName(Type Ty) {
  switch (Ty) {
  case Type::Void:
    return "void";
  case Type::Int64:
    return "i64";
  case Type::Float64:
    return "f64";
  case Type::Ptr:
    return "ptr";
  }
  return "?";
}

} // namespace ir
} // namespace dae

#endif // DAECC_IR_TYPE_H
