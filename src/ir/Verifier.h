//===- ir/Verifier.h - Structural IR checks ---------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks run after every transformation in the
/// test suite: terminators present, phi incoming lists match predecessors,
/// operand types check out, no cross-function operands, and every use is
/// defined in the same function.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_VERIFIER_H
#define DAECC_IR_VERIFIER_H

#include <string>
#include <vector>

namespace dae {
namespace ir {

class Function;
class Module;

/// Returns the list of problems found in \p F (empty means well-formed).
std::vector<std::string> verifyFunction(const Function &F);

/// Verifies every function; returns all problems.
std::vector<std::string> verifyModule(const Module &M);

} // namespace ir
} // namespace dae

#endif // DAECC_IR_VERIFIER_H
