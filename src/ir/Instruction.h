//===- ir/Instruction.h - Task IR instructions ------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Task IR instruction set. It mirrors the subset of LLVM IR the paper's
/// transformation manipulates: integer/float arithmetic, comparisons,
/// selects, casts, loads/stores, the x86 builtin prefetch (section 3.1), a
/// multi-dimensional GEP that keeps array shape visible to the polyhedral
/// stage, phis, branches, returns, and direct calls (which must be inlined
/// before an access phase may be generated — section 5.2.2 step 1).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_INSTRUCTION_H
#define DAECC_IR_INSTRUCTION_H

#include "ir/Value.h"
#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace dae {
namespace ir {

class BasicBlock;
class Function;

/// Base class of all Task IR instructions. Owns nothing; operand use lists
/// are maintained through setOperand/appendOperand/dropAllOperands.
class Instruction : public Value {
public:
  ~Instruction() override;

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// Function containing this instruction, or null if detached.
  Function *getFunction() const;

  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V);
  const std::vector<Value *> &operands() const { return Operands; }

  /// Releases every operand use; required before deleting the instruction.
  void dropAllOperands();

  /// True for br/ret.
  bool isTerminator() const {
    return getKind() == ValueKind::InstBr || getKind() == ValueKind::InstRet;
  }

  /// True if removing this instruction (given it has no users) changes
  /// program behaviour: stores, prefetches, calls, and terminators.
  bool hasSideEffects() const;

  static bool classof(const Value *V) {
    return V->getKind() >= ValueKind::InstBinary &&
           V->getKind() <= ValueKind::InstCall;
  }

protected:
  Instruction(ValueKind K, Type T) : Value(K, T) {}

  void appendOperand(Value *V);

private:
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
};

/// Two-operand arithmetic/logic.
enum class BinOp {
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  FAdd,
  FSub,
  FMul,
  FDiv,
};

/// True for the floating-point opcodes.
bool isFloatBinOp(BinOp Op);
/// Printable opcode mnemonic.
const char *binOpName(BinOp Op);

class BinaryInst : public Instruction {
public:
  BinaryInst(BinOp Op, Value *L, Value *R)
      : Instruction(ValueKind::InstBinary,
                    isFloatBinOp(Op) ? Type::Float64 : Type::Int64),
        Op(Op) {
    appendOperand(L);
    appendOperand(R);
  }

  BinOp getOpcode() const { return Op; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstBinary;
  }

private:
  BinOp Op;
};

/// Comparison predicates; integer predicates are signed.
enum class CmpPred { EQ, NE, SLT, SLE, SGT, SGE, FLT, FLE, FGT, FGE, FEQ, FNE };

const char *cmpPredName(CmpPred P);

/// Produces 0/1 in an i64.
class CmpInst : public Instruction {
public:
  CmpInst(CmpPred P, Value *L, Value *R)
      : Instruction(ValueKind::InstCmp, Type::Int64), Pred(P) {
    appendOperand(L);
    appendOperand(R);
  }

  CmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstCmp;
  }

private:
  CmpPred Pred;
};

/// select(cond != 0 ? tval : fval).
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TVal, Value *FVal)
      : Instruction(ValueKind::InstSelect, TVal->getType()) {
    appendOperand(Cond);
    appendOperand(TVal);
    appendOperand(FVal);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstSelect;
  }
};

/// Conversions between the scalar types.
enum class CastOp { SIToFP, FPToSI, PtrToInt, IntToPtr };

const char *castOpName(CastOp Op);

class CastInst : public Instruction {
public:
  CastInst(CastOp Op, Value *V)
      : Instruction(ValueKind::InstCast, resultType(Op)), Op(Op) {
    appendOperand(V);
  }

  CastOp getOpcode() const { return Op; }
  Value *getSource() const { return getOperand(0); }

  static Type resultType(CastOp Op) {
    switch (Op) {
    case CastOp::SIToFP:
      return Type::Float64;
    case CastOp::FPToSI:
      return Type::Int64;
    case CastOp::PtrToInt:
      return Type::Int64;
    case CastOp::IntToPtr:
      return Type::Ptr;
    }
    return Type::Void;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstCast;
  }

private:
  CastOp Op;
};

/// Reads ValueTy from the address operand.
class LoadInst : public Instruction {
public:
  LoadInst(Type ValueTy, Value *Ptr)
      : Instruction(ValueKind::InstLoad, ValueTy) {
    assert(Ptr->getType() == Type::Ptr && "load from non-pointer");
    appendOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstLoad;
  }
};

/// Writes the value operand to the address operand.
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr)
      : Instruction(ValueKind::InstStore, Type::Void) {
    assert(Ptr->getType() == Type::Ptr && "store to non-pointer");
    appendOperand(Val);
    appendOperand(Ptr);
  }

  Value *getValue() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstStore;
  }
};

/// Non-binding software prefetch of the address operand; never faults, never
/// stalls retirement (section 3.1 of the paper).
class PrefetchInst : public Instruction {
public:
  explicit PrefetchInst(Value *Ptr)
      : Instruction(ValueKind::InstPrefetch, Type::Void) {
    assert(Ptr->getType() == Type::Ptr && "prefetch of non-pointer");
    appendOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstPrefetch;
  }
};

/// Multi-dimensional address computation:
///   addr = base + ElemSize * (((i0 * Dim1 + i1) * Dim2 + i2) ... )
/// Dim sizes are static so the polyhedral stage can reason about array shape,
/// playing the role of LLVM's delinearized SCEV in the paper.
class GepInst : public Instruction {
public:
  GepInst(Value *Base, std::vector<Value *> Indices,
          std::vector<std::int64_t> DimSizes, std::int64_t ElemSize)
      : Instruction(ValueKind::InstGep, Type::Ptr),
        DimSizes(std::move(DimSizes)), ElemSize(ElemSize) {
    assert(Base->getType() == Type::Ptr && "GEP base must be a pointer");
    assert(Indices.size() == this->DimSizes.size() &&
           "one dim size per index (outermost may be 0)");
    assert(ElemSize > 0 && "element size must be positive");
    appendOperand(Base);
    for (Value *I : Indices)
      appendOperand(I);
  }

  Value *getBase() const { return getOperand(0); }
  unsigned getNumIndices() const { return getNumOperands() - 1; }
  Value *getIndex(unsigned I) const { return getOperand(I + 1); }
  const std::vector<std::int64_t> &getDimSizes() const { return DimSizes; }
  std::int64_t getElemSize() const { return ElemSize; }

  /// Byte stride of index \p I: ElemSize * product of the inner dim sizes.
  std::int64_t getIndexStride(unsigned I) const {
    std::int64_t Stride = ElemSize;
    for (unsigned J = I + 1; J < DimSizes.size(); ++J)
      Stride *= DimSizes[J];
    return Stride;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstGep;
  }

private:
  std::vector<std::int64_t> DimSizes;
  std::int64_t ElemSize;
};

/// SSA phi. Incoming blocks are parallel to operands.
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type T) : Instruction(ValueKind::InstPhi, T) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    appendOperand(V);
    Incoming.push_back(BB);
  }

  unsigned getNumIncoming() const {
    return static_cast<unsigned>(Incoming.size());
  }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  BasicBlock *getIncomingBlock(unsigned I) const { return Incoming[I]; }
  void setIncomingBlock(unsigned I, BasicBlock *BB) { Incoming[I] = BB; }

  /// Value flowing in from \p BB; asserts that BB is an incoming block.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const;
  /// Index of \p BB among the incoming blocks, or -1.
  int getBlockIndex(const BasicBlock *BB) const;
  /// Removes the incoming pair at index \p I.
  void removeIncoming(unsigned I);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstPhi;
  }

private:
  friend class Instruction;
  std::vector<BasicBlock *> Incoming;
};

/// Conditional or unconditional branch.
class BrInst : public Instruction {
public:
  /// Unconditional.
  explicit BrInst(BasicBlock *Dest)
      : Instruction(ValueKind::InstBr, Type::Void), TrueDest(Dest),
        FalseDest(nullptr) {}

  /// Conditional on Cond != 0.
  BrInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB)
      : Instruction(ValueKind::InstBr, Type::Void), TrueDest(TrueBB),
        FalseDest(FalseBB) {
    appendOperand(Cond);
  }

  bool isConditional() const { return getNumOperands() == 1; }
  Value *getCondition() const {
    assert(isConditional() && "unconditional branch has no condition");
    return getOperand(0);
  }
  BasicBlock *getTrueDest() const { return TrueDest; }
  BasicBlock *getFalseDest() const { return FalseDest; }
  void setTrueDest(BasicBlock *BB) { TrueDest = BB; }
  void setFalseDest(BasicBlock *BB) { FalseDest = BB; }

  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned I) const {
    assert(I < getNumSuccessors() && "successor index out of range");
    return I == 0 ? TrueDest : FalseDest;
  }

  /// Turns a conditional branch into an unconditional one to \p Dest.
  void makeUnconditional(BasicBlock *Dest);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstBr;
  }

private:
  BasicBlock *TrueDest;
  BasicBlock *FalseDest;
};

/// Function return, with an optional value.
class RetInst : public Instruction {
public:
  RetInst() : Instruction(ValueKind::InstRet, Type::Void) {}
  explicit RetInst(Value *V) : Instruction(ValueKind::InstRet, Type::Void) {
    if (V)
      appendOperand(V);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "void return has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstRet;
  }
};

/// Direct call. The paper requires all calls inside a task to be inlinable;
/// the inliner (passes/Inliner) eliminates these before access generation.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, std::vector<Value *> Args, Type RetTy);

  Function *getCallee() const { return Callee; }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::InstCall;
  }

private:
  Function *Callee;
};

} // namespace ir
} // namespace dae

#endif // DAECC_IR_INSTRUCTION_H
