//===- ir/Cloner.h - Function deep copy -------------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copies a function, producing a private clone whose locals are fully
/// privatized — step 2 of the paper's skeleton algorithm (section 5.2.2) and
/// the substrate for the inliner.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_CLONER_H
#define DAECC_IR_CLONER_H

#include <map>
#include <memory>
#include <string>

namespace dae {
namespace ir {

class Function;
class Value;

/// Mapping from original values to their clones (arguments, instructions).
using ValueMap = std::map<const Value *, Value *>;

/// Returns a deep copy of \p F named \p NewName. If \p MapOut is non-null it
/// receives the original-to-clone value mapping. Constants and globals are
/// shared, everything else is copied. The clone is not yet registered in a
/// module.
std::unique_ptr<Function> cloneFunction(const Function &F,
                                        std::string NewName,
                                        ValueMap *MapOut = nullptr);

/// Clones one instruction with operands remapped through \p VM (values absent
/// from the map are shared, which is correct for constants/globals/args).
/// Phi incoming *blocks* are remapped through \p BlockMap.
class BasicBlock;
std::unique_ptr<class Instruction>
cloneInstruction(const Instruction &I, const ValueMap &VM,
                 const std::map<const BasicBlock *, BasicBlock *> &BlockMap);

class Module;

/// Deep-copies \p F into \p Dst as \p NewName and registers it there.
/// Unlike cloneFunction, nothing is shared with the source module: integer
/// and float constants are re-uniqued through \p Dst's pools and globals are
/// resolved by name (created with the same size when absent), so the copy
/// stays valid after the source module is destroyed. \p F must be call-free
/// (generated access phases are, post-inlining).
Function *transplantFunction(const Function &F, Module &Dst,
                             std::string NewName);

} // namespace ir
} // namespace dae

#endif // DAECC_IR_CLONER_H
