//===- ir/Module.h - Task IR module -----------------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns functions, globals, and the uniqued constant pool. One
/// module holds one workload: its task functions, any helper functions they
/// call, and the arrays they touch.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_MODULE_H
#define DAECC_IR_MODULE_H

#include "ir/Function.h"
#include "ir/Value.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dae {
namespace ir {

/// Top-level IR container.
class Module {
public:
  Module() = default;
  explicit Module(std::string Name) : Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &getName() const { return Name; }

  /// Uniqued integer constant.
  ConstantInt *getInt(std::int64_t V);
  /// Uniqued float constant.
  ConstantFloat *getFloat(double V);

  /// Creates a named global array of \p SizeBytes bytes.
  GlobalVariable *createGlobal(std::string GlobalName,
                               std::uint64_t SizeBytes);
  GlobalVariable *getGlobal(const std::string &GlobalName) const;
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Creates an empty function and registers it.
  Function *createFunction(std::string FuncName, Type RetTy,
                           std::vector<Type> ParamTys);
  /// Registers an externally built function (taking ownership).
  Function *addFunction(std::unique_ptr<Function> F);
  Function *getFunction(const std::string &FuncName) const;
  /// Unlinks and destroys \p F. No remaining call sites may reference it.
  void eraseFunction(Function *F);

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  /// All functions marked as tasks, in creation order.
  std::vector<Function *> tasks() const;

private:
  std::string Name;
  std::map<std::int64_t, std::unique_ptr<ConstantInt>> IntPool;
  std::map<std::uint64_t, std::unique_ptr<ConstantFloat>> FloatPool;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::vector<std::unique_ptr<Function>> Funcs;
};

} // namespace ir
} // namespace dae

#endif // DAECC_IR_MODULE_H
