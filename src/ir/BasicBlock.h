//===- ir/BasicBlock.h - Task IR basic block --------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block owns its instructions. Successors come from the terminator;
/// predecessors are recomputed on demand (blocks are few, tasks are small).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_BASICBLOCK_H
#define DAECC_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace dae {
namespace ir {

class Function;

/// A straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;
  ~BasicBlock();

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  /// Appends \p I (taking ownership) and returns it.
  Instruction *append(std::unique_ptr<Instruction> I);
  /// Inserts \p I (taking ownership) before position \p Pos.
  Instruction *insertBefore(std::unique_ptr<Instruction> I, Instruction *Pos);
  /// Unlinks and destroys \p I. The instruction must have no users.
  void erase(Instruction *I);
  /// Unlinks \p I and transfers ownership to the caller.
  std::unique_ptr<Instruction> detach(Instruction *I);

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// Terminator, or null for an unfinished block.
  Instruction *getTerminator() const;

  /// Successor blocks, from the terminator.
  std::vector<BasicBlock *> successors() const;
  /// Predecessor blocks, recomputed by scanning the parent function.
  std::vector<BasicBlock *> predecessors() const;

  /// Phi nodes at the head of the block.
  std::vector<PhiInst *> phis() const;

  // Iteration over owned instructions.
  using iterator = std::vector<std::unique_ptr<Instruction>>::const_iterator;
  iterator begin() const { return Insts.begin(); }
  iterator end() const { return Insts.end(); }

private:
  std::string Name;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

} // namespace ir
} // namespace dae

#endif // DAECC_IR_BASICBLOCK_H
