//===- ir/IRBuilder.h - Convenience instruction factory ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cursor-style builder in the LLVM mold. Workload builders and the access
/// phase generators use it to emit code; it performs no folding (the constant
/// folder is a pass) so tests can see exactly what was asked for.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_IRBUILDER_H
#define DAECC_IR_IRBUILDER_H

#include "ir/Module.h"

#include <functional>
#include <memory>
#include <string>

namespace dae {
namespace ir {

/// Appends instructions at the end of the current insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}
  IRBuilder(Module &M, BasicBlock *BB) : M(M), Block(BB) {}

  Module &getModule() const { return M; }
  BasicBlock *getInsertBlock() const { return Block; }
  void setInsertBlock(BasicBlock *BB) { Block = BB; }

  ConstantInt *getInt(std::int64_t V) { return M.getInt(V); }
  ConstantFloat *getFloat(double V) { return M.getFloat(V); }

  Value *createBinOp(BinOp Op, Value *L, Value *R);
  Value *createAdd(Value *L, Value *R) { return createBinOp(BinOp::Add, L, R); }
  Value *createSub(Value *L, Value *R) { return createBinOp(BinOp::Sub, L, R); }
  Value *createMul(Value *L, Value *R) { return createBinOp(BinOp::Mul, L, R); }
  Value *createSDiv(Value *L, Value *R) {
    return createBinOp(BinOp::SDiv, L, R);
  }
  Value *createSRem(Value *L, Value *R) {
    return createBinOp(BinOp::SRem, L, R);
  }
  Value *createAnd(Value *L, Value *R) { return createBinOp(BinOp::And, L, R); }
  Value *createOr(Value *L, Value *R) { return createBinOp(BinOp::Or, L, R); }
  Value *createXor(Value *L, Value *R) { return createBinOp(BinOp::Xor, L, R); }
  Value *createShl(Value *L, Value *R) { return createBinOp(BinOp::Shl, L, R); }
  Value *createAShr(Value *L, Value *R) {
    return createBinOp(BinOp::AShr, L, R);
  }
  Value *createFAdd(Value *L, Value *R) {
    return createBinOp(BinOp::FAdd, L, R);
  }
  Value *createFSub(Value *L, Value *R) {
    return createBinOp(BinOp::FSub, L, R);
  }
  Value *createFMul(Value *L, Value *R) {
    return createBinOp(BinOp::FMul, L, R);
  }
  Value *createFDiv(Value *L, Value *R) {
    return createBinOp(BinOp::FDiv, L, R);
  }

  Value *createCmp(CmpPred P, Value *L, Value *R);
  Value *createSelect(Value *Cond, Value *TVal, Value *FVal);
  Value *createCast(CastOp Op, Value *V);

  LoadInst *createLoad(Type Ty, Value *Ptr);
  StoreInst *createStore(Value *Val, Value *Ptr);
  PrefetchInst *createPrefetch(Value *Ptr);

  /// One-dimensional GEP: Base + Idx * ElemSize.
  GepInst *createGep1D(Value *Base, Value *Idx, std::int64_t ElemSize);
  /// Two-dimensional GEP over a row-major [*, Cols] array.
  GepInst *createGep2D(Value *Base, Value *Row, Value *Col, std::int64_t Cols,
                       std::int64_t ElemSize);
  GepInst *createGep(Value *Base, std::vector<Value *> Indices,
                     std::vector<std::int64_t> DimSizes, std::int64_t ElemSize);

  PhiInst *createPhi(Type Ty);
  BrInst *createBr(BasicBlock *Dest);
  BrInst *createCondBr(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB);
  RetInst *createRet();
  RetInst *createRet(Value *V);
  CallInst *createCall(Function *Callee, std::vector<Value *> Args);

private:
  Instruction *insert(std::unique_ptr<Instruction> I);

  Module &M;
  BasicBlock *Block = nullptr;
};

/// Emits a canonical counted loop:
///   for (iv = Begin; iv < End; iv += Step) Body(iv)
/// Creates header/body/latch/exit blocks, leaves the builder positioned in
/// the exit block, and returns the induction phi. \p BodyFn is invoked with
/// the builder positioned inside the body block.
PhiInst *emitCountedLoop(IRBuilder &B, Value *Begin, Value *End, Value *Step,
                         const std::string &NamePrefix,
                         const std::function<void(IRBuilder &, Value *)> &BodyFn);

} // namespace ir
} // namespace dae

#endif // DAECC_IR_IRBUILDER_H
