//===- ir/IRBuilder.cpp - Convenience instruction factory -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace dae;
using namespace dae::ir;

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> I) {
  assert(Block && "builder has no insertion block");
  return Block->append(std::move(I));
}

Value *IRBuilder::createBinOp(BinOp Op, Value *L, Value *R) {
  return insert(std::make_unique<BinaryInst>(Op, L, R));
}

Value *IRBuilder::createCmp(CmpPred P, Value *L, Value *R) {
  return insert(std::make_unique<CmpInst>(P, L, R));
}

Value *IRBuilder::createSelect(Value *Cond, Value *TVal, Value *FVal) {
  return insert(std::make_unique<SelectInst>(Cond, TVal, FVal));
}

Value *IRBuilder::createCast(CastOp Op, Value *V) {
  return insert(std::make_unique<CastInst>(Op, V));
}

LoadInst *IRBuilder::createLoad(Type Ty, Value *Ptr) {
  return static_cast<LoadInst *>(insert(std::make_unique<LoadInst>(Ty, Ptr)));
}

StoreInst *IRBuilder::createStore(Value *Val, Value *Ptr) {
  return static_cast<StoreInst *>(
      insert(std::make_unique<StoreInst>(Val, Ptr)));
}

PrefetchInst *IRBuilder::createPrefetch(Value *Ptr) {
  return static_cast<PrefetchInst *>(
      insert(std::make_unique<PrefetchInst>(Ptr)));
}

GepInst *IRBuilder::createGep1D(Value *Base, Value *Idx,
                                std::int64_t ElemSize) {
  return createGep(Base, {Idx}, {0}, ElemSize);
}

GepInst *IRBuilder::createGep2D(Value *Base, Value *Row, Value *Col,
                                std::int64_t Cols, std::int64_t ElemSize) {
  return createGep(Base, {Row, Col}, {0, Cols}, ElemSize);
}

GepInst *IRBuilder::createGep(Value *Base, std::vector<Value *> Indices,
                              std::vector<std::int64_t> DimSizes,
                              std::int64_t ElemSize) {
  return static_cast<GepInst *>(insert(std::make_unique<GepInst>(
      Base, std::move(Indices), std::move(DimSizes), ElemSize)));
}

PhiInst *IRBuilder::createPhi(Type Ty) {
  assert(Block && "builder has no insertion block");
  // Phis must sit at the head of the block, before any non-phi.
  auto Phi = std::make_unique<PhiInst>(Ty);
  auto *Raw = Phi.get();
  for (const auto &I : *Block) {
    if (!isa<PhiInst>(I.get())) {
      Block->insertBefore(std::move(Phi), I.get());
      return Raw;
    }
  }
  Block->append(std::move(Phi));
  return Raw;
}

BrInst *IRBuilder::createBr(BasicBlock *Dest) {
  return static_cast<BrInst *>(insert(std::make_unique<BrInst>(Dest)));
}

BrInst *IRBuilder::createCondBr(Value *Cond, BasicBlock *TrueBB,
                                BasicBlock *FalseBB) {
  return static_cast<BrInst *>(
      insert(std::make_unique<BrInst>(Cond, TrueBB, FalseBB)));
}

RetInst *IRBuilder::createRet() {
  return static_cast<RetInst *>(insert(std::make_unique<RetInst>()));
}

RetInst *IRBuilder::createRet(Value *V) {
  return static_cast<RetInst *>(insert(std::make_unique<RetInst>(V)));
}

CallInst *IRBuilder::createCall(Function *Callee, std::vector<Value *> Args) {
  return static_cast<CallInst *>(insert(std::make_unique<CallInst>(
      Callee, std::move(Args), Callee->getReturnType())));
}

PhiInst *ir::emitCountedLoop(
    IRBuilder &B, Value *Begin, Value *End, Value *Step,
    const std::string &NamePrefix,
    const std::function<void(IRBuilder &, Value *)> &BodyFn) {
  Function *F = B.getInsertBlock()->getParent();
  BasicBlock *Preheader = B.getInsertBlock();
  BasicBlock *Header = F->createBlock(NamePrefix + ".header");
  BasicBlock *Body = F->createBlock(NamePrefix + ".body");
  BasicBlock *Latch = F->createBlock(NamePrefix + ".latch");
  BasicBlock *Exit = F->createBlock(NamePrefix + ".exit");

  B.createBr(Header);

  B.setInsertBlock(Header);
  PhiInst *IV = B.createPhi(Type::Int64);
  IV->setName(NamePrefix + ".iv");
  IV->addIncoming(Begin, Preheader);
  Value *Cond = B.createCmp(CmpPred::SLT, IV, End);
  B.createCondBr(Cond, Body, Exit);

  B.setInsertBlock(Body);
  BodyFn(B, IV);
  // The body callback may have moved the insertion point (nested loops);
  // branch from wherever it ended up.
  B.createBr(Latch);

  B.setInsertBlock(Latch);
  Value *Next = B.createAdd(IV, Step);
  IV->addIncoming(Next, Latch);
  B.createBr(Header);

  B.setInsertBlock(Exit);
  return IV;
}
