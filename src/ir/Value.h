//===- ir/Value.h - Task IR value hierarchy ---------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base of the Task IR value hierarchy: constants, arguments, globals, and
/// instructions (declared in Instruction.h). Uses the LLVM-style opt-in RTTI
/// from support/Casting.h and maintains use lists so transformations can walk
/// use-def chains, which is the backbone of the paper's skeleton-marking
/// algorithm (step 5 of section 5.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_VALUE_H
#define DAECC_IR_VALUE_H

#include "ir/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dae {
namespace ir {

class Instruction;
class Function;

/// Discriminator for the value hierarchy. Instruction kinds are contiguous so
/// Instruction::classof is a range check.
enum class ValueKind {
  ConstantInt,
  ConstantFloat,
  Argument,
  Global,
  // Instructions.
  InstBinary,
  InstCmp,
  InstSelect,
  InstCast,
  InstLoad,
  InstStore,
  InstPrefetch,
  InstGep,
  InstPhi,
  InstBr,
  InstRet,
  InstCall,
};

/// Base class of everything an instruction can reference.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getKind() const { return Kind; }
  Type getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Instructions currently using this value as an operand. May contain an
  /// instruction several times if it uses the value in several operand slots.
  const std::vector<Instruction *> &users() const { return Users; }
  bool hasUsers() const { return !Users.empty(); }

  /// Replaces every use of this value with \p New, fixing use lists.
  void replaceAllUsesWith(Value *New);

protected:
  Value(ValueKind K, Type T) : Kind(K), Ty(T) {}

private:
  friend class Instruction;
  void addUser(Instruction *I) { Users.push_back(I); }
  void removeUser(Instruction *I);

  ValueKind Kind;
  Type Ty;
  std::string Name;
  std::vector<Instruction *> Users;
};

/// A uniqued 64-bit integer constant (owned by the Module).
class ConstantInt : public Value {
public:
  explicit ConstantInt(std::int64_t V)
      : Value(ValueKind::ConstantInt, Type::Int64), Val(V) {}

  std::int64_t getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt;
  }

private:
  std::int64_t Val;
};

/// A uniqued 64-bit float constant (owned by the Module).
class ConstantFloat : public Value {
public:
  explicit ConstantFloat(double V)
      : Value(ValueKind::ConstantFloat, Type::Float64), Val(V) {}

  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantFloat;
  }

private:
  double Val;
};

/// A formal parameter of a Function. Task arguments are the values "visible
/// outside of the task scope" in the sense of section 3.1 of the paper.
class Argument : public Value {
public:
  Argument(Type T, unsigned Idx, Function *Parent)
      : Value(ValueKind::Argument, T), Index(Idx), Parent(Parent) {}

  unsigned getIndex() const { return Index; }
  Function *getParent() const { return Parent; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  unsigned Index;
  Function *Parent;
};

/// A named chunk of simulated memory (an array). The simulator assigns the
/// base address at load time; the compiler only sees the symbol, its element
/// size, and its extent.
class GlobalVariable : public Value {
public:
  GlobalVariable(std::string Name, std::uint64_t SizeBytes)
      : Value(ValueKind::Global, Type::Ptr), SizeBytes(SizeBytes) {
    setName(std::move(Name));
  }

  std::uint64_t getSizeInBytes() const { return SizeBytes; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Global;
  }

private:
  std::uint64_t SizeBytes;
};

} // namespace ir
} // namespace dae

#endif // DAECC_IR_VALUE_H
