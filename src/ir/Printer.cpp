//===- ir/Printer.cpp - Textual IR printer --------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"
#include "support/Casting.h"
#include "support/Format.h"

using namespace dae;
using namespace dae::ir;

std::string ir::printOperand(const Value &V) {
  if (const auto *CI = dyn_cast<ConstantInt>(&V))
    return std::to_string(CI->getValue());
  if (const auto *CF = dyn_cast<ConstantFloat>(&V))
    return strfmt("%g", CF->getValue());
  if (isa<GlobalVariable>(&V))
    return "@" + V.getName();
  if (const auto *A = dyn_cast<Argument>(&V))
    return V.getName().empty() ? strfmt("arg%u", A->getIndex()) : V.getName();
  return V.getName().empty() ? "%?" : V.getName();
}

std::string ir::printInstruction(const Instruction &I) {
  std::string Res;
  if (I.getType() != Type::Void)
    Res += printOperand(I) + " = ";

  switch (I.getKind()) {
  case ValueKind::InstBinary: {
    const auto &B = *cast<BinaryInst>(&I);
    Res += strfmt("%s %s, %s", binOpName(B.getOpcode()),
                  printOperand(*B.getLHS()).c_str(),
                  printOperand(*B.getRHS()).c_str());
    break;
  }
  case ValueKind::InstCmp: {
    const auto &C = *cast<CmpInst>(&I);
    Res += strfmt("cmp %s %s, %s", cmpPredName(C.getPredicate()),
                  printOperand(*C.getLHS()).c_str(),
                  printOperand(*C.getRHS()).c_str());
    break;
  }
  case ValueKind::InstSelect: {
    const auto &S = *cast<SelectInst>(&I);
    Res += strfmt("select %s, %s, %s",
                  printOperand(*S.getCondition()).c_str(),
                  printOperand(*S.getTrueValue()).c_str(),
                  printOperand(*S.getFalseValue()).c_str());
    break;
  }
  case ValueKind::InstCast: {
    const auto &C = *cast<CastInst>(&I);
    Res += strfmt("%s %s", castOpName(C.getOpcode()),
                  printOperand(*C.getSource()).c_str());
    break;
  }
  case ValueKind::InstLoad: {
    const auto &L = *cast<LoadInst>(&I);
    Res += strfmt("load %s, %s", typeName(L.getType()),
                  printOperand(*L.getPointer()).c_str());
    break;
  }
  case ValueKind::InstStore: {
    const auto &S = *cast<StoreInst>(&I);
    Res += strfmt("store %s, %s", printOperand(*S.getValue()).c_str(),
                  printOperand(*S.getPointer()).c_str());
    break;
  }
  case ValueKind::InstPrefetch: {
    const auto &P = *cast<PrefetchInst>(&I);
    Res += strfmt("prefetch %s", printOperand(*P.getPointer()).c_str());
    break;
  }
  case ValueKind::InstGep: {
    const auto &G = *cast<GepInst>(&I);
    Res += strfmt("gep %s", printOperand(*G.getBase()).c_str());
    for (unsigned J = 0; J != G.getNumIndices(); ++J)
      Res += strfmt("[%s]", printOperand(*G.getIndex(J)).c_str());
    Res += strfmt(" elem=%lld", static_cast<long long>(G.getElemSize()));
    if (G.getNumIndices() > 1) {
      Res += " dims=[";
      const auto &Dims = G.getDimSizes();
      for (unsigned J = 0; J != Dims.size(); ++J)
        Res += (J ? "," : "") + std::to_string(Dims[J]);
      Res += "]";
    }
    break;
  }
  case ValueKind::InstPhi: {
    const auto &P = *cast<PhiInst>(&I);
    Res += "phi ";
    for (unsigned J = 0; J != P.getNumIncoming(); ++J)
      Res += strfmt("%s[%s, %s]", J ? ", " : "",
                    printOperand(*P.getIncomingValue(J)).c_str(),
                    P.getIncomingBlock(J)->getName().c_str());
    break;
  }
  case ValueKind::InstBr: {
    const auto &B = *cast<BrInst>(&I);
    if (B.isConditional())
      Res += strfmt("br %s, %s, %s", printOperand(*B.getCondition()).c_str(),
                    B.getTrueDest()->getName().c_str(),
                    B.getFalseDest()->getName().c_str());
    else
      Res += strfmt("br %s", B.getTrueDest()->getName().c_str());
    break;
  }
  case ValueKind::InstRet: {
    const auto &R = *cast<RetInst>(&I);
    Res += R.hasReturnValue()
               ? "ret " + printOperand(*R.getReturnValue())
               : std::string("ret");
    break;
  }
  case ValueKind::InstCall: {
    const auto &C = *cast<CallInst>(&I);
    Res += "call @" + C.getCallee()->getName() + "(";
    for (unsigned J = 0; J != C.getNumArgs(); ++J)
      Res += (J ? ", " : "") + printOperand(*C.getArg(J));
    Res += ")";
    break;
  }
  default:
    Res += "<unknown>";
  }
  return Res;
}

std::string ir::printFunction(Function &F) {
  F.renumberValues();
  std::string Res =
      strfmt("%s @%s(", F.isTask() ? "task" : "func", F.getName().c_str());
  for (unsigned I = 0; I != F.getNumArgs(); ++I) {
    Argument *A = F.getArg(I);
    Res += strfmt("%s%s %s", I ? ", " : "", typeName(A->getType()),
                  printOperand(*A).c_str());
  }
  Res += ") {\n";
  for (const auto &BB : F) {
    Res += BB->getName() + ":\n";
    for (const auto &I : *BB)
      Res += "  " + printInstruction(*I) + "\n";
  }
  Res += "}\n";
  return Res;
}

std::string ir::printModule(Module &M) {
  std::string Res;
  for (const auto &G : M.globals())
    Res += strfmt("global @%s, %llu bytes\n", G->getName().c_str(),
                  static_cast<unsigned long long>(G->getSizeInBytes()));
  for (const auto &F : M.functions())
    Res += "\n" + printFunction(*F);
  return Res;
}
