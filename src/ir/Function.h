//===- ir/Function.h - Task IR function -------------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its blocks and arguments. Functions marked as tasks are
/// the unit of the paper's transformation: the DAE generator derives an
/// access-phase function from each task's (execute) body.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_FUNCTION_H
#define DAECC_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace dae {
namespace ir {

class Module;

/// A function: arguments, a list of basic blocks, and task metadata.
class Function {
public:
  Function(std::string Name, Type RetTy, std::vector<Type> ParamTys);
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;
  /// Drops all cross-block operand uses before the blocks are destroyed.
  ~Function();

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Module *getParent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  Type getReturnType() const { return RetTy; }

  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const { return Args[I].get(); }
  const std::vector<std::unique_ptr<Argument>> &args() const { return Args; }

  /// True if this function is a task body (the unit of DAE transformation).
  bool isTask() const { return Task; }
  void setTask(bool V) { Task = V; }

  /// Marks a function the inliner must not inline (used to model the paper's
  /// "task contains a function call which cannot be inlined" rejection path).
  bool isNoInline() const { return NoInline; }
  void setNoInline(bool V) { NoInline = V; }

  /// Creates, appends, and returns a new block.
  BasicBlock *createBlock(std::string BlockName);
  /// Appends an existing block (taking ownership).
  BasicBlock *appendBlock(std::unique_ptr<BasicBlock> BB);
  /// Unlinks and destroys \p BB; its instructions must be dead already.
  void eraseBlock(BasicBlock *BB);

  BasicBlock *getEntry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  size_t size() const { return Blocks.size(); }
  bool empty() const { return Blocks.empty(); }

  using iterator = std::vector<std::unique_ptr<BasicBlock>>::const_iterator;
  iterator begin() const { return Blocks.begin(); }
  iterator end() const { return Blocks.end(); }

  /// Total instruction count across all blocks.
  size_t instructionCount() const;

  /// Assigns printable names (%0, %1, ...) to unnamed values; used by the
  /// printer and helpful in test failure output.
  void renumberValues();

private:
  std::string Name;
  Module *Parent = nullptr;
  Type RetTy;
  bool Task = false;
  bool NoInline = false;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace ir
} // namespace dae

#endif // DAECC_IR_FUNCTION_H
