//===- ir/Cloner.cpp - Function deep copy ---------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Cloner.h"

#include "ir/Module.h"
#include "support/Casting.h"

using namespace dae;
using namespace dae::ir;

namespace {

Value *mapValue(const ValueMap &VM, Value *V) {
  auto It = VM.find(V);
  if (It != VM.end())
    return It->second;
  // Constants and globals are shared; instructions and arguments must have
  // been cloned already (blocks are visited in layout order, which for
  // builder-generated code is a def-before-use order modulo phis).
  assert((isa<ConstantInt, ConstantFloat, GlobalVariable>(V)) &&
         "operand not cloned before use; check block layout order");
  return V;
}

BasicBlock *mapBlock(const std::map<const BasicBlock *, BasicBlock *> &BM,
                     BasicBlock *BB) {
  auto It = BM.find(BB);
  assert(It != BM.end() && "branch target not cloned");
  return It->second;
}

} // namespace

std::unique_ptr<Instruction> ir::cloneInstruction(
    const Instruction &I, const ValueMap &VM,
    const std::map<const BasicBlock *, BasicBlock *> &BlockMap) {
  auto Op = [&](unsigned Idx) { return mapValue(VM, I.getOperand(Idx)); };

  switch (I.getKind()) {
  case ValueKind::InstBinary:
    return std::make_unique<BinaryInst>(cast<BinaryInst>(&I)->getOpcode(),
                                        Op(0), Op(1));
  case ValueKind::InstCmp:
    return std::make_unique<CmpInst>(cast<CmpInst>(&I)->getPredicate(), Op(0),
                                     Op(1));
  case ValueKind::InstSelect:
    return std::make_unique<SelectInst>(Op(0), Op(1), Op(2));
  case ValueKind::InstCast:
    return std::make_unique<CastInst>(cast<CastInst>(&I)->getOpcode(), Op(0));
  case ValueKind::InstLoad:
    return std::make_unique<LoadInst>(I.getType(), Op(0));
  case ValueKind::InstStore:
    return std::make_unique<StoreInst>(Op(0), Op(1));
  case ValueKind::InstPrefetch:
    return std::make_unique<PrefetchInst>(Op(0));
  case ValueKind::InstGep: {
    const auto &G = *cast<GepInst>(&I);
    std::vector<Value *> Indices;
    for (unsigned J = 0; J != G.getNumIndices(); ++J)
      Indices.push_back(mapValue(VM, G.getIndex(J)));
    return std::make_unique<GepInst>(Op(0), std::move(Indices),
                                     G.getDimSizes(), G.getElemSize());
  }
  case ValueKind::InstPhi: {
    const auto &P = *cast<PhiInst>(&I);
    auto NewPhi = std::make_unique<PhiInst>(P.getType());
    for (unsigned J = 0; J != P.getNumIncoming(); ++J)
      NewPhi->addIncoming(mapValue(VM, P.getIncomingValue(J)),
                          mapBlock(BlockMap, P.getIncomingBlock(J)));
    return NewPhi;
  }
  case ValueKind::InstBr: {
    const auto &B = *cast<BrInst>(&I);
    if (B.isConditional())
      return std::make_unique<BrInst>(Op(0),
                                      mapBlock(BlockMap, B.getTrueDest()),
                                      mapBlock(BlockMap, B.getFalseDest()));
    return std::make_unique<BrInst>(mapBlock(BlockMap, B.getTrueDest()));
  }
  case ValueKind::InstRet: {
    const auto &R = *cast<RetInst>(&I);
    if (R.hasReturnValue())
      return std::make_unique<RetInst>(Op(0));
    return std::make_unique<RetInst>();
  }
  case ValueKind::InstCall: {
    const auto &C = *cast<CallInst>(&I);
    std::vector<Value *> Args;
    for (unsigned J = 0; J != C.getNumArgs(); ++J)
      Args.push_back(mapValue(VM, C.getArg(J)));
    return std::make_unique<CallInst>(C.getCallee(), std::move(Args),
                                      C.getType());
  }
  default:
    assert(false && "unknown instruction kind in cloner");
    return nullptr;
  }
}

std::unique_ptr<Function> ir::cloneFunction(const Function &F,
                                            std::string NewName,
                                            ValueMap *MapOut) {
  std::vector<Type> ParamTys;
  for (const auto &A : F.args())
    ParamTys.push_back(A->getType());
  auto Clone = std::make_unique<Function>(std::move(NewName),
                                          F.getReturnType(), ParamTys);
  Clone->setTask(F.isTask());
  Clone->setNoInline(F.isNoInline());

  ValueMap VM;
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    VM[F.getArg(I)] = Clone->getArg(I);

  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &BB : F)
    BlockMap[BB.get()] = Clone->createBlock(BB->getName());

  // Pass 1: clone non-phi instructions; create empty placeholder phis so
  // forward references resolve.
  std::vector<std::pair<const PhiInst *, PhiInst *>> PendingPhis;
  for (const auto &BB : F) {
    BasicBlock *NewBB = BlockMap[BB.get()];
    for (const auto &I : *BB) {
      if (const auto *P = dyn_cast<PhiInst>(I.get())) {
        auto NewPhi = std::make_unique<PhiInst>(P->getType());
        PendingPhis.emplace_back(P, NewPhi.get());
        VM[P] = NewPhi.get();
        NewBB->append(std::move(NewPhi));
        continue;
      }
      // Non-phi operands always reference values that dominate them, but a
      // back-edge can still make an operand a not-yet-cloned phi; handle by
      // deferring operand remap of phis only (above). All other operands of a
      // well-formed function are cloned before their uses in RPO order;
      // source order suffices because blocks are in layout order and defs
      // precede uses within a block, while cross-block uses may only target
      // earlier blocks or phis.
      auto NewI = cloneInstruction(*I, VM, BlockMap);
      VM[I.get()] = NewI.get();
      NewBB->append(std::move(NewI));
    }
  }

  // Pass 2: fill in phi incoming lists.
  for (auto &[OldPhi, NewPhi] : PendingPhis)
    for (unsigned J = 0; J != OldPhi->getNumIncoming(); ++J)
      NewPhi->addIncoming(mapValue(VM, OldPhi->getIncomingValue(J)),
                          mapBlock(BlockMap, OldPhi->getIncomingBlock(J)));

  if (MapOut)
    *MapOut = std::move(VM);
  return Clone;
}

Function *ir::transplantFunction(const Function &F, Module &Dst,
                                 std::string NewName) {
  std::vector<Type> ParamTys;
  for (const auto &A : F.args())
    ParamTys.push_back(A->getType());
  auto Copy = std::make_unique<Function>(std::move(NewName),
                                         F.getReturnType(), ParamTys);
  Copy->setTask(F.isTask());
  Copy->setNoInline(F.isNoInline());

  ValueMap VM;
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    VM[F.getArg(I)] = Copy->getArg(I);

  // Pre-seed the map with destination-module equivalents of every constant
  // and global the source references, so cloneInstruction never shares a
  // value owned by the source module.
  for (const auto &BB : F)
    for (const auto &I : *BB) {
      assert(!isa<CallInst>(I.get()) &&
             "transplantFunction requires a call-free function");
      for (Value *Op : I->operands()) {
        if (VM.count(Op))
          continue;
        if (auto *CI = dyn_cast<ConstantInt>(Op)) {
          VM[Op] = Dst.getInt(CI->getValue());
        } else if (auto *CF = dyn_cast<ConstantFloat>(Op)) {
          VM[Op] = Dst.getFloat(CF->getValue());
        } else if (auto *G = dyn_cast<GlobalVariable>(Op)) {
          GlobalVariable *DG = Dst.getGlobal(G->getName());
          if (!DG)
            DG = Dst.createGlobal(G->getName(), G->getSizeInBytes());
          assert(DG->getSizeInBytes() == G->getSizeInBytes() &&
                 "global size mismatch between modules");
          VM[Op] = DG;
        }
      }
    }

  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &BB : F)
    BlockMap[BB.get()] = Copy->createBlock(BB->getName());

  std::vector<std::pair<const PhiInst *, PhiInst *>> PendingPhis;
  for (const auto &BB : F) {
    BasicBlock *NewBB = BlockMap[BB.get()];
    for (const auto &I : *BB) {
      if (const auto *P = dyn_cast<PhiInst>(I.get())) {
        auto NewPhi = std::make_unique<PhiInst>(P->getType());
        PendingPhis.emplace_back(P, NewPhi.get());
        VM[P] = NewPhi.get();
        NewBB->append(std::move(NewPhi));
        continue;
      }
      auto NewI = cloneInstruction(*I, VM, BlockMap);
      VM[I.get()] = NewI.get();
      NewBB->append(std::move(NewI));
    }
  }
  for (auto &[OldPhi, NewPhi] : PendingPhis)
    for (unsigned J = 0; J != OldPhi->getNumIncoming(); ++J)
      NewPhi->addIncoming(mapValue(VM, OldPhi->getIncomingValue(J)),
                          mapBlock(BlockMap, OldPhi->getIncomingBlock(J)));

  return Dst.addFunction(std::move(Copy));
}
