//===- ir/Verifier.cpp - Structural IR checks -----------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"
#include "ir/Printer.h"
#include "support/Casting.h"
#include "support/Format.h"

#include <algorithm>
#include <set>

using namespace dae;
using namespace dae::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Function &F) : F(F) {}

  std::vector<std::string> run() {
    collectDefs();
    for (const auto &BB : F)
      checkBlock(*BB);
    return std::move(Problems);
  }

private:
  void error(const std::string &Msg) {
    Problems.push_back("in @" + F.getName() + ": " + Msg);
  }

  void collectDefs() {
    for (const auto &Arg : F.args())
      FuncValues.insert(Arg.get());
    for (const auto &BB : F)
      for (const auto &I : *BB)
        FuncValues.insert(I.get());
  }

  bool isLocalOrConstant(const Value *V) const {
    if (isa<ConstantInt, ConstantFloat, GlobalVariable>(V))
      return true;
    return FuncValues.count(V) != 0;
  }

  void checkBlock(const BasicBlock &BB) {
    if (BB.empty()) {
      error("block '" + BB.getName() + "' is empty");
      return;
    }
    if (!BB.getTerminator())
      error("block '" + BB.getName() + "' lacks a terminator");

    bool SeenNonPhi = false;
    for (const auto &IPtr : BB) {
      const Instruction *I = IPtr.get();
      if (I->isTerminator() && I != BB.back())
        error("terminator in the middle of block '" + BB.getName() + "'");
      if (isa<PhiInst>(I)) {
        if (SeenNonPhi)
          error("phi after non-phi in block '" + BB.getName() + "'");
      } else {
        SeenNonPhi = true;
      }
      checkInstruction(*I, BB);
    }
  }

  void expectType(const Instruction &I, const Value *V, Type Ty,
                  const char *What) {
    if (V->getType() != Ty)
      error(strfmt("%s of '%s' has type %s, expected %s", What,
                   printInstruction(I).c_str(), typeName(V->getType()),
                   typeName(Ty)));
  }

  void checkInstruction(const Instruction &I, const BasicBlock &BB) {
    for (const Value *Op : I.operands())
      if (!isLocalOrConstant(Op))
        error("operand of '" + printInstruction(I) +
              "' defined outside the function");

    switch (I.getKind()) {
    case ValueKind::InstBinary: {
      const auto &B = *cast<BinaryInst>(&I);
      Type Want = isFloatBinOp(B.getOpcode()) ? Type::Float64 : Type::Int64;
      expectType(I, B.getLHS(), Want, "lhs");
      expectType(I, B.getRHS(), Want, "rhs");
      break;
    }
    case ValueKind::InstCmp: {
      const auto &C = *cast<CmpInst>(&I);
      if (C.getLHS()->getType() != C.getRHS()->getType())
        error("cmp operand types differ in '" + printInstruction(I) + "'");
      break;
    }
    case ValueKind::InstSelect: {
      const auto &S = *cast<SelectInst>(&I);
      expectType(I, S.getCondition(), Type::Int64, "condition");
      if (S.getTrueValue()->getType() != S.getFalseValue()->getType())
        error("select arm types differ in '" + printInstruction(I) + "'");
      break;
    }
    case ValueKind::InstLoad:
      expectType(I, cast<LoadInst>(&I)->getPointer(), Type::Ptr, "pointer");
      break;
    case ValueKind::InstStore:
      expectType(I, cast<StoreInst>(&I)->getPointer(), Type::Ptr, "pointer");
      break;
    case ValueKind::InstPrefetch:
      expectType(I, cast<PrefetchInst>(&I)->getPointer(), Type::Ptr,
                 "pointer");
      break;
    case ValueKind::InstGep: {
      const auto &G = *cast<GepInst>(&I);
      expectType(I, G.getBase(), Type::Ptr, "base");
      for (unsigned J = 0; J != G.getNumIndices(); ++J)
        expectType(I, G.getIndex(J), Type::Int64, "index");
      break;
    }
    case ValueKind::InstPhi:
      checkPhi(*cast<PhiInst>(&I), BB);
      break;
    case ValueKind::InstBr: {
      const auto &Br = *cast<BrInst>(&I);
      if (Br.isConditional())
        expectType(I, Br.getCondition(), Type::Int64, "condition");
      for (unsigned J = 0; J != Br.getNumSuccessors(); ++J)
        if (!Br.getSuccessor(J) ||
            Br.getSuccessor(J)->getParent() != &F)
          error("branch in '" + BB.getName() +
                "' targets a block outside the function");
      break;
    }
    case ValueKind::InstRet: {
      const auto &R = *cast<RetInst>(&I);
      if (R.hasReturnValue() && F.getReturnType() == Type::Void)
        error("ret with value in void function");
      if (!R.hasReturnValue() && F.getReturnType() != Type::Void)
        error("void ret in non-void function");
      break;
    }
    case ValueKind::InstCall: {
      const auto &C = *cast<CallInst>(&I);
      const Function *Callee = C.getCallee();
      for (unsigned J = 0; J != C.getNumArgs(); ++J)
        expectType(I, C.getArg(J), Callee->getArg(J)->getType(), "argument");
      break;
    }
    default:
      break;
    }
  }

  void checkPhi(const PhiInst &Phi, const BasicBlock &BB) {
    std::vector<BasicBlock *> Preds = BB.predecessors();
    if (Phi.getNumIncoming() != Preds.size()) {
      error(strfmt("phi in '%s' has %u incoming entries but the block has "
                   "%zu predecessors",
                   BB.getName().c_str(), Phi.getNumIncoming(), Preds.size()));
      return;
    }
    for (unsigned J = 0; J != Phi.getNumIncoming(); ++J) {
      BasicBlock *In = Phi.getIncomingBlock(J);
      if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
        error("phi in '" + BB.getName() + "' names non-predecessor '" +
              (In ? In->getName() : "<null>") + "'");
      if (Phi.getIncomingValue(J)->getType() != Phi.getType())
        error("phi incoming type mismatch in '" + BB.getName() + "'");
    }
  }

  const Function &F;
  std::set<const Value *> FuncValues;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> ir::verifyFunction(const Function &F) {
  return VerifierImpl(F).run();
}

std::vector<std::string> ir::verifyModule(const Module &M) {
  std::vector<std::string> All;
  for (const auto &F : M.functions()) {
    auto Problems = verifyFunction(*F);
    All.insert(All.end(), Problems.begin(), Problems.end());
  }
  return All;
}
