//===- ir/IR.cpp - Value/Instruction/BasicBlock/Function/Module -----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/Casting.h"

#include <algorithm>
#include <cstring>

using namespace dae;
using namespace dae::ir;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

Value::~Value() {
  assert(Users.empty() && "value destroyed while still in use");
}

void Value::removeUser(Instruction *I) {
  auto It = std::find(Users.begin(), Users.end(), I);
  assert(It != Users.end() && "removing non-existent user");
  Users.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replacing a value with itself");
  // Copy: setOperand mutates Users.
  std::vector<Instruction *> Snapshot = Users;
  for (Instruction *U : Snapshot)
    for (unsigned I = 0, E = U->getNumOperands(); I != E; ++I)
      if (U->getOperand(I) == this)
        U->setOperand(I, New);
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

Instruction::~Instruction() {
  assert(Operands.empty() && "instruction destroyed with live operands; "
                             "call dropAllOperands first");
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "operand must not be null");
  Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::appendOperand(Value *V) {
  assert(V && "operand must not be null");
  Operands.push_back(V);
  V->addUser(this);
}

void Instruction::dropAllOperands() {
  for (Value *V : Operands)
    V->removeUser(this);
  Operands.clear();
  if (auto *Phi = dyn_cast<PhiInst>(this))
    Phi->Incoming.clear();
}

bool Instruction::hasSideEffects() const {
  switch (getKind()) {
  case ValueKind::InstStore:
  case ValueKind::InstPrefetch:
  case ValueKind::InstCall:
  case ValueKind::InstBr:
  case ValueKind::InstRet:
    return true;
  default:
    return false;
  }
}

bool ir::isFloatBinOp(BinOp Op) {
  switch (Op) {
  case BinOp::FAdd:
  case BinOp::FSub:
  case BinOp::FMul:
  case BinOp::FDiv:
    return true;
  default:
    return false;
  }
}

const char *ir::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::SDiv:
    return "sdiv";
  case BinOp::SRem:
    return "srem";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Shl:
    return "shl";
  case BinOp::AShr:
    return "ashr";
  case BinOp::FAdd:
    return "fadd";
  case BinOp::FSub:
    return "fsub";
  case BinOp::FMul:
    return "fmul";
  case BinOp::FDiv:
    return "fdiv";
  }
  return "?";
}

const char *ir::cmpPredName(CmpPred P) {
  switch (P) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::SLT:
    return "slt";
  case CmpPred::SLE:
    return "sle";
  case CmpPred::SGT:
    return "sgt";
  case CmpPred::SGE:
    return "sge";
  case CmpPred::FLT:
    return "flt";
  case CmpPred::FLE:
    return "fle";
  case CmpPred::FGT:
    return "fgt";
  case CmpPred::FGE:
    return "fge";
  case CmpPred::FEQ:
    return "feq";
  case CmpPred::FNE:
    return "fne";
  }
  return "?";
}

const char *ir::castOpName(CastOp Op) {
  switch (Op) {
  case CastOp::SIToFP:
    return "sitofp";
  case CastOp::FPToSI:
    return "fptosi";
  case CastOp::PtrToInt:
    return "ptrtoint";
  case CastOp::IntToPtr:
    return "inttoptr";
  }
  return "?";
}

Value *PhiInst::getIncomingValueForBlock(const BasicBlock *BB) const {
  int Idx = getBlockIndex(BB);
  assert(Idx >= 0 && "block is not an incoming edge of this phi");
  return getIncomingValue(static_cast<unsigned>(Idx));
}

int PhiInst::getBlockIndex(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (Incoming[I] == BB)
      return static_cast<int>(I);
  return -1;
}

void PhiInst::removeIncoming(unsigned I) {
  assert(I < getNumIncoming() && "incoming index out of range");
  std::vector<Value *> Vals;
  std::vector<BasicBlock *> Blocks;
  for (unsigned J = 0, E = getNumIncoming(); J != E; ++J) {
    if (J == I)
      continue;
    Vals.push_back(getIncomingValue(J));
    Blocks.push_back(getIncomingBlock(J));
  }
  dropAllOperands(); // Detaches all uses and clears Incoming.
  Incoming = std::move(Blocks);
  for (Value *V : Vals)
    appendOperand(V);
}

void BrInst::makeUnconditional(BasicBlock *Dest) {
  dropAllOperands(); // Detaches the condition use, if any.
  TrueDest = Dest;
  FalseDest = nullptr;
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

BasicBlock::~BasicBlock() {
  // Destroy in reverse, dropping operands first so use-list asserts hold.
  for (auto It = Insts.rbegin(); It != Insts.rend(); ++It)
    (*It)->dropAllOperands();
}

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(I && "appending null instruction");
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertBefore(std::unique_ptr<Instruction> I,
                                      Instruction *Pos) {
  assert(I && "inserting null instruction");
  I->setParent(this);
  for (auto It = Insts.begin(); It != Insts.end(); ++It) {
    if (It->get() == Pos) {
      auto *Raw = I.get();
      Insts.insert(It, std::move(I));
      return Raw;
    }
  }
  assert(false && "insertion point not in this block");
  return nullptr;
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUsers() && "erasing an instruction that still has users");
  I->dropAllOperands();
  for (auto It = Insts.begin(); It != Insts.end(); ++It) {
    if (It->get() == I) {
      Insts.erase(It);
      return;
    }
  }
  assert(false && "instruction not in this block");
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction *I) {
  for (auto It = Insts.begin(); It != Insts.end(); ++It) {
    if (It->get() == I) {
      std::unique_ptr<Instruction> Owned = std::move(*It);
      Insts.erase(It);
      Owned->setParent(nullptr);
      return Owned;
    }
  }
  assert(false && "instruction not in this block");
  return nullptr;
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  Instruction *Term = getTerminator();
  if (!Term)
    return Succs;
  if (auto *Br = dyn_cast<BrInst>(Term))
    for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
      Succs.push_back(Br->getSuccessor(I));
  return Succs;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  if (!Parent)
    return Preds;
  for (const auto &BB : *Parent) {
    for (BasicBlock *Succ : BB->successors())
      if (Succ == this) {
        Preds.push_back(BB.get());
        break;
      }
  }
  return Preds;
}

std::vector<PhiInst *> BasicBlock::phis() const {
  std::vector<PhiInst *> Result;
  for (const auto &I : Insts) {
    auto *Phi = dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    Result.push_back(Phi);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(std::string Name, Type RetTy, std::vector<Type> ParamTys)
    : Name(std::move(Name)), RetTy(RetTy) {
  for (unsigned I = 0; I != ParamTys.size(); ++I)
    Args.push_back(std::make_unique<Argument>(ParamTys[I], I, this));
}

Function::~Function() {
  // Blocks are destroyed in layout order; a later block's instructions may
  // use values from an earlier one, so sever every use first.
  for (const auto &BB : Blocks)
    for (const auto &I : *BB)
      I->dropAllOperands();
}

BasicBlock *Function::createBlock(std::string BlockName) {
  auto BB = std::make_unique<BasicBlock>(std::move(BlockName));
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

BasicBlock *Function::appendBlock(std::unique_ptr<BasicBlock> BB) {
  assert(BB && "appending null block");
  BB->setParent(this);
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  for (auto It = Blocks.begin(); It != Blocks.end(); ++It) {
    if (It->get() == BB) {
      // Drop all operand uses first so cross-block references unwind.
      std::vector<Instruction *> Owned;
      for (const auto &I : *BB)
        Owned.push_back(I.get());
      for (auto *I : Owned)
        I->dropAllOperands();
      for ([[maybe_unused]] auto *I : Owned)
        assert(!I->hasUsers() && "erasing block whose values are still used");
      Blocks.erase(It);
      return;
    }
  }
  assert(false && "block not in this function");
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}

void Function::renumberValues() {
  unsigned Counter = 0;
  for (const auto &Arg : Args)
    if (Arg->getName().empty())
      Arg->setName("arg" + std::to_string(Arg->getIndex()));
  for (const auto &BB : Blocks)
    for (const auto &I : *BB)
      if (I->getType() != Type::Void)
        I->setName("%" + std::to_string(Counter++));
}

//===----------------------------------------------------------------------===//
// CallInst (needs Function definition)
//===----------------------------------------------------------------------===//

CallInst::CallInst(Function *Callee, std::vector<Value *> Args, Type RetTy)
    : Instruction(ValueKind::InstCall, RetTy), Callee(Callee) {
  assert(Callee && "call to null function");
  assert(Args.size() == Callee->getNumArgs() && "call argument count");
  for (Value *A : Args)
    appendOperand(A);
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

ConstantInt *Module::getInt(std::int64_t V) {
  auto It = IntPool.find(V);
  if (It != IntPool.end())
    return It->second.get();
  auto C = std::make_unique<ConstantInt>(V);
  auto *Raw = C.get();
  IntPool.emplace(V, std::move(C));
  return Raw;
}

ConstantFloat *Module::getFloat(double V) {
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "bit-pattern key");
  std::memcpy(&Bits, &V, sizeof(Bits));
  auto It = FloatPool.find(Bits);
  if (It != FloatPool.end())
    return It->second.get();
  auto C = std::make_unique<ConstantFloat>(V);
  auto *Raw = C.get();
  FloatPool.emplace(Bits, std::move(C));
  return Raw;
}

GlobalVariable *Module::createGlobal(std::string GlobalName,
                                     std::uint64_t SizeBytes) {
  assert(!getGlobal(GlobalName) && "duplicate global name");
  Globals.push_back(
      std::make_unique<GlobalVariable>(std::move(GlobalName), SizeBytes));
  return Globals.back().get();
}

GlobalVariable *Module::getGlobal(const std::string &GlobalName) const {
  for (const auto &G : Globals)
    if (G->getName() == GlobalName)
      return G.get();
  return nullptr;
}

Function *Module::createFunction(std::string FuncName, Type RetTy,
                                 std::vector<Type> ParamTys) {
  assert(!getFunction(FuncName) && "duplicate function name");
  auto F =
      std::make_unique<Function>(std::move(FuncName), RetTy, std::move(ParamTys));
  F->setParent(this);
  Funcs.push_back(std::move(F));
  return Funcs.back().get();
}

Function *Module::addFunction(std::unique_ptr<Function> F) {
  assert(F && "adding null function");
  assert(!getFunction(F->getName()) && "duplicate function name");
  F->setParent(this);
  Funcs.push_back(std::move(F));
  return Funcs.back().get();
}

Function *Module::getFunction(const std::string &FuncName) const {
  for (const auto &F : Funcs)
    if (F->getName() == FuncName)
      return F.get();
  return nullptr;
}

void Module::eraseFunction(Function *F) {
  for (auto It = Funcs.begin(); It != Funcs.end(); ++It) {
    if (It->get() == F) {
      // Erase blocks in an order-insensitive way by dropping operands first.
      std::vector<BasicBlock *> Blocks;
      for (const auto &BB : *F)
        Blocks.push_back(BB.get());
      for (BasicBlock *BB : Blocks)
        F->eraseBlock(BB);
      Funcs.erase(It);
      return;
    }
  }
  assert(false && "function not in this module");
}

std::vector<Function *> Module::tasks() const {
  std::vector<Function *> Tasks;
  for (const auto &F : Funcs)
    if (F->isTask())
      Tasks.push_back(F.get());
  return Tasks;
}
