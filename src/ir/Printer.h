//===- ir/Printer.h - Textual IR printer ------------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders Task IR as text for debugging and golden tests. The format is a
/// stripped-down LLVM assembly dialect; there is intentionally no parser —
/// programs are built through IRBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_IR_PRINTER_H
#define DAECC_IR_PRINTER_H

#include <string>

namespace dae {
namespace ir {

class Function;
class Module;
class Instruction;
class Value;

/// Renders one instruction (no trailing newline).
std::string printInstruction(const Instruction &I);
/// Renders the operand form of a value (constant literal, @global, %name).
std::string printOperand(const Value &V);
/// Renders an entire function. Assigns names to unnamed values first.
std::string printFunction(Function &F);
/// Renders every function in the module.
std::string printModule(Module &M);

} // namespace ir
} // namespace dae

#endif // DAECC_IR_PRINTER_H
