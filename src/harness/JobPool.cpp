//===- harness/JobPool.cpp - Suite-level job pool --------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/JobPool.h"

#include "support/EnvParse.h"

#include <algorithm>

using namespace dae;
using namespace dae::harness;

unsigned JobPool::hostThreadBudget() {
  // Garbage DAECC_HOST_THREADS used to be silently ignored (atoi), quietly
  // handing the sweep a different budget than it asked for; it is now the
  // same exit-2 hard error as every other DAECC_* integer knob.
  unsigned HW = std::thread::hardware_concurrency();
  return support::envUnsignedOr("DAECC_HOST_THREADS", HW ? HW : 1);
}

unsigned JobPool::effectiveSimThreads(unsigned Jobs, unsigned SimThreadsPerJob,
                                      unsigned HostBudget) {
  Jobs = std::max(1u, Jobs);
  SimThreadsPerJob = std::max(1u, SimThreadsPerJob);
  if (Jobs == 1)
    return SimThreadsPerJob;
  // Shared budget: never let Jobs * SimThreads exceed the host, but always
  // grant each job at least one thread (jobs themselves are the coarser and
  // better-scaling axis, so they win ties). A zero HostBudget — the value
  // hardware_concurrency() returns when the host can't report one — degrades
  // to one thread per job rather than dividing by zero.
  unsigned Budget = std::max(Jobs, HostBudget);
  return std::clamp(std::max(1u, Budget / Jobs), 1u, SimThreadsPerJob);
}

JobPool::JobPool(unsigned Jobs, unsigned SimThreadsPerJob, bool AlwaysThreaded)
    : NumJobs(std::max(1u, Jobs)),
      SimThreads(effectiveSimThreads(Jobs, SimThreadsPerJob,
                                     hostThreadBudget())) {
  if (NumJobs > 1 || AlwaysThreaded) {
    Workers.reserve(NumJobs);
    for (unsigned I = 0; I != NumJobs; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Quit = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void JobPool::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
  }
  WorkAvailable.notify_one();
}

void JobPool::wait() {
  if (Workers.empty()) {
    // Sequential mode: drain inline. Jobs may enqueue more jobs; FIFO order
    // makes this the canonical sequential reference.
    for (;;) {
      std::function<void()> Job;
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (Queue.empty())
          return;
        Job = std::move(Queue.front());
        Queue.pop_front();
      }
      Job();
    }
  }
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void JobPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Quit || !Queue.empty(); });
      if (Queue.empty())
        return; // Quit and drained.
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Running;
      if (Queue.empty() && Running == 0)
        AllIdle.notify_all();
    }
  }
}
