//===- harness/Harness.cpp - Paper experiment driver -------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

#include "analysis/TaskAnalysis.h"
#include "dae/AccessProfile.h"
#include "dae/GenerationMemo.h"
#include "dae/ProfileGuidedRefinement.h"
#include "harness/JobPool.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "passes/Passes.h"
#include "pm/Analyses.h"
#include "sim/Interpreter.h"
#include "verify/AccessPhaseAudit.h"
#include "verify/DifferentialChecker.h"

#include <cassert>
#include <memory>
#include <set>
#include <stdexcept>

using namespace dae;
using namespace dae::harness;
using namespace dae::runtime;
using namespace dae::sim;
using dae::workloads::Workload;

namespace {

/// Snapshot of the workload's output arrays.
std::vector<std::uint8_t> snapshotOutputs(const Workload &W, Memory &Mem,
                                          const Loader &L) {
  std::vector<std::uint8_t> Bytes;
  for (size_t G = 0; G != W.OutputGlobals.size(); ++G) {
    std::uint64_t Base = L.baseOf(W.OutputGlobals[G]);
    for (std::uint64_t Off = 0; Off != W.OutputSizes[G]; Off += 8) {
      std::int64_t V = Mem.loadI64(Base + Off);
      for (int B = 0; B != 8; ++B)
        Bytes.push_back(static_cast<std::uint8_t>(V >> (8 * B)));
    }
  }
  return Bytes;
}

/// Runs one scheme (fresh memory + init) and snapshots the outputs. When
/// \p Traces is non-null the run's traces are retained for a later
/// contention-timeline interleave.
RunProfile runScheme(const Workload &W, const std::vector<Task> &Tasks,
                     const MachineConfig &Cfg, const Loader &L,
                     std::vector<std::uint8_t> &OutBytes,
                     RunTraces *Traces = nullptr) {
  Memory Mem;
  W.Init(Mem, L);
  TaskRuntime RT(Cfg, Mem, L);
  RunProfile P = RT.execute(Tasks, /*RunAccess=*/true, nullptr, Traces);
  OutBytes = snapshotOutputs(W, Mem, L);
  return P;
}

/// The per-scheme correctness oracle (--dae-verify): static purity audit of
/// every access phase in \p Tasks, then the with/without-access dynamic
/// differential. Returns Ran == false for schemes with no decoupled tasks
/// (there is nothing to verify; CAE always lands here).
DaeVerifyResult verifyScheme(const Workload &W,
                             const std::vector<Task> &Tasks,
                             const MachineConfig &Cfg, const Loader &L) {
  DaeVerifyResult V;
  V.AuditPure = true;

  bool AnyAccess = false;
  pm::FunctionAnalysisManager FAM;
  std::set<const ir::Function *> Audited;
  for (const Task &T : Tasks) {
    if (!T.Access)
      continue;
    AnyAccess = true;
    if (!Audited.insert(T.Access).second)
      continue;
    // The audit only reads the function; the analysis manager's interface
    // is mutable because passes share it.
    auto &AccessFn = *const_cast<ir::Function *>(T.Access);
    verify::AuditReport Rep = verify::auditAccessPhase(AccessFn, FAM);
    for (const verify::AuditViolation &Viol : Rep.Violations) {
      V.AuditPure = false;
      std::string S = T.Access->getName() + ": " + Viol.Reason;
      if (Viol.Inst)
        S += ": " + ir::printInstruction(*Viol.Inst);
      V.AuditViolations.push_back(std::move(S));
    }
  }
  if (!AnyAccess)
    return V;
  V.Ran = true;

  verify::DifferentialSpec Spec;
  Spec.Init = W.Init;
  Spec.OutputGlobals = W.OutputGlobals;
  Spec.OutputSizes = W.OutputSizes;
  verify::DifferentialChecker Checker(Cfg, L, std::move(Spec));
  V.Diff = Checker.check(Tasks);
  return V;
}

/// Everything one app needs before its three scheme simulations can run:
/// generated access phases, the three task lists, and the loader. Shared by
/// runApp (sequential) and runSuite (job pool).
struct PreparedApp {
  const Workload *W = nullptr;
  std::vector<AccessPhaseResult> Generation;
  unsigned AffineLoops = 0, TotalLoops = 0;
  /// Task lists indexed by Scheme (Cae, Manual, Auto).
  std::vector<Task> SchemeTasks[3];
  std::unique_ptr<Loader> L;
  /// Profile-guided refinement outcome (when prepareApp ran it).
  ProfileGuidedResult Pg;
};

/// The profile-guided refinement loop over one prepared app's Auto scheme
/// (see dae/ProfileGuidedRefinement.h): measure per-task coverage/overshoot
/// from the differential checker's captures, persist them into an
/// AccessProfile keyed by task fingerprint, run the pm-registered
/// refinement pass over the task functions, then swap the refined phases
/// into SchemeTasks[2] (and Generation) and re-measure. Runs inside the
/// app-preparation step, *before* any scheme simulation is submitted, so
/// the Auto simulations always see the final phases.
ProfileGuidedResult refineAutoScheme(Workload &W, PreparedApp &P,
                                     const MachineConfig &Cfg,
                                     const DaeOptions &Opts,
                                     GenerationMemo *Memo,
                                     pm::FunctionAnalysisManager &FAM) {
  ProfileGuidedResult R;
  bool AnyAccess = false;
  for (const Task &T : P.SchemeTasks[2])
    if (T.Access) {
      AnyAccess = true;
      break;
    }
  if (!AnyAccess)
    return R;
  R.Ran = true;

  verify::DifferentialSpec Spec;
  Spec.Init = W.Init;
  Spec.OutputGlobals = W.OutputGlobals;
  Spec.OutputSizes = W.OutputSizes;
  verify::DifferentialChecker Checker(Cfg, *P.L, std::move(Spec));

  std::vector<TaskObservation> Obs;
  RunProfile BeforeProfile;
  R.Before = Checker.check(P.SchemeTasks[2], &Obs, &BeforeProfile);
  R.EdpBefore = evaluate(BeforeProfile, Cfg, minMaxConfig(Cfg, 0.0)).EdpJs;

  // Persist the observations keyed by task content fingerprint; instances
  // of the same task function merge into one record.
  dae::AccessProfile Profile;
  for (size_t I = 0; I != P.SchemeTasks[2].size(); ++I) {
    if (!P.SchemeTasks[2][I].Access)
      continue;
    auto *Task = const_cast<ir::Function *>(P.SchemeTasks[2][I].Execute);
    Profile.record(taskContentFingerprint(*Task, FAM), Obs[I]);
  }

  dae::RefinementConfig RC;
  // A merged phase whose footprint exceeds the private L2 has a reuse
  // distance spanning into the shared LLC — the planner's split signal.
  RC.PhaseSplitFootprintBytes = Cfg.L2.SizeBytes;
  // Cold-load profiling costs an instrumented coupled run; only pay for it
  // when some phase actually overshoots the budget.
  std::set<const ir::Instruction *> Cold;
  std::vector<ir::Function *> TaskFns = W.taskFunctions();
  for (ir::Function *F : TaskFns) {
    dae::TaskProfileData D;
    if (Profile.lookup(taskContentFingerprint(*F, FAM), D) &&
        D.overshoot() > RC.OvershootBudget) {
      Cold = profileColdLoads(W, Cfg);
      if (!Cold.empty())
        RC.ColdLoads = &Cold;
      break;
    }
  }

  // Run the refinement pass through a pass manager so it is instrumented
  // (PipelineStats) and honors --verify-each like every other pass.
  auto PassPtr = std::make_unique<dae::ProfileGuidedRefinementPass>(
      *W.M, Profile, Opts, RC, Memo);
  dae::ProfileGuidedRefinementPass *Refiner = PassPtr.get();
  for (size_t GI = 0; GI != TaskFns.size(); ++GI)
    Refiner->noteBaseline(TaskFns[GI], P.Generation[GI]);
  pm::PassManager Mgr("dae-profile-guided");
  Mgr.addPass(std::move(PassPtr));
  for (ir::Function *F : TaskFns)
    Mgr.run(*F, FAM);

  if (Refiner->numRefined() == 0) {
    R.After = R.Before;
    R.EdpAfter = R.EdpBefore;
    return R;
  }
  R.RefinedTasks = Refiner->numRefined();

  // Swap the refined phases into the Auto scheme and the generation
  // diagnostics, auditing each one — refinement must never trade purity
  // for coverage.
  for (size_t GI = 0; GI != TaskFns.size(); ++GI) {
    const AccessPhaseResult *RR = Refiner->refinedResult(TaskFns[GI]);
    if (!RR)
      continue;
    P.Generation[GI] = *RR;
    R.Actions.push_back(TaskFns[GI]->getName() + ": " + RR->RefinementNote);
    for (Task &T : P.SchemeTasks[2])
      if (T.Execute == TaskFns[GI])
        T.Access = RR->AccessFn;
    verify::AuditReport Rep = verify::auditAccessPhase(*RR->AccessFn, FAM);
    for (const verify::AuditViolation &Viol : Rep.Violations) {
      R.AuditPure = false;
      std::string S = RR->AccessFn->getName() + ": " + Viol.Reason;
      if (Viol.Inst)
        S += ": " + ir::printInstruction(*Viol.Inst);
      R.AuditViolations.push_back(std::move(S));
    }
  }

  RunProfile AfterProfile;
  R.After = Checker.check(P.SchemeTasks[2], nullptr, &AfterProfile);
  R.EdpAfter = evaluate(AfterProfile, Cfg, minMaxConfig(Cfg, 0.0)).EdpJs;
  return R;
}

PreparedApp prepareApp(Workload &W, const DaeOptions *OptsOverride,
                       GenerationMemo *Memo,
                       const MachineConfig *PgCfg = nullptr) {
  PreparedApp P;
  P.W = &W;
  const DaeOptions &Opts = OptsOverride ? *OptsOverride : W.Opts;

  // Generate the Auto DAE access phase per task function. Generation
  // optimizes the task body first (shared by all schemes). One analysis
  // cache serves the whole app: classification computed during generation
  // is reused for the Table 1 loop counts below.
  pm::FunctionAnalysisManager FAM;
  std::map<const ir::Function *, const ir::Function *> AutoAccess;
  for (ir::Function *F : W.taskFunctions()) {
    AccessPhaseResult G = Memo ? Memo->generate(*W.M, *F, Opts, FAM)
                               : generateAccessPhase(*W.M, *F, Opts, FAM);
    if (G.AccessFn)
      AutoAccess[F] = G.AccessFn;
    const analysis::TaskClassification &Cls =
        FAM.getResult<pm::TaskClassificationAnalysis>(*F);
    P.AffineLoops += Cls.AffineLoops;
    P.TotalLoops += Cls.TotalLoops;
    P.Generation.push_back(std::move(G));
  }

  // Build the three task lists.
  for (auto &List : P.SchemeTasks)
    List = W.Tasks;
  for (size_t I = 0; I != W.Tasks.size(); ++I) {
    P.SchemeTasks[0][I].Access = nullptr;
    auto MIt = W.ManualAccess.find(W.Tasks[I].Execute);
    P.SchemeTasks[1][I].Access =
        MIt == W.ManualAccess.end() ? nullptr : MIt->second;
    auto AIt = AutoAccess.find(W.Tasks[I].Execute);
    P.SchemeTasks[2][I].Access =
        AIt == AutoAccess.end() ? nullptr : AIt->second;
  }

  P.L = std::make_unique<Loader>(*W.M);

  // Profile-guided refinement runs here — after the Loader exists (the
  // differential runs need it; regeneration adds functions but no globals,
  // so the layout stays valid) and before any scheme simulation can start.
  if (PgCfg)
    P.Pg = refineAutoScheme(W, P, *PgCfg, Opts, Memo, FAM);
  return P;
}

AppResult assembleApp(PreparedApp &P, RunProfile Profiles[3],
                      std::vector<std::uint8_t> Outputs[3],
                      const MachineConfig &Cfg) {
  AppResult R;
  R.Name = P.W->Name;
  R.Cae = std::move(Profiles[0]);
  R.Manual = std::move(Profiles[1]);
  R.Auto = std::move(Profiles[2]);
  R.Generation = std::move(P.Generation);
  R.OutputsMatch = Outputs[0] == Outputs[1] && Outputs[0] == Outputs[2];
  R.CaeOutputs = std::move(Outputs[0]);
  R.ManualOutputs = std::move(Outputs[1]);
  R.AutoOutputs = std::move(Outputs[2]);

  // Table 1 row, measured from the Auto DAE profile at the Min/Max policy
  // (access at fmin as in the paper's TA methodology).
  RunReport Rep = evaluate(R.Auto, Cfg, minMaxConfig(Cfg, 0.0));
  R.Row.Name = P.W->Name;
  R.Row.AffineLoops = P.AffineLoops;
  R.Row.TotalLoops = P.TotalLoops;
  R.Row.NumTasks = P.W->Tasks.size();
  R.Row.AccessTimePercent = Rep.accessTimeFraction() * 100.0;
  R.Row.AccessTimeUs = Rep.avgAccessUs();
  R.AutoPg = std::move(P.Pg);
  return R;
}

} // namespace

AppResult harness::runApp(Workload &W, const MachineConfig &Cfg,
                          const DaeOptions *OptsOverride,
                          GenerationMemo *Memo, bool DaeVerify,
                          bool DaeProfileGuided) {
  PreparedApp P =
      prepareApp(W, OptsOverride, Memo, DaeProfileGuided ? &Cfg : nullptr);
  RunProfile Profiles[3];
  std::vector<std::uint8_t> Outputs[3];
  for (int S = 0; S != 3; ++S)
    Profiles[S] = runScheme(W, P.SchemeTasks[S], Cfg, *P.L, Outputs[S]);
  AppResult R = assembleApp(P, Profiles, Outputs, Cfg);
  if (DaeVerify) {
    R.ManualVerify = verifyScheme(W, P.SchemeTasks[1], Cfg, *P.L);
    R.AutoVerify = verifyScheme(W, P.SchemeTasks[2], Cfg, *P.L);
  }
  return R;
}

std::vector<AppResult> harness::runSuite(const std::vector<SuiteItem> &Items,
                                         const MachineConfig &Cfg,
                                         const SuiteConfig &SC) {
  unsigned Requested =
      SC.SimThreads ? SC.SimThreads : std::max(1u, Cfg.SimThreads);
  JobPool Pool(SC.Jobs, Requested);
  MachineConfig JobCfg = Cfg;
  JobCfg.SimThreads = Pool.simThreadsPerJob();

  struct AppSlot {
    PreparedApp P;
    RunProfile Profiles[3];
    std::vector<std::uint8_t> Outputs[3];
    DaeVerifyResult Verify[2]; ///< Manual, Auto (under SC.DaeVerify).
  };
  std::vector<AppSlot> Slots(Items.size());

  // One preparation job per app; each fans out its three scheme simulations
  // (plus, under --dae-verify, the two DAE-scheme oracle runs) as further
  // jobs (private Memory per simulation; the Loader and the module are
  // shared read-only between them).
  for (size_t I = 0; I != Items.size(); ++I) {
    Pool.submit([&Pool, &Slots, &Items, &JobCfg, &SC, I] {
      AppSlot &S = Slots[I];
      S.P = prepareApp(*Items[I].W, Items[I].OptsOverride, SC.Memo,
                       SC.DaeProfileGuided ? &JobCfg : nullptr);
      for (int Sch = 0; Sch != 3; ++Sch)
        Pool.submit([&S, &JobCfg, Sch] {
          S.Profiles[Sch] = runScheme(*S.P.W, S.P.SchemeTasks[Sch], JobCfg,
                                      *S.P.L, S.Outputs[Sch]);
        });
      if (SC.DaeVerify)
        for (int D = 0; D != 2; ++D)
          Pool.submit([&S, &JobCfg, D] {
            S.Verify[D] = verifyScheme(*S.P.W, S.P.SchemeTasks[D + 1],
                                       JobCfg, *S.P.L);
          });
    });
  }
  Pool.wait();

  // Assemble in item order, independent of completion order.
  std::vector<AppResult> Results;
  Results.reserve(Slots.size());
  for (AppSlot &S : Slots) {
    AppResult R = assembleApp(S.P, S.Profiles, S.Outputs, Cfg);
    R.ManualVerify = std::move(S.Verify[0]);
    R.AutoVerify = std::move(S.Verify[1]);
    Results.push_back(std::move(R));
  }
  return Results;
}

MixResult harness::runMix(const std::vector<Workload *> &Mix,
                          const MachineConfig &Cfg, const MixConfig &MC) {
  if (Mix.empty() || Mix.size() > Cfg.NumCores)
    throw std::invalid_argument("mix size must be in [1, NumCores]");

  unsigned Requested =
      MC.SimThreads ? MC.SimThreads : std::max(1u, Cfg.SimThreads);
  JobPool Pool(MC.Jobs, Requested);
  // Solo runs are single-core: each stream is one program pinned to one
  // timeline core, so its tasks execute sequentially and its retained traces
  // are already in that core's execution order.
  MachineConfig SoloCfg = Cfg;
  SoloCfg.NumCores = 1;
  SoloCfg.SimThreads = Pool.simThreadsPerJob();

  struct StreamSlot {
    PreparedApp P;
    RunProfile CaeProfile, DaeProfile;
    RunTraces CaeTraces, DaeTraces;
    std::vector<std::uint8_t> CaeOut, DaeOut;
    DaeVerifyResult Verify;
  };
  std::vector<StreamSlot> Slots(Mix.size());

  // One preparation job per stream, fanning out the two traced scheme runs
  // (and, under DaeVerify, the per-stream differential oracle) as further
  // jobs — the same shape as runSuite.
  for (size_t I = 0; I != Mix.size(); ++I) {
    Pool.submit([&Pool, &Slots, &Mix, &SoloCfg, &MC, I] {
      StreamSlot &S = Slots[I];
      S.P = prepareApp(*Mix[I], nullptr, MC.Memo);
      Pool.submit([&S, &SoloCfg] {
        S.CaeProfile = runScheme(*S.P.W, S.P.SchemeTasks[0], SoloCfg, *S.P.L,
                                 S.CaeOut, &S.CaeTraces);
      });
      Pool.submit([&S, &SoloCfg] {
        S.DaeProfile = runScheme(*S.P.W, S.P.SchemeTasks[2], SoloCfg, *S.P.L,
                                 S.DaeOut, &S.DaeTraces);
      });
      if (MC.DaeVerify)
        Pool.submit([&S, &SoloCfg] {
          S.Verify =
              verifyScheme(*S.P.W, S.P.SchemeTasks[2], SoloCfg, *S.P.L);
        });
    });
  }
  Pool.wait();

  MixResult R;
  std::vector<CoreStream> CaeStreams, DaeStreams;
  for (size_t I = 0; I != Mix.size(); ++I) {
    StreamSlot &S = Slots[I];
    MixStreamResult MS;
    MS.Name = S.P.W->Name;
    MS.OutputsMatch = S.CaeOut == S.DaeOut;
    MS.Verify = std::move(S.Verify);
    R.Streams.push_back(std::move(MS));
    // Co-runners are distinct address spaces: bias each stream far above any
    // footprint so they never falsely alias in the shared LLC (the bias
    // stays well inside the trace encoding's 62-bit address space).
    std::uint64_t Bias = static_cast<std::uint64_t>(I) << 40;
    CaeStreams.push_back({&S.CaeProfile, &S.CaeTraces, Bias});
    DaeStreams.push_back({&S.DaeProfile, &S.DaeTraces, Bias});
  }

  auto Price = [&](const std::vector<CoreStream> &Streams,
                   runtime::TimelinePolicy P) {
    runtime::TimelineConfig TC;
    TC.Policy = P;
    TC.TransitionNs = MC.TransitionNs;
    TC.Governor = MC.Governor;
    return interleaveTimeline(Streams, Cfg, TC);
  };
  R.CaeMax = Price(CaeStreams, runtime::TimelinePolicy::FixedMax);
  R.CaeOndemand = Price(CaeStreams, runtime::TimelinePolicy::Ondemand);
  R.CaeConservative = Price(CaeStreams, runtime::TimelinePolicy::Conservative);
  R.DaeMinMax = Price(DaeStreams, runtime::TimelinePolicy::DaeMinMax);
  R.DaeOracle = Price(DaeStreams, runtime::TimelinePolicy::OracleEdp);
  return R;
}

runtime::RunReport harness::priceCaeMax(const AppResult &R,
                                        const MachineConfig &Cfg,
                                        double TransitionNs) {
  return evaluateCoupled(R.Cae, Cfg, Cfg.fmax(), TransitionNs);
}

EvalConfig harness::minMaxConfig(const MachineConfig &Cfg,
                                 double TransitionNs) {
  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Cfg.fmin();
  MinMax.ExecFreqGHz = Cfg.fmax();
  MinMax.TransitionNs = TransitionNs;
  return MinMax;
}

EvalConfig harness::optimalEdpConfig(double TransitionNs) {
  EvalConfig Opt;
  Opt.Policy = FreqPolicy::OptimalEdp;
  Opt.TransitionNs = TransitionNs;
  return Opt;
}

Fig3Row harness::priceFig3(const AppResult &R, const MachineConfig &Cfg,
                           double TransitionNs) {
  RunReport Base = priceCaeMax(R, Cfg, TransitionNs);

  auto Norm = [&](const RunReport &Rep, double Out[3]) {
    Out[0] = Rep.TimeSec / Base.TimeSec;
    Out[1] = Rep.EnergyJ / Base.EnergyJ;
    Out[2] = Rep.EdpJs / Base.EdpJs;
  };

  EvalConfig Opt = optimalEdpConfig(TransitionNs);
  EvalConfig MinMax = minMaxConfig(Cfg, TransitionNs);

  Fig3Row Row;
  Row.Name = R.Name;
  Norm(evaluate(R.Cae, Cfg, Opt), Row.CaeOpt);
  Norm(evaluate(R.Manual, Cfg, MinMax), Row.ManualMinMax);
  Norm(evaluate(R.Manual, Cfg, Opt), Row.ManualOpt);
  Norm(evaluate(R.Auto, Cfg, MinMax), Row.AutoMinMax);
  Norm(evaluate(R.Auto, Cfg, Opt), Row.AutoOpt);
  return Row;
}

std::vector<Fig4Point> harness::priceFig4(const AppResult &R,
                                          const MachineConfig &Cfg,
                                          Scheme Which, double TransitionNs) {
  const RunProfile &P = Which == Scheme::Cae      ? R.Cae
                        : Which == Scheme::Manual ? R.Manual
                                                  : R.Auto;
  std::vector<Fig4Point> Series;
  for (double F : Cfg.FrequenciesGHz) {
    EvalConfig E;
    E.Policy = FreqPolicy::Fixed;
    // DAE: access pinned at fmin, execute swept (Figure 4's x axis); CAE:
    // the whole task swept.
    E.AccessFreqGHz = Which == Scheme::Cae ? F : Cfg.fmin();
    E.ExecFreqGHz = F;
    E.TransitionNs = TransitionNs;
    RunReport Rep = evaluate(P, Cfg, E);

    Fig4Point Pt;
    Pt.FreqGHz = F;
    Pt.PrefetchSec = Rep.AccessTimeSec;
    Pt.TaskSec = Rep.ExecuteTimeSec;
    Pt.OsiSec = Rep.OsiTimeSec;
    // Energy split proportional to the per-bucket core time at that
    // bucket's frequency; a faithful split would need per-phase bookkeeping,
    // so approximate by time share (the buckets' power levels are close).
    double TotalSec = Pt.PrefetchSec + Pt.TaskSec + Pt.OsiSec;
    double Scale = TotalSec > 0.0 ? Rep.EnergyJ / TotalSec : 0.0;
    Pt.PrefetchJ = Pt.PrefetchSec * Scale;
    Pt.TaskJ = Pt.TaskSec * Scale;
    Pt.OsiJ = Pt.OsiSec * Scale;
    Series.push_back(Pt);
  }
  return Series;
}

std::set<const ir::Instruction *>
harness::profileColdLoads(Workload &W, const MachineConfig &Cfg,
                          double MissRateThreshold) {
  // Match the generator's precondition: tasks are optimized before access
  // phases are derived, so the profiled instruction identities are the ones
  // the skeleton generator will clone.
  pm::FunctionAnalysisManager FAM;
  for (ir::Function *F : W.taskFunctions())
    passes::optimizeFunction(*F, FAM);

  Loader L(*W.M);
  Memory Mem;
  W.Init(Mem, L);
  CacheHierarchy Caches(Cfg, 1);
  Interpreter Interp(Cfg, Mem, Caches, L);
  sim::LoadStatsMap Stats;
  Interp.setLoadStats(&Stats);
  for (const Task &T : W.Tasks)
    Interp.run(*T.Execute, 0, T.Args);

  std::set<const ir::Instruction *> Cold;
  for (const auto &[Inst, S] : Stats)
    if (S.missRate() < MissRateThreshold)
      Cold.insert(Inst);
  return Cold;
}
