//===- harness/Harness.cpp - Paper experiment driver -------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

#include "analysis/TaskAnalysis.h"
#include "passes/Passes.h"
#include "sim/Interpreter.h"
#include "ir/Function.h"
#include "ir/Module.h"

#include <cassert>
#include <set>

using namespace dae;
using namespace dae::harness;
using namespace dae::runtime;
using namespace dae::sim;
using dae::workloads::Workload;

namespace {

/// Snapshot of the workload's output arrays.
std::vector<std::uint8_t> snapshotOutputs(const Workload &W, Memory &Mem,
                                          const Loader &L) {
  std::vector<std::uint8_t> Bytes;
  for (size_t G = 0; G != W.OutputGlobals.size(); ++G) {
    std::uint64_t Base = L.baseOf(W.OutputGlobals[G]);
    for (std::uint64_t Off = 0; Off != W.OutputSizes[G]; Off += 8) {
      std::int64_t V = Mem.loadI64(Base + Off);
      for (int B = 0; B != 8; ++B)
        Bytes.push_back(static_cast<std::uint8_t>(V >> (8 * B)));
    }
  }
  return Bytes;
}

/// Runs one scheme (fresh memory + init) and snapshots the outputs.
RunProfile runScheme(const Workload &W, const std::vector<Task> &Tasks,
                     const MachineConfig &Cfg, const Loader &L,
                     std::vector<std::uint8_t> &OutBytes) {
  Memory Mem;
  W.Init(Mem, L);
  TaskRuntime RT(Cfg, Mem, L);
  RunProfile P = RT.execute(Tasks);
  OutBytes = snapshotOutputs(W, Mem, L);
  return P;
}

} // namespace

AppResult harness::runApp(Workload &W, const MachineConfig &Cfg,
                          const DaeOptions *OptsOverride) {
  AppResult R;
  R.Name = W.Name;

  const DaeOptions &Opts = OptsOverride ? *OptsOverride : W.Opts;

  // Distinct task functions, in first-use order.
  std::vector<const ir::Function *> TaskFns;
  for (const Task &T : W.Tasks)
    if (std::find(TaskFns.begin(), TaskFns.end(), T.Execute) == TaskFns.end())
      TaskFns.push_back(T.Execute);

  // Generate the Auto DAE access phase per task function. Generation
  // optimizes the task body first (shared by all schemes).
  std::map<const ir::Function *, const ir::Function *> AutoAccess;
  unsigned AffineLoops = 0, TotalLoops = 0;
  for (const ir::Function *F : TaskFns) {
    AccessPhaseResult G = generateAccessPhase(
        *W.M, *const_cast<ir::Function *>(F), Opts);
    if (G.AccessFn)
      AutoAccess[F] = G.AccessFn;
    analysis::TaskClassification Cls = analysis::classifyTask(*F);
    AffineLoops += Cls.AffineLoops;
    TotalLoops += Cls.TotalLoops;
    R.Generation.push_back(std::move(G));
  }

  // Build the three task lists.
  std::vector<Task> CaeTasks = W.Tasks;
  std::vector<Task> ManualTasks = W.Tasks;
  std::vector<Task> AutoTasks = W.Tasks;
  for (size_t I = 0; I != W.Tasks.size(); ++I) {
    CaeTasks[I].Access = nullptr;
    auto MIt = W.ManualAccess.find(W.Tasks[I].Execute);
    ManualTasks[I].Access = MIt == W.ManualAccess.end() ? nullptr
                                                        : MIt->second;
    auto AIt = AutoAccess.find(W.Tasks[I].Execute);
    AutoTasks[I].Access = AIt == AutoAccess.end() ? nullptr : AIt->second;
  }

  // One simulation per scheme, each on freshly initialized data.
  Loader L(*W.M);
  std::vector<std::uint8_t> CaeOut, ManualOut, AutoOut;
  R.Cae = runScheme(W, CaeTasks, Cfg, L, CaeOut);
  R.Manual = runScheme(W, ManualTasks, Cfg, L, ManualOut);
  R.Auto = runScheme(W, AutoTasks, Cfg, L, AutoOut);
  R.OutputsMatch = CaeOut == ManualOut && CaeOut == AutoOut;

  // Table 1 row, measured from the Auto DAE profile at the Min/Max policy
  // (access at fmin as in the paper's TA methodology).
  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Cfg.fmin();
  MinMax.ExecFreqGHz = Cfg.fmax();
  MinMax.TransitionNs = 0.0;
  RunReport Rep = evaluate(R.Auto, Cfg, MinMax);
  R.Row.Name = W.Name;
  R.Row.AffineLoops = AffineLoops;
  R.Row.TotalLoops = TotalLoops;
  R.Row.NumTasks = W.Tasks.size();
  R.Row.AccessTimePercent = Rep.accessTimeFraction() * 100.0;
  R.Row.AccessTimeUs = Rep.avgAccessUs();
  return R;
}

runtime::RunReport harness::priceCaeMax(const AppResult &R,
                                        const MachineConfig &Cfg,
                                        double TransitionNs) {
  return evaluateCoupled(R.Cae, Cfg, Cfg.fmax(), TransitionNs);
}

Fig3Row harness::priceFig3(const AppResult &R, const MachineConfig &Cfg,
                           double TransitionNs) {
  RunReport Base = priceCaeMax(R, Cfg, TransitionNs);

  auto Norm = [&](const RunReport &Rep, double Out[3]) {
    Out[0] = Rep.TimeSec / Base.TimeSec;
    Out[1] = Rep.EnergyJ / Base.EnergyJ;
    Out[2] = Rep.EdpJs / Base.EdpJs;
  };

  EvalConfig Opt;
  Opt.Policy = FreqPolicy::OptimalEdp;
  Opt.TransitionNs = TransitionNs;

  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Cfg.fmin();
  MinMax.ExecFreqGHz = Cfg.fmax();
  MinMax.TransitionNs = TransitionNs;

  Fig3Row Row;
  Row.Name = R.Name;
  Norm(evaluate(R.Cae, Cfg, Opt), Row.CaeOpt);
  Norm(evaluate(R.Manual, Cfg, MinMax), Row.ManualMinMax);
  Norm(evaluate(R.Manual, Cfg, Opt), Row.ManualOpt);
  Norm(evaluate(R.Auto, Cfg, MinMax), Row.AutoMinMax);
  Norm(evaluate(R.Auto, Cfg, Opt), Row.AutoOpt);
  return Row;
}

std::vector<Fig4Point> harness::priceFig4(const AppResult &R,
                                          const MachineConfig &Cfg,
                                          Scheme Which, double TransitionNs) {
  const RunProfile &P = Which == Scheme::Cae      ? R.Cae
                        : Which == Scheme::Manual ? R.Manual
                                                  : R.Auto;
  std::vector<Fig4Point> Series;
  for (double F : Cfg.FrequenciesGHz) {
    EvalConfig E;
    E.Policy = FreqPolicy::Fixed;
    // DAE: access pinned at fmin, execute swept (Figure 4's x axis); CAE:
    // the whole task swept.
    E.AccessFreqGHz = Which == Scheme::Cae ? F : Cfg.fmin();
    E.ExecFreqGHz = F;
    E.TransitionNs = TransitionNs;
    RunReport Rep = evaluate(P, Cfg, E);

    Fig4Point Pt;
    Pt.FreqGHz = F;
    Pt.PrefetchSec = Rep.AccessTimeSec;
    Pt.TaskSec = Rep.ExecuteTimeSec;
    Pt.OsiSec = Rep.OsiTimeSec;
    // Energy split proportional to the per-bucket core time at that
    // bucket's frequency; a faithful split would need per-phase bookkeeping,
    // so approximate by time share (the buckets' power levels are close).
    double TotalSec = Pt.PrefetchSec + Pt.TaskSec + Pt.OsiSec;
    double Scale = TotalSec > 0.0 ? Rep.EnergyJ / TotalSec : 0.0;
    Pt.PrefetchJ = Pt.PrefetchSec * Scale;
    Pt.TaskJ = Pt.TaskSec * Scale;
    Pt.OsiJ = Pt.OsiSec * Scale;
    Series.push_back(Pt);
  }
  return Series;
}

std::set<const ir::Instruction *>
harness::profileColdLoads(Workload &W, const MachineConfig &Cfg,
                          double MissRateThreshold) {
  // Match the generator's precondition: tasks are optimized before access
  // phases are derived, so the profiled instruction identities are the ones
  // the skeleton generator will clone.
  std::set<const ir::Function *> TaskFns;
  for (const Task &T : W.Tasks)
    TaskFns.insert(T.Execute);
  for (const ir::Function *F : TaskFns)
    passes::optimizeFunction(*const_cast<ir::Function *>(F));

  Loader L(*W.M);
  Memory Mem;
  W.Init(Mem, L);
  CacheHierarchy Caches(Cfg, 1);
  Interpreter Interp(Cfg, Mem, Caches, L);
  sim::LoadStatsMap Stats;
  Interp.setLoadStats(&Stats);
  for (const Task &T : W.Tasks)
    Interp.run(*T.Execute, 0, T.Args);

  std::set<const ir::Instruction *> Cold;
  for (const auto &[Inst, S] : Stats)
    if (S.missRate() < MissRateThreshold)
      Cold.insert(Inst);
  return Cold;
}
