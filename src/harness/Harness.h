//===- harness/Harness.h - Paper experiment driver --------------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives one workload through the full pipeline: generate Auto DAE access
/// phases, simulate the three schemes (CAE / Manual DAE / Auto DAE) once
/// each, verify that all three produce bit-identical outputs (the access
/// phase is a pure prefetch), and price every paper configuration from the
/// profiles. One call yields everything Table 1, Figure 3, and Figure 4
/// need for that application.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_HARNESS_HARNESS_H
#define DAECC_HARNESS_HARNESS_H

#include "dae/AccessGenerator.h"
#include "runtime/Evaluator.h"
#include "runtime/Runtime.h"
#include "runtime/Timeline.h"
#include "verify/DifferentialChecker.h"
#include "workloads/Workload.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dae {

class GenerationMemo;

namespace harness {

/// Table 1 row for one application.
struct Table1Row {
  std::string Name;
  unsigned AffineLoops = 0;
  unsigned TotalLoops = 0;
  std::size_t NumTasks = 0;
  double AccessTimePercent = 0.0; ///< TA%.
  double AccessTimeUs = 0.0;      ///< TA (usec).
};

/// Oracle verdict for one (app, scheme); produced under --dae-verify /
/// DAECC_DAE_VERIFY (see verify/). Ran is false when verification was off
/// or the scheme has no decoupled tasks to check.
struct DaeVerifyResult {
  bool Ran = false;
  /// Static half: every access phase of the scheme passed AccessPhaseAudit.
  bool AuditPure = false;
  /// Static-half findings, one string per violation (empty when pure).
  std::vector<std::string> AuditViolations;
  /// Dynamic half: with/without-access differential + coverage/overshoot.
  verify::DifferentialResult Diff;
};

/// Outcome of the profile-guided refinement loop over one app's Auto DAE
/// scheme (--dae-profile-guided / DAECC_DAE_PG; see
/// dae/ProfileGuidedRefinement.h). Ran is false when refinement was off or
/// the scheme had no decoupled tasks. When Ran is true the Auto scheme's
/// simulated profile (AppResult::Auto) reflects the *refined* phases.
struct ProfileGuidedResult {
  bool Ran = false;
  /// Differential verdicts of the Auto scheme before and after refinement.
  /// When no task warranted regeneration, After == Before.
  verify::DifferentialResult Before, After;
  /// Every refined access phase passed the static purity audit.
  bool AuditPure = true;
  std::vector<std::string> AuditViolations;
  /// Task functions whose access phase was regenerated.
  std::size_t RefinedTasks = 0;
  /// One "<task>: <actions>" line per refined task function.
  std::vector<std::string> Actions;
  /// Min/Max-policy EDP of the Auto scheme before/after refinement (J*s);
  /// -1 when not priced.
  double EdpBefore = -1.0, EdpAfter = -1.0;
};

/// Everything measured for one application.
struct AppResult {
  std::string Name;

  // Raw per-scheme profiles (one simulation each).
  runtime::RunProfile Cae;
  runtime::RunProfile Manual;
  runtime::RunProfile Auto;

  // Per-task-function generation results (diagnostics).
  std::vector<AccessPhaseResult> Generation;

  Table1Row Row;

  /// True when CAE, Manual DAE and Auto DAE produced identical outputs.
  bool OutputsMatch = false;

  /// Byte snapshots of the workload's output globals after each scheme
  /// (little-endian, concatenated in OutputGlobals order). Kept so
  /// suite-level determinism can be asserted end to end.
  std::vector<std::uint8_t> CaeOutputs;
  std::vector<std::uint8_t> ManualOutputs;
  std::vector<std::uint8_t> AutoOutputs;

  /// Oracle verdicts for the two DAE schemes (Manual, Auto), populated only
  /// under --dae-verify.
  DaeVerifyResult ManualVerify;
  DaeVerifyResult AutoVerify;

  /// Profile-guided refinement outcome (under --dae-profile-guided).
  ProfileGuidedResult AutoPg;
};

/// Figure 3 bars for one application at one transition latency, normalized
/// to CAE at max frequency.
struct Fig3Row {
  std::string Name;
  // [time, energy, edp] per configuration.
  double CaeOpt[3];
  double ManualMinMax[3];
  double ManualOpt[3];
  double AutoMinMax[3];
  double AutoOpt[3];
};

/// Runs the full pipeline for one workload. \p Opts overrides the workload's
/// generator options when non-null. When \p Memo is non-null, access-phase
/// generation goes through it (results are identical either way; see
/// dae/GenerationMemo.h). \p DaeVerify additionally runs the correctness
/// oracle over the Manual and Auto schemes (see SuiteConfig::DaeVerify).
AppResult runApp(workloads::Workload &W, const sim::MachineConfig &Cfg,
                 const DaeOptions *OptsOverride = nullptr,
                 GenerationMemo *Memo = nullptr, bool DaeVerify = false,
                 bool DaeProfileGuided = false);

/// One unit of suite work: a workload plus optional per-item generator
/// options (the ablation drivers pass a different override per variant).
struct SuiteItem {
  workloads::Workload *W = nullptr;
  const DaeOptions *OptsOverride = nullptr;
};

/// Suite execution parameters.
struct SuiteConfig {
  /// Concurrent jobs (--jobs / DAECC_JOBS). 1 = sequential reference.
  unsigned Jobs = 1;
  /// Requested sim threads per job; the JobPool clamps the effective value
  /// so Jobs x threads never oversubscribes the host (see JobPool.h).
  unsigned SimThreads = 1;
  /// Shared generation memo; null disables memoization.
  GenerationMemo *Memo = nullptr;
  /// Run the DAE correctness oracle per (app, DAE scheme): static
  /// AccessPhaseAudit over every access phase plus the with/without-access
  /// DifferentialChecker (--dae-verify / DAECC_DAE_VERIFY). Results land in
  /// AppResult::ManualVerify / AutoVerify; simulated profiles and outputs
  /// are unaffected.
  bool DaeVerify = false;
  /// Run the profile-guided refinement loop per app before the scheme
  /// simulations (--dae-profile-guided / DAECC_DAE_PG): measure the Auto
  /// scheme's per-task coverage/overshoot via the differential checker's
  /// captures, regenerate the phases the planner flags, and simulate the
  /// Auto scheme with the refined phases. Results land in
  /// AppResult::AutoPg. Unlike DaeVerify this *changes* the Auto profile
  /// (that is its purpose); with the flag off nothing is touched.
  bool DaeProfileGuided = false;
};

/// Runs every item through the full per-app pipeline on a JobPool: each app
/// is prepared (generation) as one job that fans out its three scheme
/// simulations as further jobs, every simulation with a private Memory,
/// Loader and TaskRuntime. Results are returned in item order regardless of
/// completion order and are bit-identical to a sequential runApp loop for
/// every (Jobs, SimThreads) combination.
std::vector<AppResult> runSuite(const std::vector<SuiteItem> &Items,
                                const sim::MachineConfig &Cfg,
                                const SuiteConfig &SC);

/// One co-runner's outcome within a mix.
struct MixStreamResult {
  std::string Name;
  /// True when the stream's CAE and Auto DAE solo runs produced identical
  /// outputs (the DAE access phase must be a pure prefetch per core).
  bool OutputsMatch = false;
  /// Per-stream correctness oracle (under MixConfig::DaeVerify): the
  /// differential checker runs once per core's workload.
  DaeVerifyResult Verify;
};

/// A co-scheduled workload mix priced on the contention timeline under the
/// paper's policy and the reactive-governor baselines. CAE-based policies
/// interleave the coupled traces, DAE-based ones the Auto DAE traces — the
/// same stream set, so EDP ratios isolate the policy.
struct MixResult {
  std::vector<MixStreamResult> Streams;
  runtime::TimelineReport CaeMax;          ///< Performance governor base.
  runtime::TimelineReport CaeOndemand;     ///< Reactive ondemand baseline.
  runtime::TimelineReport CaeConservative; ///< Reactive conservative baseline.
  runtime::TimelineReport DaeMinMax;       ///< DAE naive min/max split.
  runtime::TimelineReport DaeOracle;       ///< DAE per-phase EDP oracle.
};

/// Mix execution parameters (see SuiteConfig for the shared fields).
struct MixConfig {
  unsigned Jobs = 1;
  unsigned SimThreads = 1;
  GenerationMemo *Memo = nullptr;
  /// Run the differential checker per stream (per core's workload).
  bool DaeVerify = false;
  /// Overrides MachineConfig::DvfsTransitionNs when >= 0.
  double TransitionNs = -1.0;
  runtime::GovernorParams Governor;
};

/// Runs \p Mix co-scheduled, one workload per core (Mix.size() must be in
/// [1, Cfg.NumCores]): each stream's solo CAE and Auto DAE runs execute on a
/// JobPool with retained traces (NumCores=1, so per-stream profiles are
/// sequential), then the retained traces are interleaved on the shared-LLC /
/// bandwidth-throttled timeline once per policy. Results are bit-identical
/// for every (Jobs, SimThreads) combination (MultiCoreDeterminismTest).
MixResult runMix(const std::vector<workloads::Workload *> &Mix,
                 const sim::MachineConfig &Cfg, const MixConfig &MC);

/// Prices the Figure 3 configurations from \p R at \p TransitionNs.
Fig3Row priceFig3(const AppResult &R, const sim::MachineConfig &Cfg,
                  double TransitionNs);

/// Per-frequency breakdown series for Figure 4: for each ladder frequency,
/// the (Prefetch, Task, OSI) time and energy of one scheme.
struct Fig4Point {
  double FreqGHz;
  double PrefetchSec, TaskSec, OsiSec;
  double PrefetchJ, TaskJ, OsiJ;
};
enum class Scheme { Cae, Manual, Auto };
std::vector<Fig4Point> priceFig4(const AppResult &R,
                                 const sim::MachineConfig &Cfg,
                                 Scheme Which, double TransitionNs);

/// Helper: evaluates one profile under the paper's named configurations.
runtime::RunReport priceCaeMax(const AppResult &R,
                               const sim::MachineConfig &Cfg,
                               double TransitionNs);

/// The naive Min/Max policy: access phases at fmin, execute at fmax.
runtime::EvalConfig minMaxConfig(const sim::MachineConfig &Cfg,
                                 double TransitionNs);

/// The paper's per-phase Optimal-EDP search (section 3.1 policy (b)).
runtime::EvalConfig optimalEdpConfig(double TransitionNs);

/// Profile-guided selective prefetching (the paper's proposed refinement,
/// sections 5.2.2/6.2.3): optimizes the workload's task functions, runs one
/// instrumented coupled execution, and returns the loads whose DRAM miss
/// rate stays below \p MissRateThreshold — candidates to skip when
/// prefetching (pass the result via DaeOptions::ColdLoads).
std::set<const ir::Instruction *>
profileColdLoads(workloads::Workload &W, const sim::MachineConfig &Cfg,
                 double MissRateThreshold = 0.02);

} // namespace harness
} // namespace dae

#endif // DAECC_HARNESS_HARNESS_H
