//===- harness/JobPool.h - Suite-level job pool -----------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-thread pool for suite-level parallelism: the experiment drivers
/// submit independent simulation jobs (one per app preparation or per-scheme
/// run) and the pool executes them on `--jobs=N` worker threads. The pool
/// owns the global concurrency budget: with N jobs each running a simulation
/// whose functional pass wants M host threads (PR 1's `--sim-threads`), it
/// clamps the per-job sim-thread allowance so N x M never oversubscribes the
/// host. Jobs may submit further jobs (an app job fans out its three scheme
/// runs).
///
/// With Jobs == 1 the pool spawns no threads at all: wait() drains the queue
/// inline in FIFO order, which is exactly the sequential reference the
/// determinism tests compare against.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_HARNESS_JOBPOOL_H
#define DAECC_HARNESS_JOBPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dae {
namespace harness {

/// Fixed-width pool of suite jobs with a shared sim-thread budget.
class JobPool {
public:
  /// \p Jobs concurrent jobs, each wanting \p SimThreadsPerJob functional
  /// threads. The effective per-job allowance is clamped so that
  /// Jobs * simThreadsPerJob() stays within the host budget (see
  /// hostThreadBudget()); with Jobs == 1 the request passes through.
  /// \p AlwaysThreaded spawns worker threads even for Jobs == 1: a
  /// long-lived service submits work without ever calling wait(), so the
  /// inline sequential drain would leave its queue untouched forever. The
  /// one-shot drivers keep the default (false) and the exact sequential
  /// reference semantics with it.
  JobPool(unsigned Jobs, unsigned SimThreadsPerJob,
          bool AlwaysThreaded = false);
  ~JobPool();
  JobPool(const JobPool &) = delete;
  JobPool &operator=(const JobPool &) = delete;

  /// Sim threads each job's TaskRuntime should use.
  unsigned simThreadsPerJob() const { return SimThreads; }
  unsigned jobs() const { return NumJobs; }

  /// Enqueues a job. Safe to call from inside a running job.
  void submit(std::function<void()> Job);

  /// Blocks until the queue is empty and no job is running. With one job,
  /// this is where the queue is drained (inline, FIFO).
  void wait();

  /// Host threads available to the whole suite: DAECC_HOST_THREADS when set,
  /// otherwise std::thread::hardware_concurrency() — which the standard
  /// allows to return 0 ("not computable"); that is mapped to 1 here so no
  /// caller ever sees a zero budget.
  static unsigned hostThreadBudget();

  /// Pure clamp behind simThreadsPerJob(): the sim threads each of \p Jobs
  /// concurrent jobs gets from \p HostBudget, given a request of
  /// \p SimThreadsPerJob. Total never exceeds max(Jobs, HostBudget); every
  /// job always gets at least one thread — including on exotic hosts where
  /// the reported budget is 0, which can neither divide by zero nor clamp
  /// the allowance to 0 (the latent hardware_concurrency()==0 bug).
  static unsigned effectiveSimThreads(unsigned Jobs, unsigned SimThreadsPerJob,
                                      unsigned HostBudget);

private:
  void workerLoop();

  unsigned NumJobs;
  unsigned SimThreads;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllIdle;
  std::deque<std::function<void()>> Queue;
  unsigned Running = 0;
  bool Quit = false;
  std::vector<std::thread> Workers;
};

} // namespace harness
} // namespace dae

#endif // DAECC_HARNESS_JOBPOOL_H
