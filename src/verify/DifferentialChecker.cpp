//===- verify/DifferentialChecker.cpp - Dynamic DAE oracle ----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/DifferentialChecker.h"

#include <algorithm>

using namespace dae;
using namespace dae::verify;
using namespace dae::runtime;

namespace {

/// Byte snapshot of the named output arrays (same layout as the harness'
/// output comparison: little-endian 8-byte words).
std::vector<std::uint8_t> snapshotOutputs(const DifferentialSpec &Spec,
                                          sim::Memory &Mem,
                                          const sim::Loader &L) {
  std::vector<std::uint8_t> Bytes;
  for (size_t G = 0; G != Spec.OutputGlobals.size(); ++G) {
    std::uint64_t Base = L.baseOf(Spec.OutputGlobals[G]);
    for (std::uint64_t Off = 0; Off != Spec.OutputSizes[G]; Off += 8) {
      std::int64_t V = Mem.loadI64(Base + Off);
      for (int B = 0; B != 8; ++B)
        Bytes.push_back(static_cast<std::uint8_t>(V >> (8 * B)));
    }
  }
  return Bytes;
}

bool containsLine(const std::vector<std::uint64_t> &SortedLines,
                  std::uint64_t Line) {
  return std::binary_search(SortedLines.begin(), SortedLines.end(), Line);
}

} // namespace

DifferentialResult
DifferentialChecker::check(const std::vector<Task> &Tasks) const {
  DifferentialResult R;
  R.TotalTasks = Tasks.size();

  // Run 1: with access phases, capturing what each phase touched.
  RunCapture With;
  std::uint64_t HashWith;
  std::vector<std::uint8_t> OutWith;
  {
    sim::Memory Mem;
    Spec.Init(Mem, L);
    TaskRuntime RT(Cfg, Mem, L);
    RT.execute(Tasks, /*RunAccess=*/true, &With);
    HashWith = Mem.imageHash();
    OutWith = snapshotOutputs(Spec, Mem, L);
  }

  // Run 2: access phases suppressed — the miss baseline and the reference
  // memory image a pure prefetcher must reproduce bit for bit.
  RunCapture Without;
  std::uint64_t HashWithout;
  std::vector<std::uint8_t> OutWithout;
  {
    sim::Memory Mem;
    Spec.Init(Mem, L);
    TaskRuntime RT(Cfg, Mem, L);
    RT.execute(Tasks, /*RunAccess=*/false, &Without);
    HashWithout = Mem.imageHash();
    OutWithout = snapshotOutputs(Spec, Mem, L);
  }

  R.MemoryMatch = HashWith == HashWithout;
  R.OutputsMatch = OutWith == OutWithout;

  // The scheme's access-phase footprint: every line any decoupled task's
  // access phase touched (the gate metric's reference set).
  std::vector<std::uint64_t> Footprint;
  for (const TaskCapture &W : With.Tasks)
    if (W.HasAccess)
      Footprint.insert(Footprint.end(), W.Access.Lines.begin(),
                       W.Access.Lines.end());
  std::sort(Footprint.begin(), Footprint.end());
  Footprint.erase(std::unique(Footprint.begin(), Footprint.end()),
                  Footprint.end());

  // Coverage & overshoot, matched per original task index.
  for (std::size_t I = 0; I != Tasks.size(); ++I) {
    const TaskCapture &W = With.Tasks[I];
    if (!W.HasAccess)
      continue;
    ++R.DecoupledTasks;

    for (std::uint64_t Miss : Without.Tasks[I].Execute.MissLines) {
      ++R.BaselineExecMisses;
      if (containsLine(Footprint, Miss))
        ++R.CoveredMisses;
      if (containsLine(W.Access.Lines, Miss))
        ++R.StrictCoveredMisses;
    }

    R.PrefetchedLines += W.Access.Lines.size();
    for (std::uint64_t Line : W.Access.Lines)
      if (!containsLine(W.Execute.Lines, Line))
        ++R.UnusedPrefetchedLines;
  }
  return R;
}
