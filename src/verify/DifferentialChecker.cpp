//===- verify/DifferentialChecker.cpp - Dynamic DAE oracle ----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/DifferentialChecker.h"

#include <algorithm>

using namespace dae;
using namespace dae::verify;
using namespace dae::runtime;

namespace {

/// Byte snapshot of the named output arrays (same layout as the harness'
/// output comparison: little-endian 8-byte words).
std::vector<std::uint8_t> snapshotOutputs(const DifferentialSpec &Spec,
                                          sim::Memory &Mem,
                                          const sim::Loader &L) {
  std::vector<std::uint8_t> Bytes;
  for (size_t G = 0; G != Spec.OutputGlobals.size(); ++G) {
    std::uint64_t Base = L.baseOf(Spec.OutputGlobals[G]);
    for (std::uint64_t Off = 0; Off != Spec.OutputSizes[G]; Off += 8) {
      std::int64_t V = Mem.loadI64(Base + Off);
      for (int B = 0; B != 8; ++B)
        Bytes.push_back(static_cast<std::uint8_t>(V >> (8 * B)));
    }
  }
  return Bytes;
}

} // namespace

DifferentialResult
DifferentialChecker::check(const std::vector<Task> &Tasks,
                           std::vector<TaskObservation> *Observations,
                           RunProfile *WithProfile) const {
  DifferentialResult R;
  R.TotalTasks = Tasks.size();

  // Run 1: with access phases, capturing what each phase touched.
  RunCapture With;
  std::uint64_t HashWith;
  std::vector<std::uint8_t> OutWith;
  {
    sim::Memory Mem;
    Spec.Init(Mem, L);
    TaskRuntime RT(Cfg, Mem, L);
    RunProfile P = RT.execute(Tasks, /*RunAccess=*/true, &With);
    if (WithProfile)
      *WithProfile = std::move(P);
    HashWith = Mem.imageHash();
    OutWith = snapshotOutputs(Spec, Mem, L);
  }

  // Run 2: access phases suppressed — the miss baseline and the reference
  // memory image a pure prefetcher must reproduce bit for bit.
  RunCapture Without;
  std::uint64_t HashWithout;
  std::vector<std::uint8_t> OutWithout;
  {
    sim::Memory Mem;
    Spec.Init(Mem, L);
    TaskRuntime RT(Cfg, Mem, L);
    RT.execute(Tasks, /*RunAccess=*/false, &Without);
    HashWithout = Mem.imageHash();
    OutWithout = snapshotOutputs(Spec, Mem, L);
  }

  R.MemoryMatch = HashWith == HashWithout;
  R.OutputsMatch = OutWith == OutWithout;

  // Per-task coverage & overshoot via the capture->profile bridge; the
  // scheme verdict is the sum over decoupled tasks.
  std::vector<TaskObservation> Obs = observeCaptures(With, Without);
  for (const TaskObservation &O : Obs) {
    if (!O.HasAccess)
      continue;
    ++R.DecoupledTasks;
    R.BaselineExecMisses += O.BaselineMisses;
    R.CoveredMisses += O.FootprintCoveredMisses;
    R.StrictCoveredMisses += O.StrictCoveredMisses;
    R.PrefetchedLines += O.PrefetchedLines;
    R.UnusedPrefetchedLines += O.UnusedPrefetchedLines;
  }
  if (Observations)
    *Observations = std::move(Obs);
  return R;
}
