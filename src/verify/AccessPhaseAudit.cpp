//===- verify/AccessPhaseAudit.cpp - Static prefetch-purity proof ---------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/AccessPhaseAudit.h"

#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Printer.h"
#include "pm/Analyses.h"
#include "support/Casting.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace dae;
using namespace dae::verify;

std::string AuditReport::str() const {
  std::string S;
  for (const AuditViolation &V : Violations) {
    S += "  " + V.Reason;
    if (V.Inst)
      S += ": " + ir::printInstruction(*V.Inst);
    S += "\n";
  }
  return S;
}

AuditReport verify::auditAccessPhase(ir::Function &F,
                                     pm::FunctionAnalysisManager &FAM) {
  AuditReport Report;

  // Observable effects. The IR has no stack allocation, so there is no
  // "private memory" a store could legally target: any surviving store (or
  // any call, whose effects are not provable here) breaks purity.
  for (const auto &BB : F) {
    for (const auto &I : *BB) {
      if (isa<ir::StoreInst>(I.get()))
        Report.Violations.push_back(
            {I.get(), "store survives in access phase"});
      else if (isa<ir::CallInst>(I.get()))
        Report.Violations.push_back(
            {I.get(), "call with unprovable side effects in access phase"});
    }
  }

  // Termination. A canonical loop (recognized IV, `iv < bound` exit) with a
  // constant positive step terminates for every bound value, including
  // bounds loaded at run time; anything else is not provably terminating.
  const analysis::LoopInfo &LI = FAM.getResult<pm::LoopAnalysis>(F);
  for (const auto &L : LI.loops()) {
    if (!L->isCanonical()) {
      Report.Violations.push_back(
          {L->getHeader()->empty() ? nullptr : L->getHeader()->front(),
           strfmt("loop at '%s' has no recognized induction "
                  "variable/bound (termination unprovable)",
                  L->getHeader()->getName().c_str())});
      continue;
    }
    if (L->getStep() <= 0)
      Report.Violations.push_back(
          {L->getInductionVariable(),
           strfmt("loop at '%s' has non-positive step %lld "
                  "(termination unprovable)",
                  L->getHeader()->getName().c_str(),
                  static_cast<long long>(L->getStep()))});
  }

  return Report;
}

pm::PreservedAnalyses
AccessPhaseAuditPass::run(ir::Function &F, pm::FunctionAnalysisManager &FAM) {
  Report = auditAccessPhase(F, FAM);
  return pm::PreservedAnalyses::all();
}

void verify::auditGenerated(ir::Function &F, const char *Context) {
  pm::FunctionAnalysisManager FAM;
  AuditReport Report = auditAccessPhase(F, FAM);
  if (Report.pure())
    return;
  std::fprintf(stderr,
               "daecc: access-phase purity audit failed after %s in '%s':\n%s",
               Context, F.getName().c_str(), Report.str().c_str());
  std::fprintf(stderr, "%s\n", ir::printFunction(F).c_str());
  std::abort();
}
