//===- verify/AccessPhaseAudit.h - Static prefetch-purity proof -*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static half of the DAE correctness oracle: a structural proof that an
/// access phase is a pure prefetcher. The paper's premise (section 5.2.2)
/// is that the generated access phase has no observable effect — it may only
/// warm the cache — so the audit rejects any function that:
///
///   * contains a store — the IR has no private (stack) memory, so every
///     surviving store writes program-visible memory;
///   * contains a call — after mandatory inlining no call may remain, and a
///     callee's side effects are not provable here;
///   * contains a loop that is not provably terminating: every loop must be
///     canonical (recognized induction variable and `iv < bound` exit test)
///     with a constant positive step, which terminates for any bound value
///     the task's parameters produce.
///
/// `auditAccessPhase` returns the violation list for tests and tooling;
/// `AccessPhaseAuditPass` is the pm-pass wrapper; `auditGenerated` is the
/// always-on hook the generators call next to pm::verifyGenerated — it
/// aborts with the offending instructions and a dump of the function.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_VERIFY_ACCESSPHASEAUDIT_H
#define DAECC_VERIFY_ACCESSPHASEAUDIT_H

#include "pm/Pass.h"

#include <string>
#include <vector>

namespace dae {
namespace ir {
class Function;
class Instruction;
} // namespace ir

namespace verify {

/// One reason an access phase is not provably pure.
struct AuditViolation {
  /// The offending instruction; null for function-shape findings (e.g. a
  /// loop whose header carries no single offending instruction).
  const ir::Instruction *Inst = nullptr;
  std::string Reason;
};

/// Result of auditing one access phase.
struct AuditReport {
  std::vector<AuditViolation> Violations;

  /// True when the function is structurally provably prefetch-pure.
  bool pure() const { return Violations.empty(); }

  /// Human-readable multi-line rendering ("  <reason>: <instruction>").
  std::string str() const;
};

/// Audits \p F as an access phase. Uses (and caches into) \p FAM's loop
/// analysis; never mutates the function.
AuditReport auditAccessPhase(ir::Function &F, pm::FunctionAnalysisManager &FAM);

/// pm-pass wrapper so the audit can ride any pipeline. Analysis-only: always
/// preserves everything. Violations are reported through report() after
/// run(); the pass never aborts by itself.
class AccessPhaseAuditPass : public pm::FunctionPass {
public:
  const char *name() const override { return "access-phase-audit"; }
  pm::PreservedAnalyses run(ir::Function &F,
                            pm::FunctionAnalysisManager &FAM) override;

  /// Report of the most recent run().
  const AuditReport &report() const { return Report; }

private:
  AuditReport Report;
};

/// Always-on generation hook (the static-oracle sibling of
/// pm::verifyGenerated): audits \p F and aborts with the violation list and
/// a dump of the function when it is not provably pure. \p Context names the
/// generation step for the diagnostic.
void auditGenerated(ir::Function &F, const char *Context);

} // namespace verify
} // namespace dae

#endif // DAECC_VERIFY_ACCESSPHASEAUDIT_H
