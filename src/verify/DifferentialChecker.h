//===- verify/DifferentialChecker.h - Dynamic DAE oracle --------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the DAE correctness oracle. For one task list it runs
/// the simulation twice from identically initialized memory — once with the
/// access phases, once with them suppressed — and checks:
///
///   * purity: the two runs leave bit-identical program-visible memory
///     (sim::Memory::imageHash over nonzero pages, so pages an access phase
///     merely touches do not count) and bit-identical output arrays;
///   * coverage: the fraction of the *baseline* run's execute-phase demand-
///     load DRAM misses whose cache lines appear in the scheme's access-phase
///     footprint — the union of lines touched by any decoupled task's access
///     phase. A generator bug that loses an access class (a hull that drops
///     an array) removes those lines from *every* phase and tanks this
///     number; intended per-task gaps do not. The stricter per-task match
///     (miss line in the *same task's* access lines) is reported alongside
///     as strictCoverage — it additionally charges the generator for reads
///     §5.2.2 deliberately discards (conditional arms, e.g. FFT's bit-
///     reverse swap), so it is diagnostic, not a gate. Store (RFO) misses
///     are excluded from both: a prefetch-only phase cannot cover a write
///     allocation (the paper's LBM discussion, §6.1);
///   * overshoot: the fraction of access-phase-touched lines the owning
///     task's execute phase never uses — prefetch wasted on memory the task
///     does not read.
///
/// Tasks without an access phase (non-decoupled) contribute to neither
/// coverage population. A task list with no decoupled tasks reports
/// coverage 1.0 and overshoot 0.0.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_VERIFY_DIFFERENTIALCHECKER_H
#define DAECC_VERIFY_DIFFERENTIALCHECKER_H

#include "runtime/CaptureObservation.h"
#include "runtime/Runtime.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dae {
namespace verify {

/// What the checker needs to re-create a run: the workload's memory
/// initializer and its output-array names/sizes (a structural subset of
/// workloads::Workload, so verify does not depend on the workloads library).
struct DifferentialSpec {
  /// Fills a fresh Memory with the workload's initial data.
  std::function<void(sim::Memory &, const sim::Loader &)> Init;
  /// Output array globals (by name) and their sizes in bytes; compared
  /// byte-for-byte between the two runs.
  std::vector<std::string> OutputGlobals;
  std::vector<std::uint64_t> OutputSizes;
};

/// Verdict and counters of one differential check.
struct DifferentialResult {
  bool MemoryMatch = false;  ///< imageHash identical with/without access.
  bool OutputsMatch = false; ///< Output arrays byte-identical.

  /// Execute-phase demand-load DRAM-miss events in the baseline (access
  /// suppressed) run, decoupled tasks only; the coverage denominator.
  std::uint64_t BaselineExecMisses = 0;
  /// Of those, events whose line any access phase of the scheme touched
  /// (footprint coverage numerator).
  std::uint64_t CoveredMisses = 0;
  /// Of those, events whose line the *same task's* access phase touched
  /// (strict per-task numerator; <= CoveredMisses).
  std::uint64_t StrictCoveredMisses = 0;
  /// Unique lines touched by access phases (summed per task).
  std::uint64_t PrefetchedLines = 0;
  /// Of those, lines the owning task's execute phase never touched.
  std::uint64_t UnusedPrefetchedLines = 0;

  std::size_t DecoupledTasks = 0;
  std::size_t TotalTasks = 0;

  /// True when the access phases had no observable effect.
  bool pure() const { return MemoryMatch && OutputsMatch; }
  /// Fraction of baseline execute misses inside the scheme's access-phase
  /// footprint; 1.0 when there were no baseline misses to cover.
  double coverage() const {
    return BaselineExecMisses == 0
               ? 1.0
               : static_cast<double>(CoveredMisses) / BaselineExecMisses;
  }
  /// Fraction of baseline execute misses covered by the same task's own
  /// access phase (diagnostic; penalizes §5.2.2's intended discards).
  double strictCoverage() const {
    return BaselineExecMisses == 0
               ? 1.0
               : static_cast<double>(StrictCoveredMisses) / BaselineExecMisses;
  }
  /// Fraction of prefetched lines never used by their execute phase.
  double overshoot() const {
    return PrefetchedLines == 0 ? 0.0
                                : static_cast<double>(UnusedPrefetchedLines) /
                                      PrefetchedLines;
  }
};

/// Runs the with/without-access differential over one task list.
class DifferentialChecker {
public:
  DifferentialChecker(const sim::MachineConfig &Cfg, const sim::Loader &L,
                      DifferentialSpec Spec)
      : Cfg(Cfg), L(L), Spec(std::move(Spec)) {}

  /// Executes \p Tasks twice (with and without access phases) from freshly
  /// initialized memory and returns the verdict. Thread-compatible: uses
  /// only private Memory instances, so concurrent checks over shared
  /// read-only modules are safe (the suite engine runs one per scheme job).
  ///
  /// When \p Observations is non-null it receives the per-task
  /// coverage/overshoot breakdown (index-aligned with \p Tasks) that the
  /// whole-scheme counters are summed from — the feedback signal the
  /// profile-guided refinement loop persists per task fingerprint. When
  /// \p WithProfile is non-null it receives the with-access run's
  /// RunProfile, so callers pricing the scheme (EDP before/after
  /// refinement) need no extra simulation.
  DifferentialResult
  check(const std::vector<runtime::Task> &Tasks,
        std::vector<runtime::TaskObservation> *Observations = nullptr,
        runtime::RunProfile *WithProfile = nullptr) const;

private:
  const sim::MachineConfig &Cfg;
  const sim::Loader &L;
  DifferentialSpec Spec;
};

} // namespace verify
} // namespace dae

#endif // DAECC_VERIFY_DIFFERENTIALCHECKER_H
