//===- runtime/Runtime.h - DAE task runtime ---------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The task-based runtime of section 3.1: per-core work-stealing deques,
/// access phase executed immediately before the execute phase on the same
/// core, per-phase DVFS applied by the evaluator afterwards. Simulation
/// runs once per scheme; the frequency dimension is priced analytically from
/// the collected profiles (see sim/PhaseStats.h).
///
/// The engine itself is host-parallel: each wave's functional execution fans
/// out over MachineConfig::SimThreads worker threads, while cache timing is
/// replayed single-threaded in schedule order from recorded access traces,
/// so RunProfiles are bit-identical for every thread count. With
/// MachineConfig::ReplayOverlap (the default), the two passes pipeline:
/// wave N replays on a dedicated thread while wave N+1 executes
/// functionally — the replay thread owns all timing state and consumes
/// waves strictly in order, so results are unchanged (see DESIGN.md,
/// "Host-parallel simulation" and "Pipelined replay").
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_RUNTIME_H
#define DAECC_RUNTIME_RUNTIME_H

#include "runtime/Task.h"
#include "sim/CacheSim.h"
#include "sim/MachineConfig.h"
#include "sim/Memory.h"

namespace dae {

namespace ir {
class Module;
}

namespace runtime {

/// Cache-line-granular record of one simulated phase, collected during the
/// timing replay when the caller asks for it (the DAE correctness oracle;
/// see verify/DifferentialChecker.h). Lines are byte addresses divided by
/// RunCapture::LineBytes.
struct PhaseCapture {
  /// Unique lines touched by the phase, sorted ascending.
  std::vector<std::uint64_t> Lines;
  /// One entry per DRAM-missing demand *load*, in replay order —
  /// multiplicity is meaningful. Prefetches are excluded (not demand
  /// misses), and so are store (RFO) misses: a prefetch-only access phase
  /// cannot cover a write allocation, so they are not part of the coverage
  /// population (see verify/DifferentialChecker.h).
  std::vector<std::uint64_t> MissLines;
};

/// Per-task capture, indexed like the Tasks vector passed to execute().
struct TaskCapture {
  bool HasAccess = false;
  PhaseCapture Access, Execute;
};

/// Whole-run capture. Purely observational: requesting one changes no
/// simulated outcome (asserted by SnapshotTest's golden profiles).
struct RunCapture {
  /// Line granularity of every Lines/MissLines entry. Set by execute() to
  /// the (validated, power-of-two) L1 line size — the same granularity the
  /// cache model indexes sets with, so capture lines and simulated lines
  /// can never disagree.
  std::uint64_t LineBytes = 64;
  std::vector<TaskCapture> Tasks;
};

/// One task's retained traces and functional-pass stats, kept past the
/// run's own timing replay so a multi-core timeline (runtime/Timeline.h) can
/// re-replay them against a *shared* hierarchy later. Functional stats are
/// the pre-replay profile of each phase — instruction counts and
/// interpreter-charged compute cycles, before any cache hit cycles or memory
/// stalls — i.e. exactly the frequency-scalable work the timeline spreads
/// across the phase's trace events.
struct TaskTraces {
  bool HasAccess = false;
  sim::AccessTrace Access, Execute;
  sim::PhaseStats FunctionalAccess, FunctionalExecute;
};

/// Whole-run trace retention, requested via execute()'s Traces out-param.
/// Purely observational: the replay consumes each trace exactly as without
/// retention, it just moves the buffer here instead of recycling it to the
/// TracePool (so co-run mixes multiply live trace memory — see
/// DAECC_TRACE_POOL_MB). Entries are in replay schedule order, index-aligned
/// with the returned RunProfile::Tasks.
struct RunTraces {
  std::vector<TaskTraces> Tasks;
};

/// Executes task sets over the simulated machine.
class TaskRuntime {
public:
  /// \p Mem must already hold the workload's initialized data (see
  /// sim::Loader); caches start cold per run.
  TaskRuntime(const sim::MachineConfig &Cfg, sim::Memory &Mem,
              const sim::Loader &Loader);

  /// Runs \p Tasks to completion with work stealing. When \p RunAccess is
  /// false, access phases are skipped even if present (coupled execution of
  /// the same binaries). Returns the per-task profiles. When \p Capture is
  /// non-null it is filled with one TaskCapture per input task (original
  /// order), recording the cache lines each phase touched and demand-missed.
  /// When \p Traces is non-null, every task's traces and functional stats
  /// are retained there (replay order) instead of being recycled — the
  /// input a multi-core contention timeline interleaves later.
  RunProfile execute(const std::vector<Task> &Tasks, bool RunAccess = true,
                     RunCapture *Capture = nullptr,
                     RunTraces *Traces = nullptr);

private:
  const sim::MachineConfig &Cfg;
  sim::Memory &Mem;
  const sim::Loader &Loader;
};

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_RUNTIME_H
