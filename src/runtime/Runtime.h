//===- runtime/Runtime.h - DAE task runtime ---------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The task-based runtime of section 3.1: per-core work-stealing deques,
/// access phase executed immediately before the execute phase on the same
/// core, per-phase DVFS applied by the evaluator afterwards. Simulation
/// runs once per scheme; the frequency dimension is priced analytically from
/// the collected profiles (see sim/PhaseStats.h).
///
/// The engine itself is host-parallel: each wave's functional execution fans
/// out over MachineConfig::SimThreads worker threads, while cache timing is
/// replayed single-threaded in schedule order from recorded access traces,
/// so RunProfiles are bit-identical for every thread count (see DESIGN.md,
/// "Host-parallel simulation").
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_RUNTIME_H
#define DAECC_RUNTIME_RUNTIME_H

#include "runtime/Task.h"
#include "sim/CacheSim.h"
#include "sim/MachineConfig.h"
#include "sim/Memory.h"

namespace dae {

namespace ir {
class Module;
}

namespace runtime {

/// Executes task sets over the simulated machine.
class TaskRuntime {
public:
  /// \p Mem must already hold the workload's initialized data (see
  /// sim::Loader); caches start cold per run.
  TaskRuntime(const sim::MachineConfig &Cfg, sim::Memory &Mem,
              const sim::Loader &Loader);

  /// Runs \p Tasks to completion with work stealing. When \p RunAccess is
  /// false, access phases are skipped even if present (coupled execution of
  /// the same binaries). Returns the per-task profiles.
  RunProfile execute(const std::vector<Task> &Tasks, bool RunAccess = true);

private:
  const sim::MachineConfig &Cfg;
  sim::Memory &Mem;
  const sim::Loader &Loader;
};

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_RUNTIME_H
