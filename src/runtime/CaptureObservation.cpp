//===- runtime/CaptureObservation.cpp - Capture -> profile bridge ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CaptureObservation.h"

#include <algorithm>
#include <cassert>

using namespace dae;
using namespace dae::runtime;

namespace {

bool containsLine(const std::vector<std::uint64_t> &SortedLines,
                  std::uint64_t Line) {
  return std::binary_search(SortedLines.begin(), SortedLines.end(), Line);
}

} // namespace

std::vector<TaskObservation>
runtime::observeCaptures(const RunCapture &With, const RunCapture &Without) {
  assert(With.Tasks.size() == Without.Tasks.size() &&
         "captures recorded from different task lists");

  // The scheme's access-phase footprint: every line any decoupled task's
  // access phase touched (sorted unique, so per-miss membership is a binary
  // search).
  std::vector<std::uint64_t> Footprint;
  for (const TaskCapture &W : With.Tasks)
    if (W.HasAccess)
      Footprint.insert(Footprint.end(), W.Access.Lines.begin(),
                       W.Access.Lines.end());
  std::sort(Footprint.begin(), Footprint.end());
  Footprint.erase(std::unique(Footprint.begin(), Footprint.end()),
                  Footprint.end());

  std::vector<TaskObservation> Obs(With.Tasks.size());
  for (std::size_t I = 0; I != With.Tasks.size(); ++I) {
    TaskObservation &O = Obs[I];
    O.LineBytes = With.LineBytes;
    const TaskCapture &W = With.Tasks[I];
    if (!W.HasAccess)
      continue;
    O.HasAccess = true;

    for (std::uint64_t Miss : Without.Tasks[I].Execute.MissLines) {
      ++O.BaselineMisses;
      if (containsLine(Footprint, Miss))
        ++O.FootprintCoveredMisses;
      if (containsLine(W.Access.Lines, Miss))
        ++O.StrictCoveredMisses;
    }

    O.PrefetchedLines = W.Access.Lines.size();
    for (std::uint64_t Line : W.Access.Lines)
      if (!containsLine(W.Execute.Lines, Line))
        ++O.UnusedPrefetchedLines;
    O.ExecuteLines = W.Execute.Lines.size();
  }
  return Obs;
}
