//===- runtime/Evaluator.cpp - DVFS schedule pricing -------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Evaluator.h"

#include <cassert>
#include <cmath>
#include <vector>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

// Exact EDP ties break toward the *lower* frequency (the cheaper operating
// point), independent of the order the ladder happens to be listed in — a
// first-match scan would silently pick whichever tied frequency appeared
// first. On a homogeneous machine (empty CoreLadders) every core's ladder
// and voltage curve equal the machine-wide ones, so results are bit-exact
// with the pre-heterogeneous implementation.
double runtime::bestEdpFrequency(const PhaseStats &S, const MachineConfig &Cfg,
                                 const PowerModel &PM, unsigned Core) {
  double BestF = Cfg.fmaxOf(Core);
  double BestEdp = -1.0;
  for (double F : Cfg.ladder(Core)) {
    double T = S.timeNs(F) * 1e-9;
    double Edp = T * PM.phaseEnergy(Core, S, F);
    if (BestEdp < 0.0 || Edp < BestEdp || (Edp == BestEdp && F < BestF)) {
      BestEdp = Edp;
      BestF = F;
    }
  }
  return BestF;
}

RunReport runtime::evaluate(const RunProfile &Profile,
                            const MachineConfig &Cfg,
                            const EvalConfig &Eval) {
  PowerModel PM(Cfg);
  const double TransNs =
      Eval.TransitionNs >= 0.0 ? Eval.TransitionNs : Cfg.DvfsTransitionNs;

  RunReport R;
  R.NumTasks = Profile.Tasks.size();

  const bool IsGovernor = Eval.Policy == FreqPolicy::Ondemand ||
                          Eval.Policy == FreqPolicy::Conservative;
  std::vector<GovernorState> Governors;
  if (IsGovernor)
    for (unsigned C = 0; C != Profile.NumCores; ++C)
      Governors.emplace_back(Cfg, C,
                             Eval.Policy == FreqPolicy::Conservative,
                             Eval.Governor);

  std::vector<double> CoreBusyNs(Profile.NumCores, 0.0);
  std::vector<double> CoreEnergyJ(Profile.NumCores, 0.0);
  // Cores idle at their *own* ladder's top rung, not the machine-wide fmax:
  // on big.LITTLE a little core never ran at the big cores' fmax, so seeding
  // it there would miscount the first transition and price it off-ladder.
  std::vector<double> CoreFreq;
  CoreFreq.reserve(Profile.NumCores);
  for (unsigned C = 0; C != Profile.NumCores; ++C)
    CoreFreq.push_back(Cfg.fmaxOf(C));

  auto RunPhase = [&](unsigned Core, const PhaseStats &S, double FreqGHz,
                      bool IsAccess) {
    // Frequency switch: the transition happens (and is counted, and the
    // core's frequency tracked) whenever the policy changes frequency;
    // latency + static-only energy (section 6.1) are charged only when the
    // hardware transition takes time. Gating the whole block on TransNs used
    // to report 0 transitions and a stale CoreFreq for the ideal 0 ns case.
    if (std::abs(CoreFreq[Core] - FreqGHz) > 1e-9) {
      ++R.NumTransitions;
      if (TransNs > 0.0) {
        CoreBusyNs[Core] += TransNs;
        CoreEnergyJ[Core] +=
            PM.staticPowerPerCore(Core, FreqGHz) * TransNs * 1e-9;
        R.OsiTimeSec += TransNs * 1e-9;
      }
      CoreFreq[Core] = FreqGHz;
    }
    double TNs = S.timeNs(FreqGHz);
    CoreBusyNs[Core] += TNs;
    CoreEnergyJ[Core] += PM.phaseEnergy(Core, S, FreqGHz);
    (IsAccess ? R.AccessTimeSec : R.ExecuteTimeSec) += TNs * 1e-9;
    if (IsGovernor)
      Governors[Core].account(S.ComputeCycles / FreqGHz, TNs);
  };

  double IdleEnergyJ = 0.0;
  double MakespanNs = 0.0;

  // Runtime bookkeeping (dequeue/hand-off) is the same for every task; only
  // the frequency it is priced at varies, so build the stats once.
  PhaseStats Overhead;
  Overhead.ComputeCycles = Profile.PerTaskOverheadCycles;
  Overhead.Instructions =
      static_cast<std::uint64_t>(Profile.PerTaskOverheadCycles);

  // Process wave by wave: within a wave cores run their assigned phases;
  // the barrier advances every core to the wave's completion time, with
  // idle cores in their sleep state (section 3.1).
  size_t I = 0;
  while (I != Profile.Tasks.size()) {
    unsigned Wave = Profile.Tasks[I].Wave;
    std::vector<double> WaveBusyNs(Profile.NumCores, 0.0);
    for (; I != Profile.Tasks.size() && Profile.Tasks[I].Wave == Wave; ++I) {
      const TaskProfile &T = Profile.Tasks[I];
      unsigned Core = T.Core;
      double Before = CoreBusyNs[Core];
      if (T.HasAccess) {
        // Fixed-policy targets come from outside the machine model, so pin
        // them to this core's ladder range: a target above a little core's
        // fmax runs (and is priced) at that core's fmax, not the global one.
        double FA = Eval.Policy == FreqPolicy::OptimalEdp
                        ? bestEdpFrequency(T.Access, Cfg, PM, Core)
                        : IsGovernor ? Governors[Core].frequency()
                                     : Cfg.clampToLadder(Core,
                                                         Eval.AccessFreqGHz);
        RunPhase(Core, T.Access, FA, /*IsAccess=*/true);
      }
      double FE = Eval.Policy == FreqPolicy::OptimalEdp
                      ? bestEdpFrequency(T.Execute, Cfg, PM, Core)
                      : IsGovernor ? Governors[Core].frequency()
                                   : Cfg.clampToLadder(Core, Eval.ExecFreqGHz);
      RunPhase(Core, T.Execute, FE, /*IsAccess=*/false);

      // Runtime bookkeeping (dequeue/hand-off) at the execute frequency.
      double OverheadNs = Profile.PerTaskOverheadCycles / FE;
      CoreBusyNs[Core] += OverheadNs;
      CoreEnergyJ[Core] += PM.phaseEnergy(Core, Overhead, FE);
      R.OsiTimeSec += OverheadNs * 1e-9;
      WaveBusyNs[Core] += CoreBusyNs[Core] - Before;
    }
    // Barrier.
    double WaveEndNs = 0.0;
    for (double Busy : CoreBusyNs)
      WaveEndNs = std::max(WaveEndNs, Busy);
    for (unsigned C = 0; C != Profile.NumCores; ++C) {
      double IdleNs = WaveEndNs - CoreBusyNs[C];
      IdleEnergyJ += PM.sleepPowerPerCore(C) * IdleNs * 1e-9;
      R.OsiTimeSec += IdleNs * 1e-9;
      CoreBusyNs[C] = WaveEndNs;
      // Barrier idle reads as 0% utilization to a reactive governor.
      if (IsGovernor && IdleNs > 0.0)
        Governors[C].account(0.0, IdleNs);
    }
    MakespanNs = WaveEndNs;
  }

  double Energy = IdleEnergyJ;
  for (unsigned C = 0; C != Profile.NumCores; ++C)
    Energy += CoreEnergyJ[C];
  Energy += PM.uncorePower() * MakespanNs * 1e-9;

  R.TimeSec = MakespanNs * 1e-9;
  R.EnergyJ = Energy;
  R.EdpJs = R.TimeSec * R.EnergyJ;
  return R;
}

RunReport runtime::evaluateCoupled(const RunProfile &Profile,
                                   const MachineConfig &Cfg, double FreqGHz,
                                   double TransitionNs) {
  EvalConfig Eval;
  Eval.Policy = FreqPolicy::Fixed;
  Eval.AccessFreqGHz = FreqGHz;
  Eval.ExecFreqGHz = FreqGHz;
  Eval.TransitionNs = TransitionNs;
  return evaluate(Profile, Cfg, Eval);
}
