//===- runtime/CaptureObservation.h - Capture -> profile bridge -*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduces a pair of RunCaptures (one run with access phases, one with them
/// suppressed) to per-task coverage/overshoot observations — the feedback
/// signal of profiling-assisted DAE. The differential checker (verify/)
/// sums these into its whole-scheme verdict, and the profile-guided
/// refinement loop (dae/AccessProfile.h) persists them per task fingerprint
/// to decide which access phases to regenerate.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_CAPTUREOBSERVATION_H
#define DAECC_RUNTIME_CAPTUREOBSERVATION_H

#include "runtime/Runtime.h"

#include <cstdint>
#include <vector>

namespace dae {
namespace runtime {

/// One task instance's observed access-phase quality, index-aligned with the
/// task list the captures were recorded from. All line counts use
/// RunCapture::LineBytes granularity.
struct TaskObservation {
  /// The task ran decoupled (it had an access phase in the With run). All
  /// other fields are zero when false — non-decoupled tasks belong to
  /// neither coverage population.
  bool HasAccess = false;

  /// Execute-phase demand-load DRAM-miss events in the baseline (access
  /// suppressed) run; the coverage denominator. Event multiplicity counts.
  std::uint64_t BaselineMisses = 0;
  /// Of those, events whose line *any* access phase of the scheme touched.
  std::uint64_t FootprintCoveredMisses = 0;
  /// Of those, events whose line this task's *own* access phase touched.
  std::uint64_t StrictCoveredMisses = 0;

  /// Unique lines this task's access phase touched.
  std::uint64_t PrefetchedLines = 0;
  /// Of those, lines the task's execute phase never used.
  std::uint64_t UnusedPrefetchedLines = 0;

  /// Unique lines the execute phase touched (With run) — the phase's data
  /// footprint, the reuse-span signal the refinement loop compares against
  /// cache capacities.
  std::uint64_t ExecuteLines = 0;

  /// Line granularity of every count above.
  std::uint64_t LineBytes = 64;
};

/// Computes one TaskObservation per task from the two captures. \p With must
/// come from a run with access phases enabled, \p Without from the same task
/// list with them suppressed; the two must have the same task count (they
/// were recorded from the same list). The scheme-wide access footprint
/// (union over every decoupled task) is built internally for the
/// footprint-coverage numerator.
std::vector<TaskObservation> observeCaptures(const RunCapture &With,
                                             const RunCapture &Without);

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_CAPTUREOBSERVATION_H
