//===- runtime/Evaluator.h - DVFS schedule pricing --------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prices a DVFS schedule over a RunProfile: given per-phase frequency
/// choices (fixed, the naive Min/Max split, or the per-phase Optimal-EDP
/// search of section 3.1), computes makespan, energy, and EDP under the
/// section 3.2 power model, accounting for DVFS transition latency (static
/// energy only, no instructions — section 6.1) and runtime overhead/idle
/// (the O.S.I. bucket of Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_EVALUATOR_H
#define DAECC_RUNTIME_EVALUATOR_H

#include "runtime/Task.h"
#include "sim/MachineConfig.h"
#include "sim/PowerModel.h"

namespace dae {
namespace runtime {

/// How per-phase frequencies are chosen.
enum class FreqPolicy {
  /// Run every phase at the configured AccessFreqGHz / ExecFreqGHz.
  Fixed,
  /// Per phase, pick the ladder frequency minimizing that phase's local
  /// EDP (section 3.1 policy (b)).
  OptimalEdp,
};

/// Evaluation configuration.
struct EvalConfig {
  FreqPolicy Policy = FreqPolicy::Fixed;
  double AccessFreqGHz = 0.0; ///< Fixed policy: frequency for access phases.
  double ExecFreqGHz = 0.0;   ///< Fixed policy: frequency for execute/coupled.
  /// Overrides MachineConfig::DvfsTransitionNs when >= 0.
  double TransitionNs = -1.0;
};

/// Priced outcome of one run under one policy.
struct RunReport {
  double TimeSec = 0.0;   ///< Makespan.
  double EnergyJ = 0.0;
  double EdpJs = 0.0;     ///< Energy * Time.

  // Breakdown (summed over cores, in core-seconds) for Figure 4 / Table 1.
  double AccessTimeSec = 0.0;   ///< "Prefetch" bucket.
  double ExecuteTimeSec = 0.0;  ///< "Task" bucket.
  double OsiTimeSec = 0.0;      ///< Overhead + transitions + idle.

  std::size_t NumTasks = 0;
  std::size_t NumTransitions = 0;

  /// Average access-phase duration in microseconds (Table 1's TA column).
  double avgAccessUs() const {
    return NumTasks ? AccessTimeSec * 1e6 / static_cast<double>(NumTasks)
                    : 0.0;
  }
  /// Fraction of busy time spent in access phases (Table 1's TA%).
  double accessTimeFraction() const {
    double Busy = AccessTimeSec + ExecuteTimeSec;
    return Busy > 0.0 ? AccessTimeSec / Busy : 0.0;
  }
};

/// Prices \p Profile under \p Eval on machine \p Cfg.
RunReport evaluate(const RunProfile &Profile, const sim::MachineConfig &Cfg,
                   const EvalConfig &Eval);

/// Convenience: coupled run at a fixed frequency.
RunReport evaluateCoupled(const RunProfile &Profile,
                          const sim::MachineConfig &Cfg, double FreqGHz,
                          double TransitionNs = -1.0);

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_EVALUATOR_H
