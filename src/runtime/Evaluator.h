//===- runtime/Evaluator.h - DVFS schedule pricing --------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prices a DVFS schedule over a RunProfile: given per-phase frequency
/// choices (fixed, the naive Min/Max split, or the per-phase Optimal-EDP
/// search of section 3.1), computes makespan, energy, and EDP under the
/// section 3.2 power model, accounting for DVFS transition latency (static
/// energy only, no instructions — section 6.1) and runtime overhead/idle
/// (the O.S.I. bucket of Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_EVALUATOR_H
#define DAECC_RUNTIME_EVALUATOR_H

#include "runtime/Task.h"
#include "sim/MachineConfig.h"
#include "sim/PowerModel.h"

namespace dae {
namespace runtime {

/// How per-phase frequencies are chosen.
enum class FreqPolicy {
  /// Run every phase at the configured AccessFreqGHz / ExecFreqGHz.
  Fixed,
  /// Per phase, pick the ladder frequency minimizing that phase's local
  /// EDP (section 3.1 policy (b)).
  OptimalEdp,
  /// Reactive cpufreq-style "ondemand" baseline: sample utilization over a
  /// window and jump to fmax when busy, else pick the rung covering the
  /// measured load. Decisions lag the phases they react to — exactly the
  /// latency the paper's compiler-inserted switches avoid.
  Ondemand,
  /// Reactive cpufreq-style "conservative" baseline: like Ondemand but steps
  /// one ladder rung at a time in either direction.
  Conservative,
};

/// Sampling parameters of the reactive governors. Defaults follow cpufreq's
/// ondemand/conservative semantics with the sampling period scaled down to
/// the simulator's phase lengths (the same 1/16-style scaling as the cache
/// geometry): 50 us windows, 80% up-threshold, 20% down-threshold.
struct GovernorParams {
  double SampleUs = 50.0;
  double UpThreshold = 0.80;
  double DownThreshold = 0.20;
};

/// One core's reactive-governor state: utilization-window accumulation plus
/// the currently programmed frequency. Utilization is busy (compute) time
/// over wall time, so memory stalls read as idle — cpufreq's io_is_busy=0
/// view, which is precisely why reactive governors clock *down* during the
/// memory-bound access phases DAE wants prefetched at low frequency, but
/// only after the window has already elapsed at the wrong speed.
///
/// Shared by the evaluator (phase-granular accounting) and the multi-core
/// timeline (event-granular accounting); both observe decisions only at
/// phase starts, the granularity at which a frequency can take effect.
class GovernorState {
public:
  GovernorState(const sim::MachineConfig &Cfg, unsigned Core,
                bool Conservative, const GovernorParams &P)
      : Cfg(Cfg), Core(Core), Conservative(Conservative), P(P),
        FreqGHz(Cfg.fminOf(Core)) {}

  /// The frequency the governor currently has programmed. Governors start at
  /// the core's fmin — the ramp-up from cold is part of the reactive lag
  /// being measured.
  double frequency() const { return FreqGHz; }

  /// Accounts \p ComputeNs of busy time within \p WallNs of elapsed time,
  /// re-deciding the frequency once per completed sampling window. A span
  /// longer than one window triggers multiple decisions (at the span's
  /// uniform utilization), so e.g. Conservative ramps one rung per window
  /// across a long phase.
  ///
  /// Spans are consumed chronologically: each window's decision sees only
  /// the utilization of the wall time that actually fell inside it. A
  /// zero-wall span is unobservable (no time elapsed in which to sample) and
  /// is discarded outright — it must neither divide by zero nor smear stale
  /// compute into the next window. Likewise, a span reporting more compute
  /// than wall time saturates at 100% for its own duration only.
  void account(double ComputeNs, double WallNs) {
    const double WindowNs = P.SampleUs * 1000.0;
    if (WallNs <= 0.0 || WindowNs <= 0.0)
      return;
    double Util = ComputeNs / WallNs;
    if (Util > 1.0)
      Util = 1.0;
    else if (Util < 0.0)
      Util = 0.0;
    double Remaining = WallNs;
    while (Remaining > 0.0) {
      double Take = WindowNs - WindowWallNs;
      if (Take > Remaining)
        Take = Remaining;
      WindowWallNs += Take;
      WindowComputeNs += Util * Take;
      Remaining -= Take;
      if (WindowWallNs >= WindowNs) {
        double WUtil = WindowComputeNs / WindowNs;
        decide(WUtil > 1.0 ? 1.0 : WUtil);
        WindowComputeNs = 0.0;
        WindowWallNs = 0.0;
      }
    }
  }

private:
  void decide(double Util) {
    if (!Conservative) {
      // ondemand: saturate to fmax above the up-threshold; below it, map the
      // load proportionally onto [0, fmax] with the up-threshold as headroom
      // and take the next rung at or above (CPUFREQ_RELATION_L).
      if (Util > P.UpThreshold) {
        FreqGHz = Cfg.fmaxOf(Core);
        return;
      }
      FreqGHz =
          Cfg.rungAtOrAbove(Core, Util * Cfg.fmaxOf(Core) / P.UpThreshold);
      return;
    }
    // conservative: one rung per window, either direction.
    const std::vector<double> &L = Cfg.ladder(Core);
    std::size_t I = 0;
    while (I + 1 < L.size() && L[I] < FreqGHz)
      ++I;
    if (Util > P.UpThreshold && I + 1 < L.size())
      FreqGHz = L[I + 1];
    else if (Util < P.DownThreshold && I > 0)
      FreqGHz = L[I - 1];
  }

  const sim::MachineConfig &Cfg;
  unsigned Core;
  bool Conservative;
  GovernorParams P;
  double FreqGHz;
  double WindowComputeNs = 0.0;
  double WindowWallNs = 0.0;
};

/// Evaluation configuration.
struct EvalConfig {
  FreqPolicy Policy = FreqPolicy::Fixed;
  double AccessFreqGHz = 0.0; ///< Fixed policy: frequency for access phases.
  double ExecFreqGHz = 0.0;   ///< Fixed policy: frequency for execute/coupled.
  /// Overrides MachineConfig::DvfsTransitionNs when >= 0.
  double TransitionNs = -1.0;
  /// Sampling parameters for the Ondemand/Conservative policies.
  GovernorParams Governor;
};

/// Priced outcome of one run under one policy.
struct RunReport {
  double TimeSec = 0.0;   ///< Makespan.
  double EnergyJ = 0.0;
  double EdpJs = 0.0;     ///< Energy * Time.

  // Breakdown (summed over cores, in core-seconds) for Figure 4 / Table 1.
  double AccessTimeSec = 0.0;   ///< "Prefetch" bucket.
  double ExecuteTimeSec = 0.0;  ///< "Task" bucket.
  double OsiTimeSec = 0.0;      ///< Overhead + transitions + idle.

  std::size_t NumTasks = 0;
  std::size_t NumTransitions = 0;

  /// Average access-phase duration in microseconds (Table 1's TA column).
  double avgAccessUs() const {
    return NumTasks ? AccessTimeSec * 1e6 / static_cast<double>(NumTasks)
                    : 0.0;
  }
  /// Fraction of busy time spent in access phases (Table 1's TA%).
  double accessTimeFraction() const {
    double Busy = AccessTimeSec + ExecuteTimeSec;
    return Busy > 0.0 ? AccessTimeSec / Busy : 0.0;
  }
};

/// Prices \p Profile under \p Eval on machine \p Cfg.
RunReport evaluate(const RunProfile &Profile, const sim::MachineConfig &Cfg,
                   const EvalConfig &Eval);

/// Ladder frequency minimizing one phase's local EDP on core \p Core's own
/// ladder (section 3.1 policy (b)): EDP_phase = t(f) * E(f). Exact ties
/// break toward the lower frequency. Exposed for the multi-core timeline's
/// per-phase oracle policy, which prices phases from solo-run stats.
double bestEdpFrequency(const sim::PhaseStats &S, const sim::MachineConfig &Cfg,
                        const sim::PowerModel &PM, unsigned Core);

/// Convenience: coupled run at a fixed frequency.
RunReport evaluateCoupled(const RunProfile &Profile,
                          const sim::MachineConfig &Cfg, double FreqGHz,
                          double TransitionNs = -1.0);

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_EVALUATOR_H
