//===- runtime/ReplayEngine.cpp - Single-timeline timing replay --------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ReplayEngine.h"

#include <algorithm>
#include <deque>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

ReplayEngine::ReplayEngine(const MachineConfig &Cfg, unsigned NumCores,
                           RunProfile &Profile, RunCapture *Capture,
                           const Task *TaskBase, RunTraces *Traces)
    : Cfg(Cfg), Costs(Cfg), Caches(Cfg, NumCores), Profile(Profile),
      Capture(Capture), TaskBase(TaskBase), Traces(Traces),
      LineShift(lineShiftOf(Cfg.L1.LineBytes)), CoreTimeNs(NumCores, 0.0) {}

void ReplayEngine::replayWave(unsigned WaveId,
                              const std::vector<const Task *> &WaveTasks,
                              std::vector<WaveResult> &Results) {
  const unsigned NumCores = static_cast<unsigned>(CoreTimeNs.size());
  std::vector<std::deque<std::size_t>> Queues(NumCores);
  for (std::size_t I = 0; I != WaveTasks.size(); ++I)
    Queues[I % NumCores].push_back(I);

  std::size_t Remaining = WaveTasks.size();
  while (Remaining > 0) {
    // The core with the smallest simulated time runs next. Ordering uses
    // fmax; the evaluator reprices per policy afterwards.
    unsigned Core = 0;
    for (unsigned C = 1; C != NumCores; ++C)
      if (CoreTimeNs[C] < CoreTimeNs[Core])
        Core = C;

    std::size_t Chosen;
    if (!Queues[Core].empty()) {
      Chosen = Queues[Core].front();
      Queues[Core].pop_front();
    } else {
      unsigned Victim = NumCores;
      for (unsigned C = 0; C != NumCores; ++C)
        if (!Queues[C].empty() &&
            (Victim == NumCores || Queues[C].size() > Queues[Victim].size()))
          Victim = C;
      if (Victim == NumCores)
        break;
      Chosen = Queues[Victim].back();
      Queues[Victim].pop_back();
    }

    WaveResult &R = Results[Chosen];
    TaskCapture *Cap = nullptr;
    if (Capture) {
      // Original task index: WaveTasks holds pointers into Tasks.
      Cap = &Capture->Tasks[WaveTasks[Chosen] - TaskBase];
    }
    TaskProfile TP;
    TP.Core = Core;
    TP.Wave = WaveId;
    if (R.HasAccess) {
      TP.HasAccess = true;
      TP.Access = R.Access;
      if (Cap)
        Cap->HasAccess = true;
      replayTrace(R.AccessTr, Caches, Core, Costs, TP.Access,
                  Cap ? &Cap->Access : nullptr, LineShift);
    }
    TP.Execute = R.Execute;
    replayTrace(R.ExecTr, Caches, Core, Costs, TP.Execute,
                Cap ? &Cap->Execute : nullptr, LineShift);

    // Trace disposal: recycle to the pool right after replay (the default),
    // or retain for a later multi-core timeline interleave. Retention is
    // observational — the replay above already happened identically.
    if (Traces) {
      TaskTraces TT;
      TT.HasAccess = R.HasAccess;
      TT.FunctionalAccess = R.Access;
      TT.FunctionalExecute = R.Execute;
      TT.Access = std::move(R.AccessTr);
      TT.Execute = std::move(R.ExecTr);
      Traces->Tasks.push_back(std::move(TT));
      R.AccessTr = sim::AccessTrace();
      R.ExecTr = sim::AccessTrace();
    } else {
      if (R.HasAccess)
        R.AccessTr.releaseTo(TracePool::global());
      R.ExecTr.releaseTo(TracePool::global());
    }

    CoreTimeNs[Core] += TP.Access.timeNs(Cfg.fmax()) +
                        TP.Execute.timeNs(Cfg.fmax()) +
                        Profile.PerTaskOverheadCycles / Cfg.fmax();
    Profile.Tasks.push_back(std::move(TP));
    --Remaining;
  }

  // Barrier: every core advances to the wave's completion time.
  double WaveEnd = *std::max_element(CoreTimeNs.begin(), CoreTimeNs.end());
  for (double &T : CoreTimeNs)
    T = WaveEnd;
}
