//===- runtime/Task.h - Task and run profile types --------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A task instance pairs the execute function with its (optional) access
/// function and concrete arguments — the two "versions, or phases, of each
/// computation task" of section 3.1. Executing a run under the simulator
/// yields a RunProfile: per task, the frequency-decomposed profile of each
/// phase, from which the evaluator prices any DVFS schedule analytically.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_TASK_H
#define DAECC_RUNTIME_TASK_H

#include "sim/Interpreter.h"
#include "sim/PhaseStats.h"

#include <vector>

namespace dae {

namespace ir {
class Function;
}

namespace runtime {

/// One dynamic task instance.
struct Task {
  const ir::Function *Execute = nullptr;
  const ir::Function *Access = nullptr; ///< Null => coupled execution.
  std::vector<sim::RuntimeValue> Args;
  /// Dependency wave: the runtime barriers between waves (fork-join style),
  /// so tasks of wave w+1 only start after every wave-w task finished.
  unsigned Wave = 0;
};

/// Measured profile of one executed task.
struct TaskProfile {
  sim::PhaseStats Access;  ///< All zeros when the task ran coupled.
  sim::PhaseStats Execute;
  unsigned Core = 0;
  bool HasAccess = false;
  unsigned Wave = 0;
};

/// Profile of a whole run.
struct RunProfile {
  std::vector<TaskProfile> Tasks;
  unsigned NumCores = 1;
  /// Runtime bookkeeping per task (core-clocked cycles): dequeue, steal
  /// attempts, phase hand-off. Contributes to the O.S.I. bucket.
  double PerTaskOverheadCycles = 250.0;

  /// Host wall-clock seconds spent in the functional (value-producing) pass
  /// of this run — pure telemetry for backend throughput reporting (the
  /// `interp` block in bench JSON); not a simulated quantity, and excluded
  /// from determinism comparisons.
  double FunctionalSeconds = 0.0;

  /// Sum of a statistic across tasks.
  sim::PhaseStats totalAccess() const {
    sim::PhaseStats S;
    for (const TaskProfile &T : Tasks)
      S += T.Access;
    return S;
  }
  sim::PhaseStats totalExecute() const {
    sim::PhaseStats S;
    for (const TaskProfile &T : Tasks)
      S += T.Execute;
    return S;
  }
};

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_TASK_H
