//===- runtime/Timeline.cpp - Multi-core contention timeline -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Timeline.h"

#include "runtime/Replay.h"
#include "sim/CacheSim.h"
#include "sim/PowerModel.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

/// One phase of one stream, flattened into interleave order: the retained
/// trace, the pre-replay functional stats (the frequency-scalable work), and
/// the post-replay *solo* stats the oracle policy prices from.
struct PhaseRef {
  const AccessTrace *Trace = nullptr;
  const PhaseStats *Functional = nullptr;
  const PhaseStats *Solo = nullptr;
  bool IsAccess = false;
  /// Runtime bookkeeping charged after the phase (execute phases only).
  double OverheadCycles = 0.0;
};

/// Per-core interleave state: a cursor over the stream's flattened phases
/// plus the accumulators of the phase currently in flight.
struct CoreState {
  std::vector<PhaseRef> Phases;
  std::size_t PhaseIdx = 0;
  std::size_t EventIdx = 0;
  bool InPhase = false;

  double ClockNs = 0.0;
  double FreqGHz = 0.0;        ///< Hardware frequency (last programmed).
  double PhaseFreqGHz = 0.0;   ///< Frequency of the phase in flight.
  double PhaseStartNs = 0.0;
  double PhaseQueueNs = 0.0;
  double PerEventCycles = 0.0; ///< Functional compute spread per event.
  PhaseStats Acc;              ///< Phase stats under contention.

  CoreTimelineReport Report;
};

} // namespace

TimelineReport runtime::interleaveTimeline(const std::vector<CoreStream> &Streams,
                                           const MachineConfig &Cfg,
                                           const TimelineConfig &TC) {
  if (Streams.empty() || Streams.size() > Cfg.NumCores)
    throw std::invalid_argument("timeline stream count must be in [1, NumCores]");

  const unsigned NumCores = static_cast<unsigned>(Streams.size());
  const double TransNs =
      TC.TransitionNs >= 0.0 ? TC.TransitionNs : Cfg.DvfsTransitionNs;
  const bool IsGovernor = TC.Policy == TimelinePolicy::Ondemand ||
                          TC.Policy == TimelinePolicy::Conservative;

  PowerModel PM(Cfg);
  ReplayCostModel Costs(Cfg);
  CacheHierarchy Caches(Cfg, NumCores);
  DramChannel Dram(Cfg.DramBandwidthGBs, Cfg.L1.LineBytes);

  std::vector<GovernorState> Governors;
  if (IsGovernor)
    for (unsigned C = 0; C != NumCores; ++C)
      Governors.emplace_back(Cfg, C,
                             TC.Policy == TimelinePolicy::Conservative,
                             TC.Governor);

  // Flatten every stream into phase order. Solo profiles come from a
  // NumCores=1 replay, so profile order == sequential execution order and is
  // index-aligned with the retained traces by the engine's contract.
  std::vector<CoreState> Cores(NumCores);
  for (unsigned C = 0; C != NumCores; ++C) {
    const CoreStream &S = Streams[C];
    assert(S.Solo && S.Traces && "stream missing solo artifacts");
    if (S.Solo->Tasks.size() != S.Traces->Tasks.size())
      throw std::invalid_argument("solo profile / retained traces mismatch");
    CoreState &CS = Cores[C];
    CS.FreqGHz = Cfg.fmaxOf(C);
    CS.Phases.reserve(S.Traces->Tasks.size() * 2);
    for (std::size_t T = 0; T != S.Traces->Tasks.size(); ++T) {
      const TaskTraces &TT = S.Traces->Tasks[T];
      const TaskProfile &TP = S.Solo->Tasks[T];
      if (TT.HasAccess) {
        PhaseRef P;
        P.Trace = &TT.Access;
        P.Functional = &TT.FunctionalAccess;
        P.Solo = &TP.Access;
        P.IsAccess = true;
        CS.Phases.push_back(P);
      }
      PhaseRef P;
      P.Trace = &TT.Execute;
      P.Functional = &TT.FunctionalExecute;
      P.Solo = &TP.Execute;
      P.OverheadCycles = S.Solo->PerTaskOverheadCycles;
      CS.Phases.push_back(P);
    }
  }

  // Runtime bookkeeping stats (see Evaluator.cpp): same work per task, only
  // the pricing frequency varies.
  auto OverheadStats = [](double Cycles) {
    PhaseStats S;
    S.ComputeCycles = Cycles;
    S.Instructions = static_cast<std::uint64_t>(Cycles);
    return S;
  };

  // Opens the next phase on core C: pick the policy frequency, pay the DVFS
  // transition if it changed, and spread the phase's functional compute
  // across its trace events.
  auto StartPhase = [&](unsigned C) {
    CoreState &CS = Cores[C];
    const PhaseRef &P = CS.Phases[CS.PhaseIdx];
    double F;
    switch (TC.Policy) {
    case TimelinePolicy::FixedMax:
      F = Cfg.fmaxOf(C);
      break;
    case TimelinePolicy::DaeMinMax:
      F = P.IsAccess ? Cfg.fminOf(C) : Cfg.fmaxOf(C);
      break;
    case TimelinePolicy::OracleEdp:
      F = bestEdpFrequency(*P.Solo, Cfg, PM, C);
      break;
    case TimelinePolicy::Ondemand:
    case TimelinePolicy::Conservative:
      F = Governors[C].frequency();
      break;
    }
    if (std::abs(CS.FreqGHz - F) > 1e-9) {
      ++CS.Report.Transitions;
      if (TransNs > 0.0) {
        CS.ClockNs += TransNs;
        CS.Report.EnergyJ += PM.staticPowerPerCore(C, F) * TransNs * 1e-9;
      }
      CS.FreqGHz = F;
    }
    CS.PhaseFreqGHz = F;
    CS.PhaseStartNs = CS.ClockNs;
    CS.PhaseQueueNs = 0.0;
    CS.Acc = *P.Functional;
    std::size_t N = P.Trace->size();
    CS.PerEventCycles = N ? P.Functional->ComputeCycles / static_cast<double>(N)
                          : 0.0;
    CS.EventIdx = 0;
    CS.InPhase = true;
  };

  // Closes the phase in flight on core C: zero-event phases charge their
  // whole compute as one slice, then the phase's energy is priced over its
  // actual (contention-inflated) wall time, task overhead is appended after
  // execute phases, and the governor window observes the phase.
  auto FinishPhase = [&](unsigned C) {
    CoreState &CS = Cores[C];
    const PhaseRef &P = CS.Phases[CS.PhaseIdx];
    const double F = CS.PhaseFreqGHz;
    if (P.Trace->empty())
      CS.ClockNs += CS.Acc.ComputeCycles / F;
    double TimeNs = CS.ClockNs - CS.PhaseStartNs;
    if (TimeNs > 0.0) {
      double Ipc = static_cast<double>(CS.Acc.Instructions) / (TimeNs * F);
      CS.Report.EnergyJ += (PM.dynamicPower(C, F, Ipc) +
                            PM.staticPowerPerCore(C, F)) *
                           TimeNs * 1e-9;
    }
    CS.Report.ComputeNs += CS.Acc.ComputeCycles / F;
    CS.Report.StallNs += CS.Acc.StallNs;
    CS.Report.QueueNs += CS.PhaseQueueNs;
    CS.Report.Total += CS.Acc;

    double BusyNs = TimeNs;
    double ComputeNs = CS.Acc.ComputeCycles / F;
    if (P.OverheadCycles > 0.0) {
      double OverheadNs = P.OverheadCycles / F;
      CS.ClockNs += OverheadNs;
      CS.Report.EnergyJ += PM.phaseEnergy(C, OverheadStats(P.OverheadCycles), F);
      BusyNs += OverheadNs;
      ComputeNs += OverheadNs;
    }
    if (IsGovernor)
      Governors[C].account(ComputeNs, BusyNs);

    CS.InPhase = false;
    ++CS.PhaseIdx;
  };

  // Advances core C by one event through the shared hierarchy. Per-event
  // cost mirrors the solo replay loop (runtime/Replay.cpp) with the phase's
  // compute spread on top; DRAM misses additionally queue on the channel.
  auto StepEvent = [&](unsigned C) {
    CoreState &CS = Cores[C];
    const PhaseRef &P = CS.Phases[CS.PhaseIdx];
    const std::uint64_t Event = P.Trace->events()[CS.EventIdx];
    const unsigned Kind = static_cast<unsigned>(Event >> 62);
    const std::uint64_t Addr =
        (Event & AccessTrace::AddrMask) + Streams[C].AddrBias;
    HitLevel Level = Caches.access(C, Addr);
    unsigned Idx = Kind * 4 + static_cast<unsigned>(Level);
    assert(Idx < 12 && "unknown access kind");
    CS.Acc.ComputeCycles += Costs.CycleAdd[Idx];
    CS.Acc.StallNs += Costs.StallAdd[Idx];
    // Demand hits count per level; prefetch hits are free and uncounted, but
    // prefetch DRAM fills do count as memory accesses (see Replay.cpp).
    if (Kind != 2) {
      switch (Level) {
      case HitLevel::L1:
        ++CS.Acc.L1Hits;
        break;
      case HitLevel::L2:
        ++CS.Acc.L2Hits;
        break;
      case HitLevel::LLC:
        ++CS.Acc.LLCHits;
        break;
      case HitLevel::Memory:
        ++CS.Acc.MemAccesses;
        break;
      }
    } else if (Level == HitLevel::Memory) {
      ++CS.Acc.MemAccesses;
    }

    double Dt = (CS.PerEventCycles + Costs.CycleAdd[Idx]) / CS.PhaseFreqGHz +
                Costs.StallAdd[Idx];
    if (Level == HitLevel::Memory) {
      double Q = Dram.requestLine(CS.ClockNs);
      Dt += Q;
      CS.PhaseQueueNs += Q;
      ++CS.Report.DramMisses;
      // The hardware next-line prefetcher's fill rides the channel too; it
      // runs in the miss's shadow, so it occupies bandwidth without adding
      // to this core's stall.
      if (Cfg.HwNextLinePrefetch && Kind != 2)
        Dram.requestLine(CS.ClockNs);
    }
    CS.ClockNs += Dt;
    ++CS.EventIdx;
    if (CS.EventIdx == P.Trace->size())
      FinishPhase(C);
  };

  // The interleave proper: always advance the unfinished core with the
  // smallest clock (ties break toward the lowest index). One step is one
  // trace event — or one phase boundary for empty traces — so co-runners'
  // events hit the shared LLC and DRAM channel in global-timestamp order.
  for (;;) {
    unsigned Core = NumCores;
    for (unsigned C = 0; C != NumCores; ++C) {
      if (!Cores[C].InPhase && Cores[C].PhaseIdx == Cores[C].Phases.size())
        continue;
      if (Core == NumCores || Cores[C].ClockNs < Cores[Core].ClockNs)
        Core = C;
    }
    if (Core == NumCores)
      break;
    CoreState &CS = Cores[Core];
    if (!CS.InPhase) {
      StartPhase(Core);
      if (CS.Phases[CS.PhaseIdx].Trace->empty())
        FinishPhase(Core);
      continue;
    }
    StepEvent(Core);
  }

  TimelineReport R;
  R.Cores.resize(NumCores);
  for (unsigned C = 0; C != NumCores; ++C) {
    Cores[C].Report.FinishNs = Cores[C].ClockNs;
    R.Cores[C] = Cores[C].Report;
    R.MakespanNs = std::max(R.MakespanNs, Cores[C].ClockNs);
  }
  double Energy = 0.0;
  for (unsigned C = 0; C != NumCores; ++C) {
    Energy += R.Cores[C].EnergyJ;
    // Early finishers sleep until the slowest co-runner completes.
    Energy +=
        PM.sleepPowerPerCore(C) * (R.MakespanNs - R.Cores[C].FinishNs) * 1e-9;
  }
  Energy += PM.uncorePower() * R.MakespanNs * 1e-9;
  R.EnergyJ = Energy;
  R.EdpJs = R.MakespanNs * 1e-9 * R.EnergyJ;
  return R;
}
