//===- runtime/Timeline.h - Multi-core contention timeline ------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-core co-run timeline: N independent workloads, one pinned per
/// simulated core, their retained traces interleaved event-by-event in
/// global-timestamp order through a *shared* LLC and a bandwidth-throttled
/// DRAM channel. This is where cross-workload contention — LLC capacity
/// pressure and memory-bandwidth queuing — enters the model; the
/// single-workload engine (runtime/ReplayEngine.h) replays each run against
/// a private hierarchy and never sees a co-runner.
///
/// Inputs are solo-run artifacts: each stream's RunProfile (NumCores=1
/// replay, post-replay per-phase stats — what an offline profiler would
/// know) and its RunTraces (the retained access traces plus pre-replay
/// functional stats — the frequency-scalable work). The interleaver
/// re-prices every phase under contention: per event, the phase's compute is
/// spread uniformly across its trace, cache costs come from the shared
/// hierarchy's actual hit level, and DRAM misses additionally queue on the
/// channel. Frequencies are chosen per phase by the configured policy —
/// fixed fmax, the DAE min/max split, the per-phase EDP oracle (priced from
/// solo stats, the paper's compiler-guided choice), or a reactive
/// ondemand/conservative governor baseline.
///
/// The interleave is single-threaded and fully deterministic: the next event
/// always comes from the unfinished core with the smallest clock (ties break
/// toward the lowest core index), so co-run reports are bit-identical for
/// any host (jobs, sim-threads, overlap) combination — solo artifacts are
/// already bit-identical by the engine's determinism guarantee, and nothing
/// here depends on host order (asserted by MultiCoreDeterminismTest).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_TIMELINE_H
#define DAECC_RUNTIME_TIMELINE_H

#include "runtime/Evaluator.h"
#include "runtime/Runtime.h"
#include "sim/MachineConfig.h"
#include "sim/PhaseStats.h"

#include <cstdint>
#include <vector>

namespace dae {
namespace runtime {

/// Per-phase frequency policy applied on the contention timeline.
enum class TimelinePolicy {
  /// Every phase at the core's fmax (the CAE "performance governor" base).
  FixedMax,
  /// DAE split: access phases at the core's fmin, execute (and coupled)
  /// phases at its fmax (section 3.1 policy (a)).
  DaeMinMax,
  /// Per-phase EDP-optimal rung, chosen from the phase's *solo* profile —
  /// the compiler/profiling oracle. Solo stats are what offline profiling
  /// provides; the oracle does not get to see contention-inflated futures.
  OracleEdp,
  /// Reactive cpufreq-style ondemand governor (see runtime/Evaluator.h).
  Ondemand,
  /// Reactive cpufreq-style conservative governor.
  Conservative,
};

inline const char *timelinePolicyName(TimelinePolicy P) {
  switch (P) {
  case TimelinePolicy::FixedMax:
    return "fixed-max";
  case TimelinePolicy::DaeMinMax:
    return "dae-minmax";
  case TimelinePolicy::OracleEdp:
    return "dae-oracle";
  case TimelinePolicy::Ondemand:
    return "ondemand";
  case TimelinePolicy::Conservative:
    return "conservative";
  }
  return "unknown";
}

/// One co-runner: the solo-run artifacts of the workload pinned to one core.
/// Solo and Traces must come from the same NumCores=1 run (index-aligned by
/// construction — see TaskRuntime::execute's Traces out-param).
struct CoreStream {
  const RunProfile *Solo = nullptr;
  const RunTraces *Traces = nullptr;
  /// Added to every trace address before it touches the shared hierarchy.
  /// Co-runners are separate programs with separate address spaces; without
  /// a per-stream bias their loader images alias line-for-line in the shared
  /// LLC and the model would hallucinate cross-program "sharing". The
  /// harness uses (core << 40), far above any footprint and well below the
  /// trace encoding's 62-bit address space.
  std::uint64_t AddrBias = 0;
};

/// Timeline evaluation configuration.
struct TimelineConfig {
  TimelinePolicy Policy = TimelinePolicy::FixedMax;
  /// Overrides MachineConfig::DvfsTransitionNs when >= 0.
  double TransitionNs = -1.0;
  /// Sampling parameters for the governor policies.
  GovernorParams Governor;
};

/// One core's outcome on the timeline.
struct CoreTimelineReport {
  double FinishNs = 0.0;  ///< When the core's stream completed.
  double EnergyJ = 0.0;   ///< Core energy (dynamic + static + transitions).
  double ComputeNs = 0.0; ///< Frequency-scaled compute time.
  double StallNs = 0.0;   ///< Cache/DRAM latency stalls (no queuing).
  double QueueNs = 0.0;   ///< DRAM bandwidth queuing delay.
  std::size_t Transitions = 0;
  std::uint64_t DramMisses = 0; ///< Demand + prefetch DRAM fills.
  sim::PhaseStats Total;        ///< Contention-replay stats, all phases.
};

/// Whole-timeline outcome.
struct TimelineReport {
  double MakespanNs = 0.0;
  double EnergyJ = 0.0; ///< Cores + early-finisher sleep + uncore.
  double EdpJs = 0.0;   ///< Energy * makespan.
  std::vector<CoreTimelineReport> Cores;
};

/// Interleaves \p Streams (stream i pinned to core i) on machine \p Cfg
/// under \p TC. Stream count must be in [1, Cfg.NumCores].
TimelineReport interleaveTimeline(const std::vector<CoreStream> &Streams,
                                  const sim::MachineConfig &Cfg,
                                  const TimelineConfig &TC);

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_TIMELINE_H
