//===- runtime/Replay.h - Trace replay fast path ----------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache-timing replay hot loop: streams a recorded AccessTrace through
/// the CacheHierarchy and accumulates the cache-dependent statistics of one
/// phase. This is the sequential half of the simulation engine — every event
/// of every task goes through it, in schedule order — so it is built for
/// throughput:
///
///  * the per-(kind, level) cost model is precomputed once per run into flat
///    lookup tables (ReplayCostModel), collapsing the per-event double switch
///    into two table-indexed adds;
///  * hit-level counters accumulate into a dense local array and flush once
///    per trace (integer sums are order-independent);
///  * the oracle-capture branch is hoisted out of the loop (two specialized
///    instantiations instead of a per-event test).
///
/// The floating-point accumulation order is exactly the scalar reference's —
/// one add per event, in trace order, of bit-identical addends — so profiles
/// are unchanged down to the last ulp (pinned by SnapshotTest's golden
/// hashes). Exposed as a header so bench/micro_replay.cpp can drive the loop
/// in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_REPLAY_H
#define DAECC_RUNTIME_REPLAY_H

#include "runtime/Runtime.h"
#include "sim/AccessTrace.h"
#include "sim/PhaseStats.h"

namespace dae {
namespace runtime {

/// Precomputed per-(access kind, hit level) cost tables, indexed
/// [kind * 4 + level] with kind in {Load=0, Store=1, Prefetch=2} and level in
/// {L1=0, L2=1, LLC=2, Memory=3}. Entries that the reference model does not
/// charge are 0.0 (adding +0.0 to a non-negative accumulator is exact).
struct ReplayCostModel {
  double CycleAdd[12];
  double StallAdd[12];

  explicit ReplayCostModel(const sim::MachineConfig &Cfg);
};

/// Streams \p Tr through \p Caches as \p Core, adding the cache-dependent
/// statistics to \p S under \p Costs. When \p Cap is non-null, every event's
/// cache line (byte address >> \p LineShift) lands in Cap->Lines and every
/// DRAM-missing demand load in Cap->MissLines (oracle capture; has no effect
/// on any simulated outcome). The per-kind accounting matches the fused
/// interpreter's inline cost model statement for statement.
void replayTrace(const sim::AccessTrace &Tr, sim::CacheHierarchy &Caches,
                 unsigned Core, const ReplayCostModel &Costs,
                 sim::PhaseStats &S, PhaseCapture *Cap = nullptr,
                 unsigned LineShift = 6);

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_REPLAY_H
