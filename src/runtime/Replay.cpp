//===- runtime/Replay.cpp - Trace replay fast path --------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Replay.h"

#include <cassert>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

ReplayCostModel::ReplayCostModel(const MachineConfig &Cfg)
    : CycleAdd{}, StallAdd{} {
  auto At = [](AccessTrace::Kind K, HitLevel L) {
    return static_cast<unsigned>(K) * 4 + static_cast<unsigned>(L);
  };
  // Loads: hit cycles per level; DRAM misses stall with demand-load MLP.
  CycleAdd[At(AccessTrace::Kind::Load, HitLevel::L1)] = Cfg.L1HitCycles;
  CycleAdd[At(AccessTrace::Kind::Load, HitLevel::L2)] = Cfg.L2HitCycles;
  CycleAdd[At(AccessTrace::Kind::Load, HitLevel::LLC)] = Cfg.LLCHitCycles;
  StallAdd[At(AccessTrace::Kind::Load, HitLevel::Memory)] =
      Cfg.MemLatencyNs / Cfg.LoadMlp;
  // Stores: buffered writes hide L1 hits entirely and half the deeper hit
  // latencies; RFO misses stall like demand loads.
  CycleAdd[At(AccessTrace::Kind::Store, HitLevel::L2)] =
      Cfg.L2HitCycles * 0.5;
  CycleAdd[At(AccessTrace::Kind::Store, HitLevel::LLC)] =
      Cfg.LLCHitCycles * 0.5;
  StallAdd[At(AccessTrace::Kind::Store, HitLevel::Memory)] =
      Cfg.MemLatencyNs / Cfg.StoreMlp;
  // Prefetches never stall retirement; they are throughput-limited by their
  // MLP (section 3.1), priced in wall-clock ns.
  StallAdd[At(AccessTrace::Kind::Prefetch, HitLevel::LLC)] =
      Cfg.LLCHitCycles / Cfg.fmax() / Cfg.PrefetchMlp;
  StallAdd[At(AccessTrace::Kind::Prefetch, HitLevel::Memory)] =
      Cfg.MemLatencyNs / Cfg.PrefetchMlp;
}

namespace {

template <bool WithCapture>
void replayLoop(const std::uint64_t *E, const std::uint64_t *End,
                CacheHierarchy &Caches, unsigned Core,
                const ReplayCostModel &Costs, PhaseStats &S, PhaseCapture *Cap,
                unsigned LineShift) {
  // Accumulate in registers, seeded from (and stored back to) the phase's
  // running totals: the adds happen in the same order with the same values
  // as the per-event `S.x += cost` reference, so the result is bit-exact.
  double Cycles = S.ComputeCycles;
  double StallNs = S.StallNs;
  std::uint64_t Counts[12] = {};
  for (; E != End; ++E) {
    std::uint64_t Event = *E;
    unsigned Kind = static_cast<unsigned>(Event >> 62);
    std::uint64_t Addr = Event & AccessTrace::AddrMask;
    HitLevel Level = Caches.access(Core, Addr);
    unsigned Idx = Kind * 4 + static_cast<unsigned>(Level);
    assert(Idx < 12 && "unknown access kind");
    Cycles += Costs.CycleAdd[Idx];
    StallNs += Costs.StallAdd[Idx];
    ++Counts[Idx];
    if (WithCapture) {
      std::uint64_t Line = Addr >> LineShift;
      Cap->Lines.push_back(Line);
      if (Level == HitLevel::Memory &&
          Kind == static_cast<unsigned>(AccessTrace::Kind::Load))
        Cap->MissLines.push_back(Line);
    }
  }
  S.ComputeCycles = Cycles;
  S.StallNs = StallNs;
  // Demand (load/store) hits count per level; prefetch hits are free and
  // uncounted, but prefetch DRAM fills do count as memory accesses — exactly
  // the reference model's per-kind switch.
  S.L1Hits += Counts[0] + Counts[4];
  S.L2Hits += Counts[1] + Counts[5];
  S.LLCHits += Counts[2] + Counts[6];
  S.MemAccesses += Counts[3] + Counts[7] + Counts[11];
}

} // namespace

void runtime::replayTrace(const AccessTrace &Tr, CacheHierarchy &Caches,
                          unsigned Core, const ReplayCostModel &Costs,
                          PhaseStats &S, PhaseCapture *Cap,
                          unsigned LineShift) {
  const std::uint64_t *E = Tr.events().data();
  const std::uint64_t *End = E + Tr.events().size();
  if (Cap)
    replayLoop<true>(E, End, Caches, Core, Costs, S, Cap, LineShift);
  else
    replayLoop<false>(E, End, Caches, Core, Costs, S, nullptr, LineShift);
}
