//===- runtime/ReplayEngine.h - Single-timeline timing replay ---*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing half of the simulation engine, extracted from the task runtime
/// so the multi-core contention timeline (runtime/Timeline.h) can build on
/// the same seam. All state the replay mutates — cache hierarchy, per-core
/// clocks, the profile's task order, the oracle capture, the retained-trace
/// log — lives here and is only ever touched by one thread at a time: the
/// caller when replay is inline, the dedicated replay thread when the wave
/// pipeline is active (see Runtime.cpp, "Pipelined wave simulation").
///
/// The engine replays one run's waves in order: the exact greedy min-time /
/// steal-from-longest-queue schedule picks tasks, and each chosen task's
/// traces stream through the per-core L1/L2 + shared LLC in schedule order,
/// so profiles are bit-identical for any host thread count. Task traces
/// replay atomically (the hierarchy is private to the run); interleaving
/// *across* runs at event granularity is the multi-core timeline's job.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_RUNTIME_REPLAYENGINE_H
#define DAECC_RUNTIME_REPLAYENGINE_H

#include "runtime/Replay.h"
#include "runtime/Runtime.h"
#include "sim/AccessTrace.h"
#include "sim/CacheSim.h"

#include <vector>

namespace dae {
namespace runtime {

/// One task's functional-pass output, waiting for its timing replay.
struct WaveResult {
  bool HasAccess = false;
  sim::PhaseStats Access, Execute;
  sim::AccessTrace AccessTr, ExecTr;
};

/// Greedy schedule + trace replay over one run's private hierarchy.
class ReplayEngine {
public:
  /// \p Profile receives one TaskProfile per replayed task, in schedule
  /// order. \p Capture (optional) collects per-phase line/miss sets at L1
  /// line granularity. \p Traces (optional) retains every task's traces and
  /// functional stats, index-aligned with Profile.Tasks. \p TaskBase anchors
  /// capture indexing (WaveTasks holds pointers into the original array).
  ReplayEngine(const sim::MachineConfig &Cfg, unsigned NumCores,
               RunProfile &Profile, RunCapture *Capture, const Task *TaskBase,
               RunTraces *Traces = nullptr);

  /// Replays one completed wave. Waves must be replayed in ascending order.
  void replayWave(unsigned WaveId, const std::vector<const Task *> &WaveTasks,
                  std::vector<WaveResult> &Results);

private:
  const sim::MachineConfig &Cfg;
  ReplayCostModel Costs;
  sim::CacheHierarchy Caches;
  RunProfile &Profile;
  RunCapture *Capture;
  const Task *TaskBase;
  RunTraces *Traces;
  unsigned LineShift;
  std::vector<double> CoreTimeNs;
};

} // namespace runtime
} // namespace dae

#endif // DAECC_RUNTIME_REPLAYENGINE_H
