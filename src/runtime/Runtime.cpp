//===- runtime/Runtime.cpp - DAE task runtime --------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The host-parallel simulation engine. Each dependency wave runs in two
// passes that together reproduce the sequential engine's profile exactly:
//
//  1. Functional pass — every task of the wave executes (values + recorded
//     access trace) on a pool of host worker threads, each owning a private
//     tracing Interpreter. Same-wave tasks are independent by the runtime's
//     contract, so their memory effects commute and execution order does not
//     matter.
//  2. Timing pass — single-threaded. The exact greedy min-time /
//     steal-from-longest-queue schedule of the original engine picks tasks,
//     and each chosen task's traces are replayed through the per-core L1/L2
//     and shared LLC in schedule order (runtime/Replay.h). Hit/miss outcomes
//     therefore never depend on host interleaving: profiles are bit-identical
//     for any --sim-threads value, including 1.
//
// The two passes are pipelined across waves (MachineConfig::ReplayOverlap):
// a dedicated replay thread consumes completed waves strictly in order while
// the worker pool already executes the next wave's functional pass. This is
// legal because next-wave functional execution depends only on prior waves'
// *memory* effects (established before its functional pass starts), never on
// timing, and all timing state — cache hierarchy, per-core clocks, profile
// order — is owned exclusively by the replay thread until the run completes.
// Wave payloads live in two alternating slots, so trace buffers recycle
// through the TracePool with one wave in flight on each side and no
// cross-wave contention on the WaveResult vectors themselves.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "ir/Function.h"
#include "runtime/ReplayEngine.h"
#include "sim/AccessTrace.h"
#include "sim/Interpreter.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

/// A reusable fork-join pool: run(Count, Fn) hands out indices [0, Count)
/// to Workers host threads, the caller participating as worker 0. Threads
/// are spawned once and parked between waves.
class WorkerPool {
public:
  explicit WorkerPool(unsigned Workers) : Workers(std::max(1u, Workers)) {
    for (unsigned W = 1; W != this->Workers; ++W)
      Threads.emplace_back([this, W] { workerLoop(W); });
  }

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Quit = true;
      ++Generation;
    }
    Wake.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned workers() const { return Workers; }

  /// Runs Fn(Index, Worker) for every Index in [0, Count). Returns when all
  /// indices have completed. Fn must be safe to call concurrently for
  /// distinct indices.
  void run(std::size_t Count,
           const std::function<void(std::size_t, unsigned)> &Fn) {
    if (Count == 0)
      return;
    if (Workers == 1 || Count == 1) {
      for (std::size_t I = 0; I != Count; ++I)
        Fn(I, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      Job = &Fn;
      JobCount = Count;
      Next.store(0, std::memory_order_relaxed);
      Active = Workers - 1;
      ++Generation;
    }
    Wake.notify_all();
    drain(Fn, Count, 0);
    std::unique_lock<std::mutex> Lock(M);
    Done.wait(Lock, [this] { return Active == 0; });
    Job = nullptr;
  }

private:
  void drain(const std::function<void(std::size_t, unsigned)> &Fn,
             std::size_t Count, unsigned Worker) {
    for (;;) {
      std::size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        return;
      Fn(I, Worker);
    }
  }

  void workerLoop(unsigned Worker) {
    std::uint64_t SeenGeneration = 0;
    for (;;) {
      const std::function<void(std::size_t, unsigned)> *Fn;
      std::size_t Count;
      {
        std::unique_lock<std::mutex> Lock(M);
        Wake.wait(Lock, [&] { return Generation != SeenGeneration; });
        SeenGeneration = Generation;
        if (Quit)
          return;
        Fn = Job;
        Count = JobCount;
      }
      drain(*Fn, Count, Worker);
      {
        std::lock_guard<std::mutex> Lock(M);
        if (--Active == 0)
          Done.notify_one();
      }
    }
  }

  unsigned Workers;
  std::vector<std::thread> Threads;
  std::mutex M;
  std::condition_variable Wake, Done;
  std::uint64_t Generation = 0;
  bool Quit = false;
  const std::function<void(std::size_t, unsigned)> *Job = nullptr;
  std::size_t JobCount = 0;
  std::atomic<std::size_t> Next{0};
  unsigned Active = 0;
};

} // namespace

TaskRuntime::TaskRuntime(const MachineConfig &Cfg, Memory &Mem,
                         const sim::Loader &L)
    : Cfg(Cfg), Mem(Mem), Loader(L) {}

RunProfile TaskRuntime::execute(const std::vector<Task> &Tasks, bool RunAccess,
                                RunCapture *Capture, RunTraces *Traces) {
  const unsigned NumCores = Cfg.NumCores;

  if (Capture) {
    // Capture granularity is the (validated) L1 line size — the same
    // granularity the cache model indexes sets with, so oracle lines and
    // simulated lines can never disagree.
    Capture->LineBytes = Cfg.L1.LineBytes;
    Capture->Tasks.assign(Tasks.size(), TaskCapture());
  }

  // Compile every task function (and transitive callees) up front; the
  // program is read-only from here on and shared by all workers.
  CompiledProgram Program(Cfg, Loader);
  for (const Task &T : Tasks) {
    Program.add(*T.Execute);
    if (T.Access)
      Program.add(*T.Access);
  }

  WorkerPool Pool(Cfg.SimThreads);
  std::vector<std::unique_ptr<Interpreter>> Interps;
  Interps.reserve(Pool.workers());
  for (unsigned W = 0; W != Pool.workers(); ++W)
    Interps.push_back(
        std::make_unique<Interpreter>(Cfg, Mem, Loader, &Program));

  RunProfile Profile;
  Profile.NumCores = NumCores;
  Profile.Tasks.reserve(Tasks.size());

  // Group into dependency waves; the runtime barriers between them.
  std::map<unsigned, std::vector<const Task *>> Waves;
  for (const Task &T : Tasks)
    Waves[T.Wave].push_back(&T);

  ReplayEngine Replay(Cfg, NumCores, Profile, Capture, Tasks.data(), Traces);

  // Functional pass of one wave into \p Results, in parallel across the
  // pool: compute values and record access traces for every task. Wall-clock
  // time is accumulated into the profile's FunctionalSeconds so the bench
  // drivers can report per-backend functional throughput; RunFunctional is
  // only ever called from this thread, so a plain accumulator suffices.
  double FunctionalSecs = 0.0;
  auto RunFunctional = [&](const std::vector<const Task *> &WaveTasks,
                           std::vector<WaveResult> &Results) {
    auto Start = std::chrono::steady_clock::now();
    Results.clear();
    Results.resize(WaveTasks.size());
    Pool.run(WaveTasks.size(), [&](std::size_t I, unsigned Worker) {
      const Task &T = *WaveTasks[I];
      WaveResult &R = Results[I];
      Interpreter &Interp = *Interps[Worker];
      if (RunAccess && T.Access) {
        R.HasAccess = true;
        R.AccessTr.acquireFrom(TracePool::global());
        R.Access = Interp.runTraced(*T.Access, T.Args, R.AccessTr);
      }
      R.ExecTr.acquireFrom(TracePool::global());
      R.Execute = Interp.runTraced(*T.Execute, T.Args, R.ExecTr);
    });
    FunctionalSecs +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();
  };

  // Overlap only pays when another wave's functional pass can run during a
  // replay; a single wave (or the sequential --sim-threads=1 reference)
  // keeps replay inline on this thread.
  const bool Overlap =
      Cfg.ReplayOverlap && Cfg.SimThreads > 1 && Waves.size() > 1;

  if (!Overlap) {
    std::vector<WaveResult> Results;
    for (auto &[WaveId, WaveTasks] : Waves) {
      RunFunctional(WaveTasks, Results);
      Replay.replayWave(WaveId, WaveTasks, Results);
    }
  } else {
    // Two wave slots alternate between the producer (this thread: functional
    // pass) and the consumer (replay thread). The replay thread visits slots
    // in the same alternating order waves were filled, so waves replay
    // strictly in order; the mutex hands each slot's contents across threads
    // with the necessary happens-before edges.
    struct WaveSlot {
      unsigned WaveId = 0;
      const std::vector<const Task *> *WaveTasks = nullptr;
      std::vector<WaveResult> Results;
      bool Full = false;
    };
    WaveSlot Slots[2];
    std::mutex M;
    std::condition_variable SlotFull, SlotEmpty;
    bool NoMoreWaves = false;

    std::thread Replayer([&] {
      unsigned S = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> Lock(M);
          SlotFull.wait(Lock,
                        [&] { return Slots[S].Full || NoMoreWaves; });
          if (!Slots[S].Full)
            return; // NoMoreWaves and nothing pending in order.
        }
        Replay.replayWave(Slots[S].WaveId, *Slots[S].WaveTasks,
                          Slots[S].Results);
        {
          std::lock_guard<std::mutex> Lock(M);
          Slots[S].Full = false;
        }
        SlotEmpty.notify_one();
        S ^= 1;
      }
    });

    unsigned S = 0;
    for (auto &[WaveId, WaveTasks] : Waves) {
      {
        std::unique_lock<std::mutex> Lock(M);
        SlotEmpty.wait(Lock, [&] { return !Slots[S].Full; });
      }
      WaveSlot &Slot = Slots[S];
      Slot.WaveId = WaveId;
      Slot.WaveTasks = &WaveTasks;
      RunFunctional(WaveTasks, Slot.Results);
      {
        std::lock_guard<std::mutex> Lock(M);
        Slot.Full = true;
      }
      SlotFull.notify_one();
      S ^= 1;
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      NoMoreWaves = true;
    }
    SlotFull.notify_one();
    Replayer.join();
  }
  assert(Profile.Tasks.size() == Tasks.size() && "lost tasks");
  Profile.FunctionalSeconds = FunctionalSecs;

  if (Capture) {
    for (TaskCapture &TC : Capture->Tasks) {
      for (PhaseCapture *PC : {&TC.Access, &TC.Execute}) {
        std::sort(PC->Lines.begin(), PC->Lines.end());
        PC->Lines.erase(std::unique(PC->Lines.begin(), PC->Lines.end()),
                        PC->Lines.end());
      }
    }
  }
  return Profile;
}
