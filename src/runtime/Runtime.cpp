//===- runtime/Runtime.cpp - DAE task runtime --------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "ir/Function.h"
#include "sim/Interpreter.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

TaskRuntime::TaskRuntime(const MachineConfig &Cfg, Memory &Mem,
                         const sim::Loader &L)
    : Cfg(Cfg), Mem(Mem), Loader(L) {}

RunProfile TaskRuntime::execute(const std::vector<Task> &Tasks,
                                bool RunAccess) {
  const unsigned NumCores = Cfg.NumCores;
  CacheHierarchy Caches(Cfg, NumCores);
  Interpreter Interp(Cfg, Mem, Caches, Loader);

  RunProfile Profile;
  Profile.NumCores = NumCores;
  Profile.Tasks.reserve(Tasks.size());

  // Group into dependency waves; the runtime barriers between them.
  std::map<unsigned, std::vector<const Task *>> Waves;
  for (const Task &T : Tasks)
    Waves[T.Wave].push_back(&T);

  std::vector<double> CoreTimeNs(NumCores, 0.0);
  for (auto &[WaveId, WaveTasks] : Waves) {
    // Round-robin seeding (owner pops front, thieves steal from the back).
    std::vector<std::deque<const Task *>> Queues(NumCores);
    for (size_t I = 0; I != WaveTasks.size(); ++I)
      Queues[I % NumCores].push_back(WaveTasks[I]);

    size_t Remaining = WaveTasks.size();
    while (Remaining > 0) {
      // The core with the smallest simulated time runs next. Ordering uses
      // fmax; the evaluator reprices per policy afterwards.
      unsigned Core = 0;
      for (unsigned C = 1; C != NumCores; ++C)
        if (CoreTimeNs[C] < CoreTimeNs[Core])
          Core = C;

      const Task *T = nullptr;
      if (!Queues[Core].empty()) {
        T = Queues[Core].front();
        Queues[Core].pop_front();
      } else {
        unsigned Victim = NumCores;
        for (unsigned C = 0; C != NumCores; ++C)
          if (!Queues[C].empty() &&
              (Victim == NumCores ||
               Queues[C].size() > Queues[Victim].size()))
            Victim = C;
        if (Victim == NumCores)
          break;
        T = Queues[Victim].back();
        Queues[Victim].pop_back();
      }

      TaskProfile TP;
      TP.Core = Core;
      TP.Wave = WaveId;
      if (RunAccess && T->Access) {
        TP.HasAccess = true;
        TP.Access = Interp.run(*T->Access, Core, T->Args);
      }
      TP.Execute = Interp.run(*T->Execute, Core, T->Args);
      CoreTimeNs[Core] += TP.Access.timeNs(Cfg.fmax()) +
                          TP.Execute.timeNs(Cfg.fmax()) +
                          Profile.PerTaskOverheadCycles / Cfg.fmax();
      Profile.Tasks.push_back(std::move(TP));
      --Remaining;
    }

    // Barrier: every core advances to the wave's completion time.
    double WaveEnd = *std::max_element(CoreTimeNs.begin(), CoreTimeNs.end());
    for (double &T : CoreTimeNs)
      T = WaveEnd;
  }
  assert(Profile.Tasks.size() == Tasks.size() && "lost tasks");
  return Profile;
}
