//===- runtime/Runtime.cpp - DAE task runtime --------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The host-parallel simulation engine. Each dependency wave runs in two
// passes that together reproduce the sequential engine's profile exactly:
//
//  1. Functional pass — every task of the wave executes (values + recorded
//     access trace) on a pool of host worker threads, each owning a private
//     tracing Interpreter. Same-wave tasks are independent by the runtime's
//     contract, so their memory effects commute and execution order does not
//     matter.
//  2. Timing pass — single-threaded. The exact greedy min-time /
//     steal-from-longest-queue schedule of the original engine picks tasks,
//     and each chosen task's traces are replayed through the per-core L1/L2
//     and shared LLC in schedule order. Hit/miss outcomes therefore never
//     depend on host interleaving: profiles are bit-identical for any
//     --sim-threads value, including 1.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "ir/Function.h"
#include "sim/AccessTrace.h"
#include "sim/Interpreter.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

/// A reusable fork-join pool: run(Count, Fn) hands out indices [0, Count)
/// to Workers host threads, the caller participating as worker 0. Threads
/// are spawned once and parked between waves.
class WorkerPool {
public:
  explicit WorkerPool(unsigned Workers) : Workers(std::max(1u, Workers)) {
    for (unsigned W = 1; W != this->Workers; ++W)
      Threads.emplace_back([this, W] { workerLoop(W); });
  }

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Quit = true;
      ++Generation;
    }
    Wake.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned workers() const { return Workers; }

  /// Runs Fn(Index, Worker) for every Index in [0, Count). Returns when all
  /// indices have completed. Fn must be safe to call concurrently for
  /// distinct indices.
  void run(std::size_t Count,
           const std::function<void(std::size_t, unsigned)> &Fn) {
    if (Count == 0)
      return;
    if (Workers == 1 || Count == 1) {
      for (std::size_t I = 0; I != Count; ++I)
        Fn(I, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      Job = &Fn;
      JobCount = Count;
      Next.store(0, std::memory_order_relaxed);
      Active = Workers - 1;
      ++Generation;
    }
    Wake.notify_all();
    drain(Fn, Count, 0);
    std::unique_lock<std::mutex> Lock(M);
    Done.wait(Lock, [this] { return Active == 0; });
    Job = nullptr;
  }

private:
  void drain(const std::function<void(std::size_t, unsigned)> &Fn,
             std::size_t Count, unsigned Worker) {
    for (;;) {
      std::size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        return;
      Fn(I, Worker);
    }
  }

  void workerLoop(unsigned Worker) {
    std::uint64_t SeenGeneration = 0;
    for (;;) {
      const std::function<void(std::size_t, unsigned)> *Fn;
      std::size_t Count;
      {
        std::unique_lock<std::mutex> Lock(M);
        Wake.wait(Lock, [&] { return Generation != SeenGeneration; });
        SeenGeneration = Generation;
        if (Quit)
          return;
        Fn = Job;
        Count = JobCount;
      }
      drain(*Fn, Count, Worker);
      {
        std::lock_guard<std::mutex> Lock(M);
        if (--Active == 0)
          Done.notify_one();
      }
    }
  }

  unsigned Workers;
  std::vector<std::thread> Threads;
  std::mutex M;
  std::condition_variable Wake, Done;
  std::uint64_t Generation = 0;
  bool Quit = false;
  const std::function<void(std::size_t, unsigned)> *Job = nullptr;
  std::size_t JobCount = 0;
  std::atomic<std::size_t> Next{0};
  unsigned Active = 0;
};

/// One task's functional-pass output, waiting for its timing replay.
struct WaveResult {
  bool HasAccess = false;
  PhaseStats Access, Execute;
  AccessTrace AccessTr, ExecTr;
};

/// Streams a recorded access trace through the hierarchy as \p Core, adding
/// the cache-dependent statistics to \p S. The per-kind accounting matches
/// the fused interpreter's inline cost model statement for statement. When
/// \p Cap is non-null, every event's cache line lands in Cap->Lines and
/// every DRAM-missing demand access in Cap->MissLines (oracle capture; has
/// no effect on any simulated outcome).
void replayTrace(const AccessTrace &Tr, CacheHierarchy &Caches, unsigned Core,
                 const MachineConfig &Cfg, PhaseStats &S,
                 PhaseCapture *Cap = nullptr, std::uint64_t LineBytes = 64) {
  for (std::uint64_t E : Tr.events()) {
    std::uint64_t Addr = AccessTrace::addrOf(E);
    HitLevel Level = Caches.access(Core, Addr);
    if (Cap) {
      std::uint64_t Line = Addr / LineBytes;
      Cap->Lines.push_back(Line);
      if (Level == HitLevel::Memory &&
          AccessTrace::kindOf(E) == AccessTrace::Kind::Load)
        Cap->MissLines.push_back(Line);
    }
    switch (AccessTrace::kindOf(E)) {
    case AccessTrace::Kind::Load:
      switch (Level) {
      case HitLevel::L1:
        ++S.L1Hits;
        S.ComputeCycles += Cfg.L1HitCycles;
        break;
      case HitLevel::L2:
        ++S.L2Hits;
        S.ComputeCycles += Cfg.L2HitCycles;
        break;
      case HitLevel::LLC:
        ++S.LLCHits;
        S.ComputeCycles += Cfg.LLCHitCycles;
        break;
      case HitLevel::Memory:
        ++S.MemAccesses;
        S.StallNs += Cfg.MemLatencyNs / Cfg.LoadMlp;
        break;
      }
      break;
    case AccessTrace::Kind::Store:
      switch (Level) {
      case HitLevel::L1:
        ++S.L1Hits;
        break;
      case HitLevel::L2:
        ++S.L2Hits;
        S.ComputeCycles += Cfg.L2HitCycles * 0.5;
        break;
      case HitLevel::LLC:
        ++S.LLCHits;
        S.ComputeCycles += Cfg.LLCHitCycles * 0.5;
        break;
      case HitLevel::Memory:
        ++S.MemAccesses;
        S.StallNs += Cfg.MemLatencyNs / Cfg.StoreMlp;
        break;
      }
      break;
    case AccessTrace::Kind::Prefetch:
      switch (Level) {
      case HitLevel::L1:
      case HitLevel::L2:
        break;
      case HitLevel::LLC:
        S.StallNs += Cfg.LLCHitCycles / Cfg.fmax() / Cfg.PrefetchMlp;
        break;
      case HitLevel::Memory:
        ++S.MemAccesses;
        S.StallNs += Cfg.MemLatencyNs / Cfg.PrefetchMlp;
        break;
      }
      break;
    }
  }
}

} // namespace

TaskRuntime::TaskRuntime(const MachineConfig &Cfg, Memory &Mem,
                         const sim::Loader &L)
    : Cfg(Cfg), Mem(Mem), Loader(L) {}

RunProfile TaskRuntime::execute(const std::vector<Task> &Tasks, bool RunAccess,
                                RunCapture *Capture) {
  const unsigned NumCores = Cfg.NumCores;
  CacheHierarchy Caches(Cfg, NumCores);

  if (Capture) {
    Capture->LineBytes = Cfg.LLC.LineBytes;
    Capture->Tasks.assign(Tasks.size(), TaskCapture());
  }

  // Compile every task function (and transitive callees) up front; the
  // program is read-only from here on and shared by all workers.
  CompiledProgram Program(Cfg, Loader);
  for (const Task &T : Tasks) {
    Program.add(*T.Execute);
    if (T.Access)
      Program.add(*T.Access);
  }

  WorkerPool Pool(Cfg.SimThreads);
  std::vector<std::unique_ptr<Interpreter>> Interps;
  Interps.reserve(Pool.workers());
  for (unsigned W = 0; W != Pool.workers(); ++W)
    Interps.push_back(
        std::make_unique<Interpreter>(Cfg, Mem, Loader, &Program));

  RunProfile Profile;
  Profile.NumCores = NumCores;
  Profile.Tasks.reserve(Tasks.size());

  // Group into dependency waves; the runtime barriers between them.
  std::map<unsigned, std::vector<const Task *>> Waves;
  for (const Task &T : Tasks)
    Waves[T.Wave].push_back(&T);

  std::vector<double> CoreTimeNs(NumCores, 0.0);
  std::vector<WaveResult> Results;
  for (auto &[WaveId, WaveTasks] : Waves) {
    // Functional pass: compute values and record access traces for every
    // task of the wave, in parallel across the pool.
    Results.clear();
    Results.resize(WaveTasks.size());
    Pool.run(WaveTasks.size(), [&](std::size_t I, unsigned Worker) {
      const Task &T = *WaveTasks[I];
      WaveResult &R = Results[I];
      Interpreter &Interp = *Interps[Worker];
      if (RunAccess && T.Access) {
        R.HasAccess = true;
        R.AccessTr.acquireFrom(TracePool::global());
        R.Access = Interp.runTraced(*T.Access, T.Args, R.AccessTr);
      }
      R.ExecTr.acquireFrom(TracePool::global());
      R.Execute = Interp.runTraced(*T.Execute, T.Args, R.ExecTr);
    });

    // Timing pass: the original greedy schedule, replaying each chosen
    // task's traces through the caches in schedule order.
    std::vector<std::deque<std::size_t>> Queues(NumCores);
    for (std::size_t I = 0; I != WaveTasks.size(); ++I)
      Queues[I % NumCores].push_back(I);

    std::size_t Remaining = WaveTasks.size();
    while (Remaining > 0) {
      // The core with the smallest simulated time runs next. Ordering uses
      // fmax; the evaluator reprices per policy afterwards.
      unsigned Core = 0;
      for (unsigned C = 1; C != NumCores; ++C)
        if (CoreTimeNs[C] < CoreTimeNs[Core])
          Core = C;

      std::size_t Chosen;
      if (!Queues[Core].empty()) {
        Chosen = Queues[Core].front();
        Queues[Core].pop_front();
      } else {
        unsigned Victim = NumCores;
        for (unsigned C = 0; C != NumCores; ++C)
          if (!Queues[C].empty() &&
              (Victim == NumCores ||
               Queues[C].size() > Queues[Victim].size()))
            Victim = C;
        if (Victim == NumCores)
          break;
        Chosen = Queues[Victim].back();
        Queues[Victim].pop_back();
      }

      WaveResult &R = Results[Chosen];
      TaskCapture *Cap = nullptr;
      if (Capture) {
        // Original task index: WaveTasks holds pointers into Tasks.
        Cap = &Capture->Tasks[WaveTasks[Chosen] - Tasks.data()];
      }
      TaskProfile TP;
      TP.Core = Core;
      TP.Wave = WaveId;
      if (R.HasAccess) {
        TP.HasAccess = true;
        TP.Access = R.Access;
        if (Cap)
          Cap->HasAccess = true;
        replayTrace(R.AccessTr, Caches, Core, Cfg, TP.Access,
                    Cap ? &Cap->Access : nullptr,
                    Capture ? Capture->LineBytes : 64);
        R.AccessTr.releaseTo(TracePool::global());
      }
      TP.Execute = R.Execute;
      replayTrace(R.ExecTr, Caches, Core, Cfg, TP.Execute,
                  Cap ? &Cap->Execute : nullptr,
                  Capture ? Capture->LineBytes : 64);
      R.ExecTr.releaseTo(TracePool::global());

      CoreTimeNs[Core] += TP.Access.timeNs(Cfg.fmax()) +
                          TP.Execute.timeNs(Cfg.fmax()) +
                          Profile.PerTaskOverheadCycles / Cfg.fmax();
      Profile.Tasks.push_back(std::move(TP));
      --Remaining;
    }

    // Barrier: every core advances to the wave's completion time.
    double WaveEnd = *std::max_element(CoreTimeNs.begin(), CoreTimeNs.end());
    for (double &T : CoreTimeNs)
      T = WaveEnd;
  }
  assert(Profile.Tasks.size() == Tasks.size() && "lost tasks");

  if (Capture) {
    for (TaskCapture &TC : Capture->Tasks) {
      for (PhaseCapture *PC : {&TC.Access, &TC.Execute}) {
        std::sort(PC->Lines.begin(), PC->Lines.end());
        PC->Lines.erase(std::unique(PC->Lines.begin(), PC->Lines.end()),
                        PC->Lines.end());
      }
    }
  }
  return Profile;
}
