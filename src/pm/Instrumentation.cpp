//===- pm/Instrumentation.cpp - Pipeline timing, verification --------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pm/Instrumentation.h"

#include "ir/Function.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <cstdlib>

using namespace dae;
using namespace dae::pm;

PipelineConfig &pm::config() {
  static PipelineConfig C = [] {
    PipelineConfig Init;
    const char *V = std::getenv("DAECC_VERIFY_EACH");
    Init.VerifyEach = V && V[0] == '1';
    const char *P = std::getenv("DAECC_PRINT_AFTER_ALL");
    Init.PrintAfterAll = P && P[0] == '1';
    return Init;
  }();
  return C;
}

PipelineStats &PipelineStats::get() {
  static PipelineStats S;
  return S;
}

void PipelineStats::notePass(const std::string &Name, double Seconds,
                             bool Changed) {
  std::lock_guard<std::mutex> Lock(Mutex);
  PassStat &S = Passes[Name];
  ++S.Runs;
  S.Changed += Changed ? 1 : 0;
  S.Seconds += Seconds;
}

void PipelineStats::noteAnalysis(const std::string &Name, double Seconds,
                                 bool CacheHit) {
  std::lock_guard<std::mutex> Lock(Mutex);
  AnalysisStat &S = Analyses[Name];
  if (CacheHit)
    ++S.CacheHits;
  else
    ++S.Computes;
  S.Seconds += Seconds;
}

std::map<std::string, PassStat> PipelineStats::passes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Passes;
}

std::map<std::string, AnalysisStat> PipelineStats::analyses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Analyses;
}

std::string PipelineStats::json() const {
  auto P = passes();
  auto A = analyses();
  std::string Out = "{\"passes\": [";
  bool First = true;
  char Buf[256];
  for (const auto &[Name, S] : P) {
    std::snprintf(Buf, sizeof Buf,
                  "%s{\"name\": \"%s\", \"runs\": %llu, \"changed\": %llu, "
                  "\"wall_seconds\": %.6f}",
                  First ? "" : ", ", Name.c_str(),
                  static_cast<unsigned long long>(S.Runs),
                  static_cast<unsigned long long>(S.Changed), S.Seconds);
    Out += Buf;
    First = false;
  }
  Out += "], \"analyses\": [";
  First = true;
  for (const auto &[Name, S] : A) {
    std::snprintf(Buf, sizeof Buf,
                  "%s{\"name\": \"%s\", \"computes\": %llu, "
                  "\"cache_hits\": %llu, \"wall_seconds\": %.6f}",
                  First ? "" : ", ", Name.c_str(),
                  static_cast<unsigned long long>(S.Computes),
                  static_cast<unsigned long long>(S.CacheHits), S.Seconds);
    Out += Buf;
    First = false;
  }
  Out += "]}";
  return Out;
}

void PipelineStats::print(std::FILE *Out) const {
  auto P = passes();
  auto A = analyses();
  std::fprintf(Out, "\n[pass-stats] pass            runs  changed  seconds\n");
  for (const auto &[Name, S] : P)
    std::fprintf(Out, "[pass-stats] %-15s %5llu  %7llu  %.6f\n", Name.c_str(),
                 static_cast<unsigned long long>(S.Runs),
                 static_cast<unsigned long long>(S.Changed), S.Seconds);
  std::fprintf(Out,
               "[pass-stats] analysis     computes  cache-hits  seconds\n");
  for (const auto &[Name, S] : A)
    std::fprintf(Out, "[pass-stats] %-12s %8llu  %10llu  %.6f\n", Name.c_str(),
                 static_cast<unsigned long long>(S.Computes),
                 static_cast<unsigned long long>(S.CacheHits), S.Seconds);
}

void PipelineStats::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Passes.clear();
  Analyses.clear();
}

void pm::verifyNow(const ir::Function &F, const char *Context) {
  std::vector<std::string> Problems = ir::verifyFunction(F);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "daecc: IR verification failed after %s in '%s':\n",
               Context, F.getName().c_str());
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::fprintf(stderr, "%s\n",
               ir::printFunction(const_cast<ir::Function &>(F)).c_str());
  std::abort();
}

void pm::verifyGenerated(const ir::Function &F, const char *Context) {
#ifdef NDEBUG
  if (!config().VerifyEach)
    return;
#endif
  verifyNow(F, Context);
}
