//===- pm/Analyses.h - Concrete analysis registrations ----------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyses the pipeline caches, wrapped for FunctionAnalysisManager.
/// These are the only places in the tree that construct DominatorTree,
/// LoopInfo, ScalarEvolution, or the task classification outside passes'
/// own internals — every consumer (generators, harness, tests) pulls them
/// from the manager so each is computed once per function state.
///
/// Dependency edges matter for invalidation: a cached ScalarEvolution holds
/// a reference into the cached LoopInfo, so invalidating LoopAnalysis
/// cascades to ScalarEvolutionAnalysis (see
/// FunctionAnalysisManager::invalidate). TaskClassification and the printed
/// body are plain values and carry no edges.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_PM_ANALYSES_H
#define DAECC_PM_ANALYSES_H

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/ScalarEvolution.h"
#include "analysis/TaskAnalysis.h"
#include "pm/AnalysisManager.h"

#include <string>
#include <vector>

namespace dae {
namespace pm {

/// analysis::DominatorTree, cached.
struct DominatorsAnalysis {
  using Result = analysis::DominatorTree;
  static inline AnalysisKey Key;
  static const char *name() { return "dominators"; }
  static std::vector<const AnalysisKey *> dependencies() { return {}; }
  static Result run(ir::Function &F, FunctionAnalysisManager &FAM);
};

/// analysis::PostDominatorTree, cached.
struct PostDominatorsAnalysis {
  using Result = analysis::PostDominatorTree;
  static inline AnalysisKey Key;
  static const char *name() { return "postdominators"; }
  static std::vector<const AnalysisKey *> dependencies() { return {}; }
  static Result run(ir::Function &F, FunctionAnalysisManager &FAM);
};

/// analysis::LoopInfo, cached. Reuses the cached dominator tree for loop
/// detection but keeps no reference into it afterwards, so it carries no
/// dependency edge.
struct LoopAnalysis {
  using Result = analysis::LoopInfo;
  static inline AnalysisKey Key;
  static const char *name() { return "loopinfo"; }
  static std::vector<const AnalysisKey *> dependencies() { return {}; }
  static Result run(ir::Function &F, FunctionAnalysisManager &FAM);
};

/// analysis::ScalarEvolution, cached. Holds a reference to the cached
/// LoopInfo for the lifetime of the entry, hence the dependency edge.
struct ScalarEvolutionAnalysis {
  using Result = analysis::ScalarEvolution;
  static inline AnalysisKey Key;
  static const char *name() { return "scalarevolution"; }
  static std::vector<const AnalysisKey *> dependencies() {
    return {&LoopAnalysis::Key};
  }
  static Result run(ir::Function &F, FunctionAnalysisManager &FAM);
};

/// analysis::classifyTask, cached: the generators, the memo, and the
/// harness all need the same classification of the same optimized task.
struct TaskClassificationAnalysis {
  using Result = analysis::TaskClassification;
  static inline AnalysisKey Key;
  static const char *name() { return "taskclass"; }
  static std::vector<const AnalysisKey *> dependencies() { return {}; }
  static Result run(ir::Function &F, FunctionAnalysisManager &FAM);
};

/// The printed body (ir::Printer), cached. The generation memo fingerprints
/// the optimized task with this, sharing the print with anything else that
/// needs the text.
struct FunctionPrintAnalysis {
  using Result = std::string;
  static inline AnalysisKey Key;
  static const char *name() { return "print"; }
  static std::vector<const AnalysisKey *> dependencies() { return {}; }
  static Result run(ir::Function &F, FunctionAnalysisManager &FAM);
};

} // namespace pm
} // namespace dae

#endif // DAECC_PM_ANALYSES_H
