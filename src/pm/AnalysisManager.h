//===- pm/AnalysisManager.h - Cached function analyses ----------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-new-PM-style analysis caching for the compilation pipeline. A
/// FunctionAnalysisManager memoizes analysis results keyed by
/// (function, analysis); passes report what they kept intact through a
/// PreservedAnalyses value and the manager drops exactly the invalidated
/// entries (plus anything that depends on them, so a cached ScalarEvolution
/// never outlives the LoopInfo it references).
///
/// An analysis is any type with this shape:
///
///   struct MyAnalysis {
///     using Result = ...;                       // movable
///     static inline AnalysisKey Key;            // identity, by address
///     static const char *name();                // for instrumentation
///     static std::vector<const AnalysisKey *> dependencies();
///     static Result run(ir::Function &F, FunctionAnalysisManager &FAM);
///   };
///
/// dependencies() lists the analyses whose cached results this analysis
/// holds *references into*; invalidating a dependency invalidates the
/// dependent (transitively). Results are held behind stable heap addresses,
/// so a reference returned by getResult stays valid until the entry is
/// invalidated, even across nested getResult calls.
///
/// The manager is deliberately not thread-safe: the harness creates one per
/// app-preparation job (see harness/JobPool.h for the job model), the same
/// way it already scopes Loader and Memory. The global pipeline statistics
/// it feeds are mutex-protected (pm/Instrumentation.h).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_PM_ANALYSISMANAGER_H
#define DAECC_PM_ANALYSISMANAGER_H

#include "pm/Instrumentation.h"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

namespace dae {
namespace ir {
class Function;
}

namespace pm {

/// Identity tag for one analysis type; compared by address, so each analysis
/// declares exactly one (as `static inline AnalysisKey Key`).
struct AnalysisKey {
  AnalysisKey() = default;
  AnalysisKey(const AnalysisKey &) = delete;
  AnalysisKey &operator=(const AnalysisKey &) = delete;
};

/// What a pass left intact. Passes return this from run(); the manager
/// drops every cached entry the value does not cover. The common cases are
/// all() (pass changed nothing) and none() (pass mutated the IR and makes
/// no finer claim).
class PreservedAnalyses {
public:
  /// Everything is preserved: the pass did not change the function.
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.All = true;
    return PA;
  }

  /// Nothing is preserved: the pass changed the function.
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  /// Marks one analysis as preserved despite other invalidation; the pass
  /// guarantees it kept that analysis' result correct.
  template <typename AnalysisT> PreservedAnalyses &preserve() {
    Kept.insert(&AnalysisT::Key);
    return *this;
  }

  /// Narrows to what both this and \p Other preserve.
  void intersect(const PreservedAnalyses &Other) {
    if (Other.All)
      return;
    if (All) {
      *this = Other;
      return;
    }
    std::set<const AnalysisKey *> Common;
    for (const AnalysisKey *K : Kept)
      if (Other.Kept.count(K))
        Common.insert(K);
    Kept = std::move(Common);
  }

  bool areAllPreserved() const { return All; }
  bool preserved(const AnalysisKey *K) const {
    return All || Kept.count(K) != 0;
  }

private:
  bool All = false;
  std::set<const AnalysisKey *> Kept;
};

/// Caches analysis results per function. See file comment for the analysis
/// concept and the threading model.
class FunctionAnalysisManager {
public:
  FunctionAnalysisManager() = default;
  FunctionAnalysisManager(const FunctionAnalysisManager &) = delete;
  FunctionAnalysisManager &operator=(const FunctionAnalysisManager &) = delete;

  /// Returns the cached result for (\p F, AnalysisT), computing (and
  /// caching) it on a miss. The reference is stable until the entry is
  /// invalidated.
  template <typename AnalysisT>
  typename AnalysisT::Result &getResult(ir::Function &F) {
    if (auto *Cached = getCachedResult<AnalysisT>(F)) {
      PipelineStats::get().noteAnalysis(AnalysisT::name(), 0.0,
                                        /*CacheHit=*/true);
      return *Cached;
    }
    auto T0 = std::chrono::steady_clock::now();
    // run() may itself query the manager; the new slot is appended only
    // after it returns, so nested insertions cannot dangle.
    auto Model = std::make_unique<ResultModel<typename AnalysisT::Result>>(
        AnalysisT::run(F, *this));
    double Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    typename AnalysisT::Result &Ref = Model->Value;
    Cache[&F].push_back(Slot{&AnalysisT::Key, AnalysisT::dependencies(),
                             std::move(Model)});
    PipelineStats::get().noteAnalysis(AnalysisT::name(), Seconds,
                                      /*CacheHit=*/false);
    return Ref;
  }

  /// Returns the cached result for (\p F, AnalysisT) or null; never
  /// computes.
  template <typename AnalysisT>
  typename AnalysisT::Result *getCachedResult(const ir::Function &F) {
    auto It = Cache.find(&F);
    if (It == Cache.end())
      return nullptr;
    for (Slot &S : It->second)
      if (S.Key == &AnalysisT::Key)
        return &static_cast<ResultModel<typename AnalysisT::Result> *>(
                    S.Model.get())
                    ->Value;
    return nullptr;
  }

  /// Drops every cached entry for \p F that \p PA does not preserve, then
  /// cascades: an entry whose dependency was dropped is dropped too.
  void invalidate(const ir::Function &F, const PreservedAnalyses &PA) {
    if (PA.areAllPreserved())
      return;
    auto It = Cache.find(&F);
    if (It == Cache.end())
      return;
    std::set<const AnalysisKey *> Dropped;
    auto Doomed = [&](const Slot &S) {
      if (!PA.preserved(S.Key))
        return true;
      for (const AnalysisKey *D : S.Deps)
        if (!PA.preserved(D) || Dropped.count(D))
          return true;
      return false;
    };
    bool Again = true;
    while (Again) {
      Again = false;
      for (auto SlotIt = It->second.begin(); SlotIt != It->second.end();) {
        if (Doomed(*SlotIt)) {
          Dropped.insert(SlotIt->Key);
          SlotIt = It->second.erase(SlotIt);
          Again = true;
        } else {
          ++SlotIt;
        }
      }
    }
    if (It->second.empty())
      Cache.erase(It);
  }

  /// Forgets everything cached for \p F (e.g. the function is being
  /// destroyed or rewritten wholesale).
  void clear(const ir::Function &F) { Cache.erase(&F); }

  /// Forgets everything.
  void clear() { Cache.clear(); }

private:
  struct ResultConcept {
    virtual ~ResultConcept() = default;
  };
  template <typename T> struct ResultModel : ResultConcept {
    explicit ResultModel(T &&V) : Value(std::move(V)) {}
    T Value;
  };
  struct Slot {
    const AnalysisKey *Key;
    std::vector<const AnalysisKey *> Deps;
    std::unique_ptr<ResultConcept> Model;
  };

  std::map<const ir::Function *, std::vector<Slot>> Cache;
};

} // namespace pm
} // namespace dae

#endif // DAECC_PM_ANALYSISMANAGER_H
