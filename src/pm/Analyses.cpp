//===- pm/Analyses.cpp - Concrete analysis registrations -------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pm/Analyses.h"

#include "ir/Function.h"
#include "ir/Printer.h"

using namespace dae;
using namespace dae::pm;

DominatorsAnalysis::Result
DominatorsAnalysis::run(ir::Function &F, FunctionAnalysisManager &) {
  return analysis::DominatorTree(F);
}

PostDominatorsAnalysis::Result
PostDominatorsAnalysis::run(ir::Function &F, FunctionAnalysisManager &) {
  return analysis::PostDominatorTree(F);
}

LoopAnalysis::Result LoopAnalysis::run(ir::Function &F,
                                       FunctionAnalysisManager &FAM) {
  return analysis::LoopInfo(F, FAM.getResult<DominatorsAnalysis>(F));
}

ScalarEvolutionAnalysis::Result
ScalarEvolutionAnalysis::run(ir::Function &F, FunctionAnalysisManager &FAM) {
  return analysis::ScalarEvolution(F, FAM.getResult<LoopAnalysis>(F));
}

TaskClassificationAnalysis::Result
TaskClassificationAnalysis::run(ir::Function &F,
                                FunctionAnalysisManager &FAM) {
  const analysis::LoopInfo &LI = FAM.getResult<LoopAnalysis>(F);
  analysis::ScalarEvolution &SE = FAM.getResult<ScalarEvolutionAnalysis>(F);
  return analysis::classifyTask(F, LI, SE);
}

FunctionPrintAnalysis::Result
FunctionPrintAnalysis::run(ir::Function &F, FunctionAnalysisManager &) {
  return ir::printFunction(F);
}
