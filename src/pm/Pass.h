//===- pm/Pass.h - Function passes and pass managers ------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-class function passes for the compilation pipeline. A pass is an
/// object with a name and a run() that transforms the function and reports
/// what analyses survived via PreservedAnalyses; "did it change anything" is
/// exactly !areAllPreserved(). The PassManager runs a fixed sequence once;
/// the FixpointPassManager repeats its sequence until a whole sweep changes
/// nothing (with an iteration cap as a safety net). Both are passes
/// themselves, so pipelines nest.
///
/// The pass manager provides the instrumentation the free-function passes
/// never had: per-pass wall time and change counts into pm::PipelineStats,
/// ir::verify after every pass under --verify-each / DAECC_VERIFY_EACH, and
/// IR dumps after changing passes under --print-after-all /
/// DAECC_PRINT_AFTER_ALL.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_PM_PASS_H
#define DAECC_PM_PASS_H

#include "pm/AnalysisManager.h"

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dae {
namespace pm {

/// Interface for one function transformation.
class FunctionPass {
public:
  virtual ~FunctionPass() = default;

  /// Stable pass name (instrumentation key, diagnostics).
  virtual const char *name() const = 0;

  /// Transforms \p F. Returns what it preserved: all() when the function is
  /// untouched, none() (or a finer claim) when it changed.
  virtual PreservedAnalyses run(ir::Function &F,
                                FunctionAnalysisManager &FAM) = 0;

  /// True for pass managers; their contained passes self-report to the
  /// statistics registry, so the container must not be counted again.
  virtual bool isPipeline() const { return false; }
};

/// Runs a sequence of passes once, in order. After each pass the manager
/// invalidates the analysis cache with the pass's PreservedAnalyses and
/// applies the configured verify/print instrumentation.
class PassManager : public FunctionPass {
public:
  explicit PassManager(std::string Name) : Name(std::move(Name)) {}

  void addPass(std::unique_ptr<FunctionPass> P) {
    assert(P && "null pass");
    Passes.push_back(std::move(P));
  }
  template <typename PassT, typename... ArgTs> void add(ArgTs &&...Args) {
    addPass(std::make_unique<PassT>(std::forward<ArgTs>(Args)...));
  }

  const char *name() const override { return Name.c_str(); }
  bool isPipeline() const override { return true; }

  PreservedAnalyses run(ir::Function &F, FunctionAnalysisManager &FAM) override;

protected:
  /// One sweep over the sequence; \p Changed is set when any pass changed
  /// the function.
  PreservedAnalyses runOnce(ir::Function &F, FunctionAnalysisManager &FAM,
                            bool &Changed);

private:
  std::string Name;
  std::vector<std::unique_ptr<FunctionPass>> Passes;
};

/// Repeats its sequence until a full sweep reports no change, capped at
/// MaxIterations sweeps (mirrors the historical optimizeFunction loop
/// bound; generated IR converges in a handful of sweeps).
class FixpointPassManager : public PassManager {
public:
  explicit FixpointPassManager(std::string Name, unsigned MaxIterations = 32)
      : PassManager(std::move(Name)), MaxIterations(MaxIterations) {}

  PreservedAnalyses run(ir::Function &F, FunctionAnalysisManager &FAM) override;

  /// Sweeps executed by the last run() (test-facing).
  unsigned lastIterations() const { return LastIterations; }

private:
  unsigned MaxIterations;
  unsigned LastIterations = 0;
};

} // namespace pm
} // namespace dae

#endif // DAECC_PM_PASS_H
