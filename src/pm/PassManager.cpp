//===- pm/PassManager.cpp - Pass sequencing and instrumentation ------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pm/Pass.h"

#include "ir/Function.h"
#include "ir/Printer.h"

#include <chrono>

using namespace dae;
using namespace dae::pm;

PreservedAnalyses PassManager::runOnce(ir::Function &F,
                                       FunctionAnalysisManager &FAM,
                                       bool &Changed) {
  PreservedAnalyses PA = PreservedAnalyses::all();
  for (const std::unique_ptr<FunctionPass> &P : Passes) {
    auto T0 = std::chrono::steady_clock::now();
    PreservedAnalyses PassPA = P->run(F, FAM);
    double Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    bool PassChanged = !PassPA.areAllPreserved();
    Changed |= PassChanged;
    // Nested pipelines already reported their contained passes.
    if (!P->isPipeline())
      PipelineStats::get().notePass(P->name(), Seconds, PassChanged);
    FAM.invalidate(F, PassPA);
    if (config().VerifyEach)
      verifyNow(F, P->name());
    if (config().PrintAfterAll && PassChanged)
      std::fprintf(stderr, "; IR after %s on '%s':\n%s\n", P->name(),
                   F.getName().c_str(), ir::printFunction(F).c_str());
    PA.intersect(PassPA);
  }
  return PA;
}

PreservedAnalyses PassManager::run(ir::Function &F,
                                   FunctionAnalysisManager &FAM) {
  bool Changed = false;
  return runOnce(F, FAM, Changed);
}

PreservedAnalyses FixpointPassManager::run(ir::Function &F,
                                           FunctionAnalysisManager &FAM) {
  PreservedAnalyses PA = PreservedAnalyses::all();
  LastIterations = 0;
  bool Changed = true;
  while (Changed && LastIterations < MaxIterations) {
    Changed = false;
    ++LastIterations;
    PA.intersect(runOnce(F, FAM, Changed));
  }
  return PA;
}
