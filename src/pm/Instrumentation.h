//===- pm/Instrumentation.h - Pipeline timing, verification -----*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Built-in instrumentation for the compilation pipeline: a process-wide
/// registry of per-pass and per-analysis wall time / change / cache-hit
/// counts (mutex-protected — generation jobs run concurrently under the
/// harness job pool), pipeline configuration sourced from the environment
/// (DAECC_VERIFY_EACH, DAECC_PRINT_AFTER_ALL) or the bench drivers'
/// --verify-each / --print-after-all flags, and the verification hooks the
/// pass manager and the access generators call.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_PM_INSTRUMENTATION_H
#define DAECC_PM_INSTRUMENTATION_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace dae {
namespace ir {
class Function;
}

namespace pm {

/// Pipeline-wide switches. Seeded once from the environment; the bench
/// drivers overwrite fields from argv before running anything.
struct PipelineConfig {
  /// Run ir::verify after every pass and abort with diagnostics on failure.
  bool VerifyEach = false;
  /// Dump the IR (ir::Printer) to stderr after every pass that changed it.
  bool PrintAfterAll = false;
};

/// The process-wide configuration (DAECC_VERIFY_EACH=1 / DAECC_PRINT_AFTER_ALL=1
/// set the corresponding fields on first use).
PipelineConfig &config();

/// Per-pass counters.
struct PassStat {
  std::uint64_t Runs = 0;
  std::uint64_t Changed = 0; ///< Runs that modified the function.
  double Seconds = 0.0;      ///< Wall time inside run().
};

/// Per-analysis counters.
struct AnalysisStat {
  std::uint64_t Computes = 0;  ///< Cache misses (result actually computed).
  std::uint64_t CacheHits = 0; ///< Queries served from the cache.
  double Seconds = 0.0;        ///< Wall time computing results.
};

/// Process-wide pass/analysis statistics registry. Thread-safe; the pass
/// manager and every FunctionAnalysisManager feed it.
class PipelineStats {
public:
  static PipelineStats &get();

  void notePass(const std::string &Name, double Seconds, bool Changed);
  void noteAnalysis(const std::string &Name, double Seconds, bool CacheHit);

  std::map<std::string, PassStat> passes() const;
  std::map<std::string, AnalysisStat> analyses() const;

  /// Single-line JSON object {"passes": [...], "analyses": [...]}, suitable
  /// for embedding as the "pass_stats" field of BENCH_<name>.json.
  std::string json() const;

  /// Human-readable table (the --pass-stats output).
  void print(std::FILE *Out) const;

  /// Zeroes all counters (tests and per-run bench reporting).
  void reset();

private:
  PipelineStats() = default;
  mutable std::mutex Mutex;
  std::map<std::string, PassStat> Passes;
  std::map<std::string, AnalysisStat> Analyses;
};

/// Verifies \p F immediately and aborts with the full problem list and a
/// dump of the function when it is malformed. \p Context names the pass or
/// generation step for the diagnostic.
void verifyNow(const ir::Function &F, const char *Context);

/// Post-generation verification hook: always active in builds with
/// assertions (every build of this tree keeps them on; see the top-level
/// CMakeLists), and under VerifyEach otherwise.
void verifyGenerated(const ir::Function &F, const char *Context);

} // namespace pm
} // namespace dae

#endif // DAECC_PM_INSTRUMENTATION_H
