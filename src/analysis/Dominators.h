//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator computation (Cooper-Harvey-Kennedy). Task functions
/// are small, so the simple algorithm is plenty. Natural-loop detection in
/// LoopInfo is built on top of this.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_ANALYSIS_DOMINATORS_H
#define DAECC_ANALYSIS_DOMINATORS_H

#include <map>
#include <vector>

namespace dae {
namespace ir {
class BasicBlock;
class Function;
} // namespace ir

namespace analysis {

/// Reverse post-order of the reachable blocks of \p F, entry first.
std::vector<ir::BasicBlock *> reversePostOrder(const ir::Function &F);

/// Immediate-dominator tree for a function.
class DominatorTree {
public:
  explicit DominatorTree(const ir::Function &F);

  /// Immediate dominator of \p BB (null for the entry block and for
  /// unreachable blocks).
  ir::BasicBlock *idom(const ir::BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexively).
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

  /// True if \p BB is reachable from the entry.
  bool isReachable(const ir::BasicBlock *BB) const;

private:
  std::map<const ir::BasicBlock *, ir::BasicBlock *> IDom;
};

/// Immediate post-dominator tree. Requires the function to have exactly one
/// return block (true for all builder-generated tasks); used by the skeleton
/// generator to find the join block of a conditional it is eliminating.
class PostDominatorTree {
public:
  explicit PostDominatorTree(const ir::Function &F);

  /// Immediate post-dominator of \p BB (null for the exit block).
  ir::BasicBlock *ipdom(const ir::BasicBlock *BB) const;

  /// True if \p A post-dominates \p B (reflexively).
  bool postDominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

private:
  std::map<const ir::BasicBlock *, ir::BasicBlock *> IPDom;
};

} // namespace analysis
} // namespace dae

#endif // DAECC_ANALYSIS_DOMINATORS_H
