//===- analysis/TaskAnalysis.cpp - Task classification --------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/TaskAnalysis.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/ScalarEvolution.h"
#include "ir/Function.h"
#include "support/Casting.h"

#include <cassert>
#include <set>

using namespace dae;
using namespace dae::analysis;
using namespace dae::ir;

const char *analysis::taskClassName(TaskClass C) {
  switch (C) {
  case TaskClass::Affine:
    return "affine";
  case TaskClass::Skeleton:
    return "skeleton";
  case TaskClass::Rejected:
    return "rejected";
  }
  return "?";
}

bool analysis::addressComputationReadsTaskStores(const Function &F,
                                                 const LoopInfo &LI) {
  // Collect base arrays the task stores to.
  std::set<const Value *> StoredBases;
  for (const auto &BB : F)
    for (const auto &I : *BB)
      if (const auto *St = dyn_cast<StoreInst>(I.get()))
        if (const auto *Gep = dyn_cast<GepInst>(St->getPointer()))
          StoredBases.insert(Gep->getBase());

  if (StoredBases.empty())
    return false;

  // Mark the backward slice of every address operand and of every *loop
  // exit* condition; if that slice contains a load from a stored-to base,
  // the access version's addresses or loop trip counts would depend on
  // writes it does not perform (section 5.2.2 step 5). Conditions of
  // branches *inside* loop bodies are exempt: the access phase is a
  // speculative prefetch, a stale in-body branch merely mis-prefetches
  // (and the Simplified-CFG optimization usually removes it anyway) —
  // this is what admits libquantum-style read-test-flip kernels.
  std::vector<const Instruction *> Work;
  std::set<const Instruction *> Visited;
  auto Push = [&](const Value *V) {
    if (const auto *I = dyn_cast<Instruction>(V))
      if (Visited.insert(I).second)
        Work.push_back(I);
  };

  for (const auto &BB : F)
    for (const auto &I : *BB) {
      if (const auto *Ld = dyn_cast<LoadInst>(I.get()))
        Push(Ld->getPointer());
      else if (const auto *St = dyn_cast<StoreInst>(I.get()))
        Push(St->getPointer());
      else if (const auto *Pf = dyn_cast<PrefetchInst>(I.get()))
        Push(Pf->getPointer());
      else if (const auto *Br = dyn_cast<BrInst>(I.get())) {
        if (!Br->isConditional())
          continue;
        Loop *L = LI.getLoopFor(BB.get());
        bool IsLoopExit =
            L && L->contains(Br->getTrueDest()) !=
                     L->contains(Br->getFalseDest());
        bool OutsideLoops = !L;
        if (IsLoopExit || OutsideLoops)
          Push(Br->getCondition());
      }
    }

  while (!Work.empty()) {
    const Instruction *I = Work.back();
    Work.pop_back();
    if (const auto *Ld = dyn_cast<LoadInst>(I))
      if (const auto *Gep = dyn_cast<GepInst>(Ld->getPointer()))
        if (StoredBases.count(Gep->getBase()))
          return true;
    for (const Value *Op : I->operands())
      Push(Op);
  }
  return false;
}

TaskClassification analysis::classifyTask(const Function &F,
                                          const LoopInfo &LI,
                                          ScalarEvolution &SE) {
  assert(&SE.getLoopInfo() == &LI &&
         "ScalarEvolution must be built on the supplied LoopInfo");
  TaskClassification Result;

  Result.TotalLoops = static_cast<unsigned>(LI.loops().size());

  // Step 1 (section 5.2.2): remaining calls mean the inliner failed.
  for (const auto &BB : F)
    for (const auto &I : *BB)
      if (isa<CallInst>(I.get())) {
        Result.Class = TaskClass::Rejected;
        Result.Reason = "task contains a non-inlined call";
        return Result;
      }

  // Step 5: address/control computation must not require writes to state
  // visible outside the task.
  if (addressComputationReadsTaskStores(F, LI)) {
    Result.Class = TaskClass::Rejected;
    Result.Reason =
        "address computation reads memory the task writes (external state)";
    return Result;
  }

  // Affinity: every conditional branch is a canonical loop exit test, every
  // loop has affine bounds, and every memory access is affine.
  bool Affine = true;
  std::string Why;

  for (const auto &BB : F) {
    const auto *Br = dyn_cast_if_present<BrInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    Loop *L = LI.getLoopFor(BB.get());
    if (!L || L->getHeader() != BB.get()) {
      Affine = false;
      Why = "data-dependent control flow in '" + BB->getName() + "'";
      break;
    }
  }

  for (const auto &LPtr : LI.loops()) {
    if (!SE.getLoopBounds(LPtr.get()) && Affine) {
      Affine = false;
      Why = "loop bounds are not affine";
    }
  }

  if (Affine) {
    for (const auto &BB : F) {
      for (const auto &I : *BB) {
        if (!isa<LoadInst, StoreInst>(I.get()))
          continue;
        if (!SE.getAccess(I.get())) {
          Affine = false;
          Why = "non-affine memory access";
          break;
        }
      }
      if (!Affine)
        break;
    }
  }

  // Table 1 counts "loops handled with the polyhedral approach": all of the
  // task's loops when the task is affine, none otherwise (the polyhedral
  // generator is all-or-nothing per task).
  Result.AffineLoops = Affine ? Result.TotalLoops : 0;
  Result.Class = Affine ? TaskClass::Affine : TaskClass::Skeleton;
  Result.Reason = Why;
  return Result;
}
