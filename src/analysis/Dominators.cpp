//===- analysis/Dominators.cpp - Dominator tree ---------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "ir/Function.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace dae;
using namespace dae::analysis;
using dae::ir::BasicBlock;
using dae::ir::Function;

std::vector<BasicBlock *> analysis::reversePostOrder(const Function &F) {
  std::vector<BasicBlock *> PostOrder;
  std::set<const BasicBlock *> Visited;
  // Iterative DFS with explicit successor cursor.
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  if (F.empty())
    return PostOrder;
  std::vector<Frame> Stack;
  BasicBlock *Entry = F.getEntry();
  Visited.insert(Entry);
  Stack.push_back({Entry, Entry->successors()});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next < Top.Succs.size()) {
      BasicBlock *S = Top.Succs[Top.Next++];
      if (Visited.insert(S).second)
        Stack.push_back({S, S->successors()});
      continue;
    }
    PostOrder.push_back(Top.BB);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

DominatorTree::DominatorTree(const Function &F) {
  std::vector<BasicBlock *> RPO = reversePostOrder(F);
  if (RPO.empty())
    return;

  std::map<const BasicBlock *, int> RpoIndex;
  for (int I = 0; I != static_cast<int>(RPO.size()); ++I)
    RpoIndex[RPO[I]] = I;

  BasicBlock *Entry = RPO.front();
  IDom[Entry] = Entry; // Sentinel: entry dominates itself.

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = IDom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < RPO.size(); ++I) {
      BasicBlock *BB = RPO[I];
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : BB->predecessors()) {
        if (!RpoIndex.count(Pred) || !IDom.count(Pred))
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end())
    return nullptr;
  // The entry's sentinel self-loop is reported as "no idom".
  return It->second == BB ? nullptr : It->second;
}

bool DominatorTree::isReachable(const ir::BasicBlock *BB) const {
  return IDom.count(BB) != 0;
}

PostDominatorTree::PostDominatorTree(const Function &F) {
  // Find the unique exit (return) block.
  BasicBlock *Exit = nullptr;
  for (const auto &BB : F) {
    if (BB->getTerminator() && isa<ir::RetInst>(BB->getTerminator())) {
      assert(!Exit && "post-dominators require a single return block");
      Exit = BB.get();
    }
  }
  if (!Exit)
    return;

  // Reverse post-order of the reverse CFG, exit first.
  std::vector<BasicBlock *> PostOrder;
  std::set<const BasicBlock *> Visited;
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Preds;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  Visited.insert(Exit);
  Stack.push_back({Exit, Exit->predecessors()});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next < Top.Preds.size()) {
      BasicBlock *P = Top.Preds[Top.Next++];
      if (Visited.insert(P).second)
        Stack.push_back({P, P->predecessors()});
      continue;
    }
    PostOrder.push_back(Top.BB);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());

  std::map<const BasicBlock *, int> Order;
  for (int I = 0; I != static_cast<int>(PostOrder.size()); ++I)
    Order[PostOrder[I]] = I;

  IPDom[Exit] = Exit;
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (Order[A] > Order[B])
        A = IPDom[A];
      while (Order[B] > Order[A])
        B = IPDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < PostOrder.size(); ++I) {
      BasicBlock *BB = PostOrder[I];
      BasicBlock *NewIPDom = nullptr;
      for (BasicBlock *Succ : BB->successors()) {
        if (!Order.count(Succ) || !IPDom.count(Succ))
          continue;
        NewIPDom = NewIPDom ? Intersect(NewIPDom, Succ) : Succ;
      }
      if (!NewIPDom)
        continue; // Block cannot reach the exit.
      auto It = IPDom.find(BB);
      if (It == IPDom.end() || It->second != NewIPDom) {
        IPDom[BB] = NewIPDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *PostDominatorTree::ipdom(const BasicBlock *BB) const {
  auto It = IPDom.find(BB);
  if (It == IPDom.end())
    return nullptr;
  return It->second == BB ? nullptr : It->second;
}

bool PostDominatorTree::postDominates(const BasicBlock *A,
                                      const BasicBlock *B) const {
  if (!IPDom.count(A) || !IPDom.count(B))
    return false;
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    const BasicBlock *Up = IPDom.at(Cur);
    if (Up == Cur)
      return false;
    Cur = Up;
  }
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    const BasicBlock *Up = IDom.at(Cur);
    if (Up == Cur)
      return false; // Reached the entry sentinel.
    Cur = Up;
  }
}
