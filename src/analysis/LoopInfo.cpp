//===- analysis/LoopInfo.cpp - Natural loop detection ---------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/Dominators.h"
#include "ir/Function.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace dae;
using namespace dae::analysis;
using namespace dae::ir;

unsigned Loop::getDepth() const {
  unsigned D = 1;
  for (const Loop *P = Parent; P; P = P->Parent)
    ++D;
  return D;
}

BasicBlock *Loop::getPreheader() const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *Pred : Header->predecessors()) {
    if (contains(Pred))
      continue;
    if (Pre)
      return nullptr; // Multiple outside predecessors.
    Pre = Pred;
  }
  return Pre;
}

BasicBlock *Loop::getLatch() const {
  BasicBlock *Latch = nullptr;
  for (BasicBlock *Pred : Header->predecessors()) {
    if (!contains(Pred))
      continue;
    if (Latch)
      return nullptr; // Multiple latches.
    Latch = Pred;
  }
  return Latch;
}

BasicBlock *Loop::getExitBlock() const {
  BasicBlock *Exit = nullptr;
  for (BasicBlock *BB : Blocks) {
    for (BasicBlock *Succ : BB->successors()) {
      if (contains(Succ))
        continue;
      if (Exit && Exit != Succ)
        return nullptr;
      Exit = Succ;
    }
  }
  return Exit;
}

LoopInfo::LoopInfo(const Function &F) : LoopInfo(F, DominatorTree(F)) {}

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  // Find back edges (Tail -> Header with Header dominating Tail); collect
  // one loop per header, merging bodies of multiple back edges.
  std::map<BasicBlock *, Loop *> HeaderToLoop;
  for (const auto &BBPtr : F) {
    BasicBlock *Tail = BBPtr.get();
    if (!DT.isReachable(Tail))
      continue;
    for (BasicBlock *Header : Tail->successors()) {
      if (!DT.dominates(Header, Tail))
        continue;
      Loop *L = nullptr;
      auto It = HeaderToLoop.find(Header);
      if (It != HeaderToLoop.end()) {
        L = It->second;
      } else {
        AllLoops.push_back(std::make_unique<Loop>());
        L = AllLoops.back().get();
        L->Header = Header;
        L->Blocks.insert(Header);
        HeaderToLoop[Header] = L;
      }
      // Walk predecessors from the back edge tail up to the header.
      std::vector<BasicBlock *> Work{Tail};
      while (!Work.empty()) {
        BasicBlock *BB = Work.back();
        Work.pop_back();
        if (!L->Blocks.insert(BB).second)
          continue;
        for (BasicBlock *Pred : BB->predecessors())
          if (DT.isReachable(Pred))
            Work.push_back(Pred);
      }
    }
  }

  // Establish nesting: parent = smallest strictly-containing loop.
  for (auto &LPtr : AllLoops) {
    Loop *L = LPtr.get();
    Loop *Best = nullptr;
    for (auto &CandPtr : AllLoops) {
      Loop *Cand = CandPtr.get();
      if (Cand == L || !Cand->contains(L->Header))
        continue;
      if (Cand->Blocks.size() <= L->Blocks.size())
        continue; // Equal or smaller cannot strictly contain.
      if (!Best || Cand->Blocks.size() < Best->Blocks.size())
        Best = Cand;
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L);
    else
      TopLevel.push_back(L);
  }

  for (auto &LPtr : AllLoops)
    recognizeInductionVariable(*LPtr);
}

void LoopInfo::recognizeInductionVariable(Loop &L) {
  BasicBlock *Preheader = L.getPreheader();
  BasicBlock *Latch = L.getLatch();
  if (!Preheader || !Latch)
    return;

  // The canonical shape: header phi with {init from preheader, iv+step from
  // latch}; header terminator 'br (cmp slt/sle iv, bound), body, exit'.
  for (PhiInst *Phi : L.getHeader()->phis()) {
    if (Phi->getNumIncoming() != 2)
      continue;
    int PreIdx = Phi->getBlockIndex(Preheader);
    int LatchIdx = Phi->getBlockIndex(Latch);
    if (PreIdx < 0 || LatchIdx < 0)
      continue;
    auto *Inc = dyn_cast<BinaryInst>(
        Phi->getIncomingValue(static_cast<unsigned>(LatchIdx)));
    if (!Inc || Inc->getOpcode() != BinOp::Add)
      continue;
    Value *StepVal = nullptr;
    if (Inc->getLHS() == Phi)
      StepVal = Inc->getRHS();
    else if (Inc->getRHS() == Phi)
      StepVal = Inc->getLHS();
    auto *StepConst = dyn_cast_if_present<ConstantInt>(StepVal);
    if (!StepConst || StepConst->getValue() == 0)
      continue;

    L.IndVar = Phi;
    L.Start = Phi->getIncomingValue(static_cast<unsigned>(PreIdx));
    L.Step = StepConst->getValue();
    break;
  }
  if (!L.IndVar)
    return;

  // Recognize the bound from the header's exit branch.
  auto *Br = dyn_cast_if_present<BrInst>(L.getHeader()->getTerminator());
  if (!Br || !Br->isConditional())
    return;
  auto *Cmp = dyn_cast<CmpInst>(Br->getCondition());
  if (!Cmp)
    return;
  // Loop continues on the true edge into the loop; "iv < bound" shape.
  bool TrueInLoop = L.contains(Br->getTrueDest());
  bool FalseInLoop = L.contains(Br->getFalseDest());
  if (TrueInLoop == FalseInLoop)
    return; // Not the exit branch.
  CmpPred P = Cmp->getPredicate();
  Value *LHS = Cmp->getLHS(), *RHS = Cmp->getRHS();
  // Normalize to "continue while IV < Bound" (exclusive bound).
  if (TrueInLoop && P == CmpPred::SLT && LHS == L.IndVar) {
    L.Bound = RHS;
  } else if (TrueInLoop && P == CmpPred::SGT && RHS == L.IndVar) {
    L.Bound = LHS;
  } else if (!TrueInLoop && P == CmpPred::SGE && LHS == L.IndVar) {
    L.Bound = RHS; // Exits while IV >= Bound, i.e. runs while IV < Bound.
  }
}

Loop *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  Loop *Innermost = nullptr;
  for (const auto &LPtr : AllLoops) {
    Loop *L = LPtr.get();
    if (!L->contains(BB))
      continue;
    if (!Innermost || L->Blocks.size() < Innermost->Blocks.size())
      Innermost = L;
  }
  return Innermost;
}

unsigned LoopInfo::getLoopDepth(const BasicBlock *BB) const {
  Loop *L = getLoopFor(BB);
  return L ? L->getDepth() : 0;
}

std::vector<Loop *> LoopInfo::loopsInnermostFirst() const {
  std::vector<Loop *> Result;
  for (const auto &LPtr : AllLoops)
    Result.push_back(LPtr.get());
  std::sort(Result.begin(), Result.end(), [](Loop *A, Loop *B) {
    if (A->getDepth() != B->getDepth())
      return A->getDepth() > B->getDepth();
    return A->blocks().size() < B->blocks().size();
  });
  return Result;
}
