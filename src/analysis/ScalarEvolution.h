//===- analysis/ScalarEvolution.h - Affine expression analysis --*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plays the role of LLVM's Scalar Evolution pass in the paper (section 5):
/// "analyzes loop-oriented expressions and captures how scalars evolve as
/// loops iterate. Based on the expressions provided ... we compute linear
/// functions to describe the access pattern of each memory instruction, when
/// possible." A value is affine when it can be written
///
///   c0 + sum_i (ci * IV_i) + sum_p (dp * Param_p)
///
/// with integer coefficients, loop induction variables IV_i, and task
/// parameters Param_p (integer arguments of the task function). Values that
/// cannot be written this way (loads, data-dependent selects, products of
/// variables, bit manipulation) are classified non-affine, which routes the
/// enclosing task to the skeleton access generator.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_ANALYSIS_SCALAREVOLUTION_H
#define DAECC_ANALYSIS_SCALAREVOLUTION_H

#include "analysis/LoopInfo.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dae {
namespace ir {
class Value;
class Argument;
class GepInst;
class Function;
class Instruction;
} // namespace ir

namespace analysis {

/// A linear function of loop IVs and task parameters.
struct AffineExpr {
  std::int64_t Const = 0;
  /// Coefficient per loop (keyed by the loop whose IV appears).
  std::map<const Loop *, std::int64_t> IVCoeffs;
  /// Coefficient per parameter (integer task argument).
  std::map<const ir::Value *, std::int64_t> ParamCoeffs;

  bool isConstant() const { return IVCoeffs.empty() && ParamCoeffs.empty(); }
  /// True when no IV appears (may still reference parameters).
  bool isLoopInvariant() const { return IVCoeffs.empty(); }

  std::int64_t coeffOf(const Loop *L) const {
    auto It = IVCoeffs.find(L);
    return It == IVCoeffs.end() ? 0 : It->second;
  }
  std::int64_t coeffOfParam(const ir::Value *P) const {
    auto It = ParamCoeffs.find(P);
    return It == ParamCoeffs.end() ? 0 : It->second;
  }

  AffineExpr operator+(const AffineExpr &R) const;
  AffineExpr operator-(const AffineExpr &R) const;
  AffineExpr scaled(std::int64_t Factor) const;
  bool operator==(const AffineExpr &R) const {
    return Const == R.Const && IVCoeffs == R.IVCoeffs &&
           ParamCoeffs == R.ParamCoeffs;
  }

  /// Human-readable rendering, e.g. "3*i + N + 7".
  std::string str() const;
};

/// An analyzed memory access: the instruction, its array, and one affine
/// index expression per array dimension.
struct AffineAccess {
  const ir::Instruction *MemInst = nullptr; ///< load / store / prefetch
  const ir::GepInst *Gep = nullptr;
  ir::Value *Base = nullptr; ///< global or pointer argument
  std::vector<AffineExpr> Indices;
  std::vector<std::int64_t> DimSizes; ///< from the GEP (outermost may be 0)
  std::int64_t ElemSize = 0;
  bool IsWrite = false;

  /// Set of parameters appearing in any index expression. Accesses with the
  /// same (Base, dims, param signature) form a class in the sense of the
  /// paper's "blocks of the same array" optimization (section 5.1, item 3).
  std::vector<const ir::Value *> paramSignature() const;
};

/// Affine bounds of one loop in a nest: Lower <= IV < Upper.
struct AffineLoopBounds {
  const Loop *L = nullptr;
  AffineExpr Lower; ///< Inclusive.
  AffineExpr Upper; ///< Exclusive.
};

/// Scalar-evolution queries over one function.
class ScalarEvolution {
public:
  ScalarEvolution(const ir::Function &F, const LoopInfo &LI);

  /// Affine form of \p V, or nullopt when V is not affine.
  std::optional<AffineExpr> getAffine(const ir::Value *V);

  /// Analyzes the address of a load/store/prefetch instruction. Requires the
  /// pointer operand to be a GEP whose base is a global or pointer argument
  /// and all of whose indices are affine.
  std::optional<AffineAccess> getAccess(const ir::Instruction *MemInst);

  /// Affine bounds of \p L (start and exclusive bound both affine, step 1).
  std::optional<AffineLoopBounds> getLoopBounds(const Loop *L);

  const LoopInfo &getLoopInfo() const { return LI; }

private:
  std::optional<AffineExpr> computeAffine(const ir::Value *V, unsigned Depth);

  const ir::Function &F;
  const LoopInfo &LI;
  std::map<const ir::Value *, std::optional<AffineExpr>> Cache;
};

} // namespace analysis
} // namespace dae

#endif // DAECC_ANALYSIS_SCALAREVOLUTION_H
