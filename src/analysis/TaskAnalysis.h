//===- analysis/TaskAnalysis.h - Task classification ------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies a task for access-phase generation, implementing the paper's
/// compile-time code classification (section 5): affine tasks go to the
/// polyhedral generator, non-affine tasks to the skeleton generator, and
/// tasks that fail the safety conditions of section 3.1 (non-inlinable
/// calls; address/control computation that writes externally visible state)
/// are rejected and run coupled.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_ANALYSIS_TASKANALYSIS_H
#define DAECC_ANALYSIS_TASKANALYSIS_H

#include <string>

namespace dae {
namespace ir {
class Function;
}

namespace analysis {

class LoopInfo;
class ScalarEvolution;

/// Which access-generation strategy applies to a task.
enum class TaskClass {
  /// All loops and accesses are affine: polyhedral access generation.
  Affine,
  /// Not affine but safe to skeletonize (section 5.2).
  Skeleton,
  /// No access version can be generated; run coupled (CAE).
  Rejected,
};

const char *taskClassName(TaskClass C);

/// Result of classifying one task function.
struct TaskClassification {
  TaskClass Class = TaskClass::Rejected;
  std::string Reason; ///< Why the task was rejected / demoted to skeleton.
  unsigned TotalLoops = 0;
  unsigned AffineLoops = 0; ///< Loops handled with the polyhedral approach.
};

/// Classifies \p F using the caller-provided analyses (\p SE must have been
/// built on \p LI; the pass/analysis manager in pm/ caches and supplies
/// both). Expects the inliner to have run; any remaining call makes the
/// task Rejected (paper section 5.2.2, step 1).
TaskClassification classifyTask(const ir::Function &F, const LoopInfo &LI,
                                ScalarEvolution &SE);

/// True if \p F stores to a memory location that address or control-flow
/// computation may later read (conservative, per base array). This is the
/// rejection condition of section 5.2.2 step 5.
bool addressComputationReadsTaskStores(const ir::Function &F,
                                       const LoopInfo &LI);

} // namespace analysis
} // namespace dae

#endif // DAECC_ANALYSIS_TASKANALYSIS_H
