//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and canonical induction-variable recognition. The
/// affine access generator needs, per loop: the IV phi, its start value, its
/// (constant) step, and the exclusive upper bound from the header exit test.
/// That is exactly the shape emitCountedLoop produces and the shape LLVM's
/// loop-simplify guarantees in the paper's pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_ANALYSIS_LOOPINFO_H
#define DAECC_ANALYSIS_LOOPINFO_H

#include <memory>
#include <set>
#include <vector>

namespace dae {
namespace ir {
class BasicBlock;
class Function;
class PhiInst;
class Value;
class BrInst;
} // namespace ir

namespace analysis {

class DominatorTree;
class LoopInfo;

/// One natural loop: header + body blocks, nesting links, and (when the loop
/// is canonical) its induction variable description.
class Loop {
public:
  ir::BasicBlock *getHeader() const { return Header; }
  const std::set<ir::BasicBlock *> &blocks() const { return Blocks; }
  bool contains(const ir::BasicBlock *BB) const {
    return Blocks.count(const_cast<ir::BasicBlock *>(BB)) != 0;
  }

  Loop *getParent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  /// 1 for outermost loops, +1 per nesting level.
  unsigned getDepth() const;

  /// Unique predecessor of the header outside the loop, or null.
  ir::BasicBlock *getPreheader() const;
  /// Unique in-loop predecessor of the header, or null.
  ir::BasicBlock *getLatch() const;
  /// The single block outside the loop that the header exit branch targets,
  /// or null if the loop has multiple or in-body exits.
  ir::BasicBlock *getExitBlock() const;

  // -- Canonical counted-loop shape (null/false when not canonical) --------

  /// Induction phi in the header, advancing by a constant step.
  ir::PhiInst *getInductionVariable() const { return IndVar; }
  /// IV value on loop entry.
  ir::Value *getStartValue() const { return Start; }
  /// Constant step added each iteration.
  std::int64_t getStep() const { return Step; }
  /// Exclusive upper bound: loop runs while IV < Bound. Null when the exit
  /// test is not of that shape.
  ir::Value *getBound() const { return Bound; }
  /// True when IV/start/step/bound were all recognized.
  bool isCanonical() const { return IndVar && Bound; }

private:
  friend class LoopInfo;
  ir::BasicBlock *Header = nullptr;
  std::set<ir::BasicBlock *> Blocks;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;

  ir::PhiInst *IndVar = nullptr;
  ir::Value *Start = nullptr;
  std::int64_t Step = 0;
  ir::Value *Bound = nullptr;
};

/// Loop forest of a function.
class LoopInfo {
public:
  explicit LoopInfo(const ir::Function &F);
  /// Same, reusing an already-computed dominator tree for \p F (the cached
  /// one when constructed through pm::LoopAnalysis). No reference to \p DT
  /// is retained.
  LoopInfo(const ir::Function &F, const DominatorTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return AllLoops; }
  const std::vector<Loop *> &topLevelLoops() const { return TopLevel; }

  /// Innermost loop containing \p BB, or null.
  Loop *getLoopFor(const ir::BasicBlock *BB) const;
  /// Nesting depth of \p BB (0 when outside all loops).
  unsigned getLoopDepth(const ir::BasicBlock *BB) const;

  /// All loops, innermost first (children before parents).
  std::vector<Loop *> loopsInnermostFirst() const;

private:
  void recognizeInductionVariable(Loop &L);

  std::vector<std::unique_ptr<Loop>> AllLoops;
  std::vector<Loop *> TopLevel;
};

} // namespace analysis
} // namespace dae

#endif // DAECC_ANALYSIS_LOOPINFO_H
