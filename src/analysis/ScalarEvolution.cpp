//===- analysis/ScalarEvolution.cpp - Affine expression analysis ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ScalarEvolution.h"

#include "ir/Function.h"
#include "ir/Instruction.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace dae;
using namespace dae::analysis;
using namespace dae::ir;

AffineExpr AffineExpr::operator+(const AffineExpr &R) const {
  AffineExpr Res = *this;
  Res.Const += R.Const;
  for (const auto &[L, C] : R.IVCoeffs) {
    Res.IVCoeffs[L] += C;
    if (Res.IVCoeffs[L] == 0)
      Res.IVCoeffs.erase(L);
  }
  for (const auto &[P, C] : R.ParamCoeffs) {
    Res.ParamCoeffs[P] += C;
    if (Res.ParamCoeffs[P] == 0)
      Res.ParamCoeffs.erase(P);
  }
  return Res;
}

AffineExpr AffineExpr::operator-(const AffineExpr &R) const {
  return *this + R.scaled(-1);
}

AffineExpr AffineExpr::scaled(std::int64_t Factor) const {
  AffineExpr Res;
  if (Factor == 0)
    return Res;
  Res.Const = Const * Factor;
  for (const auto &[L, C] : IVCoeffs)
    Res.IVCoeffs[L] = C * Factor;
  for (const auto &[P, C] : ParamCoeffs)
    Res.ParamCoeffs[P] = C * Factor;
  return Res;
}

std::string AffineExpr::str() const {
  std::string S;
  auto Append = [&S](std::int64_t C, const std::string &Name) {
    if (C == 0)
      return;
    if (!S.empty())
      S += C > 0 ? " + " : " - ";
    else if (C < 0)
      S += "-";
    std::int64_t A = C < 0 ? -C : C;
    if (A != 1)
      S += std::to_string(A) + "*";
    S += Name;
  };
  for (const auto &[L, C] : IVCoeffs)
    Append(C, L->getInductionVariable()
                  ? L->getInductionVariable()->getName()
                  : "iv?");
  for (const auto &[P, C] : ParamCoeffs)
    Append(C, P->getName().empty() ? "param" : P->getName());
  if (Const != 0 || S.empty()) {
    if (!S.empty())
      S += Const > 0 ? " + " : " - ";
    S += std::to_string(S.empty() ? Const : (Const < 0 ? -Const : Const));
  }
  return S;
}

std::vector<const Value *> AffineAccess::paramSignature() const {
  std::vector<const Value *> Sig;
  for (const AffineExpr &E : Indices)
    for (const auto &[P, C] : E.ParamCoeffs)
      if (std::find(Sig.begin(), Sig.end(), P) == Sig.end())
        Sig.push_back(P);
  return Sig;
}

ScalarEvolution::ScalarEvolution(const Function &F, const LoopInfo &LI)
    : F(F), LI(LI) {}

std::optional<AffineExpr> ScalarEvolution::getAffine(const Value *V) {
  return computeAffine(V, 0);
}

std::optional<AffineExpr> ScalarEvolution::computeAffine(const Value *V,
                                                         unsigned Depth) {
  if (Depth > 64)
    return std::nullopt; // Defensive recursion cap.
  auto It = Cache.find(V);
  if (It != Cache.end())
    return It->second;

  auto Memo = [&](std::optional<AffineExpr> E) {
    Cache[V] = E;
    return E;
  };

  if (const auto *CI = dyn_cast<ConstantInt>(V)) {
    AffineExpr E;
    E.Const = CI->getValue();
    return Memo(E);
  }

  if (const auto *Arg = dyn_cast<Argument>(V)) {
    if (Arg->getType() != Type::Int64)
      return Memo(std::nullopt);
    AffineExpr E;
    E.ParamCoeffs[Arg] = 1;
    return Memo(E);
  }

  if (const auto *Phi = dyn_cast<PhiInst>(V)) {
    // Only canonical induction variables with step 1 (the affine generator's
    // domain construction assumes unit stride, matching the paper's codes).
    Loop *L = LI.getLoopFor(Phi->getParent());
    while (L && L->getInductionVariable() != Phi)
      L = L->getParent();
    if (!L || L->getStep() != 1)
      return Memo(std::nullopt);
    AffineExpr E;
    E.IVCoeffs[L] = 1;
    return Memo(E);
  }

  const auto *Bin = dyn_cast<BinaryInst>(V);
  if (!Bin)
    return Memo(std::nullopt);

  auto LHS = computeAffine(Bin->getLHS(), Depth + 1);
  auto RHS = computeAffine(Bin->getRHS(), Depth + 1);
  if (!LHS || !RHS)
    return Memo(std::nullopt);

  switch (Bin->getOpcode()) {
  case BinOp::Add:
    return Memo(*LHS + *RHS);
  case BinOp::Sub:
    return Memo(*LHS - *RHS);
  case BinOp::Mul:
    if (RHS->isConstant())
      return Memo(LHS->scaled(RHS->Const));
    if (LHS->isConstant())
      return Memo(RHS->scaled(LHS->Const));
    return Memo(std::nullopt);
  case BinOp::Shl:
    if (RHS->isConstant() && RHS->Const >= 0 && RHS->Const < 62)
      return Memo(LHS->scaled(std::int64_t(1) << RHS->Const));
    return Memo(std::nullopt);
  default:
    return Memo(std::nullopt);
  }
}

std::optional<AffineAccess>
ScalarEvolution::getAccess(const Instruction *MemInst) {
  Value *Ptr = nullptr;
  bool IsWrite = false;
  if (const auto *L = dyn_cast<LoadInst>(MemInst)) {
    Ptr = L->getPointer();
  } else if (const auto *S = dyn_cast<StoreInst>(MemInst)) {
    Ptr = S->getPointer();
    IsWrite = true;
  } else if (const auto *P = dyn_cast<PrefetchInst>(MemInst)) {
    Ptr = P->getPointer();
  } else {
    return std::nullopt;
  }

  const auto *Gep = dyn_cast<GepInst>(Ptr);
  if (!Gep)
    return std::nullopt;
  Value *Base = Gep->getBase();
  if (!isa<GlobalVariable>(Base) &&
      !(isa<Argument>(Base) && Base->getType() == Type::Ptr))
    return std::nullopt;

  AffineAccess Acc;
  Acc.MemInst = MemInst;
  Acc.Gep = Gep;
  Acc.Base = Base;
  Acc.DimSizes = Gep->getDimSizes();
  Acc.ElemSize = Gep->getElemSize();
  Acc.IsWrite = IsWrite;
  for (unsigned I = 0; I != Gep->getNumIndices(); ++I) {
    auto E = getAffine(Gep->getIndex(I));
    if (!E)
      return std::nullopt;
    Acc.Indices.push_back(*E);
  }
  return Acc;
}

std::optional<AffineLoopBounds> ScalarEvolution::getLoopBounds(const Loop *L) {
  if (!L->isCanonical() || L->getStep() != 1)
    return std::nullopt;
  auto Lower = getAffine(L->getStartValue());
  auto Upper = getAffine(L->getBound());
  if (!Lower || !Upper)
    return std::nullopt;
  // Bounds may reference outer IVs (triangular loops) but not the loop's own
  // IV or inner IVs.
  for (const auto *B : {&*Lower, &*Upper})
    for (const auto &[Dep, C] : B->IVCoeffs) {
      (void)C;
      for (const Loop *Outer = Dep; Outer; Outer = Outer->getParent())
        if (Outer == L)
          return std::nullopt;
    }
  AffineLoopBounds Bounds;
  Bounds.L = L;
  Bounds.Lower = *Lower;
  Bounds.Upper = *Upper;
  return Bounds;
}
