//===- sim/CacheSim.cpp - Set-associative cache hierarchy ------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CacheSim.h"

#include <cassert>

using namespace dae;
using namespace dae::sim;

namespace {

unsigned log2u(std::uint64_t V) {
  unsigned R = 0;
  while ((1ull << R) < V)
    ++R;
  return R;
}

} // namespace

Cache::Cache(const CacheConfig &Cfg)
    : LineShift(log2u(Cfg.LineBytes)),
      NumSets(Cfg.SizeBytes / (Cfg.LineBytes * Cfg.Assoc)), Assoc(Cfg.Assoc),
      Lines(NumSets * Cfg.Assoc) {
  assert(NumSets > 0 && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a power of two");
}

bool Cache::access(std::uint64_t Addr) {
  std::uint64_t LineAddr = Addr >> LineShift;
  std::uint64_t Set = LineAddr & (NumSets - 1);
  Line *Base = &Lines[Set * Assoc];
  ++Tick;

  for (unsigned W = 0; W != Assoc; ++W) {
    Line &L = Base[W];
    if (L.Valid && L.Tag == LineAddr) {
      L.Lru = Tick;
      ++Hits;
      return true;
    }
  }
  // Miss: evict the first invalid way, else the least recently used.
  Line *Victim = Base;
  for (unsigned W = 1; W != Assoc && Victim->Valid; ++W) {
    Line &L = Base[W];
    if (!L.Valid || L.Lru < Victim->Lru)
      Victim = &L;
  }
  Victim->Valid = true;
  Victim->Tag = LineAddr;
  Victim->Lru = Tick;
  ++Misses;
  return false;
}

bool Cache::probe(std::uint64_t Addr) const {
  std::uint64_t LineAddr = Addr >> LineShift;
  std::uint64_t Set = LineAddr & (NumSets - 1);
  const Line *Base = &Lines[Set * Assoc];
  for (unsigned W = 0; W != Assoc; ++W)
    if (Base[W].Valid && Base[W].Tag == LineAddr)
      return true;
  return false;
}

void Cache::flush() {
  for (Line &L : Lines)
    L = Line();
  Hits = Misses = 0;
}

CacheHierarchy::CacheHierarchy(const MachineConfig &Cfg, unsigned NumCores)
    : NextLinePrefetch(Cfg.HwNextLinePrefetch), LineBytes(Cfg.L1.LineBytes),
      Llc(Cfg.LLC) {
  L1s.reserve(NumCores);
  L2s.reserve(NumCores);
  for (unsigned I = 0; I != NumCores; ++I) {
    L1s.emplace_back(Cfg.L1);
    L2s.emplace_back(Cfg.L2);
  }
}

HitLevel CacheHierarchy::access(unsigned Core, std::uint64_t Addr) {
  assert(Core < L1s.size() && "core index out of range");
  if (L1s[Core].access(Addr))
    return HitLevel::L1;
  if (L2s[Core].access(Addr))
    return HitLevel::L2;
  if (Llc.access(Addr))
    return HitLevel::LLC;
  if (NextLinePrefetch) {
    // Pull the successor line toward the core so a sequential stream only
    // pays DRAM latency on every other line.
    std::uint64_t NextLine = Addr + LineBytes;
    L2s[Core].access(NextLine);
    Llc.access(NextLine);
  }
  return HitLevel::Memory;
}

void CacheHierarchy::flush() {
  for (Cache &C : L1s)
    C.flush();
  for (Cache &C : L2s)
    C.flush();
  Llc.flush();
}
