//===- sim/CacheSim.cpp - Set-associative cache hierarchy ------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CacheSim.h"

#include <cassert>

using namespace dae;
using namespace dae::sim;

Cache::Cache(const CacheConfig &Cfg)
    : LineShift(lineShiftOf(Cfg.LineBytes)),
      NumSets(Cfg.SizeBytes / (Cfg.LineBytes * Cfg.Assoc)), Assoc(Cfg.Assoc),
      Tags(NumSets * Cfg.Assoc, InvalidTag), Lrus(NumSets * Cfg.Assoc, 0) {
  assert(NumSets > 0 && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a power of two");
}

void Cache::flush() {
  Tags.assign(Tags.size(), InvalidTag);
  Lrus.assign(Lrus.size(), 0);
  Hits = Misses = 0;
  LastLineAddr = InvalidTag;
  LastWay = 0;
}

CacheHierarchy::CacheHierarchy(const MachineConfig &Cfg, unsigned NumCores)
    : NextLinePrefetch(Cfg.HwNextLinePrefetch), LineBytes(Cfg.L1.LineBytes),
      Llc(Cfg.LLC) {
  L1s.reserve(NumCores);
  L2s.reserve(NumCores);
  for (unsigned I = 0; I != NumCores; ++I) {
    L1s.emplace_back(Cfg.L1);
    L2s.emplace_back(Cfg.L2);
  }
}

void CacheHierarchy::flush() {
  for (Cache &C : L1s)
    C.flush();
  for (Cache &C : L2s)
    C.flush();
  Llc.flush();
}
