//===- sim/Memory.cpp - Simulated flat memory -------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Memory.h"

#include "ir/Module.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace dae;
using namespace dae::sim;

std::uint8_t *Memory::pageFor(std::uint64_t PageIdx) {
  Shard &S = Shards[shardOf(PageIdx)];
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Pages.find(PageIdx);
  if (It == S.Pages.end()) {
    auto Mem = std::make_unique<std::uint8_t[]>(PageSize);
    std::memset(Mem.get(), 0, PageSize);
    It = S.Pages.emplace(PageIdx, std::move(Mem)).first;
  }
  return It->second.get();
}

size_t Memory::pagesTouched() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Pages.size();
  }
  return N;
}

std::uint64_t Memory::imageHash() const {
  // Collect nonzero pages across shards, then hash in page-index order so
  // the result is independent of sharding and allocation order.
  std::vector<std::pair<std::uint64_t, const std::uint8_t *>> Nonzero;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &[Idx, Page] : S.Pages) {
      const std::uint8_t *P = Page.get();
      bool AllZero = true;
      for (std::uint64_t B = 0; B != PageSize && AllZero; ++B)
        AllZero = P[B] == 0;
      if (!AllZero)
        Nonzero.emplace_back(Idx, P);
    }
  }
  std::sort(Nonzero.begin(), Nonzero.end());

  std::uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  auto feed = [&H](const std::uint8_t *Data, std::uint64_t Len) {
    for (std::uint64_t I = 0; I != Len; ++I) {
      H ^= Data[I];
      H *= 1099511628211ull;
    }
  };
  for (const auto &[Idx, P] : Nonzero) {
    std::uint8_t IdxBytes[8];
    std::memcpy(IdxBytes, &Idx, 8);
    feed(IdxBytes, 8);
    feed(P, PageSize);
  }
  return H;
}

namespace {

/// True when [Addr, Addr+8) stays within one page.
bool withinPage(std::uint64_t Addr) {
  return (Addr & 0xfff) <= 0xff8;
}

} // namespace

std::int64_t Memory::loadI64(std::uint64_t Addr) {
  assert(withinPage(Addr) && "unaligned cross-page access");
  std::int64_t V;
  std::memcpy(&V, pagePtr(Addr), sizeof(V));
  return V;
}

double Memory::loadF64(std::uint64_t Addr) {
  assert(withinPage(Addr) && "unaligned cross-page access");
  double V;
  std::memcpy(&V, pagePtr(Addr), sizeof(V));
  return V;
}

void Memory::storeI64(std::uint64_t Addr, std::int64_t V) {
  assert(withinPage(Addr) && "unaligned cross-page access");
  std::memcpy(pagePtr(Addr), &V, sizeof(V));
}

void Memory::storeF64(std::uint64_t Addr, double V) {
  assert(withinPage(Addr) && "unaligned cross-page access");
  std::memcpy(pagePtr(Addr), &V, sizeof(V));
}

Loader::Loader(const ir::Module &M, std::uint64_t Base) {
  std::uint64_t Cursor = Base;
  for (const auto &G : M.globals()) {
    Bases[G.get()] = Cursor;
    ByName[G->getName()] = Cursor;
    // Line-align and pad so unrelated arrays never share a cache line.
    std::uint64_t Size = (G->getSizeInBytes() + 63) & ~63ull;
    Cursor += Size + 64;
  }
}

std::uint64_t Loader::baseOf(const ir::GlobalVariable *G) const {
  auto It = Bases.find(G);
  assert(It != Bases.end() && "global not loaded");
  return It->second;
}

std::uint64_t Loader::baseOf(const std::string &Name) const {
  auto It = ByName.find(Name);
  assert(It != ByName.end() && "global not loaded");
  return It->second;
}
