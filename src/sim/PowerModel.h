//===- sim/PowerModel.h - Section 3.2 power model ---------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The calibrated Sandybridge power model of section 3.2 (from Koukos et
/// al., ICS'13):
///
///   Ceff     = 0.19 * IPC + 1.64                  (nF)
///   Pdynamic = Ceff * f * V^2                     (W; f in GHz, V in volts)
///   Pstatic  = linear in V*f per active core, plus an uncore constant
///   Energy   = sum over phases of P * t;  EDP = Time_total * Energy.
///
/// During DVFS transitions no instructions execute and only static power
/// accrues (section 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_POWERMODEL_H
#define DAECC_SIM_POWERMODEL_H

#include "sim/MachineConfig.h"
#include "sim/PhaseStats.h"

namespace dae {
namespace sim {

/// Evaluates the paper's power formulas for one machine.
class PowerModel {
public:
  explicit PowerModel(const MachineConfig &Cfg) : Cfg(Cfg) {}

  /// Dynamic power of one core running at \p FreqGHz with the given IPC.
  double dynamicPower(double FreqGHz, double Ipc) const {
    double Ceff = 0.19 * Ipc + 1.64; // nF
    double V = Cfg.voltageAt(FreqGHz);
    return Ceff * FreqGHz * V * V; // nF * GHz * V^2 == W
  }

  /// Static power of one active core at \p FreqGHz.
  double staticPowerPerCore(double FreqGHz) const {
    double V = Cfg.voltageAt(FreqGHz);
    return StaticV * V + StaticVF * V * FreqGHz;
  }

  /// Static power of an idle (clock-gated / sleeping) core.
  double sleepPowerPerCore() const {
    return SleepFraction * staticPowerPerCore(Cfg.fmin());
  }

  /// Frequency-independent uncore/package power.
  double uncorePower() const { return Uncore; }

  /// Energy (J) of one phase on one core at \p FreqGHz: (dynamic + static)
  /// over the phase's wall-clock time.
  double phaseEnergy(const PhaseStats &S, double FreqGHz) const {
    double TimeS = S.timeNs(FreqGHz) * 1e-9;
    return (dynamicPower(FreqGHz, S.ipc(FreqGHz)) +
            staticPowerPerCore(FreqGHz)) *
           TimeS;
  }

  /// \name Core-aware overloads for heterogeneous (per-core-ladder) machines
  /// Identical formulas, but the voltage comes from \p Core's own ladder via
  /// MachineConfig::voltageAt(Core, f) — a little core running 0.8 GHz must
  /// be priced at its own low rail, not clamped up to the big ladder's fmin.
  /// On a homogeneous machine every overload reduces exactly to the
  /// single-ladder form above.
  /// @{
  double dynamicPower(unsigned Core, double FreqGHz, double Ipc) const {
    double Ceff = 0.19 * Ipc + 1.64; // nF
    double V = Cfg.voltageAt(Core, FreqGHz);
    return Ceff * FreqGHz * V * V;
  }

  double staticPowerPerCore(unsigned Core, double FreqGHz) const {
    double V = Cfg.voltageAt(Core, FreqGHz);
    return StaticV * V + StaticVF * V * FreqGHz;
  }

  double sleepPowerPerCore(unsigned Core) const {
    return SleepFraction * staticPowerPerCore(Core, Cfg.fminOf(Core));
  }

  double phaseEnergy(unsigned Core, const PhaseStats &S, double FreqGHz) const {
    double TimeS = S.timeNs(FreqGHz) * 1e-9;
    return (dynamicPower(Core, FreqGHz, S.ipc(FreqGHz)) +
            staticPowerPerCore(Core, FreqGHz)) *
           TimeS;
  }
  /// @}

private:
  const MachineConfig &Cfg;
  // Static model constants (fit to a Sandybridge-like ~5-15 W static range).
  static constexpr double StaticV = 1.4;  // W/V per core.
  static constexpr double StaticVF = 0.5; // W/(V*GHz) per core.
  static constexpr double SleepFraction = 0.15;
  static constexpr double Uncore = 3.0; // W.
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_POWERMODEL_H
