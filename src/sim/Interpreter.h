//===- sim/Interpreter.h - Task IR interpreter ------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes Task IR against the simulated memory and cache hierarchy,
/// producing the frequency-decomposed PhaseStats profile. Interpreter is the
/// single entry point for both execution backends (MachineConfig::Backend):
///
///  * SimBackend::Switch — the reference interpreter implemented in this
///    file: functions precompiled to a flat slot-addressed form with a
///    precomputed opcode enum, executed by one switch per instruction.
///  * SimBackend::Threaded (default) — register-allocated bytecode run by a
///    direct-threaded dispatch loop (sim/Bytecode.h,
///    sim/ThreadedInterpreter.h); Interpreter constructs a
///    ThreadedInterpreter internally and delegates. Simulated results are
///    bit-identical to the switch backend (SnapshotTest goldens,
///    tests/sim/BackendDifferentialTest.cpp); only host speed differs.
///  * SimBackend::Native — the bytecode lowered once per function to
///    executable host code (sim/NativeCodegen.h) and run by a
///    NativeInterpreter (sim/NativeExec.h); functions the lowerer rejects
///    fall back to the threaded interpreter per function. Same bit-identical
///    contract as the threaded backend.
///
/// Two execution modes share each backend's core loop:
///  * run() — the classic fused mode: cache hits/misses are simulated inline
///    and timing lands directly in the returned PhaseStats.
///  * runTraced() — the host-parallel engine's functional mode: values are
///    computed and the ordered memory access stream is recorded into an
///    AccessTrace; cache timing is filled in later by the runtime's
///    single-threaded replay (see runtime/Runtime.cpp), which keeps profiles
///    bit-identical for any host thread count.
///
/// Compiled/lowered functions can be shared read-only between concurrently
/// running interpreters via CompiledProgram, pre-populated before execution
/// starts; it carries both backends' forms.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_INTERPRETER_H
#define DAECC_SIM_INTERPRETER_H

#include "sim/AccessTrace.h"
#include "sim/CacheSim.h"
#include "sim/Memory.h"
#include "sim/PhaseStats.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace dae {

namespace ir {
class Function;
class GlobalVariable;
class Instruction;
} // namespace ir

namespace sim {

/// Per-load-site execution statistics (profile-guided selective prefetching,
/// the refinement the paper proposes for LibQ in sections 5.2.2/6.2.3).
struct LoadSiteStats {
  std::uint64_t Count = 0;
  std::uint64_t Misses = 0; ///< Accesses that went to DRAM.

  double missRate() const {
    return Count ? static_cast<double>(Misses) / static_cast<double>(Count)
                 : 0.0;
  }
};

/// Per-site statistics keyed by the load instruction. Sits on the per-load
/// hot path when enabled, hence a hash map rather than a tree.
using LoadStatsMap = std::unordered_map<const ir::Instruction *, LoadSiteStats>;

/// A dynamic value: integer/pointer in I, float in D (discriminated by the
/// static IR type, so no tag is needed).
struct RuntimeValue {
  std::int64_t I = 0;
  double D = 0.0;

  static RuntimeValue ofInt(std::int64_t V) {
    RuntimeValue R;
    R.I = V;
    return R;
  }
  static RuntimeValue ofFloat(double V) {
    RuntimeValue R;
    R.D = V;
    return R;
  }
};

class CompiledFunction;
class ThreadedInterpreter;
class NativeInterpreter;

namespace bc {
class BytecodeFunction;
} // namespace bc

namespace native {
class NativeCode;
} // namespace native

/// A read-only set of compiled functions, built once before execution so
/// worker threads never mutate shared compiler state. Populate with add()
/// (single-threaded), then share freely: lookup() is const and safe to call
/// concurrently. Under SimBackend::Threaded and SimBackend::Native each
/// function is additionally lowered to bytecode (lookupBytecode); under
/// Native the bytecode is further compiled to native code (lookupNative),
/// null per function when the lowerer rejected it.
class CompiledProgram {
public:
  CompiledProgram(const MachineConfig &Cfg, const Loader &L);
  ~CompiledProgram();
  CompiledProgram(const CompiledProgram &) = delete;
  CompiledProgram &operator=(const CompiledProgram &) = delete;

  /// Compiles \p F and every function reachable from it through calls.
  /// Idempotent; not thread safe.
  void add(const ir::Function &F);

  /// Returns the compiled form of \p F, or null when it was never added.
  const CompiledFunction *lookup(const ir::Function &F) const;

  /// Returns the bytecode form of \p F, or null when it was never added or
  /// the program was built for the switch backend.
  const bc::BytecodeFunction *lookupBytecode(const ir::Function &F) const;

  /// Returns the native code of \p F, or null when it was never added, the
  /// program was not built for the native backend, or the native lowerer
  /// rejected the function (callers fall back to the bytecode form).
  const native::NativeCode *lookupNative(const ir::Function &F) const;

private:
  const MachineConfig &Cfg;
  const Loader &Load;
  std::unordered_map<const ir::Function *, std::unique_ptr<CompiledFunction>>
      Fns;
  std::unordered_map<const ir::Function *,
                     std::unique_ptr<bc::BytecodeFunction>>
      BCs;
  std::unordered_map<const ir::Function *,
                     std::shared_ptr<const native::NativeCode>>
      NCs;
};

/// Interprets functions on a simulated core, through the backend selected by
/// MachineConfig::Backend.
class Interpreter {
public:
  /// Fused-mode interpreter: cache effects simulated inline through
  /// \p Caches. \p Mem must already hold the workload's initialized data.
  Interpreter(const MachineConfig &Cfg, Memory &Mem, CacheHierarchy &Caches,
              const Loader &L, const CompiledProgram *Shared = nullptr);
  /// Tracing-only interpreter (no cache hierarchy needed); used by the
  /// host-parallel engine's functional pass, one instance per worker thread.
  Interpreter(const MachineConfig &Cfg, Memory &Mem, const Loader &L,
              const CompiledProgram *Shared);
  ~Interpreter();

  /// Runs \p F on \p Core with \p Args (one per formal), simulating cache
  /// effects inline. Returns the complete phase profile; the optional return
  /// value is written to \p RetOut.
  PhaseStats run(const ir::Function &F, unsigned Core,
                 const std::vector<RuntimeValue> &Args,
                 RuntimeValue *RetOut = nullptr);

  /// Runs \p F with \p Args, recording every memory access into \p Trace
  /// instead of touching caches. The returned PhaseStats carries the
  /// cache-independent part only (instruction counts, base compute cycles,
  /// load/store/prefetch counts); hit levels, hit cycles and stalls are
  /// added by the runtime's trace replay.
  PhaseStats runTraced(const ir::Function &F,
                       const std::vector<RuntimeValue> &Args,
                       AccessTrace &Trace, RuntimeValue *RetOut = nullptr);

  /// When set, every load executed in fused mode records per-site count/miss
  /// statistics into \p Stats (keyed by the load instruction).
  void setLoadStats(LoadStatsMap *Stats);

private:
  template <typename MemModel>
  PhaseStats interpret(const CompiledFunction &CF,
                       const std::vector<RuntimeValue> &Args,
                       RuntimeValue *RetOut, MemModel &MM);

  const CompiledFunction &getCompiled(const ir::Function &F);

  LoadStatsMap *LoadStats = nullptr;
  const MachineConfig &Cfg;
  MemoryView View;
  CacheHierarchy *Caches; ///< Null for tracing-only interpreters.
  const Loader &Load;
  const CompiledProgram *Shared; ///< Read-only; preferred over Cache.
  /// Lazy per-interpreter fallback for functions outside the shared program
  /// (direct run() users compile on first call).
  std::unordered_map<const ir::Function *, std::unique_ptr<CompiledFunction>>
      Cache;
  /// Non-null iff Cfg.Backend == SimBackend::Threaded; run()/runTraced()
  /// delegate to it.
  std::unique_ptr<ThreadedInterpreter> Threaded;
  /// Non-null iff Cfg.Backend == SimBackend::Native; run()/runTraced()
  /// delegate to it.
  std::unique_ptr<NativeInterpreter> Native;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_INTERPRETER_H
