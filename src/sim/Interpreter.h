//===- sim/Interpreter.h - Task IR interpreter ------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes Task IR against the simulated memory and cache hierarchy,
/// producing the frequency-decomposed PhaseStats profile. Functions are
/// precompiled to a flat slot-addressed form once and cached, so the seven
/// benchmark applications run at tens of millions of simulated instructions
/// per second.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_INTERPRETER_H
#define DAECC_SIM_INTERPRETER_H

#include "sim/CacheSim.h"
#include "sim/Memory.h"
#include "sim/PhaseStats.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace dae {

namespace ir {
class Function;
class GlobalVariable;
class Instruction;
} // namespace ir

namespace sim {

/// Per-load-site execution statistics (profile-guided selective prefetching,
/// the refinement the paper proposes for LibQ in sections 5.2.2/6.2.3).
struct LoadSiteStats {
  std::uint64_t Count = 0;
  std::uint64_t Misses = 0; ///< Accesses that went to DRAM.

  double missRate() const {
    return Count ? static_cast<double>(Misses) / static_cast<double>(Count)
                 : 0.0;
  }
};

/// A dynamic value: integer/pointer in I, float in D (discriminated by the
/// static IR type, so no tag is needed).
struct RuntimeValue {
  std::int64_t I = 0;
  double D = 0.0;

  static RuntimeValue ofInt(std::int64_t V) {
    RuntimeValue R;
    R.I = V;
    return R;
  }
  static RuntimeValue ofFloat(double V) {
    RuntimeValue R;
    R.D = V;
    return R;
  }
};

class CompiledFunction;

/// Interprets functions on a simulated core.
class Interpreter {
public:
  Interpreter(const MachineConfig &Cfg, Memory &Mem, CacheHierarchy &Caches,
              const Loader &L);
  ~Interpreter();

  /// Runs \p F on \p Core with \p Args (one per formal). Returns the phase
  /// profile; the optional return value is written to \p RetOut.
  PhaseStats run(const ir::Function &F, unsigned Core,
                 const std::vector<RuntimeValue> &Args,
                 RuntimeValue *RetOut = nullptr);

  /// When set, every executed load records per-site count/miss statistics
  /// into \p Stats (keyed by the load instruction).
  void setLoadStats(std::map<const ir::Instruction *, LoadSiteStats> *Stats) {
    LoadStats = Stats;
  }

private:
  std::map<const ir::Instruction *, LoadSiteStats> *LoadStats = nullptr;
  const CompiledFunction &getCompiled(const ir::Function &F);

  const MachineConfig &Cfg;
  Memory &Mem;
  CacheHierarchy &Caches;
  const Loader &Load;
  std::map<const ir::Function *, std::unique_ptr<CompiledFunction>> Cache;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_INTERPRETER_H
