//===- sim/NativeCodegen.cpp - Bytecode -> native code lowering -------------===//
//
// Part of daecc. Distributed under the MIT license.
//
// Lowers sim/Bytecode.h functions to executable host code; see
// NativeCodegen.h for the architecture. Two lowering paths share one shape:
//
//  * The x86-64 template JIT (FnEmitter below): every opcode has a stencil
//    of a few instructions; stencils are concatenated per bytecode function
//    with branch targets resolved by a second pass over recorded fixups.
//    Register plan (all callee-saved, so C++ helpers preserve them):
//      rbp = NativeContext*          rbx = frame (RuntimeValue[])
//      r12 = address temp across fused helper calls
//      r13 = trace write cursor      (tracing variant only)
//      r14 = cached page tag         r15 = cached host-minus-sim delta
//      xmm15 = running ComputeCycles (tracing variant only)
//    rax/rcx/rdx are stencil scratch; xmm0/xmm1 are FP scratch.
//
//  * The C emitter: the same lowering printed as a C source file, compiled
//    through $DAECC_NATIVE_CC into a shared object and dlopen'd. The
//    generated C mirrors the stencils statement for statement (same FP
//    addition order, same helper boundaries), so both modes are bit-exact
//    against the threaded reference.
//
// Bit-exactness ground rules (checked against ThreadedInterpreter::exec):
//  - ComputeCycles additions happen in original program order: per-opcode
//    Cost, then the op's effects, then CostB for fused pairs. The tracing
//    variant accumulates into xmm15 (mirroring ctx->Cycles, canonical at
//    helper boundaries); the fused variant adds straight into
//    PhaseStats::ComputeCycles so the fused cache callbacks interleave
//    exactly like the reference's STEP-then-callback order.
//  - Integer counters are region-coalesced into the shared ctx cells
//    (order-independent totals; flushed before any point with multiple
//    predecessors, so no path double-counts).
//  - Value writes reproduce the reference's RuntimeValue write pattern
//    (.I-only / .D-only / full 16 bytes with a zeroed other half).
//  - Costs equal to +0.0 are skipped: every cost is non-negative and the
//    accumulators never hold -0.0, so x += 0.0 is a bitwise identity.
//
//===----------------------------------------------------------------------===//

#include "sim/NativeCodegen.h"

#include "ir/Function.h"
#include "sim/Bytecode.h"
#include "sim/Memory.h"
#include "sim/NativeExec.h"
#include "support/EnvParse.h"

#include <atomic>
#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__linux__) || defined(__APPLE__)
#define DAECC_NATIVE_POSIX 1
#include <dlfcn.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

// Sanitizers cannot instrument raw JIT code (and intercept enough of the
// runtime that uninstrumented frames confuse them); Auto avoids the JIT
// under ASan/TSan/MSan and uses C-emission instead, which the sanitizing
// toolchain compiles like any other code.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DAECC_NATIVE_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) ||     \
    __has_feature(memory_sanitizer)
#ifndef DAECC_NATIVE_SANITIZED
#define DAECC_NATIVE_SANITIZED 1
#endif
#endif
#endif

#if defined(__x86_64__) && defined(DAECC_NATIVE_POSIX) &&                      \
    !defined(DAECC_NATIVE_SANITIZED)
#define DAECC_NATIVE_JIT 1
#endif

using namespace dae;
using namespace dae::sim;
using namespace dae::sim::native;

namespace {

/// Bumped whenever the generated code's ABI or semantics change; part of the
/// content-cache key so stale entries can never alias across versions.
constexpr std::uint64_t AbiVersion = 1;

std::uint64_t bitsOf(double D) {
  std::uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

//===----------------------------------------------------------------------===//
// Mode resolution
//===----------------------------------------------------------------------===//

Mode hostAutoMode() {
#if defined(DAECC_NATIVE_JIT)
  return Mode::Jit;
#else
  return Mode::Cemit;
#endif
}

/// Applies DAECC_NATIVE_MODE and the host capabilities to \p M. Read per
/// compile() call so tests can setenv between compilations.
Mode resolveMode(Mode M) {
  if (M != Mode::Auto)
    return M;
  if (const char *Env = std::getenv("DAECC_NATIVE_MODE")) {
    if (std::strcmp(Env, "jit") == 0)
      return Mode::Jit;
    if (std::strcmp(Env, "cemit") == 0)
      return Mode::Cemit;
    if (*Env && std::strcmp(Env, "auto") != 0) {
      static std::atomic<bool> Warned{false};
      if (!Warned.exchange(true))
        std::fprintf(stderr,
                     "daecc: ignoring unknown DAECC_NATIVE_MODE '%s' "
                     "(expected 'jit', 'cemit' or 'auto')\n",
                     Env);
    }
  }
  return hostAutoMode();
}

//===----------------------------------------------------------------------===//
// Rejection scan
//===----------------------------------------------------------------------===//

/// True when the lowerer handles \p Op. Trap is deliberately unsupported
/// (reaching it is a lowering bug the threaded loop reports better), and the
/// range check catches corrupted opcodes before they index any table.
bool opcodeSupported(bc::Opcode Op) {
  if (Op == bc::Opcode::Trap)
    return false;
  return static_cast<unsigned>(Op) <= static_cast<unsigned>(bc::Opcode::Call);
}

/// Returns the name of the first unsupported opcode in \p BF, or null when
/// every instruction can be lowered. DAECC_NATIVE_REJECT_OP=<name> force-
/// rejects one opcode by name — the test hook for the graceful-fallback and
/// death-test paths; checked before the cache so it always wins.
const char *findUnsupported(const bc::BytecodeFunction &BF) {
  const char *Reject = std::getenv("DAECC_NATIVE_REJECT_OP");
  if (Reject && !*Reject)
    Reject = nullptr;
  for (const bc::Instr &I : BF.Code) {
    if (!opcodeSupported(I.Op))
      return bc::opcodeName(I.Op);
    if (Reject && std::strcmp(bc::opcodeName(I.Op), Reject) == 0)
      return bc::opcodeName(I.Op);
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Content-addressed cache
//===----------------------------------------------------------------------===//

struct Fnv {
  std::uint64_t H = 1469598103934665603ull;
  void u64(std::uint64_t V) {
    for (int K = 0; K != 8; ++K) {
      H ^= (V >> (K * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  void ptr(const void *P) { u64(reinterpret_cast<std::uintptr_t>(P)); }
};

/// Content hash of everything the generated code depends on. Origin and
/// CallDesc pointers are baked into the code as immediates, so they hash as
/// addresses: bytecode that is byte-identical but binds different IR sites
/// must not share code. ConstPool/ConstBase are NOT hashed — constants are
/// copied into the frame by the invoker, never baked.
std::uint64_t keyOf(const bc::BytecodeFunction &BF, Mode Resolved) {
  Fnv F;
  F.u64(AbiVersion);
  F.u64(static_cast<std::uint64_t>(Resolved));
  F.u64(BF.NumRegs);
  F.u64(BF.NumArgs);
  F.u64(BF.Code.size());
  for (const bc::Instr &I : BF.Code) {
    F.u64(static_cast<std::uint64_t>(I.Op));
    F.u64(I.Count);
    F.u64(I.Dst);
    F.u64(I.A);
    F.u64(I.B);
    F.u64(I.C);
    F.u64(I.Aux);
    F.u64(bitsOf(I.Cost));
    F.u64(bitsOf(I.CostB));
    F.u64(static_cast<std::uint64_t>(I.Imm.I));
    F.u64(bitsOf(I.Imm.D));
    F.ptr(I.Origin);
  }
  F.u64(BF.GepDescs.size());
  for (const bc::GepDesc &G : BF.GepDescs) {
    F.u64(G.Base);
    F.u64(static_cast<std::uint64_t>(G.ElemSize));
    F.u64(G.Dims.size());
    for (std::int64_t D : G.Dims)
      F.u64(static_cast<std::uint64_t>(D));
    for (std::uint32_t R : G.IdxRegs)
      F.u64(R);
  }
  // The generated Call sites hold &CallDescs[i] as an immediate, so both the
  // element addresses and the callee identities are part of the content.
  F.u64(BF.CallDescs.size());
  F.ptr(BF.CallDescs.data());
  for (const bc::CallDesc &D : BF.CallDescs) {
    F.ptr(D.Callee);
    F.u64(D.ArgRegs.size());
    for (std::uint32_t R : D.ArgRegs)
      F.u64(R);
  }
  return F.H;
}

std::mutex &cacheMutex() {
  static std::mutex Mu;
  return Mu;
}

/// Null Code values are cached failures (mmap/cc trouble is persistent;
/// retrying per function would hammer the toolchain). They are charged zero
/// bytes and never evicted.
struct CacheEntry {
  std::shared_ptr<const NativeCode> Code;
  std::size_t Bytes = 0;
  std::uint64_t LastUse = 0;
};

struct CacheState {
  std::unordered_map<std::uint64_t, CacheEntry> Map;
  std::size_t CapBytes;
  std::size_t RetainedBytes = 0;
  std::uint64_t LruTick = 0;
  std::uint64_t Evictions = 0;

  CacheState()
      : CapBytes(dae::support::envMiBOr("DAECC_NATIVE_CACHE_MB",
                                        std::size_t(256) << 20)) {}

  /// Retained cost of one compiled variant pair. Cemit code lives in a
  /// dlopen'd shared object the loader sizes (codeSize() == 0), so it is
  /// charged a nominal page instead of reading as free.
  static std::size_t costOf(const NativeCode &Code) {
    return Code.codeSize() ? Code.codeSize() : std::size_t(4096);
  }

  void insertLocked(std::uint64_t Key, std::shared_ptr<const NativeCode> Code) {
    CacheEntry E;
    E.Bytes = Code ? costOf(*Code) : 0;
    E.LastUse = ++LruTick;
    E.Code = std::move(Code);
    RetainedBytes += E.Bytes;
    Map.emplace(Key, std::move(E));
    while (RetainedBytes > CapBytes) {
      auto Victim = Map.end();
      for (auto It = Map.begin(); It != Map.end(); ++It)
        if (It->second.Bytes &&
            (Victim == Map.end() ||
             It->second.LastUse < Victim->second.LastUse))
          Victim = It;
      if (Victim == Map.end())
        return; // only failures (zero-byte) remain
      RetainedBytes -= Victim->second.Bytes;
      Map.erase(Victim);
      ++Evictions;
    }
  }
};

CacheState &cacheState() {
  static CacheState S;
  return S;
}

} // namespace

namespace dae {
namespace sim {
namespace native {

NativeCode::~NativeCode() = default;

const char *activeModeName() {
  return resolveMode(Mode::Auto) == Mode::Jit ? "jit" : "cemit";
}

} // namespace native
} // namespace sim
} // namespace dae

//===----------------------------------------------------------------------===//
// x86-64 encoder
//===----------------------------------------------------------------------===//

#if defined(DAECC_NATIVE_JIT)

namespace {

enum Reg : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

enum Xmm : unsigned { XMM0 = 0, XMM1 = 1, XMM15 = 15 };

// Condition codes (the low nibble of 0F 8x / 0F 9x).
enum Cc : std::uint8_t {
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6,
  CC_A = 0x7,
  CC_AE = 0x3,
  CC_P = 0xA,
  CC_NP = 0xB,
  CC_L = 0xC,
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

/// Minimal x86-64 instruction encoder: exactly the forms the stencils use,
/// nothing more. Memory operands are always [base + disp32] (mod=10), which
/// sidesteps every disp8/disp0 special case except the SIB byte rsp/r12
/// require as a base.
struct Asm {
  std::vector<std::uint8_t> Code;
  std::vector<std::uint64_t> Lits;
  std::unordered_map<std::uint64_t, std::size_t> LitIndex;
  std::vector<std::pair<std::size_t, std::size_t>> LitFix; // disp pos, lit idx

  std::size_t pos() const { return Code.size(); }
  void b(std::uint8_t X) { Code.push_back(X); }
  void i32(std::int32_t V) {
    for (int K = 0; K != 4; ++K)
      b(static_cast<std::uint8_t>(static_cast<std::uint32_t>(V) >> (K * 8)));
  }
  void i64(std::uint64_t V) {
    for (int K = 0; K != 8; ++K)
      b(static_cast<std::uint8_t>(V >> (K * 8)));
  }
  void patch32(std::size_t P, std::int32_t V) {
    std::memcpy(&Code[P], &V, 4);
  }

  void rex(bool W, unsigned R, unsigned X, unsigned B) {
    b(0x40 | (static_cast<unsigned>(W) << 3) | ((R >> 3) << 2) |
      ((X >> 3) << 1) | (B >> 3));
  }
  void modrm(unsigned Mod, unsigned R, unsigned Rm) {
    b(static_cast<std::uint8_t>((Mod << 6) | ((R & 7) << 3) | (Rm & 7)));
  }
  void memRM(unsigned R, unsigned Base, std::int32_t Disp) {
    modrm(2, R, Base);
    if ((Base & 7) == 4)
      b(0x24); // SIB: scale 0, no index, base = rsp/r12
    i32(Disp);
  }

  // mov r64, [base+disp] / [base+disp], r64 / r64, r64 / r64, imm.
  void movRM(unsigned R, unsigned Base, std::int32_t D) {
    rex(true, R, 0, Base);
    b(0x8B);
    memRM(R, Base, D);
  }
  void movMR(unsigned Base, std::int32_t D, unsigned R) {
    rex(true, R, 0, Base);
    b(0x89);
    memRM(R, Base, D);
  }
  void movRR(unsigned Dst, unsigned Src) {
    rex(true, Src, 0, Dst);
    b(0x89);
    modrm(3, Src, Dst);
  }
  void movImm64(unsigned R, std::uint64_t V) {
    rex(true, 0, 0, R);
    b(0xB8 + (R & 7));
    i64(V);
  }
  void movImm32(unsigned R, std::uint32_t V) { // 32-bit mov, zero-extends
    if (R >= 8)
      b(0x41);
    b(0xB8 + (R & 7));
    i32(static_cast<std::int32_t>(V));
  }
  /// mov qword [base+disp], imm32 (sign-extended).
  void movMemImm32(unsigned Base, std::int32_t D, std::int32_t V) {
    rex(true, 0, 0, Base);
    b(0xC7);
    memRM(0, Base, D);
    i32(V);
  }

  // ALU op r64, r/m64. Opcode bytes: add 03, sub 2B, and 23, or 0B, xor 33,
  // cmp 3B.
  void aluRM(std::uint8_t Op, unsigned R, unsigned Base, std::int32_t D) {
    rex(true, R, 0, Base);
    b(Op);
    memRM(R, Base, D);
  }
  void aluRR(std::uint8_t Op, unsigned R, unsigned Rm) {
    rex(true, R, 0, Rm);
    b(Op);
    modrm(3, R, Rm);
  }
  /// 81 /N: op r64, imm32 (sign-extended). /0 add, /4 and, /5 sub, /7 cmp.
  void aluImm32(std::uint8_t N, unsigned Rm, std::int32_t V) {
    rex(true, 0, 0, Rm);
    b(0x81);
    modrm(3, N, Rm);
    i32(V);
  }
  /// add qword [base+disp], imm32 — the counter-flush form. Clobbers EFLAGS.
  void addMemImm32(unsigned Base, std::int32_t D, std::int32_t V) {
    rex(true, 0, 0, Base);
    b(0x81);
    memRM(0, Base, D);
    i32(V);
  }
  void imulRM(unsigned R, unsigned Base, std::int32_t D) {
    rex(true, R, 0, Base);
    b(0x0F);
    b(0xAF);
    memRM(R, Base, D);
  }
  void imulRR(unsigned R, unsigned Rm) {
    rex(true, R, 0, Rm);
    b(0x0F);
    b(0xAF);
    modrm(3, R, Rm);
  }
  void xorEcx() { b(0x31); modrm(3, RCX, RCX); } // xor ecx, ecx
  void xorEdx() { b(0x31); modrm(3, RDX, RDX); } // xor edx, edx
  void xorEax() { b(0x31); modrm(3, RAX, RAX); } // xor eax, eax
  void shlCl(unsigned Rm) {
    rex(true, 0, 0, Rm);
    b(0xD3);
    modrm(3, 4, Rm);
  }
  void sarCl(unsigned Rm) {
    rex(true, 0, 0, Rm);
    b(0xD3);
    modrm(3, 7, Rm);
  }
  void shlImm8(unsigned Rm, std::uint8_t S) {
    rex(true, 0, 0, Rm);
    b(0xC1);
    modrm(3, 4, Rm);
    b(S);
  }
  void sarImm8(unsigned Rm, std::uint8_t S) {
    rex(true, 0, 0, Rm);
    b(0xC1);
    modrm(3, 7, Rm);
    b(S);
  }
  void testRR(unsigned A, unsigned B2) {
    rex(true, A, 0, B2);
    b(0x85);
    modrm(3, A, B2);
  }
  void cqo() {
    b(0x48);
    b(0x99);
  }
  void idiv(unsigned Rm) {
    rex(true, 0, 0, Rm);
    b(0xF7);
    modrm(3, 7, Rm);
  }
  /// setcc cl/dl only (no REX, so only the legacy low byte regs are safe).
  void setcc(std::uint8_t CC, unsigned Rm) {
    assert(Rm < 4 && "setcc without REX needs a legacy low-byte register");
    b(0x0F);
    b(0x90 + CC);
    modrm(3, 0, Rm);
  }
  void cmovzRM(unsigned R, unsigned Base, std::int32_t D) {
    rex(true, R, 0, Base);
    b(0x0F);
    b(0x44);
    memRM(R, Base, D);
  }
  void lea(unsigned Dst, unsigned Base, std::int32_t D) {
    rex(true, Dst, 0, Base);
    b(0x8D);
    memRM(Dst, Base, D);
  }
  /// lea dst, [base + index] (scale 1, no disp; base must not be rbp/r13).
  void leaRR(unsigned Dst, unsigned Base, unsigned Index) {
    assert((Base & 7) != 5 && "rbp/r13 base needs a disp form");
    rex(true, Dst, Index, Base);
    b(0x8D);
    modrm(0, Dst, 4);
    b(static_cast<std::uint8_t>(((Index & 7) << 3) | (Base & 7)));
  }
  /// bts r64, imm8 — sets the trace-event kind bit.
  void btsImm(unsigned Rm, std::uint8_t Bit) {
    rex(true, 0, 0, Rm);
    b(0x0F);
    b(0xBA);
    modrm(3, 5, Rm);
    b(Bit);
  }
  void callMem(unsigned Base, std::int32_t D) {
    if (Base >= 8)
      b(0x41);
    b(0xFF);
    memRM(2, Base, D);
  }
  void push(unsigned R) {
    if (R >= 8)
      b(0x41);
    b(0x50 + (R & 7));
  }
  void pop(unsigned R) {
    if (R >= 8)
      b(0x41);
    b(0x58 + (R & 7));
  }
  void ret() { b(0xC3); }

  // SSE scalar-double forms. Prefix order: mandatory prefix, REX, 0F, op.
  void sseRM(std::uint8_t Pfx, std::uint8_t Op, unsigned X, unsigned Base,
             std::int32_t D, bool W = false) {
    if (Pfx)
      b(Pfx);
    if (W || X >= 8 || Base >= 8)
      rex(W, X, 0, Base);
    b(0x0F);
    b(Op);
    memRM(X, Base, D);
  }
  void sseRR(std::uint8_t Pfx, std::uint8_t Op, unsigned X, unsigned Rm) {
    if (Pfx)
      b(Pfx);
    if (X >= 8 || Rm >= 8)
      rex(false, X, 0, Rm);
    b(0x0F);
    b(Op);
    modrm(3, X, Rm);
  }
  /// SSE op xmm, qword [rip + lit]: the literal pool carries FP immediates
  /// (costs, FP Imm operands); deduplicated by bit pattern.
  void sseRip(std::uint8_t Pfx, std::uint8_t Op, unsigned X,
              std::uint64_t Bits) {
    if (Pfx)
      b(Pfx);
    if (X >= 8)
      rex(false, X, 0, 0);
    b(0x0F);
    b(Op);
    modrm(0, X, 5); // RIP-relative disp32
    auto It = LitIndex.find(Bits);
    std::size_t Idx;
    if (It != LitIndex.end()) {
      Idx = It->second;
    } else {
      Idx = Lits.size();
      Lits.push_back(Bits);
      LitIndex.emplace(Bits, Idx);
    }
    LitFix.emplace_back(pos(), Idx);
    i32(0);
  }
  void xorpdSelf(unsigned X) { sseRR(0x66, 0x57, X, X); }

  // Forward local labels (within one stencil).
  std::size_t jccFwd(std::uint8_t CC) {
    b(0x0F);
    b(0x80 + CC);
    std::size_t P = pos();
    i32(0);
    return P;
  }
  std::size_t jmpFwd() {
    b(0xE9);
    std::size_t P = pos();
    i32(0);
    return P;
  }
  void bind(std::size_t P) {
    patch32(P, static_cast<std::int32_t>(pos() - (P + 4)));
  }

  /// Appends the literal pool (8-aligned) and resolves its RIP fixups.
  /// Call last, after all code bytes.
  void finalizeLits() {
    while (Code.size() % 8)
      b(0xCC);
    std::size_t LitBase = Code.size();
    for (std::uint64_t V : Lits)
      i64(V);
    for (const auto &Fix : LitFix)
      patch32(Fix.first, static_cast<std::int32_t>(LitBase + 8 * Fix.second -
                                                   (Fix.first + 4)));
  }
};

} // namespace

#endif // DAECC_NATIVE_JIT

namespace {

// NativeContext field offsets (static_asserted in NativeExec.h).
constexpr std::int32_t CtxFrame = 0;
constexpr std::int32_t CtxNInstr = 8;
constexpr std::int32_t CtxNLoads = 16;
constexpr std::int32_t CtxNStores = 24;
constexpr std::int32_t CtxNPref = 32;
constexpr std::int32_t CtxCycles = 40;
constexpr std::int32_t CtxTracePtr = 48;
constexpr std::int32_t CtxTraceEnd = 56;
constexpr std::int32_t CtxPageTag = 64;
constexpr std::int32_t CtxDelta = 72;
constexpr std::int32_t CtxStats = 80;
constexpr std::int32_t CtxRet = 88;
constexpr std::int32_t CtxRetValid = 104;
constexpr std::int32_t CtxTranslate = 120;
constexpr std::int32_t CtxTraceGrow = 128;
constexpr std::int32_t CtxCall = 136;
constexpr std::int32_t CtxFusedLoad = 144;
constexpr std::int32_t CtxFusedStore = 152;
constexpr std::int32_t CtxFusedPrefetch = 160;

constexpr std::int32_t StatsCC =
    static_cast<std::int32_t>(offsetof(PhaseStats, ComputeCycles));

static_assert(Memory::PageSize == 4096,
              "page-mask immediates assume 4 KiB pages");

bool isTerminator(bc::Opcode Op) {
  switch (Op) {
  case bc::Opcode::Jmp:
  case bc::Opcode::CondBr:
  case bc::Opcode::BrCmpEQ:
  case bc::Opcode::BrCmpNE:
  case bc::Opcode::BrCmpSLT:
  case bc::Opcode::BrCmpSLE:
  case bc::Opcode::BrCmpSGT:
  case bc::Opcode::BrCmpSGE:
  case bc::Opcode::BrCmpEQImm:
  case bc::Opcode::BrCmpNEImm:
  case bc::Opcode::BrCmpSLTImm:
  case bc::Opcode::BrCmpSLEImm:
  case bc::Opcode::BrCmpSGTImm:
  case bc::Opcode::BrCmpSGEImm:
  case bc::Opcode::Ret:
  case bc::Opcode::RetVal:
    return true;
  default:
    return false;
  }
}

/// Trace events one executed instance of \p Op appends (tracing variant).
unsigned traceEventsOf(bc::Opcode Op) {
  switch (Op) {
  case bc::Opcode::LoadI:
  case bc::Opcode::LoadF:
  case bc::Opcode::StoreI:
  case bc::Opcode::StoreF:
  case bc::Opcode::Prefetch:
  case bc::Opcode::LoadFAddF:
  case bc::Opcode::LoadFSubF:
  case bc::Opcode::LoadFMulF:
  case bc::Opcode::LoadIAddI:
    return 1;
  default:
    return 0;
  }
}

bool fitsI32(std::int64_t V) {
  return V == static_cast<std::int64_t>(static_cast<std::int32_t>(V));
}

} // namespace

#if defined(DAECC_NATIVE_JIT)

namespace {

/// Emits one variant (fused or tracing) of one bytecode function. The unit
/// of control-flow bookkeeping is the straight-line *region*: leaders are
/// the entry, every branch target, and the instruction after every
/// terminator or Call. Invariants at every region boundary (label or jump):
/// pending counter increments are flushed to the ctx cells, and — tracing —
/// the hoisted capacity check guarantees room for every trace event the
/// region emits (a Call ends a region because the callee consumes capacity
/// through its own cursor).
class FnEmitter {
public:
  FnEmitter(const bc::BytecodeFunction &BF, bool Tracing)
      : BF(BF), Tracing(Tracing) {}

  bool emit();

  Asm A;

private:
  const bc::BytecodeFunction &BF;
  const bool Tracing;
  std::vector<std::size_t> Off;                            // pc -> code offset
  std::vector<std::pair<std::size_t, std::uint32_t>> PcFix; // disp pos, pc
  std::vector<std::size_t> EpiFix;
  std::vector<bool> Leader;
  std::vector<std::uint32_t> RegionEvents; // at leaders
  std::uint64_t PendInstr = 0, PendLoads = 0, PendStores = 0, PendPref = 0;

  std::int32_t fi(std::uint32_t R) const {
    return static_cast<std::int32_t>(R) * 16;
  }
  std::int32_t fd(std::uint32_t R) const {
    return static_cast<std::int32_t>(R) * 16 + 8;
  }

  void analyze();
  bool emitOne(std::uint32_t Pc);

  void pcJmp(std::uint32_t Target) {
    A.b(0xE9);
    PcFix.emplace_back(A.pos(), Target);
    A.i32(0);
  }
  void pcJcc(std::uint8_t CC, std::uint32_t Target) {
    A.b(0x0F);
    A.b(0x80 + CC);
    PcFix.emplace_back(A.pos(), Target);
    A.i32(0);
  }
  void jmpEpilogue() {
    A.b(0xE9);
    EpiFix.push_back(A.pos());
    A.i32(0);
  }

  /// One ComputeCycles addition, in program order. Tracing accumulates into
  /// xmm15 (mirror of ctx->Cycles); fused adds straight into the activation's
  /// PhaseStats so helper hit-cycle adds interleave like the reference.
  /// +0.0 is skipped: a bitwise identity here (costs are never -0.0/NaN and
  /// the accumulators never hold -0.0).
  void cost(double C) {
    const std::uint64_t Bits = bitsOf(C);
    if (!Bits)
      return;
    if (Tracing) {
      A.sseRip(0xF2, 0x58, XMM15, Bits); // addsd xmm15, [rip+lit]
    } else {
      A.movRM(R8, RBP, CtxStats);
      A.sseRM(0xF2, 0x10, XMM0, R8, StatsCC);
      A.sseRip(0xF2, 0x58, XMM0, Bits);
      A.sseRM(0xF2, 0x11, XMM0, R8, StatsCC);
    }
  }

  /// Writes the region's accumulated counter increments to the shared ctx
  /// cells. Clobbers EFLAGS — every stencil that branches on a computed flag
  /// re-tests after flushing.
  void flushPending() {
    assert(PendInstr < (1u << 30) && "region counter overflows imm32");
    if (PendInstr)
      A.addMemImm32(RBP, CtxNInstr, static_cast<std::int32_t>(PendInstr));
    if (PendLoads)
      A.addMemImm32(RBP, CtxNLoads, static_cast<std::int32_t>(PendLoads));
    if (PendStores)
      A.addMemImm32(RBP, CtxNStores, static_cast<std::int32_t>(PendStores));
    if (PendPref)
      A.addMemImm32(RBP, CtxNPref, static_cast<std::int32_t>(PendPref));
    PendInstr = PendLoads = PendStores = PendPref = 0;
  }

  /// Page translation: simulated address in rax -> host pointer in rdx.
  /// Hit path is the strength-reduced form (tag compare + lea against the
  /// register-cached pair); the miss path calls the Translate helper and
  /// refreshes the cached tag/delta. Clobbers rcx.
  void translate() {
    A.movRR(RCX, RAX);
    A.aluImm32(4, RCX,
               static_cast<std::int32_t>(
                   ~static_cast<std::int64_t>(Memory::PageSize - 1)));
    A.aluRR(0x3B, RCX, R14);
    std::size_t Hit = A.jccFwd(CC_E);
    // Miss: helper boundary — write cached state back, call, reload.
    if (Tracing)
      A.sseRM(0xF2, 0x11, XMM15, RBP, CtxCycles);
    A.movRR(RDI, RBP);
    A.movRR(RSI, RAX);
    A.callMem(RBP, CtxTranslate);
    A.movRR(RDX, RAX);
    A.movRM(R14, RBP, CtxPageTag);
    A.movRM(R15, RBP, CtxDelta);
    if (Tracing)
      A.sseRM(0xF2, 0x10, XMM15, RBP, CtxCycles);
    std::size_t Done = A.jmpFwd();
    A.bind(Hit);
    A.leaRR(RDX, RAX, R15); // host = addr + delta
    A.bind(Done);
  }

  /// Hoisted per-region capacity check: M trace slots or grow.
  void traceCheck(std::uint32_t M) {
    A.lea(RAX, R13, static_cast<std::int32_t>(8 * M));
    A.aluRM(0x3B, RAX, RBP, CtxTraceEnd);
    std::size_t Ok = A.jccFwd(CC_BE);
    A.sseRM(0xF2, 0x11, XMM15, RBP, CtxCycles);
    A.movMR(RBP, CtxTracePtr, R13);
    A.movRR(RDI, RBP);
    A.movImm32(RSI, M);
    A.callMem(RBP, CtxTraceGrow);
    A.movRM(R13, RBP, CtxTracePtr);
    A.sseRM(0xF2, 0x10, XMM15, RBP, CtxCycles);
    A.bind(Ok);
  }

  /// Appends one trace event for the address in rax (kind 0 load, 1 store,
  /// 2 prefetch); capacity was guaranteed by the region check. Preserves rax.
  void tracePush(unsigned Kind) {
    if (Kind == 0) {
      A.movMR(R13, 0, RAX);
    } else {
      A.movRR(RCX, RAX);
      A.btsImm(RCX, Kind == 1 ? 62 : 63);
      A.movMR(R13, 0, RCX);
    }
    A.aluImm32(0, R13, 8);
  }

  /// Fused-mode memory helper call; address in rax (restored after when
  /// \p KeepAddr). r14/r15 stay valid: the fused callbacks never translate.
  void fusedHelper(std::int32_t HelperOff, const ir::Instruction *Origin,
                   bool KeepAddr) {
    if (KeepAddr)
      A.movRR(R12, RAX);
    A.movRR(RDI, RBP);
    A.movRR(RSI, RAX);
    if (HelperOff == CtxFusedLoad)
      A.movImm64(RDX, reinterpret_cast<std::uintptr_t>(Origin));
    A.callMem(RBP, HelperOff);
    if (KeepAddr)
      A.movRR(RAX, R12);
  }

  /// R[Dst] = RuntimeValue::ofInt(rax): full 16-byte write, zeroed .D half.
  void storeOfInt(std::uint32_t Dst) {
    A.movMR(RBX, fi(Dst), RAX);
    A.movMemImm32(RBX, fd(Dst), 0);
  }
};

void FnEmitter::analyze() {
  const std::size_t N = BF.Code.size();
  Leader.assign(N, false);
  Leader[0] = true;
  auto Mark = [&](std::uint32_t T) {
    assert(T < N && "branch target out of range");
    Leader[T] = true;
  };
  for (std::size_t Pc = 0; Pc != N; ++Pc) {
    const bc::Instr &I = BF.Code[Pc];
    switch (I.Op) {
    case bc::Opcode::Jmp:
      Mark(I.A);
      break;
    case bc::Opcode::CondBr:
      Mark(I.B);
      Mark(I.C);
      break;
    case bc::Opcode::BrCmpEQ:
    case bc::Opcode::BrCmpNE:
    case bc::Opcode::BrCmpSLT:
    case bc::Opcode::BrCmpSLE:
    case bc::Opcode::BrCmpSGT:
    case bc::Opcode::BrCmpSGE:
    case bc::Opcode::BrCmpEQImm:
    case bc::Opcode::BrCmpNEImm:
    case bc::Opcode::BrCmpSLTImm:
    case bc::Opcode::BrCmpSLEImm:
    case bc::Opcode::BrCmpSGTImm:
    case bc::Opcode::BrCmpSGEImm:
      Mark(I.C);
      Mark(I.Aux);
      break;
    default:
      break;
    }
    if ((isTerminator(I.Op) || I.Op == bc::Opcode::Call) && Pc + 1 < N)
      Leader[Pc + 1] = true;
  }
  RegionEvents.assign(N, 0);
  if (!Tracing)
    return;
  for (std::size_t L = 0; L != N; ++L) {
    if (!Leader[L])
      continue;
    std::uint32_t Ev = 0;
    for (std::size_t Pc = L; Pc != N; ++Pc) {
      Ev += traceEventsOf(BF.Code[Pc].Op);
      if (isTerminator(BF.Code[Pc].Op) || BF.Code[Pc].Op == bc::Opcode::Call)
        break;
      if (Pc + 1 < N && Leader[Pc + 1])
        break;
    }
    RegionEvents[L] = Ev;
  }
}

bool FnEmitter::emit() {
  const std::size_t N = BF.Code.size();
  if (N == 0)
    return false;
  analyze();
  Off.assign(N, 0);

  // Prologue. Entry rsp % 16 == 8; six pushes keep that, the 8-byte
  // adjustment makes every later helper call site 16-aligned per the SysV
  // ABI.
  A.push(RBX);
  A.push(RBP);
  A.push(R12);
  A.push(R13);
  A.push(R14);
  A.push(R15);
  A.aluImm32(5, RSP, 8); // sub rsp, 8
  A.movRR(RBP, RDI);
  A.movRM(RBX, RBP, CtxFrame);
  A.movRM(R14, RBP, CtxPageTag);
  A.movRM(R15, RBP, CtxDelta);
  if (Tracing) {
    A.movRM(R13, RBP, CtxTracePtr);
    A.sseRM(0xF2, 0x10, XMM15, RBP, CtxCycles); // invoker zeroed it
  }

  for (std::uint32_t Pc = 0; Pc != N; ++Pc) {
    if (Leader[Pc]) {
      flushPending(); // fallthrough edge; jumps land past this, already clean
      Off[Pc] = A.pos();
      if (Tracing && RegionEvents[Pc])
        traceCheck(RegionEvents[Pc]);
    } else {
      Off[Pc] = A.pos();
    }
    if (!emitOne(Pc))
      return false;
  }
  // Bytecode always ends in a terminator; keep a fall-off from running into
  // the epilogue with unflushed counters anyway.
  flushPending();
  jmpEpilogue();

  const std::size_t Epi = A.pos();
  if (Tracing) {
    A.movMR(RBP, CtxTracePtr, R13);
    A.sseRM(0xF2, 0x11, XMM15, RBP, CtxCycles);
  }
  A.movMR(RBP, CtxPageTag, R14);
  A.movMR(RBP, CtxDelta, R15);
  A.aluImm32(0, RSP, 8); // add rsp, 8
  A.pop(R15);
  A.pop(R14);
  A.pop(R13);
  A.pop(R12);
  A.pop(RBP);
  A.pop(RBX);
  A.ret();

  for (std::size_t P : EpiFix)
    A.patch32(P, static_cast<std::int32_t>(Epi - (P + 4)));
  for (const auto &Fx : PcFix)
    A.patch32(Fx.first,
              static_cast<std::int32_t>(Off[Fx.second] - (Fx.first + 4)));
  A.finalizeLits();
  return true;
}

bool FnEmitter::emitOne(std::uint32_t Pc) {
  const bc::Instr &I = BF.Code[Pc];
  using O = bc::Opcode;

  auto intBin = [&](std::uint8_t AluOp) {
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    A.aluRM(AluOp, RAX, RBX, fi(I.B));
    A.movMR(RBX, fi(I.Dst), RAX);
  };
  auto intBinImm = [&](std::uint8_t AluOp, std::uint8_t ImmSlash) {
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    if (fitsI32(I.Imm.I)) {
      A.aluImm32(ImmSlash, RAX, static_cast<std::int32_t>(I.Imm.I));
    } else {
      A.movImm64(RCX, static_cast<std::uint64_t>(I.Imm.I));
      A.aluRR(AluOp, RAX, RCX);
    }
    A.movMR(RBX, fi(I.Dst), RAX);
  };
  auto divRem = [&](bool WantRem) {
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RCX, RBX, fi(I.B));
    A.testRR(RCX, RCX);
    std::size_t Zero = A.jccFwd(CC_E);
    A.movRM(RAX, RBX, fi(I.A));
    A.cqo();
    A.idiv(RCX);
    if (WantRem)
      A.movRR(RAX, RDX);
    std::size_t Done = A.jmpFwd();
    A.bind(Zero);
    A.xorEax();
    A.bind(Done);
    A.movMR(RBX, fi(I.Dst), RAX);
  };
  auto shiftCl = [&](bool Left) {
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RCX, RBX, fi(I.B));
    A.movRM(RAX, RBX, fi(I.A));
    Left ? A.shlCl(RAX) : A.sarCl(RAX); // hw masks cl & 63 like the reference
    A.movMR(RBX, fi(I.Dst), RAX);
  };
  auto fpBin = [&](std::uint8_t SseOp) {
    cost(I.Cost);
    ++PendInstr;
    A.sseRM(0xF2, 0x10, XMM0, RBX, fd(I.A));
    A.sseRM(0xF2, SseOp, XMM0, RBX, fd(I.B));
    A.sseRM(0xF2, 0x11, XMM0, RBX, fd(I.Dst));
  };
  auto fpBinImm = [&](std::uint8_t SseOp) {
    cost(I.Cost);
    ++PendInstr;
    A.sseRM(0xF2, 0x10, XMM0, RBX, fd(I.A));
    A.sseRip(0xF2, SseOp, XMM0, bitsOf(I.Imm.D));
    A.sseRM(0xF2, 0x11, XMM0, RBX, fd(I.Dst));
  };
  auto cmpStore = [&] {
    A.movMR(RBX, fi(I.Dst), RCX);
    A.movMemImm32(RBX, fd(I.Dst), 0);
  };
  auto cmpI = [&](std::uint8_t CC) {
    cost(I.Cost);
    ++PendInstr;
    A.xorEcx();
    A.movRM(RAX, RBX, fi(I.A));
    A.aluRM(0x3B, RAX, RBX, fi(I.B));
    A.setcc(CC, RCX);
    cmpStore();
  };
  auto cmpIImm = [&](std::uint8_t CC) {
    cost(I.Cost);
    ++PendInstr;
    A.xorEcx();
    A.movRM(RAX, RBX, fi(I.A));
    if (fitsI32(I.Imm.I)) {
      A.aluImm32(7, RAX, static_cast<std::int32_t>(I.Imm.I));
    } else {
      A.movImm64(RDX, static_cast<std::uint64_t>(I.Imm.I));
      A.aluRR(0x3B, RAX, RDX);
    }
    A.setcc(CC, RCX);
    cmpStore();
  };
  // FP ordered compares via ucomisd: a<b and a<=b run as b>a / b>=a so the
  // unordered outcome (CF=1) reads false; ==/!= combine ZF with PF to get
  // IEEE semantics for NaN.
  auto cmpF = [&](bool Swapped, std::uint8_t CC) {
    cost(I.Cost);
    ++PendInstr;
    A.xorEcx();
    A.sseRM(0xF2, 0x10, XMM0, RBX, fd(Swapped ? I.B : I.A));
    A.sseRM(0x66, 0x2E, XMM0, RBX, fd(Swapped ? I.A : I.B)); // ucomisd
    A.setcc(CC, RCX);
    cmpStore();
  };
  auto cmpFEq = [&](bool Negated) {
    cost(I.Cost);
    ++PendInstr;
    A.xorEcx();
    A.xorEdx();
    A.sseRM(0xF2, 0x10, XMM0, RBX, fd(I.A));
    A.sseRM(0x66, 0x2E, XMM0, RBX, fd(I.B));
    A.setcc(Negated ? CC_NE : CC_E, RCX);
    A.setcc(Negated ? CC_P : CC_NP, RDX);
    A.aluRR(Negated ? 0x0B : 0x23, RCX, RDX); // or / and
    cmpStore();
  };
  auto loadCommon = [&](bool ToF, std::uint32_t Dst) {
    // Address in rax; trace/cache callback, translate, then the value write
    // (full 16 bytes, other half zeroed — the reference's Out pattern).
    if (Tracing)
      tracePush(0);
    else
      fusedHelper(CtxFusedLoad, I.Origin, true);
    translate();
    A.movRM(RAX, RDX, 0);
    if (ToF) {
      A.movMR(RBX, fd(Dst), RAX);
      A.movMemImm32(RBX, fi(Dst), 0);
    } else {
      A.movMR(RBX, fi(Dst), RAX);
      A.movMemImm32(RBX, fd(Dst), 0);
    }
  };
  auto loadFused2 = [&](std::uint8_t SseOp) { // LoadF{Add,Sub,Mul}F
    cost(I.Cost);
    ++PendInstr;
    ++PendLoads;
    A.movRM(RAX, RBX, fi(I.A));
    loadCommon(true, I.Aux);
    cost(I.CostB);
    ++PendInstr;
    A.sseRM(0xF2, 0x10, XMM0, RBX, fd(I.B));
    A.sseRM(0xF2, SseOp, XMM0, RBX, fd(I.C));
    A.sseRM(0xF2, 0x11, XMM0, RBX, fd(I.Dst));
  };
  auto brCmp = [&](std::uint8_t CC, bool ImmRhs) {
    cost(I.Cost);
    ++PendInstr;
    A.xorEcx();
    A.movRM(RAX, RBX, fi(I.A));
    if (!ImmRhs) {
      A.aluRM(0x3B, RAX, RBX, fi(I.B));
    } else if (fitsI32(I.Imm.I)) {
      A.aluImm32(7, RAX, static_cast<std::int32_t>(I.Imm.I));
    } else {
      A.movImm64(RDX, static_cast<std::uint64_t>(I.Imm.I));
      A.aluRR(0x3B, RAX, RDX);
    }
    A.setcc(CC, RCX);
    cmpStore();
    cost(I.CostB);
    ++PendInstr;
    flushPending(); // clobbers EFLAGS; re-test the materialized 0/1
    A.testRR(RCX, RCX);
    pcJcc(CC_NE, I.C);
    pcJmp(I.Aux);
  };

  switch (I.Op) {
  case O::MovI:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    A.movMR(RBX, fi(I.Dst), RAX);
    break;
  case O::MovImm:
  case O::PhiMovImm:
    if (I.Op == O::MovImm) {
      cost(I.Cost);
      ++PendInstr;
    }
    A.movImm64(RAX, static_cast<std::uint64_t>(I.Imm.I));
    A.movMR(RBX, fi(I.Dst), RAX);
    A.movImm64(RAX, bitsOf(I.Imm.D));
    A.movMR(RBX, fd(I.Dst), RAX);
    break;
  case O::PhiMov: // uncounted, uncosted parallel-copy move
    A.movRM(RAX, RBX, fi(I.A));
    A.movMR(RBX, fi(I.Dst), RAX);
    A.movRM(RAX, RBX, fd(I.A));
    A.movMR(RBX, fd(I.Dst), RAX);
    break;

  case O::Add:
    intBin(0x03);
    break;
  case O::Sub:
    intBin(0x2B);
    break;
  case O::Mul:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    A.imulRM(RAX, RBX, fi(I.B));
    A.movMR(RBX, fi(I.Dst), RAX);
    break;
  case O::SDiv:
    divRem(false);
    break;
  case O::SRem:
    divRem(true);
    break;
  case O::And:
    intBin(0x23);
    break;
  case O::Or:
    intBin(0x0B);
    break;
  case O::Xor:
    intBin(0x33);
    break;
  case O::Shl:
    shiftCl(true);
    break;
  case O::AShr:
    shiftCl(false);
    break;

  case O::AddImm:
    intBinImm(0x03, 0);
    break;
  case O::SubImm:
    intBinImm(0x2B, 5);
    break;
  case O::MulImm:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    A.movImm64(RCX, static_cast<std::uint64_t>(I.Imm.I));
    A.imulRR(RAX, RCX);
    A.movMR(RBX, fi(I.Dst), RAX);
    break;
  case O::ShlImm: // Imm pre-masked to [0,63] at lowering
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    A.shlImm8(RAX, static_cast<std::uint8_t>(I.Imm.I));
    A.movMR(RBX, fi(I.Dst), RAX);
    break;
  case O::AShrImm:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    A.sarImm8(RAX, static_cast<std::uint8_t>(I.Imm.I));
    A.movMR(RBX, fi(I.Dst), RAX);
    break;

  case O::FAdd:
    fpBin(0x58);
    break;
  case O::FSub:
    fpBin(0x5C);
    break;
  case O::FMul:
    fpBin(0x59);
    break;
  case O::FDiv:
    fpBin(0x5E);
    break;
  case O::FAddImm:
    fpBinImm(0x58);
    break;
  case O::FSubImm:
    fpBinImm(0x5C);
    break;
  case O::FMulImm:
    fpBinImm(0x59);
    break;
  case O::FDivImm:
    fpBinImm(0x5E);
    break;

  case O::CmpEQ:
    cmpI(CC_E);
    break;
  case O::CmpNE:
    cmpI(CC_NE);
    break;
  case O::CmpSLT:
    cmpI(CC_L);
    break;
  case O::CmpSLE:
    cmpI(CC_LE);
    break;
  case O::CmpSGT:
    cmpI(CC_G);
    break;
  case O::CmpSGE:
    cmpI(CC_GE);
    break;
  case O::CmpFLT:
    cmpF(true, CC_A);
    break;
  case O::CmpFLE:
    cmpF(true, CC_AE);
    break;
  case O::CmpFGT:
    cmpF(false, CC_A);
    break;
  case O::CmpFGE:
    cmpF(false, CC_AE);
    break;
  case O::CmpFEQ:
    cmpFEq(false);
    break;
  case O::CmpFNE:
    cmpFEq(true);
    break;
  case O::CmpEQImm:
    cmpIImm(CC_E);
    break;
  case O::CmpNEImm:
    cmpIImm(CC_NE);
    break;
  case O::CmpSLTImm:
    cmpIImm(CC_L);
    break;
  case O::CmpSLEImm:
    cmpIImm(CC_LE);
    break;
  case O::CmpSGTImm:
    cmpIImm(CC_G);
    break;
  case O::CmpSGEImm:
    cmpIImm(CC_GE);
    break;

  case O::Select:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RCX, RBX, fi(I.A));
    A.movRM(RAX, RBX, fi(I.B));
    A.movRM(RDX, RBX, fd(I.B));
    A.testRR(RCX, RCX);
    A.cmovzRM(RAX, RBX, fi(I.C));
    A.cmovzRM(RDX, RBX, fd(I.C));
    A.movMR(RBX, fi(I.Dst), RAX);
    A.movMR(RBX, fd(I.Dst), RDX);
    break;
  case O::SIToFP:
    cost(I.Cost);
    ++PendInstr;
    A.sseRM(0xF2, 0x2A, XMM0, RBX, fi(I.A), true); // cvtsi2sd
    A.sseRM(0xF2, 0x11, XMM0, RBX, fd(I.Dst));
    break;
  case O::FPToSI:
    cost(I.Cost);
    ++PendInstr;
    A.sseRM(0xF2, 0x2C, RAX, RBX, fd(I.A), true); // cvttsd2si
    A.movMR(RBX, fi(I.Dst), RAX);
    break;

  case O::Gep1Shl:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.B));
    A.shlImm8(RAX, static_cast<std::uint8_t>(I.Imm.I));
    A.aluRM(0x03, RAX, RBX, fi(I.A));
    storeOfInt(I.Dst);
    break;
  case O::GepMul:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.B));
    A.movImm64(RCX, static_cast<std::uint64_t>(I.Imm.I));
    A.imulRR(RAX, RCX);
    A.aluRM(0x03, RAX, RBX, fi(I.A));
    storeOfInt(I.Dst);
    break;
  case O::GepAddImm:
    cost(I.Cost);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.A));
    if (fitsI32(I.Imm.I)) {
      A.aluImm32(0, RAX, static_cast<std::int32_t>(I.Imm.I));
    } else {
      A.movImm64(RCX, static_cast<std::uint64_t>(I.Imm.I));
      A.aluRR(0x03, RAX, RCX);
    }
    storeOfInt(I.Dst);
    break;
  case O::GepN: {
    cost(I.Cost);
    ++PendInstr;
    const bc::GepDesc &G = BF.GepDescs[I.A];
    if (G.IdxRegs.empty()) {
      A.xorEax();
    } else {
      A.movRM(RAX, RBX, fi(G.IdxRegs[0]));
      for (std::size_t J = 1; J < G.IdxRegs.size(); ++J) {
        A.movImm64(RCX, static_cast<std::uint64_t>(G.Dims[J]));
        A.imulRR(RAX, RCX);
        A.aluRM(0x03, RAX, RBX, fi(G.IdxRegs[J]));
      }
    }
    A.movImm64(RCX, static_cast<std::uint64_t>(G.ElemSize));
    A.imulRR(RAX, RCX);
    A.aluRM(0x03, RAX, RBX, fi(G.Base));
    storeOfInt(I.Dst);
    break;
  }

  case O::LoadI:
  case O::LoadF:
    cost(I.Cost);
    ++PendInstr;
    ++PendLoads;
    A.movRM(RAX, RBX, fi(I.A));
    loadCommon(I.Op == O::LoadF, I.Dst);
    break;
  case O::StoreI:
  case O::StoreF:
    cost(I.Cost);
    ++PendInstr;
    ++PendStores;
    A.movRM(RAX, RBX, fi(I.B));
    if (Tracing)
      tracePush(1);
    else
      fusedHelper(CtxFusedStore, nullptr, true);
    translate();
    A.movRM(RCX, RBX, I.Op == O::StoreI ? fi(I.A) : fd(I.A));
    A.movMR(RDX, 0, RCX);
    break;
  case O::Prefetch: // trace/model only: no translation, no memory touch
    cost(I.Cost);
    ++PendInstr;
    ++PendPref;
    A.movRM(RAX, RBX, fi(I.A));
    if (Tracing)
      tracePush(2);
    else
      fusedHelper(CtxFusedPrefetch, nullptr, false);
    break;

  case O::LoadFAddF:
    loadFused2(0x58);
    break;
  case O::LoadFSubF:
    loadFused2(0x5C);
    break;
  case O::LoadFMulF:
    loadFused2(0x59);
    break;
  case O::LoadIAddI:
    cost(I.Cost);
    ++PendInstr;
    ++PendLoads;
    A.movRM(RAX, RBX, fi(I.A));
    loadCommon(false, I.Aux);
    cost(I.CostB);
    ++PendInstr;
    A.movRM(RAX, RBX, fi(I.B));
    A.aluRM(0x03, RAX, RBX, fi(I.C));
    A.movMR(RBX, fi(I.Dst), RAX);
    break;

  case O::Jmp:
    PendInstr += I.Count;
    cost(I.Cost);
    flushPending();
    pcJmp(I.A);
    break;
  case O::CondBr:
    cost(I.Cost);
    ++PendInstr;
    flushPending();
    A.movRM(RAX, RBX, fi(I.A));
    A.testRR(RAX, RAX);
    pcJcc(CC_NE, I.B);
    pcJmp(I.C);
    break;

  case O::BrCmpEQ:
    brCmp(CC_E, false);
    break;
  case O::BrCmpNE:
    brCmp(CC_NE, false);
    break;
  case O::BrCmpSLT:
    brCmp(CC_L, false);
    break;
  case O::BrCmpSLE:
    brCmp(CC_LE, false);
    break;
  case O::BrCmpSGT:
    brCmp(CC_G, false);
    break;
  case O::BrCmpSGE:
    brCmp(CC_GE, false);
    break;
  case O::BrCmpEQImm:
    brCmp(CC_E, true);
    break;
  case O::BrCmpNEImm:
    brCmp(CC_NE, true);
    break;
  case O::BrCmpSLTImm:
    brCmp(CC_L, true);
    break;
  case O::BrCmpSLEImm:
    brCmp(CC_LE, true);
    break;
  case O::BrCmpSGTImm:
    brCmp(CC_G, true);
    break;
  case O::BrCmpSGEImm:
    brCmp(CC_GE, true);
    break;

  case O::Ret:
    cost(I.Cost);
    ++PendInstr;
    flushPending();
    A.movMemImm32(RBP, CtxRetValid, 0);
    jmpEpilogue();
    break;
  case O::RetVal:
    cost(I.Cost);
    ++PendInstr;
    flushPending();
    A.movRM(RAX, RBX, fi(I.A));
    A.movMR(RBP, CtxRet, RAX);
    A.movRM(RAX, RBX, fd(I.A));
    A.movMR(RBP, CtxRet + 8, RAX);
    A.movMemImm32(RBP, CtxRetValid, 1);
    jmpEpilogue();
    break;
  case O::Call:
    cost(I.Cost);
    ++PendInstr;
    flushPending();
    // Full helper boundary: the callee translates, traces and may move the
    // frame arena; write every cached value back, reload all afterwards.
    A.movMR(RBP, CtxPageTag, R14);
    A.movMR(RBP, CtxDelta, R15);
    if (Tracing) {
      A.movMR(RBP, CtxTracePtr, R13);
      A.sseRM(0xF2, 0x11, XMM15, RBP, CtxCycles);
    }
    A.movRR(RDI, RBP);
    A.movImm64(RSI, reinterpret_cast<std::uintptr_t>(&BF.CallDescs[I.A]));
    A.movImm32(RDX, I.Dst);
    A.callMem(RBP, CtxCall);
    A.movRM(RBX, RBP, CtxFrame);
    A.movRM(R14, RBP, CtxPageTag);
    A.movRM(R15, RBP, CtxDelta);
    if (Tracing) {
      A.movRM(R13, RBP, CtxTracePtr);
      A.sseRM(0xF2, 0x10, XMM15, RBP, CtxCycles);
    }
    break;

  case O::Trap:
  default:
    return false; // pre-scan should have rejected; refuse to miscompile
  }
  return true;
}

} // namespace

#endif // DAECC_NATIVE_JIT

//===----------------------------------------------------------------------===//
// C emitter
//===----------------------------------------------------------------------===//

#if defined(DAECC_NATIVE_POSIX)

namespace {

void cf(std::string &S, const char *Fmt, ...) {
  char Buf[1024];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  S += Buf;
}

/// Same region discovery as FnEmitter::analyze: leaders and, for the tracing
/// variant, the trace-event count of each leader's straight-line region.
void analyzeRegions(const bc::BytecodeFunction &BF, std::vector<bool> &Leader,
                    std::vector<std::uint32_t> &Events) {
  const std::size_t N = BF.Code.size();
  Leader.assign(N, false);
  Leader[0] = true;
  for (std::size_t Pc = 0; Pc != N; ++Pc) {
    const bc::Instr &I = BF.Code[Pc];
    switch (I.Op) {
    case bc::Opcode::Jmp:
      Leader[I.A] = true;
      break;
    case bc::Opcode::CondBr:
      Leader[I.B] = true;
      Leader[I.C] = true;
      break;
    case bc::Opcode::BrCmpEQ:
    case bc::Opcode::BrCmpNE:
    case bc::Opcode::BrCmpSLT:
    case bc::Opcode::BrCmpSLE:
    case bc::Opcode::BrCmpSGT:
    case bc::Opcode::BrCmpSGE:
    case bc::Opcode::BrCmpEQImm:
    case bc::Opcode::BrCmpNEImm:
    case bc::Opcode::BrCmpSLTImm:
    case bc::Opcode::BrCmpSLEImm:
    case bc::Opcode::BrCmpSGTImm:
    case bc::Opcode::BrCmpSGEImm:
      Leader[I.C] = true;
      Leader[I.Aux] = true;
      break;
    default:
      break;
    }
    if ((isTerminator(I.Op) || I.Op == bc::Opcode::Call) && Pc + 1 < N)
      Leader[Pc + 1] = true;
  }
  Events.assign(N, 0);
  for (std::size_t L = 0; L != N; ++L) {
    if (!Leader[L])
      continue;
    std::uint32_t Ev = 0;
    for (std::size_t Pc = L; Pc != N; ++Pc) {
      Ev += traceEventsOf(BF.Code[Pc].Op);
      if (isTerminator(BF.Code[Pc].Op) || BF.Code[Pc].Op == bc::Opcode::Call)
        break;
      if (Pc + 1 < N && Leader[Pc + 1])
        break;
    }
    Events[L] = Ev;
  }
}

/// Emits one variant as a C function body. The statements mirror the JIT
/// stencils one for one — same cost-addition order, same helper boundaries,
/// same RuntimeValue write patterns — so both modes are interchangeable.
/// Integer +,-,*,<< run through unsigned types (defined wraparound, same
/// bits as the reference's x86 semantics).
void emitCFn(std::string &S, const bc::BytecodeFunction &BF, bool Tracing) {
  const std::size_t N = BF.Code.size();
  std::vector<bool> Leader;
  std::vector<std::uint32_t> Events;
  analyzeRegions(BF, Leader, Events);

  const std::uint64_t PageMask =
      ~static_cast<std::uint64_t>(Memory::PageSize - 1);

  cf(S, "void daecc_native_%s(Ctx *c) {\n", Tracing ? "traced" : "fused");
  cf(S, "  RV *r = c->Frame;\n");
  cf(S, "  unsigned long long ni = 0, nl = 0, ns = 0, np = 0;\n");
  cf(S, "  unsigned long long pt = c->LastPageTag;\n");
  cf(S, "  long long pd = c->LastDelta;\n");
  cf(S, "  unsigned long long a = 0; long long x = 0; double fv = 0.0;\n");
  cf(S, "  unsigned char *h = 0;\n");
  if (Tracing) {
    cf(S, "  double cyc = c->Cycles;\n");
    cf(S, "  unsigned long long *tp = c->TracePtr, *te = c->TraceEnd;\n");
  }

  // Statement fragments shared by several opcodes.
  auto Cost = [&](double C) {
    const std::uint64_t Bits = bitsOf(C);
    if (!Bits)
      return;
    if (Tracing)
      cf(S, " cyc += dbl(0x%llxULL);", (unsigned long long)Bits);
    else
      cf(S, " *(double *)((char *)c->Stats + %d) += dbl(0x%llxULL);",
         (int)StatsCC, (unsigned long long)Bits);
  };
  auto Imm = [&](std::int64_t V) { // hex form sidesteps INT64_MIN literals
    cf(S, "(long long)0x%llxULL", (unsigned long long)V);
  };
  auto UImm = [&](std::int64_t V) {
    cf(S, "0x%llxULL", (unsigned long long)V);
  };
  auto Translate = [&] {
    cf(S,
       " if ((a & 0x%llxULL) == pt) h = (unsigned char *)(unsigned long "
       "long)((long long)a + pd); else { h = c->Translate(c, a); pt = "
       "c->LastPageTag; pd = c->LastDelta; }",
       (unsigned long long)PageMask);
  };
  auto LoadPrefix = [&](const bc::Instr &I, std::uint32_t AddrReg) {
    cf(S, " nl++; a = (unsigned long long)r[%u].I;", AddrReg);
    if (Tracing)
      cf(S, " *tp++ = a;");
    else
      cf(S, " c->FusedLoad(c, a, (const void *)0x%llxULL);",
         (unsigned long long)reinterpret_cast<std::uintptr_t>(I.Origin));
    Translate();
  };
  auto IntBin = [&](const bc::Instr &I, const char *Op) {
    cf(S,
       " r[%u].I = (long long)((unsigned long long)r[%u].I %s (unsigned "
       "long long)r[%u].I);",
       I.Dst, I.A, Op, I.B);
  };
  auto IntBinImm = [&](const bc::Instr &I, const char *Op) {
    cf(S, " r[%u].I = (long long)((unsigned long long)r[%u].I %s ", I.Dst,
       I.A, Op);
    UImm(I.Imm.I);
    cf(S, ");");
  };
  auto CmpI = [&](const bc::Instr &I, const char *Op) {
    cf(S, " r[%u].I = r[%u].I %s r[%u].I; r[%u].D = 0.0;", I.Dst, I.A, Op,
       I.B, I.Dst);
  };
  auto CmpIImm = [&](const bc::Instr &I, const char *Op) {
    cf(S, " r[%u].I = r[%u].I %s ", I.Dst, I.A, Op);
    Imm(I.Imm.I);
    cf(S, "; r[%u].D = 0.0;", I.Dst);
  };
  auto CmpF = [&](const bc::Instr &I, const char *Op) {
    cf(S, " r[%u].I = r[%u].D %s r[%u].D; r[%u].D = 0.0;", I.Dst, I.A, Op,
       I.B, I.Dst);
  };
  auto FpBin = [&](const bc::Instr &I, char Op) {
    cf(S, " r[%u].D = r[%u].D %c r[%u].D;", I.Dst, I.A, Op, I.B);
  };
  auto FpBinImm = [&](const bc::Instr &I, char Op) {
    cf(S, " r[%u].D = r[%u].D %c dbl(0x%llxULL);", I.Dst, I.A, Op,
       (unsigned long long)bitsOf(I.Imm.D));
  };
  auto BrCmp = [&](const bc::Instr &I, const char *Op, bool ImmRhs) {
    cf(S, " ni++;");
    Cost(I.Cost);
    cf(S, " x = r[%u].I %s ", I.A, Op);
    if (ImmRhs)
      Imm(I.Imm.I);
    else
      cf(S, "r[%u].I", I.B);
    cf(S, "; r[%u].I = x; r[%u].D = 0.0; ni++;", I.Dst, I.Dst);
    Cost(I.CostB);
    cf(S, " if (x) goto L%u; else goto L%u;", I.C, I.Aux);
  };

  for (std::size_t Pc = 0; Pc != N; ++Pc) {
    const bc::Instr &I = BF.Code[Pc];
    using O = bc::Opcode;
    if (Leader[Pc]) {
      cf(S, "L%u: ;\n", (unsigned)Pc);
      if (Tracing && Events[Pc])
        cf(S,
           "  if ((unsigned long long)(te - tp) < %uULL) { c->TracePtr = tp; "
           "c->TraceGrow(c, %u); tp = c->TracePtr; te = c->TraceEnd; }\n",
           Events[Pc], Events[Pc]);
    }
    cf(S, " ");
    switch (I.Op) {
    case O::MovI:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = r[%u].I;", I.Dst, I.A);
      break;
    case O::MovImm:
    case O::PhiMovImm:
      if (I.Op == O::MovImm) {
        cf(S, " ni++;");
        Cost(I.Cost);
      }
      cf(S, " r[%u].I = ", I.Dst);
      Imm(I.Imm.I);
      cf(S, "; r[%u].D = dbl(0x%llxULL);", I.Dst,
         (unsigned long long)bitsOf(I.Imm.D));
      break;
    case O::PhiMov:
      cf(S, " r[%u] = r[%u];", I.Dst, I.A);
      break;

    case O::Add:
      cf(S, " ni++;");
      Cost(I.Cost);
      IntBin(I, "+");
      break;
    case O::Sub:
      cf(S, " ni++;");
      Cost(I.Cost);
      IntBin(I, "-");
      break;
    case O::Mul:
      cf(S, " ni++;");
      Cost(I.Cost);
      IntBin(I, "*");
      break;
    case O::SDiv:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " x = r[%u].I; r[%u].I = x ? r[%u].I / x : 0;", I.B, I.Dst, I.A);
      break;
    case O::SRem:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " x = r[%u].I; r[%u].I = x ? r[%u].I %% x : 0;", I.B, I.Dst, I.A);
      break;
    case O::And:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = r[%u].I & r[%u].I;", I.Dst, I.A, I.B);
      break;
    case O::Or:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = r[%u].I | r[%u].I;", I.Dst, I.A, I.B);
      break;
    case O::Xor:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = r[%u].I ^ r[%u].I;", I.Dst, I.A, I.B);
      break;
    case O::Shl:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S,
         " r[%u].I = (long long)((unsigned long long)r[%u].I << ((unsigned "
         "long long)r[%u].I & 63));",
         I.Dst, I.A, I.B);
      break;
    case O::AShr:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = r[%u].I >> ((unsigned long long)r[%u].I & 63);",
         I.Dst, I.A, I.B);
      break;

    case O::AddImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      IntBinImm(I, "+");
      break;
    case O::SubImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      IntBinImm(I, "-");
      break;
    case O::MulImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      IntBinImm(I, "*");
      break;
    case O::ShlImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = (long long)((unsigned long long)r[%u].I << %u);",
         I.Dst, I.A, (unsigned)I.Imm.I);
      break;
    case O::AShrImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = r[%u].I >> %u;", I.Dst, I.A, (unsigned)I.Imm.I);
      break;

    case O::FAdd:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBin(I, '+');
      break;
    case O::FSub:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBin(I, '-');
      break;
    case O::FMul:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBin(I, '*');
      break;
    case O::FDiv:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBin(I, '/');
      break;
    case O::FAddImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBinImm(I, '+');
      break;
    case O::FSubImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBinImm(I, '-');
      break;
    case O::FMulImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBinImm(I, '*');
      break;
    case O::FDivImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      FpBinImm(I, '/');
      break;

    case O::CmpEQ:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpI(I, "==");
      break;
    case O::CmpNE:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpI(I, "!=");
      break;
    case O::CmpSLT:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpI(I, "<");
      break;
    case O::CmpSLE:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpI(I, "<=");
      break;
    case O::CmpSGT:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpI(I, ">");
      break;
    case O::CmpSGE:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpI(I, ">=");
      break;
    case O::CmpFLT:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpF(I, "<");
      break;
    case O::CmpFLE:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpF(I, "<=");
      break;
    case O::CmpFGT:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpF(I, ">");
      break;
    case O::CmpFGE:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpF(I, ">=");
      break;
    case O::CmpFEQ:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpF(I, "==");
      break;
    case O::CmpFNE:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpF(I, "!=");
      break;
    case O::CmpEQImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpIImm(I, "==");
      break;
    case O::CmpNEImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpIImm(I, "!=");
      break;
    case O::CmpSLTImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpIImm(I, "<");
      break;
    case O::CmpSLEImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpIImm(I, "<=");
      break;
    case O::CmpSGTImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpIImm(I, ">");
      break;
    case O::CmpSGEImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      CmpIImm(I, ">=");
      break;

    case O::Select:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u] = r[%u].I != 0 ? r[%u] : r[%u];", I.Dst, I.A, I.B, I.C);
      break;
    case O::SIToFP:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].D = (double)r[%u].I;", I.Dst, I.A);
      break;
    case O::FPToSI:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = (long long)r[%u].D;", I.Dst, I.A);
      break;

    case O::Gep1Shl:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S,
         " r[%u].I = (long long)((unsigned long long)r[%u].I + ((unsigned "
         "long long)r[%u].I << %u)); r[%u].D = 0.0;",
         I.Dst, I.A, I.B, (unsigned)I.Imm.I, I.Dst);
      break;
    case O::GepMul:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S,
         " r[%u].I = (long long)((unsigned long long)r[%u].I + (unsigned "
         "long long)r[%u].I * ",
         I.Dst, I.A, I.B);
      UImm(I.Imm.I);
      cf(S, "); r[%u].D = 0.0;", I.Dst);
      break;
    case O::GepAddImm:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " r[%u].I = (long long)((unsigned long long)r[%u].I + ", I.Dst,
         I.A);
      UImm(I.Imm.I);
      cf(S, "); r[%u].D = 0.0;", I.Dst);
      break;
    case O::GepN: {
      cf(S, " ni++;");
      Cost(I.Cost);
      const bc::GepDesc &G = BF.GepDescs[I.A];
      cf(S, " r[%u].I = (long long)((unsigned long long)r[%u].I + (", I.Dst,
         G.Base);
      if (G.IdxRegs.empty()) {
        cf(S, "0ULL");
      } else {
        std::string Acc;
        cf(Acc, "(unsigned long long)r[%u].I", G.IdxRegs[0]);
        for (std::size_t J = 1; J < G.IdxRegs.size(); ++J) {
          std::string Next;
          cf(Next, "(%s * 0x%llxULL + (unsigned long long)r[%u].I)",
             Acc.c_str(), (unsigned long long)G.Dims[J], G.IdxRegs[J]);
          Acc = Next;
        }
        S += Acc;
      }
      cf(S, ") * 0x%llxULL); r[%u].D = 0.0;",
         (unsigned long long)G.ElemSize, I.Dst);
      break;
    }

    case O::LoadI:
      cf(S, " ni++;");
      Cost(I.Cost);
      LoadPrefix(I, I.A);
      cf(S, " memcpy(&x, h, 8); r[%u].I = x; r[%u].D = 0.0;", I.Dst, I.Dst);
      break;
    case O::LoadF:
      cf(S, " ni++;");
      Cost(I.Cost);
      LoadPrefix(I, I.A);
      cf(S, " memcpy(&fv, h, 8); r[%u].D = fv; r[%u].I = 0;", I.Dst, I.Dst);
      break;
    case O::StoreI:
    case O::StoreF:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " ns++; a = (unsigned long long)r[%u].I;", I.B);
      if (Tracing)
        cf(S, " *tp++ = a | (1ULL << 62);");
      else
        cf(S, " c->FusedStore(c, a);");
      Translate();
      cf(S, " memcpy(h, &r[%u].%c, 8);", I.A, I.Op == O::StoreI ? 'I' : 'D');
      break;
    case O::Prefetch:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " np++; a = (unsigned long long)r[%u].I;", I.A);
      if (Tracing)
        cf(S, " *tp++ = a | (2ULL << 62);");
      else
        cf(S, " c->FusedPrefetch(c, a);");
      break;

    case O::LoadFAddF:
    case O::LoadFSubF:
    case O::LoadFMulF: {
      const char Op2 =
          I.Op == O::LoadFAddF ? '+' : (I.Op == O::LoadFSubF ? '-' : '*');
      cf(S, " ni++;");
      Cost(I.Cost);
      LoadPrefix(I, I.A);
      cf(S, " memcpy(&fv, h, 8); r[%u].D = fv; r[%u].I = 0; ni++;", I.Aux,
         I.Aux);
      Cost(I.CostB);
      cf(S, " r[%u].D = r[%u].D %c r[%u].D;", I.Dst, I.B, Op2, I.C);
      break;
    }
    case O::LoadIAddI:
      cf(S, " ni++;");
      Cost(I.Cost);
      LoadPrefix(I, I.A);
      cf(S, " memcpy(&x, h, 8); r[%u].I = x; r[%u].D = 0.0; ni++;", I.Aux,
         I.Aux);
      Cost(I.CostB);
      cf(S,
         " r[%u].I = (long long)((unsigned long long)r[%u].I + (unsigned "
         "long long)r[%u].I);",
         I.Dst, I.B, I.C);
      break;

    case O::Jmp:
      cf(S, " ni += %u;", (unsigned)I.Count);
      Cost(I.Cost);
      cf(S, " goto L%u;", I.A);
      break;
    case O::CondBr:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " if (r[%u].I != 0) goto L%u; else goto L%u;", I.A, I.B, I.C);
      break;

    case O::BrCmpEQ:
      BrCmp(I, "==", false);
      break;
    case O::BrCmpNE:
      BrCmp(I, "!=", false);
      break;
    case O::BrCmpSLT:
      BrCmp(I, "<", false);
      break;
    case O::BrCmpSLE:
      BrCmp(I, "<=", false);
      break;
    case O::BrCmpSGT:
      BrCmp(I, ">", false);
      break;
    case O::BrCmpSGE:
      BrCmp(I, ">=", false);
      break;
    case O::BrCmpEQImm:
      BrCmp(I, "==", true);
      break;
    case O::BrCmpNEImm:
      BrCmp(I, "!=", true);
      break;
    case O::BrCmpSLTImm:
      BrCmp(I, "<", true);
      break;
    case O::BrCmpSLEImm:
      BrCmp(I, "<=", true);
      break;
    case O::BrCmpSGTImm:
      BrCmp(I, ">", true);
      break;
    case O::BrCmpSGEImm:
      BrCmp(I, ">=", true);
      break;

    case O::Ret:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " c->RetValid = 0; goto Lepi;");
      break;
    case O::RetVal:
      cf(S, " ni++;");
      Cost(I.Cost);
      cf(S, " c->Ret = r[%u]; c->RetValid = 1; goto Lepi;", I.A);
      break;
    case O::Call:
      cf(S, " ni++;");
      Cost(I.Cost);
      if (Tracing)
        cf(S, " c->Cycles = cyc; c->TracePtr = tp;");
      cf(S, " c->Call(c, (const void *)0x%llxULL, %uU); r = c->Frame;",
         (unsigned long long)reinterpret_cast<std::uintptr_t>(
             &BF.CallDescs[I.A]),
         I.Dst);
      if (Tracing)
        cf(S, " cyc = c->Cycles; tp = c->TracePtr; te = c->TraceEnd;");
      cf(S, " pt = c->LastPageTag; pd = c->LastDelta;");
      break;

    case O::Trap:
    default:
      cf(S, " /* unsupported */ goto Lepi;");
      break;
    }
    cf(S, "\n");
  }

  cf(S, "  goto Lepi;\nLepi: ;\n");
  cf(S, "  c->NInstr += ni; c->NLoads += nl; c->NStores += ns; "
        "c->NPrefetches += np;\n");
  cf(S, "  c->LastPageTag = pt; c->LastDelta = pd;\n");
  if (Tracing)
    cf(S, "  c->Cycles = cyc; c->TracePtr = tp;\n");
  cf(S, "  (void)a; (void)x; (void)fv; (void)h; (void)r;\n");
  cf(S, "}\n\n");
}

/// The complete generated translation unit: the re-declared ABI struct
/// (field-for-field NativeContext; layout pinned by the static_asserts in
/// NativeExec.h under any LP64 ABI) plus both variants.
std::string emitCSource(const bc::BytecodeFunction &BF) {
  std::string S;
  cf(S, "/* generated by daecc sim/NativeCodegen.cpp; ABI v%llu */\n",
     (unsigned long long)AbiVersion);
  cf(S, "#include <string.h>\n");
  cf(S, "typedef struct { long long I; double D; } RV;\n");
  cf(S, "typedef struct Ctx Ctx;\n");
  cf(S, "struct Ctx {\n");
  cf(S, "  RV *Frame;\n");
  cf(S, "  unsigned long long NInstr, NLoads, NStores, NPrefetches;\n");
  cf(S, "  double Cycles;\n");
  cf(S, "  unsigned long long *TracePtr;\n");
  cf(S, "  unsigned long long *TraceEnd;\n");
  cf(S, "  unsigned long long LastPageTag;\n");
  cf(S, "  long long LastDelta;\n");
  cf(S, "  void *Stats;\n");
  cf(S, "  RV Ret;\n");
  cf(S, "  unsigned long long RetValid;\n");
  cf(S, "  void *Self;\n");
  cf(S, "  unsigned char *(*Translate)(Ctx *, unsigned long long);\n");
  cf(S, "  void (*TraceGrow)(Ctx *, unsigned long long);\n");
  cf(S, "  void (*Call)(Ctx *, const void *, unsigned);\n");
  cf(S, "  void (*FusedLoad)(Ctx *, unsigned long long, const void *);\n");
  cf(S, "  void (*FusedStore)(Ctx *, unsigned long long);\n");
  cf(S, "  void (*FusedPrefetch)(Ctx *, unsigned long long);\n");
  cf(S, "  unsigned long long Fused;\n");
  cf(S, "};\n");
  cf(S, "static double dbl(unsigned long long u) { double d; memcpy(&d, &u, "
        "8); return d; }\n\n");
  emitCFn(S, BF, /*Tracing=*/false);
  emitCFn(S, BF, /*Tracing=*/true);
  return S;
}

} // namespace

#endif // DAECC_NATIVE_POSIX

//===----------------------------------------------------------------------===//
// Compile driver
//===----------------------------------------------------------------------===//

namespace {

#if defined(DAECC_NATIVE_JIT)

/// Both variants in one mmap'd buffer, W^X: RW while the stencils are
/// copied in, RX from publication on (never both).
class JitCode final : public NativeCode {
public:
  JitCode(std::uint8_t *Base, std::size_t Size, std::size_t TracedOff) {
    Jit = true;
    CodeAddr = Base;
    CodeSize = Size;
    Fused = reinterpret_cast<EntryFn>(Base);
    Traced = reinterpret_cast<EntryFn>(Base + TracedOff);
  }
  ~JitCode() override {
    munmap(const_cast<std::uint8_t *>(CodeAddr), CodeSize);
  }
};

std::shared_ptr<const NativeCode> jitCompile(const bc::BytecodeFunction &BF) {
  FnEmitter FusedEmit(BF, /*Tracing=*/false);
  FnEmitter TracedEmit(BF, /*Tracing=*/true);
  if (!FusedEmit.emit() || !TracedEmit.emit())
    return nullptr;
  const std::size_t TracedOff =
      (FusedEmit.A.Code.size() + 15) & ~static_cast<std::size_t>(15);
  const std::size_t Total = TracedOff + TracedEmit.A.Code.size();
  const std::size_t Page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t MapSize = (Total + Page - 1) & ~(Page - 1);
  void *Mem = mmap(nullptr, MapSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  std::memcpy(Mem, FusedEmit.A.Code.data(), FusedEmit.A.Code.size());
  std::memcpy(static_cast<std::uint8_t *>(Mem) + TracedOff,
              TracedEmit.A.Code.data(), TracedEmit.A.Code.size());
  if (mprotect(Mem, MapSize, PROT_READ | PROT_EXEC) != 0) {
    munmap(Mem, MapSize);
    return nullptr;
  }
  return std::make_shared<JitCode>(static_cast<std::uint8_t *>(Mem), MapSize,
                                   TracedOff);
}

#endif // DAECC_NATIVE_JIT

#if defined(DAECC_NATIVE_POSIX)

class CemitCode final : public NativeCode {
public:
  CemitCode(void *H, EntryFn F, EntryFn T) : Handle(H) {
    Fused = F;
    Traced = T;
  }
  ~CemitCode() override { dlclose(Handle); }

private:
  void *Handle;
};

void cemitWarnOnce(const char *What, const char *Detail) {
  static std::atomic<bool> Warned{false};
  if (!Warned.exchange(true))
    std::fprintf(stderr,
                 "daecc: native C-emission unavailable: %s%s%s; affected "
                 "functions run on the threaded backend\n",
                 What, Detail && *Detail ? ": " : "",
                 Detail && *Detail ? Detail : "");
}

std::shared_ptr<const NativeCode>
cemitCompile(const bc::BytecodeFunction &BF) {
  const std::string Src = emitCSource(BF);

  char CPath[] = "/tmp/daecc_native_XXXXXX.c";
  int Fd = mkstemps(CPath, 2);
  if (Fd < 0) {
    cemitWarnOnce("cannot create temporary source", nullptr);
    return nullptr;
  }
  const bool Keep = [] {
    const char *K = std::getenv("DAECC_NATIVE_KEEP_TMP");
    return K && *K && std::strcmp(K, "0") != 0;
  }();
  {
    FILE *F = fdopen(Fd, "w");
    if (!F) {
      close(Fd);
      unlink(CPath);
      cemitWarnOnce("cannot open temporary source", nullptr);
      return nullptr;
    }
    std::fwrite(Src.data(), 1, Src.size(), F);
    if (std::fclose(F) != 0) {
      unlink(CPath);
      cemitWarnOnce("cannot write temporary source", nullptr);
      return nullptr;
    }
  }

  const char *Cc = std::getenv("DAECC_NATIVE_CC");
  if (!Cc || !*Cc)
    Cc = "cc";
  const std::string SoPath = std::string(CPath) + ".so";
  // -ffp-contract=off is load-bearing: a contracted fma would change the
  // bits of the FP statistics relative to the reference interpreters.
  const std::string Cmd = std::string(Cc) +
                          " -O2 -fPIC -shared -x c -ffp-contract=off -w -o " +
                          SoPath + " " + CPath + " 2>/dev/null";
  const int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    if (!Keep)
      unlink(CPath);
    cemitWarnOnce("host compiler failed", Cc);
    return nullptr;
  }
  void *H = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Keep) {
    unlink(CPath);
    unlink(SoPath.c_str()); // mapping survives the unlink on POSIX
  }
  if (!H) {
    cemitWarnOnce("dlopen failed", dlerror());
    return nullptr;
  }
  EntryFn F = reinterpret_cast<EntryFn>(dlsym(H, "daecc_native_fused"));
  EntryFn T = reinterpret_cast<EntryFn>(dlsym(H, "daecc_native_traced"));
  if (!F || !T) {
    dlclose(H);
    cemitWarnOnce("generated symbols missing", nullptr);
    return nullptr;
  }
  return std::make_shared<CemitCode>(H, F, T);
}

#endif // DAECC_NATIVE_POSIX

} // namespace

namespace dae {
namespace sim {
namespace native {

std::shared_ptr<const NativeCode> compile(const bc::BytecodeFunction &BF,
                                          const Options &Opts) {
  // Rejection runs before the cache so DAECC_NATIVE_REJECT_OP always wins,
  // and rejections (test-dependent) are never cached.
  if (const char *Bad = findUnsupported(BF)) {
    if (Opts.AbortOnUnsupported) {
      std::fprintf(
          stderr,
          "daecc: native lowering rejected opcode '%s' (AbortOnUnsupported)\n",
          Bad);
      std::abort();
    }
    return nullptr;
  }
  if (BF.Code.empty())
    return nullptr;

#if !defined(DAECC_NATIVE_POSIX)
  (void)resolveMode;
  return nullptr;
#else
  const Mode Resolved = resolveMode(Opts.LowerMode);
#if !defined(DAECC_NATIVE_JIT)
  if (Resolved == Mode::Jit) // forced JIT on a host without one
    return nullptr;
#endif

  const std::uint64_t Key = keyOf(BF, Resolved);
  {
    std::lock_guard<std::mutex> Lock(cacheMutex());
    CacheState &S = cacheState();
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      It->second.LastUse = ++S.LruTick;
      return It->second.Code; // including cached failures (null)
    }
  }

  std::shared_ptr<const NativeCode> Code;
#if defined(DAECC_NATIVE_JIT)
  if (Resolved == Mode::Jit)
    Code = jitCompile(BF);
  else
    Code = cemitCompile(BF);
#else
  Code = cemitCompile(BF);
#endif

  {
    std::lock_guard<std::mutex> Lock(cacheMutex());
    CacheState &S = cacheState();
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      It->second.LastUse = ++S.LruTick;
      return It->second.Code; // another thread published first
    }
    S.insertLocked(Key, Code);
  }
  return Code;
#endif // DAECC_NATIVE_POSIX
}

CacheStats cacheStats() {
  std::lock_guard<std::mutex> Lock(cacheMutex());
  const CacheState &S = cacheState();
  CacheStats Out;
  Out.Entries = S.Map.size();
  Out.RetainedBytes = S.RetainedBytes;
  Out.Evictions = S.Evictions;
  return Out;
}

std::size_t setCacheCapBytesForTest(std::size_t Bytes) {
  std::lock_guard<std::mutex> Lock(cacheMutex());
  CacheState &S = cacheState();
  std::size_t Prev = S.CapBytes;
  S.CapBytes = Bytes;
  return Prev;
}

} // namespace native
} // namespace sim
} // namespace dae
