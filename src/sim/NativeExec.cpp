//===- sim/NativeExec.cpp - Native-backend execution engine -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
// The C++ half of the native backend: frame management, the slow-path
// helpers generated code calls (translation miss, trace growth, calls, fused
// cache callbacks), and the per-function threaded fallback. The fast paths —
// dispatch, value ops, trace appends, page-translation hits — live entirely
// in the generated code (sim/NativeCodegen.cpp).
//
// Bit-exactness protocols (verified against ThreadedInterpreter::exec):
//
//  * Integer counters (Instructions/Loads/Stores/Prefetches) are
//    order-independent totals; all activations of one top-level run
//    accumulate into the shared NativeContext cells (generated code flushes
//    region-constant increments), flushed into the returned PhaseStats once.
//
//  * Tracing-mode ComputeCycles must reproduce the reference's FP addend
//    order exactly. Each generated function accumulates its own costs in a
//    register (starting at 0.0) and adds the total into ctx->Cycles at its
//    epilogue. Across a call, nativeCall saves the caller's partial sum,
//    zeroes ctx->Cycles, runs the callee (so ctx->Cycles ends as 0.0 +
//    calleeTotal — bitwise equal to calleeTotal, costs being non-negative),
//    restores, and merges with ONE addition — exactly the reference's
//    `Cycles += Sub.ComputeCycles`.
//
//  * Fused mode keeps ComputeCycles/StallNs in the activation's PhaseStats
//    (generated code adds costs there directly, the fused helpers add hit
//    cycles/stalls between them, same interleaving as FusedModel); a call
//    swaps ctx->Stats to a zeroed local and merges it back with one
//    `*Stats += Sub`, matching the reference's Call handler.
//
//===----------------------------------------------------------------------===//

#include "sim/NativeExec.h"

#include "ir/Function.h"
#include "sim/CacheSim.h"
#include "sim/ExecModels.h"
#include "sim/NativeCodegen.h"

#include <algorithm>
#include <cassert>

using namespace dae;
using namespace dae::ir;
using namespace dae::sim;
using native::NativeContext;

namespace dae {
namespace sim {

/// Static shims matching the NativeContext function-pointer types; they
/// bounce to the owning interpreter through ctx->Self.
struct NativeHelpers {
  static std::uint8_t *translate(NativeContext *C, std::uint64_t Addr) {
    return C->Self->translateSlow(Addr);
  }

  static void traceGrow(NativeContext *C, std::uint64_t Needed) {
    C->Self->traceGrow(Needed);
  }

  static void call(NativeContext *C, const bc::CallDesc *D,
                   std::uint32_t DstReg) {
    C->Self->nativeCall(*D, DstReg);
  }

  // The fused callbacks replicate FusedModel (sim/ExecModels.h) verbatim
  // against the current activation's PhaseStats; the generated code has
  // already applied the instruction cost, matching the reference's
  // STEP-then-callback order.
  static void fusedLoad(NativeContext *C, std::uint64_t Addr,
                        const ir::Instruction *Origin) {
    NativeInterpreter &NI = *C->Self;
    PhaseStats &S = *C->Stats;
    const MachineConfig &Cfg = NI.Cfg;
    LoadSiteStats *Site = nullptr;
    if (NI.LoadStats) {
      Site = &(*NI.LoadStats)[Origin];
      ++Site->Count;
    }
    switch (NI.Caches->access(NI.CurCore, Addr)) {
    case HitLevel::L1:
      ++S.L1Hits;
      S.ComputeCycles += Cfg.L1HitCycles;
      break;
    case HitLevel::L2:
      ++S.L2Hits;
      S.ComputeCycles += Cfg.L2HitCycles;
      break;
    case HitLevel::LLC:
      ++S.LLCHits;
      S.ComputeCycles += Cfg.LLCHitCycles;
      break;
    case HitLevel::Memory:
      ++S.MemAccesses;
      S.StallNs += Cfg.MemLatencyNs / Cfg.LoadMlp;
      if (Site)
        ++Site->Misses;
      break;
    }
  }

  static void fusedStore(NativeContext *C, std::uint64_t Addr) {
    NativeInterpreter &NI = *C->Self;
    PhaseStats &S = *C->Stats;
    const MachineConfig &Cfg = NI.Cfg;
    switch (NI.Caches->access(NI.CurCore, Addr)) {
    case HitLevel::L1:
      ++S.L1Hits;
      break;
    case HitLevel::L2:
      ++S.L2Hits;
      S.ComputeCycles += Cfg.L2HitCycles * 0.5;
      break;
    case HitLevel::LLC:
      ++S.LLCHits;
      S.ComputeCycles += Cfg.LLCHitCycles * 0.5;
      break;
    case HitLevel::Memory:
      ++S.MemAccesses;
      S.StallNs += Cfg.MemLatencyNs / Cfg.StoreMlp;
      break;
    }
  }

  static void fusedPrefetch(NativeContext *C, std::uint64_t Addr) {
    NativeInterpreter &NI = *C->Self;
    PhaseStats &S = *C->Stats;
    const MachineConfig &Cfg = NI.Cfg;
    switch (NI.Caches->access(NI.CurCore, Addr)) {
    case HitLevel::L1:
    case HitLevel::L2:
      break;
    case HitLevel::LLC:
      S.StallNs += Cfg.LLCHitCycles / Cfg.fmax() / Cfg.PrefetchMlp;
      break;
    case HitLevel::Memory:
      ++S.MemAccesses;
      S.StallNs += Cfg.MemLatencyNs / Cfg.PrefetchMlp;
      break;
    }
  }
};

} // namespace sim
} // namespace dae

NativeInterpreter::NativeInterpreter(const MachineConfig &Cfg, Memory &Mem,
                                     CacheHierarchy *Caches, const Loader &L,
                                     const CompiledProgram *Shared)
    : Cfg(Cfg), Mem(Mem), Caches(Caches), Load(L), Shared(Shared),
      Fallback(Cfg, Mem, Caches, L, Shared) {
  Ctx.Self = this;
  Ctx.Translate = &NativeHelpers::translate;
  Ctx.TraceGrow = &NativeHelpers::traceGrow;
  Ctx.Call = &NativeHelpers::call;
  Ctx.FusedLoad = &NativeHelpers::fusedLoad;
  Ctx.FusedStore = &NativeHelpers::fusedStore;
  Ctx.FusedPrefetch = &NativeHelpers::fusedPrefetch;
}

NativeInterpreter::~NativeInterpreter() = default;

NativeInterpreter::FnEntry NativeInterpreter::getFn(const Function &F) {
  if (&F == LastFn)
    return LastEntry;
  FnEntry E;
  if (Shared) {
    E.BC = Shared->lookupBytecode(F);
    E.Code = Shared->lookupNative(F);
  }
  if (!E.BC) {
    auto It = LocalBC.find(&F);
    if (It == LocalBC.end())
      It = LocalBC.emplace(&F, bc::lower(F, Load, Cfg)).first;
    E.BC = It->second.get();
  }
  if (!E.Code) {
    auto It = LocalCode.find(&F);
    if (It == LocalCode.end())
      It = LocalCode.emplace(&F, native::compile(*E.BC)).first;
    E.Code = It->second.get();
  }
  LastFn = &F;
  LastEntry = E;
  return E;
}

std::uint8_t *NativeInterpreter::translateSlow(std::uint64_t Addr) {
  const std::uint64_t Page = Addr >> Memory::PageBits;
  auto It = PagePtrs.find(Page);
  if (It == PagePtrs.end())
    It = PagePtrs.emplace(Page, Mem.pageFor(Page)).first;
  std::uint8_t *Base = It->second;
  const std::uint64_t Tag = Addr & ~(Memory::PageSize - 1);
  Ctx.LastPageTag = Tag;
  Ctx.LastDelta = static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(
                      Base)) -
                  static_cast<std::int64_t>(Tag);
  return Base + (Addr & (Memory::PageSize - 1));
}

void NativeInterpreter::traceGrow(std::uint64_t Needed) {
  assert(CurTrace && "trace growth outside a traced run");
  Ctx.TracePtr = CurTrace->nativeGrow(Ctx.TracePtr,
                                      static_cast<std::size_t>(Needed));
  Ctx.TraceEnd = CurTrace->nativeEnd();
}

void NativeInterpreter::invoke(const bc::BytecodeFunction &BF,
                               const native::NativeCode &Code, bool Fused,
                               const RuntimeValue *Args, std::size_t NArgs) {
  // Per-activation frame carved out of the shared arena, exactly like the
  // threaded backend (registers are def-before-use by SSA dominance, so
  // stale bytes from earlier frames are never observed).
  const std::size_t FrameBase = FrameTop;
  if (Arena.size() < FrameBase + BF.NumRegs)
    Arena.resize(std::max(Arena.size() * 2,
                          static_cast<std::size_t>(FrameBase + BF.NumRegs)));
  FrameTop = FrameBase + BF.NumRegs;
  RuntimeValue *R = Arena.data() + FrameBase;
  for (std::size_t K = 0; K != NArgs; ++K)
    R[K] = Args[K];
  for (std::size_t K = 0; K != BF.ConstPool.size(); ++K)
    R[BF.ConstBase + K] = BF.ConstPool[K];
  Ctx.Frame = R;
  (Fused ? Code.fused() : Code.traced())(&Ctx);
  FrameTop = FrameBase;
}

void NativeInterpreter::nativeCall(const bc::CallDesc &D,
                                   std::uint32_t DstReg) {
  // Gather actuals from the caller's frame into an on-stack buffer (heap
  // fallback for arbitrary signatures), mirroring the threaded Call handler.
  RuntimeValue ArgBuf[16];
  std::vector<RuntimeValue> ArgSpill;
  RuntimeValue *CallArgs = ArgBuf;
  const std::size_t N = D.ArgRegs.size();
  if (N > 16) {
    ArgSpill.resize(N);
    CallArgs = ArgSpill.data();
  }
  {
    const RuntimeValue *R = Ctx.Frame;
    for (std::size_t K = 0; K != N; ++K)
      CallArgs[K] = R[D.ArgRegs[K]];
  }
  // The callee may grow the arena; remember the caller frame by offset.
  const std::ptrdiff_t CallerBase = Ctx.Frame - Arena.data();
  const bool Fused = Ctx.Fused != 0;

  RuntimeValue Ret;
  FnEntry E = getFn(*D.Callee);
  if (E.Code) {
    Ctx.RetValid = 0;
    if (Fused) {
      // Reference: callee accumulates into its own Sub; caller merges with
      // one field-wise +=. Swap the stats target for the activation.
      PhaseStats *Saved = Ctx.Stats;
      PhaseStats Sub;
      Ctx.Stats = &Sub;
      invoke(*E.BC, *E.Code, true, CallArgs, N);
      Ctx.Stats = Saved;
      if (Ctx.RetValid)
        Ret = Ctx.Ret;
      // Sub's integer counters are zero (they live in the shared ctx cells),
      // so this adds exactly ComputeCycles/StallNs/hit counters — the same
      // additions the reference's `S += Sub` performs after zeroing.
      *Saved += Sub;
    } else {
      const double CallerPartial = Ctx.Cycles;
      Ctx.Cycles = 0.0;
      invoke(*E.BC, *E.Code, false, CallArgs, N);
      const double SubCycles = Ctx.Cycles; // 0.0 + calleeTotal == calleeTotal
      if (Ctx.RetValid)
        Ret = Ctx.Ret;
      Ctx.Cycles = CallerPartial + SubCycles; // the one reference addition
    }
  } else {
    // Callee has no native code: run it through the threaded interpreter and
    // resume. Semantically this IS the reference Call handler.
    std::vector<RuntimeValue> ArgVec(CallArgs, CallArgs + N);
    PhaseStats Sub;
    if (Fused) {
      Sub = Fallback.run(*D.Callee, CurCore, ArgVec, &Ret);
    } else {
      // Hand the open trace cursor back to the vector for the duration.
      CurTrace->nativeCommit(Ctx.TracePtr);
      Sub = Fallback.runTraced(*D.Callee, ArgVec, *CurTrace, &Ret);
      Ctx.TracePtr = CurTrace->nativeBegin(0);
      Ctx.TraceEnd = CurTrace->nativeEnd();
    }
    Ctx.NInstr += Sub.Instructions;
    Ctx.NLoads += Sub.Loads;
    Ctx.NStores += Sub.Stores;
    Ctx.NPrefetches += Sub.Prefetches;
    Sub.Instructions = 0;
    Sub.Loads = 0;
    Sub.Stores = 0;
    Sub.Prefetches = 0;
    if (Fused)
      *Ctx.Stats += Sub;
    else
      Ctx.Cycles += Sub.ComputeCycles;
  }

  Ctx.Frame = Arena.data() + CallerBase;
  if (DstReg != bc::NoReg)
    Ctx.Frame[DstReg] = Ret;
}

PhaseStats NativeInterpreter::run(const Function &F, unsigned Core,
                                  const std::vector<RuntimeValue> &Args,
                                  RuntimeValue *RetOut) {
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");
  assert(Caches && "fused execution requires a cache hierarchy");
  FnEntry E = getFn(F);
  if (!E.Code)
    return Fallback.run(F, Core, Args, RetOut);
  CurCore = Core;
  PhaseStats S;
  Ctx.NInstr = Ctx.NLoads = Ctx.NStores = Ctx.NPrefetches = 0;
  Ctx.Stats = &S;
  Ctx.Fused = 1;
  Ctx.RetValid = 0;
  invoke(*E.BC, *E.Code, true, Args.data(), Args.size());
  S.Instructions += Ctx.NInstr;
  S.Loads += Ctx.NLoads;
  S.Stores += Ctx.NStores;
  S.Prefetches += Ctx.NPrefetches;
  if (RetOut && Ctx.RetValid)
    *RetOut = Ctx.Ret;
  Ctx.Stats = nullptr;
  return S;
}

PhaseStats NativeInterpreter::runTraced(const Function &F,
                                        const std::vector<RuntimeValue> &Args,
                                        AccessTrace &Trace,
                                        RuntimeValue *RetOut) {
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");
  FnEntry E = getFn(F);
  if (!E.Code)
    return Fallback.runTraced(F, Args, Trace, RetOut);
  CurTrace = &Trace;
  PhaseStats S;
  Ctx.NInstr = Ctx.NLoads = Ctx.NStores = Ctx.NPrefetches = 0;
  Ctx.Cycles = 0.0;
  Ctx.Fused = 0;
  Ctx.RetValid = 0;
  Ctx.TracePtr = Trace.nativeBegin(0);
  Ctx.TraceEnd = Trace.nativeEnd();
  invoke(*E.BC, *E.Code, false, Args.data(), Args.size());
  Trace.nativeCommit(Ctx.TracePtr);
  CurTrace = nullptr;
  S.Instructions += Ctx.NInstr;
  S.Loads += Ctx.NLoads;
  S.Stores += Ctx.NStores;
  S.Prefetches += Ctx.NPrefetches;
  S.ComputeCycles += Ctx.Cycles; // 0.0 + total, like the reference's flush
  if (RetOut && Ctx.RetValid)
    *RetOut = Ctx.Ret;
  return S;
}
