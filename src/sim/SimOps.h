//===- sim/SimOps.h - Shared opcode lowering helpers ------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the two functional execution backends (the switch
/// interpreter in Interpreter.cpp and the bytecode lowering in Bytecode.cpp):
/// the fully resolved SimOp dispatch enum, the IR-opcode -> SimOp mappings,
/// and the per-instruction core-clocked cost model.
///
/// The mappings abort with a diagnostic on enum values outside the known
/// range instead of silently falling back to Add/CmpEQ: a newly added IR
/// opcode must fail loudly in both backends until each learns to simulate
/// it (covered by death tests in tests/sim/SimTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_SIMOPS_H
#define DAECC_SIM_SIMOPS_H

#include "ir/Instruction.h"
#include "sim/MachineConfig.h"
#include "support/Casting.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace dae {
namespace sim {

/// Diagnostic abort for opcode values no lowering case handles. Unlike an
/// assert-plus-fallback this fires in every build type, so an unknown IR
/// opcode can never be silently mis-simulated as Add/CmpEQ.
[[noreturn]] inline void reportUnknownOpcode(const char *Where, int Value) {
  std::fprintf(stderr,
               "daecc fatal: %s: unknown opcode value %d "
               "(new IR opcode without simulator lowering?)\n",
               Where, Value);
  std::abort();
}

/// Fully resolved opcode: one flat dispatch per executed instruction instead
/// of re-deriving kind + sub-opcode + operand types from the IR every time.
enum class SimOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  FAdd,
  FSub,
  FMul,
  FDiv,
  CmpEQ,
  CmpNE,
  CmpSLT,
  CmpSLE,
  CmpSGT,
  CmpSGE,
  CmpFLT,
  CmpFLE,
  CmpFGT,
  CmpFGE,
  CmpFEQ,
  CmpFNE,
  Select,
  SIToFP,
  FPToSI,
  PtrCast,
  Gep,
  LoadI,
  LoadF,
  StoreI,
  StoreF,
  Prefetch,
  Br,
  CondBr,
  Ret,
  Call,
  Phi, ///< Never dispatched; phis live in CompiledBlock::Phis.
};

inline bool isTerminatorOp(SimOp Op) {
  return Op == SimOp::Br || Op == SimOp::CondBr || Op == SimOp::Ret;
}

inline SimOp binSimOp(ir::BinOp Op) {
  switch (Op) {
  case ir::BinOp::Add:
    return SimOp::Add;
  case ir::BinOp::Sub:
    return SimOp::Sub;
  case ir::BinOp::Mul:
    return SimOp::Mul;
  case ir::BinOp::SDiv:
    return SimOp::SDiv;
  case ir::BinOp::SRem:
    return SimOp::SRem;
  case ir::BinOp::And:
    return SimOp::And;
  case ir::BinOp::Or:
    return SimOp::Or;
  case ir::BinOp::Xor:
    return SimOp::Xor;
  case ir::BinOp::Shl:
    return SimOp::Shl;
  case ir::BinOp::AShr:
    return SimOp::AShr;
  case ir::BinOp::FAdd:
    return SimOp::FAdd;
  case ir::BinOp::FSub:
    return SimOp::FSub;
  case ir::BinOp::FMul:
    return SimOp::FMul;
  case ir::BinOp::FDiv:
    return SimOp::FDiv;
  }
  reportUnknownOpcode("binSimOp", static_cast<int>(Op));
}

inline SimOp cmpSimOp(ir::CmpPred P) {
  switch (P) {
  case ir::CmpPred::EQ:
    return SimOp::CmpEQ;
  case ir::CmpPred::NE:
    return SimOp::CmpNE;
  case ir::CmpPred::SLT:
    return SimOp::CmpSLT;
  case ir::CmpPred::SLE:
    return SimOp::CmpSLE;
  case ir::CmpPred::SGT:
    return SimOp::CmpSGT;
  case ir::CmpPred::SGE:
    return SimOp::CmpSGE;
  case ir::CmpPred::FLT:
    return SimOp::CmpFLT;
  case ir::CmpPred::FLE:
    return SimOp::CmpFLE;
  case ir::CmpPred::FGT:
    return SimOp::CmpFGT;
  case ir::CmpPred::FGE:
    return SimOp::CmpFGE;
  case ir::CmpPred::FEQ:
    return SimOp::CmpFEQ;
  case ir::CmpPred::FNE:
    return SimOp::CmpFNE;
  }
  reportUnknownOpcode("cmpSimOp", static_cast<int>(P));
}

/// Core-clocked cost of an instruction (cycles), excluding memory effects.
inline double instCycles(const ir::Instruction &I, const MachineConfig &Cfg) {
  switch (I.getKind()) {
  case ir::ValueKind::InstBinary:
    switch (cast<ir::BinaryInst>(&I)->getOpcode()) {
    case ir::BinOp::FDiv:
    case ir::BinOp::SDiv:
    case ir::BinOp::SRem:
      return Cfg.DivCycles;
    case ir::BinOp::FMul:
    case ir::BinOp::FAdd:
    case ir::BinOp::FSub:
      return Cfg.FpOpCycles;
    default:
      return Cfg.SimpleOpCycles;
    }
  case ir::ValueKind::InstPhi:
    return 0.0;
  case ir::ValueKind::InstCall:
    return 2.0 * Cfg.SimpleOpCycles;
  default:
    return Cfg.SimpleOpCycles;
  }
}

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_SIMOPS_H
