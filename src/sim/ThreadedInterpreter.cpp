//===- sim/ThreadedInterpreter.cpp - Direct-threaded dispatch loop ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
// The hot loop of the threaded backend. Handlers are written once, against
// the OP()/NEXT()/JUMP() macros, and assembled either into a computed-goto
// dispatch chain (GCC/Clang: every handler ends in an indirect jump through
// the label-address table, giving the branch predictor one distinct jump
// site per opcode) or into a portable switch loop on other compilers.
//
// Bit-exactness contract with the switch interpreter (Interpreter.cpp):
//  * every IR instruction bumps PhaseStats::Instructions exactly once and
//    adds its cost to ComputeCycles as its own FP addition, in program
//    order — fused superinstructions apply STEP()/STEP2() separately;
//  * memory-model callbacks (onLoad/onStore/onPrefetch) fire in the same
//    order relative to the counter bumps and the actual memory access;
//  * each handler reproduces the reference's RuntimeValue write pattern
//    (.I-only / .D-only / full-struct) so register files stay bit-identical
//    to the reference's slot environment at every step.
//
//===----------------------------------------------------------------------===//

#include "sim/ThreadedInterpreter.h"

#include "ir/Function.h"
#include "sim/ExecModels.h"
#include "sim/SimOps.h"

#include <cassert>

using namespace dae;
using namespace dae::ir;
using namespace dae::sim;

#if defined(__GNUC__) || defined(__clang__)
#define DAECC_COMPUTED_GOTO 1
#else
#define DAECC_COMPUTED_GOTO 0
#endif

ThreadedInterpreter::ThreadedInterpreter(const MachineConfig &Cfg, Memory &Mem,
                                         CacheHierarchy *Caches,
                                         const Loader &L,
                                         const CompiledProgram *Shared)
    : Cfg(Cfg), View(Mem), Caches(Caches), Load(L), Shared(Shared) {}

const bc::BytecodeFunction &
ThreadedInterpreter::getBytecode(const Function &F) {
  if (&F == LastFn)
    return *LastBC;
  const bc::BytecodeFunction *BF = nullptr;
  if (Shared)
    BF = Shared->lookupBytecode(F);
  if (!BF) {
    auto It = Cache.find(&F);
    if (It == Cache.end())
      It = Cache.emplace(&F, bc::lower(F, Load, Cfg)).first;
    BF = It->second.get();
  }
  LastFn = &F;
  LastBC = BF;
  return *BF;
}

template <typename MemModel>
PhaseStats ThreadedInterpreter::exec(const bc::BytecodeFunction &BF,
                                     const RuntimeValue *Args,
                                     std::size_t NArgs, RuntimeValue *RetOut,
                                     MemModel &MM) {
  PhaseStats S;

  // Per-activation frame carved out of the shared arena: no allocation or
  // zeroing per run (see the Frame member comment). A nested Call may grow
  // the arena, so its handler re-derives R after the callee returns.
  const std::size_t FrameBase = FrameTop;
  if (Frame.size() < FrameBase + BF.NumRegs)
    Frame.resize(std::max(Frame.size() * 2,
                          static_cast<std::size_t>(FrameBase + BF.NumRegs)));
  FrameTop = FrameBase + BF.NumRegs;
  RuntimeValue *R = Frame.data() + FrameBase;
  for (std::size_t K = 0; K != NArgs; ++K)
    R[K] = Args[K];
  for (std::size_t K = 0; K != BF.ConstPool.size(); ++K)
    R[BF.ConstBase + K] = BF.ConstPool[K];

  // Register-resident counters, flushed into S once at exit. The integer
  // counts are order-independent; ComputeCycles may only live in a local in
  // tracing mode (TracingModel never touches S), where the local sees the
  // exact same addition sequence the reference applies to the struct field.
  // Fused mode keeps ComputeCycles in S so instruction costs stay
  // interleaved with the cache model's hit-cycle additions bit-for-bit.
  std::uint64_t NInstr = 0, NLoads = 0, NStores = 0, NPrefetches = 0;
  double Cycles = 0.0;

  const bc::Instr *Code = BF.Code.data();
  const bc::Instr *I = Code;

#if DAECC_COMPUTED_GOTO
  static const void *const Labels[] = {
#define DAECC_BC_LABEL(Name) &&H_##Name,
      DAECC_BC_OPCODES(DAECC_BC_LABEL)
#undef DAECC_BC_LABEL
  };
#define DISPATCH() goto *Labels[static_cast<unsigned>(I->Op)]
#define OP(Name) H_##Name:
#else
#define DISPATCH() goto dispatch
#define OP(Name) case bc::Opcode::Name:
#endif

#define STEP()                                                                 \
  do {                                                                         \
    ++NInstr;                                                                  \
    if constexpr (MemModel::MutatesStats)                                      \
      S.ComputeCycles += I->Cost;                                              \
    else                                                                       \
      Cycles += I->Cost;                                                       \
  } while (0)
#define STEP2()                                                                \
  do {                                                                         \
    ++NInstr;                                                                  \
    if constexpr (MemModel::MutatesStats)                                      \
      S.ComputeCycles += I->CostB;                                             \
    else                                                                       \
      Cycles += I->CostB;                                                      \
  } while (0)
#define NEXT()                                                                 \
  do {                                                                         \
    ++I;                                                                       \
    DISPATCH();                                                                \
  } while (0)
#define JUMP(Pc)                                                               \
  do {                                                                         \
    I = Code + (Pc);                                                           \
    DISPATCH();                                                                \
  } while (0)

#define INT_BIN(Name, OPER)                                                    \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    R[I->Dst].I = R[I->A].I OPER R[I->B].I;                                    \
    NEXT();                                                                    \
  }
#define INT_BIN_IMM(Name, OPER)                                                \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    R[I->Dst].I = R[I->A].I OPER I->Imm.I;                                     \
    NEXT();                                                                    \
  }
#define FP_BIN(Name, OPER)                                                     \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    R[I->Dst].D = R[I->A].D OPER R[I->B].D;                                    \
    NEXT();                                                                    \
  }
#define FP_BIN_IMM(Name, OPER)                                                 \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    R[I->Dst].D = R[I->A].D OPER I->Imm.D;                                     \
    NEXT();                                                                    \
  }
#define CMP_I(Name, OPER)                                                      \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    R[I->Dst] = RuntimeValue::ofInt(R[I->A].I OPER R[I->B].I);                 \
    NEXT();                                                                    \
  }
#define CMP_F(Name, OPER)                                                      \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    R[I->Dst] = RuntimeValue::ofInt(R[I->A].D OPER R[I->B].D);                 \
    NEXT();                                                                    \
  }
#define CMP_I_IMM(Name, OPER)                                                  \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    R[I->Dst] = RuntimeValue::ofInt(R[I->A].I OPER I->Imm.I);                  \
    NEXT();                                                                    \
  }
#define BR_CMP(Name, OPER)                                                     \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    bool Taken = R[I->A].I OPER R[I->B].I;                                     \
    R[I->Dst] = RuntimeValue::ofInt(Taken);                                    \
    STEP2();                                                                   \
    JUMP(Taken ? I->C : I->Aux);                                               \
  }
#define BR_CMP_IMM(Name, OPER)                                                 \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    bool Taken = R[I->A].I OPER I->Imm.I;                                      \
    R[I->Dst] = RuntimeValue::ofInt(Taken);                                    \
    STEP2();                                                                   \
    JUMP(Taken ? I->C : I->Aux);                                               \
  }
#define LOAD_F_BIN(Name, OPER)                                                 \
  OP(Name) {                                                                   \
    STEP();                                                                    \
    std::uint64_t Addr = static_cast<std::uint64_t>(R[I->A].I);                \
    ++NLoads;                                                                  \
    MM.onLoad(S, Addr, I->Origin);                                             \
    RuntimeValue Out;                                                          \
    Out.D = View.loadF64(Addr);                                                \
    R[I->Aux] = Out;                                                           \
    STEP2();                                                                   \
    R[I->Dst].D = R[I->B].D OPER R[I->C].D;                                    \
    NEXT();                                                                    \
  }

#if DAECC_COMPUTED_GOTO
  DISPATCH();
#else
dispatch:
  switch (I->Op) {
#endif

  OP(Trap)
  reportUnknownOpcode("threaded dispatch", static_cast<int>(I->Op));

  OP(MovI) {
    STEP();
    R[I->Dst].I = R[I->A].I;
    NEXT();
  }
  OP(MovImm) {
    STEP();
    R[I->Dst] = I->Imm;
    NEXT();
  }
  OP(PhiMov) {
    R[I->Dst] = R[I->A];
    NEXT();
  }
  OP(PhiMovImm) {
    R[I->Dst] = I->Imm;
    NEXT();
  }

  INT_BIN(Add, +)
  INT_BIN(Sub, -)
  INT_BIN(Mul, *)
  OP(SDiv) {
    STEP();
    std::int64_t Rhs = R[I->B].I;
    R[I->Dst].I = Rhs != 0 ? R[I->A].I / Rhs : 0;
    NEXT();
  }
  OP(SRem) {
    STEP();
    std::int64_t Rhs = R[I->B].I;
    R[I->Dst].I = Rhs != 0 ? R[I->A].I % Rhs : 0;
    NEXT();
  }
  INT_BIN(And, &)
  INT_BIN(Or, |)
  INT_BIN(Xor, ^)
  OP(Shl) {
    STEP();
    R[I->Dst].I = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(R[I->A].I)
        << (static_cast<std::uint64_t>(R[I->B].I) & 63));
    NEXT();
  }
  OP(AShr) {
    STEP();
    R[I->Dst].I =
        R[I->A].I >> (static_cast<std::uint64_t>(R[I->B].I) & 63);
    NEXT();
  }

  INT_BIN_IMM(AddImm, +)
  INT_BIN_IMM(SubImm, -)
  INT_BIN_IMM(MulImm, *)
  OP(ShlImm) {
    // Imm.I is pre-masked to [0, 63] at lowering.
    STEP();
    R[I->Dst].I = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(R[I->A].I) << I->Imm.I);
    NEXT();
  }
  OP(AShrImm) {
    STEP();
    R[I->Dst].I = R[I->A].I >> I->Imm.I;
    NEXT();
  }

  FP_BIN(FAdd, +)
  FP_BIN(FSub, -)
  FP_BIN(FMul, *)
  FP_BIN(FDiv, /)
  FP_BIN_IMM(FAddImm, +)
  FP_BIN_IMM(FSubImm, -)
  FP_BIN_IMM(FMulImm, *)
  FP_BIN_IMM(FDivImm, /)

  CMP_I(CmpEQ, ==)
  CMP_I(CmpNE, !=)
  CMP_I(CmpSLT, <)
  CMP_I(CmpSLE, <=)
  CMP_I(CmpSGT, >)
  CMP_I(CmpSGE, >=)
  CMP_F(CmpFLT, <)
  CMP_F(CmpFLE, <=)
  CMP_F(CmpFGT, >)
  CMP_F(CmpFGE, >=)
  CMP_F(CmpFEQ, ==)
  CMP_F(CmpFNE, !=)
  CMP_I_IMM(CmpEQImm, ==)
  CMP_I_IMM(CmpNEImm, !=)
  CMP_I_IMM(CmpSLTImm, <)
  CMP_I_IMM(CmpSLEImm, <=)
  CMP_I_IMM(CmpSGTImm, >)
  CMP_I_IMM(CmpSGEImm, >=)

  OP(Select) {
    STEP();
    R[I->Dst] = R[I->A].I != 0 ? R[I->B] : R[I->C];
    NEXT();
  }
  OP(SIToFP) {
    STEP();
    R[I->Dst].D = static_cast<double>(R[I->A].I);
    NEXT();
  }
  OP(FPToSI) {
    STEP();
    R[I->Dst].I = static_cast<std::int64_t>(R[I->A].D);
    NEXT();
  }

  OP(Gep1Shl) {
    STEP();
    R[I->Dst] = RuntimeValue::ofInt(
        R[I->A].I + static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(R[I->B].I) << I->Imm.I));
    NEXT();
  }
  OP(GepMul) {
    STEP();
    R[I->Dst] = RuntimeValue::ofInt(R[I->A].I + R[I->B].I * I->Imm.I);
    NEXT();
  }
  OP(GepAddImm) {
    STEP();
    R[I->Dst] = RuntimeValue::ofInt(R[I->A].I + I->Imm.I);
    NEXT();
  }
  OP(GepN) {
    STEP();
    const bc::GepDesc &G = BF.GepDescs[I->A];
    std::int64_t Linear = 0;
    for (std::size_t J = 0; J != G.IdxRegs.size(); ++J)
      Linear = Linear * (J ? G.Dims[J] : 1) + R[G.IdxRegs[J]].I;
    R[I->Dst] = RuntimeValue::ofInt(R[G.Base].I + Linear * G.ElemSize);
    NEXT();
  }

  OP(LoadI) {
    STEP();
    std::uint64_t Addr = static_cast<std::uint64_t>(R[I->A].I);
    ++NLoads;
    MM.onLoad(S, Addr, I->Origin);
    RuntimeValue Out;
    Out.I = View.loadI64(Addr);
    R[I->Dst] = Out;
    NEXT();
  }
  OP(LoadF) {
    STEP();
    std::uint64_t Addr = static_cast<std::uint64_t>(R[I->A].I);
    ++NLoads;
    MM.onLoad(S, Addr, I->Origin);
    RuntimeValue Out;
    Out.D = View.loadF64(Addr);
    R[I->Dst] = Out;
    NEXT();
  }
  OP(StoreI) {
    STEP();
    std::uint64_t Addr = static_cast<std::uint64_t>(R[I->B].I);
    std::int64_t V = R[I->A].I;
    ++NStores;
    MM.onStore(S, Addr);
    View.storeI64(Addr, V);
    NEXT();
  }
  OP(StoreF) {
    STEP();
    std::uint64_t Addr = static_cast<std::uint64_t>(R[I->B].I);
    double V = R[I->A].D;
    ++NStores;
    MM.onStore(S, Addr);
    View.storeF64(Addr, V);
    NEXT();
  }
  OP(Prefetch) {
    STEP();
    std::uint64_t Addr = static_cast<std::uint64_t>(R[I->A].I);
    ++NPrefetches;
    MM.onPrefetch(S, Addr);
    NEXT();
  }

  LOAD_F_BIN(LoadFAddF, +)
  LOAD_F_BIN(LoadFSubF, -)
  LOAD_F_BIN(LoadFMulF, *)
  OP(LoadIAddI) {
    STEP();
    std::uint64_t Addr = static_cast<std::uint64_t>(R[I->A].I);
    ++NLoads;
    MM.onLoad(S, Addr, I->Origin);
    RuntimeValue Out;
    Out.I = View.loadI64(Addr);
    R[I->Aux] = Out;
    STEP2();
    R[I->Dst].I = R[I->B].I + R[I->C].I;
    NEXT();
  }

  OP(Jmp) {
    NInstr += I->Count;
    if constexpr (MemModel::MutatesStats)
      S.ComputeCycles += I->Cost;
    else
      Cycles += I->Cost;
    JUMP(I->A);
  }
  OP(CondBr) {
    STEP();
    JUMP(R[I->A].I != 0 ? I->B : I->C);
  }

  BR_CMP(BrCmpEQ, ==)
  BR_CMP(BrCmpNE, !=)
  BR_CMP(BrCmpSLT, <)
  BR_CMP(BrCmpSLE, <=)
  BR_CMP(BrCmpSGT, >)
  BR_CMP(BrCmpSGE, >=)
  BR_CMP_IMM(BrCmpEQImm, ==)
  BR_CMP_IMM(BrCmpNEImm, !=)
  BR_CMP_IMM(BrCmpSLTImm, <)
  BR_CMP_IMM(BrCmpSLEImm, <=)
  BR_CMP_IMM(BrCmpSGTImm, >)
  BR_CMP_IMM(BrCmpSGEImm, >=)

  OP(Ret) {
    STEP();
    goto done;
  }
  OP(RetVal) {
    STEP();
    if (RetOut)
      *RetOut = R[I->A];
    goto done;
  }
  OP(Call) {
    STEP();
    const bc::CallDesc &D = BF.CallDescs[I->A];
    // Gather actuals into an on-stack buffer (no allocation per call); the
    // heap fallback keeps arbitrary signatures correct.
    RuntimeValue ArgBuf[16];
    std::vector<RuntimeValue> ArgSpill;
    RuntimeValue *CallArgs = ArgBuf;
    if (D.ArgRegs.size() > 16) {
      ArgSpill.resize(D.ArgRegs.size());
      CallArgs = ArgSpill.data();
    }
    for (std::size_t K = 0; K != D.ArgRegs.size(); ++K)
      CallArgs[K] = R[D.ArgRegs[K]];
    RuntimeValue Ret;
    PhaseStats Sub =
        exec(getBytecode(*D.Callee), CallArgs, D.ArgRegs.size(), &Ret, MM);
    // The callee may have grown the arena; re-derive our frame pointer.
    R = Frame.data() + FrameBase;
    // Fold the callee's register-resident counts into ours and merge the
    // rest of its stats field-wise (same totals as the reference's S += Sub).
    NInstr += Sub.Instructions;
    NLoads += Sub.Loads;
    NStores += Sub.Stores;
    NPrefetches += Sub.Prefetches;
    Sub.Instructions = 0;
    Sub.Loads = 0;
    Sub.Stores = 0;
    Sub.Prefetches = 0;
    if constexpr (MemModel::MutatesStats)
      S += Sub;
    else
      Cycles += Sub.ComputeCycles;
    if (I->Dst != bc::NoReg)
      R[I->Dst] = Ret;
    NEXT();
  }

#if !DAECC_COMPUTED_GOTO
  }
  reportUnknownOpcode("threaded dispatch", static_cast<int>(I->Op));
#endif

done:
  S.Instructions += NInstr;
  S.Loads += NLoads;
  S.Stores += NStores;
  S.Prefetches += NPrefetches;
  if constexpr (!MemModel::MutatesStats)
    S.ComputeCycles += Cycles;
  FrameTop = FrameBase;
  return S;

#undef LOAD_F_BIN
#undef BR_CMP_IMM
#undef BR_CMP
#undef CMP_I_IMM
#undef CMP_F
#undef CMP_I
#undef FP_BIN_IMM
#undef FP_BIN
#undef INT_BIN_IMM
#undef INT_BIN
#undef JUMP
#undef NEXT
#undef STEP2
#undef STEP
#undef OP
#undef DISPATCH
}

PhaseStats ThreadedInterpreter::run(const Function &F, unsigned Core,
                                    const std::vector<RuntimeValue> &Args,
                                    RuntimeValue *RetOut) {
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");
  assert(Caches && "fused execution requires a cache hierarchy");
  FusedModel MM{*Caches, Cfg, Core, LoadStats};
  return exec(getBytecode(F), Args.data(), Args.size(), RetOut, MM);
}

PhaseStats ThreadedInterpreter::runTraced(const Function &F,
                                          const std::vector<RuntimeValue> &Args,
                                          AccessTrace &Trace,
                                          RuntimeValue *RetOut) {
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");
  TracingModel MM{Trace};
  return exec(getBytecode(F), Args.data(), Args.size(), RetOut, MM);
}
