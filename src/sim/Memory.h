//===- sim/Memory.h - Simulated flat memory ---------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse 64-bit byte-addressed memory with a tiny loader that assigns
/// base addresses to module globals. Workloads initialize their arrays
/// through it and the interpreter reads/writes through it.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_MEMORY_H
#define DAECC_SIM_MEMORY_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dae {

namespace ir {
class Module;
class GlobalVariable;
} // namespace ir

namespace sim {

/// Sparse simulated memory (4 KiB pages allocated on touch).
class Memory {
public:
  std::int64_t loadI64(std::uint64_t Addr);
  double loadF64(std::uint64_t Addr);
  void storeI64(std::uint64_t Addr, std::int64_t V);
  void storeF64(std::uint64_t Addr, double V);

  /// Number of distinct pages touched (testing/diagnostics).
  size_t pagesTouched() const { return Pages.size(); }

private:
  static constexpr std::uint64_t PageBits = 12;
  static constexpr std::uint64_t PageSize = 1ull << PageBits;

  std::uint8_t *pagePtr(std::uint64_t Addr);

  std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> Pages;
};

/// Assigns non-overlapping, line-aligned base addresses to every global of a
/// module and resolves them by name.
class Loader {
public:
  explicit Loader(const ir::Module &M, std::uint64_t Base = 0x10000);

  std::uint64_t baseOf(const ir::GlobalVariable *G) const;
  std::uint64_t baseOf(const std::string &Name) const;

private:
  std::map<const ir::GlobalVariable *, std::uint64_t> Bases;
  std::map<std::string, std::uint64_t> ByName;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_MEMORY_H
