//===- sim/Memory.h - Simulated flat memory ---------------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse 64-bit byte-addressed memory with a tiny loader that assigns
/// base addresses to module globals. Workloads initialize their arrays
/// through it and the interpreter reads/writes through it.
///
/// The page table is safe under concurrent access from the host-parallel
/// simulation engine: lookups and on-touch allocation take a sharded mutex,
/// and page storage is never moved or freed once allocated, so raw page
/// pointers handed out by pageFor() stay valid for the Memory's lifetime
/// (interpreters cache them thread-locally to keep the hot path lock-free).
/// Same-wave tasks write disjoint addresses by the runtime's independence
/// contract, so byte-level data races cannot occur.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_MEMORY_H
#define DAECC_SIM_MEMORY_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dae {

namespace ir {
class Module;
class GlobalVariable;
} // namespace ir

namespace sim {

/// Sparse simulated memory (4 KiB pages allocated on touch).
class Memory {
public:
  static constexpr std::uint64_t PageBits = 12;
  static constexpr std::uint64_t PageSize = 1ull << PageBits;

  std::int64_t loadI64(std::uint64_t Addr);
  double loadF64(std::uint64_t Addr);
  void storeI64(std::uint64_t Addr, std::int64_t V);
  void storeF64(std::uint64_t Addr, double V);

  /// Returns the backing storage of page \p PageIdx (allocating it zeroed on
  /// first touch). Thread safe; the returned pointer is stable until the
  /// Memory is destroyed.
  std::uint8_t *pageFor(std::uint64_t PageIdx);

  /// Number of distinct pages touched (testing/diagnostics).
  size_t pagesTouched() const;

  /// FNV-1a hash of the program-visible memory image: every page with any
  /// nonzero byte, in page-index order, hashed as (index, contents).
  /// All-zero pages hash like untouched ones, so two runs differ only when
  /// they produced different *values* — an access phase that merely touches
  /// (allocates) extra pages, which a pure prefetcher may, cannot change the
  /// hash. Not thread safe against concurrent writers; call between runs.
  std::uint64_t imageHash() const;

private:
  std::uint8_t *pagePtr(std::uint64_t Addr) {
    return pageFor(Addr >> PageBits) + (Addr & (PageSize - 1));
  }

  /// Sharded page table: the shard index is a cheap hash of the page number,
  /// so concurrent workers touching different regions rarely contend.
  static constexpr unsigned NumShards = 64;
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> Pages;
  };
  Shard Shards[NumShards];

  static unsigned shardOf(std::uint64_t PageIdx) {
    return static_cast<unsigned>((PageIdx ^ (PageIdx >> 6)) & (NumShards - 1));
  }
};

/// Assigns non-overlapping, line-aligned base addresses to every global of a
/// module and resolves them by name.
class Loader {
public:
  explicit Loader(const ir::Module &M, std::uint64_t Base = 0x10000);

  std::uint64_t baseOf(const ir::GlobalVariable *G) const;
  std::uint64_t baseOf(const std::string &Name) const;

private:
  std::map<const ir::GlobalVariable *, std::uint64_t> Bases;
  std::map<std::string, std::uint64_t> ByName;
};

/// A per-thread window into a Memory: caches page pointers (which are stable)
/// so repeated accesses skip the sharded page-table lock entirely. Each
/// interpreter owns one; they are cheap and never shared across threads.
class MemoryView {
public:
  explicit MemoryView(Memory &M) : M(M) {}

  std::uint8_t *ptr(std::uint64_t Addr) {
    std::uint64_t Page = Addr >> Memory::PageBits;
    if (Page != LastPage) {
      auto It = PagePtrs.find(Page);
      if (It == PagePtrs.end())
        It = PagePtrs.emplace(Page, M.pageFor(Page)).first;
      LastPage = Page;
      LastPtr = It->second;
    }
    return LastPtr + (Addr & (Memory::PageSize - 1));
  }

  // Inline (unlike Memory's own accessors): these sit on the simulators'
  // per-access hot path, where an out-of-line call costs as much as the
  // access itself. The common case is a page-memo hit: shift, compare,
  // memcpy.
  std::int64_t loadI64(std::uint64_t Addr) {
    assert((Addr & 0xfff) <= 0xff8 && "unaligned cross-page access");
    std::int64_t V;
    std::memcpy(&V, ptr(Addr), sizeof(V));
    return V;
  }
  double loadF64(std::uint64_t Addr) {
    assert((Addr & 0xfff) <= 0xff8 && "unaligned cross-page access");
    double V;
    std::memcpy(&V, ptr(Addr), sizeof(V));
    return V;
  }
  void storeI64(std::uint64_t Addr, std::int64_t V) {
    assert((Addr & 0xfff) <= 0xff8 && "unaligned cross-page access");
    std::memcpy(ptr(Addr), &V, sizeof(V));
  }
  void storeF64(std::uint64_t Addr, double V) {
    assert((Addr & 0xfff) <= 0xff8 && "unaligned cross-page access");
    std::memcpy(ptr(Addr), &V, sizeof(V));
  }

private:
  Memory &M;
  std::uint64_t LastPage = ~0ull;
  std::uint8_t *LastPtr = nullptr;
  std::unordered_map<std::uint64_t, std::uint8_t *> PagePtrs;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_MEMORY_H
