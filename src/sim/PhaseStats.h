//===- sim/PhaseStats.h - Frequency-decomposed phase profile ----*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-phase profile in the interval model the paper builds on (Keramidas et
/// al., reference [13]): work is split into a core-clocked cycle count and a
/// frequency-independent memory stall time, so the execution time at any
/// frequency is recovered analytically:
///
///   time_ns(f) = ComputeCycles / f_GHz + StallNs
///
/// This is exactly why one simulation per scheme suffices to sweep the whole
/// DVFS ladder, mirroring the paper's "run once per frequency and model"
/// methodology (section 3.1) without re-running anything.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_PHASESTATS_H
#define DAECC_SIM_PHASESTATS_H

#include <cstdint>

namespace dae {
namespace sim {

/// Aggregated execution profile of one phase (access, execute, or coupled).
struct PhaseStats {
  std::uint64_t Instructions = 0;
  double ComputeCycles = 0.0; ///< Core-clocked work (scales with f).
  double StallNs = 0.0;       ///< Memory time (frequency independent).

  std::uint64_t Loads = 0;
  std::uint64_t Stores = 0;
  std::uint64_t Prefetches = 0;
  std::uint64_t L1Hits = 0;
  std::uint64_t L2Hits = 0;
  std::uint64_t LLCHits = 0;
  std::uint64_t MemAccesses = 0; ///< LLC misses (to DRAM).

  /// Wall-clock time at \p FreqGHz, in nanoseconds.
  double timeNs(double FreqGHz) const {
    return ComputeCycles / FreqGHz + StallNs;
  }

  /// Instructions per cycle at \p FreqGHz (total cycles include stalls).
  double ipc(double FreqGHz) const {
    double Cycles = timeNs(FreqGHz) * FreqGHz;
    return Cycles > 0.0 ? static_cast<double>(Instructions) / Cycles : 0.0;
  }

  PhaseStats &operator+=(const PhaseStats &R) {
    Instructions += R.Instructions;
    ComputeCycles += R.ComputeCycles;
    StallNs += R.StallNs;
    Loads += R.Loads;
    Stores += R.Stores;
    Prefetches += R.Prefetches;
    L1Hits += R.L1Hits;
    L2Hits += R.L2Hits;
    LLCHits += R.LLCHits;
    MemAccesses += R.MemAccesses;
    return *this;
  }
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_PHASESTATS_H
