//===- sim/Interpreter.cpp - Task IR interpreter ----------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"

#include "ir/Module.h"
#include "support/Casting.h"

#include <cassert>
#include <cmath>

using namespace dae;
using namespace dae::ir;
using namespace dae::sim;

namespace {

/// Core-clocked cost of an instruction (cycles), excluding memory effects.
double instCycles(const Instruction &I, const MachineConfig &Cfg) {
  switch (I.getKind()) {
  case ValueKind::InstBinary:
    switch (cast<BinaryInst>(&I)->getOpcode()) {
    case BinOp::FDiv:
    case BinOp::SDiv:
    case BinOp::SRem:
      return Cfg.DivCycles;
    case BinOp::FMul:
    case BinOp::FAdd:
    case BinOp::FSub:
      return Cfg.FpOpCycles;
    default:
      return Cfg.SimpleOpCycles;
    }
  case ValueKind::InstPhi:
    return 0.0;
  case ValueKind::InstCall:
    return 2.0 * Cfg.SimpleOpCycles;
  default:
    return Cfg.SimpleOpCycles;
  }
}

/// An operand resolved at compile time: either an immediate or a slot.
struct OperandRef {
  bool IsImm = false;
  RuntimeValue Imm;
  unsigned Slot = 0;
};

struct CompiledInstr {
  const Instruction *I = nullptr;
  int DstSlot = -1; ///< -1 for void results.
  double Cycles = 0.0;
  std::vector<OperandRef> Ops;
  // Branch successors / phi incoming block indices.
  int BlockA = -1, BlockB = -1;
  std::vector<unsigned> PhiPredIndex; ///< Parallel to Ops for phis.
};

struct CompiledBlock {
  std::vector<CompiledInstr> Phis;
  std::vector<CompiledInstr> Body;
};

} // namespace

namespace dae {
namespace sim {

/// Slot-addressed executable form of one function.
class CompiledFunction {
public:
  CompiledFunction(const Function &F, const Loader &L,
                   const MachineConfig &Cfg) {
    std::map<const BasicBlock *, unsigned> BlockIndex;
    unsigned Idx = 0;
    for (const auto &BB : F)
      BlockIndex[BB.get()] = Idx++;

    for (const auto &A : F.args())
      Slots[A.get()] = NumSlots++;
    for (const auto &BB : F)
      for (const auto &I : *BB)
        if (I->getType() != Type::Void)
          Slots[I.get()] = NumSlots++;

    auto MakeOp = [&](Value *V) {
      OperandRef R;
      if (const auto *CI = dyn_cast<ConstantInt>(V)) {
        R.IsImm = true;
        R.Imm = RuntimeValue::ofInt(CI->getValue());
      } else if (const auto *CF = dyn_cast<ConstantFloat>(V)) {
        R.IsImm = true;
        R.Imm = RuntimeValue::ofFloat(CF->getValue());
      } else if (const auto *G = dyn_cast<GlobalVariable>(V)) {
        R.IsImm = true;
        R.Imm = RuntimeValue::ofInt(
            static_cast<std::int64_t>(L.baseOf(G)));
      } else {
        auto It = Slots.find(V);
        assert(It != Slots.end() && "operand without a slot");
        R.Slot = It->second;
      }
      return R;
    };

    Blocks.resize(Idx);
    unsigned B = 0;
    for (const auto &BB : F) {
      CompiledBlock &CB = Blocks[B++];
      for (const auto &IPtr : *BB) {
        const Instruction *I = IPtr.get();
        CompiledInstr CI;
        CI.I = I;
        CI.Cycles = instCycles(*I, Cfg);
        auto SlotIt = Slots.find(I);
        CI.DstSlot = SlotIt == Slots.end() ? -1 : static_cast<int>(SlotIt->second);
        if (const auto *Phi = dyn_cast<PhiInst>(I)) {
          for (unsigned J = 0; J != Phi->getNumIncoming(); ++J) {
            CI.Ops.push_back(MakeOp(Phi->getIncomingValue(J)));
            CI.PhiPredIndex.push_back(
                BlockIndex.at(Phi->getIncomingBlock(J)));
          }
          CB.Phis.push_back(std::move(CI));
          continue;
        }
        for (Value *Op : I->operands())
          CI.Ops.push_back(MakeOp(Op));
        if (const auto *Br = dyn_cast<BrInst>(I)) {
          CI.BlockA = static_cast<int>(BlockIndex.at(Br->getTrueDest()));
          if (Br->isConditional())
            CI.BlockB = static_cast<int>(BlockIndex.at(Br->getFalseDest()));
        }
        CB.Body.push_back(std::move(CI));
      }
    }
  }

  unsigned numSlots() const { return NumSlots; }
  const std::vector<CompiledBlock> &blocks() const { return Blocks; }
  unsigned argSlot(unsigned I) const { return I; } // Args get the first slots.

private:
  std::map<const Value *, unsigned> Slots;
  unsigned NumSlots = 0;
  std::vector<CompiledBlock> Blocks;
};

} // namespace sim
} // namespace dae

Interpreter::Interpreter(const MachineConfig &Cfg, Memory &Mem,
                         CacheHierarchy &Caches, const Loader &L)
    : Cfg(Cfg), Mem(Mem), Caches(Caches), Load(L) {}

Interpreter::~Interpreter() = default;

const CompiledFunction &Interpreter::getCompiled(const Function &F) {
  auto It = Cache.find(&F);
  if (It == Cache.end())
    It = Cache.emplace(&F,
                       std::make_unique<CompiledFunction>(F, Load, Cfg))
             .first;
  return *It->second;
}

PhaseStats Interpreter::run(const Function &F, unsigned Core,
                            const std::vector<RuntimeValue> &Args,
                            RuntimeValue *RetOut) {
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");
  const CompiledFunction &CF = getCompiled(F);

  PhaseStats S;
  std::vector<RuntimeValue> Env(CF.numSlots());
  for (unsigned I = 0; I != Args.size(); ++I)
    Env[CF.argSlot(I)] = Args[I];

  auto Get = [&](const OperandRef &R) -> const RuntimeValue & {
    return R.IsImm ? R.Imm : Env[R.Slot];
  };

  int Block = 0;
  int PrevBlock = -1;
  std::vector<RuntimeValue> PhiTemp;

  while (Block >= 0) {
    const CompiledBlock &CB = CF.blocks()[static_cast<unsigned>(Block)];

    // Phis read their inputs simultaneously on entry.
    if (!CB.Phis.empty()) {
      PhiTemp.clear();
      for (const CompiledInstr &CI : CB.Phis) {
        bool Found = false;
        for (unsigned J = 0; J != CI.PhiPredIndex.size(); ++J)
          if (static_cast<int>(CI.PhiPredIndex[J]) == PrevBlock) {
            PhiTemp.push_back(Get(CI.Ops[J]));
            Found = true;
            break;
          }
        assert(Found && "phi has no entry for the incoming edge");
        if (!Found)
          PhiTemp.push_back(RuntimeValue());
        S.Instructions++;
      }
      for (unsigned J = 0; J != CB.Phis.size(); ++J)
        Env[static_cast<unsigned>(CB.Phis[J].DstSlot)] = PhiTemp[J];
    }

    int Next = -1;
    for (const CompiledInstr &CI : CB.Body) {
      const Instruction *I = CI.I;
      ++S.Instructions;
      S.ComputeCycles += CI.Cycles;

      switch (I->getKind()) {
      case ValueKind::InstBinary: {
        const auto *Bin = cast<BinaryInst>(I);
        const RuntimeValue &L = Get(CI.Ops[0]);
        const RuntimeValue &R = Get(CI.Ops[1]);
        RuntimeValue Out;
        switch (Bin->getOpcode()) {
        case BinOp::Add:
          Out.I = L.I + R.I;
          break;
        case BinOp::Sub:
          Out.I = L.I - R.I;
          break;
        case BinOp::Mul:
          Out.I = L.I * R.I;
          break;
        case BinOp::SDiv:
          Out.I = R.I != 0 ? L.I / R.I : 0;
          break;
        case BinOp::SRem:
          Out.I = R.I != 0 ? L.I % R.I : 0;
          break;
        case BinOp::And:
          Out.I = L.I & R.I;
          break;
        case BinOp::Or:
          Out.I = L.I | R.I;
          break;
        case BinOp::Xor:
          Out.I = L.I ^ R.I;
          break;
        case BinOp::Shl:
          Out.I = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(L.I)
              << (static_cast<std::uint64_t>(R.I) & 63));
          break;
        case BinOp::AShr:
          Out.I = L.I >> (static_cast<std::uint64_t>(R.I) & 63);
          break;
        case BinOp::FAdd:
          Out.D = L.D + R.D;
          break;
        case BinOp::FSub:
          Out.D = L.D - R.D;
          break;
        case BinOp::FMul:
          Out.D = L.D * R.D;
          break;
        case BinOp::FDiv:
          Out.D = L.D / R.D;
          break;
        }
        Env[static_cast<unsigned>(CI.DstSlot)] = Out;
        break;
      }
      case ValueKind::InstCmp: {
        const auto *Cmp = cast<CmpInst>(I);
        const RuntimeValue &L = Get(CI.Ops[0]);
        const RuntimeValue &R = Get(CI.Ops[1]);
        bool B = false;
        switch (Cmp->getPredicate()) {
        case CmpPred::EQ:
          B = L.I == R.I;
          break;
        case CmpPred::NE:
          B = L.I != R.I;
          break;
        case CmpPred::SLT:
          B = L.I < R.I;
          break;
        case CmpPred::SLE:
          B = L.I <= R.I;
          break;
        case CmpPred::SGT:
          B = L.I > R.I;
          break;
        case CmpPred::SGE:
          B = L.I >= R.I;
          break;
        case CmpPred::FLT:
          B = L.D < R.D;
          break;
        case CmpPred::FLE:
          B = L.D <= R.D;
          break;
        case CmpPred::FGT:
          B = L.D > R.D;
          break;
        case CmpPred::FGE:
          B = L.D >= R.D;
          break;
        case CmpPred::FEQ:
          B = L.D == R.D;
          break;
        case CmpPred::FNE:
          B = L.D != R.D;
          break;
        }
        Env[static_cast<unsigned>(CI.DstSlot)] = RuntimeValue::ofInt(B);
        break;
      }
      case ValueKind::InstSelect: {
        const RuntimeValue &C = Get(CI.Ops[0]);
        Env[static_cast<unsigned>(CI.DstSlot)] =
            C.I != 0 ? Get(CI.Ops[1]) : Get(CI.Ops[2]);
        break;
      }
      case ValueKind::InstCast: {
        const auto *Cast = dae::cast<CastInst>(I);
        const RuntimeValue &V = Get(CI.Ops[0]);
        RuntimeValue Out;
        switch (Cast->getOpcode()) {
        case CastOp::SIToFP:
          Out.D = static_cast<double>(V.I);
          break;
        case CastOp::FPToSI:
          Out.I = static_cast<std::int64_t>(V.D);
          break;
        case CastOp::PtrToInt:
        case CastOp::IntToPtr:
          Out.I = V.I;
          break;
        }
        Env[static_cast<unsigned>(CI.DstSlot)] = Out;
        break;
      }
      case ValueKind::InstGep: {
        const auto *Gep = cast<GepInst>(I);
        std::int64_t Addr = Get(CI.Ops[0]).I;
        const auto &Dims = Gep->getDimSizes();
        std::int64_t Linear = 0;
        for (unsigned J = 1; J != CI.Ops.size(); ++J) {
          Linear = Linear * (J > 1 ? Dims[J - 1] : 1) + Get(CI.Ops[J]).I;
        }
        Addr += Linear * Gep->getElemSize();
        Env[static_cast<unsigned>(CI.DstSlot)] = RuntimeValue::ofInt(Addr);
        break;
      }
      case ValueKind::InstLoad: {
        std::uint64_t Addr = static_cast<std::uint64_t>(Get(CI.Ops[0]).I);
        ++S.Loads;
        LoadSiteStats *Site = nullptr;
        if (LoadStats) {
          Site = &(*LoadStats)[I];
          ++Site->Count;
        }
        switch (Caches.access(Core, Addr)) {
        case HitLevel::L1:
          ++S.L1Hits;
          S.ComputeCycles += Cfg.L1HitCycles;
          break;
        case HitLevel::L2:
          ++S.L2Hits;
          S.ComputeCycles += Cfg.L2HitCycles;
          break;
        case HitLevel::LLC:
          ++S.LLCHits;
          S.ComputeCycles += Cfg.LLCHitCycles;
          break;
        case HitLevel::Memory:
          ++S.MemAccesses;
          S.StallNs += Cfg.MemLatencyNs / Cfg.LoadMlp;
          if (Site)
            ++Site->Misses;
          break;
        }
        RuntimeValue Out;
        if (I->getType() == Type::Float64)
          Out.D = Mem.loadF64(Addr);
        else
          Out.I = Mem.loadI64(Addr);
        Env[static_cast<unsigned>(CI.DstSlot)] = Out;
        break;
      }
      case ValueKind::InstStore: {
        std::uint64_t Addr = static_cast<std::uint64_t>(Get(CI.Ops[1]).I);
        const RuntimeValue &V = Get(CI.Ops[0]);
        ++S.Stores;
        switch (Caches.access(Core, Addr)) {
        case HitLevel::L1:
          ++S.L1Hits;
          break;
        case HitLevel::L2:
          ++S.L2Hits;
          S.ComputeCycles += Cfg.L2HitCycles * 0.5;
          break;
        case HitLevel::LLC:
          ++S.LLCHits;
          S.ComputeCycles += Cfg.LLCHitCycles * 0.5;
          break;
        case HitLevel::Memory:
          ++S.MemAccesses;
          S.StallNs += Cfg.MemLatencyNs / Cfg.StoreMlp;
          break;
        }
        const StoreInst *St = cast<StoreInst>(I);
        if (St->getValue()->getType() == Type::Float64)
          Mem.storeF64(Addr, V.D);
        else
          Mem.storeI64(Addr, V.I);
        break;
      }
      case ValueKind::InstPrefetch: {
        std::uint64_t Addr = static_cast<std::uint64_t>(Get(CI.Ops[0]).I);
        ++S.Prefetches;
        // Non-binding: warms the hierarchy, never stalls retirement, but is
        // throughput-limited by the outstanding-miss capacity.
        switch (Caches.access(Core, Addr)) {
        case HitLevel::L1:
        case HitLevel::L2:
          break;
        case HitLevel::LLC:
          S.StallNs += Cfg.LLCHitCycles / Cfg.fmax() / Cfg.PrefetchMlp;
          break;
        case HitLevel::Memory:
          ++S.MemAccesses;
          S.StallNs += Cfg.MemLatencyNs / Cfg.PrefetchMlp;
          break;
        }
        break;
      }
      case ValueKind::InstBr: {
        if (CI.Ops.empty())
          Next = CI.BlockA;
        else
          Next = Get(CI.Ops[0]).I != 0 ? CI.BlockA : CI.BlockB;
        break;
      }
      case ValueKind::InstRet: {
        if (RetOut && !CI.Ops.empty())
          *RetOut = Get(CI.Ops[0]);
        Next = -1;
        break;
      }
      case ValueKind::InstCall: {
        const auto *Call = cast<CallInst>(I);
        std::vector<RuntimeValue> CallArgs;
        CallArgs.reserve(CI.Ops.size());
        for (const OperandRef &Op : CI.Ops)
          CallArgs.push_back(Get(Op));
        RuntimeValue Ret;
        PhaseStats Sub = run(*Call->getCallee(), Core, CallArgs, &Ret);
        S += Sub;
        if (CI.DstSlot >= 0)
          Env[static_cast<unsigned>(CI.DstSlot)] = Ret;
        break;
      }
      default:
        assert(false && "unhandled instruction in interpreter");
      }

      if (I->isTerminator())
        break;
    }
    PrevBlock = Block;
    Block = Next;
  }
  return S;
}
