//===- sim/Interpreter.cpp - Task IR interpreter ----------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"

#include "ir/Module.h"
#include "sim/Bytecode.h"
#include "sim/ExecModels.h"
#include "sim/SimOps.h"
#include "sim/NativeCodegen.h"
#include "sim/NativeExec.h"
#include "sim/ThreadedInterpreter.h"
#include "support/Casting.h"

#include <cassert>
#include <cmath>
#include <map>

using namespace dae;
using namespace dae::ir;
using namespace dae::sim;

namespace {

/// An operand resolved at compile time: either an immediate or a slot.
struct OperandRef {
  bool IsImm = false;
  RuntimeValue Imm;
  unsigned Slot = 0;
};

struct CompiledInstr {
  const Instruction *I = nullptr;
  SimOp Op = SimOp::Phi;
  int DstSlot = -1; ///< -1 for void results.
  double Cycles = 0.0;
  std::vector<OperandRef> Ops;
  // Branch successors / phi incoming block indices.
  int BlockA = -1, BlockB = -1;
  std::vector<unsigned> PhiPredIndex; ///< Parallel to Ops for phis.
  // Gep payload (address arithmetic fully resolved at compile time).
  std::int64_t GepElemSize = 0;
  std::vector<std::int64_t> GepDims;
  const Function *Callee = nullptr;
};

struct CompiledBlock {
  std::vector<CompiledInstr> Phis;
  std::vector<CompiledInstr> Body;
};

} // namespace

namespace dae {
namespace sim {

/// Slot-addressed executable form of one function.
class CompiledFunction {
public:
  CompiledFunction(const Function &F, const Loader &L,
                   const MachineConfig &Cfg) {
    std::map<const BasicBlock *, unsigned> BlockIndex;
    unsigned Idx = 0;
    for (const auto &BB : F)
      BlockIndex[BB.get()] = Idx++;

    for (const auto &A : F.args())
      Slots[A.get()] = NumSlots++;
    for (const auto &BB : F)
      for (const auto &I : *BB)
        if (I->getType() != Type::Void)
          Slots[I.get()] = NumSlots++;

    auto MakeOp = [&](Value *V) {
      OperandRef R;
      if (const auto *CI = dyn_cast<ConstantInt>(V)) {
        R.IsImm = true;
        R.Imm = RuntimeValue::ofInt(CI->getValue());
      } else if (const auto *CF = dyn_cast<ConstantFloat>(V)) {
        R.IsImm = true;
        R.Imm = RuntimeValue::ofFloat(CF->getValue());
      } else if (const auto *G = dyn_cast<GlobalVariable>(V)) {
        R.IsImm = true;
        R.Imm = RuntimeValue::ofInt(
            static_cast<std::int64_t>(L.baseOf(G)));
      } else {
        auto It = Slots.find(V);
        assert(It != Slots.end() && "operand without a slot");
        R.Slot = It->second;
      }
      return R;
    };

    Blocks.resize(Idx);
    unsigned B = 0;
    for (const auto &BB : F) {
      CompiledBlock &CB = Blocks[B++];
      for (const auto &IPtr : *BB) {
        const Instruction *I = IPtr.get();
        CompiledInstr CI;
        CI.I = I;
        CI.Cycles = instCycles(*I, Cfg);
        auto SlotIt = Slots.find(I);
        CI.DstSlot = SlotIt == Slots.end() ? -1 : static_cast<int>(SlotIt->second);
        if (const auto *Phi = dyn_cast<PhiInst>(I)) {
          CI.Op = SimOp::Phi;
          for (unsigned J = 0; J != Phi->getNumIncoming(); ++J) {
            CI.Ops.push_back(MakeOp(Phi->getIncomingValue(J)));
            CI.PhiPredIndex.push_back(
                BlockIndex.at(Phi->getIncomingBlock(J)));
          }
          CB.Phis.push_back(std::move(CI));
          continue;
        }
        for (Value *Op : I->operands())
          CI.Ops.push_back(MakeOp(Op));

        switch (I->getKind()) {
        case ValueKind::InstBinary:
          CI.Op = binSimOp(cast<BinaryInst>(I)->getOpcode());
          break;
        case ValueKind::InstCmp:
          CI.Op = cmpSimOp(cast<CmpInst>(I)->getPredicate());
          break;
        case ValueKind::InstSelect:
          CI.Op = SimOp::Select;
          break;
        case ValueKind::InstCast:
          switch (cast<CastInst>(I)->getOpcode()) {
          case CastOp::SIToFP:
            CI.Op = SimOp::SIToFP;
            break;
          case CastOp::FPToSI:
            CI.Op = SimOp::FPToSI;
            break;
          case CastOp::PtrToInt:
          case CastOp::IntToPtr:
            CI.Op = SimOp::PtrCast;
            break;
          }
          break;
        case ValueKind::InstGep: {
          const auto *Gep = cast<GepInst>(I);
          CI.Op = SimOp::Gep;
          CI.GepElemSize = Gep->getElemSize();
          CI.GepDims = Gep->getDimSizes();
          break;
        }
        case ValueKind::InstLoad:
          CI.Op = I->getType() == Type::Float64 ? SimOp::LoadF : SimOp::LoadI;
          break;
        case ValueKind::InstStore:
          CI.Op = cast<StoreInst>(I)->getValue()->getType() == Type::Float64
                      ? SimOp::StoreF
                      : SimOp::StoreI;
          break;
        case ValueKind::InstPrefetch:
          CI.Op = SimOp::Prefetch;
          break;
        case ValueKind::InstBr: {
          const auto *Br = cast<BrInst>(I);
          CI.BlockA = static_cast<int>(BlockIndex.at(Br->getTrueDest()));
          if (Br->isConditional()) {
            CI.Op = SimOp::CondBr;
            CI.BlockB = static_cast<int>(BlockIndex.at(Br->getFalseDest()));
          } else {
            CI.Op = SimOp::Br;
          }
          break;
        }
        case ValueKind::InstRet:
          CI.Op = SimOp::Ret;
          break;
        case ValueKind::InstCall:
          CI.Op = SimOp::Call;
          CI.Callee = cast<CallInst>(I)->getCallee();
          break;
        default:
          assert(false && "unhandled instruction kind in compiler");
        }
        CB.Body.push_back(std::move(CI));
      }
    }
  }

  unsigned numSlots() const { return NumSlots; }
  const std::vector<CompiledBlock> &blocks() const { return Blocks; }
  unsigned argSlot(unsigned I) const { return I; } // Args get the first slots.

private:
  std::map<const Value *, unsigned> Slots;
  unsigned NumSlots = 0;
  std::vector<CompiledBlock> Blocks;
};

} // namespace sim
} // namespace dae

//===----------------------------------------------------------------------===//
// CompiledProgram
//===----------------------------------------------------------------------===//

CompiledProgram::CompiledProgram(const MachineConfig &Cfg, const Loader &L)
    : Cfg(Cfg), Load(L) {}

CompiledProgram::~CompiledProgram() = default;

void CompiledProgram::add(const Function &F) {
  if (Fns.count(&F))
    return;
  Fns.emplace(&F, std::make_unique<CompiledFunction>(F, Load, Cfg));
  if (Cfg.Backend != SimBackend::Switch) {
    auto It = BCs.emplace(&F, bc::lower(F, Load, Cfg)).first;
    if (Cfg.Backend == SimBackend::Native)
      NCs.emplace(&F, native::compile(*It->second));
  }
  // Pull in everything reachable through calls so execution never compiles.
  for (const auto &BB : F)
    for (const auto &I : *BB)
      if (const auto *Call = dyn_cast<CallInst>(I.get()))
        add(*Call->getCallee());
}

const CompiledFunction *CompiledProgram::lookup(const Function &F) const {
  auto It = Fns.find(&F);
  return It == Fns.end() ? nullptr : It->second.get();
}

const bc::BytecodeFunction *
CompiledProgram::lookupBytecode(const Function &F) const {
  auto It = BCs.find(&F);
  return It == BCs.end() ? nullptr : It->second.get();
}

const native::NativeCode *
CompiledProgram::lookupNative(const Function &F) const {
  auto It = NCs.find(&F);
  return It == NCs.end() ? nullptr : It->second.get();
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(const MachineConfig &Cfg, Memory &Mem,
                         CacheHierarchy &Caches, const Loader &L,
                         const CompiledProgram *Shared)
    : Cfg(Cfg), View(Mem), Caches(&Caches), Load(L), Shared(Shared) {
  if (Cfg.Backend == SimBackend::Threaded)
    Threaded = std::make_unique<ThreadedInterpreter>(Cfg, Mem, &Caches, L,
                                                     Shared);
  else if (Cfg.Backend == SimBackend::Native)
    Native =
        std::make_unique<NativeInterpreter>(Cfg, Mem, &Caches, L, Shared);
}

Interpreter::Interpreter(const MachineConfig &Cfg, Memory &Mem,
                         const Loader &L, const CompiledProgram *Shared)
    : Cfg(Cfg), View(Mem), Caches(nullptr), Load(L), Shared(Shared) {
  if (Cfg.Backend == SimBackend::Threaded)
    Threaded = std::make_unique<ThreadedInterpreter>(Cfg, Mem, nullptr, L,
                                                     Shared);
  else if (Cfg.Backend == SimBackend::Native)
    Native =
        std::make_unique<NativeInterpreter>(Cfg, Mem, nullptr, L, Shared);
}

Interpreter::~Interpreter() = default;

void Interpreter::setLoadStats(LoadStatsMap *Stats) {
  LoadStats = Stats;
  if (Threaded)
    Threaded->setLoadStats(Stats);
  if (Native)
    Native->setLoadStats(Stats);
}

const CompiledFunction &Interpreter::getCompiled(const Function &F) {
  if (Shared)
    if (const CompiledFunction *CF = Shared->lookup(F))
      return *CF;
  auto It = Cache.find(&F);
  if (It == Cache.end())
    It = Cache.emplace(&F,
                       std::make_unique<CompiledFunction>(F, Load, Cfg))
             .first;
  return *It->second;
}

template <typename MemModel>
PhaseStats Interpreter::interpret(const CompiledFunction &CF,
                                  const std::vector<RuntimeValue> &Args,
                                  RuntimeValue *RetOut, MemModel &MM) {
  PhaseStats S;
  std::vector<RuntimeValue> Env(CF.numSlots());
  for (unsigned I = 0; I != Args.size(); ++I)
    Env[CF.argSlot(I)] = Args[I];

  auto Get = [&](const OperandRef &R) -> const RuntimeValue & {
    return R.IsImm ? R.Imm : Env[R.Slot];
  };

  int Block = 0;
  int PrevBlock = -1;
  std::vector<RuntimeValue> PhiTemp;

  while (Block >= 0) {
    const CompiledBlock &CB = CF.blocks()[static_cast<unsigned>(Block)];

    // Phis read their inputs simultaneously on entry.
    if (!CB.Phis.empty()) {
      PhiTemp.clear();
      for (const CompiledInstr &CI : CB.Phis) {
        bool Found = false;
        for (unsigned J = 0; J != CI.PhiPredIndex.size(); ++J)
          if (static_cast<int>(CI.PhiPredIndex[J]) == PrevBlock) {
            PhiTemp.push_back(Get(CI.Ops[J]));
            Found = true;
            break;
          }
        assert(Found && "phi has no entry for the incoming edge");
        if (!Found)
          PhiTemp.push_back(RuntimeValue());
        S.Instructions++;
      }
      for (unsigned J = 0; J != CB.Phis.size(); ++J)
        Env[static_cast<unsigned>(CB.Phis[J].DstSlot)] = PhiTemp[J];
    }

    int Next = -1;
    for (const CompiledInstr &CI : CB.Body) {
      ++S.Instructions;
      S.ComputeCycles += CI.Cycles;

      switch (CI.Op) {
      case SimOp::Add:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            Get(CI.Ops[0]).I + Get(CI.Ops[1]).I;
        break;
      case SimOp::Sub:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            Get(CI.Ops[0]).I - Get(CI.Ops[1]).I;
        break;
      case SimOp::Mul:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            Get(CI.Ops[0]).I * Get(CI.Ops[1]).I;
        break;
      case SimOp::SDiv: {
        std::int64_t R = Get(CI.Ops[1]).I;
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            R != 0 ? Get(CI.Ops[0]).I / R : 0;
        break;
      }
      case SimOp::SRem: {
        std::int64_t R = Get(CI.Ops[1]).I;
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            R != 0 ? Get(CI.Ops[0]).I % R : 0;
        break;
      }
      case SimOp::And:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            Get(CI.Ops[0]).I & Get(CI.Ops[1]).I;
        break;
      case SimOp::Or:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            Get(CI.Ops[0]).I | Get(CI.Ops[1]).I;
        break;
      case SimOp::Xor:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            Get(CI.Ops[0]).I ^ Get(CI.Ops[1]).I;
        break;
      case SimOp::Shl:
        Env[static_cast<unsigned>(CI.DstSlot)].I = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(Get(CI.Ops[0]).I)
            << (static_cast<std::uint64_t>(Get(CI.Ops[1]).I) & 63));
        break;
      case SimOp::AShr:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            Get(CI.Ops[0]).I >>
            (static_cast<std::uint64_t>(Get(CI.Ops[1]).I) & 63);
        break;
      case SimOp::FAdd:
        Env[static_cast<unsigned>(CI.DstSlot)].D =
            Get(CI.Ops[0]).D + Get(CI.Ops[1]).D;
        break;
      case SimOp::FSub:
        Env[static_cast<unsigned>(CI.DstSlot)].D =
            Get(CI.Ops[0]).D - Get(CI.Ops[1]).D;
        break;
      case SimOp::FMul:
        Env[static_cast<unsigned>(CI.DstSlot)].D =
            Get(CI.Ops[0]).D * Get(CI.Ops[1]).D;
        break;
      case SimOp::FDiv:
        Env[static_cast<unsigned>(CI.DstSlot)].D =
            Get(CI.Ops[0]).D / Get(CI.Ops[1]).D;
        break;
      case SimOp::CmpEQ:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).I == Get(CI.Ops[1]).I);
        break;
      case SimOp::CmpNE:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).I != Get(CI.Ops[1]).I);
        break;
      case SimOp::CmpSLT:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).I < Get(CI.Ops[1]).I);
        break;
      case SimOp::CmpSLE:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).I <= Get(CI.Ops[1]).I);
        break;
      case SimOp::CmpSGT:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).I > Get(CI.Ops[1]).I);
        break;
      case SimOp::CmpSGE:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).I >= Get(CI.Ops[1]).I);
        break;
      case SimOp::CmpFLT:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).D < Get(CI.Ops[1]).D);
        break;
      case SimOp::CmpFLE:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).D <= Get(CI.Ops[1]).D);
        break;
      case SimOp::CmpFGT:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).D > Get(CI.Ops[1]).D);
        break;
      case SimOp::CmpFGE:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).D >= Get(CI.Ops[1]).D);
        break;
      case SimOp::CmpFEQ:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).D == Get(CI.Ops[1]).D);
        break;
      case SimOp::CmpFNE:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            RuntimeValue::ofInt(Get(CI.Ops[0]).D != Get(CI.Ops[1]).D);
        break;
      case SimOp::Select:
        Env[static_cast<unsigned>(CI.DstSlot)] =
            Get(CI.Ops[0]).I != 0 ? Get(CI.Ops[1]) : Get(CI.Ops[2]);
        break;
      case SimOp::SIToFP:
        Env[static_cast<unsigned>(CI.DstSlot)].D =
            static_cast<double>(Get(CI.Ops[0]).I);
        break;
      case SimOp::FPToSI:
        Env[static_cast<unsigned>(CI.DstSlot)].I =
            static_cast<std::int64_t>(Get(CI.Ops[0]).D);
        break;
      case SimOp::PtrCast:
        Env[static_cast<unsigned>(CI.DstSlot)].I = Get(CI.Ops[0]).I;
        break;
      case SimOp::Gep: {
        std::int64_t Addr = Get(CI.Ops[0]).I;
        std::int64_t Linear = 0;
        for (unsigned J = 1; J != CI.Ops.size(); ++J)
          Linear =
              Linear * (J > 1 ? CI.GepDims[J - 1] : 1) + Get(CI.Ops[J]).I;
        Addr += Linear * CI.GepElemSize;
        Env[static_cast<unsigned>(CI.DstSlot)] = RuntimeValue::ofInt(Addr);
        break;
      }
      case SimOp::LoadI:
      case SimOp::LoadF: {
        std::uint64_t Addr = static_cast<std::uint64_t>(Get(CI.Ops[0]).I);
        ++S.Loads;
        MM.onLoad(S, Addr, CI.I);
        RuntimeValue Out;
        if (CI.Op == SimOp::LoadF)
          Out.D = View.loadF64(Addr);
        else
          Out.I = View.loadI64(Addr);
        Env[static_cast<unsigned>(CI.DstSlot)] = Out;
        break;
      }
      case SimOp::StoreI:
      case SimOp::StoreF: {
        std::uint64_t Addr = static_cast<std::uint64_t>(Get(CI.Ops[1]).I);
        const RuntimeValue &V = Get(CI.Ops[0]);
        ++S.Stores;
        MM.onStore(S, Addr);
        if (CI.Op == SimOp::StoreF)
          View.storeF64(Addr, V.D);
        else
          View.storeI64(Addr, V.I);
        break;
      }
      case SimOp::Prefetch: {
        std::uint64_t Addr = static_cast<std::uint64_t>(Get(CI.Ops[0]).I);
        ++S.Prefetches;
        MM.onPrefetch(S, Addr);
        break;
      }
      case SimOp::Br:
        Next = CI.BlockA;
        break;
      case SimOp::CondBr:
        Next = Get(CI.Ops[0]).I != 0 ? CI.BlockA : CI.BlockB;
        break;
      case SimOp::Ret:
        if (RetOut && !CI.Ops.empty())
          *RetOut = Get(CI.Ops[0]);
        Next = -1;
        break;
      case SimOp::Call: {
        std::vector<RuntimeValue> CallArgs;
        CallArgs.reserve(CI.Ops.size());
        for (const OperandRef &Op : CI.Ops)
          CallArgs.push_back(Get(Op));
        RuntimeValue Ret;
        PhaseStats Sub =
            interpret(getCompiled(*CI.Callee), CallArgs, &Ret, MM);
        S += Sub;
        if (CI.DstSlot >= 0)
          Env[static_cast<unsigned>(CI.DstSlot)] = Ret;
        break;
      }
      case SimOp::Phi:
        assert(false && "phi reached the dispatch loop");
        break;
      }

      if (isTerminatorOp(CI.Op))
        break;
    }
    PrevBlock = Block;
    Block = Next;
  }
  return S;
}

PhaseStats Interpreter::run(const Function &F, unsigned Core,
                            const std::vector<RuntimeValue> &Args,
                            RuntimeValue *RetOut) {
  if (Threaded)
    return Threaded->run(F, Core, Args, RetOut);
  if (Native)
    return Native->run(F, Core, Args, RetOut);
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");
  assert(Caches && "fused execution requires a cache hierarchy");
  FusedModel MM{*Caches, Cfg, Core, LoadStats};
  return interpret(getCompiled(F), Args, RetOut, MM);
}

PhaseStats Interpreter::runTraced(const Function &F,
                                  const std::vector<RuntimeValue> &Args,
                                  AccessTrace &Trace, RuntimeValue *RetOut) {
  if (Threaded)
    return Threaded->runTraced(F, Args, Trace, RetOut);
  if (Native)
    return Native->runTraced(F, Args, Trace, RetOut);
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");
  TracingModel MM{Trace};
  return interpret(getCompiled(F), Args, RetOut, MM);
}
