//===- sim/NativeCodegen.h - Bytecode -> native code lowering ---*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the register-allocated bytecode of sim/Bytecode.h once per function
/// to executable host code, the third execution backend
/// (MachineConfig::Backend == SimBackend::Native). Two lowering modes share
/// one ABI (native::NativeContext in sim/NativeExec.h):
///
///  * Jit — an x86-64 template JIT: per-opcode stencils assembled into an
///    mmap'd code buffer, made W^X (RW while emitting, RX before publishing).
///    The load/store sites are the point: trace emission is two raw stores
///    against a pre-reserved buffer with the capacity check hoisted to the
///    head of each straight-line region, and page translation is
///    strength-reduced to a tag compare + add against a register-cached
///    (page tag, host-minus-simulated delta) pair.
///  * Cemit — portable fallback: the same lowering emitted as a C source
///    file, compiled through $DAECC_NATIVE_CC (default "cc") into a shared
///    object and dlopen'd. Keeps the backend alive on non-x86-64 hosts and
///    under sanitizers (which cannot instrument raw JIT code).
///
/// Every function is lowered twice — a fused variant (cache callbacks at the
/// memory sites, costs applied to PhaseStats) and a tracing variant (inline
/// trace stores, costs accumulated locally) — so the untraced path carries
/// zero trace instructions and neither variant tests a mode flag.
///
/// compile() returns null for functions the lowerer rejects (unsupported
/// opcode, mmap/cc failure); the execution layer then falls back to the
/// threaded interpreter for that function — degraded speed, never degraded
/// correctness. Compiled code is immutable, self-contained except for the
/// NativeContext helpers, and shared read-only across threads; a process-wide
/// content-addressed cache dedupes identical bytecode across interpreters.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_NATIVECODEGEN_H
#define DAECC_SIM_NATIVECODEGEN_H

#include <cstddef>
#include <cstdint>
#include <memory>

namespace dae {
namespace sim {
namespace bc {
class BytecodeFunction;
} // namespace bc

namespace native {

struct NativeContext;

/// Entry point of one compiled variant: runs a full activation against the
/// context's current Frame/counters and returns at Ret/RetVal.
using EntryFn = void (*)(NativeContext *);

/// Lowering mode selection.
enum class Mode : std::uint8_t {
  /// Pick per host: Jit on x86-64 without address/thread sanitizers, Cemit
  /// elsewhere. Overridable via DAECC_NATIVE_MODE={jit,cemit,auto}.
  Auto,
  Jit,
  Cemit,
};

struct Options {
  Mode LowerMode = Mode::Auto;
  /// Testing hook: abort (after a diagnostic) instead of returning null when
  /// a function contains an opcode the lowerer does not support. The death
  /// test pins that rejection is loud under the hook and graceful without.
  bool AbortOnUnsupported = false;
};

/// One function's executable native code: the fused and tracing entry points
/// plus the backing storage (an mmap'd W^X buffer or a dlopen'd shared
/// object). Immutable and safe to execute concurrently from any thread.
class NativeCode {
public:
  virtual ~NativeCode();
  NativeCode(const NativeCode &) = delete;
  NativeCode &operator=(const NativeCode &) = delete;

  EntryFn fused() const { return Fused; }
  EntryFn traced() const { return Traced; }

  /// True when backed by the x86-64 JIT (vs. a compiled-C shared object).
  bool isJit() const { return Jit; }
  /// Base/size of the executable region (W^X tests; null/0 for Cemit).
  const std::uint8_t *codeAddr() const { return CodeAddr; }
  std::size_t codeSize() const { return CodeSize; }

protected:
  NativeCode() = default;
  EntryFn Fused = nullptr;
  EntryFn Traced = nullptr;
  bool Jit = false;
  const std::uint8_t *CodeAddr = nullptr;
  std::size_t CodeSize = 0;
};

/// Lowers \p BF to native code, or returns null when the function cannot be
/// lowered (unsupported opcode, host without a usable mode, cc/mmap failure)
/// — callers must then execute \p BF through the threaded interpreter.
/// Results are served from a process-wide content-addressed cache, so
/// compiling the same bytecode from many interpreters costs one lowering.
/// Thread safe.
std::shared_ptr<const NativeCode> compile(const bc::BytecodeFunction &BF,
                                          const Options &Opts = Options());

/// The mode Auto resolves to on this host ("jit" or "cemit"), after
/// DAECC_NATIVE_MODE; for logs and tests.
const char *activeModeName();

/// Counters for the process-wide compiled-code cache. Retention is bounded
/// the same way as dae::GenerationMemo and sim::TracePool: entries are
/// charged their executable size (a nominal page for Cemit objects, whose
/// code lives in a dlopen'd .so the loader sizes) against a retained-bytes
/// cap, default 256 MiB, overridable via DAECC_NATIVE_CACHE_MB (garbage is
/// a hard error, exit 2). Least-recently-used entries are evicted at the
/// cap; in-flight executions keep their code alive through the shared_ptr,
/// so eviction only ever costs a future recompile. Cached failures (null)
/// are charged zero bytes and never evicted — retrying a persistent cc/mmap
/// failure per request would hammer the toolchain.
struct CacheStats {
  std::uint64_t Entries = 0;
  std::uint64_t RetainedBytes = 0;
  std::uint64_t Evictions = 0;
};
CacheStats cacheStats();

/// Testing hook: overrides the cache's retained-bytes cap process-wide and
/// returns the previous cap. Pass the returned value back to restore.
std::size_t setCacheCapBytesForTest(std::size_t Bytes);

} // namespace native
} // namespace sim
} // namespace dae

#endif // DAECC_SIM_NATIVECODEGEN_H
