//===- sim/ExecModels.h - Memory-effect models for execution ----*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two memory-effect models both functional backends are templated over:
///
///  * FusedModel — classic inline cache simulation: every load/store/prefetch
///    goes through the CacheHierarchy and timing lands directly in the
///    PhaseStats being built. Timing statements mirror the original
///    pre-split interpreter exactly (same FP addend order), so profiles stay
///    bit-identical across backends.
///  * TracingModel — the host-parallel engine's functional mode: accesses are
///    recorded into an AccessTrace; hit levels and timing are added later by
///    the runtime's single-threaded replay in schedule order.
///
/// Each backend instantiates its dispatch loop once per model (two template
/// instantiations), keeping the tracing/non-tracing decision entirely out of
/// the per-instruction hot path.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_EXECMODELS_H
#define DAECC_SIM_EXECMODELS_H

#include "sim/AccessTrace.h"
#include "sim/CacheSim.h"
#include "sim/Interpreter.h"
#include "sim/MachineConfig.h"
#include "sim/PhaseStats.h"

namespace dae {
namespace sim {

/// Fused mode: the classic inline cache simulation. Timing statements mirror
/// the pre-split interpreter exactly.
struct FusedModel {
  /// The callbacks add hit cycles / stalls into the PhaseStats as they fire,
  /// interleaved with the instruction-cost additions — the dispatch loop must
  /// keep ComputeCycles in the struct so the FP addend order stays exactly
  /// the reference's.
  static constexpr bool MutatesStats = true;

  CacheHierarchy &Caches;
  const MachineConfig &Cfg;
  unsigned Core;
  LoadStatsMap *LoadStats;

  void onLoad(PhaseStats &S, std::uint64_t Addr, const ir::Instruction *I) {
    LoadSiteStats *Site = nullptr;
    if (LoadStats) {
      Site = &(*LoadStats)[I];
      ++Site->Count;
    }
    switch (Caches.access(Core, Addr)) {
    case HitLevel::L1:
      ++S.L1Hits;
      S.ComputeCycles += Cfg.L1HitCycles;
      break;
    case HitLevel::L2:
      ++S.L2Hits;
      S.ComputeCycles += Cfg.L2HitCycles;
      break;
    case HitLevel::LLC:
      ++S.LLCHits;
      S.ComputeCycles += Cfg.LLCHitCycles;
      break;
    case HitLevel::Memory:
      ++S.MemAccesses;
      S.StallNs += Cfg.MemLatencyNs / Cfg.LoadMlp;
      if (Site)
        ++Site->Misses;
      break;
    }
  }

  void onStore(PhaseStats &S, std::uint64_t Addr) {
    switch (Caches.access(Core, Addr)) {
    case HitLevel::L1:
      ++S.L1Hits;
      break;
    case HitLevel::L2:
      ++S.L2Hits;
      S.ComputeCycles += Cfg.L2HitCycles * 0.5;
      break;
    case HitLevel::LLC:
      ++S.LLCHits;
      S.ComputeCycles += Cfg.LLCHitCycles * 0.5;
      break;
    case HitLevel::Memory:
      ++S.MemAccesses;
      S.StallNs += Cfg.MemLatencyNs / Cfg.StoreMlp;
      break;
    }
  }

  void onPrefetch(PhaseStats &S, std::uint64_t Addr) {
    // Non-binding: warms the hierarchy, never stalls retirement, but is
    // throughput-limited by the outstanding-miss capacity.
    switch (Caches.access(Core, Addr)) {
    case HitLevel::L1:
    case HitLevel::L2:
      break;
    case HitLevel::LLC:
      S.StallNs += Cfg.LLCHitCycles / Cfg.fmax() / Cfg.PrefetchMlp;
      break;
    case HitLevel::Memory:
      ++S.MemAccesses;
      S.StallNs += Cfg.MemLatencyNs / Cfg.PrefetchMlp;
      break;
    }
  }
};

/// Tracing mode: record the access stream; the runtime's replay supplies hit
/// levels and timing later, in schedule order.
struct TracingModel {
  /// Never touches the PhaseStats: the dispatch loop is free to keep all
  /// counters (ComputeCycles included) in register-resident locals and flush
  /// them once at function exit — the accumulation order of each counter is
  /// unchanged, so the result is still bit-identical.
  static constexpr bool MutatesStats = false;

  AccessTrace &Trace;

  void onLoad(PhaseStats &, std::uint64_t Addr, const ir::Instruction *) {
    Trace.push(AccessTrace::Kind::Load, Addr);
  }
  void onStore(PhaseStats &, std::uint64_t Addr) {
    Trace.push(AccessTrace::Kind::Store, Addr);
  }
  void onPrefetch(PhaseStats &, std::uint64_t Addr) {
    Trace.push(AccessTrace::Kind::Prefetch, Addr);
  }
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_EXECMODELS_H
