//===- sim/NativeExec.h - Native-code execution backend ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution backend (MachineConfig::Backend == SimBackend::
/// Native): runs functions lowered by sim/NativeCodegen.h to executable host
/// code. NativeInterpreter mirrors ThreadedInterpreter's contract exactly —
/// same PhaseStats (FP addend order included), AccessTraces, memory images,
/// return values and per-site load statistics — verified by
/// tests/sim/BackendDifferentialTest.cpp across all three backends.
///
/// NativeContext is the ABI between generated code (JIT stencils or emitted
/// C) and the C++ runtime: a fixed-layout struct holding the current
/// activation's register file, the register-resident counters, the inlined
/// trace write cursor, the (page tag, pointer delta) translation cache, and
/// the helper entry points generated code calls for the slow paths
/// (translation miss, trace growth, calls, fused cache callbacks). All
/// fields are 8-byte scalars at fixed offsets asserted below; the x86-64
/// emitter addresses them as [ctx + offset] and the C emitter re-declares
/// the same layout in the generated source.
///
/// Functions the native lowerer rejects (see NativeCodegen.h) are executed
/// by an embedded ThreadedInterpreter instead — per function, including
/// callees reached from native code mid-trace — so a partially compilable
/// program still runs, bit-identically, never miscompiled.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_NATIVEEXEC_H
#define DAECC_SIM_NATIVEEXEC_H

#include "sim/Bytecode.h"
#include "sim/Interpreter.h"
#include "sim/ThreadedInterpreter.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace dae {
namespace sim {

class NativeInterpreter;

namespace native {

class NativeCode;

/// The ABI struct shared by JIT'd code, emitted C, and the C++ helpers.
/// Canonical-at-boundaries rule: generated code may cache any field in a
/// host register between helper calls, but must write the cached values
/// back before every helper call and read them back afterwards — helpers
/// treat the struct as the single source of truth.
struct NativeContext {
  RuntimeValue *Frame = nullptr;    ///< Current activation's register file.
  std::uint64_t NInstr = 0;         ///< Shared order-independent counters...
  std::uint64_t NLoads = 0;         ///< ...flushed into PhaseStats once at
  std::uint64_t NStores = 0;        ///< the top-level exit (all activations
  std::uint64_t NPrefetches = 0;    ///< accumulate into the same cells).
  double Cycles = 0.0;              ///< Tracing-mode ComputeCycles protocol:
                                    ///< caller's partial sum across a call,
                                    ///< merged total after it (see
                                    ///< NativeExec.cpp, nativeCall).
  std::uint64_t *TracePtr = nullptr; ///< Next trace event write slot.
  std::uint64_t *TraceEnd = nullptr; ///< One past the reserved trace storage.
  std::uint64_t LastPageTag = ~0ull; ///< Addr & ~(PageSize-1) of the cached
                                     ///< page; ~0 = invalid.
  std::int64_t LastDelta = 0;       ///< Host pointer minus simulated address
                                    ///< for the cached page (host = addr +
                                    ///< delta).
  PhaseStats *Stats = nullptr;      ///< Fused mode: current activation's
                                    ///< stats (costs + cache callbacks).
  RuntimeValue Ret;                 ///< Return-value slot (RetVal opcode).
  std::uint64_t RetValid = 0;       ///< 1 iff the activation ended in RetVal.
  NativeInterpreter *Self = nullptr;
  // Helper entry points, called by generated code as fn(ctx, args...).
  std::uint8_t *(*Translate)(NativeContext *, std::uint64_t Addr) = nullptr;
  void (*TraceGrow)(NativeContext *, std::uint64_t Needed) = nullptr;
  void (*Call)(NativeContext *, const bc::CallDesc *D,
               std::uint32_t DstReg) = nullptr;
  void (*FusedLoad)(NativeContext *, std::uint64_t Addr,
                    const ir::Instruction *Origin) = nullptr;
  void (*FusedStore)(NativeContext *, std::uint64_t Addr) = nullptr;
  void (*FusedPrefetch)(NativeContext *, std::uint64_t Addr) = nullptr;
  std::uint64_t Fused = 0;          ///< 1 in fused mode (Call helper reads it).
};

// The x86-64 emitter bakes these offsets into [ctx + disp] addressing; keep
// them in lockstep with the struct (any drift is a compile-time error here,
// not a silent miscompile there).
static_assert(offsetof(NativeContext, Frame) == 0, "ABI layout");
static_assert(offsetof(NativeContext, NInstr) == 8, "ABI layout");
static_assert(offsetof(NativeContext, NLoads) == 16, "ABI layout");
static_assert(offsetof(NativeContext, NStores) == 24, "ABI layout");
static_assert(offsetof(NativeContext, NPrefetches) == 32, "ABI layout");
static_assert(offsetof(NativeContext, Cycles) == 40, "ABI layout");
static_assert(offsetof(NativeContext, TracePtr) == 48, "ABI layout");
static_assert(offsetof(NativeContext, TraceEnd) == 56, "ABI layout");
static_assert(offsetof(NativeContext, LastPageTag) == 64, "ABI layout");
static_assert(offsetof(NativeContext, LastDelta) == 72, "ABI layout");
static_assert(offsetof(NativeContext, Stats) == 80, "ABI layout");
static_assert(offsetof(NativeContext, Ret) == 88, "ABI layout");
static_assert(offsetof(NativeContext, RetValid) == 104, "ABI layout");
static_assert(offsetof(NativeContext, Self) == 112, "ABI layout");
static_assert(offsetof(NativeContext, Translate) == 120, "ABI layout");
static_assert(offsetof(NativeContext, TraceGrow) == 128, "ABI layout");
static_assert(offsetof(NativeContext, Call) == 136, "ABI layout");
static_assert(offsetof(NativeContext, FusedLoad) == 144, "ABI layout");
static_assert(offsetof(NativeContext, FusedStore) == 152, "ABI layout");
static_assert(offsetof(NativeContext, FusedPrefetch) == 160, "ABI layout");
static_assert(offsetof(NativeContext, Fused) == 168, "ABI layout");

} // namespace native

/// Executes functions compiled to native code on a simulated core. One
/// instance per worker thread; compiled code is shared read-only through the
/// CompiledProgram (with a lazy per-interpreter fallback), mirroring the
/// other backends.
class NativeInterpreter {
public:
  /// \p Caches may be null for tracing-only use (runTraced).
  NativeInterpreter(const MachineConfig &Cfg, Memory &Mem,
                    CacheHierarchy *Caches, const Loader &L,
                    const CompiledProgram *Shared);
  ~NativeInterpreter();

  /// Fused mode: identical contract to Interpreter::run.
  PhaseStats run(const ir::Function &F, unsigned Core,
                 const std::vector<RuntimeValue> &Args,
                 RuntimeValue *RetOut = nullptr);

  /// Tracing mode: identical contract to Interpreter::runTraced.
  PhaseStats runTraced(const ir::Function &F,
                       const std::vector<RuntimeValue> &Args,
                       AccessTrace &Trace, RuntimeValue *RetOut = nullptr);

  void setLoadStats(LoadStatsMap *Stats) {
    LoadStats = Stats;
    Fallback.setLoadStats(Stats);
  }

private:
  friend struct NativeHelpers; ///< The extern-"C"-style helper shims.

  /// One function's executable forms: the bytecode (always present; compile
  /// input and threaded-fallback form) plus the native code (null when the
  /// lowerer rejected the function).
  struct FnEntry {
    const bc::BytecodeFunction *BC = nullptr;
    const native::NativeCode *Code = nullptr;
  };

  FnEntry getFn(const ir::Function &F);

  /// Carves a frame, copies args + const pool, and invokes \p Entry with the
  /// context set up for a fresh activation.
  void invoke(const bc::BytecodeFunction &BF, const native::NativeCode &Code,
              bool Fused, const RuntimeValue *Args, std::size_t NArgs);

  /// The Call-helper body: runs a callee (native or threaded fallback) from
  /// inside generated code and merges its stats exactly like the threaded
  /// backend's Call handler.
  void nativeCall(const bc::CallDesc &D, std::uint32_t DstReg);

  std::uint8_t *translateSlow(std::uint64_t Addr);
  void traceGrow(std::uint64_t Needed);

  native::NativeContext Ctx;
  /// Register-file arena shared by all activations (same discipline as
  /// ThreadedInterpreter::Frame; writes stay within size()).
  std::vector<RuntimeValue> Arena;
  std::size_t FrameTop = 0;

  /// Page-pointer cache backing the translation helper (pointers are stable
  /// for the Memory's lifetime; see sim/Memory.h).
  std::unordered_map<std::uint64_t, std::uint8_t *> PagePtrs;

  /// One-entry memo in front of the Shared/local lookups (tasks run the same
  /// function back to back).
  const ir::Function *LastFn = nullptr;
  FnEntry LastEntry;

  LoadStatsMap *LoadStats = nullptr;
  const MachineConfig &Cfg;
  Memory &Mem;
  CacheHierarchy *Caches;
  const Loader &Load;
  const CompiledProgram *Shared;
  /// Executes functions without native code; also the source of bytecode
  /// semantics for mid-trace callee fallback.
  ThreadedInterpreter Fallback;
  /// Lazy per-interpreter lowering/compilation for functions outside the
  /// shared program.
  std::unordered_map<const ir::Function *,
                     std::unique_ptr<bc::BytecodeFunction>>
      LocalBC;
  std::unordered_map<const ir::Function *,
                     std::shared_ptr<const native::NativeCode>>
      LocalCode;

  AccessTrace *CurTrace = nullptr;
  unsigned CurCore = 0;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_NATIVEEXEC_H
