//===- sim/Bytecode.cpp - Lowering to register-allocated bytecode ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Bytecode.h"

#include "ir/Function.h"
#include "ir/Module.h"
#include "sim/SimOps.h"
#include "support/Casting.h"

#include <cassert>
#include <cstring>
#include <map>
#include <set>
#include <utility>

using namespace dae;
using namespace dae::ir;
using namespace dae::sim;
using namespace dae::sim::bc;

const char *dae::sim::bc::opcodeName(Opcode Op) {
  switch (Op) {
#define DAECC_BC_NAME(Name)                                                    \
  case Opcode::Name:                                                           \
    return #Name;
    DAECC_BC_OPCODES(DAECC_BC_NAME)
#undef DAECC_BC_NAME
  }
  reportUnknownOpcode("opcodeName", static_cast<int>(Op));
}

namespace {

/// One pending move of an edge's parallel phi copy.
struct PhiCopy {
  std::uint32_t Dst = 0;
  std::uint32_t Src = 0;
};

class Lowerer {
public:
  Lowerer(const Function &F, const Loader &L, const MachineConfig &Cfg)
      : F(F), L(L), Cfg(Cfg), BF(std::make_unique<BytecodeFunction>()) {}

  std::unique_ptr<BytecodeFunction> run();

private:
  const Function &F;
  const Loader &L;
  const MachineConfig &Cfg;
  std::unique_ptr<BytecodeFunction> BF;

  std::map<const BasicBlock *, unsigned> BlockIndex;
  std::vector<std::vector<const Instruction *>> Phis;  // Per block.
  std::vector<std::vector<const Instruction *>> Body;  // Per block, no phis.
  std::vector<std::uint32_t> BodyPC;                   // Per block.

  std::map<const Value *, std::uint32_t> ValueReg;
  std::uint32_t NextReg = 0;

  /// Dedup key: the exact RuntimeValue bit pattern.
  std::map<std::pair<std::int64_t, std::uint64_t>, std::uint32_t> ConstIndex;

  /// Branch-target fixups: which field of which instruction jumps along
  /// which CFG edge. Resolved after trampolines are laid out.
  enum class Field { A, B, C, Aux };
  struct Patch {
    std::size_t Idx;
    Field F;
    unsigned Pred, Succ;
  };
  std::vector<Patch> Patches;
  std::set<std::pair<unsigned, unsigned>> PhiEdges;
  std::map<std::pair<unsigned, unsigned>, std::uint32_t> TrampPC;

  void emit(Instr In) { BF->Code.push_back(In); }
  void branchTo(Field Fld, unsigned Pred, unsigned Succ) {
    Patches.push_back({BF->Code.size() - 1, Fld, Pred, Succ});
    if (!Phis[Succ].empty())
      PhiEdges.insert({Pred, Succ});
  }

  static bool constValue(const Loader &L, const Value *V, RuntimeValue &Out) {
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      Out = RuntimeValue::ofInt(CI->getValue());
      return true;
    }
    if (const auto *CF = dyn_cast<ConstantFloat>(V)) {
      Out = RuntimeValue::ofFloat(CF->getValue());
      return true;
    }
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      Out = RuntimeValue::ofInt(static_cast<std::int64_t>(L.baseOf(G)));
      return true;
    }
    return false;
  }
  bool constValue(const Value *V, RuntimeValue &Out) const {
    return constValue(L, V, Out);
  }

  std::uint32_t constReg(const RuntimeValue &V) {
    std::uint64_t DBits;
    static_assert(sizeof(DBits) == sizeof(V.D), "double must be 64-bit");
    std::memcpy(&DBits, &V.D, sizeof(DBits));
    auto [It, Inserted] = ConstIndex.try_emplace({V.I, DBits}, NextReg);
    if (Inserted) {
      ++NextReg;
      BF->ConstPool.push_back(V);
    }
    return It->second;
  }

  std::uint32_t regOf(const Value *V) {
    RuntimeValue K;
    if (constValue(V, K))
      return constReg(K);
    auto It = ValueReg.find(V);
    assert(It != ValueReg.end() && "operand without a register");
    return It->second;
  }

  void lowerOne(const Instruction *I, unsigned BlockNo);
  bool tryFuseCmpBr(const Instruction *I, const Instruction *Next,
                    unsigned BlockNo);
  bool tryFuseLoadBin(const Instruction *I, const Instruction *Next);
  void lowerBinary(const BinaryInst *Bin);
  void lowerCmp(const CmpInst *Cmp);
  void lowerGep(const GepInst *Gep);
  void emitTrampoline(unsigned Pred, unsigned Succ);
};

std::unique_ptr<BytecodeFunction> Lowerer::run() {
  unsigned NumBlocks = 0;
  for (const auto &BB : F)
    BlockIndex[BB.get()] = NumBlocks++;
  Phis.resize(NumBlocks);
  Body.resize(NumBlocks);
  BodyPC.resize(NumBlocks);

  // Registers: args first (reg i == arg i, relied on by the entry prologue),
  // then one per non-void instruction; constants and phi scratch follow.
  for (const auto &A : F.args())
    ValueReg[A.get()] = NextReg++;
  BF->NumArgs = NextReg;
  unsigned B = 0;
  for (const auto &BB : F) {
    for (const auto &I : *BB) {
      if (I->getType() != Type::Void)
        ValueReg[I.get()] = NextReg++;
      if (isa<PhiInst>(I.get()))
        Phis[B].push_back(I.get());
      else
        Body[B].push_back(I.get());
    }
    ++B;
  }

  // Constant-pool registers are handed out on demand during body lowering,
  // directly after the value registers; trampoline scratch registers follow
  // the pool, so the pool range starts exactly here.
  BF->ConstBase = NextReg;

  for (unsigned Blk = 0; Blk != NumBlocks; ++Blk) {
    BodyPC[Blk] = static_cast<std::uint32_t>(BF->Code.size());
    const auto &Insts = Body[Blk];
    for (std::size_t Pos = 0; Pos != Insts.size(); ++Pos) {
      const Instruction *I = Insts[Pos];
      const Instruction *Next =
          Pos + 1 != Insts.size() ? Insts[Pos + 1] : nullptr;
      if (Next && (tryFuseCmpBr(I, Next, Blk) || tryFuseLoadBin(I, Next))) {
        ++Pos;
        continue;
      }
      lowerOne(I, Blk);
    }
  }

  // All body PCs are known; lay out one trampoline per phi-carrying edge.
  for (const auto &[Pred, Succ] : PhiEdges)
    emitTrampoline(Pred, Succ);

  for (const Patch &P : Patches) {
    std::uint32_t T = !Phis[P.Succ].empty() ? TrampPC.at({P.Pred, P.Succ})
                                            : BodyPC[P.Succ];
    Instr &In = BF->Code[P.Idx];
    switch (P.F) {
    case Field::A:
      In.A = T;
      break;
    case Field::B:
      In.B = T;
      break;
    case Field::C:
      In.C = T;
      break;
    case Field::Aux:
      In.Aux = T;
      break;
    }
  }

  BF->NumRegs = NextReg;
  return std::move(BF);
}

/// Integer cmp directly feeding the block's conditional branch fuses into one
/// compare-and-branch superinstruction. The cmp's register is still written
/// (its value may have other users), and both IR instructions keep their own
/// Instructions bump and ComputeCycles addend, in order.
bool Lowerer::tryFuseCmpBr(const Instruction *I, const Instruction *Next,
                           unsigned BlockNo) {
  const auto *Cmp = dyn_cast<CmpInst>(I);
  const auto *Br = dyn_cast<BrInst>(Next);
  if (!Cmp || !Br || !Br->isConditional() || Br->getCondition() != Cmp)
    return false;

  Opcode Reg, ImmOp;
  switch (Cmp->getPredicate()) {
  case CmpPred::EQ:
    Reg = Opcode::BrCmpEQ;
    ImmOp = Opcode::BrCmpEQImm;
    break;
  case CmpPred::NE:
    Reg = Opcode::BrCmpNE;
    ImmOp = Opcode::BrCmpNEImm;
    break;
  case CmpPred::SLT:
    Reg = Opcode::BrCmpSLT;
    ImmOp = Opcode::BrCmpSLTImm;
    break;
  case CmpPred::SLE:
    Reg = Opcode::BrCmpSLE;
    ImmOp = Opcode::BrCmpSLEImm;
    break;
  case CmpPred::SGT:
    Reg = Opcode::BrCmpSGT;
    ImmOp = Opcode::BrCmpSGTImm;
    break;
  case CmpPred::SGE:
    Reg = Opcode::BrCmpSGE;
    ImmOp = Opcode::BrCmpSGEImm;
    break;
  default:
    return false; // FP predicates stay unfused.
  }

  Instr In;
  In.Dst = ValueReg.at(Cmp);
  In.A = regOf(Cmp->getLHS());
  In.Cost = instCycles(*Cmp, Cfg);
  In.CostB = instCycles(*Next, Cfg);
  RuntimeValue K;
  if (constValue(Cmp->getRHS(), K)) {
    In.Op = ImmOp;
    In.Imm = K;
  } else {
    In.Op = Reg;
    In.B = regOf(Cmp->getRHS());
  }
  emit(In);
  branchTo(Field::C, BlockNo, BlockIndex.at(Br->getTrueDest()));
  branchTo(Field::Aux, BlockNo, BlockIndex.at(Br->getFalseDest()));
  return true;
}

/// Load whose value directly feeds the next instruction's binop fuses into a
/// load+op superinstruction. The loaded value is written to its own register
/// (Aux) before the binop's operands are read, so "binop of the load with
/// itself / with an older value of the same slot" behaves exactly like the
/// unfused sequence.
bool Lowerer::tryFuseLoadBin(const Instruction *I, const Instruction *Next) {
  const auto *Load = dyn_cast<LoadInst>(I);
  const auto *Bin = dyn_cast<BinaryInst>(Next);
  if (!Load || !Bin || (Bin->getLHS() != Load && Bin->getRHS() != Load))
    return false;

  Opcode Op;
  if (Load->getType() == Type::Float64) {
    switch (Bin->getOpcode()) {
    case BinOp::FAdd:
      Op = Opcode::LoadFAddF;
      break;
    case BinOp::FSub:
      Op = Opcode::LoadFSubF;
      break;
    case BinOp::FMul:
      Op = Opcode::LoadFMulF;
      break;
    default:
      return false;
    }
  } else {
    if (Bin->getOpcode() != BinOp::Add)
      return false;
    Op = Opcode::LoadIAddI;
  }

  Instr In;
  In.Op = Op;
  In.Dst = ValueReg.at(Bin);
  In.A = regOf(Load->getPointer());
  In.Aux = ValueReg.at(Load);
  In.B = regOf(Bin->getLHS());
  In.C = regOf(Bin->getRHS());
  In.Cost = instCycles(*Load, Cfg);
  In.CostB = instCycles(*Bin, Cfg);
  In.Origin = Load;
  emit(In);
  return true;
}

void Lowerer::lowerBinary(const BinaryInst *Bin) {
  Instr In;
  In.Dst = ValueReg.at(Bin);
  In.Cost = instCycles(*Bin, Cfg);

  RuntimeValue RK, LK;
  bool RConst = constValue(Bin->getRHS(), RK);
  bool LConst = constValue(Bin->getLHS(), LK);
  BinOp O = Bin->getOpcode();

  auto EmitImm = [&](Opcode Op, std::uint32_t SrcReg, RuntimeValue Imm) {
    In.Op = Op;
    In.A = SrcReg;
    In.Imm = Imm;
    emit(In);
  };
  auto MaskShift = [](RuntimeValue K) {
    K.I = static_cast<std::int64_t>(static_cast<std::uint64_t>(K.I) & 63);
    return K;
  };

  if (RConst) {
    switch (O) {
    case BinOp::Add:
      return EmitImm(Opcode::AddImm, regOf(Bin->getLHS()), RK);
    case BinOp::Sub:
      return EmitImm(Opcode::SubImm, regOf(Bin->getLHS()), RK);
    case BinOp::Mul:
      return EmitImm(Opcode::MulImm, regOf(Bin->getLHS()), RK);
    case BinOp::Shl:
      return EmitImm(Opcode::ShlImm, regOf(Bin->getLHS()), MaskShift(RK));
    case BinOp::AShr:
      return EmitImm(Opcode::AShrImm, regOf(Bin->getLHS()), MaskShift(RK));
    case BinOp::FAdd:
      return EmitImm(Opcode::FAddImm, regOf(Bin->getLHS()), RK);
    case BinOp::FSub:
      return EmitImm(Opcode::FSubImm, regOf(Bin->getLHS()), RK);
    case BinOp::FMul:
      return EmitImm(Opcode::FMulImm, regOf(Bin->getLHS()), RK);
    case BinOp::FDiv:
      return EmitImm(Opcode::FDivImm, regOf(Bin->getLHS()), RK);
    default:
      break; // Div/rem/bitwise keep the reg-reg form (const pool operand).
    }
  } else if (LConst) {
    // Integer Add/Mul are exactly commutative, so a constant LHS swaps into
    // the immediate slot. FP operand order is preserved (NaN propagation),
    // and non-commutative ops fall through to the reg-reg form.
    switch (O) {
    case BinOp::Add:
      return EmitImm(Opcode::AddImm, regOf(Bin->getRHS()), LK);
    case BinOp::Mul:
      return EmitImm(Opcode::MulImm, regOf(Bin->getRHS()), LK);
    default:
      break;
    }
  }

  switch (O) {
  case BinOp::Add:
    In.Op = Opcode::Add;
    break;
  case BinOp::Sub:
    In.Op = Opcode::Sub;
    break;
  case BinOp::Mul:
    In.Op = Opcode::Mul;
    break;
  case BinOp::SDiv:
    In.Op = Opcode::SDiv;
    break;
  case BinOp::SRem:
    In.Op = Opcode::SRem;
    break;
  case BinOp::And:
    In.Op = Opcode::And;
    break;
  case BinOp::Or:
    In.Op = Opcode::Or;
    break;
  case BinOp::Xor:
    In.Op = Opcode::Xor;
    break;
  case BinOp::Shl:
    In.Op = Opcode::Shl;
    break;
  case BinOp::AShr:
    In.Op = Opcode::AShr;
    break;
  case BinOp::FAdd:
    In.Op = Opcode::FAdd;
    break;
  case BinOp::FSub:
    In.Op = Opcode::FSub;
    break;
  case BinOp::FMul:
    In.Op = Opcode::FMul;
    break;
  case BinOp::FDiv:
    In.Op = Opcode::FDiv;
    break;
  }
  In.A = regOf(Bin->getLHS());
  In.B = regOf(Bin->getRHS());
  emit(In);
}

void Lowerer::lowerCmp(const CmpInst *Cmp) {
  Instr In;
  In.Dst = ValueReg.at(Cmp);
  In.Cost = instCycles(*Cmp, Cfg);

  RuntimeValue RK;
  if (constValue(Cmp->getRHS(), RK)) {
    Opcode ImmOp;
    switch (Cmp->getPredicate()) {
    case CmpPred::EQ:
      ImmOp = Opcode::CmpEQImm;
      break;
    case CmpPred::NE:
      ImmOp = Opcode::CmpNEImm;
      break;
    case CmpPred::SLT:
      ImmOp = Opcode::CmpSLTImm;
      break;
    case CmpPred::SLE:
      ImmOp = Opcode::CmpSLEImm;
      break;
    case CmpPred::SGT:
      ImmOp = Opcode::CmpSGTImm;
      break;
    case CmpPred::SGE:
      ImmOp = Opcode::CmpSGEImm;
      break;
    default:
      ImmOp = Opcode::Trap; // FP predicates: reg-reg form below.
      break;
    }
    if (ImmOp != Opcode::Trap) {
      In.Op = ImmOp;
      In.A = regOf(Cmp->getLHS());
      In.Imm = RK;
      emit(In);
      return;
    }
  }

  switch (Cmp->getPredicate()) {
  case CmpPred::EQ:
    In.Op = Opcode::CmpEQ;
    break;
  case CmpPred::NE:
    In.Op = Opcode::CmpNE;
    break;
  case CmpPred::SLT:
    In.Op = Opcode::CmpSLT;
    break;
  case CmpPred::SLE:
    In.Op = Opcode::CmpSLE;
    break;
  case CmpPred::SGT:
    In.Op = Opcode::CmpSGT;
    break;
  case CmpPred::SGE:
    In.Op = Opcode::CmpSGE;
    break;
  case CmpPred::FLT:
    In.Op = Opcode::CmpFLT;
    break;
  case CmpPred::FLE:
    In.Op = Opcode::CmpFLE;
    break;
  case CmpPred::FGT:
    In.Op = Opcode::CmpFGT;
    break;
  case CmpPred::FGE:
    In.Op = Opcode::CmpFGE;
    break;
  case CmpPred::FEQ:
    In.Op = Opcode::CmpFEQ;
    break;
  case CmpPred::FNE:
    In.Op = Opcode::CmpFNE;
    break;
  }
  In.A = regOf(Cmp->getLHS());
  In.B = regOf(Cmp->getRHS());
  emit(In);
}

void Lowerer::lowerGep(const GepInst *Gep) {
  Instr In;
  In.Dst = ValueReg.at(Gep);
  In.Cost = instCycles(*Gep, Cfg);
  std::int64_t Elem = Gep->getElemSize();

  if (Gep->getNumIndices() == 1) {
    RuntimeValue BaseK, IdxK;
    bool BaseConst = constValue(Gep->getBase(), BaseK);
    if (constValue(Gep->getIndex(0), IdxK)) {
      // Constant index: the offset (or the whole address) folds away.
      std::int64_t Off = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(IdxK.I) *
          static_cast<std::uint64_t>(Elem));
      if (BaseConst) {
        In.Op = Opcode::MovImm;
        In.Imm = RuntimeValue::ofInt(BaseK.I + Off);
      } else {
        In.Op = Opcode::GepAddImm;
        In.A = regOf(Gep->getBase());
        In.Imm = RuntimeValue::ofInt(Off);
      }
      emit(In);
      return;
    }
    In.A = regOf(Gep->getBase());
    In.B = regOf(Gep->getIndex(0));
    if ((Elem & (Elem - 1)) == 0) {
      // Power-of-two element size: add+shl address math.
      std::int64_t Shift = 0;
      while ((std::int64_t(1) << Shift) < Elem)
        ++Shift;
      In.Op = Opcode::Gep1Shl;
      In.Imm = RuntimeValue::ofInt(Shift);
    } else {
      In.Op = Opcode::GepMul;
      In.Imm = RuntimeValue::ofInt(Elem);
    }
    emit(In);
    return;
  }

  GepDesc D;
  D.Base = regOf(Gep->getBase());
  D.ElemSize = Elem;
  D.Dims = Gep->getDimSizes();
  for (unsigned J = 0; J != Gep->getNumIndices(); ++J)
    D.IdxRegs.push_back(regOf(Gep->getIndex(J)));
  In.Op = Opcode::GepN;
  In.A = static_cast<std::uint32_t>(BF->GepDescs.size());
  BF->GepDescs.push_back(std::move(D));
  emit(In);
}

void Lowerer::lowerOne(const Instruction *I, unsigned BlockNo) {
  Instr In;
  In.Cost = instCycles(*I, Cfg);
  auto DstIt = ValueReg.find(I);
  if (DstIt != ValueReg.end())
    In.Dst = DstIt->second;

  switch (I->getKind()) {
  case ValueKind::InstBinary:
    lowerBinary(cast<BinaryInst>(I));
    return;
  case ValueKind::InstCmp:
    lowerCmp(cast<CmpInst>(I));
    return;
  case ValueKind::InstGep:
    lowerGep(cast<GepInst>(I));
    return;
  case ValueKind::InstSelect: {
    const auto *Sel = cast<SelectInst>(I);
    In.Op = Opcode::Select;
    In.A = regOf(Sel->getCondition());
    In.B = regOf(Sel->getTrueValue());
    In.C = regOf(Sel->getFalseValue());
    break;
  }
  case ValueKind::InstCast: {
    const auto *Cast_ = cast<CastInst>(I);
    switch (Cast_->getOpcode()) {
    case CastOp::SIToFP:
      In.Op = Opcode::SIToFP;
      break;
    case CastOp::FPToSI:
      In.Op = Opcode::FPToSI;
      break;
    case CastOp::PtrToInt:
    case CastOp::IntToPtr:
      In.Op = Opcode::MovI;
      break;
    }
    In.A = regOf(Cast_->getSource());
    break;
  }
  case ValueKind::InstLoad: {
    const auto *Load = cast<LoadInst>(I);
    In.Op = Load->getType() == Type::Float64 ? Opcode::LoadF : Opcode::LoadI;
    In.A = regOf(Load->getPointer());
    In.Origin = I;
    break;
  }
  case ValueKind::InstStore: {
    const auto *Store = cast<StoreInst>(I);
    In.Op = Store->getValue()->getType() == Type::Float64 ? Opcode::StoreF
                                                          : Opcode::StoreI;
    In.A = regOf(Store->getValue());
    In.B = regOf(Store->getPointer());
    In.Origin = I;
    break;
  }
  case ValueKind::InstPrefetch:
    In.Op = Opcode::Prefetch;
    In.A = regOf(cast<PrefetchInst>(I)->getPointer());
    In.Origin = I;
    break;
  case ValueKind::InstBr: {
    const auto *Br = cast<BrInst>(I);
    if (!Br->isConditional()) {
      In.Op = Opcode::Jmp;
      In.Count = 1;
      emit(In);
      branchTo(Field::A, BlockNo, BlockIndex.at(Br->getTrueDest()));
      return;
    }
    RuntimeValue CondK;
    if (constValue(Br->getCondition(), CondK)) {
      // Constant condition folds to an unconditional jump; the branch keeps
      // its own count and cost.
      In.Op = Opcode::Jmp;
      In.Count = 1;
      emit(In);
      branchTo(Field::A, BlockNo,
               BlockIndex.at(CondK.I != 0 ? Br->getTrueDest()
                                          : Br->getFalseDest()));
      return;
    }
    In.Op = Opcode::CondBr;
    In.A = regOf(Br->getCondition());
    emit(In);
    branchTo(Field::B, BlockNo, BlockIndex.at(Br->getTrueDest()));
    branchTo(Field::C, BlockNo, BlockIndex.at(Br->getFalseDest()));
    return;
  }
  case ValueKind::InstRet: {
    const auto *Ret = cast<RetInst>(I);
    if (Ret->hasReturnValue()) {
      In.Op = Opcode::RetVal;
      In.A = regOf(Ret->getReturnValue());
    } else {
      In.Op = Opcode::Ret;
    }
    break;
  }
  case ValueKind::InstCall: {
    const auto *Call = cast<CallInst>(I);
    CallDesc D;
    D.Callee = Call->getCallee();
    for (unsigned J = 0; J != Call->getNumArgs(); ++J)
      D.ArgRegs.push_back(regOf(Call->getArg(J)));
    In.Op = Opcode::Call;
    In.A = static_cast<std::uint32_t>(BF->CallDescs.size());
    if (DstIt == ValueReg.end())
      In.Dst = NoReg;
    BF->CallDescs.push_back(std::move(D));
    break;
  }
  default:
    reportUnknownOpcode("bytecode lowering", static_cast<int>(I->getKind()));
  }
  emit(In);
}

/// Lays out the trampoline for the CFG edge Pred -> Succ: the parallel copy
/// of Succ's phis serialized into PhiMov/PhiMovImm moves, then a Jmp into
/// Succ's body carrying the phi count. Copy cycles are broken by saving a
/// still-needed source into a fresh scratch register; constant inputs are
/// written last, after every old register value has been read.
void Lowerer::emitTrampoline(unsigned Pred, unsigned Succ) {
  TrampPC[{Pred, Succ}] = static_cast<std::uint32_t>(BF->Code.size());

  std::vector<PhiCopy> Pending;
  std::vector<std::pair<std::uint32_t, RuntimeValue>> ImmCopies;
  for (const Instruction *I : Phis[Succ]) {
    const auto *Phi = cast<PhiInst>(I);
    const Value *In = nullptr;
    for (unsigned J = 0; J != Phi->getNumIncoming(); ++J)
      if (BlockIndex.at(Phi->getIncomingBlock(J)) == Pred) {
        In = Phi->getIncomingValue(J);
        break;
      }
    assert(In && "phi has no entry for the incoming edge");
    std::uint32_t Dst = ValueReg.at(Phi);
    RuntimeValue K;
    if (constValue(In, K)) {
      ImmCopies.push_back({Dst, K});
    } else {
      std::uint32_t Src = ValueReg.at(In);
      if (Src != Dst)
        Pending.push_back({Dst, Src});
    }
  }

  while (!Pending.empty()) {
    bool Progress = false;
    for (std::size_t I = 0; I != Pending.size(); ++I) {
      bool DstIsSource = false;
      for (const PhiCopy &C : Pending)
        if (C.Src == Pending[I].Dst) {
          DstIsSource = true;
          break;
        }
      if (DstIsSource)
        continue;
      Instr Mv;
      Mv.Op = Opcode::PhiMov;
      Mv.Dst = Pending[I].Dst;
      Mv.A = Pending[I].Src;
      emit(Mv);
      Pending.erase(Pending.begin() + static_cast<std::ptrdiff_t>(I));
      Progress = true;
      break;
    }
    if (Progress)
      continue;
    // Every pending destination is still someone's source: a cycle. Save one
    // source into a scratch register and redirect its reader, which frees
    // the pair that overwrites that source.
    std::uint32_t Scratch = NextReg++;
    Instr Sv;
    Sv.Op = Opcode::PhiMov;
    Sv.Dst = Scratch;
    Sv.A = Pending.front().Src;
    emit(Sv);
    Pending.front().Src = Scratch;
  }

  for (const auto &[Dst, K] : ImmCopies) {
    Instr Mv;
    Mv.Op = Opcode::PhiMovImm;
    Mv.Dst = Dst;
    Mv.Imm = K;
    emit(Mv);
  }

  Instr Jump;
  Jump.Op = Opcode::Jmp;
  Jump.Count = static_cast<std::uint16_t>(Phis[Succ].size());
  Jump.Cost = 0.0;
  Jump.A = BodyPC[Succ];
  emit(Jump);
}

} // namespace

std::unique_ptr<BytecodeFunction>
dae::sim::bc::lower(const Function &F, const Loader &L,
                    const MachineConfig &Cfg) {
  return Lowerer(F, L, Cfg).run();
}
