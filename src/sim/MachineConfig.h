//===- sim/MachineConfig.h - Simulated machine parameters -------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the simulated quad-core Sandybridge-class machine the
/// evaluation runs on: cache geometry, latency split between the
/// core-clocked domain (cycles) and the wall-clock memory domain (ns), the
/// DVFS ladder of the paper (1.6-3.4 GHz in 0.4 GHz steps), its V(f) curve,
/// and the 500 ns transition latency of section 6.1 (zero for the
/// "future hardware" case).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_MACHINECONFIG_H
#define DAECC_SIM_MACHINECONFIG_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace dae {
namespace sim {

/// Functional execution backend for the simulator's value-producing pass.
/// All three produce bit-identical RunProfiles, AccessTraces, captures and
/// memory images (pinned by SnapshotTest's golden hashes and
/// tests/sim/BackendDifferentialTest.cpp); they differ only in host speed.
enum class SimBackend : std::uint8_t {
  /// The classic slot-addressed interpreter: one flat switch over a
  /// precomputed SimOp enum per executed instruction. Reference semantics.
  Switch,
  /// Register-allocated bytecode executed by a direct-threaded dispatch loop
  /// (computed goto on GCC/Clang), with phis resolved to parallel-copy move
  /// sequences, constants folded into immediate operand forms, and
  /// superinstruction fusion for hot pairs (see sim/Bytecode.h).
  Threaded,
  /// The threaded backend's bytecode lowered once more to executable host
  /// code (sim/NativeCodegen.h): an x86-64 template JIT with trace emission
  /// and page translation inlined at the load/store sites, or portable
  /// C-emission compiled through $DAECC_NATIVE_CC on other hosts. Functions
  /// the lowerer cannot compile fall back to the threaded loop per function.
  Native,
};

inline const char *simBackendName(SimBackend B) {
  switch (B) {
  case SimBackend::Switch:
    return "switch";
  case SimBackend::Threaded:
    return "threaded";
  case SimBackend::Native:
    return "native";
  }
  return "unknown";
}

/// All valid values of --sim-backend / DAECC_SIM_BACKEND, for error messages.
inline const char *simBackendValidValues() {
  return "'switch', 'threaded' or 'native'";
}

/// Strict name -> backend mapping. Returns false (leaving \p Out untouched)
/// for anything but the exact lowercase names.
inline bool simBackendFromName(const char *Name, SimBackend &Out) {
  if (!Name)
    return false;
  if (std::strcmp(Name, "switch") == 0) {
    Out = SimBackend::Switch;
    return true;
  }
  if (std::strcmp(Name, "threaded") == 0) {
    Out = SimBackend::Threaded;
    return true;
  }
  if (std::strcmp(Name, "native") == 0) {
    Out = SimBackend::Native;
    return true;
  }
  return false;
}

/// Process-default backend: DAECC_SIM_BACKEND={switch,threaded,native} when
/// set, otherwise Threaded. An unknown value is a hard configuration error
/// (exit 2), not a silent fall-back: a sweep that thinks it measured the
/// native backend but silently ran threaded would produce wrong conclusions.
/// The bench drivers' --sim-backend= flag overrides this per run (see
/// bench/BenchUtil.h).
inline SimBackend defaultSimBackend() {
  if (const char *Env = std::getenv("DAECC_SIM_BACKEND")) {
    SimBackend B;
    if (simBackendFromName(Env, B))
      return B;
    std::fprintf(stderr,
                 "error: unknown DAECC_SIM_BACKEND value '%s' (expected %s)\n",
                 Env, simBackendValidValues());
    std::exit(2);
  }
  return SimBackend::Threaded;
}

/// Exact log2 of a power-of-two cache line size. Throws std::invalid_argument
/// for zero or non-power-of-two values: a silently rounded-up shift (the old
/// behaviour) would make set indexing use a different line granularity than
/// every byte-address / LineBytes consumer (e.g. the timing replay's
/// PhaseCapture), so bad geometry must be rejected, not papered over.
inline unsigned lineShiftOf(std::uint64_t LineBytes) {
  if (LineBytes == 0 || (LineBytes & (LineBytes - 1)) != 0)
    throw std::invalid_argument("cache LineBytes must be a power of two");
  unsigned R = 0;
  while ((1ull << R) < LineBytes)
    ++R;
  return R;
}

/// One cache level.
struct CacheConfig {
  std::uint64_t SizeBytes;
  unsigned Assoc;
  unsigned LineBytes = 64;
};

/// The simulated machine.
struct MachineConfig {
  unsigned NumCores = 4;

  /// Host worker threads the simulation engine uses for the functional
  /// (value-producing) pass of each dependency wave — the CLI surface is
  /// --sim-threads=N in the bench drivers. Any value produces bit-identical
  /// RunProfiles: cache timing is always replayed single-threaded in
  /// schedule order (see DESIGN.md, "Host-parallel simulation"). 1 keeps the
  /// fully sequential reference path; values above NumCores still help, as
  /// the functional pass parallelizes over tasks, not simulated cores.
  unsigned SimThreads = 1;

  /// Pipelined wave simulation: when true (the default) and SimThreads > 1,
  /// the timing replay of wave N runs on a dedicated replay thread while the
  /// worker pool executes the functional pass of wave N+1 (CLI:
  /// --no-replay-overlap / DAECC_REPLAY_OVERLAP=0 to disable). Replay order
  /// and cache state are unaffected — the replay thread consumes waves
  /// strictly in order and owns the hierarchy exclusively — so RunProfiles
  /// stay bit-identical for every (SimThreads, ReplayOverlap) combination
  /// (asserted by tests/runtime/DeterminismTest.cpp).
  bool ReplayOverlap = true;

  /// Functional execution backend (CLI: --sim-backend={switch,threaded,
  /// native} / DAECC_SIM_BACKEND). Threaded is the default; Switch keeps the
  /// reference interpreter; Native compiles the bytecode to host code.
  /// Simulated results are bit-identical for every choice.
  SimBackend Backend = defaultSimBackend();

  // Private per-core L1/L2, shared LLC. The geometry is a proportionally
  // scaled-down Sandybridge (1/4-1/16 capacity at equal associativity):
  // workload footprints are scaled down by the same factor so cache-relative
  // behaviour — the quantity the DAE evaluation depends on — is preserved
  // while simulations stay interactive (see DESIGN.md, substitution table).
  CacheConfig L1{16 * 1024, 8};
  CacheConfig L2{64 * 1024, 8};
  CacheConfig LLC{256 * 1024, 16};

  // Core-clocked effective instruction costs (cycles; scale with
  // frequency). These are amortized superscalar costs: a ~3-wide
  // out-of-order core retires simple address arithmetic at ~3 per cycle,
  // while FP ops and (unpipelined) divides cost more.
  double SimpleOpCycles = 0.34;
  double FpOpCycles = 1.0;
  double DivCycles = 10.0;

  // Core-clocked hit latencies (cycles; scale with frequency). Amortized for
  // pipelined independent accesses rather than raw load-to-use latency.
  double L1HitCycles = 1.5;
  double L2HitCycles = 8.0;
  double LLCHitCycles = 30.0;

  // Wall-clock DRAM latency (ns; frequency independent).
  double MemLatencyNs = 80.0;

  /// Effective overlap of outstanding demand-load misses (out-of-order
  /// window MLP); each LLC-missing load stalls MemLatencyNs / LoadMlp.
  double LoadMlp = 2.0;
  /// Software prefetches do not stall retirement (section 3.1) and overlap
  /// much more deeply; they are throughput-limited to MemLatencyNs /
  /// PrefetchMlp each.
  double PrefetchMlp = 8.0;
  /// Store misses are read-for-ownership transactions: the line must be
  /// fetched like a demand load before the write retires from the buffer.
  double StoreMlp = 2.0;

  /// Hardware next-line prefetcher: a demand DRAM miss also pulls the
  /// following line into the L2, so sequential streams miss roughly every
  /// other line. Software (DAE) prefetching remains uniquely able to cover
  /// irregular and indirect patterns.
  bool HwNextLinePrefetch = true;

  /// DVFS ladder, fmin..fmax (GHz), 400 MHz steps as in section 6.2.
  std::vector<double> FrequenciesGHz{1.6, 2.0, 2.4, 2.8, 3.2, 3.4};

  /// Per-core DVFS ladders for heterogeneous (big.LITTLE-style) topologies.
  /// Core C runs on CoreLadders[C] when C < CoreLadders.size(), else on the
  /// machine-wide FrequenciesGHz ladder — so the default (empty) keeps every
  /// core on the homogeneous ladder and every existing consumer bit-exact.
  /// Each entry must be non-empty and sorted ascending (like FrequenciesGHz);
  /// a single-entry ladder pins the core to one operating point.
  std::vector<std::vector<double>> CoreLadders;

  /// Shared DRAM channel bandwidth (GB/s == bytes/ns) for the multi-core
  /// contention timeline: concurrent LLC misses queue on the channel, each
  /// occupying it for LineBytes / DramBandwidthGBs ns. <= 0 disables the
  /// queue (infinite bandwidth — the single-workload engine's model, which
  /// prices DRAM misses by latency/MLP only).
  double DramBandwidthGBs = 12.8;

  /// Frequency transition latency (ns); 500 for current hardware, 0 for the
  /// ideal future-hardware study.
  double DvfsTransitionNs = 500.0;

  double fmin() const { return FrequenciesGHz.front(); }
  double fmax() const { return FrequenciesGHz.back(); }

  /// The DVFS ladder core \p Core runs on (see CoreLadders).
  const std::vector<double> &ladder(unsigned Core) const {
    return Core < CoreLadders.size() ? CoreLadders[Core] : FrequenciesGHz;
  }
  double fminOf(unsigned Core) const { return ladder(Core).front(); }
  double fmaxOf(unsigned Core) const { return ladder(Core).back(); }

  /// \p FreqGHz clamped into core \p Core's ladder range [fminOf, fmaxOf].
  /// A single-entry ladder clamps every query to its one operating point.
  double clampToLadder(unsigned Core, double FreqGHz) const {
    double Lo = fminOf(Core), Hi = fmaxOf(Core);
    return FreqGHz < Lo ? Lo : FreqGHz > Hi ? Hi : FreqGHz;
  }

  /// The lowest ladder rung of core \p Core at or above \p FreqGHz (clamped
  /// to fmaxOf for targets beyond the ladder) — cpufreq's CPUFREQ_RELATION_L
  /// pick, used by the ondemand governor's target selection.
  double rungAtOrAbove(unsigned Core, double FreqGHz) const {
    for (double F : ladder(Core))
      if (F >= FreqGHz)
        return F;
    return fmaxOf(Core);
  }

  /// Configures a heterogeneous big.LITTLE topology: cores [0, NumBig) keep
  /// the machine-wide ladder, cores [NumBig, NumBig + NumLittle) run an
  /// efficiency ladder spanning 0.6-1.4 GHz (after the ARM big.LITTLE DAE
  /// study, arXiv:1701.05478). Sets NumCores = NumBig + NumLittle.
  void makeBigLittle(unsigned NumBig, unsigned NumLittle) {
    NumCores = NumBig + NumLittle;
    CoreLadders.assign(NumBig, FrequenciesGHz);
    CoreLadders.insert(CoreLadders.end(), NumLittle,
                       std::vector<double>{0.6, 0.8, 1.0, 1.2, 1.4});
  }

  /// Sandybridge-like V-f curve: ~0.93 V at 1.6 GHz, ~1.25 V at 3.4 GHz.
  /// Defined for every input: frequencies off the DVFS ladder are clamped to
  /// [fmin, fmax] first, so an out-of-range query (a sweep overshooting the
  /// ladder, a 0 GHz sentinel) prices the nearest real operating point
  /// instead of extrapolating the linear fit to nonsense voltages.
  double voltageAt(double FreqGHz) const {
    if (FreqGHz < fmin())
      FreqGHz = fmin();
    else if (FreqGHz > fmax())
      FreqGHz = fmax();
    return 0.65 + 0.175 * FreqGHz;
  }

  /// Per-core V-f: the same linear curve, clamped to core \p Core's ladder —
  /// a little core's voltage tops out at its own fmax, not the big ladder's,
  /// so off-ladder queries on heterogeneous topologies price the nearest
  /// operating point that core actually has.
  double voltageAt(unsigned Core, double FreqGHz) const {
    return 0.65 + 0.175 * clampToLadder(Core, FreqGHz);
  }
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_MACHINECONFIG_H
