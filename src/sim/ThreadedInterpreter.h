//===- sim/ThreadedInterpreter.h - Direct-threaded backend ------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded execution backend: runs the register-allocated bytecode of
/// sim/Bytecode.h through a direct-threaded dispatch loop (computed goto on
/// GCC/Clang via a label-address table, a plain switch elsewhere). It is the
/// default backend (MachineConfig::Backend); sim::Interpreter constructs one
/// internally and delegates, so callers keep the single Interpreter API.
///
/// Semantics are bit-identical to the switch interpreter — same PhaseStats
/// (including FP addend order), AccessTraces, memory images, return values,
/// and per-site load statistics — verified by
/// tests/sim/BackendDifferentialTest.cpp and the SnapshotTest goldens.
///
/// Like the reference, the dispatch loop is instantiated twice (FusedModel /
/// TracingModel from sim/ExecModels.h), keeping trace emission inlined at
/// the load/store/prefetch sites with no per-access mode branch.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_THREADEDINTERPRETER_H
#define DAECC_SIM_THREADEDINTERPRETER_H

#include "sim/Bytecode.h"
#include "sim/Interpreter.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace dae {
namespace sim {

/// Executes functions lowered to bytecode on a simulated core. One instance
/// per worker thread; compiled/lowered code is shared read-only through the
/// CompiledProgram, with a lazy per-interpreter fallback for functions
/// outside it (mirroring Interpreter).
class ThreadedInterpreter {
public:
  /// \p Caches may be null for tracing-only use (runTraced).
  ThreadedInterpreter(const MachineConfig &Cfg, Memory &Mem,
                      CacheHierarchy *Caches, const Loader &L,
                      const CompiledProgram *Shared);

  /// Fused mode: identical contract to Interpreter::run.
  PhaseStats run(const ir::Function &F, unsigned Core,
                 const std::vector<RuntimeValue> &Args,
                 RuntimeValue *RetOut = nullptr);

  /// Tracing mode: identical contract to Interpreter::runTraced.
  PhaseStats runTraced(const ir::Function &F,
                       const std::vector<RuntimeValue> &Args,
                       AccessTrace &Trace, RuntimeValue *RetOut = nullptr);

  void setLoadStats(LoadStatsMap *Stats) { LoadStats = Stats; }

private:
  /// Args passed as pointer+count so the Call handler can forward from an
  /// on-stack buffer without materializing a vector per call.
  template <typename MemModel>
  PhaseStats exec(const bc::BytecodeFunction &BF, const RuntimeValue *Args,
                  std::size_t NArgs, RuntimeValue *RetOut, MemModel &MM);

  const bc::BytecodeFunction &getBytecode(const ir::Function &F);

  /// Register-file arena shared by all activations: each exec() carves its
  /// frame at FrameTop and restores it on return, so repeated task runs and
  /// nested calls reuse one allocation instead of a fresh zeroed vector per
  /// invocation. Registers are def-before-use by SSA dominance, so stale
  /// bytes from earlier frames are never observed.
  std::vector<RuntimeValue> Frame;
  std::size_t FrameTop = 0;

  /// One-entry memo in front of the Shared/Cache lookups: tasks run the same
  /// function back to back, so getBytecode is almost always a pointer
  /// compare.
  const ir::Function *LastFn = nullptr;
  const bc::BytecodeFunction *LastBC = nullptr;

  LoadStatsMap *LoadStats = nullptr;
  const MachineConfig &Cfg;
  MemoryView View;
  CacheHierarchy *Caches; ///< Null for tracing-only interpreters.
  const Loader &Load;
  const CompiledProgram *Shared; ///< Read-only; preferred over Cache.
  /// Lazy per-interpreter fallback for functions outside the shared program.
  std::unordered_map<const ir::Function *,
                     std::unique_ptr<bc::BytecodeFunction>>
      Cache;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_THREADEDINTERPRETER_H
