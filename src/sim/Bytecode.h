//===- sim/Bytecode.h - Register-allocated simulator bytecode ---*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat, register-allocated bytecode the threaded backend executes
/// (selected by MachineConfig::Backend == SimBackend::Threaded):
///
///  * Virtual register file indexed by dense slot IDs, laid out
///    [args][instruction values][constant pool][phi scratch]. The constant
///    pool (deduplicated ConstantInt/ConstantFloat/global-base values) is
///    copied into its register range on function entry, so every operand of
///    every instruction is a plain register index — no per-operand
///    immediate-vs-slot branch on the hot path.
///  * Constants additionally fold into immediate opcode variants (AddImm,
///    CmpSLTImm, FMulImm, ...) for the common const-RHS shapes; integer
///    commutative ops swap a const LHS into the immediate form.
///  * Phis are resolved at lowering time: every CFG edge into a block with
///    phis gets a trampoline of PhiMov/PhiMovImm parallel-copy moves
///    (cycles broken through scratch registers) ending in a Jmp that carries
///    the phi instruction count, so PhaseStats::Instructions matches the
///    reference interpreter exactly.
///  * Superinstruction fusion for the hot adjacent pairs the workloads
///    execute: integer cmp + condbr (BrCmp*, also *Imm forms), FP/int
///    load + binop (LoadFAddF, ...), and GEP-style add+shl address math
///    (Gep1Shl for power-of-two element sizes).
///
/// Simulated observables — PhaseStats (including FP addend order on
/// ComputeCycles/StallNs), AccessTraces, memory images, and return values —
/// are bit-identical to the switch interpreter's: fused handlers apply the
/// two per-instruction cycle costs as two separate additions in original
/// program order, and every handler reproduces the reference's exact
/// RuntimeValue write pattern (.I-only / .D-only / full-struct).
///
/// Lowering happens once, single-threaded (CompiledProgram::add or a
/// ThreadedInterpreter's lazy cache); BytecodeFunction is immutable
/// afterwards and safe to share read-only across sim worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_BYTECODE_H
#define DAECC_SIM_BYTECODE_H

#include "sim/Interpreter.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace dae {

namespace ir {
class Function;
class Instruction;
} // namespace ir

namespace sim {
namespace bc {

/// Every opcode of the threaded backend. An X-macro so the dispatch loop can
/// generate its label-address table and its portable switch fallback from
/// one list without the two drifting apart.
#define DAECC_BC_OPCODES(X)                                                    \
  /* Control / data movement. */                                               \
  X(Trap)                                                                      \
  X(MovI)      /* PtrToInt/IntToPtr: Dst.I = R[A].I (counted). */              \
  X(MovImm)    /* Fully folded value: Dst = Imm (counted). */                  \
  X(PhiMov)    /* Phi-edge copy: Dst = R[A] (uncounted). */                    \
  X(PhiMovImm) /* Phi-edge copy: Dst = Imm (uncounted). */                     \
  /* Integer binops, reg-reg. */                                               \
  X(Add) X(Sub) X(Mul) X(SDiv) X(SRem)                                         \
  X(And) X(Or) X(Xor) X(Shl) X(AShr)                                           \
  /* Integer binops, reg-imm. */                                               \
  X(AddImm) X(SubImm) X(MulImm) X(ShlImm) X(AShrImm)                           \
  /* FP binops, reg-reg and reg-imm (const RHS only; FP operand order is      \
     preserved, so const-LHS shapes stay on the reg-reg path). */              \
  X(FAdd) X(FSub) X(FMul) X(FDiv)                                              \
  X(FAddImm) X(FSubImm) X(FMulImm) X(FDivImm)                                  \
  /* Comparisons (write the full 0/1 RuntimeValue like the reference). */      \
  X(CmpEQ) X(CmpNE) X(CmpSLT) X(CmpSLE) X(CmpSGT) X(CmpSGE)                    \
  X(CmpFLT) X(CmpFLE) X(CmpFGT) X(CmpFGE) X(CmpFEQ) X(CmpFNE)                  \
  X(CmpEQImm) X(CmpNEImm) X(CmpSLTImm) X(CmpSLEImm) X(CmpSGTImm) X(CmpSGEImm)  \
  /* Misc value ops. */                                                        \
  X(Select) X(SIToFP) X(FPToSI)                                                \
  /* Address math. */                                                          \
  X(Gep1Shl)   /* Dst = R[A].I + (R[B].I << Imm.I); pow2 elem size. */         \
  X(GepMul)    /* Dst = R[A].I + R[B].I * Imm.I. */                            \
  X(GepAddImm) /* Dst = R[A].I + Imm.I; constant index. */                     \
  X(GepN)      /* Multi-index form via GepDesc[A]. */                          \
  /* Memory. */                                                                \
  X(LoadI) X(LoadF) X(StoreI) X(StoreF) X(Prefetch)                            \
  /* Fused load + binop superinstructions (Aux = load dst). */                 \
  X(LoadFAddF) X(LoadFSubF) X(LoadFMulF) X(LoadIAddI)                          \
  /* Branches; targets are absolute PCs. */                                    \
  X(Jmp)    /* Instructions += Count (1 for IR br, #phis on trampolines). */   \
  X(CondBr) /* pc = R[A].I ? B : C. */                                         \
  /* Fused integer cmp + condbr (cmp dst is still written). */                 \
  X(BrCmpEQ) X(BrCmpNE) X(BrCmpSLT) X(BrCmpSLE) X(BrCmpSGT) X(BrCmpSGE)        \
  X(BrCmpEQImm) X(BrCmpNEImm) X(BrCmpSLTImm) X(BrCmpSLEImm)                    \
  X(BrCmpSGTImm) X(BrCmpSGEImm)                                                \
  /* Function exit / calls. */                                                 \
  X(Ret) X(RetVal) X(Call)

enum class Opcode : std::uint8_t {
#define DAECC_BC_ENUM(Name) Name,
  DAECC_BC_OPCODES(DAECC_BC_ENUM)
#undef DAECC_BC_ENUM
};

const char *opcodeName(Opcode Op);

/// Register index sentinel for "no destination" (void calls).
constexpr std::uint32_t NoReg = 0xFFFFFFFFu;

/// One bytecode instruction. Fixed 64-byte layout: opcode + up to five
/// register operands + an inline immediate + the one or two per-IR-instruction
/// cycle costs + the originating IR instruction (per-site load statistics).
struct Instr {
  Opcode Op = Opcode::Trap;
  /// PhaseStats::Instructions bump for Jmp (1 for an IR branch, the phi
  /// count on trampoline tails, 0 is never emitted). Other opcodes hardcode
  /// their bump count in the handler.
  std::uint16_t Count = 1;
  std::uint32_t Dst = 0;
  std::uint32_t A = 0;
  std::uint32_t B = 0;
  std::uint32_t C = 0;
  /// Fifth operand: load destination for fused loads, false-target PC for
  /// fused compare-and-branch.
  std::uint32_t Aux = 0;
  /// Core-clocked cost of the (first fused) IR instruction; added to
  /// ComputeCycles before the op executes, exactly like the reference.
  double Cost = 0.0;
  /// Cost of the second fused IR instruction; applied as a separate addition
  /// after the first op's effects so the FP addend order matches an unfused
  /// execution.
  double CostB = 0.0;
  RuntimeValue Imm;
  /// Originating IR instruction for memory ops (LoadStatsMap keys).
  const ir::Instruction *Origin = nullptr;
};

/// Multi-index GEP payload:
///   Dst = R[Base].I + ElemSize * (((i0 * Dims[1] + i1) * Dims[2] + i2) ...)
struct GepDesc {
  std::uint32_t Base = 0;
  std::int64_t ElemSize = 0;
  std::vector<std::int64_t> Dims;
  std::vector<std::uint32_t> IdxRegs;
};

/// Call payload; the callee's bytecode is resolved through the interpreter's
/// program at execution time, mirroring the reference's getCompiled().
struct CallDesc {
  const ir::Function *Callee = nullptr;
  std::vector<std::uint32_t> ArgRegs;
};

/// Executable lowered form of one function. Immutable after lower();
/// shareable read-only across threads.
class BytecodeFunction {
public:
  std::vector<Instr> Code;
  std::vector<GepDesc> GepDescs;
  std::vector<CallDesc> CallDescs;
  /// Deduplicated constants, copied into registers [ConstBase, ConstBase +
  /// ConstPool.size()) on entry.
  std::vector<RuntimeValue> ConstPool;
  std::uint32_t ConstBase = 0;
  std::uint32_t NumRegs = 0;
  std::uint32_t NumArgs = 0;
};

/// Lowers \p F to bytecode. Global addresses are baked in through \p L and
/// per-instruction costs through \p Cfg, exactly as CompiledFunction does.
std::unique_ptr<BytecodeFunction>
lower(const ir::Function &F, const Loader &L, const MachineConfig &Cfg);

} // namespace bc
} // namespace sim
} // namespace dae

#endif // DAECC_SIM_BYTECODE_H
