//===- sim/AccessTrace.h - Recorded memory access stream --------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered stream of memory accesses one phase performed, recorded by the
/// interpreter's tracing mode and replayed through the cache hierarchy by the
/// runtime's timing pass. Cache hit/miss outcomes never influence computed
/// values, only timing statistics — so functional execution (which produces
/// the trace) can run on any host thread while the cache model consumes the
/// traces later, sequentially and in schedule order, yielding hit/miss
/// accounting that is bit-identical for any host thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_ACCESSTRACE_H
#define DAECC_SIM_ACCESSTRACE_H

#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dae {
namespace sim {

/// Free-list of trace storage buffers, shared across tasks, waves and
/// concurrently running simulations. Traces are bulky and short-lived (one
/// wave each); recycling their grown capacity removes the per-wave
/// allocation churn that shows up once suite jobs run concurrently. Purely
/// a storage cache: trace *contents* never cross users, so simulated
/// results are unaffected.
///
/// Retention is bounded three ways: at most MaxPooled buffers, at most
/// MaxBufferBytes of capacity per buffer (one huge-wave trace must not pin
/// its worst-case footprint forever), and at most MaxTotalBytes of capacity
/// across the whole free-list. Buffers over either byte cap are simply
/// freed on recycle.
class TracePool {
public:
  static constexpr std::size_t DefaultMaxPooled = 256;
  /// 8 MiB per buffer = 1M trace events; larger traces are outliers whose
  /// capacity should go back to the allocator.
  static constexpr std::size_t DefaultMaxBufferBytes = 8u << 20;
  /// 64 MiB total retained across the pool.
  static constexpr std::size_t DefaultMaxTotalBytes = 64u << 20;

  explicit TracePool(std::size_t MaxPooled = DefaultMaxPooled,
                     std::size_t MaxBufferBytes = DefaultMaxBufferBytes,
                     std::size_t MaxTotalBytes = DefaultMaxTotalBytes)
      : MaxPooled(MaxPooled), MaxBufferBytes(MaxBufferBytes),
        MaxTotalBytes(MaxTotalBytes) {}

  /// Process-wide pool (suite jobs in one process share one allocator
  /// anyway, so they share one free-list too).
  static TracePool &global() {
    static TracePool Pool;
    return Pool;
  }

  /// Returns an empty buffer, reusing pooled capacity when available.
  std::vector<std::uint64_t> acquire() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Free.empty())
      return {};
    std::vector<std::uint64_t> Buf = std::move(Free.back());
    Free.pop_back();
    RetainedBytes -= Buf.capacity() * sizeof(std::uint64_t);
    ++Reuses;
    return Buf;
  }

  /// Takes \p Buf back (cleared, capacity kept) unless pooling it would
  /// break a cap, in which case the storage is simply freed.
  void recycle(std::vector<std::uint64_t> Buf) {
    Buf.clear();
    std::size_t Bytes = Buf.capacity() * sizeof(std::uint64_t);
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Free.size() >= MaxPooled || Bytes > MaxBufferBytes ||
        RetainedBytes + Bytes > MaxTotalBytes)
      return;
    RetainedBytes += Bytes;
    Free.push_back(std::move(Buf));
  }

  std::uint64_t reuses() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Reuses;
  }

  /// Capacity bytes currently held in the free-list (testing/diagnostics).
  std::size_t retainedBytes() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return RetainedBytes;
  }

  /// Buffers currently pooled (testing/diagnostics).
  std::size_t pooledBuffers() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Free.size();
  }

private:
  const std::size_t MaxPooled;
  const std::size_t MaxBufferBytes;
  const std::size_t MaxTotalBytes;
  mutable std::mutex Mutex;
  std::vector<std::vector<std::uint64_t>> Free;
  std::size_t RetainedBytes = 0;
  std::uint64_t Reuses = 0;
};

/// One phase's memory accesses, packed one event per 64-bit word: the access
/// kind in the top two bits, the byte address below. Simulated addresses come
/// from the Loader (base 0x10000 plus footprints far below 2^62), so the tag
/// bits are always free.
class AccessTrace {
public:
  enum class Kind : std::uint64_t { Load = 0, Store = 1, Prefetch = 2 };

  static constexpr std::uint64_t AddrMask = (1ull << 62) - 1;

  void push(Kind K, std::uint64_t Addr) {
    assert((Addr & ~AddrMask) == 0 && "simulated address overflows tag bits");
    Events.push_back((static_cast<std::uint64_t>(K) << 62) |
                     (Addr & AddrMask));
  }

  static Kind kindOf(std::uint64_t Event) {
    return static_cast<Kind>(Event >> 62);
  }
  static std::uint64_t addrOf(std::uint64_t Event) { return Event & AddrMask; }

  const std::vector<std::uint64_t> &events() const { return Events; }
  bool empty() const { return Events.empty(); }
  std::size_t size() const { return Events.size(); }
  void clear() { Events.clear(); }
  /// Releases the storage (traces are bulky; the runtime frees each one right
  /// after its replay).
  void release() { std::vector<std::uint64_t>().swap(Events); }

  /// Adopts pooled storage from \p Pool before recording begins.
  void acquireFrom(TracePool &Pool) { Events = Pool.acquire(); }
  /// Hands the storage back to \p Pool (replaces release() on hot paths).
  void releaseTo(TracePool &Pool) {
    Pool.recycle(std::move(Events));
    Events.clear();
  }

private:
  std::vector<std::uint64_t> Events;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_ACCESSTRACE_H
