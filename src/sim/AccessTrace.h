//===- sim/AccessTrace.h - Recorded memory access stream --------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered stream of memory accesses one phase performed, recorded by the
/// interpreter's tracing mode and replayed through the cache hierarchy by the
/// runtime's timing pass. Cache hit/miss outcomes never influence computed
/// values, only timing statistics — so functional execution (which produces
/// the trace) can run on any host thread while the cache model consumes the
/// traces later, sequentially and in schedule order, yielding hit/miss
/// accounting that is bit-identical for any host thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_ACCESSTRACE_H
#define DAECC_SIM_ACCESSTRACE_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace dae {
namespace sim {

/// One phase's memory accesses, packed one event per 64-bit word: the access
/// kind in the top two bits, the byte address below. Simulated addresses come
/// from the Loader (base 0x10000 plus footprints far below 2^62), so the tag
/// bits are always free.
class AccessTrace {
public:
  enum class Kind : std::uint64_t { Load = 0, Store = 1, Prefetch = 2 };

  static constexpr std::uint64_t AddrMask = (1ull << 62) - 1;

  void push(Kind K, std::uint64_t Addr) {
    assert((Addr & ~AddrMask) == 0 && "simulated address overflows tag bits");
    Events.push_back((static_cast<std::uint64_t>(K) << 62) |
                     (Addr & AddrMask));
  }

  static Kind kindOf(std::uint64_t Event) {
    return static_cast<Kind>(Event >> 62);
  }
  static std::uint64_t addrOf(std::uint64_t Event) { return Event & AddrMask; }

  const std::vector<std::uint64_t> &events() const { return Events; }
  bool empty() const { return Events.empty(); }
  std::size_t size() const { return Events.size(); }
  void clear() { Events.clear(); }
  /// Releases the storage (traces are bulky; the runtime frees each one right
  /// after its replay).
  void release() { std::vector<std::uint64_t>().swap(Events); }

private:
  std::vector<std::uint64_t> Events;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_ACCESSTRACE_H
