//===- sim/AccessTrace.h - Recorded memory access stream --------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered stream of memory accesses one phase performed, recorded by the
/// interpreter's tracing mode and replayed through the cache hierarchy by the
/// runtime's timing pass. Cache hit/miss outcomes never influence computed
/// values, only timing statistics — so functional execution (which produces
/// the trace) can run on any host thread while the cache model consumes the
/// traces later, sequentially and in schedule order, yielding hit/miss
/// accounting that is bit-identical for any host thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_ACCESSTRACE_H
#define DAECC_SIM_ACCESSTRACE_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace dae {
namespace sim {

/// Free-list of trace storage buffers, shared across tasks, waves and
/// concurrently running simulations. Traces are bulky and short-lived (one
/// wave each); recycling their grown capacity removes the per-wave
/// allocation churn that shows up once suite jobs run concurrently. Purely
/// a storage cache: trace *contents* never cross users, so simulated
/// results are unaffected.
///
/// Retention is bounded three ways: at most MaxPooled buffers, at most
/// MaxBufferBytes of capacity per buffer (one huge-wave trace must not pin
/// its worst-case footprint forever), and at most MaxTotalBytes of capacity
/// across the whole free-list. Buffers over either byte cap are simply
/// freed on recycle.
class TracePool {
public:
  static constexpr std::size_t DefaultMaxPooled = 256;
  /// 8 MiB per buffer = 1M trace events; larger traces are outliers whose
  /// capacity should go back to the allocator.
  static constexpr std::size_t DefaultMaxBufferBytes = 8u << 20;
  /// 64 MiB total retained across the pool.
  static constexpr std::size_t DefaultMaxTotalBytes = 64u << 20;

  explicit TracePool(std::size_t MaxPooled = DefaultMaxPooled,
                     std::size_t MaxBufferBytes = DefaultMaxBufferBytes,
                     std::size_t MaxTotalBytes = DefaultMaxTotalBytes)
      : MaxPooled(MaxPooled), MaxBufferBytes(MaxBufferBytes),
        MaxTotalBytes(MaxTotalBytes) {}

  /// Total retained-bytes cap from DAECC_TRACE_POOL_MB (MiB), or
  /// DefaultMaxTotalBytes when unset. 8-way co-scheduled mixes keep one live
  /// trace set per core, so the default 64 MiB free-list can be too small to
  /// absorb their recycle traffic (or too large for a constrained host) —
  /// the cap is an environment knob rather than a rebuild. A value that is
  /// not a positive integer is a hard configuration error (exit 2), never a
  /// silent fall-back to the default: a sweep sized against a cap that was
  /// silently ignored would thrash (or OOM) unexplained.
  static std::size_t maxTotalBytesFromEnv() {
    const char *Env = std::getenv("DAECC_TRACE_POOL_MB");
    if (!Env)
      return DefaultMaxTotalBytes;
    char *End = nullptr;
    long Mb = std::strtol(Env, &End, 10);
    if (End == Env || *End != '\0' || Mb <= 0) {
      std::fprintf(stderr,
                   "error: invalid DAECC_TRACE_POOL_MB value '%s' (expected "
                   "a positive integer number of MiB)\n",
                   Env);
      std::exit(2);
    }
    return static_cast<std::size_t>(Mb) << 20;
  }

  /// Process-wide pool (suite jobs in one process share one allocator
  /// anyway, so they share one free-list too). Sized by DAECC_TRACE_POOL_MB
  /// when set; the per-buffer cap scales with the total (total/8, floored at
  /// the default) so one outlier trace still cannot pin the whole budget.
  static TracePool &global() {
    static TracePool Pool = [] {
      std::size_t Total = maxTotalBytesFromEnv();
      std::size_t PerBuffer = std::max(Total / 8, DefaultMaxBufferBytes);
      return TracePool(DefaultMaxPooled, PerBuffer, Total);
    }();
    return Pool;
  }

  /// Returns an empty buffer, reusing pooled capacity when available.
  std::vector<std::uint64_t> acquire() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Free.empty())
      return {};
    std::vector<std::uint64_t> Buf = std::move(Free.back());
    Free.pop_back();
    RetainedBytes -= Buf.capacity() * sizeof(std::uint64_t);
    ++Reuses;
    return Buf;
  }

  /// Takes \p Buf back (cleared, capacity kept) unless pooling it would
  /// break a cap, in which case the storage is simply freed. The buffer's
  /// recorded length (before clearing) feeds the sizing hint the next
  /// acquirer pre-reserves against — wave N's trace length is the best
  /// available predictor for wave N+1's.
  void recycle(std::vector<std::uint64_t> Buf) {
    const std::size_t Events = Buf.size();
    const std::size_t UsedBytes = Events * sizeof(std::uint64_t);
    Buf.clear();
    std::size_t Bytes = Buf.capacity() * sizeof(std::uint64_t);
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Events > 0)
      LastEvents = Events;
    if (UsedBytes > PeakBytes)
      PeakBytes = UsedBytes;
    if (Free.size() >= MaxPooled || Bytes > MaxBufferBytes ||
        RetainedBytes + Bytes > MaxTotalBytes)
      return;
    RetainedBytes += Bytes;
    Free.push_back(std::move(Buf));
  }

  std::uint64_t reuses() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Reuses;
  }

  /// Capacity bytes currently held in the free-list (testing/diagnostics).
  std::size_t retainedBytes() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return RetainedBytes;
  }

  /// Event count of the last non-empty recycled trace: the reserve hint
  /// AccessTrace::acquireFrom applies so hot-loop push never reallocates
  /// mid-trace in the steady state (waves resemble their predecessors).
  std::size_t suggestedEvents() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return LastEvents;
  }

  /// High-water mark of a single trace's recorded bytes (size at recycle,
  /// not capacity) across the pool's lifetime; reported per run in the
  /// BENCH_*.json `interp` block.
  std::size_t peakBytes() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return PeakBytes;
  }

  /// Buffers currently pooled (testing/diagnostics).
  std::size_t pooledBuffers() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Free.size();
  }

private:
  const std::size_t MaxPooled;
  const std::size_t MaxBufferBytes;
  const std::size_t MaxTotalBytes;
  mutable std::mutex Mutex;
  std::vector<std::vector<std::uint64_t>> Free;
  std::size_t RetainedBytes = 0;
  std::size_t LastEvents = 0;
  std::size_t PeakBytes = 0;
  std::uint64_t Reuses = 0;
};

/// One phase's memory accesses, packed one event per 64-bit word: the access
/// kind in the top two bits, the byte address below. Simulated addresses come
/// from the Loader (base 0x10000 plus footprints far below 2^62), so the tag
/// bits are always free.
class AccessTrace {
public:
  enum class Kind : std::uint64_t { Load = 0, Store = 1, Prefetch = 2 };

  static constexpr std::uint64_t AddrMask = (1ull << 62) - 1;

  void push(Kind K, std::uint64_t Addr) {
    assert((Addr & ~AddrMask) == 0 && "simulated address overflows tag bits");
    // Explicit reserve-doubling instead of the library's growth policy: the
    // policy is then identical across standard libraries and matches the
    // native backend's nativeGrow, and the branch is a single predictable
    // compare in the hot loop (almost never taken once acquireFrom has
    // applied the pool's sizing hint).
    if (Events.size() == Events.capacity())
      Events.reserve(Events.capacity() ? Events.capacity() * 2 : MinReserve);
    Events.push_back((static_cast<std::uint64_t>(K) << 62) |
                     (Addr & AddrMask));
  }

  static Kind kindOf(std::uint64_t Event) {
    return static_cast<Kind>(Event >> 62);
  }
  static std::uint64_t addrOf(std::uint64_t Event) { return Event & AddrMask; }

  const std::vector<std::uint64_t> &events() const { return Events; }
  bool empty() const { return Events.empty(); }
  std::size_t size() const { return Events.size(); }
  void clear() { Events.clear(); }
  /// Releases the storage (traces are bulky; the runtime frees each one right
  /// after its replay).
  void release() { std::vector<std::uint64_t>().swap(Events); }

  /// Adopts pooled storage from \p Pool before recording begins and
  /// pre-reserves the pool's sizing hint (the previous wave's trace length),
  /// so steady-state recording never grows mid-trace.
  void acquireFrom(TracePool &Pool) {
    Events = Pool.acquire();
    std::size_t Hint = Pool.suggestedEvents();
    if (Hint > Events.capacity())
      Events.reserve(Hint);
  }
  /// Hands the storage back to \p Pool (replaces release() on hot paths).
  void releaseTo(TracePool &Pool) {
    Pool.recycle(std::move(Events));
    Events.clear();
  }

  /// \name Raw-cursor protocol for the native backend
  /// Generated code appends events through a raw write pointer instead of
  /// push(), with the capacity check hoisted to one compare per straight-line
  /// region. The vector is resized to its full capacity while the cursor is
  /// out (so raw writes land inside [data(), data()+size()) — well-defined
  /// and sanitizer-clean) and trimmed back to the recorded length on commit.
  /// @{

  /// Opens the cursor: ensures at least \p HintEvents of headroom, exposes
  /// the full capacity, and returns the next write slot. Pair every
  /// nativeBegin with exactly one nativeCommit.
  std::uint64_t *nativeBegin(std::size_t HintEvents) {
    std::size_t N = Events.size();
    if (Events.capacity() < N + HintEvents)
      Events.reserve(std::max(Events.capacity() * 2, N + HintEvents));
    if (Events.capacity() == 0)
      Events.reserve(MinReserve);
    Events.resize(Events.capacity());
    return Events.data() + N;
  }

  /// One past the writable storage for the open cursor.
  std::uint64_t *nativeEnd() { return Events.data() + Events.size(); }

  /// Closes the cursor: \p Ptr is the final write position; everything below
  /// it is recorded, the exposed slack above it is discarded.
  void nativeCommit(std::uint64_t *Ptr) {
    assert(Ptr >= Events.data() && Ptr <= Events.data() + Events.size() &&
           "native trace cursor out of bounds");
    Events.resize(static_cast<std::size_t>(Ptr - Events.data()));
  }

  /// Grows an open cursor that is about to overflow: commits at \p Ptr,
  /// doubles (at least \p NeededEvents more), reopens, and returns the new
  /// write position.
  std::uint64_t *nativeGrow(std::uint64_t *Ptr, std::size_t NeededEvents) {
    nativeCommit(Ptr);
    return nativeBegin(NeededEvents);
  }
  /// @}

private:
  /// First reservation of an empty trace (64 events = one cache line of
  /// slack past the typical tiny-phase trace).
  static constexpr std::size_t MinReserve = 64;

  std::vector<std::uint64_t> Events;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_ACCESSTRACE_H
