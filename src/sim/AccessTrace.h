//===- sim/AccessTrace.h - Recorded memory access stream --------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered stream of memory accesses one phase performed, recorded by the
/// interpreter's tracing mode and replayed through the cache hierarchy by the
/// runtime's timing pass. Cache hit/miss outcomes never influence computed
/// values, only timing statistics — so functional execution (which produces
/// the trace) can run on any host thread while the cache model consumes the
/// traces later, sequentially and in schedule order, yielding hit/miss
/// accounting that is bit-identical for any host thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_ACCESSTRACE_H
#define DAECC_SIM_ACCESSTRACE_H

#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dae {
namespace sim {

/// Free-list of trace storage buffers, shared across tasks, waves and
/// concurrently running simulations. Traces are bulky and short-lived (one
/// wave each); recycling their grown capacity removes the per-wave
/// allocation churn that shows up once suite jobs run concurrently. Purely
/// a storage cache: trace *contents* never cross users, so simulated
/// results are unaffected.
class TracePool {
public:
  /// Process-wide pool (suite jobs in one process share one allocator
  /// anyway, so they share one free-list too).
  static TracePool &global() {
    static TracePool Pool;
    return Pool;
  }

  /// Returns an empty buffer, reusing pooled capacity when available.
  std::vector<std::uint64_t> acquire() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Free.empty())
      return {};
    std::vector<std::uint64_t> Buf = std::move(Free.back());
    Free.pop_back();
    ++Reuses;
    return Buf;
  }

  /// Takes \p Buf back (cleared, capacity kept). Beyond MaxPooled buffers
  /// the storage is simply freed.
  void recycle(std::vector<std::uint64_t> Buf) {
    Buf.clear();
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Free.size() < MaxPooled)
      Free.push_back(std::move(Buf));
  }

  std::uint64_t reuses() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Reuses;
  }

private:
  static constexpr std::size_t MaxPooled = 256;
  mutable std::mutex Mutex;
  std::vector<std::vector<std::uint64_t>> Free;
  std::uint64_t Reuses = 0;
};

/// One phase's memory accesses, packed one event per 64-bit word: the access
/// kind in the top two bits, the byte address below. Simulated addresses come
/// from the Loader (base 0x10000 plus footprints far below 2^62), so the tag
/// bits are always free.
class AccessTrace {
public:
  enum class Kind : std::uint64_t { Load = 0, Store = 1, Prefetch = 2 };

  static constexpr std::uint64_t AddrMask = (1ull << 62) - 1;

  void push(Kind K, std::uint64_t Addr) {
    assert((Addr & ~AddrMask) == 0 && "simulated address overflows tag bits");
    Events.push_back((static_cast<std::uint64_t>(K) << 62) |
                     (Addr & AddrMask));
  }

  static Kind kindOf(std::uint64_t Event) {
    return static_cast<Kind>(Event >> 62);
  }
  static std::uint64_t addrOf(std::uint64_t Event) { return Event & AddrMask; }

  const std::vector<std::uint64_t> &events() const { return Events; }
  bool empty() const { return Events.empty(); }
  std::size_t size() const { return Events.size(); }
  void clear() { Events.clear(); }
  /// Releases the storage (traces are bulky; the runtime frees each one right
  /// after its replay).
  void release() { std::vector<std::uint64_t>().swap(Events); }

  /// Adopts pooled storage from \p Pool before recording begins.
  void acquireFrom(TracePool &Pool) { Events = Pool.acquire(); }
  /// Hands the storage back to \p Pool (replaces release() on hot paths).
  void releaseTo(TracePool &Pool) {
    Pool.recycle(std::move(Events));
    Events.clear();
  }

private:
  std::vector<std::uint64_t> Events;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_ACCESSTRACE_H
