//===- sim/CacheSim.h - Set-associative cache hierarchy ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic set-associative LRU cache model: private L1/L2 per core and a
/// shared LLC. Only tags are modeled (data lives in sim::Memory). The paper's
/// whole premise rides on this state: the access phase warms the private
/// hierarchy so the execute phase becomes compute-bound (section 3.1).
///
/// The hierarchy is only ever advanced by the runtime's single-threaded
/// timing replay (see AccessTrace.h) so hit/miss outcomes stay deterministic;
/// each Cache is nonetheless cache-line aligned and stored by value so the
/// per-core mutable state (the LRU Tick in particular) of different simulated
/// cores never shares a host cache line.
///
/// The tag store is struct-of-arrays (tags and LRU stamps in separate dense
/// vectors) and access() is inline with a same-line-as-last-access short
/// circuit, because the replay loop streams tens of millions of events
/// through it per simulated run. Both are pure layout/speed changes: every
/// Tick increment, LRU stamp, hit count and victim choice is identical to
/// the scalar reference, so simulated profiles are bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_CACHESIM_H
#define DAECC_SIM_CACHESIM_H

#include "sim/MachineConfig.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace dae {
namespace sim {

/// Where an access was satisfied.
enum class HitLevel { L1, L2, LLC, Memory };

/// One set-associative LRU cache level (tag store only).
class alignas(64) Cache {
public:
  /// Throws std::invalid_argument when Cfg.LineBytes is zero or not a power
  /// of two (see lineShiftOf; a silently rounded-up shift would desynchronize
  /// set indexing from every line-granular consumer).
  explicit Cache(const CacheConfig &Cfg);

  /// True on hit; on miss the line is installed (evicting LRU).
  bool access(std::uint64_t Addr) {
    std::uint64_t LineAddr = Addr >> LineShift;
    // Same-line fast path: the last-touched line is always resident (it was
    // installed even on a miss), so only its LRU stamp needs refreshing.
    // State updates match the full path exactly: one Tick per access, stamp
    // the way, count the hit.
    if (LineAddr == LastLineAddr) {
      Lrus[LastWay] = ++Tick;
      ++Hits;
      return true;
    }
    std::uint64_t Set = LineAddr & (NumSets - 1);
    std::size_t Base = static_cast<std::size_t>(Set) * Assoc;
    ++Tick;
    for (unsigned W = 0; W != Assoc; ++W) {
      if (Tags[Base + W] == LineAddr) {
        Lrus[Base + W] = Tick;
        ++Hits;
        LastLineAddr = LineAddr;
        LastWay = Base + W;
        return true;
      }
    }
    // Miss: evict the first invalid way, else the least recently used.
    std::size_t Victim = Base;
    for (unsigned W = 1; W != Assoc && Tags[Victim] != InvalidTag; ++W) {
      std::size_t I = Base + W;
      if (Tags[I] == InvalidTag || Lrus[I] < Lrus[Victim])
        Victim = I;
    }
    Tags[Victim] = LineAddr;
    Lrus[Victim] = Tick;
    ++Misses;
    LastLineAddr = LineAddr;
    LastWay = Victim;
    return false;
  }

  /// True when the line is present (no state change).
  bool probe(std::uint64_t Addr) const {
    std::uint64_t LineAddr = Addr >> LineShift;
    std::uint64_t Set = LineAddr & (NumSets - 1);
    std::size_t Base = static_cast<std::size_t>(Set) * Assoc;
    for (unsigned W = 0; W != Assoc; ++W)
      if (Tags[Base + W] == LineAddr)
        return true;
    return false;
  }

  /// Drops all lines.
  void flush();

  std::uint64_t hits() const { return Hits; }
  std::uint64_t misses() const { return Misses; }

private:
  /// Tag sentinel for an invalid way. Simulated line addresses are bounded
  /// by AccessTrace's 62-bit address space so a real tag can never collide.
  static constexpr std::uint64_t InvalidTag = ~0ull;

  unsigned LineShift;
  std::uint64_t NumSets;
  unsigned Assoc;
  /// Struct-of-arrays tag store: Tags[set*Assoc + way] / Lrus[...], so the
  /// hit scan touches one dense tag run instead of strided {Tag,Lru,Valid}
  /// records. Validity is Tags[I] != InvalidTag.
  std::vector<std::uint64_t> Tags;
  std::vector<std::uint64_t> Lrus;
  std::uint64_t Tick = 0;
  std::uint64_t Hits = 0, Misses = 0;
  /// Same-line short-circuit state (see access()).
  std::uint64_t LastLineAddr = InvalidTag;
  std::size_t LastWay = 0;
};

/// Shared DRAM channel bandwidth queue for the multi-core timeline: every
/// LLC miss occupies the channel for LineBytes / BandwidthGBs ns, so
/// concurrent misses from different cores serialize and the latecomer pays a
/// queuing delay on top of its DRAM latency. Purely deterministic: state is
/// one next-free timestamp, advanced in the global-time order the timeline
/// replays events in. BandwidthGBs <= 0 disables the queue (the
/// single-workload engine's infinite-bandwidth model).
class DramChannel {
public:
  /// Ceiling on the per-line occupancy. A subnormal BandwidthGBs can
  /// overflow LineBytes / BandwidthGBs to +inf, which would saturate
  /// NextFreeNs on the first request and poison every later queuing delay
  /// (inf, or NaN once subtracted). 1e18 ns (~31 simulated years per line)
  /// is far beyond any meaningful configuration yet leaves ~1e290 requests
  /// of headroom before the queue clock itself could overflow.
  static constexpr double MaxOccupancyNs = 1e18;

  DramChannel(double BandwidthGBs, unsigned LineBytes) {
    if (BandwidthGBs > 0.0) {
      double Occ = static_cast<double>(LineBytes) / BandwidthGBs;
      // !(Occ <= Max) also catches NaN from a pathological division.
      if (!(Occ <= MaxOccupancyNs))
        Occ = MaxOccupancyNs;
      OccupancyNs = Occ;
    }
    // BandwidthGBs <= 0 (or NaN): channel disabled, OccupancyNs stays 0 and
    // requestLine is byte-identical to having no channel at all.
  }

  /// Books a line transfer issued at \p NowNs; returns the queuing delay
  /// (ns) the requester waits before its DRAM latency starts.
  double requestLine(double NowNs) {
    if (OccupancyNs == 0.0)
      return 0.0;
    double Start = NowNs > NextFreeNs ? NowNs : NextFreeNs;
    NextFreeNs = Start + OccupancyNs;
    return Start - NowNs;
  }

  /// Channel time (ns) one line transfer occupies; 0 when unmodeled.
  double occupancyNs() const { return OccupancyNs; }

private:
  double OccupancyNs = 0.0;
  double NextFreeNs = 0.0;
};

/// Per-core L1/L2 over a shared LLC.
class CacheHierarchy {
public:
  CacheHierarchy(const MachineConfig &Cfg, unsigned NumCores);

  /// Performs a (read or write) access from \p Core; returns the level that
  /// satisfied it and installs the line in every level above. On a DRAM
  /// miss, the hardware next-line prefetcher (when configured) also installs
  /// the successor line into the core's L2.
  HitLevel access(unsigned Core, std::uint64_t Addr) {
    assert(Core < L1s.size() && "core index out of range");
    if (L1s[Core].access(Addr))
      return HitLevel::L1;
    if (L2s[Core].access(Addr))
      return HitLevel::L2;
    if (Llc.access(Addr))
      return HitLevel::LLC;
    if (NextLinePrefetch) {
      // Pull the successor line toward the core so a sequential stream only
      // pays DRAM latency on every other line.
      std::uint64_t NextLine = Addr + LineBytes;
      L2s[Core].access(NextLine);
      Llc.access(NextLine);
    }
    return HitLevel::Memory;
  }

  /// Drops all lines everywhere.
  void flush();

  Cache &l1(unsigned Core) { return L1s[Core]; }
  Cache &l2(unsigned Core) { return L2s[Core]; }
  Cache &llc() { return Llc; }

private:
  bool NextLinePrefetch;
  unsigned LineBytes;
  std::vector<Cache> L1s, L2s;
  Cache Llc;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_CACHESIM_H
