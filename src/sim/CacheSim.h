//===- sim/CacheSim.h - Set-associative cache hierarchy ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic set-associative LRU cache model: private L1/L2 per core and a
/// shared LLC. Only tags are modeled (data lives in sim::Memory). The paper's
/// whole premise rides on this state: the access phase warms the private
/// hierarchy so the execute phase becomes compute-bound (section 3.1).
///
/// The hierarchy is only ever advanced by the runtime's single-threaded
/// timing replay (see AccessTrace.h) so hit/miss outcomes stay deterministic;
/// each Cache is nonetheless cache-line aligned and stored by value so the
/// per-core mutable state (the LRU Tick in particular) of different simulated
/// cores never shares a host cache line.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SIM_CACHESIM_H
#define DAECC_SIM_CACHESIM_H

#include "sim/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace dae {
namespace sim {

/// Where an access was satisfied.
enum class HitLevel { L1, L2, LLC, Memory };

/// One set-associative LRU cache level (tag store only).
class alignas(64) Cache {
public:
  explicit Cache(const CacheConfig &Cfg);

  /// True on hit; on miss the line is installed (evicting LRU).
  bool access(std::uint64_t Addr);
  /// True when the line is present (no state change).
  bool probe(std::uint64_t Addr) const;
  /// Drops all lines.
  void flush();

  std::uint64_t hits() const { return Hits; }
  std::uint64_t misses() const { return Misses; }

private:
  struct Line {
    std::uint64_t Tag = ~0ull;
    std::uint64_t Lru = 0;
    bool Valid = false;
  };

  unsigned LineShift;
  std::uint64_t NumSets;
  unsigned Assoc;
  std::vector<Line> Lines;
  std::uint64_t Tick = 0;
  std::uint64_t Hits = 0, Misses = 0;
};

/// Per-core L1/L2 over a shared LLC.
class CacheHierarchy {
public:
  CacheHierarchy(const MachineConfig &Cfg, unsigned NumCores);

  /// Performs a (read or write) access from \p Core; returns the level that
  /// satisfied it and installs the line in every level above. On a DRAM
  /// miss, the hardware next-line prefetcher (when configured) also installs
  /// the successor line into the core's L2.
  HitLevel access(unsigned Core, std::uint64_t Addr);

  /// Drops all lines everywhere.
  void flush();

  Cache &l1(unsigned Core) { return L1s[Core]; }
  Cache &l2(unsigned Core) { return L2s[Core]; }
  Cache &llc() { return Llc; }

private:
  bool NextLinePrefetch;
  unsigned LineBytes;
  std::vector<Cache> L1s, L2s;
  Cache Llc;
};

} // namespace sim
} // namespace dae

#endif // DAECC_SIM_CACHESIM_H
