//===- passes/Passes.h - Classical cleanup passes ---------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical optimizations the paper leans on: the access generator's
/// output is "optimized using traditional compile time optimizations (-O3)"
/// (section 5.2.1), and one of the stated advantages of the compiler approach
/// is deriving the access phase *after* optimizing the execute code —
/// notably inlining FFT's callees (section 6.2.2). This module provides dead
/// code elimination, constant folding, a light CFG cleanup, an inliner, and
/// the composite optimizeFunction ("-O3") driver.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_PASSES_PASSES_H
#define DAECC_PASSES_PASSES_H

#include "pm/Pass.h"

#include <memory>

namespace dae {
namespace ir {
class Function;
}

namespace passes {

/// Removes instructions with no users and no side effects; iterates to a
/// fixpoint. Returns true if anything was removed.
bool runDCE(ir::Function &F);

/// Folds constant integer arithmetic and comparisons. Returns true on change.
bool runConstantFolding(ir::Function &F);

/// Folds constant conditional branches, removes unreachable blocks (fixing
/// phis), replaces single-incoming phis, and merges straight-line block
/// chains. Returns true on change.
bool runSimplifyCFG(ir::Function &F);

/// Inlines every call whose callee is not marked no-inline and not
/// (transitively) recursive. Returns the number of calls inlined.
unsigned runInliner(ir::Function &F);

/// True if every call in \p F can be inlined (no no-inline callees, no
/// recursion). The paper refuses to build an access phase otherwise.
bool allCallsInlinable(const ir::Function &F);

/// Deletes side-effect-free loops whose values never escape (the shells left
/// behind when skeletonization discards a loop's entire body). Returns true
/// on change.
bool runLoopDeletion(ir::Function &F);

//===----------------------------------------------------------------------===//
// Pass objects (pm:: interface). Thin adapters over the free functions
// above; the pass manager supplies the shared analysis cache, timing,
// verify-each, and print-after-all instrumentation.
//===----------------------------------------------------------------------===//

/// runDCE as a pass.
class DCEPass : public pm::FunctionPass {
public:
  const char *name() const override { return "dce"; }
  pm::PreservedAnalyses run(ir::Function &F,
                            pm::FunctionAnalysisManager &FAM) override;
};

/// runConstantFolding as a pass.
class ConstantFoldingPass : public pm::FunctionPass {
public:
  const char *name() const override { return "constfold"; }
  pm::PreservedAnalyses run(ir::Function &F,
                            pm::FunctionAnalysisManager &FAM) override;
};

/// runSimplifyCFG as a pass.
class SimplifyCFGPass : public pm::FunctionPass {
public:
  const char *name() const override { return "simplifycfg"; }
  pm::PreservedAnalyses run(ir::Function &F,
                            pm::FunctionAnalysisManager &FAM) override;
};

/// runInliner as a pass.
class InlinerPass : public pm::FunctionPass {
public:
  const char *name() const override { return "inliner"; }
  pm::PreservedAnalyses run(ir::Function &F,
                            pm::FunctionAnalysisManager &FAM) override;
};

/// runLoopDeletion as a pass.
class LoopDeletionPass : public pm::FunctionPass {
public:
  const char *name() const override { return "loopdeletion"; }
  pm::PreservedAnalyses run(ir::Function &F,
                            pm::FunctionAnalysisManager &FAM) override;
};

/// The "-O3" composite as a declared pipeline: inline once, then iterate
/// {constant fold, simplify CFG, DCE} to a fixpoint.
std::unique_ptr<pm::PassManager> buildO3Pipeline();

/// The access-phase cleanup pipeline: the -O3 fixpoint interleaved with
/// dead-loop deletion, iterated to an outer fixpoint. Subsumes the
/// historical "optimize; delete loops; optimize again" sequence of the
/// skeleton generator.
std::unique_ptr<pm::PassManager> buildAccessCleanupPipeline();

/// The "-O3" composite: runs buildO3Pipeline over \p F with the caller's
/// analysis cache (invalidated as the passes report changes).
void optimizeFunction(ir::Function &F, pm::FunctionAnalysisManager &FAM);

/// Convenience overload with a throwaway analysis cache.
void optimizeFunction(ir::Function &F);

} // namespace passes
} // namespace dae

#endif // DAECC_PASSES_PASSES_H
