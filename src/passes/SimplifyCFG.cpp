//===- passes/SimplifyCFG.cpp - CFG cleanup --------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "passes/Passes.h"
#include "support/Casting.h"

#include <set>
#include <vector>

using namespace dae;
using namespace dae::ir;

namespace {

/// Folds branches on constant conditions into unconditional branches.
bool foldConstantBranches(Function &F) {
  bool Changed = false;
  for (const auto &BB : F) {
    auto *Br = dyn_cast_if_present<BrInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    auto *C = dyn_cast<ConstantInt>(Br->getCondition());
    if (!C)
      continue;
    BasicBlock *Live = C->getValue() != 0 ? Br->getTrueDest() : Br->getFalseDest();
    BasicBlock *Dead = C->getValue() != 0 ? Br->getFalseDest() : Br->getTrueDest();
    if (Live == Dead) {
      Br->makeUnconditional(Live);
      Changed = true;
      continue;
    }
    // Unhook phi edges in the no-longer-reached successor.
    for (PhiInst *Phi : Dead->phis()) {
      int Idx = Phi->getBlockIndex(BB.get());
      if (Idx >= 0)
        Phi->removeIncoming(static_cast<unsigned>(Idx));
    }
    Br->makeUnconditional(Live);
    Changed = true;
  }
  return Changed;
}

/// Deletes blocks unreachable from the entry, fixing phis in survivors.
bool removeUnreachableBlocks(Function &F) {
  if (F.empty())
    return false;
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.getEntry()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    for (BasicBlock *S : BB->successors())
      Work.push_back(S);
  }

  std::vector<BasicBlock *> DeadBlocks;
  for (const auto &BB : F)
    if (!Reachable.count(BB.get()))
      DeadBlocks.push_back(BB.get());
  if (DeadBlocks.empty())
    return false;

  // Remove phi edges from dead predecessors in surviving blocks.
  for (BasicBlock *Dead : DeadBlocks)
    for (BasicBlock *Succ : Dead->successors()) {
      if (!Reachable.count(Succ))
        continue;
      for (PhiInst *Phi : Succ->phis()) {
        int Idx = Phi->getBlockIndex(Dead);
        if (Idx >= 0)
          Phi->removeIncoming(static_cast<unsigned>(Idx));
      }
    }

  // Drop operands of all dead instructions first so cross-references among
  // dead blocks unwind, then erase the blocks.
  for (BasicBlock *Dead : DeadBlocks)
    for (const auto &I : *Dead)
      I->dropAllOperands();
  for (BasicBlock *Dead : DeadBlocks)
    F.eraseBlock(Dead);
  return true;
}

/// Replaces single-incoming phis with their value.
bool simplifyTrivialPhis(Function &F) {
  bool Changed = false;
  for (const auto &BB : F) {
    std::vector<PhiInst *> Phis = BB->phis();
    for (PhiInst *Phi : Phis) {
      if (Phi->getNumIncoming() != 1)
        continue;
      Value *V = Phi->getIncomingValue(0);
      if (V != Phi)
        Phi->replaceAllUsesWith(V);
      BB->erase(Phi);
      Changed = true;
    }
  }
  return Changed;
}

/// Merges BB -> S when BB unconditionally branches to S, S has no other
/// predecessors, and S starts with no phi.
bool mergeBlockChains(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (const auto &BBPtr : F) {
      BasicBlock *BB = BBPtr.get();
      auto *Br = dyn_cast_if_present<BrInst>(BB->getTerminator());
      if (!Br || Br->isConditional())
        continue;
      BasicBlock *S = Br->getTrueDest();
      if (S == BB || S == F.getEntry())
        continue;
      if (S->predecessors().size() != 1 || !S->phis().empty())
        continue;

      // Move S's instructions into BB, replacing BB's terminator.
      BB->erase(Br);
      std::vector<Instruction *> ToMove;
      for (const auto &I : *S)
        ToMove.push_back(I.get());
      for (Instruction *I : ToMove)
        BB->append(S->detach(I));

      // Phis in S's successors now see BB as the predecessor.
      for (BasicBlock *Succ : BB->successors())
        for (PhiInst *Phi : Succ->phis()) {
          int Idx = Phi->getBlockIndex(S);
          if (Idx >= 0)
            Phi->setIncomingBlock(static_cast<unsigned>(Idx), BB);
        }

      F.eraseBlock(S);
      Changed = true;
      LocalChange = true;
      break; // Iteration invalidated; restart.
    }
  }
  return Changed;
}

} // namespace

bool passes::runSimplifyCFG(Function &F) {
  bool Changed = false;
  Changed |= foldConstantBranches(F);
  Changed |= removeUnreachableBlocks(F);
  Changed |= simplifyTrivialPhis(F);
  Changed |= mergeBlockChains(F);
  return Changed;
}
