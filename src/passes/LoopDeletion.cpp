//===- passes/LoopDeletion.cpp - Dead loop removal --------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deletes loops whose bodies have no side effects and whose values are not
/// used outside the loop. Skeleton access phases need this: once the marking
/// algorithm discards a loop's stores and computation, the remaining
/// IV-and-branch shell would still burn access-phase cycles.
///
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "passes/Passes.h"
#include "support/Casting.h"

#include <set>

using namespace dae;
using namespace dae::ir;
using dae::analysis::Loop;
using dae::analysis::LoopInfo;

namespace {

bool tryDeleteLoop(const Loop &L) {
  BasicBlock *Preheader = L.getPreheader();
  BasicBlock *Exit = L.getExitBlock();
  if (!Preheader || !Exit || L.contains(Exit))
    return false;

  // Reject loops with side effects or values escaping the loop.
  for (BasicBlock *BB : L.blocks()) {
    for (const auto &I : *BB) {
      if (isa<StoreInst, PrefetchInst, CallInst>(I.get()))
        return false;
      for (Instruction *U : I->users())
        if (!L.contains(U->getParent()))
          return false;
    }
  }

  // The exit block must not depend on which loop block branched to it.
  for (PhiInst *Phi : Exit->phis()) {
    (void)Phi;
    return false;
  }

  // Retarget the preheader straight to the exit; unreachable-block cleanup
  // removes the loop body.
  auto *Br = dyn_cast_if_present<BrInst>(Preheader->getTerminator());
  if (!Br)
    return false;
  if (Br->isConditional()) {
    if (Br->getTrueDest() == L.getHeader())
      Br->setTrueDest(Exit);
    if (Br->getFalseDest() == L.getHeader())
      Br->setFalseDest(Exit);
  } else {
    Br->setTrueDest(Exit);
  }
  return true;
}

} // namespace

bool passes::runLoopDeletion(Function &F) {
  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    LoopInfo LI(F);
    // Innermost first so nests collapse outward.
    for (Loop *L : LI.loopsInnermostFirst()) {
      if (tryDeleteLoop(*L)) {
        runSimplifyCFG(F); // Sweep the now-unreachable body.
        runDCE(F);
        Changed = true;
        EverChanged = true;
        break; // LoopInfo invalidated.
      }
    }
  }
  return EverChanged;
}
