//===- passes/DCE.cpp - Dead code elimination ------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "passes/Passes.h"
#include "support/Casting.h"

#include <vector>

using namespace dae;
using namespace dae::ir;

bool passes::runDCE(Function &F) {
  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F) {
      // Collect first: erasing invalidates iteration.
      std::vector<Instruction *> Dead;
      for (const auto &I : *BB) {
        if (I->hasUsers() || I->hasSideEffects())
          continue;
        // Loads are side-effect free for DCE purposes: the access skeleton
        // relies on exactly this to drop loads whose value feeds only the
        // discarded computation (section 5.2.1).
        Dead.push_back(I.get());
      }
      // Erase in reverse so intra-block use chains unwind cleanly.
      for (auto It = Dead.rbegin(); It != Dead.rend(); ++It) {
        if ((*It)->hasUsers())
          continue; // A later dead instruction still used it; next round.
        BB->erase(*It);
        Changed = true;
        EverChanged = true;
      }
    }
  }
  return EverChanged;
}
