//===- passes/Inliner.cpp - Function inlining ------------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inlines direct calls. The paper requires every call inside a task to be
/// inlined before an access phase may be generated (section 5.2.2 step 1);
/// FFT is the showcase (section 6.2.2): its tasks call helper functions whose
/// loop nests are merged by inlining + cleanup before skeletonization.
///
//===----------------------------------------------------------------------===//

#include "ir/Cloner.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "passes/Passes.h"
#include "support/Casting.h"

#include <set>
#include <vector>

using namespace dae;
using namespace dae::ir;

namespace {

/// True when inlining \p Callee (transitively) could recurse into itself or
/// into \p Caller.
bool isRecursive(const Function *Caller, const Function *Callee) {
  std::set<const Function *> Seen;
  std::vector<const Function *> Work{Callee};
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    if (!Seen.insert(F).second)
      continue;
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (const auto *Call = dyn_cast<CallInst>(I.get())) {
          if (Call->getCallee() == Caller || Call->getCallee() == Callee)
            return true;
          Work.push_back(Call->getCallee());
        }
  }
  return false;
}

bool isInlinable(const Function *Caller, const CallInst *Call) {
  const Function *Callee = Call->getCallee();
  return !Callee->isNoInline() && !Callee->empty() &&
         !isRecursive(Caller, Callee);
}

/// Inlines one call site. Returns false when the call cannot be inlined.
bool inlineCall(Function &F, CallInst *Call) {
  if (!isInlinable(&F, Call))
    return false;
  const Function *Callee = Call->getCallee();
  BasicBlock *BB = Call->getParent();

  // Split the block after the call: everything following it moves to a
  // continuation block.
  BasicBlock *Cont = F.createBlock(BB->getName() + ".inlcont");
  std::vector<Instruction *> Tail;
  bool Found = false;
  for (const auto &I : *BB) {
    if (Found)
      Tail.push_back(I.get());
    if (I.get() == Call)
      Found = true;
  }
  assert(Found && "call not in its parent block");
  for (Instruction *I : Tail)
    Cont->append(BB->detach(I));

  // Phis downstream that named BB as predecessor now flow from Cont.
  for (BasicBlock *Succ : Cont->successors())
    for (PhiInst *Phi : Succ->phis()) {
      int Idx = Phi->getBlockIndex(BB);
      if (Idx >= 0)
        Phi->setIncomingBlock(static_cast<unsigned>(Idx), Cont);
    }

  // Map callee formals to actuals.
  ValueMap VM;
  for (unsigned I = 0; I != Callee->getNumArgs(); ++I)
    VM[Callee->getArg(I)] = Call->getArg(I);

  // Create destination blocks.
  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &CB : *Callee)
    BlockMap[CB.get()] = F.createBlock(Callee->getName() + "." + CB->getName());

  // Clone bodies; rets become branches to Cont.
  std::vector<std::pair<const PhiInst *, PhiInst *>> PendingPhis;
  std::vector<std::pair<BasicBlock *, Value *>> ReturnEdges;
  for (const auto &CB : *Callee) {
    BasicBlock *NewBB = BlockMap[CB.get()];
    for (const auto &I : *CB) {
      if (const auto *P = dyn_cast<PhiInst>(I.get())) {
        auto NewPhi = std::make_unique<PhiInst>(P->getType());
        PendingPhis.emplace_back(P, NewPhi.get());
        VM[P] = NewPhi.get();
        NewBB->append(std::move(NewPhi));
        continue;
      }
      if (const auto *Ret = dyn_cast<RetInst>(I.get())) {
        Value *RetVal = nullptr;
        if (Ret->hasReturnValue()) {
          Value *Orig = Ret->getReturnValue();
          auto It = VM.find(Orig);
          RetVal = It == VM.end() ? Orig : It->second;
        }
        NewBB->append(std::make_unique<BrInst>(Cont));
        ReturnEdges.emplace_back(NewBB, RetVal);
        continue;
      }
      auto NewI = cloneInstruction(*I, VM, BlockMap);
      VM[I.get()] = NewI.get();
      NewBB->append(std::move(NewI));
    }
  }
  for (auto &[OldPhi, NewPhi] : PendingPhis)
    for (unsigned J = 0; J != OldPhi->getNumIncoming(); ++J) {
      Value *V = OldPhi->getIncomingValue(J);
      auto It = VM.find(V);
      NewPhi->addIncoming(It == VM.end() ? V : It->second,
                          BlockMap.at(OldPhi->getIncomingBlock(J)));
    }

  // Wire the return value into users of the call.
  if (Call->hasUsers()) {
    assert(!ReturnEdges.empty() && "non-void call into function with no ret");
    Value *Result = nullptr;
    if (ReturnEdges.size() == 1) {
      Result = ReturnEdges.front().second;
    } else {
      auto Phi = std::make_unique<PhiInst>(Call->getType());
      for (auto &[RetBB, RetVal] : ReturnEdges)
        Phi->addIncoming(RetVal, RetBB);
      Result = Phi.get();
      if (Cont->empty())
        Cont->append(std::move(Phi));
      else
        Cont->insertBefore(std::move(Phi), Cont->front());
    }
    assert(Result && "missing return value for used call");
    Call->replaceAllUsesWith(Result);
  }

  // Replace the call with a branch into the inlined entry.
  BB->erase(Call);
  BB->append(std::make_unique<BrInst>(BlockMap.at(Callee->getEntry())));
  return true;
}

CallInst *findInlinableCall(Function &F) {
  for (const auto &BB : F)
    for (const auto &I : *BB)
      if (auto *Call = dyn_cast<CallInst>(I.get()))
        if (isInlinable(&F, Call))
          return Call;
  return nullptr;
}

} // namespace

unsigned passes::runInliner(Function &F) {
  unsigned Count = 0;
  while (CallInst *Call = findInlinableCall(F)) {
    if (!inlineCall(F, Call))
      break;
    ++Count;
    assert(Count < 10000 && "runaway inliner");
  }
  return Count;
}

bool passes::allCallsInlinable(const Function &F) {
  for (const auto &BB : F)
    for (const auto &I : *BB)
      if (const auto *Call = dyn_cast<CallInst>(I.get()))
        if (Call->getCallee()->isNoInline() || Call->getCallee()->empty() ||
            isRecursive(&F, Call->getCallee()))
          return false;
  return true;
}
