//===- passes/ConstantFolding.cpp - Constant folding ----------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Module.h"
#include "passes/Passes.h"
#include "support/Casting.h"

#include <optional>
#include <vector>

using namespace dae;
using namespace dae::ir;

namespace {

std::optional<std::int64_t> foldIntBinOp(BinOp Op, std::int64_t L,
                                         std::int64_t R) {
  switch (Op) {
  case BinOp::Add:
    return L + R;
  case BinOp::Sub:
    return L - R;
  case BinOp::Mul:
    return L * R;
  case BinOp::SDiv:
    if (R == 0)
      return std::nullopt;
    return L / R;
  case BinOp::SRem:
    if (R == 0)
      return std::nullopt;
    return L % R;
  case BinOp::And:
    return L & R;
  case BinOp::Or:
    return L | R;
  case BinOp::Xor:
    return L ^ R;
  case BinOp::Shl:
    if (R < 0 || R > 63)
      return std::nullopt;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(L) << R);
  case BinOp::AShr:
    if (R < 0 || R > 63)
      return std::nullopt;
    return L >> R;
  default:
    return std::nullopt;
  }
}

std::optional<std::int64_t> foldCmp(CmpPred P, std::int64_t L,
                                    std::int64_t R) {
  switch (P) {
  case CmpPred::EQ:
    return L == R;
  case CmpPred::NE:
    return L != R;
  case CmpPred::SLT:
    return L < R;
  case CmpPred::SLE:
    return L <= R;
  case CmpPred::SGT:
    return L > R;
  case CmpPred::SGE:
    return L >= R;
  default:
    return std::nullopt;
  }
}

} // namespace

bool passes::runConstantFolding(Function &F) {
  Module *M = F.getParent();
  if (!M)
    return false;

  bool EverChanged = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F) {
      std::vector<Instruction *> Worklist;
      for (const auto &I : *BB)
        Worklist.push_back(I.get());

      for (Instruction *I : Worklist) {
        Value *Replacement = nullptr;

        if (auto *Bin = dyn_cast<BinaryInst>(I)) {
          auto *L = dyn_cast<ConstantInt>(Bin->getLHS());
          auto *R = dyn_cast<ConstantInt>(Bin->getRHS());
          if (L && R) {
            if (auto V =
                    foldIntBinOp(Bin->getOpcode(), L->getValue(), R->getValue()))
              Replacement = M->getInt(*V);
          } else if (R && !isFloatBinOp(Bin->getOpcode())) {
            // Identity simplifications: x+0, x-0, x*1, x<<0, x|0, x^0.
            std::int64_t C = R->getValue();
            BinOp Op = Bin->getOpcode();
            if ((C == 0 && (Op == BinOp::Add || Op == BinOp::Sub ||
                            Op == BinOp::Or || Op == BinOp::Xor ||
                            Op == BinOp::Shl || Op == BinOp::AShr)) ||
                (C == 1 && (Op == BinOp::Mul || Op == BinOp::SDiv)))
              Replacement = Bin->getLHS();
            else if (C == 0 && Op == BinOp::Mul)
              Replacement = M->getInt(0);
          } else if (L && !isFloatBinOp(Bin->getOpcode())) {
            std::int64_t C = L->getValue();
            BinOp Op = Bin->getOpcode();
            if (C == 0 && (Op == BinOp::Add || Op == BinOp::Or ||
                           Op == BinOp::Xor))
              Replacement = Bin->getRHS();
            else if (C == 1 && Op == BinOp::Mul)
              Replacement = Bin->getRHS();
            else if (C == 0 && Op == BinOp::Mul)
              Replacement = M->getInt(0);
          }
        } else if (auto *Cmp = dyn_cast<CmpInst>(I)) {
          auto *L = dyn_cast<ConstantInt>(Cmp->getLHS());
          auto *R = dyn_cast<ConstantInt>(Cmp->getRHS());
          if (L && R)
            if (auto V = foldCmp(Cmp->getPredicate(), L->getValue(),
                                 R->getValue()))
              Replacement = M->getInt(*V);
        } else if (auto *Sel = dyn_cast<SelectInst>(I)) {
          if (auto *C = dyn_cast<ConstantInt>(Sel->getCondition()))
            Replacement =
                C->getValue() != 0 ? Sel->getTrueValue() : Sel->getFalseValue();
        } else if (auto *Phi = dyn_cast<PhiInst>(I)) {
          if (Phi->getNumIncoming() == 1)
            Replacement = Phi->getIncomingValue(0);
        }

        if (Replacement && Replacement != I) {
          I->replaceAllUsesWith(Replacement);
          Changed = true;
          EverChanged = true;
        }
      }
    }
    if (Changed)
      runDCE(F);
  }
  return EverChanged;
}
