//===- passes/PassObjects.cpp - pm:: adapters and pipelines ----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass objects wrapping this directory's free-function passes, plus the
/// declared pipelines. optimizeFunction — historically a hand-rolled loop in
/// Inliner.cpp — is now buildO3Pipeline() run through the pass manager, so
/// every caller shares the instrumentation and the fixpoint logic lives in
/// exactly one place (pm::FixpointPassManager).
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

using namespace dae;
using namespace dae::passes;
using pm::PreservedAnalyses;

static PreservedAnalyses fromChanged(bool Changed) {
  return Changed ? PreservedAnalyses::none() : PreservedAnalyses::all();
}

PreservedAnalyses DCEPass::run(ir::Function &F,
                               pm::FunctionAnalysisManager &) {
  return fromChanged(runDCE(F));
}

PreservedAnalyses ConstantFoldingPass::run(ir::Function &F,
                                           pm::FunctionAnalysisManager &) {
  return fromChanged(runConstantFolding(F));
}

PreservedAnalyses SimplifyCFGPass::run(ir::Function &F,
                                       pm::FunctionAnalysisManager &) {
  return fromChanged(runSimplifyCFG(F));
}

PreservedAnalyses InlinerPass::run(ir::Function &F,
                                   pm::FunctionAnalysisManager &) {
  return fromChanged(runInliner(F) > 0);
}

PreservedAnalyses LoopDeletionPass::run(ir::Function &F,
                                        pm::FunctionAnalysisManager &) {
  return fromChanged(runLoopDeletion(F));
}

/// {constant fold, simplify CFG, DCE} to a fixpoint — the cleanup core both
/// pipelines share.
static std::unique_ptr<pm::FixpointPassManager> buildCleanupFixpoint() {
  auto Fix = std::make_unique<pm::FixpointPassManager>("o3.fixpoint");
  Fix->add<ConstantFoldingPass>();
  Fix->add<SimplifyCFGPass>();
  Fix->add<DCEPass>();
  return Fix;
}

std::unique_ptr<pm::PassManager> passes::buildO3Pipeline() {
  auto PM = std::make_unique<pm::PassManager>("o3");
  PM->add<InlinerPass>();
  PM->addPass(buildCleanupFixpoint());
  return PM;
}

std::unique_ptr<pm::PassManager> passes::buildAccessCleanupPipeline() {
  // Generated access phases are call-free (the task was fully inlined
  // before cloning), so the inliner is omitted; dead-loop deletion exposes
  // more cleanup and vice versa, hence the outer fixpoint.
  auto Outer = std::make_unique<pm::FixpointPassManager>("access.cleanup");
  Outer->addPass(buildCleanupFixpoint());
  Outer->add<LoopDeletionPass>();
  return Outer;
}

void passes::optimizeFunction(ir::Function &F,
                              pm::FunctionAnalysisManager &FAM) {
  buildO3Pipeline()->run(F, FAM);
}

void passes::optimizeFunction(ir::Function &F) {
  pm::FunctionAnalysisManager FAM;
  optimizeFunction(F, FAM);
}
