//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact rational number over 64-bit integers, with 128-bit intermediates
/// and always-on overflow checking. The polyhedral library (Fourier-Motzkin,
/// vertex enumeration, convex hulls) is built on this type; loop nests in the
/// paper are depth <= 3 with small coefficients, so 64 bits of reduced
/// magnitude is ample in practice. When a reduced result does not fit,
/// arithmetic throws RationalOverflow in every build type — callers that make
/// guard decisions from lattice-point counts (the section 5.1.2 hull test)
/// must catch it and fail safe rather than act on a wrapped value.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SUPPORT_RATIONAL_H
#define DAECC_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dae {

/// Thrown when a rational result's reduced magnitude exceeds 64 bits.
/// Checked unconditionally (not an assert): a silently wrapped lattice-point
/// count would flip the hull-vs-skeleton guard without any diagnostic.
class RationalOverflow : public std::overflow_error {
public:
  RationalOverflow()
      : std::overflow_error(
            "rational arithmetic overflow: reduced magnitude exceeds 64 bits") {
  }
};

/// Exact rational p/q with q > 0 and gcd(p, q) == 1.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(std::int64_t N) : Num(N), Den(1) {}
  Rational(std::int64_t N, std::int64_t D);

  std::int64_t num() const { return Num; }
  std::int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }

  /// Integer value; asserts the value is integral.
  std::int64_t asInteger() const {
    assert(isInteger() && "rational is not an integer");
    return Num;
  }

  /// Largest integer <= value.
  std::int64_t floor() const;
  /// Smallest integer >= value.
  std::int64_t ceil() const;

  double toDouble() const {
    return static_cast<double>(Num) / static_cast<double>(Den);
  }

  Rational operator-() const;
  Rational operator+(const Rational &R) const;
  Rational operator-(const Rational &R) const;
  Rational operator*(const Rational &R) const;
  Rational operator/(const Rational &R) const;

  Rational &operator+=(const Rational &R) { return *this = *this + R; }
  Rational &operator-=(const Rational &R) { return *this = *this - R; }
  Rational &operator*=(const Rational &R) { return *this = *this * R; }
  Rational &operator/=(const Rational &R) { return *this = *this / R; }

  bool operator==(const Rational &R) const {
    return Num == R.Num && Den == R.Den;
  }
  bool operator!=(const Rational &R) const { return !(*this == R); }
  bool operator<(const Rational &R) const;
  bool operator<=(const Rational &R) const { return !(R < *this); }
  bool operator>(const Rational &R) const { return R < *this; }
  bool operator>=(const Rational &R) const { return !(*this < R); }

  /// Renders as "p" or "p/q".
  std::string str() const;

private:
  std::int64_t Num;
  std::int64_t Den;
};

/// Greatest common divisor of |A| and |B|; gcd(0, 0) == 0.
std::int64_t gcd64(std::int64_t A, std::int64_t B);
/// Least common multiple of |A| and |B|; throws RationalOverflow when the
/// result does not fit in 64 bits.
std::int64_t lcm64(std::int64_t A, std::int64_t B);

} // namespace dae

#endif // DAECC_SUPPORT_RATIONAL_H
