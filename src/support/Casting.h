//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled opt-in RTTI in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by exposing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SUPPORT_CASTING_H
#define DAECC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace dae {

/// Returns true if \p Val is an instance of \p To (or of any of the listed
/// alternatives), judged by the target type's `classof`.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace dae

#endif // DAECC_SUPPORT_CASTING_H
