//===- support/Format.h - printf-style string formatting --------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting helpers used throughout the library in place of iostreams
/// (which the coding standard forbids in library code).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SUPPORT_FORMAT_H
#define DAECC_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace dae {

/// printf-style formatting into a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
strfmt(const char *Fmt, ...);

/// vprintf-style formatting into a std::string.
std::string vstrfmt(const char *Fmt, va_list Args);

} // namespace dae

#endif // DAECC_SUPPORT_FORMAT_H
