//===- support/Format.cpp - printf-style string formatting ----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>
#include <vector>

using namespace dae;

std::string dae::vstrfmt(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::vector<char> Buf(static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, Args);
  return std::string(Buf.data(), static_cast<size_t>(Needed));
}

std::string dae::strfmt(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string S = vstrfmt(Fmt, Args);
  va_end(Args);
  return S;
}
