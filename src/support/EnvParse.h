//===- support/EnvParse.h - Validated environment parsing -------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One validated parse for every DAECC_* environment knob. The contract is
/// the one BenchOptions::parse and TracePool::maxTotalBytesFromEnv
/// established: a value that is set but malformed is a hard configuration
/// error (exit 2), never a silent fall-back to the default — a sweep that
/// exported DAECC_JOBS=8x and silently ran sequentially would mislabel its
/// own results. Unset variables return the caller's default.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SUPPORT_ENVPARSE_H
#define DAECC_SUPPORT_ENVPARSE_H

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace dae {
namespace support {

/// Strict positive integer from the environment. Unset returns \p Default;
/// garbage (non-numeric, trailing junk, zero, negative, or out of range for
/// unsigned — strtoll saturates on overflow, and a saturated or too-wide
/// value truncated through the cast would silently misconfigure, e.g.
/// DAECC_JOBS=4294967297 reading as 1) exits 2 with a diagnostic naming the
/// variable.
inline unsigned envUnsignedOr(const char *Name, unsigned Default) {
  const char *Env = std::getenv(Name);
  if (!Env)
    return Default;
  char *End = nullptr;
  errno = 0;
  long long N = std::strtoll(Env, &End, 10);
  if (End == Env || *End != '\0' || errno == ERANGE || N <= 0 ||
      N > static_cast<long long>(std::numeric_limits<unsigned>::max())) {
    std::fprintf(stderr,
                 "error: invalid %s value '%s' (expected a positive "
                 "integer)\n",
                 Name, Env);
    std::exit(2);
  }
  return static_cast<unsigned>(N);
}

/// Strict boolean from the environment, accepting only "0" and "1". Unset
/// returns \p Default; anything else ("true", "yes", "2", "") exits 2 — the
/// historical `Env[0] == '1'` parse silently read DAECC_DAE_VERIFY=true as
/// *off*, the exact inversion of what the user asked for.
inline bool envBool01Or(const char *Name, bool Default) {
  const char *Env = std::getenv(Name);
  if (!Env)
    return Default;
  if (std::strcmp(Env, "0") == 0)
    return false;
  if (std::strcmp(Env, "1") == 0)
    return true;
  std::fprintf(stderr, "error: invalid %s value '%s' (expected 0 or 1)\n",
               Name, Env);
  std::exit(2);
}

/// Strict positive byte count from a MiB-denominated environment variable.
/// Unset returns \p DefaultBytes; garbage exits 2, as does a count whose
/// byte value would not fit std::size_t (the << 20 must not overflow).
inline std::size_t envMiBOr(const char *Name, std::size_t DefaultBytes) {
  const char *Env = std::getenv(Name);
  if (!Env)
    return DefaultBytes;
  char *End = nullptr;
  errno = 0;
  long long Mb = std::strtoll(Env, &End, 10);
  if (End == Env || *End != '\0' || errno == ERANGE || Mb <= 0 ||
      static_cast<unsigned long long>(Mb) >
          (std::numeric_limits<std::size_t>::max() >> 20)) {
    std::fprintf(stderr,
                 "error: invalid %s value '%s' (expected a positive integer "
                 "number of MiB)\n",
                 Name, Env);
    std::exit(2);
  }
  return static_cast<std::size_t>(Mb) << 20;
}

} // namespace support
} // namespace dae

#endif // DAECC_SUPPORT_ENVPARSE_H
