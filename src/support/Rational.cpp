//===- support/Rational.cpp - Exact rational arithmetic -------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include <cstdlib>

using namespace dae;

namespace {

/// Narrows a 128-bit intermediate back to 64 bits. Throws RationalOverflow
/// when the value does not fit — unconditionally, in every build type, so a
/// wrapped lattice-point count can never silently steer a hull decision.
std::int64_t narrow(__int128 V) {
  if (V > INT64_MAX || V < INT64_MIN)
    throw RationalOverflow();
  return static_cast<std::int64_t>(V);
}

} // namespace

std::int64_t dae::gcd64(std::int64_t A, std::int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    std::int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

std::int64_t dae::lcm64(std::int64_t A, std::int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  std::int64_t G = gcd64(A, B);
  return narrow(static_cast<__int128>(A / G) * B < 0
                    ? -(static_cast<__int128>(A / G) * B)
                    : static_cast<__int128>(A / G) * B);
}

Rational::Rational(std::int64_t N, std::int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  std::int64_t G = gcd64(N, D);
  if (G > 1) {
    N /= G;
    D /= G;
  }
  Num = N;
  Den = D == 0 ? 1 : D;
}

std::int64_t Rational::floor() const {
  if (Num >= 0)
    return Num / Den;
  return -((-Num + Den - 1) / Den);
}

std::int64_t Rational::ceil() const {
  if (Num >= 0)
    return (Num + Den - 1) / Den;
  return -((-Num) / Den);
}

Rational Rational::operator-() const {
  Rational R;
  R.Num = -Num;
  R.Den = Den;
  return R;
}

Rational Rational::operator+(const Rational &R) const {
  __int128 N = static_cast<__int128>(Num) * R.Den +
               static_cast<__int128>(R.Num) * Den;
  __int128 D = static_cast<__int128>(Den) * R.Den;
  // Reduce in 128 bits before narrowing so transient magnitudes cancel.
  __int128 A = N < 0 ? -N : N, B = D;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  if (A > 1) {
    N /= A;
    D /= A;
  }
  return Rational(narrow(N), narrow(D));
}

Rational Rational::operator-(const Rational &R) const { return *this + (-R); }

Rational Rational::operator*(const Rational &R) const {
  // Cross-reduce first to keep intermediates small.
  std::int64_t G1 = gcd64(Num, R.Den);
  std::int64_t G2 = gcd64(R.Num, Den);
  __int128 N = static_cast<__int128>(Num / G1) * (R.Num / G2);
  __int128 D = static_cast<__int128>(Den / G2) * (R.Den / G1);
  return Rational(narrow(N), narrow(D));
}

Rational Rational::operator/(const Rational &R) const {
  assert(!R.isZero() && "rational division by zero");
  return *this * Rational(R.Den, R.Num);
}

bool Rational::operator<(const Rational &R) const {
  return static_cast<__int128>(Num) * R.Den <
         static_cast<__int128>(R.Num) * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
