//===- support/MathUtil.h - Small numeric helpers ---------------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometric mean and a deterministic xorshift RNG. The evaluation harness
/// reports geometric means exactly as Figure 3 of the paper does, and all
/// synthetic workload inputs are generated from the seeded RNG so every run
/// of the benchmark suite is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_SUPPORT_MATHUTIL_H
#define DAECC_SUPPORT_MATHUTIL_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dae {

/// Geometric mean of strictly positive values.
inline double geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of empty set");
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Deterministic xorshift64* generator; never seeded from the clock.
class SplitMixRng {
public:
  explicit SplitMixRng(std::uint64_t Seed) : State(Seed ? Seed : 0x9e3779b9ULL) {}

  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  std::uint64_t State;
};

} // namespace dae

#endif // DAECC_SUPPORT_MATHUTIL_H
