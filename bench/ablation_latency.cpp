//===- bench/ablation_latency.cpp - DVFS transition latency sweep ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps the DVFS transition latency from the paper's ideal 0 ns to 4 us,
/// reporting the geomean EDP improvement of Manual and Auto DAE under the
/// Optimal-EDP policy. Section 6.1 studies exactly the 0 ns vs 500 ns pair;
/// the sweep shows where per-task DVFS stops paying (transitions eat the
/// 5-100 us task phases of section 3.1).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ServeUtil.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"
#include "support/MathUtil.h"

#include <cstdio>
#include <vector>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  if (Opts.Serve)
    return serveMain(Opts, "ablation_latency");
  workloads::Scale S = Opts.Scale;
  sim::MachineConfig Cfg = Opts.machineConfig();
  unsigned Jobs = Opts.Jobs;
  const bool PassStats = Opts.PassStats;

  auto Workloads = workloads::buildAll(S);
  std::vector<SuiteItem> Items;
  for (auto &W : Workloads)
    Items.push_back({W.get(), nullptr});

  GenerationMemo Memo;
  SuiteConfig SC;
  SC.Jobs = Jobs;
  SC.SimThreads = Cfg.SimThreads;
  SC.Memo = &Memo;
  std::vector<AppResult> Results = runSuite(Items, Cfg, SC);

  std::printf("DVFS transition latency sweep (Optimal-EDP policy, geomean "
              "over all 7 apps)\n");
  std::printf("%12s %16s %16s %14s\n", "latency(ns)", "ManualDAE EDP",
              "AutoDAE EDP", "Auto time/CAE");
  printRule(64);
  for (double Latency : {0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    std::vector<double> Man, Auto, AutoTime;
    for (const AppResult &R : Results) {
      Fig3Row Row = priceFig3(R, Cfg, Latency);
      Man.push_back(Row.ManualOpt[2]);
      Auto.push_back(Row.AutoOpt[2]);
      AutoTime.push_back(Row.AutoOpt[0]);
    }
    std::printf("%12.0f %16.3f %16.3f %14.3f\n", Latency,
                geometricMean(Man), geometricMean(Auto),
                geometricMean(AutoTime));
  }
  printRule(64);
  std::printf("(paper: 0 ns -> Auto 29%% better EDP; 500 ns -> 25%%, with "
              "~4%% time penalty)\n");
  if (PassStats)
    pm::PipelineStats::get().print(stdout);
  return 0;
}
