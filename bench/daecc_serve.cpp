//===- bench/daecc_serve.cpp - Standalone experiment daemon ----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment daemon as its own binary: `daecc-serve` is exactly the
/// `--serve` mode of the suite drivers (bench/ServeUtil.h) without the
/// one-shot suite attached. Flags it shares with the drivers:
///
///   --socket=PATH       Unix socket to listen on (default daecc.sock)
///   --cache-dir=PATH    persistent result cache (or DAECC_CACHE_DIR)
///   --jobs=N            concurrent compute jobs
///   --sim-threads=N     functional threads per job (pool-clamped)
///
/// Protocol and request schema: src/service/ExperimentService.h. Stop it
/// with `daecc-client --socket=PATH shutdown` (or just kill it — the result
/// cache and BENCH json are crash-safe by construction).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ServeUtil.h"

int main(int Argc, char **Argv) {
  dae::bench::BenchOptions Opts = dae::bench::BenchOptions::parse(Argc, Argv);
  return dae::bench::serveMain(Opts, "daecc_serve");
}
