//===- bench/micro_poly.cpp - Polyhedral library microbenchmarks ------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the polyhedral substrate: FM
/// elimination, emptiness (simplex), hull-of-union, lattice-point counting,
/// and Ehrhart fitting — the operations the access generator performs at
/// compile time for every affine task.
///
//===----------------------------------------------------------------------===//

#include "poly/ConvexHull.h"
#include "poly/Ehrhart.h"
#include "poly/Polyhedron.h"

#include <benchmark/benchmark.h>

using namespace dae::poly;

namespace {

/// Triangular iteration domain 0 <= j <= i < n over (i, j, n-param).
Polyhedron triangle() {
  Polyhedron P(3);
  P.addLowerBound(0, 0);
  P.addInequality({-1, 0, 1}, -1); // i <= n - 1.
  P.addLowerBound(1, 0);
  P.addInequality({1, -1, 0}, 0); // j <= i.
  return P;
}

Polyhedron box(std::int64_t Lo, std::int64_t Hi) {
  Polyhedron P(3);
  P.addLowerBound(0, Lo);
  P.addUpperBound(0, Hi);
  P.addLowerBound(1, Lo);
  P.addUpperBound(1, Hi);
  return P;
}

void BM_FourierMotzkinEliminate(benchmark::State &State) {
  Polyhedron P = triangle();
  for (auto _ : State)
    benchmark::DoNotOptimize(P.eliminate(1));
}
BENCHMARK(BM_FourierMotzkinEliminate);

void BM_EmptinessSimplex(benchmark::State &State) {
  Polyhedron P = triangle();
  P.addInequality({0, 0, 1}, -4); // n >= 4 so the set is non-empty.
  for (auto _ : State)
    benchmark::DoNotOptimize(P.isEmpty());
}
BENCHMARK(BM_EmptinessSimplex);

void BM_ConvexHullOfUnion(benchmark::State &State) {
  Polyhedron A = box(0, 15);
  Polyhedron B = box(20, 35);
  for (auto _ : State)
    benchmark::DoNotOptimize(convexHullOfUnion({A, B}));
}
BENCHMARK(BM_ConvexHullOfUnion);

void BM_CountIntegerPoints(benchmark::State &State) {
  Polyhedron P = triangle().instantiate(2, State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(P.countIntegerPoints());
}
BENCHMARK(BM_CountIntegerPoints)->Arg(8)->Arg(32)->Arg(128);

void BM_EhrhartFit(benchmark::State &State) {
  Polyhedron P = triangle();
  for (auto _ : State)
    benchmark::DoNotOptimize(fitEhrhart(P, /*ParamVar=*/2, /*PStart=*/4,
                                        /*MaxDegree=*/2));
}
BENCHMARK(BM_EhrhartFit);

void BM_RemoveRedundant(benchmark::State &State) {
  Polyhedron P = triangle();
  // Pile on redundant rows.
  for (int I = 0; I != 12; ++I)
    P.addInequality({1, 0, 1}, 100 + I);
  for (auto _ : State)
    benchmark::DoNotOptimize(P.removeRedundant());
}
BENCHMARK(BM_RemoveRedundant);

} // namespace

BENCHMARK_MAIN();
