//===- bench/micro_codegen.cpp - Access generation microbenchmarks ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for compile-time access-phase
/// generation: full generateAccessPhase throughput per workload task kind
/// (affine polyhedral synthesis vs. skeleton cloning+marking), the
/// interpreter's simulated-instruction throughput, and dispatch-throughput
/// microbenches comparing the execution backends
/// (--sim-backend={switch,threaded,native}) on loop shapes that isolate one
/// cost each: a tight arithmetic loop (pure dispatch + ALU handlers), a
/// phi-heavy loop with a parallel-copy swap cycle (trampoline cost), and a
/// load/store stream (memory-model callbacks + load/binop fusion — for the
/// native backend, the strength-reduced page translation and inlined trace
/// stores). Each reports a per-backend sim_instr/s counter in the benchmark
/// JSON.
///
//===----------------------------------------------------------------------===//

#include "dae/AccessGenerator.h"
#include "ir/IRBuilder.h"
#include "runtime/Runtime.h"
#include "sim/CacheSim.h"
#include "sim/Interpreter.h"
#include "sim/MachineConfig.h"
#include "sim/Memory.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

using namespace dae;
using namespace dae::workloads;

namespace {

void benchGeneration(benchmark::State &State, const char *Name) {
  for (auto _ : State) {
    State.PauseTiming();
    auto W = buildByName(Name, Scale::Test);
    const ir::Function *TaskFn = W->Tasks.front().Execute;
    State.ResumeTiming();
    AccessPhaseResult R = generateAccessPhase(
        *W->M, *const_cast<ir::Function *>(TaskFn), W->Opts);
    benchmark::DoNotOptimize(R.AccessFn);
  }
}

void BM_GenerateAffine_LU(benchmark::State &State) {
  benchGeneration(State, "lu");
}
BENCHMARK(BM_GenerateAffine_LU)->Unit(benchmark::kMillisecond);

void BM_GenerateAffine_Cholesky(benchmark::State &State) {
  benchGeneration(State, "cholesky");
}
BENCHMARK(BM_GenerateAffine_Cholesky)->Unit(benchmark::kMillisecond);

void BM_GenerateSkeleton_FFT(benchmark::State &State) {
  benchGeneration(State, "fft");
}
BENCHMARK(BM_GenerateSkeleton_FFT)->Unit(benchmark::kMillisecond);

void BM_GenerateSkeleton_LBM(benchmark::State &State) {
  benchGeneration(State, "lbm");
}
BENCHMARK(BM_GenerateSkeleton_LBM)->Unit(benchmark::kMillisecond);

void BM_SimulateWorkload_CG(benchmark::State &State) {
  auto W = buildByName("cg", Scale::Test);
  sim::MachineConfig Cfg;
  sim::Loader L(*W->M);
  std::uint64_t Instr = 0;
  for (auto _ : State) {
    sim::Memory Mem;
    W->Init(Mem, L);
    runtime::TaskRuntime RT(Cfg, Mem, L);
    runtime::RunProfile P = RT.execute(W->Tasks, /*RunAccess=*/false);
    Instr += P.totalExecute().Instructions;
    benchmark::DoNotOptimize(P.Tasks.size());
  }
  State.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(Instr), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateWorkload_CG)->Unit(benchmark::kMillisecond);

/// Synthetic dispatch-stressor programs, built once and shared by the
/// per-backend benchmark instances below.
struct DispatchPrograms {
  static constexpr std::int64_t Iters = 1 << 14;

  ir::Module M;
  ir::Function *Arith;  ///< Register-only int/FP chain per iteration.
  ir::Function *Phi;    ///< Five phis incl. a swap cycle per iteration.
  ir::Function *Stream; ///< X[i] = X[i] * s + Y[i] over Float64 arrays.

  DispatchPrograms() {
    using namespace dae::ir;

    Arith = M.createFunction("arith", Type::Void, {Type::Int64});
    {
      IRBuilder B(M, Arith->createBlock("entry"));
      emitCountedLoop(B, B.getInt(0), Arith->getArg(0), B.getInt(1), "i",
                      [&](IRBuilder &B, Value *I) {
        Value *A = B.createMul(I, B.getInt(3));
        Value *C = B.createXor(B.createAdd(A, B.getInt(7)), I);
        Value *E = B.createAnd(B.createAShr(C, B.getInt(2)), B.getInt(1023));
        Value *F = B.createCast(CastOp::SIToFP, E);
        Value *G = B.createFAdd(B.createFMul(F, B.getFloat(1.5)),
                                B.getFloat(0.25));
        (void)B.createCmp(CmpPred::SLT, B.createCast(CastOp::FPToSI, G), I);
      });
      B.createRet();
    }

    // Hand-built loop: the induction phi plus four loop-carried phis whose
    // back-edge copies include a two-cycle (A<->B swap) — the shape that
    // forces the threaded backend's parallel-copy trampolines through their
    // scratch-register cycle break every iteration.
    Phi = M.createFunction("phis", Type::Int64, {Type::Int64});
    {
      BasicBlock *Entry = Phi->createBlock("entry");
      BasicBlock *Header = Phi->createBlock("header");
      BasicBlock *Body = Phi->createBlock("body");
      BasicBlock *Exit = Phi->createBlock("exit");
      IRBuilder B(M, Entry);
      B.createBr(Header);
      B.setInsertBlock(Header);
      PhiInst *IV = B.createPhi(Type::Int64);
      PhiInst *PA = B.createPhi(Type::Int64);
      PhiInst *PB = B.createPhi(Type::Int64);
      PhiInst *PC = B.createPhi(Type::Int64);
      PhiInst *PD = B.createPhi(Type::Int64);
      IV->addIncoming(M.getInt(0), Entry);
      PA->addIncoming(M.getInt(1), Entry);
      PB->addIncoming(M.getInt(2), Entry);
      PC->addIncoming(M.getInt(3), Entry);
      PD->addIncoming(M.getInt(5), Entry);
      Value *Cond = B.createCmp(CmpPred::SLT, IV, Phi->getArg(0));
      B.createCondBr(Cond, Body, Exit);
      B.setInsertBlock(Body);
      Value *Sum = B.createAdd(PC, PD);
      Value *Next = B.createAdd(IV, M.getInt(1));
      IV->addIncoming(Next, Body);
      PA->addIncoming(PB, Body); // Swap cycle: A <- B, B <- A.
      PB->addIncoming(PA, Body);
      PC->addIncoming(PD, Body);
      PD->addIncoming(Sum, Body);
      B.createBr(Header);
      B.setInsertBlock(Exit);
      B.createRet(B.createAdd(PA, PC));
    }

    auto *X = M.createGlobal("X", Iters * 8);
    auto *Y = M.createGlobal("Y", Iters * 8);
    Stream = M.createFunction("stream", Type::Void, {Type::Int64});
    {
      IRBuilder B(M, Stream->createBlock("entry"));
      emitCountedLoop(B, B.getInt(0), Stream->getArg(0), B.getInt(1), "i",
                      [&](IRBuilder &B, Value *I) {
        Value *XPtr = B.createGep1D(X, I, 8);
        Value *XV = B.createLoad(Type::Float64, XPtr);
        Value *YV = B.createLoad(Type::Float64, B.createGep1D(Y, I, 8));
        B.createStore(B.createFAdd(B.createFMul(XV, B.getFloat(1.01)), YV),
                      XPtr);
      });
      B.createRet();
    }
  }
};

DispatchPrograms &dispatchPrograms() {
  static DispatchPrograms P;
  return P;
}

/// Runs \p F under \p Backend in fused mode and reports sim_instr/s. Memory
/// and caches persist across iterations: after the first pass the working
/// set is cache-hot, so the steady state measures dispatch + handler cost,
/// not DRAM.
void benchDispatch(benchmark::State &State, const ir::Function *F,
                   sim::SimBackend Backend) {
  DispatchPrograms &P = dispatchPrograms();
  sim::MachineConfig Cfg;
  Cfg.Backend = Backend;
  sim::Loader L(P.M);
  sim::Memory Mem;
  sim::CacheHierarchy Caches(Cfg, 1);
  sim::Interpreter Interp(Cfg, Mem, Caches, L);
  std::uint64_t Instr = 0;
  for (auto _ : State) {
    sim::PhaseStats S =
        Interp.run(*F, 0, {sim::RuntimeValue::ofInt(DispatchPrograms::Iters)});
    Instr += S.Instructions;
    benchmark::DoNotOptimize(S.ComputeCycles);
  }
  State.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(Instr), benchmark::Counter::kIsRate);
}

/// Same programs through the tracing (functional) path: runTraced with the
/// trace cleared per iteration. Arith/Phi have no memory ops (empty trace =
/// pure dispatch); Stream adds the trace-append cost both backends share.
/// This is the path the [interp] line of the figure benches reports.
void benchTrace(benchmark::State &State, const ir::Function *F,
                sim::SimBackend Backend) {
  DispatchPrograms &P = dispatchPrograms();
  sim::MachineConfig Cfg;
  Cfg.Backend = Backend;
  sim::Loader L(P.M);
  sim::Memory Mem;
  sim::Interpreter Interp(Cfg, Mem, L, /*Shared=*/nullptr);
  sim::AccessTrace Trace;
  std::uint64_t Instr = 0;
  for (auto _ : State) {
    Trace.clear();
    sim::PhaseStats S = Interp.runTraced(
        *F, {sim::RuntimeValue::ofInt(DispatchPrograms::Iters)}, Trace);
    Instr += S.Instructions;
    benchmark::DoNotOptimize(S.ComputeCycles);
  }
  State.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(Instr), benchmark::Counter::kIsRate);
}

void BM_DispatchArith_Switch(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Arith, sim::SimBackend::Switch);
}
BENCHMARK(BM_DispatchArith_Switch)->Unit(benchmark::kMillisecond);

void BM_DispatchArith_Threaded(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Arith, sim::SimBackend::Threaded);
}
BENCHMARK(BM_DispatchArith_Threaded)->Unit(benchmark::kMillisecond);

void BM_DispatchArith_Native(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Arith, sim::SimBackend::Native);
}
BENCHMARK(BM_DispatchArith_Native)->Unit(benchmark::kMillisecond);

void BM_DispatchPhi_Switch(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Phi, sim::SimBackend::Switch);
}
BENCHMARK(BM_DispatchPhi_Switch)->Unit(benchmark::kMillisecond);

void BM_DispatchPhi_Threaded(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Phi, sim::SimBackend::Threaded);
}
BENCHMARK(BM_DispatchPhi_Threaded)->Unit(benchmark::kMillisecond);

void BM_DispatchPhi_Native(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Phi, sim::SimBackend::Native);
}
BENCHMARK(BM_DispatchPhi_Native)->Unit(benchmark::kMillisecond);

void BM_DispatchStream_Switch(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Stream, sim::SimBackend::Switch);
}
BENCHMARK(BM_DispatchStream_Switch)->Unit(benchmark::kMillisecond);

void BM_DispatchStream_Threaded(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Stream, sim::SimBackend::Threaded);
}
BENCHMARK(BM_DispatchStream_Threaded)->Unit(benchmark::kMillisecond);

void BM_DispatchStream_Native(benchmark::State &State) {
  benchDispatch(State, dispatchPrograms().Stream, sim::SimBackend::Native);
}
BENCHMARK(BM_DispatchStream_Native)->Unit(benchmark::kMillisecond);

void BM_TraceArith_Switch(benchmark::State &State) {
  benchTrace(State, dispatchPrograms().Arith, sim::SimBackend::Switch);
}
BENCHMARK(BM_TraceArith_Switch)->Unit(benchmark::kMillisecond);

void BM_TraceArith_Threaded(benchmark::State &State) {
  benchTrace(State, dispatchPrograms().Arith, sim::SimBackend::Threaded);
}
BENCHMARK(BM_TraceArith_Threaded)->Unit(benchmark::kMillisecond);

void BM_TraceArith_Native(benchmark::State &State) {
  benchTrace(State, dispatchPrograms().Arith, sim::SimBackend::Native);
}
BENCHMARK(BM_TraceArith_Native)->Unit(benchmark::kMillisecond);

void BM_TraceStream_Switch(benchmark::State &State) {
  benchTrace(State, dispatchPrograms().Stream, sim::SimBackend::Switch);
}
BENCHMARK(BM_TraceStream_Switch)->Unit(benchmark::kMillisecond);

void BM_TraceStream_Threaded(benchmark::State &State) {
  benchTrace(State, dispatchPrograms().Stream, sim::SimBackend::Threaded);
}
BENCHMARK(BM_TraceStream_Threaded)->Unit(benchmark::kMillisecond);

void BM_TraceStream_Native(benchmark::State &State) {
  benchTrace(State, dispatchPrograms().Stream, sim::SimBackend::Native);
}
BENCHMARK(BM_TraceStream_Native)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
