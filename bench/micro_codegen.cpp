//===- bench/micro_codegen.cpp - Access generation microbenchmarks ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for compile-time access-phase
/// generation: full generateAccessPhase throughput per workload task kind
/// (affine polyhedral synthesis vs. skeleton cloning+marking), plus the
/// interpreter's simulated-instruction throughput.
///
//===----------------------------------------------------------------------===//

#include "dae/AccessGenerator.h"
#include "runtime/Runtime.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

using namespace dae;
using namespace dae::workloads;

namespace {

void benchGeneration(benchmark::State &State, const char *Name) {
  for (auto _ : State) {
    State.PauseTiming();
    auto W = buildByName(Name, Scale::Test);
    const ir::Function *TaskFn = W->Tasks.front().Execute;
    State.ResumeTiming();
    AccessPhaseResult R = generateAccessPhase(
        *W->M, *const_cast<ir::Function *>(TaskFn), W->Opts);
    benchmark::DoNotOptimize(R.AccessFn);
  }
}

void BM_GenerateAffine_LU(benchmark::State &State) {
  benchGeneration(State, "lu");
}
BENCHMARK(BM_GenerateAffine_LU)->Unit(benchmark::kMillisecond);

void BM_GenerateAffine_Cholesky(benchmark::State &State) {
  benchGeneration(State, "cholesky");
}
BENCHMARK(BM_GenerateAffine_Cholesky)->Unit(benchmark::kMillisecond);

void BM_GenerateSkeleton_FFT(benchmark::State &State) {
  benchGeneration(State, "fft");
}
BENCHMARK(BM_GenerateSkeleton_FFT)->Unit(benchmark::kMillisecond);

void BM_GenerateSkeleton_LBM(benchmark::State &State) {
  benchGeneration(State, "lbm");
}
BENCHMARK(BM_GenerateSkeleton_LBM)->Unit(benchmark::kMillisecond);

void BM_SimulateWorkload_CG(benchmark::State &State) {
  auto W = buildByName("cg", Scale::Test);
  sim::MachineConfig Cfg;
  sim::Loader L(*W->M);
  std::uint64_t Instr = 0;
  for (auto _ : State) {
    sim::Memory Mem;
    W->Init(Mem, L);
    runtime::TaskRuntime RT(Cfg, Mem, L);
    runtime::RunProfile P = RT.execute(W->Tasks, /*RunAccess=*/false);
    Instr += P.totalExecute().Instructions;
    benchmark::DoNotOptimize(P.Tasks.size());
  }
  State.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(Instr), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateWorkload_CG)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
