//===- bench/fig_contention.cpp - Co-run contention sweep -------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps 1..8-way co-scheduled workload mixes on the shared-LLC /
/// bandwidth-throttled contention timeline and compares, per co-run width,
/// the EDP of the paper's DAE policies (naive min/max split and the
/// per-phase EDP oracle) against reactive cpufreq-style governor baselines
/// (ondemand, conservative) running coupled execution. Everything is
/// normalized to CAE at fmax — the "performance governor" a stock system
/// would run.
///
/// Shapes to expect:
///  * As ways grow, DRAM queuing inflates everyone's makespan, but DAE keeps
///    its EDP edge: access phases tolerate the queue at fmin while execute
///    phases run hot on warmed caches.
///  * Ondemand tracks fmax under load (memory stalls read as idle time, so
///    utilization dips only on the most memory-bound mixes); conservative
///    ramps rung-by-rung and lags phase changes — both trail the per-phase
///    oracle that knows each phase's profile in advance.
///
/// Flags beyond the common set: --cores=N (default 8), --big-little=B,L,
/// --mix=a,b,c (workload names cycled to fill each width; default
/// libq,cigar,cholesky,fft), --governor=ondemand|conservative|both.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  // This bench is about co-run widths: default to an 8-core machine unless
  // the user pinned a topology.
  if (Opts.Cores == 0 && Opts.BigCores + Opts.LittleCores == 0)
    Opts.Cores = 8;
  workloads::Scale S = Opts.Scale;
  sim::MachineConfig Cfg = Opts.machineConfig();
  const bool PassStats = Opts.PassStats;

  std::vector<std::string> MixNames = Opts.Mix;
  if (MixNames.empty())
    MixNames = {"libq", "cigar", "cholesky", "fft"};
  for (const std::string &Name : MixNames)
    if (!workloads::buildByName(Name, S)) {
      std::fprintf(stderr, "fig_contention: unknown workload '%s'\n",
                   Name.c_str());
      return 2;
    }
  std::string MixLabel;
  for (const std::string &Name : MixNames) {
    if (!MixLabel.empty())
      MixLabel += ",";
    MixLabel += Name;
  }

  const bool ShowOndemand = Opts.Governor != "conservative";
  const bool ShowConservative = Opts.Governor != "ondemand";

  std::vector<unsigned> Ways;
  for (unsigned W : {1u, 2u, 4u, 8u})
    if (W <= Cfg.NumCores)
      Ways.push_back(W);

  std::printf("Contention sweep: DAE vs reactive governors under shared-LLC "
              "and DRAM-bandwidth pressure\n");
  std::printf("(machine: %u cores, LLC %llu KiB shared, DRAM %.1f GB/s; mix "
              "cycled from: %s)\n\n",
              Cfg.NumCores,
              static_cast<unsigned long long>(Cfg.LLC.SizeBytes / 1024),
              Cfg.DramBandwidthGBs, MixLabel.c_str());

  ThroughputReporter Throughput("fig_contention", Cfg.SimThreads, Opts.Jobs);
  Throughput.setReplayOverlap(Cfg.ReplayOverlap);
  Throughput.setBackend(Cfg.Backend);
  GenerationMemo Memo;

  std::printf("%5s %-28s %10s", "ways", "mix", "cae-max");
  if (ShowOndemand)
    std::printf(" %10s", "ondemand");
  if (ShowConservative)
    std::printf(" %10s", "conserv");
  std::printf(" %10s %10s %10s %12s\n", "dae-mm", "dae-oracle", "queue(us)",
              "dram-misses");
  printRule(100);

  Throughput.start();
  for (unsigned W : Ways) {
    // Fresh workload instances per width: runs mutate workload memory.
    std::vector<std::unique_ptr<workloads::Workload>> Owned;
    std::vector<workloads::Workload *> Mix;
    std::string Label;
    for (unsigned I = 0; I < W; ++I) {
      const std::string &Name = MixNames[I % MixNames.size()];
      Owned.push_back(workloads::buildByName(Name, S));
      Mix.push_back(Owned.back().get());
      if (I)
        Label += ",";
      Label += Name;
    }

    MixConfig MC;
    MC.Jobs = Opts.Jobs;
    MC.SimThreads = Cfg.SimThreads;
    MC.Memo = &Memo;
    MC.DaeVerify = Opts.DaeVerify;
    MixResult R = runMix(Mix, Cfg, MC);

    for (const MixStreamResult &St : R.Streams) {
      if (!St.OutputsMatch) {
        std::printf("WARNING: %s outputs differ between CAE and DAE!\n",
                    St.Name.c_str());
        Throughput.noteFailure();
      }
      if (MC.DaeVerify)
        Throughput.addDaeVerify(St.Name, "auto", St.Verify);
    }

    double Base = R.CaeMax.EdpJs;
    auto Norm = [Base](double Edp) { return Base > 0.0 ? Edp / Base : 0.0; };
    double QueueNs = 0.0;
    std::uint64_t DramMisses = 0;
    for (const runtime::CoreTimelineReport &C : R.DaeOracle.Cores) {
      QueueNs += C.QueueNs;
      DramMisses += C.DramMisses;
    }
    std::printf("%5u %-28.28s %10.3f", W, Label.c_str(), 1.0);
    if (ShowOndemand)
      std::printf(" %10.3f", Norm(R.CaeOndemand.EdpJs));
    if (ShowConservative)
      std::printf(" %10.3f", Norm(R.CaeConservative.EdpJs));
    std::printf(" %10.3f %10.3f %10.1f %12llu\n", Norm(R.DaeMinMax.EdpJs),
                Norm(R.DaeOracle.EdpJs), QueueNs * 1e-3,
                static_cast<unsigned long long>(DramMisses));

    Throughput.addContention(W, Label, R);
  }
  Throughput.stop();
  printRule(100);
  std::printf("(EDP normalized to CAE at fmax per width; queue/misses from "
              "the dae-oracle timeline)\n");

  Throughput.report();
  if (PassStats)
    pm::PipelineStats::get().print(stdout);
  return 0;
}
