//===- bench/fig4_profiles.cpp - Reproduces Figure 4 -----------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4 of the paper: for the three case studies (Cholesky —
/// polyhedral access; FFT and LibQ — skeleton access), the runtime and
/// energy profiles of CAE, Manual DAE, and Auto DAE as a function of the
/// execute frequency (fmin -> fmax, access pinned at fmin), broken into the
/// paper's Prefetch / O.S.I. / Task buckets.
///
/// Shapes to match (section 6.2):
///  * Cholesky/FFT: Auto DAE's access (Prefetch) bar is taller than Manual's
///    (it prefetches more data), but total time is competitive and energy
///    is lower at high execute frequencies.
///  * LibQ: Manual's line-granular access is faster; Auto's execute is
///    slightly shorter; similar EDP.
///  * CAE has no Prefetch bucket and its Task bucket grows as f drops.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ServeUtil.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

namespace {

void printSeries(const char *App, const char *SchemeName,
                 const std::vector<Fig4Point> &Series) {
  std::printf("\n%s / %s\n", App, SchemeName);
  std::printf("%8s %12s %12s %12s | %12s %12s %12s\n", "f(GHz)",
              "Prefetch(ms)", "OSI(ms)", "Task(ms)", "Prefetch(J)", "OSI(J)",
              "Task(J)");
  printRule(92);
  for (const Fig4Point &P : Series)
    std::printf("%8.1f %12.3f %12.3f %12.3f | %12.4f %12.4f %12.4f\n",
                P.FreqGHz, P.PrefetchSec * 1e3, P.OsiSec * 1e3,
                P.TaskSec * 1e3, P.PrefetchJ, P.OsiJ, P.TaskJ);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  if (Opts.Serve)
    return serveMain(Opts, "fig4_profiles");
  workloads::Scale S = Opts.Scale;
  sim::MachineConfig Cfg = Opts.machineConfig();
  unsigned Jobs = Opts.Jobs;
  const bool PassStats = Opts.PassStats;

  std::printf("Figure 4: per-frequency runtime & energy profiles "
              "(access at fmin; execute swept fmin->fmax; 500 ns "
              "transitions)\n");

  std::vector<std::unique_ptr<workloads::Workload>> Workloads;
  std::vector<SuiteItem> Items;
  for (const char *Name : {"cholesky", "fft", "libq"}) {
    Workloads.push_back(workloads::buildByName(Name, S));
    Items.push_back({Workloads.back().get(), nullptr});
  }

  GenerationMemo Memo;
  SuiteConfig SC;
  SC.Jobs = Jobs;
  SC.SimThreads = Cfg.SimThreads;
  SC.Memo = &Memo;
  SC.DaeVerify = Opts.DaeVerify;

  ThroughputReporter Throughput("fig4_profiles", Cfg.SimThreads, Jobs);
  Throughput.setReplayOverlap(Cfg.ReplayOverlap);
  Throughput.setBackend(Cfg.Backend);
  Throughput.start();
  std::vector<AppResult> Results = runSuite(Items, Cfg, SC);
  Throughput.stop();

  for (const AppResult &R : Results) {
    if (!R.OutputsMatch) {
      std::printf("WARNING: %s outputs differ across schemes!\n",
                  R.Name.c_str());
      Throughput.noteFailure();
    }
    Throughput.add(R.Cae);
    Throughput.add(R.Manual);
    Throughput.add(R.Auto);
    Throughput.addDaeVerify(R.Name, "manual", R.ManualVerify);
    Throughput.addDaeVerify(R.Name, "auto", R.AutoVerify);
    for (auto [Which, Label] :
         {std::pair{Scheme::Cae, "CAE"}, std::pair{Scheme::Manual,
                                                   "Manual DAE"},
          std::pair{Scheme::Auto, "Auto DAE"}}) {
      auto Series = priceFig4(R, Cfg, Which, 500.0);
      printSeries(R.Name.c_str(), Label, Series);
    }
  }
  Throughput.report();
  if (PassStats)
    pm::PipelineStats::get().print(stdout);
  return 0;
}
