//===- bench/ablation_affine.cpp - Section 5.1 design choices ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the affine generator's design choices on LU (the paper's running
/// example): convex union vs. the 5.1.1 memory-range analysis, the
/// NconvUn <= NOrig hull guard, parameter-class separation, nest merging,
/// and the 5.2.3 cache-line-granular prefetch extension. For each variant:
/// the scan-set size, access-phase instruction count, and full-run
/// time/EDP under the Optimal-EDP policy.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ServeUtil.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

namespace {

struct Variant {
  const char *Name;
  DaeOptions Opts;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  if (Opts.Serve)
    return serveMain(Opts, "ablation_affine");
  workloads::Scale S = Opts.Scale;
  sim::MachineConfig Cfg = Opts.machineConfig();
  unsigned Jobs = Opts.Jobs;
  const bool PassStats = Opts.PassStats;

  DaeOptions Base; // Paper defaults.
  DaeOptions Range = Base;
  Range.UseConvexUnion = false;
  DaeOptions NoGuard = Base;
  NoGuard.HullSlackThreshold = 1 << 30;
  DaeOptions NoClasses = Base;
  NoClasses.SplitClasses = false;
  DaeOptions NoMerge = Base;
  NoMerge.MergeLoopNests = false;
  DaeOptions LineGranular = Base;
  LineGranular.PrefetchPerCacheLine = true;

  std::vector<Variant> Variants = {
      {"convex union (paper)", Base},
      {"memory-range 5.1.1", Range},
      {"hull guard off", NoGuard},
      {"class split off", NoClasses},
      {"nest merge off", NoMerge},
      {"per-cache-line 5.2.3", LineGranular},
  };

  // Every variant runs its own LU instance; the shared memo regenerates an
  // access phase only when the flipped knob actually matters for the task
  // (e.g. "hull guard off" still accepts exactly the same hulls on LU, so
  // all four tasks hit the cache).
  std::vector<std::unique_ptr<workloads::Workload>> Workloads;
  std::vector<SuiteItem> Items;
  for (Variant &V : Variants) {
    Workloads.push_back(workloads::buildLu(S));
    V.Opts.RepresentativeArgs = Workloads.back()->Opts.RepresentativeArgs;
    Items.push_back({Workloads.back().get(), &V.Opts});
  }

  GenerationMemo Memo;
  SuiteConfig SC;
  SC.Jobs = Jobs;
  SC.SimThreads = Cfg.SimThreads;
  SC.Memo = &Memo;
  std::vector<AppResult> Results = runSuite(Items, Cfg, SC);

  std::printf("Affine-path ablation on LU (Optimal-EDP policy, 500 ns "
              "transitions)\n");
  std::printf("%-24s %10s %10s %12s %10s %10s\n", "variant", "NScan",
              "NOrig", "acc instr", "time/CAE", "EDP/CAE");
  printRule(84);

  for (std::size_t I = 0; I != Variants.size(); ++I) {
    const Variant &V = Variants[I];
    const AppResult &R = Results[I];

    long long NScan = 0, NOrig = 0;
    for (const AccessPhaseResult &G : R.Generation) {
      if (G.NConvUn > 0)
        NScan += G.NConvUn;
      if (G.NOrig > 0)
        NOrig += G.NOrig;
    }
    runtime::RunReport BaseRep = priceCaeMax(R, Cfg, 500.0);
    runtime::RunReport Rep =
        runtime::evaluate(R.Auto, Cfg, optimalEdpConfig(500.0));

    std::printf("%-24s %10lld %10lld %12llu %10.3f %10.3f%s\n", V.Name,
                NScan, NOrig,
                static_cast<unsigned long long>(
                    R.Auto.totalAccess().Instructions),
                Rep.TimeSec / BaseRep.TimeSec, Rep.EdpJs / BaseRep.EdpJs,
                R.OutputsMatch ? "" : "  [OUTPUT MISMATCH]");
  }
  printRule(84);
  GenerationMemo::Stats MS = Memo.stats();
  std::printf("[memo] generation cache: %llu hits, %llu misses, %llu "
              "uncacheable\n",
              static_cast<unsigned long long>(MS.Hits),
              static_cast<unsigned long long>(MS.Misses),
              static_cast<unsigned long long>(MS.Rejections));
  std::printf("(expected: memory-range scans far more than it needs — "
              "Figure 1(b); guard-off may over-prefetch; per-cache-line "
              "shrinks the access instruction count ~8x)\n");
  if (PassStats)
    pm::PipelineStats::get().print(stdout);
  return 0;
}
