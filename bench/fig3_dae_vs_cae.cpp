//===- bench/fig3_dae_vs_cae.cpp - Reproduces Figure 3 ---------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 3 of the paper: execution time (a), energy (b), and
/// EDP (c), normalized to coupled execution (CAE) at maximum frequency, for
/// five configurations — CAE with the Optimal-f policy, Manual DAE and
/// Compiler (Auto) DAE each with Min/Max-f and Optimal-f — per application
/// plus the geometric mean, at the 500 ns DVFS transition latency of current
/// hardware. Also prints the 0 ns "ideal future hardware" comparison of
/// section 6.1.
///
/// Paper headlines to match in shape:
///  * Auto DAE Optimal-f improves EDP by ~25% geomean (500 ns), ~29% (0 ns);
///    Manual DAE ~23% / ~25% — Auto beats Manual by a few points.
///  * DAE preserves performance (<~5% time penalty at 500 ns); CAE Optimal-f
///    saves energy but pays time.
///  * Memory-bound apps (LibQ, Cigar) gain the most EDP (up to ~50%).
///  * LBM: coupled execution's EDP gain exceeds the decoupled one.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ServeUtil.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"
#include "support/MathUtil.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

namespace {

void printPanel(const char *Title, const std::vector<Fig3Row> &Rows,
                int Metric) {
  std::printf("\n(%s) normalized to CAE @ max frequency\n", Title);
  std::printf("%-10s %10s %12s %12s %12s %12s\n", "App", "CAE(Opt)",
              "Man(MinMax)", "Man(Opt)", "Auto(MinMax)", "Auto(Opt)");
  printRule();
  std::vector<double> G[5];
  for (const Fig3Row &R : Rows) {
    std::printf("%-10s %10.3f %12.3f %12.3f %12.3f %12.3f\n", R.Name.c_str(),
                R.CaeOpt[Metric], R.ManualMinMax[Metric], R.ManualOpt[Metric],
                R.AutoMinMax[Metric], R.AutoOpt[Metric]);
    G[0].push_back(R.CaeOpt[Metric]);
    G[1].push_back(R.ManualMinMax[Metric]);
    G[2].push_back(R.ManualOpt[Metric]);
    G[3].push_back(R.AutoMinMax[Metric]);
    G[4].push_back(R.AutoOpt[Metric]);
  }
  printRule();
  std::printf("%-10s %10.3f %12.3f %12.3f %12.3f %12.3f\n", "G.Mean",
              geometricMean(G[0]), geometricMean(G[1]), geometricMean(G[2]),
              geometricMean(G[3]), geometricMean(G[4]));
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  if (Opts.Serve)
    return serveMain(Opts, "fig3_dae_vs_cae");
  workloads::Scale S = Opts.Scale;
  sim::MachineConfig Cfg = Opts.machineConfig();
  unsigned Jobs = Opts.Jobs;
  const bool PassStats = Opts.PassStats;
  const bool DaeVerify = Opts.DaeVerify;
  const bool DaeProfileGuided = Opts.DaeProfileGuided;
  const bool NoBaseline = Opts.NoBaseline;
  const bool MeasureBaseline = Opts.measureBaseline();

  std::printf("Figure 3: DAE vs regular task execution "
              "(quad-core, 500 ns DVFS transitions)\n");

  ThroughputReporter Throughput("fig3_dae_vs_cae", Cfg.SimThreads, Jobs);
  Throughput.setReplayOverlap(Cfg.ReplayOverlap);
  Throughput.setBackend(Cfg.Backend);
  auto Workloads = workloads::buildAll(S);
  std::vector<SuiteItem> Items;
  for (auto &W : Workloads)
    Items.push_back({W.get(), nullptr});

  GenerationMemo Memo;
  SuiteConfig SC;
  SC.Jobs = Jobs;
  SC.SimThreads = Cfg.SimThreads;
  SC.Memo = &Memo;
  SC.DaeVerify = DaeVerify;
  SC.DaeProfileGuided = DaeProfileGuided;

  Throughput.start();
  std::vector<AppResult> Results = runSuite(Items, Cfg, SC);
  Throughput.stop();
  for (const AppResult &R : Results) {
    if (!R.OutputsMatch) {
      std::printf("WARNING: %s outputs differ across schemes!\n",
                  R.Name.c_str());
      Throughput.noteFailure();
    }
    Throughput.add(R.Cae);
    Throughput.add(R.Manual);
    Throughput.add(R.Auto);
    Throughput.addDaeVerify(R.Name, "manual", R.ManualVerify);
    Throughput.addDaeVerify(R.Name, "auto", R.AutoVerify);
    Throughput.addDaePg(R.Name, R.AutoPg);
  }

  // Sequential reference for the recorded speedup (skipped via
  // --no-baseline; same sim-thread request, fresh workloads and memo).
  if (MeasureBaseline) {
    auto BaseWorkloads = workloads::buildAll(S);
    std::vector<SuiteItem> BaseItems;
    for (auto &W : BaseWorkloads)
      BaseItems.push_back({W.get(), nullptr});
    GenerationMemo BaseMemo;
    SuiteConfig BaseSC;
    BaseSC.Jobs = 1;
    BaseSC.SimThreads = Cfg.SimThreads;
    BaseSC.Memo = &BaseMemo;
    auto T0 = std::chrono::steady_clock::now();
    std::vector<AppResult> BaseResults = runSuite(BaseItems, Cfg, BaseSC);
    auto T1 = std::chrono::steady_clock::now();
    Throughput.setBaseline(std::chrono::duration<double>(T1 - T0).count());
    (void)BaseResults;
  }

  // Overlap-off reference for the replay_overlap speedup field: same jobs
  // and sim threads, pipelined replay disabled. Only meaningful when the
  // main run overlapped (the gate needs SimThreads > 1); skipped together
  // with the jobs baseline via --no-baseline.
  if (Cfg.ReplayOverlap && Cfg.SimThreads > 1 && !NoBaseline) {
    auto RefWorkloads = workloads::buildAll(S);
    std::vector<SuiteItem> RefItems;
    for (auto &W : RefWorkloads)
      RefItems.push_back({W.get(), nullptr});
    GenerationMemo RefMemo;
    sim::MachineConfig RefCfg = Cfg;
    RefCfg.ReplayOverlap = false;
    SuiteConfig RefSC;
    RefSC.Jobs = Jobs;
    RefSC.SimThreads = Cfg.SimThreads;
    RefSC.Memo = &RefMemo;
    auto T0 = std::chrono::steady_clock::now();
    std::vector<AppResult> RefResults = runSuite(RefItems, RefCfg, RefSC);
    auto T1 = std::chrono::steady_clock::now();
    Throughput.setNoOverlapBaseline(
        std::chrono::duration<double>(T1 - T0).count());
    (void)RefResults;
  }

  for (double Latency : {500.0, 0.0}) {
    std::printf("\n================ transition latency: %.0f ns "
                "================\n",
                Latency);
    std::vector<Fig3Row> Rows;
    for (const AppResult &R : Results)
      Rows.push_back(priceFig3(R, Cfg, Latency));
    printPanel("a: Time", Rows, 0);
    printPanel("b: Energy", Rows, 1);
    printPanel("c: EDP", Rows, 2);

    std::vector<double> ManOptEdp, AutoOptEdp;
    for (const Fig3Row &R : Rows) {
      ManOptEdp.push_back(R.ManualOpt[2]);
      AutoOptEdp.push_back(R.AutoOpt[2]);
    }
    std::printf("\nEDP improvement (Optimal-f, geomean): Manual DAE %.1f%%, "
                "Auto DAE %.1f%%\n",
                (1.0 - geometricMean(ManOptEdp)) * 100.0,
                (1.0 - geometricMean(AutoOptEdp)) * 100.0);
  }
  std::printf("\n(paper: 500 ns -> Manual 23%%, Auto 25%%; 0 ns -> Manual "
              "25%%, Auto 29%%)\n");
  Throughput.report();
  if (PassStats)
    pm::PipelineStats::get().print(stdout);
  return 0;
}
