//===- bench/ServeUtil.h - Shared --serve entry point -----------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one `--serve` implementation every suite driver shares: wire the
/// parsed BenchOptions into an ExperimentService + Server pair, publish the
/// daemon's counters through the driver's ThroughputReporter after every
/// request (so `BENCH_<name>.json` is a live dashboard with status
/// "serving"), and block until a client sends {"op": "shutdown"}.
///
/// Usage, first thing in a driver's main after BenchOptions::parse:
///
///   if (Opts.Serve)
///     return dae::bench::serveMain(Opts, "fig3");
///
/// Every driver exposes the *same* daemon (requests name their workload, so
/// there is nothing driver-specific to serve); repeating the entry point per
/// driver just means any already-built bench binary can host the service.
/// The standalone `daecc-serve` binary is this function behind a plain main.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_BENCH_SERVEUTIL_H
#define DAECC_BENCH_SERVEUTIL_H

#include "BenchUtil.h"
#include "service/ExperimentService.h"
#include "service/Server.h"

#include <cstdio>

namespace dae {
namespace bench {

/// Runs the experiment daemon on O.SocketPath until shut down. Returns the
/// process exit code: 0 after a clean shutdown request, 2 when the socket
/// cannot be set up (configuration error, same class as a bad flag).
inline int serveMain(const BenchOptions &O, const std::string &BenchName) {
  service::ExperimentService::Config SC;
  SC.CacheDir = O.CacheDir;
  SC.Jobs = O.Jobs;
  SC.SimThreads = O.SimThreads;
  service::ExperimentService Svc(SC);

  ThroughputReporter Reporter(BenchName + "_serve", O.SimThreads, O.Jobs);
  Reporter.start();
  Reporter.setBackend(O.Backend);
  Reporter.setReplayOverlap(O.ReplayOverlap);

  service::Server Srv(O.SocketPath,
                      [&](const std::string &Line, unsigned ClientId,
                          bool &Shutdown) {
                        std::string Reply =
                            Svc.handleLine(Line, ClientId, Shutdown);
                        Reporter.checkpointService(Svc.statsJson());
                        return Reply;
                      });
  std::string Err;
  if (!Srv.start(Err)) {
    std::fprintf(stderr, "daecc-serve: %s\n", Err.c_str());
    return 2;
  }
  // CI and scripts wait for this exact line before connecting.
  std::printf("[serve] %s: listening on %s (jobs=%u, sim-threads=%u, "
              "cache-dir=%s)\n",
              BenchName.c_str(), Srv.socketPath().c_str(), SC.Jobs,
              SC.SimThreads,
              Svc.cache().dir().empty() ? "<memory-only>"
                                        : Svc.cache().dir().c_str());
  std::fflush(stdout);
  Srv.serve();
  Reporter.checkpointService(Svc.statsJson());
  std::printf("[serve] %s: shut down\n", BenchName.c_str());
  Reporter.report();
  return 0;
}

} // namespace bench
} // namespace dae

#endif // DAECC_BENCH_SERVEUTIL_H
