//===- bench/table1_characteristics.cpp - Reproduces Table 1 ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 of the paper: per application, the number of loops
/// handled with the polyhedral approach out of the total target loops, the
/// number of dynamic tasks, the average fraction of execution time spent in
/// the access phase (TA%), and the average access-phase duration (TA usec).
///
/// Paper reference values (Table 1):
///   LU 3/3, Cholesky 3/3, FFT 0/6, LBM 0/1, LibQ 0/6, Cigar 0/1, CG 0/2;
///   TA% ~1.8 for LU/Cholesky, 19.2 FFT, 42-49 for the memory-bound apps;
///   TA 2.6-30.7 usec.
/// Shapes to match: affine-vs-skeleton split; TA% small for compute-bound,
/// large (~40-50%) for memory-bound; TA in the 1-100 usec DVFS-friendly
/// range (section 3.1).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ServeUtil.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"

#include <cstdio>
#include <vector>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  if (Opts.Serve)
    return serveMain(Opts, "table1_characteristics");
  workloads::Scale S = Opts.Scale;
  sim::MachineConfig Cfg = Opts.machineConfig();
  unsigned Jobs = Opts.Jobs;
  const bool PassStats = Opts.PassStats;

  auto Workloads = workloads::buildAll(S);
  std::vector<SuiteItem> Items;
  for (auto &W : Workloads)
    Items.push_back({W.get(), nullptr});

  GenerationMemo Memo;
  SuiteConfig SC;
  SC.Jobs = Jobs;
  SC.SimThreads = Cfg.SimThreads;
  SC.Memo = &Memo;
  std::vector<AppResult> Results = runSuite(Items, Cfg, SC);

  std::printf("Table 1: Application characteristics (reproduction)\n");
  std::printf("%-10s %14s %10s %8s %10s   %s\n", "App",
              "affine/total", "#tasks", "TA%", "TA(usec)", "strategy");
  printRule();

  for (const AppResult &R : Results) {
    const char *Strategy =
        R.Generation.empty()
            ? "none"
            : analysis::taskClassName(R.Generation.front().Strategy);
    std::printf("%-10s %8u/%-5u %10zu %8.2f %10.2f   %s%s\n",
                R.Row.Name.c_str(), R.Row.AffineLoops, R.Row.TotalLoops,
                R.Row.NumTasks, R.Row.AccessTimePercent, R.Row.AccessTimeUs,
                Strategy, R.OutputsMatch ? "" : "  [OUTPUT MISMATCH!]");
  }
  printRule();
  std::printf("(paper: LU 3/3 1.83%% 6.82us | Chol 3/3 1.80%% 6.05us | "
              "FFT 0/6 19.24%% 30.74us |\n LBM 0/1 47.95%% 7.90us | "
              "LibQ 0/6 47.01%% 2.64us | Cigar 0/1 49.27%% 5.11us | "
              "CG 0/2 42.84%% 2.89us)\n");
  if (PassStats)
    pm::PipelineStats::get().print(stdout);
  return 0;
}
