//===- bench/daecc_client.cpp - Experiment daemon client -------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line client for the experiment daemon: sends one request line
/// per positional argument and prints each reply line to stdout. Arguments
/// are either raw JSON objects (passed through verbatim) or the shorthands
///
///   stats                        -> {"op": "stats"}
///   shutdown                     -> {"op": "shutdown"}
///   <workload>                   -> {"op": "run", "workload": "..."}
///
/// plus `--socket=PATH` (default daecc.sock). Exit code: 0 when every reply
/// had "ok": true, 1 when any reply was an error or the daemon was
/// unreachable, 2 for a usage error. The CI smoke test drives its concurrent
/// sweeps with exactly this binary.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

int main(int Argc, char **Argv) {
  std::string SocketPath = "daecc.sock";
  std::vector<std::string> Lines;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--socket=", 9) == 0) {
      if (!A[9]) {
        std::fprintf(stderr, "error: --socket requires a path\n");
        return 2;
      }
      SocketPath = A + 9;
    } else if (std::strcmp(A, "stats") == 0) {
      Lines.push_back("{\"op\": \"stats\"}");
    } else if (std::strcmp(A, "shutdown") == 0) {
      Lines.push_back("{\"op\": \"shutdown\"}");
    } else if (A[0] == '{') {
      Lines.push_back(A);
    } else {
      Lines.push_back(std::string("{\"op\": \"run\", \"workload\": \"") + A +
                      "\"}");
    }
  }
  if (Lines.empty()) {
    std::fprintf(stderr,
                 "usage: daecc-client [--socket=PATH] <request>...\n"
                 "  <request>: a JSON object, a workload name, 'stats' or "
                 "'shutdown'\n");
    return 2;
  }

  dae::service::Client C;
  std::string Err;
  if (!C.connect(SocketPath, Err)) {
    std::fprintf(stderr, "daecc-client: %s\n", Err.c_str());
    return 1;
  }
  int Rc = 0;
  for (const std::string &Line : Lines) {
    std::string Reply;
    if (!C.request(Line, Reply)) {
      std::fprintf(stderr, "daecc-client: connection lost\n");
      return 1;
    }
    std::printf("%s\n", Reply.c_str());
    // Cheap but sufficient: every reply the service emits starts with
    // exactly {"ok": true or {"ok": false.
    if (Reply.compare(0, 11, "{\"ok\": true") != 0)
      Rc = 1;
  }
  return Rc;
}
