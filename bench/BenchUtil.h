//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the table/figure regeneration binaries: scale
/// and host-thread selection via argv/env, consistent row printing, and
/// host wall-clock throughput reporting into BENCH_<name>.json (simulated
/// instructions per second — the metric that shows the --sim-threads
/// speedup on multi-core hosts, since simulated results are bit-identical
/// by construction).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_BENCH_BENCHUTIL_H
#define DAECC_BENCH_BENCHUTIL_H

#include "harness/Harness.h"
#include "pm/Instrumentation.h"
#include "runtime/Task.h"
#include "sim/AccessTrace.h"
#include "sim/MachineConfig.h"
#include "support/EnvParse.h"
#include "workloads/Workload.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include <unistd.h>

namespace dae {
namespace bench {

/// Strict positive-integer flag value. Garbage (non-numeric, trailing junk,
/// zero, negative) is a hard configuration error (exit 2), never a silent
/// fall-back to a default — a sweep that asked for 8 cores and silently got
/// 1 would mislabel its own results. Environment fallbacks go through the
/// same contract via support::envUnsignedOr / envBool01Or.
inline unsigned parseUnsignedFlag(const char *Flag, const char *Value) {
  char *End = nullptr;
  errno = 0;
  long long N = std::strtoll(Value, &End, 10);
  if (End == Value || *End != '\0' || errno == ERANGE || N <= 0 ||
      N > static_cast<long long>(std::numeric_limits<unsigned>::max())) {
    std::fprintf(stderr,
                 "error: invalid %s value '%s' (expected a positive "
                 "integer)\n",
                 Flag, Value);
    std::exit(2);
  }
  return static_cast<unsigned>(N);
}

/// Full scale by default; `--test-scale` (or DAECC_TEST_SCALE=1) shrinks the
/// inputs so the whole suite runs in seconds (used by ctest smoke runs).
inline workloads::Scale scaleFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--test-scale") == 0)
      return workloads::Scale::Test;
  return support::envBool01Or("DAECC_TEST_SCALE", false)
             ? workloads::Scale::Test
             : workloads::Scale::Full;
}

/// Host worker threads for the simulation engine: `--sim-threads=N` (or
/// DAECC_SIM_THREADS=N). Defaults to 1, the sequential reference; any value
/// produces bit-identical simulated results.
inline unsigned simThreadsFromArgs(int Argc, char **Argv) {
  // Repeated flags deterministically last-win (matching BenchOptions::parse),
  // so a sweep script appending overrides to a base command behaves as
  // expected instead of silently keeping the first value.
  const char *Last = nullptr;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--sim-threads=", 14) == 0)
      Last = Argv[I] + 14;
  if (Last)
    return parseUnsignedFlag("--sim-threads", Last);
  return support::envUnsignedOr("DAECC_SIM_THREADS", 1u);
}

/// Concurrent suite jobs for harness::runSuite: `--jobs=N` (or
/// DAECC_JOBS=N). Defaults to 1, the sequential reference; any value
/// produces bit-identical simulated results (see harness/JobPool.h for how
/// jobs and sim threads share the host budget).
inline unsigned jobsFromArgs(int Argc, char **Argv) {
  // Last occurrence wins (see simThreadsFromArgs).
  const char *Last = nullptr;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--jobs=", 7) == 0)
      Last = Argv[I] + 7;
  if (Last)
    return parseUnsignedFlag("--jobs", Last);
  return support::envUnsignedOr("DAECC_JOBS", 1u);
}

/// Functional execution backend: `--sim-backend={switch,threaded,native}`
/// overrides the process default (DAECC_SIM_BACKEND, else threaded; see
/// sim::defaultSimBackend). Every backend produces bit-identical simulated
/// results; the flag exists to measure the backends' host-side win (the
/// `interp` block of BENCH_<name>.json) and to keep the reference
/// interpreter reachable for differential debugging. An unknown value is a
/// hard error (exit 2), never a silent fall-back — a sweep that thinks it
/// measured one backend but ran another would produce wrong conclusions.
inline sim::SimBackend backendFromArgs(int Argc, char **Argv) {
  // Last occurrence wins (see simThreadsFromArgs); every occurrence is still
  // validated so a typo can't hide behind a later correct repeat.
  bool HaveFlag = false;
  sim::SimBackend Chosen = sim::SimBackend::Switch;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--sim-backend=", 14) == 0) {
      const char *V = Argv[I] + 14;
      sim::SimBackend B;
      if (!sim::simBackendFromName(V, B)) {
        std::fprintf(stderr,
                     "error: unknown --sim-backend value '%s' (expected %s)\n",
                     V, sim::simBackendValidValues());
        std::exit(2);
      }
      Chosen = B;
      HaveFlag = true;
    }
  return HaveFlag ? Chosen : sim::defaultSimBackend();
}

/// Pipelined wave simulation switch: on by default; `--no-replay-overlap`
/// (or DAECC_REPLAY_OVERLAP=0) keeps the timing replay inline with the
/// functional pass instead of overlapping it with the next wave. Either
/// setting produces bit-identical simulated results (see
/// MachineConfig::ReplayOverlap); the flag only exists to measure the
/// overlap's host-side win and to simplify debugging.
inline bool replayOverlapFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--no-replay-overlap") == 0)
      return false;
  return support::envBool01Or("DAECC_REPLAY_OVERLAP", true);
}

/// Compilation-pipeline switches shared by the drivers: `--verify-each` and
/// `--print-after-all` flip pm::config() (same effect as DAECC_VERIFY_EACH=1
/// / DAECC_PRINT_AFTER_ALL=1); returns true when `--pass-stats` was given,
/// in which case the driver prints pm::PipelineStats before exiting. The
/// per-pass timing block goes into BENCH_<name>.json unconditionally.
inline bool pipelineFlagsFromArgs(int Argc, char **Argv) {
  bool PassStats = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--verify-each") == 0)
      pm::config().VerifyEach = true;
    else if (std::strcmp(Argv[I], "--print-after-all") == 0)
      pm::config().PrintAfterAll = true;
    else if (std::strcmp(Argv[I], "--pass-stats") == 0)
      PassStats = true;
  }
  return PassStats;
}

/// DAE correctness oracle switch: `--dae-verify` (or DAECC_DAE_VERIFY=1)
/// runs the static purity audit + dynamic differential checker per (app,
/// DAE scheme); verdicts print per app and land in the dae_verify block of
/// BENCH_<name>.json. Simulated profiles and outputs are unchanged.
inline bool daeVerifyFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--dae-verify") == 0)
      return true;
  return support::envBool01Or("DAECC_DAE_VERIFY", false);
}

/// Profile-guided DAE refinement switch: `--dae-profile-guided` (or
/// DAECC_DAE_PG=1) closes the profiling feedback loop per app before the
/// scheme simulations (see dae/ProfileGuidedRefinement.h). Unlike
/// --dae-verify this changes the Auto DAE profile — that is its purpose;
/// before/after verdicts print per app and land in the dae_pg block of
/// BENCH_<name>.json.
inline bool daeProfileGuidedFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--dae-profile-guided") == 0)
      return true;
  return support::envBool01Or("DAECC_DAE_PG", false);
}

/// The suite drivers' shared command-line surface, parsed once. Every driver
/// used to repeat the same half-dozen *FromArgs calls plus its own ad-hoc
/// loops; BenchOptions::parse is the single place flags (and their env
/// fallbacks) are interpreted, and machineConfig() is the single place they
/// are applied to a MachineConfig. Unknown values of closed-set flags are
/// hard errors (exit 2).
struct BenchOptions {
  workloads::Scale Scale = workloads::Scale::Full;
  unsigned SimThreads = 1;
  unsigned Jobs = 1;
  sim::SimBackend Backend = sim::defaultSimBackend();
  bool ReplayOverlap = true;
  bool PassStats = false;
  bool DaeVerify = false;
  bool DaeProfileGuided = false;
  bool NoBaseline = false;
  /// --cores=N: simulated core count (0 keeps the machine default). The
  /// contention driver also uses it to bound the co-run sweep.
  unsigned Cores = 0;
  /// --big-little=B,L: heterogeneous topology (see
  /// sim::MachineConfig::makeBigLittle). Overrides --cores.
  unsigned BigCores = 0, LittleCores = 0;
  /// --mix=a,b,c: workload names co-scheduled on the contention timeline
  /// (validated against the registry by the driver via
  /// workloads::buildByName).
  std::vector<std::string> Mix;
  /// --governor={ondemand,conservative,both}: which reactive baselines the
  /// contention driver reports.
  std::string Governor = "both";
  /// --serve: instead of running the driver's one-shot suite, start the
  /// long-lived experiment daemon (src/service/) on SocketPath and serve
  /// requests until shut down. Served results are bit-identical to the
  /// one-shot run of the same request by construction.
  bool Serve = false;
  /// --socket=PATH: Unix-domain socket the daemon listens on.
  std::string SocketPath = "daecc.sock";
  /// --cache-dir=PATH (or DAECC_CACHE_DIR): directory of the daemon's
  /// persistent disk-backed result cache; empty disables disk persistence
  /// (the in-memory cache still serves repeats within one daemon lifetime).
  std::string CacheDir;

  static BenchOptions parse(int Argc, char **Argv) {
    BenchOptions O;
    O.Scale = scaleFromArgs(Argc, Argv);
    O.SimThreads = simThreadsFromArgs(Argc, Argv);
    O.Jobs = jobsFromArgs(Argc, Argv);
    O.Backend = backendFromArgs(Argc, Argv);
    O.ReplayOverlap = replayOverlapFromArgs(Argc, Argv);
    O.PassStats = pipelineFlagsFromArgs(Argc, Argv);
    O.DaeVerify = daeVerifyFromArgs(Argc, Argv);
    O.DaeProfileGuided = daeProfileGuidedFromArgs(Argc, Argv);
    if (const char *Env = std::getenv("DAECC_CACHE_DIR"))
      O.CacheDir = Env;
    for (int I = 1; I < Argc; ++I) {
      const char *A = Argv[I];
      if (std::strcmp(A, "--no-baseline") == 0) {
        O.NoBaseline = true;
      } else if (std::strcmp(A, "--serve") == 0) {
        O.Serve = true;
      } else if (std::strncmp(A, "--socket=", 9) == 0) {
        if (!A[9]) {
          std::fprintf(stderr, "error: --socket requires a path\n");
          std::exit(2);
        }
        O.SocketPath = A + 9;
      } else if (std::strncmp(A, "--cache-dir=", 12) == 0) {
        O.CacheDir = A + 12; // empty re-disables a DAECC_CACHE_DIR default
      } else if (std::strncmp(A, "--cores=", 8) == 0) {
        O.Cores = parseUnsignedFlag("--cores", A + 8);
      } else if (std::strncmp(A, "--big-little=", 13) == 0) {
        const char *V = A + 13;
        const char *Comma = std::strchr(V, ',');
        if (!Comma || Comma == V || Comma[1] == '\0') {
          std::fprintf(stderr,
                       "error: invalid --big-little value '%s' (expected "
                       "BIG,LITTLE counts, e.g. 4,4)\n",
                       V);
          std::exit(2);
        }
        std::string Big(V, Comma);
        O.BigCores = parseUnsignedFlag("--big-little", Big.c_str());
        O.LittleCores = parseUnsignedFlag("--big-little", Comma + 1);
      } else if (std::strncmp(A, "--mix=", 6) == 0) {
        // Repeated --mix flags last-win like every other flag: each
        // occurrence replaces the list instead of silently appending (which
        // used to co-schedule the union of every --mix on the command line).
        O.Mix.clear();
        const char *V = A + 6;
        while (*V) {
          const char *Comma = std::strchr(V, ',');
          std::string Name = Comma ? std::string(V, Comma) : std::string(V);
          if (Name.empty()) {
            std::fprintf(stderr,
                         "error: invalid --mix value '%s' (empty workload "
                         "name)\n",
                         A + 6);
            std::exit(2);
          }
          O.Mix.push_back(std::move(Name));
          V = Comma ? Comma + 1 : V + std::strlen(V);
          if (Comma && !*V) {
            std::fprintf(stderr,
                         "error: invalid --mix value '%s' (trailing comma)\n",
                         A + 6);
            std::exit(2);
          }
        }
        if (O.Mix.empty()) {
          std::fprintf(stderr, "error: --mix requires at least one workload "
                               "name\n");
          std::exit(2);
        }
      } else if (std::strncmp(A, "--governor=", 11) == 0) {
        const char *V = A + 11;
        if (std::strcmp(V, "ondemand") != 0 &&
            std::strcmp(V, "conservative") != 0 &&
            std::strcmp(V, "both") != 0) {
          std::fprintf(stderr,
                       "error: unknown --governor value '%s' (expected "
                       "'ondemand', 'conservative' or 'both')\n",
                       V);
          std::exit(2);
        }
        O.Governor = V;
      }
    }
    return O;
  }

  /// Applies the machine-shaping options to a fresh MachineConfig.
  sim::MachineConfig machineConfig() const {
    sim::MachineConfig Cfg;
    Cfg.SimThreads = SimThreads;
    Cfg.ReplayOverlap = ReplayOverlap;
    Cfg.Backend = Backend;
    if (BigCores + LittleCores > 0)
      Cfg.makeBigLittle(BigCores, LittleCores);
    else if (Cores)
      Cfg.NumCores = Cores;
    return Cfg;
  }

  /// Whether the driver should measure the sequential --jobs=1 reference.
  bool measureBaseline() const { return Jobs > 1 && !NoBaseline; }
};

inline void printRule(int Width = 78) {
  for (int I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

/// Simulated instructions retired in \p P (access + execute phases).
inline std::uint64_t simInstructions(const runtime::RunProfile &P) {
  std::uint64_t N = 0;
  for (const runtime::TaskProfile &T : P.Tasks)
    N += T.Access.Instructions + T.Execute.Instructions;
  return N;
}

/// Wall-clocks the simulation section of a bench binary and writes the
/// throughput to BENCH_<name>.json. Call start() before the simulation loop
/// (this eagerly writes the file with status "started", so even a crash or
/// partial failure leaves a record), add instructions as profiles arrive,
/// then report() once.
///
/// BENCH_<name>.json schema — one flat JSON object per bench run:
///   bench                     string  bench name (matches the file name)
///   jobs                      int     concurrent suite jobs (--jobs)
///   sim_threads               int     requested sim threads per job
///   wall_seconds              double  simulation-section wall clock
///   sim_instructions          int     simulated instructions retired
///   sim_instructions_per_sec  double  sim_instructions / wall_seconds
///   baseline_jobs1_seconds    double  wall clock of the sequential
///                                     --jobs=1 reference run; -1 when the
///                                     baseline was not measured
///   speedup_vs_jobs1          double  baseline_jobs1_seconds /
///                                     wall_seconds; -1 when not measured
///   pass_stats                object  compilation-pipeline instrumentation
///                                     (pm::PipelineStats): per-pass runs /
///                                     changed / wall_seconds and
///                                     per-analysis computes / cache_hits /
///                                     wall_seconds — where generation time
///                                     goes across the suite's jobs
///   dae_verify                array   DAE correctness oracle verdicts, one
///                                     object per (app, scheme) checked
///                                     under --dae-verify / DAECC_DAE_VERIFY
///                                     (empty when verification was off):
///                                     app, scheme ("manual"|"auto"), purity
///                                     (audit + differential both clean),
///                                     coverage (footprint), strict_coverage
///                                     (same-task), overshoot (see
///                                     verify/DifferentialChecker.h for the
///                                     definitions), baseline_misses,
///                                     covered_misses, strict_covered_misses,
///                                     prefetched_lines, unused_lines,
///                                     decoupled_tasks
///   dae_pg                    array   profile-guided refinement outcomes,
///                                     one object per app whose Auto scheme
///                                     went through the feedback loop under
///                                     --dae-profile-guided / DAECC_DAE_PG
///                                     (empty when refinement was off): app,
///                                     refined_tasks, actions (comma-joined
///                                     "<task>: <rules>" lines), purity
///                                     (refined phases passed the audit and
///                                     the after-differential is clean),
///                                     strict_before/strict_after,
///                                     overshoot_before/overshoot_after,
///                                     coverage_before/coverage_after,
///                                     edp_before/edp_after (Min/Max-policy
///                                     EDP of the Auto scheme, J*s)
///   interp                    object  functional-pass (value-producing)
///                                     interpreter throughput — the quantity
///                                     the execution backend changes, unlike
///                                     the bit-identical simulated results:
///                                       backend                  string
///                                         "switch", "threaded" or "native"
///                                         (--sim-backend /
///                                         DAECC_SIM_BACKEND)
///                                       functional_wall_seconds  double  host
///                                         wall clock spent inside the
///                                         functional pass, summed over runs
///                                         (RunProfile::FunctionalSeconds)
///                                       functional_instr_per_sec double
///                                         sim_instructions /
///                                         functional_wall_seconds; -1 when
///                                         no functional time was recorded
///                                       trace_retained_bytes     int     trace
///                                         storage capacity held in the
///                                         process-wide TracePool free-list
///                                         at report time
///                                       trace_peak_bytes         int
///                                         high-water mark of a single
///                                         trace's recorded bytes across the
///                                         run (sizing evidence for the
///                                         reserve-doubling growth policy)
///   replay_overlap            object  pipelined wave simulation telemetry:
///                                       enabled                  bool    the
///                                         run's effective setting
///                                         (--no-replay-overlap /
///                                         DAECC_REPLAY_OVERLAP)
///                                       wall_seconds             double  same
///                                         as the top-level wall_seconds
///                                       no_overlap_wall_seconds  double  wall
///                                         clock of a separately measured
///                                         --no-replay-overlap run of the
///                                         same suite; -1 when not measured
///                                       speedup                  double
///                                         no_overlap_wall_seconds /
///                                         wall_seconds; -1 when not measured
///   contention                array   multi-core co-run sweep entries
///                                     (bench/fig_contention.cpp), one object
///                                     per way count: ways, mix (comma-joined
///                                     workload names), absolute EDP (J*s)
///                                     per policy — cae_max_edp,
///                                     cae_ondemand_edp,
///                                     cae_conservative_edp, dae_minmax_edp,
///                                     dae_oracle_edp — normalized EDP
///                                     (policy / cae_max) per policy as
///                                     *_norm, plus makespan_ns /
///                                     queue_ns / dram_misses of the
///                                     dae_oracle timeline (the bandwidth
///                                     pressure signal). Empty when the
///                                     driver ran no co-run sweep.
///   service                   object  experiment-daemon counters (null for
///                                     one-shot runs), refreshed on every
///                                     daemon checkpoint: requests, errors,
///                                     memory_hits / disk_hits / misses /
///                                     corrupt_entries of the result cache,
///                                     shared_computes (requests coalesced
///                                     onto an in-flight identical compute),
///                                     rejected_busy (bounded-queue
///                                     backpressure), queue_depth,
///                                     latency_ms {count, mean, max} split by
///                                     hit/miss, memo {hits, misses,
///                                     evictions} of the shared
///                                     GenerationMemo
///   failures                  int     apps whose schemes disagreed (or
///                                     otherwise failed)
///   status                    string  "started" while running, "serving"
///                                     at daemon checkpoints, then "ok"
///                                     (failures == 0) or "partial"
///
/// The file is published atomically (written to a same-directory temp file,
/// then renamed over BENCH_<name>.json), so a concurrent reader — a sweep
/// script polling a daemon's counters, or a dashboard tailing a long run —
/// never observes a truncated or half-written object. The previous in-place
/// fopen(..., "w") truncated first and wrote second, a window in which
/// readers saw an empty or partial file. The temp name carries the pid so
/// two processes publishing the same bench name from one directory cannot
/// interleave their half-written temp files either.
///
/// Thread safety: in daemon mode checkpointService() is called from the
/// server's concurrent per-connection handler threads, so every mutator and
/// the JSON publication run under one internal mutex; checkpoints serialize
/// rather than racing on the counters or the temp file.
class ThroughputReporter {
public:
  ThroughputReporter(std::string BenchName, unsigned SimThreads,
                     unsigned Jobs = 1)
      : Name(std::move(BenchName)), SimThreads(SimThreads), Jobs(Jobs) {}

  void start() {
    std::lock_guard<std::mutex> Lock(Mu);
    Start = std::chrono::steady_clock::now();
    End = Start;
    writeJson("started");
  }
  void stop() {
    std::lock_guard<std::mutex> Lock(Mu);
    End = std::chrono::steady_clock::now();
  }
  void add(const runtime::RunProfile &P) {
    std::lock_guard<std::mutex> Lock(Mu);
    Instructions += simInstructions(P);
    FunctionalSeconds += P.FunctionalSeconds;
  }
  /// Records a partial failure (e.g. one app's schemes disagreed). The JSON
  /// is still written; status becomes "partial".
  void noteFailure() {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Failures;
  }
  /// Wall clock of a separately measured sequential (--jobs=1) run of the
  /// same suite, enabling the speedup_vs_jobs1 field.
  void setBaseline(double Jobs1Seconds) {
    std::lock_guard<std::mutex> Lock(Mu);
    BaselineSeconds = Jobs1Seconds;
  }

  /// Records the run's effective replay-overlap setting for the
  /// replay_overlap JSON block.
  void setReplayOverlap(bool Enabled) {
    std::lock_guard<std::mutex> Lock(Mu);
    ReplayOverlap = Enabled;
  }
  /// Records the run's functional execution backend for the interp JSON
  /// block.
  void setBackend(sim::SimBackend B) {
    std::lock_guard<std::mutex> Lock(Mu);
    Backend = B;
  }
  /// Wall clock of a separately measured --no-replay-overlap run of the same
  /// suite, enabling the replay_overlap speedup field.
  void setNoOverlapBaseline(double NoOverlapSecs) {
    std::lock_guard<std::mutex> Lock(Mu);
    NoOverlapSeconds = NoOverlapSecs;
  }

  /// Daemon checkpoint: installs the service counters (a preformatted JSON
  /// object, see the schema above) and atomically republishes
  /// BENCH_<name>.json with status "serving". The daemon calls this after
  /// every served request — from whichever connection thread served it, so
  /// the whole update-and-publish runs under the mutex.
  void checkpointService(const std::string &ServiceBlock) {
    std::lock_guard<std::mutex> Lock(Mu);
    ServiceJson = ServiceBlock;
    End = std::chrono::steady_clock::now();
    writeJson(Failures == 0 ? "serving" : "partial");
  }

  /// Records one (app, scheme) oracle verdict for the dae_verify JSON block
  /// and prints the human-readable line. Impure verdicts also count as
  /// failures. No-op when the verdict did not run (scheme fully coupled).
  void addDaeVerify(const std::string &App, const char *SchemeName,
                    const harness::DaeVerifyResult &V) {
    if (!V.Ran)
      return;
    bool Pure = V.AuditPure && V.Diff.pure();
    std::printf("[dae-verify] %-9s %-6s purity=%s coverage=%.3f "
                "strict=%.3f overshoot=%.3f (%llu/%llu baseline misses "
                "covered, %zu decoupled tasks)\n",
                App.c_str(), SchemeName, Pure ? "pass" : "FAIL",
                V.Diff.coverage(), V.Diff.strictCoverage(),
                V.Diff.overshoot(),
                static_cast<unsigned long long>(V.Diff.CoveredMisses),
                static_cast<unsigned long long>(V.Diff.BaselineExecMisses),
                V.Diff.DecoupledTasks);
    for (const std::string &Viol : V.AuditViolations)
      std::printf("[dae-verify]   audit violation: %s\n", Viol.c_str());

    char Buf[640];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"app\": \"%s\", \"scheme\": \"%s\", \"purity\": %s, "
        "\"coverage\": %.6f, \"strict_coverage\": %.6f, \"overshoot\": %.6f, "
        "\"baseline_misses\": %llu, \"covered_misses\": %llu, "
        "\"strict_covered_misses\": %llu, "
        "\"prefetched_lines\": %llu, \"unused_lines\": %llu, "
        "\"decoupled_tasks\": %zu}",
        App.c_str(), SchemeName, Pure ? "true" : "false", V.Diff.coverage(),
        V.Diff.strictCoverage(), V.Diff.overshoot(),
        static_cast<unsigned long long>(V.Diff.BaselineExecMisses),
        static_cast<unsigned long long>(V.Diff.CoveredMisses),
        static_cast<unsigned long long>(V.Diff.StrictCoveredMisses),
        static_cast<unsigned long long>(V.Diff.PrefetchedLines),
        static_cast<unsigned long long>(V.Diff.UnusedPrefetchedLines),
        V.Diff.DecoupledTasks);
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Pure)
      ++Failures;
    DaeVerifyEntries.push_back(Buf);
  }

  /// Records one app's profile-guided refinement outcome for the dae_pg
  /// JSON block and prints the human-readable before/after line. An impure
  /// outcome (audit violation in a refined phase, or the refined scheme's
  /// differential no longer clean) counts as a failure. No-op when
  /// refinement did not run for the app.
  void addDaePg(const std::string &App,
                const harness::ProfileGuidedResult &Pg) {
    if (!Pg.Ran)
      return;
    bool Pure = Pg.AuditPure && Pg.After.pure();
    std::printf("[dae-pg] %-9s refined=%zu purity=%s strict=%.3f->%.3f "
                "overshoot=%.3f->%.3f coverage=%.3f->%.3f edp=%.3e->%.3e\n",
                App.c_str(), Pg.RefinedTasks, Pure ? "pass" : "FAIL",
                Pg.Before.strictCoverage(), Pg.After.strictCoverage(),
                Pg.Before.overshoot(), Pg.After.overshoot(),
                Pg.Before.coverage(), Pg.After.coverage(), Pg.EdpBefore,
                Pg.EdpAfter);
    for (const std::string &A : Pg.Actions)
      std::printf("[dae-pg]   %s\n", A.c_str());
    for (const std::string &Viol : Pg.AuditViolations)
      std::printf("[dae-pg]   audit violation: %s\n", Viol.c_str());

    std::string Actions;
    for (size_t I = 0; I != Pg.Actions.size(); ++I) {
      Actions += I ? "; " : "";
      Actions += Pg.Actions[I];
    }
    char Buf[768];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"app\": \"%s\", \"refined_tasks\": %zu, \"actions\": \"%s\", "
        "\"purity\": %s, "
        "\"strict_before\": %.6f, \"strict_after\": %.6f, "
        "\"overshoot_before\": %.6f, \"overshoot_after\": %.6f, "
        "\"coverage_before\": %.6f, \"coverage_after\": %.6f, "
        "\"edp_before\": %.6e, \"edp_after\": %.6e}",
        App.c_str(), Pg.RefinedTasks, Actions.c_str(),
        Pure ? "true" : "false", Pg.Before.strictCoverage(),
        Pg.After.strictCoverage(), Pg.Before.overshoot(),
        Pg.After.overshoot(), Pg.Before.coverage(), Pg.After.coverage(),
        Pg.EdpBefore, Pg.EdpAfter);
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Pure)
      ++Failures;
    DaePgEntries.push_back(Buf);
  }

  /// Records one co-run sweep point for the contention JSON block: the five
  /// policies' EDPs (absolute and normalized to CAE at fmax) plus the oracle
  /// timeline's bandwidth-pressure signal.
  void addContention(unsigned Ways, const std::string &MixNames,
                     const harness::MixResult &R) {
    double Base = R.CaeMax.EdpJs;
    auto Norm = [Base](double Edp) { return Base > 0.0 ? Edp / Base : -1.0; };
    double QueueNs = 0.0;
    std::uint64_t DramMisses = 0;
    for (const runtime::CoreTimelineReport &C : R.DaeOracle.Cores) {
      QueueNs += C.QueueNs;
      DramMisses += C.DramMisses;
    }
    char Buf[768];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"ways\": %u, \"mix\": \"%s\", "
        "\"cae_max_edp\": %.6e, \"cae_ondemand_edp\": %.6e, "
        "\"cae_conservative_edp\": %.6e, \"dae_minmax_edp\": %.6e, "
        "\"dae_oracle_edp\": %.6e, "
        "\"cae_ondemand_norm\": %.4f, \"cae_conservative_norm\": %.4f, "
        "\"dae_minmax_norm\": %.4f, \"dae_oracle_norm\": %.4f, "
        "\"makespan_ns\": %.1f, \"queue_ns\": %.1f, \"dram_misses\": %llu}",
        Ways, MixNames.c_str(), R.CaeMax.EdpJs, R.CaeOndemand.EdpJs,
        R.CaeConservative.EdpJs, R.DaeMinMax.EdpJs, R.DaeOracle.EdpJs,
        Norm(R.CaeOndemand.EdpJs), Norm(R.CaeConservative.EdpJs),
        Norm(R.DaeMinMax.EdpJs), Norm(R.DaeOracle.EdpJs),
        R.DaeOracle.MakespanNs, QueueNs,
        static_cast<unsigned long long>(DramMisses));
    std::lock_guard<std::mutex> Lock(Mu);
    ContentionEntries.push_back(Buf);
  }

  double seconds() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return secondsLocked();
  }

  /// Prints the throughput line and finalizes BENCH_<name>.json in the
  /// binary's working directory.
  void report() {
    std::lock_guard<std::mutex> Lock(Mu);
    double Seconds = secondsLocked();
    double Ips = Seconds > 0.0 ? static_cast<double>(Instructions) / Seconds
                               : 0.0;
    std::printf("\n[throughput] %s: %llu simulated instructions in %.3f s "
                "(%.2f M inst/s, %u job%s x %u sim thread%s)\n",
                Name.c_str(),
                static_cast<unsigned long long>(Instructions), Seconds,
                Ips / 1e6, Jobs, Jobs == 1 ? "" : "s", SimThreads,
                SimThreads == 1 ? "" : "s");
    if (FunctionalSeconds > 0.0)
      std::printf("[interp] %s: backend %s, functional pass %.3f s "
                  "(%.2f M inst/s)\n",
                  Name.c_str(), sim::simBackendName(Backend),
                  FunctionalSeconds,
                  static_cast<double>(Instructions) / FunctionalSeconds / 1e6);
    if (BaselineSeconds > 0.0)
      std::printf("[throughput] %s: --jobs=1 baseline %.3f s -> speedup "
                  "%.2fx\n",
                  Name.c_str(), BaselineSeconds, BaselineSeconds / Seconds);
    writeJson(Failures == 0 ? "ok" : "partial");
  }

private:
  double secondsLocked() const {
    return std::chrono::duration<double>(End - Start).count();
  }

  /// Requires Mu held: reads every counter and owns the temp-file publish.
  void writeJson(const char *Status) {
    double Seconds = secondsLocked();
    double Ips = Seconds > 0.0 ? static_cast<double>(Instructions) / Seconds
                               : 0.0;
    double Speedup =
        BaselineSeconds > 0.0 && Seconds > 0.0 ? BaselineSeconds / Seconds
                                               : -1.0;
    double OverlapSpeedup =
        NoOverlapSeconds > 0.0 && Seconds > 0.0 ? NoOverlapSeconds / Seconds
                                                : -1.0;
    double FunctionalIps =
        FunctionalSeconds > 0.0
            ? static_cast<double>(Instructions) / FunctionalSeconds
            : -1.0;
    std::string DaeVerify = "[";
    for (size_t I = 0; I != DaeVerifyEntries.size(); ++I) {
      DaeVerify += I ? ", " : "";
      DaeVerify += DaeVerifyEntries[I];
    }
    DaeVerify += "]";
    std::string DaePg = "[";
    for (size_t I = 0; I != DaePgEntries.size(); ++I) {
      DaePg += I ? ", " : "";
      DaePg += DaePgEntries[I];
    }
    DaePg += "]";
    std::string Contention = "[";
    for (size_t I = 0; I != ContentionEntries.size(); ++I) {
      Contention += I ? ", " : "";
      Contention += ContentionEntries[I];
    }
    Contention += "]";
    // Temp-file + rename publication: readers polling the file (daemon
    // dashboards, sweep scripts) must never see a truncated object. The temp
    // file lives in the same directory so the rename cannot cross a
    // filesystem boundary, and carries the pid so two processes publishing
    // the same bench name cannot write through each other's temp file.
    std::string Path = "BENCH_" + Name + ".json";
    std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
    if (std::FILE *F = std::fopen(Tmp.c_str(), "w")) {
      std::fprintf(F,
                   "{\n"
                   "  \"bench\": \"%s\",\n"
                   "  \"jobs\": %u,\n"
                   "  \"sim_threads\": %u,\n"
                   "  \"wall_seconds\": %.6f,\n"
                   "  \"sim_instructions\": %llu,\n"
                   "  \"sim_instructions_per_sec\": %.1f,\n"
                   "  \"baseline_jobs1_seconds\": %.6f,\n"
                   "  \"speedup_vs_jobs1\": %.3f,\n"
                   "  \"pass_stats\": %s,\n"
                   "  \"dae_verify\": %s,\n"
                   "  \"dae_pg\": %s,\n"
                   "  \"interp\": {\"backend\": \"%s\", "
                   "\"functional_wall_seconds\": %.6f, "
                   "\"functional_instr_per_sec\": %.1f, "
                   "\"trace_retained_bytes\": %zu, "
                   "\"trace_peak_bytes\": %zu},\n"
                   "  \"replay_overlap\": {\"enabled\": %s, "
                   "\"wall_seconds\": %.6f, "
                   "\"no_overlap_wall_seconds\": %.6f, \"speedup\": %.3f},\n"
                   "  \"contention\": %s,\n"
                   "  \"service\": %s,\n"
                   "  \"failures\": %u,\n"
                   "  \"status\": \"%s\"\n"
                   "}\n",
                   Name.c_str(), Jobs, SimThreads, Seconds,
                   static_cast<unsigned long long>(Instructions), Ips,
                   BaselineSeconds > 0.0 ? BaselineSeconds : -1.0, Speedup,
                   pm::PipelineStats::get().json().c_str(), DaeVerify.c_str(),
                   DaePg.c_str(),
                   sim::simBackendName(Backend), FunctionalSeconds,
                   FunctionalIps, sim::TracePool::global().retainedBytes(),
                   sim::TracePool::global().peakBytes(),
                   ReplayOverlap ? "true" : "false", Seconds,
                   NoOverlapSeconds > 0.0 ? NoOverlapSeconds : -1.0,
                   OverlapSpeedup, Contention.c_str(), ServiceJson.c_str(),
                   Failures, Status);
      std::fclose(F);
      std::rename(Tmp.c_str(), Path.c_str());
    }
  }

  /// Serializes daemon checkpoints (concurrent connection threads) against
  /// each other and against the one-shot mutators.
  mutable std::mutex Mu;
  std::string Name;
  unsigned SimThreads;
  unsigned Jobs;
  unsigned Failures = 0;
  bool ReplayOverlap = true;
  sim::SimBackend Backend = sim::defaultSimBackend();
  double BaselineSeconds = -1.0;
  double NoOverlapSeconds = -1.0;
  double FunctionalSeconds = 0.0;
  std::uint64_t Instructions = 0;
  std::string ServiceJson = "null";
  std::vector<std::string> DaeVerifyEntries;
  std::vector<std::string> DaePgEntries;
  std::vector<std::string> ContentionEntries;
  std::chrono::steady_clock::time_point Start, End;
};

} // namespace bench
} // namespace dae

#endif // DAECC_BENCH_BENCHUTIL_H
