//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the table/figure regeneration binaries: scale
/// and host-thread selection via argv/env, consistent row printing, and
/// host wall-clock throughput reporting into BENCH_<name>.json (simulated
/// instructions per second — the metric that shows the --sim-threads
/// speedup on multi-core hosts, since simulated results are bit-identical
/// by construction).
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_BENCH_BENCHUTIL_H
#define DAECC_BENCH_BENCHUTIL_H

#include "runtime/Task.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace dae {
namespace bench {

/// Full scale by default; `--test-scale` (or DAECC_TEST_SCALE=1) shrinks the
/// inputs so the whole suite runs in seconds (used by ctest smoke runs).
inline workloads::Scale scaleFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--test-scale") == 0)
      return workloads::Scale::Test;
  const char *Env = std::getenv("DAECC_TEST_SCALE");
  if (Env && Env[0] == '1')
    return workloads::Scale::Test;
  return workloads::Scale::Full;
}

/// Host worker threads for the simulation engine: `--sim-threads=N` (or
/// DAECC_SIM_THREADS=N). Defaults to 1, the sequential reference; any value
/// produces bit-identical simulated results.
inline unsigned simThreadsFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--sim-threads=", 14) == 0) {
      long N = std::strtol(Argv[I] + 14, nullptr, 10);
      return N > 0 ? static_cast<unsigned>(N) : 1u;
    }
  if (const char *Env = std::getenv("DAECC_SIM_THREADS")) {
    long N = std::strtol(Env, nullptr, 10);
    return N > 0 ? static_cast<unsigned>(N) : 1u;
  }
  return 1u;
}

inline void printRule(int Width = 78) {
  for (int I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

/// Simulated instructions retired in \p P (access + execute phases).
inline std::uint64_t simInstructions(const runtime::RunProfile &P) {
  std::uint64_t N = 0;
  for (const runtime::TaskProfile &T : P.Tasks)
    N += T.Access.Instructions + T.Execute.Instructions;
  return N;
}

/// Wall-clocks the simulation section of a bench binary and writes the
/// throughput to BENCH_<name>.json. Call start() before the simulation loop,
/// add instructions as profiles arrive, then report() once.
class ThroughputReporter {
public:
  ThroughputReporter(std::string BenchName, unsigned SimThreads)
      : Name(std::move(BenchName)), SimThreads(SimThreads) {}

  void start() { Start = std::chrono::steady_clock::now(); }
  void stop() { End = std::chrono::steady_clock::now(); }
  void add(const runtime::RunProfile &P) { Instructions += simInstructions(P); }

  /// Prints the throughput line and writes BENCH_<name>.json next to the
  /// binary's working directory.
  void report() {
    double Seconds =
        std::chrono::duration<double>(End - Start).count();
    double Ips = Seconds > 0.0 ? static_cast<double>(Instructions) / Seconds
                               : 0.0;
    std::printf("\n[throughput] %s: %llu simulated instructions in %.3f s "
                "(%.2f M inst/s, %u host thread%s)\n",
                Name.c_str(),
                static_cast<unsigned long long>(Instructions), Seconds,
                Ips / 1e6, SimThreads, SimThreads == 1 ? "" : "s");
    std::string Path = "BENCH_" + Name + ".json";
    if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
      std::fprintf(F,
                   "{\n"
                   "  \"bench\": \"%s\",\n"
                   "  \"sim_threads\": %u,\n"
                   "  \"wall_seconds\": %.6f,\n"
                   "  \"sim_instructions\": %llu,\n"
                   "  \"sim_instructions_per_sec\": %.1f\n"
                   "}\n",
                   Name.c_str(), SimThreads, Seconds,
                   static_cast<unsigned long long>(Instructions), Ips);
      std::fclose(F);
    }
  }

private:
  std::string Name;
  unsigned SimThreads;
  std::uint64_t Instructions = 0;
  std::chrono::steady_clock::time_point Start, End;
};

} // namespace bench
} // namespace dae

#endif // DAECC_BENCH_BENCHUTIL_H
