//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the table/figure regeneration binaries: scale
/// selection via argv/env and consistent row printing.
///
//===----------------------------------------------------------------------===//

#ifndef DAECC_BENCH_BENCHUTIL_H
#define DAECC_BENCH_BENCHUTIL_H

#include "workloads/Workload.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace dae {
namespace bench {

/// Full scale by default; `--test-scale` (or DAECC_TEST_SCALE=1) shrinks the
/// inputs so the whole suite runs in seconds (used by ctest smoke runs).
inline workloads::Scale scaleFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--test-scale") == 0)
      return workloads::Scale::Test;
  const char *Env = std::getenv("DAECC_TEST_SCALE");
  if (Env && Env[0] == '1')
    return workloads::Scale::Test;
  return workloads::Scale::Full;
}

inline void printRule(int Width = 78) {
  for (int I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace dae

#endif // DAECC_BENCH_BENCHUTIL_H
