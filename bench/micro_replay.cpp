//===- bench/micro_replay.cpp - Trace replay microbenchmarks ----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the cache-timing replay hot loop
/// (runtime/Replay.h) — the sequential half of the simulation engine and the
/// stage the pipelined wave overlap hides. Events/s here bound how fast any
/// simulation can retire its timing pass, so this is the number to watch
/// when touching Cache::access or the replay fast path. Patterns:
///
///  * Sequential: a streaming load walk (same-line fast path + next-line
///    hardware prefetcher — the best case).
///  * Random: an LCG-scattered load stream over an LLC-exceeding footprint
///    (tag scans + evictions dominate — the worst case).
///  * Mixed: interleaved load/store/prefetch, the shape real DAE task traces
///    have.
///  * MixedCapture: Mixed with oracle capture enabled, bounding the cost the
///    --dae-verify differential adds per event.
///
//===----------------------------------------------------------------------===//

#include "runtime/Replay.h"
#include "sim/CacheSim.h"
#include "sim/MachineConfig.h"

#include <benchmark/benchmark.h>

#include <cstdint>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

constexpr std::size_t NumEvents = 1 << 18;

/// A streaming load walk touching every 8th byte of a large footprint.
AccessTrace sequentialTrace() {
  AccessTrace Tr;
  for (std::size_t I = 0; I != NumEvents; ++I)
    Tr.push(AccessTrace::Kind::Load, 0x10000 + I * 8);
  return Tr;
}

/// LCG-scattered loads over a footprint several times the LLC.
AccessTrace randomTrace() {
  AccessTrace Tr;
  std::uint64_t X = 0x2545F4914F6CDD1Dull;
  for (std::size_t I = 0; I != NumEvents; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    Tr.push(AccessTrace::Kind::Load, 0x10000 + ((X >> 20) & 0x1FFFFF8ull));
  }
  return Tr;
}

/// Prefetch/load/store interleave over strided lines (DAE task shape).
AccessTrace mixedTrace() {
  AccessTrace Tr;
  for (std::size_t I = 0; I != NumEvents / 3; ++I) {
    std::uint64_t Addr = 0x10000 + (I * 192) % (1 << 22);
    Tr.push(AccessTrace::Kind::Prefetch, Addr);
    Tr.push(AccessTrace::Kind::Load, Addr);
    Tr.push(AccessTrace::Kind::Store, Addr + 64);
  }
  return Tr;
}

void benchReplay(benchmark::State &State, const AccessTrace &Tr,
                 bool WithCapture) {
  MachineConfig Cfg;
  ReplayCostModel Costs(Cfg);
  CacheHierarchy Caches(Cfg, Cfg.NumCores);
  unsigned LineShift = lineShiftOf(Cfg.L1.LineBytes);
  for (auto _ : State) {
    State.PauseTiming();
    Caches.flush();
    PhaseStats S;
    PhaseCapture Cap;
    State.ResumeTiming();
    replayTrace(Tr, Caches, /*Core=*/0, Costs, S,
                WithCapture ? &Cap : nullptr, LineShift);
    benchmark::DoNotOptimize(S.StallNs);
    benchmark::DoNotOptimize(S.L1Hits);
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Tr.size()));
}

void BM_ReplaySequential(benchmark::State &State) {
  benchReplay(State, sequentialTrace(), /*WithCapture=*/false);
}
BENCHMARK(BM_ReplaySequential)->Unit(benchmark::kMillisecond);

void BM_ReplayRandom(benchmark::State &State) {
  benchReplay(State, randomTrace(), /*WithCapture=*/false);
}
BENCHMARK(BM_ReplayRandom)->Unit(benchmark::kMillisecond);

void BM_ReplayMixed(benchmark::State &State) {
  benchReplay(State, mixedTrace(), /*WithCapture=*/false);
}
BENCHMARK(BM_ReplayMixed)->Unit(benchmark::kMillisecond);

void BM_ReplayMixedCapture(benchmark::State &State) {
  benchReplay(State, mixedTrace(), /*WithCapture=*/true);
}
BENCHMARK(BM_ReplayMixedCapture)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
