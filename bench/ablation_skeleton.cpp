//===- bench/ablation_skeleton.cpp - Section 5.2 design choices -------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the skeleton generator's refinements on the non-affine
/// applications (LBM and LibQ): the Simplified-CFG optimization (section
/// 5.2.2) and the discard-the-stores finding (section 5.2.1, "prefetching
/// the memory addresses accessed for writing does not improve performance").
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ServeUtil.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"

#include <cstdio>
#include <memory>
#include <set>
#include <vector>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

int main(int Argc, char **Argv) {
  BenchOptions Opts = BenchOptions::parse(Argc, Argv);
  if (Opts.Serve)
    return serveMain(Opts, "ablation_skeleton");
  workloads::Scale S = Opts.Scale;
  sim::MachineConfig Cfg = Opts.machineConfig();
  unsigned Jobs = Opts.Jobs;
  const bool PassStats = Opts.PassStats;

  struct Variant {
    const char *Name;
    bool SimplifyCfg;
    bool PrefetchWrites;
    bool ProfileGuided = false;
  };
  const Variant Variants[] = {
      {"paper defaults", true, false},
      {"keep conditionals", false, false},
      {"prefetch writes", true, true},
      {"both off-default", false, true},
      {"profile-guided", true, false, true}, // Section 6.2.3's proposal.
  };
  const char *Apps[] = {"lbm", "libq", "cg"};

  // All 15 (app x variant) runs go through one suite on the job pool and
  // share one generation memo: only the knobs a variant actually flips for
  // a given task force regeneration (e.g. PrefetchWrites is irrelevant for
  // store-free tasks). The profile-guided cold-load sets are measured
  // sequentially up front — they are an input to generation, not suite work.
  struct Item {
    std::unique_ptr<workloads::Workload> W;
    DaeOptions Opts;
    std::set<const ir::Instruction *> Cold;
  };
  std::vector<std::unique_ptr<Item>> OwnedItems;
  std::vector<SuiteItem> Suite;
  for (const char *App : Apps) {
    for (const Variant &V : Variants) {
      auto It = std::make_unique<Item>();
      It->W = workloads::buildByName(App, S);
      It->Opts = It->W->Opts;
      It->Opts.SimplifyCfg = V.SimplifyCfg;
      It->Opts.PrefetchWrites = V.PrefetchWrites;
      if (V.ProfileGuided) {
        It->Cold = profileColdLoads(*It->W, Cfg);
        It->Opts.ColdLoads = &It->Cold;
      }
      Suite.push_back({It->W.get(), &It->Opts});
      OwnedItems.push_back(std::move(It));
    }
  }

  GenerationMemo Memo;
  SuiteConfig SC;
  SC.Jobs = Jobs;
  SC.SimThreads = Cfg.SimThreads;
  SC.Memo = &Memo;
  std::vector<AppResult> Results = runSuite(Suite, Cfg, SC);

  std::size_t Next = 0;
  for (const char *App : Apps) {
    std::printf("\nSkeleton-path ablation on %s (Optimal-EDP, 500 ns)\n",
                App);
    std::printf("%-20s %12s %12s %10s %10s\n", "variant", "acc instr",
                "acc pf", "time/CAE", "EDP/CAE");
    printRule(70);
    for (const Variant &V : Variants) {
      const AppResult &R = Results[Next++];
      runtime::RunReport Base = priceCaeMax(R, Cfg, 500.0);
      runtime::RunReport Rep =
          runtime::evaluate(R.Auto, Cfg, optimalEdpConfig(500.0));
      auto Acc = R.Auto.totalAccess();
      std::printf("%-20s %12llu %12llu %10.3f %10.3f%s\n", V.Name,
                  static_cast<unsigned long long>(Acc.Instructions),
                  static_cast<unsigned long long>(Acc.Prefetches),
                  Rep.TimeSec / Base.TimeSec, Rep.EdpJs / Base.EdpJs,
                  R.OutputsMatch ? "" : "  [OUTPUT MISMATCH]");
    }
  }
  printRule(70);
  GenerationMemo::Stats MS = Memo.stats();
  std::printf("[memo] generation cache: %llu hits, %llu misses, %llu "
              "uncacheable\n",
              static_cast<unsigned long long>(MS.Hits),
              static_cast<unsigned long long>(MS.Misses),
              static_cast<unsigned long long>(MS.Rejections));
  std::printf("(expected: keeping conditionals replicates computation into "
              "the access phase; prefetching writes adds traffic without "
              "helping — the paper's section 5.2.1 finding)\n");
  if (PassStats)
    pm::PipelineStats::get().print(stdout);
  return 0;
}
