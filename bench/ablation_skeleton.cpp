//===- bench/ablation_skeleton.cpp - Section 5.2 design choices -------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the skeleton generator's refinements on the non-affine
/// applications (LBM and LibQ): the Simplified-CFG optimization (section
/// 5.2.2) and the discard-the-stores finding (section 5.2.1, "prefetching
/// the memory addresses accessed for writing does not improve performance").
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "harness/Harness.h"

#include <cstdio>
#include <set>

using namespace dae;
using namespace dae::bench;
using namespace dae::harness;

int main(int Argc, char **Argv) {
  workloads::Scale S = scaleFromArgs(Argc, Argv);
  sim::MachineConfig Cfg;

  struct Variant {
    const char *Name;
    bool SimplifyCfg;
    bool PrefetchWrites;
    bool ProfileGuided = false;
  };
  const Variant Variants[] = {
      {"paper defaults", true, false},
      {"keep conditionals", false, false},
      {"prefetch writes", true, true},
      {"both off-default", false, true},
      {"profile-guided", true, false, true}, // Section 6.2.3's proposal.
  };

  for (const char *App : {"lbm", "libq", "cg"}) {
    std::printf("\nSkeleton-path ablation on %s (Optimal-EDP, 500 ns)\n",
                App);
    std::printf("%-20s %12s %12s %10s %10s\n", "variant", "acc instr",
                "acc pf", "time/CAE", "EDP/CAE");
    printRule(70);
    for (const Variant &V : Variants) {
      auto W = workloads::buildByName(App, S);
      DaeOptions Opts = W->Opts;
      Opts.SimplifyCfg = V.SimplifyCfg;
      Opts.PrefetchWrites = V.PrefetchWrites;
      std::set<const ir::Instruction *> Cold;
      if (V.ProfileGuided) {
        Cold = profileColdLoads(*W, Cfg);
        Opts.ColdLoads = &Cold;
      }
      AppResult R = runApp(*W, Cfg, &Opts);

      runtime::RunReport Base = priceCaeMax(R, Cfg, 500.0);
      runtime::EvalConfig Opt;
      Opt.Policy = runtime::FreqPolicy::OptimalEdp;
      Opt.TransitionNs = 500.0;
      runtime::RunReport Rep = runtime::evaluate(R.Auto, Cfg, Opt);
      auto Acc = R.Auto.totalAccess();
      std::printf("%-20s %12llu %12llu %10.3f %10.3f%s\n", V.Name,
                  static_cast<unsigned long long>(Acc.Instructions),
                  static_cast<unsigned long long>(Acc.Prefetches),
                  Rep.TimeSec / Base.TimeSec, Rep.EdpJs / Base.EdpJs,
                  R.OutputsMatch ? "" : "  [OUTPUT MISMATCH]");
    }
  }
  printRule(70);
  std::printf("(expected: keeping conditionals replicates computation into "
              "the access phase; prefetching writes adds traffic without "
              "helping — the paper's section 5.2.1 finding)\n");
  return 0;
}
