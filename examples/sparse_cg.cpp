//===- examples/sparse_cg.cpp - Skeleton access phases on sparse code -------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Shows the non-affine path end to end on the CG workload: the generated
// skeleton access phase (indirection kept, computation discarded), the
// measured per-phase profiles at every ladder frequency, and the resulting
// time/energy/EDP of coupled vs. decoupled execution.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace dae;
using namespace dae::harness;

int main() {
  auto W = workloads::buildCg(workloads::Scale::Test);
  sim::MachineConfig Cfg;

  AppResult R = runApp(*W, Cfg);
  std::printf("CG task classified: %s\n",
              analysis::taskClassName(R.Generation.front().Strategy));
  std::printf("generated skeleton access phase:\n%s\n",
              ir::printFunction(*const_cast<ir::Function *>(
                  static_cast<const ir::Function *>(
                      R.Generation.front().AccessFn)))
                  .c_str());
  std::printf("outputs identical across CAE/Manual/Auto: %s\n\n",
              R.OutputsMatch ? "yes" : "NO");

  std::printf("%8s %14s %14s %14s\n", "f(GHz)", "CAE time(ms)",
              "DAE time(ms)", "DAE EDP/CAE");
  for (double F : Cfg.FrequenciesGHz) {
    runtime::RunReport Cae = runtime::evaluateCoupled(R.Cae, Cfg, F);
    runtime::EvalConfig E;
    E.Policy = runtime::FreqPolicy::Fixed;
    E.AccessFreqGHz = Cfg.fmin();
    E.ExecFreqGHz = F;
    runtime::RunReport Dae = runtime::evaluate(R.Auto, Cfg, E);
    runtime::RunReport Base = runtime::evaluateCoupled(R.Cae, Cfg, Cfg.fmax());
    std::printf("%8.1f %14.3f %14.3f %14.3f\n", F, Cae.TimeSec * 1e3,
                Dae.TimeSec * 1e3, Dae.EdpJs / Base.EdpJs);
  }
  return 0;
}
